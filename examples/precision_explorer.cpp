// precision_explorer — the floating-point side of the framework on a
// custom kernel with a custom quality probe, through the gpurf::Engine API.
//
// Defines a small Horner-evaluation kernel, builds a deviation-metric
// probe over its outputs (the user's stand-in for a domain expert's
// quality function, §4.1), and shows what the tuner assigns at the two
// paper thresholds.  Parsing and tuning go through an Engine, so
// malformed kernel text or an unattainable quality threshold come back as
// Status values instead of exceptions.  Also prints the Table-3
// quantization behaviour of a few representative values.

#include <cstdio>

#include "api/engine.hpp"
#include "exec/interp.hpp"
#include "fp/format.hpp"
#include "quality/metrics.hpp"

namespace ir = gpurf::ir;
namespace exec = gpurf::exec;
namespace fp = gpurf::fp;

constexpr std::string_view kHorner = R"(
.kernel horner
.param s32 x_base
.param s32 out_base
.reg s32 %gid
.reg s32 %a
.reg f32 %x
.reg f32 %acc
.reg f32 %c3
.reg f32 %c2
.reg f32 %c1
.reg f32 %c0

entry:
  mov.s32 %gid, %ctaid.x
  mad.s32 %gid, %gid, 64, %tid.x
  add.s32 %a, %gid, $x_base
  ld.global.f32 %x, [%a]
  mov.f32 %c3, 0.125
  mov.f32 %c2, -0.5
  mov.f32 %c1, 0.75
  mov.f32 %c0, 1.0
  mov.f32 %acc, 0.0
  mad.f32 %acc, %x, %c3, %c2
  mad.f32 %acc, %acc, %x, %c1
  mad.f32 %acc, %acc, %x, %c0
  add.s32 %a, %gid, $out_base
  st.global.f32 [%a], %acc
  ret
)";

namespace {

/// Quality probe: run the kernel with the candidate precision map and
/// score the polynomial outputs against the exact run (% deviation).
class HornerProbe final : public gpurf::tuning::QualityProbe {
 public:
  explicit HornerProbe(const ir::Kernel& k) : k_(k) {
    metric_ = gpurf::quality::make_deviation_metric();
    ref_ = run(nullptr);
  }

  std::vector<float> run(const exec::PrecisionMap* pmap) {
    exec::GlobalMemory gmem;
    std::vector<float> xs(512);
    for (size_t i = 0; i < xs.size(); ++i)
      xs[i] = float(i % 256) / 128.0f - 1.0f;  // quantized inputs in [-1,1)
    const uint32_t xb = gmem.alloc_f32(xs);
    const uint32_t ob = gmem.alloc(xs.size());
    exec::ExecContext ctx;
    ctx.kernel = &k_;
    ctx.launch = ir::LaunchConfig{8, 1, 64, 1};
    ctx.gmem = &gmem;
    ctx.params = {xb, ob};
    ctx.precision = pmap;
    exec::run_functional(ctx);
    return gmem.read_f32(ob, xs.size());
  }

  double evaluate(const exec::PrecisionMap& pmap) override {
    return metric_->score(ref_, run(&pmap));
  }
  bool meets(double s, gpurf::quality::QualityLevel l) const override {
    return metric_->meets(s, l);
  }

 private:
  const ir::Kernel& k_;
  std::unique_ptr<gpurf::quality::QualityMetric> metric_;
  std::vector<float> ref_;
};

}  // namespace

int main() {
  // Table-3 quantization behaviour on representative values.
  std::printf("Table 3 quantization (value -> stored value per format):\n");
  const float samples[] = {0.3f, 0.5f, 3.14159f, 100.0f};
  std::printf("%10s", "bits:");
  for (const auto& f : fp::table3_formats()) std::printf(" %10d", f.total_bits);
  std::printf("\n");
  for (float v : samples) {
    std::printf("%10.5f", v);
    for (const auto& f : fp::table3_formats())
      std::printf(" %10.5f", fp::quantize(v, f));
    std::printf("\n");
  }

  // Tune the Horner kernel at both thresholds through an Engine session.
  gpurf::Engine engine;
  auto parsed = engine.parse_kernel(kHorner);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 1;
  }
  const ir::Kernel& k = *parsed;
  if (auto st = engine.verify_kernel(k); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  HornerProbe probe(k);

  for (auto level : {gpurf::quality::QualityLevel::kPerfect,
                     gpurf::quality::QualityLevel::kHigh}) {
    auto tuned = engine.tune(k, probe, level);
    if (!tuned.ok()) {
      std::fprintf(stderr, "%s\n", tuned.status().to_string().c_str());
      return 1;
    }
    const auto& res = *tuned;
    std::printf("\n%s quality (%d probes, final deviation %.4f%%):\n",
                std::string(level_name(level)).c_str(), res.evaluations,
                res.final_score);
    for (uint32_t r = 0; r < k.num_regs(); ++r) {
      if (k.regs[r].type != ir::Type::F32) continue;
      std::printf("  %%%-4s -> %2d bits\n", k.regs[r].name.c_str(),
                  res.pmap.per_reg[r].total_bits);
    }
    std::printf("  f32 slices: %d -> %d\n", res.slices_before,
                res.slices_after);
  }
  return 0;
}
