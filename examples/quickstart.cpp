// quickstart — the whole system in one page, through the public
// gpurf::Engine API.
//
// An Engine is a session: it owns its thread pool, its kernel-analysis and
// pipeline caches, its on-disk precision-map cache directory, and the GPU
// model it simulates.  EngineOptions fields left unset resolve once at
// construction ($GPURF_THREADS, $GPURF_CACHE_DIR act as *defaults only* —
// nothing reads the environment afterwards), so two Engines with different
// options coexist in one process without sharing any state.
//
// The run takes the bundled Hotspot workload through the paper's pipeline:
//   1. static integer range analysis       (§4.2)
//   2. floating-point precision tuning     (§4.1)
//   3. slice-packing register allocation   (§4.3)
//   4. occupancy + cycle-level simulation  (§3, §6)
// and prints the register pressure, occupancy and IPC of the baseline
// register file versus the proposed compressed organisation.  Every API
// call returns Status/StatusOr — bad input is a value, not an abort.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/quickstart [--sample] [--json]
//   --sample    simulate the small sample-scale instance (fast; CI uses it)
//   --json      also print the pipeline result as a JSON snapshot

#include <cstdio>
#include <cstring>

#include "api/engine.hpp"
#include "api/json.hpp"

namespace wl = gpurf::workloads;

int main(int argc, char** argv) {
  bool sample = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sample") == 0) sample = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  // A session with explicit options; defaults come from the environment
  // exactly once, here.  Add .with_threads(n) / .with_cache_dir(dir) /
  // .with_gpu(cfg) to configure the session.
  gpurf::Engine engine{gpurf::EngineOptions{}};

  auto w = engine.workload("Hotspot");
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().to_string().c_str());
    return 1;
  }
  std::printf("kernel: %s (%zu instructions, %u registers)\n",
              (*w)->spec().name.c_str(), (*w)->kernel().num_insts(),
              (*w)->kernel().num_data_regs());

  // Steps 1-3: the full static framework (tuned precision maps persist in
  // the engine's versioned cache directory after the first run).
  auto pr = engine.pipeline(**w);
  if (!pr.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", pr.status().to_string().c_str());
    return 1;
  }
  std::printf("register pressure: original %u -> narrow ints %u -> "
              "ints+floats %u (perfect) / %u (high quality)\n",
              (*pr)->pressure.original, (*pr)->pressure.narrow_int,
              (*pr)->pressure.both_perfect, (*pr)->pressure.both_high);
  std::printf("tuner: %d quality probes (perfect), final score %.4f\n",
              (*pr)->tune_perfect.evaluations,
              (*pr)->tune_perfect.final_score);

  // Step 4: cycle-level simulation, baseline vs. compressed, on the
  // engine's GpuConfig (Fermi GTX 480 unless overridden).
  gpurf::SimRequest req;
  req.scale = sample ? wl::Scale::kSample : wl::Scale::kFull;
  auto run = [&](wl::SimMode mode) {
    req.mode = mode;
    return engine.simulate(**w, req);
  };
  const auto base = run(wl::SimMode::kOriginal);
  const auto comp = run(wl::SimMode::kCompressedHigh);
  if (!base.ok() || !comp.ok()) {
    std::fprintf(stderr, "simulate: %s\n",
                 (base.ok() ? comp : base).status().to_string().c_str());
    return 1;
  }

  std::printf("baseline:   %u blocks/SM (%.1f%% occupancy), IPC %.0f\n",
              base->occupancy.blocks_per_sm, base->occupancy.percent,
              base->stats.ipc());
  std::printf("compressed: %u blocks/SM (%.1f%% occupancy), IPC %.0f "
              "(%+.1f%%)\n",
              comp->occupancy.blocks_per_sm, comp->occupancy.percent,
              comp->stats.ipc(),
              100.0 * (comp->stats.ipc() / base->stats.ipc() - 1.0));

  if (json) {
    auto js = engine.pipeline_json("Hotspot");
    std::printf("\npipeline snapshot:\n%s\n", js.value().c_str());
    std::printf("\nsimulation snapshot (compressed/high):\n%s\n",
                gpurf::api::to_json(*comp).c_str());
  }
  return 0;
}
