// quickstart — the whole system in one page.
//
// Takes the bundled Hotspot workload through the paper's pipeline:
//   1. static integer range analysis       (§4.2)
//   2. floating-point precision tuning     (§4.1)
//   3. slice-packing register allocation   (§4.3)
//   4. occupancy + cycle-level simulation  (§3, §6)
// and prints the register pressure, occupancy and IPC of the baseline
// register file versus the proposed compressed organisation.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace wl = gpurf::workloads;
namespace sim = gpurf::sim;

int main() {
  // A bundled Table-4 workload; swap in any of the eleven.
  const auto w = wl::make_hotspot();
  std::printf("kernel: %s (%zu instructions, %u registers)\n",
              w->spec().name.c_str(), w->kernel().num_insts(),
              w->kernel().num_data_regs());

  // Steps 1-3: the full static framework (tuning results are cached in
  // .gpurf_cache/ after the first run).
  const auto& pr = wl::run_pipeline(*w);
  std::printf("register pressure: original %u -> narrow ints %u -> "
              "ints+floats %u (perfect) / %u (high quality)\n",
              pr.pressure.original, pr.pressure.narrow_int,
              pr.pressure.both_perfect, pr.pressure.both_high);
  std::printf("tuner: %d quality probes (perfect), final score %.4f\n",
              pr.tune_perfect.evaluations, pr.tune_perfect.final_score);

  // Step 4: cycle-level simulation, baseline vs. compressed.
  const sim::GpuConfig gpu = sim::GpuConfig::fermi_gtx480();
  auto run = [&](wl::SimMode mode) {
    auto inst = w->make_instance(wl::Scale::kFull, 0);
    auto spec = wl::make_launch_spec(*w, inst, pr, mode);
    return sim::simulate(gpu, wl::make_compression_config(mode), spec);
  };
  const auto base = run(wl::SimMode::kOriginal);
  const auto comp = run(wl::SimMode::kCompressedHigh);

  std::printf("baseline:   %u blocks/SM (%.1f%% occupancy), IPC %.0f\n",
              base.occupancy.blocks_per_sm, base.occupancy.percent,
              base.stats.ipc());
  std::printf("compressed: %u blocks/SM (%.1f%% occupancy), IPC %.0f "
              "(%+.1f%%)\n",
              comp.occupancy.blocks_per_sm, comp.occupancy.percent,
              comp.stats.ipc(),
              100.0 * (comp.stats.ipc() / base.stats.ipc() - 1.0));
  return 0;
}
