// compress_custom_kernel — using the public API on your own kernel.
//
// Writes a small reduction kernel in the PTX-like assembly, assembles and
// verifies it through a gpurf::Engine (parse/verify errors are Status
// values — try corrupting the text below), runs the integer range
// analysis, packs registers into 4-bit slices and prints the resulting
// indirection-table entries (physical register + slice masks) — exactly
// what would be uploaded before launch (§3.2, Fig. 2).

#include <cstdio>

#include "alloc/slice_alloc.hpp"
#include "analysis/range_analysis.hpp"
#include "api/engine.hpp"
#include "rf/indirection_table.hpp"

namespace ir = gpurf::ir;
namespace analysis = gpurf::analysis;
namespace alloc = gpurf::alloc;

constexpr std::string_view kMyKernel = R"(
.kernel histogram64
.param s32 in_base
.param s32 out_base
.param s32 n range(256,1048576)
.reg s32 %gid
.reg s32 %i
.reg s32 %word
.reg s32 %byte
.reg s32 %bucket
.reg s32 %count
.reg s32 %addr
.reg pred %p

entry:
  mov.s32 %gid, %ctaid.x
  mad.s32 %gid, %gid, 256, %tid.x
  setp.ge.s32 %p, %gid, $n
  @%p bra exit
body:
  add.s32 %addr, %gid, $in_base
  ld.global.s32 %word, [%addr]
  mov.s32 %count, 0
  mov.s32 %i, 0
loop:
  setp.ge.s32 %p, %i, 4
  @%p bra done
unpack:
  and.s32 %byte, %word, 255
  shr.s32 %word, %word, 8
  shr.s32 %bucket, %byte, 2
  add.s32 %count, %count, %bucket
  min.s32 %count, %count, 255
  add.s32 %i, %i, 1
  bra loop
done:
  add.s32 %addr, %gid, $out_base
  st.global.s32 [%addr], %count
exit:
  ret
)";

int main() {
  // 1. Assemble + verify through an Engine; bad text is a Status, not a
  //    crash.
  gpurf::Engine engine;
  auto parsed = engine.parse_kernel(kMyKernel);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
    return 1;
  }
  ir::Kernel k = std::move(parsed).value();
  if (auto st = engine.verify_kernel(k); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("kernel %s: %zu instructions\n\n", k.name.c_str(),
              k.num_insts());

  // 2. Integer range analysis with the launch geometry.
  ir::LaunchConfig lc;
  lc.block_x = 256;
  lc.grid_x = 64;
  const auto ranges = analysis::analyze_ranges(k, lc);

  std::printf("%-8s %-22s %5s %7s\n", "register", "range", "bits", "slices");
  for (uint32_t r = 0; r < k.num_regs(); ++r) {
    if (!ranges.regs[r].analyzed) continue;
    std::printf("%%%-7s %-22s %5d %7d\n", k.regs[r].name.c_str(),
                ranges.regs[r].range.str().c_str(), ranges.regs[r].bits,
                ranges.slices_for_reg(r));
  }

  // 3. Slice allocation -> register pressure + indirection table.
  const uint32_t baseline = alloc::baseline_pressure(k);
  alloc::AllocOptions opt{true, false};
  const auto res = alloc::allocate_slices(k, &ranges, nullptr, opt);
  std::printf("\nregister pressure: %u -> %u (packing density %.2f)\n",
              baseline, res.num_physical_regs, res.packing_density());

  std::printf("\nindirection table (r0/m0, r1/m1 per §3.2.2):\n");
  for (uint32_t r = 0; r < k.num_regs(); ++r) {
    const auto& e = res.table[r];
    if (!e.valid) continue;
    const auto packed = gpurf::rf::PackedEntry::pack(e);
    std::printf("  %%%-7s -> r%u mask=0x%02x", k.regs[r].name.c_str(),
                e.r0.phys_reg, e.r0.mask);
    if (e.split)
      std::printf("  + r%u mask=0x%02x", e.r1.phys_reg, e.r1.mask);
    std::printf("   (raw 0x%08x%s)\n", packed.raw,
                e.is_signed ? ", signed" : "");
  }
  return 0;
}
