// daemon_roundtrip — drive a tune + simulate round-trip through gpurfd's
// JSON-over-socket protocol (ISSUE 4).
//
// Two ways to run it:
//
//   ./daemon_roundtrip
//       Self-contained: hosts a Server (with its own Engine) in-process on
//       a scratch socket, then talks to it through the blocking Client —
//       a real AF_UNIX round-trip without process management.
//
//   ./daemon_roundtrip --connect PATH [--shutdown]
//       Talks to an already-running `gpurfd --socket PATH` (what CI does).
//       --shutdown asks the daemon to exit afterwards.
//
//   ./daemon_roundtrip --tcp
//       Self-contained again, but over loopback TCP (ISSUE 8): the
//       in-process Server listens on an ephemeral 127.0.0.1 port and the
//       Client dials it — same protocol, different transport.
//
//   ./daemon_roundtrip --connect-tcp HOST:PORT [--shutdown]
//       Talks to an already-running `gpurfd --listen HOST:PORT`.
//
// The run submits one pipeline job (priority 1) and one sample-scale
// simulate job for the same workload, waits for both, and then checks —
// exiting non-zero on any violation — that every response parses as JSON,
// that both jobs reached state "done", and that the metrics embedded in
// the final envelope show non-zero activity (jobs_done, pipeline memo
// traffic, per-job wall time).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "api/engine.hpp"
#include "api/server.hpp"

namespace api = gpurf::api;

namespace {

/// One protocol call with all the failure modes folded into an exit.
api::JsonValue must_call(api::Client& client, const std::string& request) {
  auto resp = client.call_json(request);
  if (!resp.ok()) {
    std::fprintf(stderr, "FAIL: %s -> %s\n", request.c_str(),
                 resp.status().to_string().c_str());
    std::exit(1);
  }
  if (!resp->is_object() || !resp->get("ok")) {
    std::fprintf(stderr, "FAIL: %s -> response is not an envelope\n",
                 request.c_str());
    std::exit(1);
  }
  return std::move(resp).value();
}

uint64_t job_id_of(const api::JsonValue& resp) {
  const api::JsonValue* id = resp.get("job");
  if (!id || !id->is_number()) {
    std::fprintf(stderr, "FAIL: submit response carries no job id\n");
    std::exit(1);
  }
  return static_cast<uint64_t>(id->as_int());
}

std::string state_of(const api::JsonValue& resp) {
  const api::JsonValue* s = resp.get("state");
  return s ? s->as_string() : "<missing>";
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_path;
  std::string connect_tcp;
  bool use_tcp = false;
  bool send_shutdown = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc)
      connect_path = argv[++i];
    else if (std::strcmp(argv[i], "--connect-tcp") == 0 && i + 1 < argc)
      connect_tcp = argv[++i];
    else if (std::strcmp(argv[i], "--tcp") == 0)
      use_tcp = true;
    else if (std::strcmp(argv[i], "--shutdown") == 0)
      send_shutdown = true;
  }

  // Self-hosted mode: an in-process daemon on a scratch socket (or, with
  // --tcp, an ephemeral loopback port).
  std::unique_ptr<gpurf::Engine> engine;
  std::unique_ptr<api::Server> server;
  if (connect_path.empty() && connect_tcp.empty()) {
    api::ServerOptions sopts;
    if (use_tcp) {
      sopts.listen_host = "127.0.0.1";
      sopts.listen_port = 0;  // ephemeral; read back below
    } else {
      connect_path = "./gpurfd_example.sock";
      sopts.socket_path = connect_path;
    }
    engine = std::make_unique<gpurf::Engine>(gpurf::EngineOptions{});
    server = std::make_unique<api::Server>(*engine, sopts);
    const gpurf::Status st = server->start();
    if (!st.ok()) {
      std::fprintf(stderr, "FAIL: server start: %s\n", st.to_string().c_str());
      return 1;
    }
    if (use_tcp) {
      connect_tcp = "127.0.0.1:" + std::to_string(server->tcp_port());
      std::printf("in-process gpurfd on tcp %s\n", connect_tcp.c_str());
    } else {
      std::printf("in-process gpurfd on %s\n", connect_path.c_str());
    }
  }

  std::unique_ptr<api::Client> client_holder;
  if (!connect_tcp.empty()) {
    const size_t colon = connect_tcp.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "FAIL: --connect-tcp wants HOST:PORT\n");
      return 1;
    }
    client_holder = std::make_unique<api::Client>(
        connect_tcp.substr(0, colon),
        std::atoi(connect_tcp.c_str() + colon + 1));
  } else {
    client_holder = std::make_unique<api::Client>(connect_path);
  }
  api::Client& client = *client_holder;
  if (!client.status().ok()) {
    std::fprintf(stderr, "FAIL: %s\n", client.status().to_string().c_str());
    return 1;
  }

  must_call(client, R"({"op":"ping"})");
  const auto list = must_call(client, R"({"op":"list"})");
  const api::JsonValue* workloads = list.get("workloads");
  if (!workloads || !workloads->is_array() || workloads->items.empty()) {
    std::fprintf(stderr, "FAIL: list returned no workloads\n");
    return 1;
  }
  std::printf("daemon serves %zu workloads\n", workloads->items.size());

  // Tune (pipeline job, priority 1) + simulate (sample scale, compressed
  // high) for the same kernel: the simulate job reuses the tuned pipeline
  // through the Engine's memo, which the final metrics check observes.
  const auto sub_pipe = must_call(
      client,
      R"({"op":"submit","kind":"pipeline","workload":"DWT2D","priority":1})");
  const auto sub_sim = must_call(
      client,
      R"({"op":"submit","kind":"simulate","workload":"DWT2D",)"
      R"("mode":"high","scale":"sample"})");
  const uint64_t pipe_id = job_id_of(sub_pipe);
  const uint64_t sim_id = job_id_of(sub_sim);
  std::printf("submitted: pipeline job %llu, simulate job %llu\n",
              static_cast<unsigned long long>(pipe_id),
              static_cast<unsigned long long>(sim_id));

  const auto wait_pipe = must_call(
      client, R"({"op":"wait","job":)" + std::to_string(pipe_id) +
                  R"(,"timeout_ms":600000})");
  const auto wait_sim = must_call(
      client, R"({"op":"wait","job":)" + std::to_string(sim_id) +
                  R"(,"timeout_ms":600000})");
  if (state_of(wait_pipe) != "done" || state_of(wait_sim) != "done") {
    std::fprintf(stderr, "FAIL: jobs not done: pipeline=%s simulate=%s\n",
                 state_of(wait_pipe).c_str(), state_of(wait_sim).c_str());
    return 1;
  }
  if (!wait_pipe.get("result") || !wait_sim.get("result")) {
    std::fprintf(stderr, "FAIL: wait responses carry no result\n");
    return 1;
  }
  const api::JsonValue* ipc = wait_sim.get("result")->get("stats")
                                  ? wait_sim.get("result")
                                        ->get("stats")
                                        ->get("ipc")
                                  : nullptr;
  std::printf("pipeline done; simulate done (IPC %.1f)\n",
              ipc ? ipc->as_double() : -1.0);

  // Metrics checks: every envelope embeds them; use a dedicated call for
  // the final assertion.
  const auto metrics_resp = must_call(client, R"({"op":"metrics"})");
  const api::JsonValue* m = metrics_resp.get("metrics");
  if (!m || !m->is_object()) {
    std::fprintf(stderr, "FAIL: envelope carries no metrics object\n");
    return 1;
  }
  const auto counter = [&](const char* name) -> double {
    const api::JsonValue* v = m->get(name);
    return v ? v->as_double() : -1.0;
  };
  if (counter("jobs_done") < 2) {
    std::fprintf(stderr, "FAIL: jobs_done = %g, expected >= 2\n",
                 counter("jobs_done"));
    return 1;
  }
  if (counter("pipeline_memo_hits") + counter("pipeline_memo_misses") < 1) {
    std::fprintf(stderr, "FAIL: no pipeline memo traffic recorded\n");
    return 1;
  }
  if (counter("job_wall_ms_total") <= 0) {
    std::fprintf(stderr, "FAIL: job_wall_ms_total not positive\n");
    return 1;
  }
  std::printf("metrics: jobs_done=%g memo_hits=%g memo_misses=%g "
              "wall_ms_total=%.1f\n",
              counter("jobs_done"), counter("pipeline_memo_hits"),
              counter("pipeline_memo_misses"), counter("job_wall_ms_total"));

  if (send_shutdown) {
    must_call(client, R"({"op":"shutdown"})");
    std::printf("asked daemon to shut down\n");
  }
  if (server) server->stop();
  std::printf("round-trip OK\n");
  return 0;
}
