// workload_report — inspect any bundled workload through the static
// framework: register counts, computed register pressure (vs. the paper's
// Table 4), integer range-analysis results, and (with --tune) the tuned
// float formats and the resulting Fig.-9-style pressure bars.
//
// Uses the gpurf::Engine API: workloads are looked up by name (unknown
// names are a NotFound Status, not a crash), pipelines memoize inside the
// engine, and --json emits the machine-readable snapshot a serving layer
// would return.
//
// Usage: workload_report [NAME ...] [--tune] [--regs] [--json]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "analysis/range_analysis.hpp"
#include "api/engine.hpp"

namespace wl = gpurf::workloads;

int main(int argc, char** argv) {
  bool tune = false, show_regs = false, json = false;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tune") == 0) tune = true;
    else if (std::strcmp(argv[i], "--regs") == 0) show_regs = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else names.emplace_back(argv[i]);
  }

  gpurf::Engine engine;
  if (names.empty()) names = engine.workload_names();

  for (const auto& name : names) {
    auto lookup = engine.workload(name);
    if (!lookup.ok()) {
      std::fprintf(stderr, "%s\n", lookup.status().to_string().c_str());
      return 1;
    }
    const wl::Workload& w = **lookup;
    const auto& k = w.kernel();
    const auto inst = w.make_instance(wl::Scale::kFull, 0);
    const auto ranges = gpurf::analysis::analyze_ranges(k, inst.launch);

    uint32_t f32 = 0, ints = 0, preds = 0;
    for (const auto& r : k.regs) {
      if (r.type == gpurf::ir::Type::F32) ++f32;
      else if (r.type == gpurf::ir::Type::PRED) ++preds;
      else ++ints;
    }

    gpurf::alloc::AllocOptions none{false, false}, onlyints{true, false};
    const uint32_t orig =
        gpurf::alloc::allocate_slices(k, nullptr, nullptr, none)
            .num_physical_regs;
    const uint32_t narrow_int =
        gpurf::alloc::allocate_slices(k, &ranges, nullptr, onlyints)
            .num_physical_regs;

    std::printf("%-11s insts=%4zu regs(int/f32/pred)=%u/%u/%u  "
                "pressure: paper=%u ours=%u  narrow-int=%u\n",
                w.spec().name.c_str(), k.num_insts(), ints, f32, preds,
                w.spec().paper_regs, orig, narrow_int);

    if (show_regs) {
      for (uint32_t r = 0; r < k.num_regs(); ++r) {
        const auto& info = ranges.regs[r];
        if (!info.analyzed) continue;
        std::printf("    %%%-8s %-6s bits=%2d range=%s\n",
                    k.regs[r].name.c_str(),
                    std::string(type_name(k.regs[r].type)).c_str(), info.bits,
                    info.range.str().c_str());
      }
    }

    if (tune) {
      auto pr_or = engine.pipeline(w);
      if (!pr_or.ok()) {
        std::fprintf(stderr, "pipeline: %s\n",
                     pr_or.status().to_string().c_str());
        return 1;
      }
      const auto& pr = **pr_or;
      std::printf("    Fig.9 bars: orig=%u int=%u float(p)=%u float(h)=%u "
                  "both(p)=%u both(h)=%u  [tuner evals p=%d h=%d]\n",
                  pr.pressure.original, pr.pressure.narrow_int,
                  pr.pressure.narrow_float_perfect,
                  pr.pressure.narrow_float_high, pr.pressure.both_perfect,
                  pr.pressure.both_high, pr.tune_perfect.evaluations,
                  pr.tune_high.evaluations);
      if (show_regs) {
        std::printf("    tuned formats (perfect/high):\n");
        for (uint32_t r = 0; r < k.num_regs(); ++r) {
          if (k.regs[r].type != gpurf::ir::Type::F32) continue;
          std::printf("      %%%-8s %2d / %2d bits\n",
                      k.regs[r].name.c_str(),
                      pr.tune_perfect.pmap.per_reg[r].total_bits,
                      pr.tune_high.pmap.per_reg[r].total_bits);
        }
        std::printf("    packing density both(p)=%.3f split=%u\n",
                    pr.alloc_both_perfect.packing_density(),
                    pr.alloc_both_perfect.split_operands);
      }
    }

    if (json) {
      // Emits the full machine-readable snapshot; runs the pipeline if
      // --tune has not already memoized it.
      auto js = engine.pipeline_json(name);
      if (!js.ok()) {
        std::fprintf(stderr, "%s\n", js.status().to_string().c_str());
        return 1;
      }
      std::printf("    %s\n", js->c_str());
    }
  }
  return 0;
}
