// Tests for the quality metrics (§5.3, §6.1): SSIM, % deviation, binary,
// and the perfect/high threshold semantics the tuner depends on.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "quality/metrics.hpp"
#include "quality/ssim.hpp"

namespace gpurf::quality {
namespace {

Image noise_image(int w, int h, uint32_t seed) {
  Image img(w, h);
  gpurf::Pcg32 rng(seed);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) img.at(x, y) = rng.next_float();
  return img;
}

TEST(Ssim, IdenticalImagesScoreExactlyOne) {
  const Image a = noise_image(32, 32, 1);
  EXPECT_EQ(ssim(a, a), 1.0);  // exact — the "perfect" threshold relies on it
}

TEST(Ssim, PerturbationLowersScore) {
  const Image a = noise_image(32, 32, 2);
  Image b = a;
  b.at(16, 16) += 0.2f;
  EXPECT_LT(ssim(a, b), 1.0);
  EXPECT_GT(ssim(a, b), 0.5);
}

TEST(Ssim, HeavyNoiseScoresLow) {
  const Image a = noise_image(32, 32, 3);
  const Image b = noise_image(32, 32, 4);
  EXPECT_LT(ssim(a, b), 0.3);
}

TEST(Ssim, Symmetric) {
  const Image a = noise_image(24, 24, 5);
  Image b = a;
  for (int i = 0; i < 24; ++i) b.at(i, i) *= 0.9f;
  EXPECT_DOUBLE_EQ(ssim(a, b), ssim(b, a));
}

TEST(Ssim, ConstantImagesIdentical) {
  Image a(16, 16), b(16, 16);
  for (auto& v : a.data()) v = 0.5f;
  for (auto& v : b.data()) v = 0.5f;
  EXPECT_EQ(ssim(a, b), 1.0);
}

TEST(Ssim, RejectsMismatchedSizes) {
  Image a(16, 16), b(16, 17);
  EXPECT_THROW(ssim(a, b), gpurf::Error);
}

TEST(Ssim, RejectsTooSmallImages) {
  Image a(8, 8), b(8, 8);
  EXPECT_THROW(ssim(a, b), gpurf::Error);  // smaller than the 11x11 window
}

TEST(SsimMetric, Thresholds) {
  auto m = make_ssim_metric(16, 16);
  EXPECT_EQ(m->kind(), MetricKind::kSsim);
  EXPECT_TRUE(m->meets(1.0, QualityLevel::kPerfect));
  EXPECT_FALSE(m->meets(0.999999, QualityLevel::kPerfect));
  EXPECT_TRUE(m->meets(0.95, QualityLevel::kHigh));
  EXPECT_TRUE(m->meets(0.9, QualityLevel::kHigh));
  EXPECT_FALSE(m->meets(0.89, QualityLevel::kHigh));
}

TEST(SsimMetric, NonFiniteOutputFails) {
  auto m = make_ssim_metric(16, 16);
  std::vector<float> ref(256, 0.5f), test(256, 0.5f);
  test[7] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(m->meets(m->score(ref, test), QualityLevel::kHigh));
}

TEST(DeviationMetric, ExactIsZero) {
  auto m = make_deviation_metric();
  std::vector<float> ref = {1.f, -2.f, 3.f};
  EXPECT_EQ(m->score(ref, ref), 0.0);
  EXPECT_TRUE(m->meets(0.0, QualityLevel::kPerfect));
}

TEST(DeviationMetric, NormalisedL1) {
  auto m = make_deviation_metric();
  std::vector<float> ref = {1.f, 1.f, 1.f, 1.f};
  std::vector<float> test = {1.1f, 0.9f, 1.f, 1.f};
  EXPECT_NEAR(m->score(ref, test), 100.0 * 0.2 / 4.0, 1e-4);
}

TEST(DeviationMetric, Thresholds) {
  auto m = make_deviation_metric();
  EXPECT_FALSE(m->meets(0.0001, QualityLevel::kPerfect));
  EXPECT_TRUE(m->meets(9.99, QualityLevel::kHigh));
  EXPECT_FALSE(m->meets(10.01, QualityLevel::kHigh));
}

TEST(DeviationMetric, NonFiniteFailsBothLevels) {
  auto m = make_deviation_metric();
  std::vector<float> ref = {1.f, 2.f};
  std::vector<float> test = {1.f, std::numeric_limits<float>::infinity()};
  const double s = m->score(ref, test);
  EXPECT_FALSE(m->meets(s, QualityLevel::kPerfect));
  EXPECT_FALSE(m->meets(s, QualityLevel::kHigh));
}

TEST(DeviationMetric, ZeroReference) {
  auto m = make_deviation_metric();
  std::vector<float> zero = {0.f, 0.f};
  EXPECT_EQ(m->score(zero, zero), 0.0);
  std::vector<float> off = {0.f, 0.5f};
  EXPECT_FALSE(m->meets(m->score(zero, off), QualityLevel::kHigh));
}

TEST(BinaryMetric, BitExactSemantics) {
  auto m = make_binary_metric();
  std::vector<float> ref = {1.f, -0.f, 3.f};
  EXPECT_EQ(m->score(ref, ref), 1.0);
  std::vector<float> test = ref;
  test[1] = 0.f;  // +0 vs -0 differ bitwise
  EXPECT_EQ(m->score(ref, test), 0.0);
}

TEST(BinaryMetric, BothLevelsRequireCorrectness) {
  // §6.1: Hybridsort's binary metric stays "perfect" even at high quality.
  auto m = make_binary_metric();
  EXPECT_TRUE(m->meets(1.0, QualityLevel::kPerfect));
  EXPECT_TRUE(m->meets(1.0, QualityLevel::kHigh));
  EXPECT_FALSE(m->meets(0.0, QualityLevel::kHigh));
}

TEST(Metrics, Names) {
  EXPECT_EQ(metric_name(MetricKind::kSsim), "SSIM");
  EXPECT_EQ(metric_name(MetricKind::kDeviation), "% deviation");
  EXPECT_EQ(metric_name(MetricKind::kBinary), "Binary");
  EXPECT_EQ(level_name(QualityLevel::kPerfect), "perfect");
  EXPECT_EQ(level_name(QualityLevel::kHigh), "high");
}

}  // namespace
}  // namespace gpurf::quality
