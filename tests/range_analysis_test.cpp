// Tests for the static range analysis (§4.2), including the paper's
// Fig. 8 worked example and the loop/sigma patterns the workloads rely on.

#include <gtest/gtest.h>

#include "analysis/range_analysis.hpp"
#include "ir/parser.hpp"

namespace gpurf::analysis {
namespace {

using gpurf::ir::LaunchConfig;
using gpurf::ir::parse_kernel;

RangeAnalysisResult analyze(std::string_view text,
                            LaunchConfig lc = LaunchConfig{}) {
  auto k = parse_kernel(text);
  return analyze_ranges(k, lc);
}

/// The paper's Fig. 8 example.  We transcribe the *constraint graph* of
/// Fig. 8b faithfully: k1 = phi(k0, k2); kt = k1 /\ [-inf,49]; k2 = kt+1,
/// with the inner i-loop bounded by j0 = kt.  (The paper's figure places a
/// single k increment on the outer cycle — transcribing the k++ into the
/// inner loop instead would make k genuinely unbounded at run time.)
/// Expected (Fig. 8c/d): I[k] = [0,50], I[j] = [0,49], 6-bit widths.
TEST(RangeAnalysis, PaperFigure8) {
  auto k = parse_kernel(R"(
.kernel fig8
.reg s32 %k
.reg s32 %i
.reg s32 %j
.reg pred %p
entry:
  mov.s32 %k, 0
outer:
  setp.ge.s32 %p, %k, 50
  @%p bra done
outer_body:
  mov.s32 %i, 0
  mov.s32 %j, %k
inner:
  setp.ge.s32 %p, %i, %j
  @%p bra inner_done
inner_body:
  add.s32 %i, %i, 1
  bra inner
inner_done:
  add.s32 %k, %k, 1
  bra outer
done:
  st.global.s32 [%k], %k
  ret
)");
  auto res = analyze_ranges(k, LaunchConfig{});

  const auto& rk = res.regs[k.find_reg("k")];
  const auto& ri = res.regs[k.find_reg("i")];
  const auto& rj = res.regs[k.find_reg("j")];

  EXPECT_EQ(rk.range.lo, 0);
  EXPECT_EQ(rk.range.hi, 50);
  EXPECT_EQ(ri.range.lo, 0);
  EXPECT_EQ(ri.range.hi, 49);
  EXPECT_EQ(rj.range.lo, 0);
  EXPECT_EQ(rj.range.hi, 49);

  // Fig. 8d: 6 bits each.
  EXPECT_EQ(rk.bits, 6);
  EXPECT_EQ(ri.bits, 6);
  EXPECT_EQ(rj.bits, 6);
  EXPECT_FALSE(rk.is_signed);
}

TEST(RangeAnalysis, SpecialRegisterRanges) {
  LaunchConfig lc;
  lc.block_x = 16;
  lc.block_y = 16;
  lc.grid_x = 12;
  lc.grid_y = 12;
  auto res = analyze(R"(
.kernel s
.reg s32 %tx
.reg s32 %gx
entry:
  mov.s32 %tx, %tid.x
  mov.s32 %gx, %ctaid.x
  mad.s32 %gx, %gx, 16, %tx
  st.global.s32 [%gx], %tx
  ret
)",
                     lc);
  // tid.x in [0,15]; gx = ctaid.x*16 + tid.x in [0, 191].
  EXPECT_EQ(res.regs[0].range, Interval::make(0, 15));
  EXPECT_EQ(res.regs[1].range, Interval::make(0, 191));
  EXPECT_EQ(res.regs[1].bits, 8);
}

TEST(RangeAnalysis, ParamContractsAndDefaults) {
  auto res = analyze(R"(
.kernel p
.param s32 width range(16,1024)
.param s32 base
.reg s32 %w
.reg s32 %a
entry:
  mov.s32 %w, $width
  mov.s32 %a, $base
  add.s32 %a, %a, %w
  st.global.s32 [%a], %w
  ret
)");
  EXPECT_EQ(res.regs[0].range, Interval::make(16, 1024));
  EXPECT_EQ(res.regs[0].bits, 11);
  // Unannotated base address: full s32.
  EXPECT_EQ(res.regs[1].bits, 32);
}

TEST(RangeAnalysis, ClampViaMinMax) {
  // The clamped value gets its own register: a register's final range is
  // the union over every value it ever stores, so reusing %x would keep
  // the pre-clamp values in its range.
  auto res = analyze(R"(
.kernel c
.reg s32 %x
.reg s32 %t
.reg s32 %c
entry:
  mov.s32 %x, %tid.x
  sub.s32 %t, %x, 8
  max.s32 %t, %t, 0
  min.s32 %c, %t, 15
  st.global.s32 [%c], %c
  ret
)");
  EXPECT_EQ(res.regs[2].range, Interval::make(0, 15));
  EXPECT_EQ(res.regs[2].bits, 4);
  // %t stores the pre-min values too: union of [-8,23] and [0,23].
  EXPECT_EQ(res.regs[1].range, Interval::make(-8, 23));
}

TEST(RangeAnalysis, MaskedLoadIsNarrow) {
  auto res = analyze(R"(
.kernel m
.reg s32 %w
.reg s32 %px
entry:
  mov.s32 %w, 0
  ld.global.s32 %w, [%w]
  and.s32 %px, %w, 255
  st.global.s32 [%px], %px
  ret
)");
  // Loads are unknown, but mask & 255 proves [0,255].
  EXPECT_EQ(res.regs[1].range, Interval::make(0, 255));
  EXPECT_EQ(res.regs[1].bits, 8);
  EXPECT_EQ(res.regs[0].bits, 32);
}

TEST(RangeAnalysis, LoopCounterBoundedBySigma) {
  auto res = analyze(R"(
.kernel l
.reg s32 %i
.reg pred %p
entry:
  mov.s32 %i, 0
head:
  setp.ge.s32 %p, %i, 324
  @%p bra exit
body:
  add.s32 %i, %i, 256
  bra head
exit:
  st.global.s32 [%i], %i
  ret
)");
  // i = 0, 256, 512 (loop exits); range [0, 323+256].
  EXPECT_EQ(res.regs[0].range, Interval::make(0, 579));
  EXPECT_EQ(res.regs[0].bits, 10);
}

TEST(RangeAnalysis, SwapCycleStaysExact) {
  // cur/nxt ping-pong through a third register must not widen to infinity
  // (regression test for the ascending-phase fix).
  auto res = analyze(R"(
.kernel swap
.reg s32 %cur
.reg s32 %nxt
.reg s32 %swp
.reg s32 %i
.reg pred %p
entry:
  mov.s32 %cur, 0
  mov.s32 %nxt, 324
  mov.s32 %i, 0
head:
  setp.ge.s32 %p, %i, 4
  @%p bra exit
body:
  mov.s32 %swp, %cur
  mov.s32 %cur, %nxt
  mov.s32 %nxt, %swp
  add.s32 %i, %i, 1
  bra head
exit:
  st.global.s32 [%cur], %nxt
  ret
)");
  EXPECT_EQ(res.regs[0].range, Interval::make(0, 324));
  EXPECT_EQ(res.regs[1].range, Interval::make(0, 324));
  EXPECT_EQ(res.regs[2].range, Interval::make(0, 324));
  EXPECT_EQ(res.regs[0].bits, 9);
}

TEST(RangeAnalysis, SigmaAgainstLaterScc) {
  // The loop bound is defined *after* the loop counter in program order
  // but referenced by the sigma (future-ordering regression test).
  auto res = analyze(R"(
.kernel f
.param s32 n range(1,8)
.reg s32 %i
.reg s32 %bound
.reg pred %p
entry:
  mov.s32 %bound, $n
  mov.s32 %i, 0
head:
  setp.ge.s32 %p, %i, %bound
  @%p bra exit
body:
  add.s32 %i, %i, 1
  bra head
exit:
  st.global.s32 [%i], %i
  ret
)");
  // %i is the first declared register.
  EXPECT_EQ(res.regs[0].range, Interval::make(0, 8));
}

TEST(RangeAnalysis, DivRemTransfer) {
  auto res = analyze(R"(
.kernel dr
.reg s32 %i
.reg s32 %q
.reg s32 %r
.reg pred %p
entry:
  mov.s32 %i, %tid.x
head:
  setp.ge.s32 %p, %i, 324
  @%p bra exit
body:
  div.s32 %q, %i, 18
  rem.s32 %r, %i, 18
  st.global.s32 [%q], %r
  add.s32 %i, %i, 256
  bra head
exit:
  ret
)",
                     LaunchConfig{1, 1, 256, 1});
  EXPECT_EQ(res.regs[1].range, Interval::make(0, 17));  // q = [0,323]/18
  EXPECT_EQ(res.regs[2].range, Interval::make(0, 17));  // r = i % 18
  EXPECT_EQ(res.regs[1].bits, 5);
}

TEST(RangeAnalysis, SaturatingCounterPattern) {
  // cnt = min(cnt + inc, 15) with inc in {0,1} — bounded by the clamp.
  auto res = analyze(R"(
.kernel sat
.reg s32 %cnt
.reg s32 %inc
.reg s32 %i
.reg pred %p
.reg pred %q
entry:
  mov.s32 %cnt, 0
  mov.s32 %i, 0
head:
  setp.ge.s32 %p, %i, 100
  @%p bra exit
body:
  setp.eq.s32 %q, %i, 3
  selp.s32 %inc, 1, 0, %q
  add.s32 %cnt, %cnt, %inc
  min.s32 %cnt, %cnt, 15
  add.s32 %i, %i, 1
  bra head
exit:
  st.global.s32 [%cnt], %cnt
  ret
)");
  const auto& cnt = res.regs[0];
  EXPECT_EQ(cnt.range.lo, 0);
  EXPECT_EQ(cnt.range.hi, 16);  // transient cnt+inc before the clamp
  EXPECT_EQ(cnt.bits, 5);
}

TEST(RangeAnalysis, GuardedDefMergesWithOldValue) {
  auto res = analyze(R"(
.kernel g
.reg s32 %a
.reg pred %p
entry:
  mov.s32 %a, 3
  setp.lt.s32 %p, %a, 100
  @%p mov.s32 %a, 200
  st.global.s32 [%a], %a
  ret
)");
  // Observable values: 3 (guard false) or 200 (guard true).
  EXPECT_TRUE(res.regs[0].range.contains(3));
  EXPECT_TRUE(res.regs[0].range.contains(200));
}

TEST(RangeAnalysis, CvtFloatToIntIsUnknownUntilClamped) {
  auto res = analyze(R"(
.kernel cv
.reg f32 %f
.reg s32 %b
.reg s32 %c
entry:
  mov.f32 %f, 0.5
  mul.f32 %f, %f, 16.0
  cvt.s32.f32 %b, %f
  max.s32 %c, %b, 0
  min.s32 %c, %c, 15
  st.global.s32 [%c], %c
  ret
)");
  // %b itself is statically unknown (came through a float).
  EXPECT_EQ(res.regs[1].bits, 32);
  // ... but the clamp bounds %c's lower side; the min() bounds the value
  // the final store sees.
  EXPECT_GE(res.regs[2].range.lo, 0);
}

TEST(RangeAnalysis, XorShiftStaysFullWidth) {
  auto res = analyze(R"(
.kernel x
.reg s32 %seed
.reg s32 %t
entry:
  mov.s32 %seed, %tid.x
  mad.s32 %seed, %seed, 2654435761, 12345
  shl.s32 %t, %seed, 13
  xor.s32 %seed, %seed, %t
  st.global.s32 [%t], %seed
  ret
)",
                     LaunchConfig{1, 1, 256, 1});
  // The multiply overflows s32, so the stored value may wrap anywhere:
  // the register must be treated as full width (soundness).
  EXPECT_EQ(res.regs[0].bits, 32);
  EXPECT_EQ(res.regs[0].range, Interval::full_s32());
}

TEST(RangeAnalysis, UnsignedTypeRange) {
  auto res = analyze(R"(
.kernel u
.reg u32 %a
.reg u32 %b
entry:
  mov.u32 %a, %tid.x
  shr.u32 %b, %a, 4
  st.global.u32 [%b], %b
  ret
)",
                     LaunchConfig{1, 1, 256, 1});
  EXPECT_EQ(res.regs[0].range, Interval::make(0, 255));
  EXPECT_EQ(res.regs[1].range, Interval::make(0, 15));
  EXPECT_FALSE(res.regs[1].is_signed);
}

TEST(RangeAnalysis, NonIntRegsNotAnalyzed) {
  auto k = parse_kernel(R"(
.kernel f
.reg f32 %f
.reg pred %p
.reg s32 %i
entry:
  mov.s32 %i, 1
  cvt.f32.s32 %f, %i
  setp.lt.f32 %p, %f, 2.0
  st.global.f32 [%i], %f
  ret
)");
  auto res = analyze_ranges(k, LaunchConfig{});
  EXPECT_FALSE(res.regs[k.find_reg("f")].analyzed);
  EXPECT_FALSE(res.regs[k.find_reg("p")].analyzed);
  EXPECT_TRUE(res.regs[k.find_reg("i")].analyzed);
}

}  // namespace
}  // namespace gpurf::analysis
