// Tests for the register allocators (§4.3): baseline colouring pressure
// and the slice-packing allocator's invariants (no slice shared by
// interfering registers, at most two physical registers per operand,
// pressure never above the baseline).

#include <gtest/gtest.h>

#include <bit>

#include "alloc/slice_alloc.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/liveness.hpp"
#include "analysis/range_analysis.hpp"
#include "ir/parser.hpp"
#include "workloads/workload.hpp"

namespace gpurf::alloc {
namespace {

using gpurf::ir::LaunchConfig;
using gpurf::ir::parse_kernel;

TEST(Baseline, PressureEqualsSimultaneousLive) {
  auto k = parse_kernel(R"(
.kernel p
.reg s32 %a
.reg s32 %b
.reg s32 %c
.reg s32 %d
entry:
  mov.s32 %a, 1
  mov.s32 %b, 2
  add.s32 %c, %a, %b
  add.s32 %d, %c, %a
  st.global.s32 [%d], %d
  ret
)");
  // {a,b} -> {a,c} -> {d}: two registers suffice (c may reuse b's slot,
  // d may reuse a's).
  EXPECT_EQ(baseline_pressure(k), 2u);
}

TEST(Baseline, DisjointLifetimesShareRegisters) {
  auto k = parse_kernel(R"(
.kernel d
.reg s32 %a
.reg s32 %b
entry:
  mov.s32 %a, 1
  st.global.s32 [%a], %a
  mov.s32 %b, 2
  st.global.s32 [%b], %b
  ret
)");
  EXPECT_EQ(baseline_pressure(k), 1u);
}

TEST(SliceAlloc, NarrowIntsPack) {
  // Four 8-bit values (2 slices each) pack into one 8-slice register.
  auto k = parse_kernel(R"(
.kernel n
.reg s32 %p0
.reg s32 %p1
.reg s32 %p2
.reg s32 %p3
.reg s32 %s
entry:
  mov.s32 %s, %tid.x
  ld.global.s32 %s, [%s]
  and.s32 %p0, %s, 255
  and.s32 %p1, %s, 255
  and.s32 %p2, %s, 255
  and.s32 %p3, %s, 255
  add.s32 %p0, %p0, %p1
  add.s32 %p2, %p2, %p3
  add.s32 %p0, %p0, %p2
  st.global.s32 [%s], %p0
  ret
)");
  const auto ranges = analysis::analyze_ranges(k, LaunchConfig{});
  AllocOptions opt{true, false};
  const auto res = allocate_slices(k, &ranges, nullptr, opt);
  // %s stays 8 slices; p0 (9 bits = 3 slices after the adds) + p1..p3
  // (2 slices each) pack alongside.
  EXPECT_LT(res.num_physical_regs, baseline_pressure(k) + 1);
  EXPECT_LE(res.num_physical_regs, 3u);
  EXPECT_GE(res.packing_density(), 0.5);
}

TEST(SliceAlloc, EntriesCoverDeclaredWidths) {
  auto k = parse_kernel(R"(
.kernel w
.reg s32 %a
.reg s32 %b
entry:
  mov.s32 %a, %tid.x
  and.s32 %b, %a, 15
  st.global.s32 [%b], %a
  ret
)");
  const auto ranges = analysis::analyze_ranges(k, LaunchConfig{1, 1, 32, 1});
  AllocOptions opt{true, false};
  const auto res = allocate_slices(k, &ranges, nullptr, opt);
  for (uint32_t r = 0; r < k.num_regs(); ++r) {
    const auto& e = res.table[r];
    if (!e.valid) continue;
    const int covered = std::popcount(e.r0.mask) +
                        (e.split ? std::popcount(e.r1.mask) : 0);
    EXPECT_EQ(covered, e.slices) << "%" << k.regs[r].name;
  }
}

// Allocation invariants over all bundled workloads, parameterized.
class WorkloadAllocation : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadAllocation, InvariantsHold) {
  const auto all = gpurf::workloads::make_all_workloads();
  const auto& w = *all[GetParam()];
  const auto& k = w.kernel();
  const auto inst = w.make_instance(gpurf::workloads::Scale::kSample, 0);
  const auto ranges = analysis::analyze_ranges(k, inst.launch);

  AllocOptions opt{true, false};
  const auto res = allocate_slices(k, &ranges, nullptr, opt);

  // 1. Compressed pressure never exceeds the baseline.
  EXPECT_LE(res.num_physical_regs, baseline_pressure(k));
  EXPECT_LE(res.num_physical_regs, 256u);

  // 2. No two *interfering* registers share a physical slice.
  const auto cfg = analysis::build_cfg(k);
  const auto live = analysis::compute_liveness(k, cfg);
  const auto adj = analysis::build_interference(k, cfg, live);
  for (uint32_t r1 = 0; r1 < k.num_regs(); ++r1) {
    if (!res.table[r1].valid) continue;
    for (uint32_t r2 = r1 + 1; r2 < k.num_regs(); ++r2) {
      if (!res.table[r2].valid || !adj[r1].test(r2)) continue;
      auto overlap = [](const SliceLoc& a, const SliceLoc& b) {
        return a.phys_reg == b.phys_reg && (a.mask & b.mask) != 0;
      };
      const auto& e1 = res.table[r1];
      const auto& e2 = res.table[r2];
      bool conflict = overlap(e1.r0, e2.r0);
      if (e1.split) conflict |= overlap(e1.r1, e2.r0);
      if (e2.split) conflict |= overlap(e1.r0, e2.r1);
      if (e1.split && e2.split) conflict |= overlap(e1.r1, e2.r1);
      EXPECT_FALSE(conflict)
          << "%" << k.regs[r1].name << " and %" << k.regs[r2].name
          << " interfere but share slices";
    }
  }

  // 3. Every allocated operand occupies exactly its slice count, in at
  //    most two physical registers.
  for (uint32_t r = 0; r < k.num_regs(); ++r) {
    const auto& e = res.table[r];
    if (!e.valid) continue;
    const int covered = std::popcount(e.r0.mask) +
                        (e.split ? std::popcount(e.r1.mask) : 0);
    EXPECT_EQ(covered, e.slices);
    if (e.split) {
      EXPECT_NE(e.r0.phys_reg, e.r1.phys_reg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadAllocation,
                         ::testing::Range(0, 11),
                         [](const ::testing::TestParamInfo<int>& i) {
                           const auto all =
                               gpurf::workloads::make_all_workloads();
                           return all[i.param]->spec().name;
                         });

TEST(SliceAlloc, RequiresInputsForRequestedPacking) {
  auto k = parse_kernel(
      ".kernel x\n.reg s32 %a\nentry:\n  mov.s32 %a, 1\n"
      "  st.global.s32 [%a], %a\n  ret\n");
  AllocOptions ints{true, false};
  EXPECT_THROW(allocate_slices(k, nullptr, nullptr, ints), gpurf::Error);
  AllocOptions floats{false, true};
  EXPECT_THROW(allocate_slices(k, nullptr, nullptr, floats), gpurf::Error);
}

TEST(LiveIntervals, DeadWritesFreePhysicalRows) {
  // %scratch is written but never read; classic interference still gives
  // its def edges to everything live there, so baseline colouring charges
  // a register for it.  The live-interval graph drops those edges (the
  // write is elided before it reaches the RF), so the pressure shrinks.
  auto k = parse_kernel(R"(
.kernel dead
.reg s32 %a
.reg s32 %b
.reg s32 %scratch
entry:
  mov.s32 %a, %tid.x
  mov.s32 %b, 5
  mul.s32 %scratch, %a, %b
  add.s32 %a, %a, %b
  st.global.s32 [%a], %a
  ret
)");
  EXPECT_EQ(baseline_pressure(k), 3u);
  EXPECT_EQ(live_interval_pressure(k), 2u);
}

TEST(LiveIntervals, AllocationRespectsRefinedInterference) {
  // live_intervals mode over all bundled workloads: the table must still
  // keep *refined*-interfering registers on disjoint slices, and the
  // pressure must never exceed the live-interval colouring bound.
  for (const auto& w : gpurf::workloads::make_all_workloads()) {
    const auto& k = w->kernel();
    const auto inst = w->make_instance(gpurf::workloads::Scale::kSample, 0);
    const auto ranges = analysis::analyze_ranges(k, inst.launch);
    AllocOptions opt{true, false};
    opt.live_intervals = true;
    const auto res = allocate_slices(k, &ranges, nullptr, opt);
    EXPECT_LE(res.num_physical_regs, live_interval_pressure(k))
        << w->spec().name;

    const auto cfg = analysis::build_cfg(k);
    const auto df = analysis::compute_dataflow(k, cfg);
    const auto adj = analysis::build_live_interference(k, cfg, df);
    auto overlap = [](const SliceLoc& a, const SliceLoc& b) {
      return a.phys_reg == b.phys_reg && (a.mask & b.mask) != 0;
    };
    for (uint32_t r1 = 0; r1 < k.num_regs(); ++r1) {
      if (!res.table[r1].valid) continue;
      for (uint32_t r2 = r1 + 1; r2 < k.num_regs(); ++r2) {
        if (!res.table[r2].valid || !adj[r1].test(r2)) continue;
        const auto& e1 = res.table[r1];
        const auto& e2 = res.table[r2];
        bool conflict = overlap(e1.r0, e2.r0);
        if (e1.split) conflict |= overlap(e1.r1, e2.r0);
        if (e2.split) conflict |= overlap(e1.r0, e2.r1);
        if (e1.split && e2.split) conflict |= overlap(e1.r1, e2.r1);
        EXPECT_FALSE(conflict)
            << w->spec().name << ": %" << k.regs[r1].name << " and %"
            << k.regs[r2].name << " interfere but share slices";
      }
    }
  }
}

TEST(SliceAlloc, PredicatesExcluded) {
  auto k = parse_kernel(R"(
.kernel p
.reg s32 %a
.reg pred %p0
.reg pred %p1
entry:
  mov.s32 %a, 1
  setp.lt.s32 %p0, %a, 2
  setp.gt.s32 %p1, %a, 0
  @%p0 add.s32 %a, %a, 1
  @%p1 add.s32 %a, %a, 2
  st.global.s32 [%a], %a
  ret
)");
  EXPECT_EQ(baseline_pressure(k), 1u);  // only %a occupies the RF
}

}  // namespace
}  // namespace gpurf::alloc
