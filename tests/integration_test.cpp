// End-to-end integration tests across the module boundaries: the full
// static framework on fast workloads, compressed functional equivalence,
// and small-scale timing runs with the generated allocations.

#include <gtest/gtest.h>

#include "quality/metrics.hpp"
#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {
namespace {

using gpurf::quality::QualityLevel;

// DWT2D and GICOV are the fastest kernels to tune; the pipeline memoizes,
// and tuned precision maps are cached on disk across processes.

TEST(Pipeline, Dwt2dEndToEnd) {
  const auto w = make_dwt2d();
  const auto& pr = run_pipeline(*w);

  // Structural expectations (also covered by bench_fig9).
  EXPECT_EQ(pr.pressure.original, 38u);
  EXPECT_LT(pr.pressure.narrow_int, 25u);         // int framework dominates
  EXPECT_EQ(pr.pressure.narrow_float_perfect, 38u);  // floats don't matter
  EXPECT_LE(pr.pressure.both_perfect, 20u);
  // Binary-ish behaviour of its normalised outputs: perfect == lossless.
  EXPECT_GE(pr.tune_perfect.final_score, 0.0);
}

TEST(Pipeline, QualityLevelsAreOrdered) {
  const auto w = make_gicov();
  const auto& pr = run_pipeline(*w);
  // High quality can never need MORE registers than perfect quality.
  EXPECT_LE(pr.pressure.both_high, pr.pressure.both_perfect);
  EXPECT_LE(pr.pressure.both_perfect, pr.pressure.original);
  EXPECT_LE(pr.pressure.narrow_int, pr.pressure.original);
}

TEST(Pipeline, CompressedRunMeetsQualityOnFreshInputs) {
  // The tuner trained on the sample variants; validate the accepted
  // high-quality assignment on the variant it saw.
  const auto w = make_dwt2d();
  const auto& pr = run_pipeline(*w);

  auto ref_inst = w->make_instance(Scale::kSample, 0);
  const auto ref = w->run(ref_inst, nullptr);
  auto test_inst = w->make_instance(Scale::kSample, 0);
  const auto out = w->run(test_inst, &pr.tune_high.pmap);

  auto metric = w->make_metric(ref_inst);
  EXPECT_TRUE(metric->meets(metric->score(ref, out), QualityLevel::kHigh));
}

TEST(Pipeline, PerfectAssignmentIsLosslessOnSamples) {
  const auto w = make_dwt2d();
  const auto& pr = run_pipeline(*w);
  auto a = w->make_instance(Scale::kSample, 0);
  auto b = w->make_instance(Scale::kSample, 0);
  EXPECT_EQ(w->run(a, nullptr), w->run(b, &pr.tune_perfect.pmap));
}

TEST(Pipeline, TimingRunWithGeneratedAllocation) {
  // Drive the cycle-level simulator with the pipeline's real allocation on
  // a small instance; the run must complete and show compression traffic.
  const auto w = make_gicov();
  const auto& pr = run_pipeline(*w);
  auto inst = w->make_instance(Scale::kSample, 0);
  auto spec = make_launch_spec(*w, inst, pr, SimMode::kCompressedHigh);
  const auto res = gpurf::sim::simulate(
      gpurf::sim::GpuConfig::fermi_gtx480(),
      make_compression_config(SimMode::kCompressedHigh), spec);
  EXPECT_GT(res.stats.ipc(), 0.0);
  EXPECT_GT(res.stats.operand_fetches, 0u);
  EXPECT_GT(res.occupancy.blocks_per_sm,
            compute_occupancy(gpurf::sim::GpuConfig::fermi_gtx480(),
                              pr.pressure.original,
                              w->spec().warps_per_block,
                              w->kernel().shared_bytes)
                .blocks_per_sm -
                1u);
}

TEST(Pipeline, BaselineAndCompressedComputeSameOutputsModuloQuantization) {
  // For an integer-only-output kernel (Hybridsort histogram counts with a
  // lossless float assignment), baseline and compressed timing runs must
  // produce bit-identical results.
  const auto w = make_hybridsort();
  const auto& pr = run_pipeline(*w);

  auto run = [&](SimMode mode) {
    auto inst = w->make_instance(Scale::kSample, 0);
    auto spec = make_launch_spec(*w, inst, pr, mode);
    gpurf::sim::simulate(gpurf::sim::GpuConfig::fermi_gtx480(),
                         make_compression_config(mode), spec);
    return inst.gmem.read_f32(inst.out_base, inst.out_words);
  };
  // Binary metric: the tuner only accepted lossless formats, so even the
  // compressed run's outputs are identical.
  EXPECT_EQ(run(SimMode::kOriginal), run(SimMode::kCompressedHigh));
}

TEST(Pipeline, LaunchSpecWiring) {
  const auto w = make_dwt2d();
  const auto& pr = run_pipeline(*w);
  auto inst = w->make_instance(Scale::kSample, 0);

  auto orig = make_launch_spec(*w, inst, pr, SimMode::kOriginal);
  EXPECT_EQ(orig.regs_per_thread, pr.pressure.original);
  EXPECT_EQ(orig.precision, nullptr);
  EXPECT_EQ(orig.allocation, nullptr);

  auto comp = make_launch_spec(*w, inst, pr, SimMode::kCompressedPerfect);
  EXPECT_EQ(comp.regs_per_thread, pr.pressure.both_perfect);
  EXPECT_EQ(comp.precision, &pr.tune_perfect.pmap);
  EXPECT_EQ(comp.allocation, &pr.alloc_both_perfect);

  EXPECT_FALSE(make_compression_config(SimMode::kOriginal).enabled);
  EXPECT_TRUE(make_compression_config(SimMode::kCompressedHigh).enabled);
}

}  // namespace
}  // namespace gpurf::workloads
