// Differential / property fuzzing: generate random (but well-formed)
// straight-line + loop kernels, then check cross-cutting invariants that
// no hand-written case can cover exhaustively:
//
//   1. range-analysis soundness — executing the kernel never writes an
//      integer outside its statically computed range;
//   2. interpreter determinism — two runs produce bit-identical outputs;
//   3. assembler/printer round-trip stability on generated programs;
//   4. slice-allocation validity on generated programs (covered widths,
//      no interfering overlap — reusing the alloc_test checker);
//   5. SoA/scalar equivalence — the warp-vectorized data path and the
//      per-lane reference path produce bit-identical memory images and
//      instruction counts, including float kernels with divergent control
//      flow, guards, and partially valid warps (ISSUE 2);
//   6. block-parallel determinism — sharding grid blocks across the thread
//      pool with write-combine buffers reproduces the serial schedule's
//      image exactly;
//   7. static memory-proof soundness (ISSUE 10) — per-block dynamic store
//      sets (captured through the write log) always lie inside the static
//      footprint hulls, the overlap prover never calls dynamically
//      overlapping kernels stores-disjoint, and bounds-check elision on
//      proven sites is bit-identical (no elided check could have fired).

#include <gtest/gtest.h>

#include <bit>

#include <algorithm>

#include "alloc/slice_alloc.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/liveness.hpp"
#include "analysis/memory_access.hpp"
#include "analysis/range_analysis.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "exec/interp.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "testing_util.hpp"

namespace gpurf {
namespace {

/// Generates a random kernel: a prologue defining N integer registers from
/// tids/constants, a bounded loop mixing arithmetic over them (with
/// occasional clamps and guarded ops), and stores of every register.
std::string generate_kernel(uint32_t seed) {
  Pcg32 rng(seed, 0xF22);
  const int nregs = 4 + int(rng.next_below(6));
  std::string s = ".kernel fuzz" + std::to_string(seed) + "\n";
  s += ".param s32 out_base\n";
  for (int r = 0; r < nregs; ++r)
    s += ".reg s32 %r" + std::to_string(r) + "\n";
  s += ".reg s32 %i\n.reg pred %p\n.reg pred %q\nentry:\n";

  auto reg = [&](int r) { return "%r" + std::to_string(r); };
  // Prologue: every register defined.
  for (int r = 0; r < nregs; ++r) {
    switch (rng.next_below(3)) {
      case 0:
        s += "  mov.s32 " + reg(r) + ", %tid.x\n";
        break;
      case 1:
        s += "  mov.s32 " + reg(r) + ", " +
             std::to_string(int(rng.next_below(200)) - 100) + "\n";
        break;
      default:
        s += "  mov.s32 " + reg(r) + ", %ctaid.x\n";
        break;
    }
  }
  const int trip = 2 + int(rng.next_below(6));
  s += "  mov.s32 %i, 0\nhead:\n";
  s += "  setp.ge.s32 %p, %i, " + std::to_string(trip) + "\n";
  s += "  @%p bra done\nbody:\n";

  const int nops = 3 + int(rng.next_below(10));
  for (int op = 0; op < nops; ++op) {
    const int d = int(rng.next_below(nregs));
    const int a = int(rng.next_below(nregs));
    const int b = int(rng.next_below(nregs));
    const bool guarded = rng.next_below(5) == 0;
    std::string pre;
    if (guarded) {
      s += "  setp.lt.s32 %q, " + reg(a) + ", 17\n";
      pre = "  @%q ";
    } else {
      pre = "  ";
    }
    switch (rng.next_below(8)) {
      case 0: s += pre + "add.s32 " + reg(d) + ", " + reg(a) + ", " + reg(b) + "\n"; break;
      case 1: s += pre + "sub.s32 " + reg(d) + ", " + reg(a) + ", " + reg(b) + "\n"; break;
      case 2: s += pre + "mul.s32 " + reg(d) + ", " + reg(a) + ", " +
                   std::to_string(rng.next_below(7)) + "\n"; break;
      case 3: s += pre + "min.s32 " + reg(d) + ", " + reg(a) + ", " +
                   std::to_string(int(rng.next_below(64))) + "\n"; break;
      case 4: s += pre + "max.s32 " + reg(d) + ", " + reg(a) + ", " +
                   std::to_string(-int(rng.next_below(64))) + "\n"; break;
      case 5: s += pre + "and.s32 " + reg(d) + ", " + reg(a) + ", " +
                   std::to_string((1u << (1 + rng.next_below(10))) - 1) + "\n"; break;
      case 6: s += pre + "shr.s32 " + reg(d) + ", " + reg(a) + ", " +
                   std::to_string(rng.next_below(8)) + "\n"; break;
      default: s += pre + "selp.s32 " + reg(d) + ", " + reg(a) + ", " +
                    reg(b) + ", %p\n"; break;
    }
  }
  s += "  add.s32 %i, %i, 1\n  bra head\ndone:\n";
  // Epilogue: store every register so everything is live and observable.
  s += "  mov.s32 %i, %tid.x\n";
  for (int r = 0; r < nregs; ++r) {
    s += "  mad.s32 %i, %i, 1, $out_base\n";
    s += "  st.global.s32 [%i+" + std::to_string(r * 64) + "], " + reg(r) +
         "\n";
    s += "  mov.s32 %i, %tid.x\n";
  }
  s += "  ret\n";
  return s;
}

/// Mixed int/float generator with *divergent* control flow: like
/// generate_kernel, plus f32 registers seeded from the integer state and a
/// per-iteration if/else diamond predicated on lane-dependent data, so the
/// SIMT stack actually splits and reconverges.  Launched with 48 threads
/// per block the second warp also runs with a partially valid mask.
std::string generate_divergent_kernel(uint32_t seed) {
  Pcg32 rng(seed, 0xD1F);
  const int nregs = 3 + int(rng.next_below(4));
  const int nfregs = 2 + int(rng.next_below(4));
  std::string s = ".kernel fuzzdiv" + std::to_string(seed) + "\n";
  s += ".param s32 out_base\n";
  for (int r = 0; r < nregs; ++r)
    s += ".reg s32 %r" + std::to_string(r) + "\n";
  for (int f = 0; f < nfregs; ++f)
    s += ".reg f32 %f" + std::to_string(f) + "\n";
  s += ".reg s32 %i\n.reg pred %p\n.reg pred %q\nentry:\n";

  auto reg = [&](int r) { return "%r" + std::to_string(r); };
  auto freg = [&](int f) { return "%f" + std::to_string(f); };
  for (int r = 0; r < nregs; ++r) {
    switch (rng.next_below(3)) {
      case 0: s += "  mov.s32 " + reg(r) + ", %tid.x\n"; break;
      case 1:
        s += "  mov.s32 " + reg(r) + ", " +
             std::to_string(int(rng.next_below(200)) - 100) + "\n";
        break;
      default: s += "  mov.s32 " + reg(r) + ", %ctaid.x\n"; break;
    }
  }
  for (int f = 0; f < nfregs; ++f)
    s += "  cvt.f32.s32 " + freg(f) + ", " + reg(int(rng.next_below(nregs))) +
         "\n";

  const int trip = 2 + int(rng.next_below(5));
  s += "  mov.s32 %i, 0\nhead:\n";
  s += "  setp.ge.s32 %p, %i, " + std::to_string(trip) + "\n";
  s += "  @%p bra done\nbody:\n";

  int label = 0;
  auto emit_float_op = [&](const std::string& pre) {
    const int d = int(rng.next_below(nfregs));
    const int a = int(rng.next_below(nfregs));
    const int b = int(rng.next_below(nfregs));
    switch (rng.next_below(8)) {
      case 0: s += pre + "add.f32 " + freg(d) + ", " + freg(a) + ", " + freg(b) + "\n"; break;
      case 1: s += pre + "sub.f32 " + freg(d) + ", " + freg(a) + ", " + freg(b) + "\n"; break;
      case 2: s += pre + "mul.f32 " + freg(d) + ", " + freg(a) + ", 0.5\n"; break;
      case 3: s += pre + "mad.f32 " + freg(d) + ", " + freg(a) + ", 0.25, " + freg(b) + "\n"; break;
      case 4: s += pre + "min.f32 " + freg(d) + ", " + freg(a) + ", 64.0\n"; break;
      case 5: s += pre + "max.f32 " + freg(d) + ", " + freg(a) + ", -64.0\n"; break;
      case 6: s += pre + "div.f32 " + freg(d) + ", " + freg(a) + ", " + freg(b) + "\n"; break;
      default: s += pre + "sqrt.f32 " + freg(d) + ", " + freg(a) + "\n"; break;
    }
  };
  auto emit_int_op = [&](const std::string& pre) {
    const int d = int(rng.next_below(nregs));
    const int a = int(rng.next_below(nregs));
    const int b = int(rng.next_below(nregs));
    switch (rng.next_below(4)) {
      case 0: s += pre + "add.s32 " + reg(d) + ", " + reg(a) + ", " + reg(b) + "\n"; break;
      case 1: s += pre + "sub.s32 " + reg(d) + ", " + reg(a) + ", " + reg(b) + "\n"; break;
      case 2: s += pre + "and.s32 " + reg(d) + ", " + reg(a) + ", 255\n"; break;
      default: s += pre + "min.s32 " + reg(d) + ", " + reg(a) + ", 63\n"; break;
    }
  };

  const int nops = 2 + int(rng.next_below(5));
  for (int op = 0; op < nops; ++op) {
    const bool guarded = rng.next_below(4) == 0;
    std::string pre = "  ";
    if (guarded) {
      s += "  setp.lt.s32 %q, " + reg(int(rng.next_below(nregs))) + ", 17\n";
      pre = "  @%q ";
    }
    if (rng.next_below(2)) emit_float_op(pre); else emit_int_op(pre);
  }

  // Divergent diamond: threads split on lane-dependent data and reconverge.
  const std::string t = std::to_string(label++);
  s += "  setp.lt.s32 %q, " + reg(int(rng.next_below(nregs))) + ", " +
       std::to_string(int(rng.next_below(40))) + "\n";
  s += "  @%q bra then" + t + "\nelse" + t + ":\n";
  emit_float_op("  ");
  emit_int_op("  ");
  s += "  bra join" + t + "\nthen" + t + ":\n";
  emit_float_op("  ");
  emit_float_op("  ");
  s += "join" + t + ":\n";

  s += "  add.s32 %i, %i, 1\n  bra head\ndone:\n";
  s += "  mov.s32 %i, %tid.x\n";
  for (int r = 0; r < nregs; ++r) {
    s += "  mad.s32 %i, %i, 1, $out_base\n";
    s += "  st.global.s32 [%i+" + std::to_string(r * 64) + "], " + reg(r) +
         "\n";
    s += "  mov.s32 %i, %tid.x\n";
  }
  for (int f = 0; f < nfregs; ++f) {
    s += "  mad.s32 %i, %i, 1, $out_base\n";
    s += "  st.global.f32 [%i+" + std::to_string((nregs + f) * 64) + "], " +
         freg(f) + "\n";
    s += "  mov.s32 %i, %tid.x\n";
  }
  s += "  ret\n";
  return s;
}

struct RunOutput {
  std::vector<uint32_t> words;
  uint64_t thread_insts = 0;

  bool operator==(const RunOutput& o) const {
    return words == o.words && thread_insts == o.thread_insts;
  }
};

RunOutput run_kernel_cfg(const ir::Kernel& k,
                         const analysis::RangeAnalysisResult* rc,
                         const ir::LaunchConfig& launch, bool use_soa,
                         bool block_parallel, bool elide_dead_writes = false) {
  exec::GlobalMemory gmem;
  const uint32_t out = gmem.alloc(64 * 32 + 1024);
  exec::ExecContext ctx;
  ctx.kernel = &k;
  ctx.launch = launch;
  ctx.gmem = &gmem;
  ctx.params = {out};
  ctx.range_check = rc;
  ctx.use_soa = use_soa;
  ctx.block_parallel = block_parallel;
  ctx.elide_dead_writes = elide_dead_writes;
  RunOutput r;
  r.thread_insts = exec::run_functional(ctx);
  // Compare raw words (outputs are integers; float reinterpretation would
  // make NaN bit patterns compare unequal to themselves).
  const auto view = gmem.view(out, 64 * 32);
  r.words = {view.begin(), view.end()};
  return r;
}

std::vector<uint32_t> run_kernel(const ir::Kernel& k,
                                 const analysis::RangeAnalysisResult* rc) {
  return run_kernel_cfg(k, rc, ir::LaunchConfig{2, 1, 32, 1},
                        /*use_soa=*/true, /*block_parallel=*/false)
      .words;
}

using gpurf::testing::PoolWidth;

class FuzzSoundness : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzSoundness, RangeAnalysisNeverViolated) {
  const std::string text = generate_kernel(GetParam());
  ir::Kernel k = ir::parse_kernel(text);
  ASSERT_NO_THROW(ir::verify(k)) << text;
  const auto ranges =
      analysis::analyze_ranges(k, ir::LaunchConfig{2, 1, 32, 1});
  // A range violation aborts via GPURF_ASSERT; completing is the pass.
  EXPECT_NO_FATAL_FAILURE(run_kernel(k, &ranges)) << text;
}

TEST_P(FuzzSoundness, DeterministicExecution) {
  ir::Kernel k = ir::parse_kernel(generate_kernel(GetParam()));
  EXPECT_EQ(run_kernel(k, nullptr), run_kernel(k, nullptr));
}

TEST_P(FuzzSoundness, PrinterRoundTripStable) {
  ir::Kernel k1 = ir::parse_kernel(generate_kernel(GetParam()));
  const std::string p1 = ir::print_kernel(k1);
  ir::Kernel k2 = ir::parse_kernel(p1);
  EXPECT_EQ(p1, ir::print_kernel(k2));
  // Round-tripped kernels execute identically.
  EXPECT_EQ(run_kernel(k1, nullptr), run_kernel(k2, nullptr));
}

TEST_P(FuzzSoundness, SliceAllocationValid) {
  ir::Kernel k = ir::parse_kernel(generate_kernel(GetParam()));
  const auto ranges =
      analysis::analyze_ranges(k, ir::LaunchConfig{2, 1, 32, 1});
  alloc::AllocOptions opt{true, false};
  const auto res = alloc::allocate_slices(k, &ranges, nullptr, opt);
  EXPECT_LE(res.num_physical_regs, alloc::baseline_pressure(k));

  const auto cfg = analysis::build_cfg(k);
  const auto live = analysis::compute_liveness(k, cfg);
  const auto adj = analysis::build_interference(k, cfg, live);
  for (uint32_t r1 = 0; r1 < k.num_regs(); ++r1) {
    if (!res.table[r1].valid) continue;
    const int covered = std::popcount(res.table[r1].r0.mask) +
                        (res.table[r1].split
                             ? std::popcount(res.table[r1].r1.mask)
                             : 0);
    EXPECT_EQ(covered, res.table[r1].slices);
    for (uint32_t r2 = r1 + 1; r2 < k.num_regs(); ++r2) {
      if (!res.table[r2].valid || !adj[r1].test(r2)) continue;
      auto overlap = [](const alloc::SliceLoc& a, const alloc::SliceLoc& b) {
        return a.phys_reg == b.phys_reg && (a.mask & b.mask) != 0;
      };
      const auto& e1 = res.table[r1];
      const auto& e2 = res.table[r2];
      bool conflict = overlap(e1.r0, e2.r0);
      if (e1.split) conflict |= overlap(e1.r1, e2.r0);
      if (e2.split) conflict |= overlap(e1.r0, e2.r1);
      if (e1.split && e2.split) conflict |= overlap(e1.r1, e2.r1);
      EXPECT_FALSE(conflict);
    }
  }
}

TEST_P(FuzzSoundness, SoaMatchesScalarReference) {
  ir::Kernel k = ir::parse_kernel(generate_kernel(GetParam()));
  const ir::LaunchConfig lc{2, 1, 32, 1};
  const auto soa = run_kernel_cfg(k, nullptr, lc, true, false);
  const auto scalar = run_kernel_cfg(k, nullptr, lc, false, false);
  EXPECT_EQ(soa.words, scalar.words);
  EXPECT_EQ(soa.thread_insts, scalar.thread_insts);
}

TEST_P(FuzzSoundness, BlockParallelMatchesSerial) {
  ir::Kernel k = ir::parse_kernel(generate_kernel(GetParam()));
  const ir::LaunchConfig lc{4, 2, 32, 1};  // 8 blocks to shard
  const auto serial = run_kernel_cfg(k, nullptr, lc, true, false);
  PoolWidth width(4);
  const auto parallel = run_kernel_cfg(k, nullptr, lc, true, true);
  EXPECT_EQ(serial.words, parallel.words);
  EXPECT_EQ(serial.thread_insts, parallel.thread_insts);
}

TEST_P(FuzzSoundness, DeadWriteElisionBitIdentical) {
  // Elision consumes the static dead-dst flags (PR 9): replay with
  // elide_dead_writes on must reproduce the off image bit-for-bit and
  // execute the same thread-instruction count, in both dispatch modes.
  ir::Kernel k = ir::parse_kernel(generate_kernel(GetParam()));
  const ir::LaunchConfig lc{2, 1, 32, 1};
  const auto off = run_kernel_cfg(k, nullptr, lc, true, false, false);
  const auto on = run_kernel_cfg(k, nullptr, lc, true, false, true);
  EXPECT_TRUE(off == on);
  const auto scalar_off = run_kernel_cfg(k, nullptr, lc, false, false, false);
  const auto scalar_on = run_kernel_cfg(k, nullptr, lc, false, false, true);
  EXPECT_TRUE(scalar_off == scalar_on);
  EXPECT_TRUE(off == scalar_on);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSoundness,
                         ::testing::Range(1u, 26u));  // 25 random programs

// Divergent float kernels: the SIMT stack splits, guards mask lanes, the
// second warp runs partially valid (48 threads), and several blocks write
// overlapping addresses (every block stores the same out-range), which
// exercises the grid-order write-combine merge.
class FuzzDivergent : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzDivergent, SoaMatchesScalarReference) {
  const std::string text = generate_divergent_kernel(GetParam());
  ir::Kernel k = ir::parse_kernel(text);
  ASSERT_NO_THROW(ir::verify(k)) << text;
  const ir::LaunchConfig lc{3, 1, 48, 1};
  const auto soa = run_kernel_cfg(k, nullptr, lc, true, false);
  const auto scalar = run_kernel_cfg(k, nullptr, lc, false, false);
  EXPECT_EQ(soa.words, scalar.words) << text;
  EXPECT_EQ(soa.thread_insts, scalar.thread_insts);
}

TEST_P(FuzzDivergent, BlockParallelMatchesSerialScalar) {
  ir::Kernel k = ir::parse_kernel(generate_divergent_kernel(GetParam()));
  const ir::LaunchConfig lc{5, 1, 48, 1};
  const auto serial = run_kernel_cfg(k, nullptr, lc, false, false);
  PoolWidth width(4);
  const auto parallel = run_kernel_cfg(k, nullptr, lc, true, true);
  EXPECT_EQ(serial.words, parallel.words);
  EXPECT_EQ(serial.thread_insts, parallel.thread_insts);
}

TEST_P(FuzzDivergent, DeterministicExecution) {
  ir::Kernel k = ir::parse_kernel(generate_divergent_kernel(GetParam()));
  const ir::LaunchConfig lc{3, 1, 48, 1};
  EXPECT_TRUE(run_kernel_cfg(k, nullptr, lc, true, false) ==
              run_kernel_cfg(k, nullptr, lc, true, false));
}

TEST_P(FuzzDivergent, DeadWriteElisionBitIdentical) {
  // Divergent diamonds + partially valid warps: the dead-dst flags are
  // per instruction, not per lane, so elision must stay sound when the
  // SIMT stack splits.  Serial and block-parallel schedules both pin it.
  ir::Kernel k = ir::parse_kernel(generate_divergent_kernel(GetParam()));
  const ir::LaunchConfig lc{3, 1, 48, 1};
  const auto off = run_kernel_cfg(k, nullptr, lc, true, false, false);
  const auto on = run_kernel_cfg(k, nullptr, lc, true, false, true);
  EXPECT_TRUE(off == on);
  PoolWidth width(4);
  const auto par_on = run_kernel_cfg(k, nullptr, lc, true, true, true);
  EXPECT_TRUE(off == par_on);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDivergent,
                         ::testing::Range(100u, 125u));  // 25 programs

/// Like generate_kernel, but the loop body also writes a rotating set of
/// scratch registers that are never read anywhere — every such write is
/// statically dead (some guarded, exercising partial-def dead writes), so
/// the dataflow pass must flag them and elision must skip real work.
std::string generate_dead_write_kernel(uint32_t seed) {
  Pcg32 rng(seed, 0xDEAD);
  const int nregs = 3 + int(rng.next_below(4));
  const int nscratch = 2 + int(rng.next_below(3));
  std::string s = ".kernel dead" + std::to_string(seed) + "\n";
  s += ".param s32 out_base\n";
  for (int r = 0; r < nregs; ++r)
    s += ".reg s32 %r" + std::to_string(r) + "\n";
  for (int d = 0; d < nscratch; ++d)
    s += ".reg s32 %dw" + std::to_string(d) + "\n";
  s += ".reg s32 %i\n.reg pred %p\n.reg pred %q\nentry:\n";
  auto reg = [&](int r) { return "%r" + std::to_string(r); };
  for (int r = 0; r < nregs; ++r)
    s += "  mov.s32 " + reg(r) + ", " +
         (rng.next_below(2) ? "%tid.x" : "%ctaid.x") + "\n";
  // Scratch regs must be initialized before any guarded (partial) write:
  // a partial def merges the old value, so an uninitialized guarded dst
  // would be a genuine undefined read.  These inits are dead writes too.
  for (int d = 0; d < nscratch; ++d)
    s += "  mov.s32 %dw" + std::to_string(d) + ", 0\n";
  const int trip = 2 + int(rng.next_below(5));
  s += "  mov.s32 %i, 0\nhead:\n";
  s += "  setp.ge.s32 %p, %i, " + std::to_string(trip) + "\n";
  s += "  @%p bra done\nbody:\n";
  const int nops = 4 + int(rng.next_below(8));
  for (int op = 0; op < nops; ++op) {
    const int a = int(rng.next_below(nregs));
    const int b = int(rng.next_below(nregs));
    if (rng.next_below(2)) {
      // Dead scratch write, sometimes guarded (a partial dead def).
      const std::string dst = "%dw" + std::to_string(rng.next_below(
                                          uint32_t(nscratch)));
      std::string pre = "  ";
      if (rng.next_below(3) == 0) {
        s += "  setp.lt.s32 %q, " + reg(a) + ", 21\n";
        pre = "  @%q ";
      }
      s += pre + "mad.s32 " + dst + ", " + reg(a) + ", 7, " + reg(b) + "\n";
    } else {
      const int d = int(rng.next_below(nregs));
      s += "  add.s32 " + reg(d) + ", " + reg(a) + ", " + reg(b) + "\n";
    }
  }
  s += "  add.s32 %i, %i, 1\n  bra head\ndone:\n";
  s += "  mov.s32 %i, %tid.x\n";
  for (int r = 0; r < nregs; ++r) {
    s += "  mad.s32 %i, %i, 1, $out_base\n";
    s += "  st.global.s32 [%i+" + std::to_string(r * 64) + "], " + reg(r) +
         "\n";
    s += "  mov.s32 %i, %tid.x\n";
  }
  s += "  ret\n";
  return s;
}

class FuzzDeadWrites : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzDeadWrites, StaticallyDeadWritesAreUnobservable) {
  const std::string text = generate_dead_write_kernel(GetParam());
  ir::Kernel k = ir::parse_kernel(text);
  ASSERT_NO_THROW(ir::verify(k)) << text;

  // The pass must actually find the planted dead writes (every %dw write).
  const auto cfg = analysis::build_cfg(k);
  const auto df = analysis::compute_dataflow(k, cfg);
  const auto rep = analysis::build_kernel_report(k, cfg, df);
  EXPECT_FALSE(rep.dead_writes.empty()) << text;
  EXPECT_TRUE(rep.clean());

  // Skipping them is unobservable: the scalar reference replay with
  // elision matches both non-elided replays bit-for-bit.
  const ir::LaunchConfig lc{2, 1, 32, 1};
  const auto scalar_off = run_kernel_cfg(k, nullptr, lc, false, false, false);
  const auto scalar_on = run_kernel_cfg(k, nullptr, lc, false, false, true);
  const auto soa_on = run_kernel_cfg(k, nullptr, lc, true, false, true);
  EXPECT_TRUE(scalar_off == scalar_on) << text;
  EXPECT_TRUE(scalar_off == soa_on) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDeadWrites,
                         ::testing::Range(500u, 515u));  // 15 programs

// -------------------------------------------------- memory-proof oracles

constexpr uint32_t kMemGrid = 4;       ///< blocks per fuzz launch
constexpr uint32_t kMemWords = 8192;   ///< global image, covers every seed

/// Memory-pattern generator (ISSUE 10): each thread computes
/// gid = ctaid.x * span + tid.x and stores through affine chains of gid —
/// seed-dependent span/stride make some launches truly block-disjoint
/// (span >= 32 keeps gid ranges apart) and others genuinely colliding
/// (span < 32 repeats gid across blocks), so the overlap prover sees both
/// verdicts.  Some seeds add a masked data-dependent store (bounded but
/// block-overlapping by construction) and a load from the thread's own
/// slot, exercising unproven-overlap and loads_local paths.
std::string generate_mem_kernel(uint32_t seed) {
  Pcg32 rng(seed, 0x3E3);
  const int span = int(8u << rng.next_below(4));   // 8,16,32,64
  const int stride = 1 + int(rng.next_below(2));   // 1,2
  const int off = int(rng.next_below(16));
  const bool masked_store = rng.next_below(3) == 0;
  const bool self_load = rng.next_below(2) == 0;
  std::string s = ".kernel mem" + std::to_string(seed) + "\n";
  s += ".param s32 out_base\n";
  s += ".reg s32 %gid\n.reg s32 %a\n.reg s32 %t\nentry:\n";
  s += "  mov.s32 %gid, %ctaid.x\n";
  s += "  mad.s32 %gid, %gid, " + std::to_string(span) + ", %tid.x\n";
  s += "  mad.s32 %a, %gid, " + std::to_string(stride) + ", $out_base\n";
  s += "  st.global.s32 [%a+" + std::to_string(off) + "], %gid\n";
  if (self_load) {
    s += "  ld.global.s32 %t, [%a+" + std::to_string(off) + "]\n";
    s += "  st.global.s32 [%a+" + std::to_string(off) + "], %t\n";
  }
  if (masked_store) {
    // Bounded by the mask but identical across blocks: hulls overlap, so
    // the prover must refuse stores_disjoint for this seed.
    s += "  and.s32 %t, %gid, 255\n";
    s += "  mad.s32 %t, %t, 1, $out_base\n";
    s += "  st.global.s32 [%t+4096], %gid\n";
  }
  s += "  ret\n";
  return s;
}

/// Dynamic per-block store sets: run each block alone (every %ctaid.x
/// occurrence substituted with the concrete block id, grid = 1) against a
/// fresh image with the write log armed.  The same alloc sequence as the
/// static side keeps addresses comparable.
std::vector<std::vector<uint32_t>> per_block_store_sets(
    const std::string& text) {
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t b = 0; b < kMemGrid; ++b) {
    std::string spec = text;
    const std::string needle = "%ctaid.x";
    for (size_t pos; (pos = spec.find(needle)) != std::string::npos;)
      spec.replace(pos, needle.size(), std::to_string(b));
    ir::Kernel k = ir::parse_kernel(spec);
    exec::GlobalMemory gmem;
    const uint32_t out = gmem.alloc(kMemWords);
    gmem.begin_write_log();
    exec::ExecContext ctx;
    ctx.kernel = &k;
    ctx.launch = ir::LaunchConfig{1, 1, 32, 1};
    ctx.gmem = &gmem;
    ctx.params = {out};
    ctx.use_soa = true;
    ctx.block_parallel = false;
    exec::run_functional(ctx);
    sets.push_back(gmem.written_words());
  }
  return sets;
}

class FuzzMemProofs : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzMemProofs, StaticFootprintsCoverDynamicStores) {
  // Trace oracle: every dynamically executed store address must lie inside
  // the block's static store hull — an address the solver missed would be
  // an unsound footprint (and could unsoundly prove disjointness).
  const std::string text = generate_mem_kernel(GetParam());
  ir::Kernel k = ir::parse_kernel(text);
  ASSERT_NO_THROW(ir::verify(k)) << text;
  const ir::LaunchConfig lc{kMemGrid, 1, 32, 1};
  exec::GlobalMemory ref;
  const uint32_t out = ref.alloc(kMemWords);
  const std::vector<uint32_t> params{out};
  analysis::MemoryAccessOptions mo;
  mo.param_values = &params;
  const auto ma = analysis::analyze_memory_accesses(k, lc, mo);
  ASSERT_TRUE(ma.footprints_computed) << text;
  ASSERT_EQ(ma.store_hull.size(), kMemGrid);

  const auto dyn = per_block_store_sets(text);
  for (uint32_t b = 0; b < kMemGrid; ++b) {
    for (const uint32_t addr : dyn[b]) {
      EXPECT_TRUE(ma.store_hull[b].contains(int64_t(addr)))
          << text << "block " << b << " stored @" << addr << " outside hull "
          << ma.store_hull[b].str();
    }
  }
}

TEST_P(FuzzMemProofs, OverlapProverSoundVsWriteLog) {
  // The prover may be incomplete (call a disjoint kernel overlapping) but
  // never unsound: a stores_disjoint verdict with dynamically intersecting
  // per-block write logs would let the sharded simulator reorder real
  // cross-block write conflicts.
  const std::string text = generate_mem_kernel(GetParam());
  ir::Kernel k = ir::parse_kernel(text);
  const ir::LaunchConfig lc{kMemGrid, 1, 32, 1};
  exec::GlobalMemory ref;
  const uint32_t out = ref.alloc(kMemWords);
  const std::vector<uint32_t> params{out};
  analysis::MemoryAccessOptions mo;
  mo.param_values = &params;
  const auto ma = analysis::analyze_memory_accesses(k, lc, mo);
  if (!ma.stores_disjoint) return;  // overlap claimed: nothing to refute

  const auto dyn = per_block_store_sets(text);  // each set is ascending
  for (uint32_t a = 0; a < kMemGrid; ++a) {
    for (uint32_t b = a + 1; b < kMemGrid; ++b) {
      std::vector<uint32_t> common;
      std::set_intersection(dyn[a].begin(), dyn[a].end(), dyn[b].begin(),
                            dyn[b].end(), std::back_inserter(common));
      EXPECT_TRUE(common.empty())
          << text << "blocks " << a << " and " << b << " both stored @"
          << (common.empty() ? 0 : common[0])
          << " yet the prover claimed stores_disjoint";
    }
  }
}

TEST_P(FuzzMemProofs, ElidedBoundsChecksNeverObservable) {
  // Proven sites skip GPURF_CHECK entirely; if a proof were wrong the
  // elided replay would touch memory the checked replay faulted on.  Both
  // replays completing bit-identically (words and instruction count, SoA
  // and scalar) pins that no elided check would ever have fired.
  const std::string text = generate_mem_kernel(GetParam());
  ir::Kernel k = ir::parse_kernel(text);
  const ir::LaunchConfig lc{kMemGrid, 1, 32, 1};
  exec::GlobalMemory ref;
  const uint32_t out = ref.alloc(kMemWords);
  const std::vector<uint32_t> params{out};
  analysis::MemoryAccessOptions mo;
  mo.param_values = &params;
  const auto ma = analysis::analyze_memory_accesses(k, lc, mo);
  const auto proven =
      analysis::prove_in_bounds(ma, kMemWords, analysis::shared_words(k));
  // Every seed's straight-line affine stores must be provable — coverage
  // collapsing to zero would silently devolve this family into a no-op.
  uint32_t nproven = 0;
  for (const auto& a : ma.accesses) nproven += proven[a.flat] ? 1 : 0;
  EXPECT_GT(nproven, 0u) << text;

  auto run = [&](bool elide, bool soa) {
    exec::GlobalMemory gmem;
    const uint32_t o = gmem.alloc(kMemWords);
    exec::ExecContext ctx;
    ctx.kernel = &k;
    ctx.launch = lc;
    ctx.gmem = &gmem;
    ctx.params = {o};
    ctx.use_soa = soa;
    ctx.block_parallel = false;
    ctx.elide_bounds_checks = elide;
    ctx.mem_proven = elide ? proven.data() : nullptr;
    RunOutput r;
    r.thread_insts = exec::run_functional(ctx);
    const auto view = gmem.view(o, kMemWords);
    r.words = {view.begin(), view.end()};
    return r;
  };
  const auto off = run(false, true);
  const auto on = run(true, true);
  EXPECT_TRUE(off == on) << text;
  const auto scalar_on = run(true, false);
  EXPECT_TRUE(off == scalar_on) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMemProofs,
                         ::testing::Range(900u, 925u));  // 25 programs

}  // namespace
}  // namespace gpurf
