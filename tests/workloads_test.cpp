// Workload-level tests: every bundled kernel parses, verifies, matches its
// Table-4 register pressure exactly, executes soundly under range checking,
// and reproduces its own reference deterministically.  Parameterized over
// the eleven kernels.

#include <gtest/gtest.h>

#include "alloc/slice_alloc.hpp"
#include "analysis/range_analysis.hpp"
#include "ir/verifier.hpp"
#include "quality/metrics.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<int> {
 protected:
  const Workload& workload() {
    static const auto all = make_all_workloads();
    return *all[static_cast<size_t>(GetParam())];
  }
};

TEST_P(WorkloadSuite, KernelVerifies) {
  const auto& w = workload();
  EXPECT_NO_THROW(gpurf::ir::verify(w.kernel()));
  EXPECT_GT(w.kernel().num_insts(), 50u);  // substantial programs
}

TEST_P(WorkloadSuite, PressureMatchesTable4Exactly) {
  const auto& w = workload();
  EXPECT_EQ(gpurf::alloc::baseline_pressure(w.kernel()),
            w.spec().paper_regs)
      << w.spec().name;
}

TEST_P(WorkloadSuite, DeterministicInstances) {
  const auto& w = workload();
  auto a = w.make_instance(Scale::kSample, 0);
  auto b = w.make_instance(Scale::kSample, 0);
  EXPECT_EQ(a.launch.num_blocks(), b.launch.num_blocks());
  EXPECT_EQ(a.gmem.size(), b.gmem.size());
  const auto ra = w.run(a, nullptr);
  const auto rb = w.run(b, nullptr);
  EXPECT_EQ(ra, rb);
}

TEST_P(WorkloadSuite, VariantsDiffer) {
  const auto& w = workload();
  if (w.num_sample_variants() < 2) GTEST_SKIP() << "single-variant workload";
  auto a = w.make_instance(Scale::kSample, 0);
  auto b = w.make_instance(Scale::kSample, 1);
  EXPECT_NE(w.run(a, nullptr), w.run(b, nullptr));
}

TEST_P(WorkloadSuite, RangeAnalysisIsSound) {
  // Integer range-analysis results are *proofs*: executing the kernel with
  // per-write range assertions must not fire.
  const auto& w = workload();
  auto inst = w.make_instance(Scale::kSample, 0);
  const auto ranges =
      gpurf::analysis::analyze_ranges(w.kernel(), inst.launch);
  EXPECT_NO_THROW(w.run(inst, nullptr, &ranges));
}

TEST_P(WorkloadSuite, PerfectQualityAgainstSelf) {
  const auto& w = workload();
  auto inst = w.make_instance(Scale::kSample, 0);
  auto metric = w.make_metric(inst);
  const auto ref = w.run(inst, nullptr);
  const double s = metric->score(ref, ref);
  EXPECT_TRUE(metric->meets(s, gpurf::quality::QualityLevel::kPerfect));
}

TEST_P(WorkloadSuite, IntPackingReducesOrKeepsPressure) {
  const auto& w = workload();
  auto inst = w.make_instance(Scale::kSample, 0);
  const auto ranges =
      gpurf::analysis::analyze_ranges(w.kernel(), inst.launch);
  gpurf::alloc::AllocOptions ints{true, false};
  const auto res =
      gpurf::alloc::allocate_slices(w.kernel(), &ranges, nullptr, ints);
  EXPECT_LE(res.num_physical_regs, w.spec().paper_regs);
  EXPECT_GT(res.num_physical_regs, 0u);
}

TEST_P(WorkloadSuite, FullScaleLoadsAllSms) {
  // Full-scale instances must provide enough blocks to occupy 15 SMs.
  const auto& w = workload();
  const auto inst = w.make_instance(Scale::kFull, 0);
  EXPECT_GE(inst.launch.num_blocks(), 90u) << w.spec().name;
  EXPECT_EQ(inst.launch.warps_per_block(), w.spec().warps_per_block);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadSuite, ::testing::Range(0, 11),
                         [](const ::testing::TestParamInfo<int>& i) {
                           static const auto all = make_all_workloads();
                           return all[i.param]->spec().name;
                         });

TEST(Workloads, ImgvfMatchesPaperTable1Sharedmem) {
  const auto w = make_imgvf();
  EXPECT_EQ(w->kernel().shared_bytes, 14560u);  // §6.1 occupancy cap
  EXPECT_EQ(w->spec().warps_per_block, 10u);
}

TEST(Workloads, MetricsMatchTable4) {
  using gpurf::quality::MetricKind;
  const auto all = make_all_workloads();
  EXPECT_EQ(all[0]->spec().metric, MetricKind::kSsim);       // Deferred
  EXPECT_EQ(all[4]->spec().metric, MetricKind::kDeviation);  // CFD
  EXPECT_EQ(all[10]->spec().metric, MetricKind::kBinary);    // Hybridsort
}

TEST(Workloads, ElevenKernelsInPaperOrder) {
  const auto all = make_all_workloads();
  ASSERT_EQ(all.size(), 11u);
  const char* names[] = {"Deferred",  "SSAO",    "Elevated", "Pathtracer",
                         "CFD",       "DWT2D",   "Hotspot",  "Hotspot3D",
                         "IMGVF",     "GICOV",   "Hybridsort"};
  for (size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i]->spec().name, names[i]);
}

}  // namespace
}  // namespace gpurf::workloads
