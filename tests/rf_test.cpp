// Tests for the §3.2 hardware models: slice gather/scatter, Value
// Extractor / Converter / Truncator, indirection-table packing, banked
// storage with slice-masked writes, the end-to-end compressed register
// file, and the §6.4 / §6.5 / §7 analytical models.

#include <gtest/gtest.h>

#include <bit>

#include "common/bitutil.hpp"
#include "common/rng.hpp"
#include "rf/area_model.hpp"
#include "rf/compressed_rf.hpp"
#include "rf/indirection_table.hpp"
#include "rf/power_model.hpp"
#include "rf/register_file.hpp"
#include "rf/slices.hpp"
#include "rf/value_converter.hpp"
#include "rf/value_extractor.hpp"
#include "rf/value_truncator.hpp"

namespace gpurf::rf {
namespace {

TEST(Slices, GetSet) {
  uint32_t w = 0;
  w = set_slice(w, 0, 0xa);
  w = set_slice(w, 7, 0x5);
  EXPECT_EQ(w, 0x5000000au);
  EXPECT_EQ(get_slice(w, 0), 0xau);
  EXPECT_EQ(get_slice(w, 7), 0x5u);
  EXPECT_EQ(get_slice(w, 3), 0u);
}

TEST(Slices, MaskExpansion) {
  EXPECT_EQ(slice_mask_to_bits(0x01), 0x0000000fu);
  EXPECT_EQ(slice_mask_to_bits(0x80), 0xf0000000u);
  EXPECT_EQ(slice_mask_to_bits(0xff), 0xffffffffu);
  EXPECT_EQ(slice_mask_to_bits(0x21), 0x00f0000fu);
}

TEST(Slices, ScatterGatherInverse) {
  gpurf::Pcg32 rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const uint8_t mask = static_cast<uint8_t>(rng.next_below(255) + 1);
    const int n = std::popcount(mask);
    const uint32_t value = rng.next_u32() & low_mask(4 * n);
    const uint32_t img = scatter_slices(value, mask, 0);
    EXPECT_EQ(gather_slices(img, mask, 0), value)
        << "mask=" << int(mask) << " value=" << value;
    // Scatter writes only inside the mask.
    EXPECT_EQ(img & ~slice_mask_to_bits(mask), 0u);
  }
}

TEST(Tve, PaperFigure3Scenario) {
  // Fig. 3: a 16-bit float split across two registers — data slice 0 in
  // slice 7 of r0; slices 1,2,3 in slices 2,3,6 of r1.
  const uint32_t operand = 0xabcd;  // 4 data slices: d..a from LSB
  TruncateSpec t;
  t.mask0 = 0x80;  // slice 7 of r0
  t.mask1 = 0x4c;  // slices 2,3,6 of r1
  t.data_slices = 4;
  t.is_float = false;
  const auto piece = tvt_truncate(operand, t);
  EXPECT_EQ(get_slice(piece.data0, 7), 0xdu);
  EXPECT_EQ(get_slice(piece.data1, 2), 0xcu);
  EXPECT_EQ(get_slice(piece.data1, 3), 0xbu);
  EXPECT_EQ(get_slice(piece.data1, 6), 0xau);

  // Read path: extract both pieces, OR-merge, no padding needed.
  ExtractSpec e0{0x80, 0, 4, false};
  ExtractSpec e1{0x4c, 1, 4, false};
  const uint32_t merged =
      tve_extract_piece(piece.data0, e0) | tve_extract_piece(piece.data1, e1);
  EXPECT_EQ(tve_finalize(merged, e0), operand);
}

TEST(Tve, SignExtension) {
  // A 2-slice signed operand: the sign bit is bit 7 of the extracted
  // value; set -> pad with 0xF nibbles, clear -> zeros.
  ExtractSpec e{0x03, 0, 2, true};
  EXPECT_EQ(tve_extract(0x0000007fu, e), 0x0000007fu);   // +127
  EXPECT_EQ(tve_extract(0x000000ffu, e), 0xffffffffu);   // -1
  EXPECT_EQ(tve_extract(0x000000f0u, e), 0xfffffff0u);   // -16
  e.is_signed = false;
  EXPECT_EQ(tve_extract(0x000000f0u, e), 0x000000f0u);   // zero padded
}

TEST(Tve, ExtractMatchesShiftReference) {
  // Contiguous low-slice placement must equal plain masking +
  // sign-extension.
  gpurf::Pcg32 rng(3);
  for (int n = 1; n <= 8; ++n) {
    const uint8_t mask = static_cast<uint8_t>(low_mask(n));
    for (int t = 0; t < 100; ++t) {
      const uint32_t raw = rng.next_u32();
      ExtractSpec e{mask, 0, static_cast<uint8_t>(n), true};
      const int bits = 4 * n;
      EXPECT_EQ(tve_extract(raw, e),
                static_cast<uint32_t>(sign_extend(raw, bits)))
          << "n=" << n;
    }
  }
}

TEST(Converter, MatchesFormatDecode) {
  const auto fmt = gpurf::fp::format_for_bits(16);
  gpurf::Pcg32 rng(5);
  for (int t = 0; t < 200; ++t) {
    const float v = rng.next_float(-100.f, 100.f);
    const uint32_t enc = gpurf::fp::encode(v, fmt);
    EXPECT_EQ(bits_float(tvc_convert(enc, fmt)), gpurf::fp::quantize(v, fmt));
  }
}

TEST(Converter, WarpWide) {
  const auto fmt = gpurf::fp::format_for_bits(12);
  std::array<uint32_t, 32> in{};
  for (int l = 0; l < 32; ++l)
    in[l] = gpurf::fp::encode(0.25f * float(l), fmt);
  const auto out = warp_convert(in, fmt);
  for (int l = 0; l < 32; ++l)
    EXPECT_EQ(bits_float(out[l]), gpurf::fp::quantize(0.25f * float(l), fmt));
}

TEST(Truncator, FloatConversionStep) {
  TruncateSpec t;
  t.mask0 = 0x0f;
  t.mask1 = 0;
  t.data_slices = 4;
  t.is_float = true;
  t.float_fmt = gpurf::fp::format_for_bits(16);
  const float v = 1.5f;
  const auto r = tvt_truncate(float_bits(v), t);
  EXPECT_EQ(r.data0, gpurf::fp::encode(v, t.float_fmt));
  EXPECT_EQ(r.bitmask0, 0x0000ffffu);
  EXPECT_EQ(r.bitmask1, 0u);
}

TEST(Truncator, RejectsInconsistentSpec) {
  TruncateSpec t;
  t.mask0 = 0x03;
  t.mask1 = 0;
  t.data_slices = 4;  // masks cover only 2 slices
  EXPECT_DEATH(tvt_truncate(0, t), "masks do not cover");
}

TEST(IndirectionTable, PackedLayout) {
  gpurf::alloc::IndirectionEntry e;
  e.valid = true;
  e.r0 = {0x12, 0x0f};
  e.r1 = {0x34, 0xf0};
  e.split = true;
  const auto p = PackedEntry::pack(e);
  EXPECT_EQ(p.r0(), 0x12);
  EXPECT_EQ(p.m0(), 0x0f);
  EXPECT_EQ(p.r1(), 0x34);
  EXPECT_EQ(p.m1(), 0xf0);
}

TEST(IndirectionTable, BankConflictModel) {
  // 16 banks; entries interleave by register id (§3.2.2).
  EXPECT_EQ(IndirectionTable::cycles_for({0, 1, 2, 3}), 1);
  EXPECT_EQ(IndirectionTable::cycles_for({0, 16, 32}), 3);  // same bank
  EXPECT_EQ(IndirectionTable::cycles_for({0, 16, 1, 17}), 2);
  EXPECT_EQ(IndirectionTable::cycles_for({}), 0);
}

TEST(IndirectionTable, Throughput16PerCycle) {
  // 16 distinct banks are all served in one cycle (§3.2.8).
  std::vector<uint32_t> regs;
  for (uint32_t r = 0; r < 16; ++r) regs.push_back(r);
  EXPECT_EQ(IndirectionTable::cycles_for(regs), 1);
}

TEST(RegisterFile, GeometryMatchesTable2) {
  const RegisterFileGeom g;
  EXPECT_EQ(g.banks, 16);
  EXPECT_EQ(g.entries_per_bank, 64);
  EXPECT_EQ(g.bits_per_entry, 1024);
  EXPECT_EQ(g.total_thread_registers(), 32768);  // Table 2
}

TEST(RegisterFile, MaskedWritePreservesOtherSlices) {
  BankedRegisterFile rfile;
  WarpRegister a{}, b{};
  for (int l = 0; l < 32; ++l) {
    a[l] = 0x1111'1111u;
    b[l] = 0xffff'ffffu;
  }
  rfile.write(5, a);
  rfile.write_masked(5, b, slice_mask_to_bits(0x0f));
  for (int l = 0; l < 32; ++l)
    EXPECT_EQ(rfile.read(5)[l], 0x1111'ffffu);
}

TEST(CompressedRf, IntRoundTripInsideRange) {
  // A 3-slice signed integer packed in the middle of a register.
  std::vector<gpurf::alloc::IndirectionEntry> table(1);
  table[0] = {true, {0, 0x1c}, {}, false, 3, true, false, 32};
  CompressedRegisterFile crf(table, 1, 1);

  WarpRegister vals{};
  for (int l = 0; l < 32; ++l)
    vals[l] = static_cast<uint32_t>(l - 16);  // [-16, 15] fits 12 bits
  crf.write_operand(0, 0, vals);
  const auto got = crf.read_operand(0, 0);
  for (int l = 0; l < 32; ++l)
    EXPECT_EQ(int32_t(got[l]), l - 16) << "lane " << l;
}

TEST(CompressedRf, FloatRoundTripEqualsQuantize) {
  const auto fmt = gpurf::fp::format_for_bits(20);
  std::vector<gpurf::alloc::IndirectionEntry> table(1);
  table[0] = {true, {0, 0x1f}, {}, false, 5, false, true, 20};
  CompressedRegisterFile crf(table, 1, 1);

  gpurf::Pcg32 rng(21);
  WarpRegister vals{};
  for (int l = 0; l < 32; ++l)
    vals[l] = float_bits(rng.next_float(-50.f, 50.f));
  crf.write_operand(0, 0, vals);
  const auto got = crf.read_operand(0, 0);
  for (int l = 0; l < 32; ++l)
    EXPECT_EQ(bits_float(got[l]),
              gpurf::fp::quantize(bits_float(vals[l]), fmt))
        << "lane " << l;
  EXPECT_EQ(crf.stats().conversions, 1u);
}

TEST(CompressedRf, SplitOperandDoubleFetch) {
  std::vector<gpurf::alloc::IndirectionEntry> table(1);
  table[0] = {true, {0, 0xc0}, {1, 0x03}, true, 4, true, false, 32};
  CompressedRegisterFile crf(table, 2, 1);

  WarpRegister vals{};
  for (int l = 0; l < 32; ++l) vals[l] = static_cast<uint32_t>(-l);
  crf.write_operand(0, 0, vals);
  const auto got = crf.read_operand(0, 0);
  for (int l = 0; l < 32; ++l) {
    // 16-bit signed storage: values in [-32768, 32767] survive exactly.
    EXPECT_EQ(int32_t(got[l]), -l) << "lane " << l;
  }
  EXPECT_EQ(crf.stats().double_fetches, 1u);
  EXPECT_EQ(crf.stats().fetches, 2u);
}

TEST(CompressedRf, CoResidentOperandsDoNotClobber) {
  // Two operands share physical register 0: slices 0-3 and 4-7.
  std::vector<gpurf::alloc::IndirectionEntry> table(2);
  table[0] = {true, {0, 0x0f}, {}, false, 4, false, false, 32};
  table[1] = {true, {0, 0xf0}, {}, false, 4, true, false, 32};
  CompressedRegisterFile crf(table, 1, 1);

  WarpRegister a{}, b{};
  for (int l = 0; l < 32; ++l) {
    a[l] = uint32_t(l) & 0xffff;
    b[l] = static_cast<uint32_t>(-(l + 1));
  }
  crf.write_operand(0, 0, a);
  crf.write_operand(0, 1, b);
  const auto ra = crf.read_operand(0, 0);
  const auto rb = crf.read_operand(0, 1);
  for (int l = 0; l < 32; ++l) {
    EXPECT_EQ(ra[l], uint32_t(l)) << "operand 0 clobbered at lane " << l;
    EXPECT_EQ(int32_t(rb[l]), -(l + 1)) << "operand 1 at lane " << l;
  }
}

TEST(CompressedRf, PerWarpIsolation) {
  std::vector<gpurf::alloc::IndirectionEntry> table(1);
  table[0] = {true, {0, 0xff}, {}, false, 8, false, false, 32};
  CompressedRegisterFile crf(table, 1, 2);
  WarpRegister a{}, b{};
  a.fill(0xaaaa5555u);
  b.fill(0x5555aaaau);
  crf.write_operand(0, 0, a);
  crf.write_operand(1, 0, b);
  EXPECT_EQ(crf.read_operand(0, 0)[7], 0xaaaa5555u);
  EXPECT_EQ(crf.read_operand(1, 0)[7], 0x5555aaaau);
}

// ---------------------------------------------------------------- §6.4 area

TEST(AreaModel, PaperFermiNumbers) {
  const auto a = compute_area(AreaConfig::fermi_gtx480());
  EXPECT_EQ(a.tve, 1536 + 24);
  EXPECT_EQ(a.warp_extractor, 49920);
  EXPECT_EQ(a.extractors_total, 798720);
  EXPECT_EQ(a.converters_total, 249600);
  EXPECT_EQ(a.indirection_table, 49152);
  EXPECT_EQ(a.tables_total, 98304);
  EXPECT_EQ(a.tvt, 5396);
  EXPECT_EQ(a.truncators_total, 518016);
  EXPECT_EQ(a.cu_extension, 6774);
  EXPECT_EQ(a.cus_total, 108384);
  EXPECT_EQ(a.per_sm, 1773024);           // "about 1.8 million"
  EXPECT_EQ(a.chip_total, 26595360);      // "around 27,000,000"
  EXPECT_LT(a.fraction_of_chip, 0.01);    // "less than 1%"
}

TEST(AreaModel, PaperVoltaNumbers) {
  const auto a = compute_area(AreaConfig::volta_v100());
  // §7: 1.8M - 0.4M ~= 1.4M per processing block; 5.6M per SM; ~470M total.
  EXPECT_NEAR(double(a.per_rf_instance), 1.4e6, 0.05e6);
  EXPECT_NEAR(double(a.per_sm), 5.6e6, 0.2e6);
  EXPECT_NEAR(double(a.chip_total), 470e6, 10e6);
  EXPECT_GT(a.fraction_of_chip, 0.02);  // "just over 2%"
  EXPECT_LT(a.fraction_of_chip, 0.03);
}

// ---------------------------------------------------------------- §6.5 power

TEST(PowerModel, CompressedBeatsDoubledRf) {
  PowerInputs in;
  in.double_fetch_fraction = 0.1;
  const auto out = compare_power(in, AreaConfig::fermi_gtx480());
  EXPECT_LT(out.compressed_read_energy, out.doubled_rf_read_energy);
  EXPECT_TRUE(out.compressed_wins);
}

TEST(PowerModel, WorstCaseStillWins) {
  // §6.5: even if every read double-fetches, energy stays below 2x because
  // the doubled RF doubles bitline energy on *every* read.
  PowerInputs in;
  in.double_fetch_fraction = 0.84;  // leaves room for logic + table terms
  const auto out = compare_power(in, AreaConfig::fermi_gtx480());
  EXPECT_LT(out.compressed_read_energy, 2.0);
}

TEST(PowerModel, StaticOverheadMatchesArea) {
  const auto area = compute_area(AreaConfig::fermi_gtx480());
  const auto out = compare_power(PowerInputs{}, AreaConfig::fermi_gtx480());
  EXPECT_DOUBLE_EQ(out.static_overhead_fraction, area.fraction_of_chip);
}

// ------------------------------------------------- parameterized round trips

struct RoundTripCase {
  int slices;
  bool split;
};

class CompressedRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(CompressedRoundTrip, UnsignedValuesSurvive) {
  const auto [slices, split] = GetParam();
  std::vector<gpurf::alloc::IndirectionEntry> table(1);
  auto& e = table[0];
  e.valid = true;
  e.slices = static_cast<uint8_t>(slices);
  e.is_signed = false;
  if (split && slices >= 2) {
    const int first = slices / 2;
    e.r0 = {0, static_cast<uint8_t>(low_mask(first) << (8 - first))};
    e.r1 = {1, static_cast<uint8_t>(low_mask(slices - first))};
    e.split = true;
  } else {
    e.r0 = {0, static_cast<uint8_t>(low_mask(slices))};
  }
  CompressedRegisterFile crf(table, 2, 1);

  gpurf::Pcg32 rng(slices * 7 + split);
  WarpRegister vals{};
  for (int l = 0; l < 32; ++l)
    vals[l] = rng.next_u32() & low_mask(4 * slices);
  crf.write_operand(0, 0, vals);
  const auto got = crf.read_operand(0, 0);
  for (int l = 0; l < 32; ++l) EXPECT_EQ(got[l], vals[l]) << "lane " << l;
}

INSTANTIATE_TEST_SUITE_P(
    Widths, CompressedRoundTrip,
    ::testing::Values(RoundTripCase{1, false}, RoundTripCase{2, false},
                      RoundTripCase{3, false}, RoundTripCase{4, false},
                      RoundTripCase{5, false}, RoundTripCase{6, false},
                      RoundTripCase{7, false}, RoundTripCase{8, false},
                      RoundTripCase{2, true}, RoundTripCase{4, true},
                      RoundTripCase{6, true}, RoundTripCase{8, true}),
    [](const ::testing::TestParamInfo<RoundTripCase>& i) {
      return std::string(i.param.split ? "split" : "whole") +
             std::to_string(i.param.slices);
    });

}  // namespace
}  // namespace gpurf::rf
