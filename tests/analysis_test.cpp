// Tests for CFG utilities, liveness and the interval domain, including
// property-style parameterized sweeps of the interval transfer functions
// against concrete evaluation.

#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/interval.hpp"
#include "analysis/liveness.hpp"
#include "common/rng.hpp"
#include "ir/parser.hpp"

namespace gpurf::analysis {
namespace {

using gpurf::ir::parse_kernel;

ir::Kernel diamond() {
  return parse_kernel(R"(
.kernel diamond
.reg s32 %a
.reg pred %p
entry:
  mov.s32 %a, %tid.x
  setp.lt.s32 %p, %a, 16
  @%p bra left
right:
  add.s32 %a, %a, 1
  bra join
left:
  add.s32 %a, %a, 2
join:
  ret
)");
}

TEST(Cfg, DiamondStructure) {
  auto k = diamond();
  Cfg cfg = build_cfg(k);
  ASSERT_EQ(cfg.num_blocks(), 4u);
  EXPECT_EQ(cfg.succs[0], (std::vector<uint32_t>{2, 1}));  // taken, fall
  EXPECT_EQ(cfg.succs[1], (std::vector<uint32_t>{3}));
  EXPECT_EQ(cfg.succs[2], (std::vector<uint32_t>{3}));
  EXPECT_EQ(cfg.preds[3].size(), 2u);
  // RPO starts at entry.
  EXPECT_EQ(cfg.rpo.front(), 0u);
}

TEST(Cfg, DominatorsDiamond) {
  auto k = diamond();
  Cfg cfg = build_cfg(k);
  auto idom = compute_idom(cfg);
  EXPECT_EQ(idom[0], 0u);
  EXPECT_EQ(idom[1], 0u);
  EXPECT_EQ(idom[2], 0u);
  EXPECT_EQ(idom[3], 0u);  // join dominated by entry, not by either arm
}

TEST(Cfg, PostDominatorsDiamond) {
  auto k = diamond();
  Cfg cfg = build_cfg(k);
  auto ipdom = compute_ipdom(cfg);
  EXPECT_EQ(ipdom[0], 3u);  // branch reconverges at the join
  EXPECT_EQ(ipdom[1], 3u);
  EXPECT_EQ(ipdom[2], 3u);
  EXPECT_EQ(ipdom[3], kNoBlock);  // exit
}

TEST(Cfg, DominanceFrontierDiamond) {
  auto k = diamond();
  Cfg cfg = build_cfg(k);
  auto df = compute_dominance_frontiers(cfg, compute_idom(cfg));
  EXPECT_EQ(df[1], (std::vector<uint32_t>{3}));
  EXPECT_EQ(df[2], (std::vector<uint32_t>{3}));
  EXPECT_TRUE(df[3].empty());
}

TEST(Cfg, LoopPostDominators) {
  auto k = parse_kernel(R"(
.kernel loop
.reg s32 %i
.reg pred %p
entry:
  mov.s32 %i, 0
head:
  setp.ge.s32 %p, %i, 4
  @%p bra exit
body:
  add.s32 %i, %i, 1
  bra head
exit:
  ret
)");
  Cfg cfg = build_cfg(k);
  auto ipdom = compute_ipdom(cfg);
  EXPECT_EQ(ipdom[1], k.find_block("exit"));  // loop header reconverges at exit
}

TEST(Liveness, PressureSimple) {
  auto k = parse_kernel(R"(
.kernel p
.reg s32 %a
.reg s32 %b
.reg s32 %c
entry:
  mov.s32 %a, 1
  mov.s32 %b, 2
  add.s32 %c, %a, %b
  st.global.s32 [%a], %c
  ret
)");
  Cfg cfg = build_cfg(k);
  auto lv = compute_liveness(k, cfg);
  EXPECT_TRUE(lv.undefined_uses.empty());
  // %b dies at the add and %c is born there, so the peak simultaneous set
  // is {a, b} before the add / {a, c} after: 2 registers.
  EXPECT_EQ(lv.max_pressure, 2u);
}

TEST(Liveness, DeadCodeHasNoPressure) {
  auto k = parse_kernel(R"(
.kernel d
.reg s32 %a
.reg s32 %dead
entry:
  mov.s32 %a, 1
  st.global.s32 [%a], %a
  ret
)");
  Cfg cfg = build_cfg(k);
  auto lv = compute_liveness(k, cfg);
  EXPECT_EQ(lv.max_pressure, 1u);  // %dead never appears
}

TEST(Liveness, UndefinedUseDetected) {
  auto k = parse_kernel(R"(
.kernel u
.reg s32 %a
.reg s32 %never
entry:
  add.s32 %a, %never, 1
  st.global.s32 [%a], %a
  ret
)");
  Cfg cfg = build_cfg(k);
  auto lv = compute_liveness(k, cfg);
  ASSERT_EQ(lv.undefined_uses.size(), 1u);
  EXPECT_EQ(lv.undefined_uses[0], k.find_reg("never"));
}

TEST(Liveness, GuardedDefKeepsOldValueLive) {
  auto k = parse_kernel(R"(
.kernel g
.reg s32 %a
.reg s32 %b
.reg pred %p
entry:
  mov.s32 %a, 1
  mov.s32 %b, 2
  setp.lt.s32 %p, %b, 3
  @%p mov.s32 %a, 5
  st.global.s32 [%b], %a
  ret
)");
  Cfg cfg = build_cfg(k);
  auto lv = compute_liveness(k, cfg);
  auto adj = build_interference(k, cfg, lv);
  // %a's initial value must survive across the guarded redefinition, so
  // %a and %b interfere throughout.
  EXPECT_TRUE(adj[k.find_reg("a")].test(k.find_reg("b")));
}

// ------------------------------------------------------------------------
// Property tests: interval transfer functions are sound w.r.t. concrete
// evaluation, parameterized over the operator.

struct IvCase {
  const char* name;
  Interval (*transfer)(const Interval&, const Interval&);
  int64_t (*concrete)(int64_t, int64_t);
};

int64_t c_add(int64_t a, int64_t b) { return a + b; }
int64_t c_sub(int64_t a, int64_t b) { return a - b; }
int64_t c_mul(int64_t a, int64_t b) { return a * b; }
int64_t c_div(int64_t a, int64_t b) { return b == 0 ? 0 : a / b; }
int64_t c_rem(int64_t a, int64_t b) { return b == 0 ? 0 : a % b; }
int64_t c_min(int64_t a, int64_t b) { return std::min(a, b); }
int64_t c_max(int64_t a, int64_t b) { return std::max(a, b); }
int64_t c_and(int64_t a, int64_t b) { return a & b; }
int64_t c_or(int64_t a, int64_t b) { return a | b; }
int64_t c_xor(int64_t a, int64_t b) { return a ^ b; }

Interval t_div(const Interval& a, const Interval& b) {
  // Division by a range containing only zero is modelled as top; skip it
  // in the property by construction below.
  return iv_div(a, b);
}

class IntervalProperty : public ::testing::TestWithParam<IvCase> {};

TEST_P(IntervalProperty, SoundOverSampledValues) {
  const IvCase& c = GetParam();
  gpurf::Pcg32 rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    // Random small-ish intervals (sign mix, includes degenerate points).
    auto rnd = [&](int span) {
      const int64_t lo = int64_t(rng.next_below(2 * span)) - span;
      const int64_t hi = lo + rng.next_below(span);
      return Interval::make(lo, hi);
    };
    const Interval A = rnd(300), B = rnd(300);
    const Interval R = c.transfer(A, B);
    for (int s = 0; s < 16; ++s) {
      const int64_t a = A.lo + int64_t(rng.next_below(uint32_t(A.hi - A.lo + 1)));
      const int64_t b = B.lo + int64_t(rng.next_below(uint32_t(B.hi - B.lo + 1)));
      if ((c.concrete == c_div || c.concrete == c_rem) && b == 0) continue;
      const int64_t r = c.concrete(a, b);
      EXPECT_TRUE(R.contains(r))
          << c.name << ": " << a << " op " << b << " = " << r
          << " outside " << R.str() << " for A=" << A.str()
          << " B=" << B.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IntervalProperty,
    ::testing::Values(IvCase{"add", iv_add, c_add},
                      IvCase{"sub", iv_sub, c_sub},
                      IvCase{"mul", iv_mul, c_mul},
                      IvCase{"div", t_div, c_div},
                      IvCase{"rem", iv_rem, c_rem},
                      IvCase{"min", iv_min, c_min},
                      IvCase{"max", iv_max, c_max},
                      IvCase{"and", iv_and, c_and},
                      IvCase{"or", iv_or, c_or},
                      IvCase{"xor", iv_xor, c_xor}),
    [](const ::testing::TestParamInfo<IvCase>& i) {
      return std::string(i.param.name);
    });

TEST(Interval, UnionIntersect) {
  const Interval a = Interval::make(0, 10);
  const Interval b = Interval::make(5, 20);
  EXPECT_EQ(iv_union(a, b), Interval::make(0, 20));
  EXPECT_EQ(iv_intersect(a, b), Interval::make(5, 10));
  EXPECT_TRUE(iv_intersect(Interval::make(0, 1), Interval::make(5, 6))
                  .is_empty());
  EXPECT_EQ(iv_union(Interval::empty(), a), a);
}

TEST(Interval, EmptyPropagation) {
  const Interval e = Interval::empty();
  const Interval a = Interval::make(1, 2);
  EXPECT_TRUE(iv_add(e, a).is_empty());
  EXPECT_TRUE(iv_mul(a, e).is_empty());
  EXPECT_TRUE(iv_neg(e).is_empty());
}

TEST(Interval, ShiftTransfers) {
  EXPECT_EQ(iv_shl(Interval::make(1, 3), Interval::point(4)),
            Interval::make(16, 48));
  EXPECT_EQ(iv_shr_s(Interval::make(-8, 8), Interval::point(1)),
            Interval::make(-4, 4));
  // Logical shift of a possibly-negative value covers the full u32 range.
  EXPECT_EQ(iv_shr_u(Interval::make(-1, 1), Interval::point(1)),
            Interval::full_u32());
}

TEST(Interval, NotNegAbs) {
  EXPECT_EQ(iv_not(Interval::make(0, 255)), Interval::make(-256, -1));
  EXPECT_EQ(iv_neg(Interval::make(-3, 7)), Interval::make(-7, 3));
  EXPECT_EQ(iv_abs(Interval::make(-3, 7)), Interval::make(0, 7));
  EXPECT_EQ(iv_abs(Interval::make(-9, -2)), Interval::make(2, 9));
}

TEST(Interval, InfinityAwareArithmetic) {
  const Interval top = Interval::top();
  EXPECT_TRUE(iv_add(top, Interval::point(5)).lo_inf());
  EXPECT_TRUE(iv_add(top, Interval::point(5)).hi_inf());
  const Interval half = Interval::make(0, Interval::kPosInf);
  EXPECT_EQ(iv_add(half, Interval::point(1)).lo, 1);
  EXPECT_TRUE(iv_add(half, Interval::point(1)).hi_inf());
}

// ----------------------------------------------------- dataflow (PR 9)

TEST(Dataflow, PointLivenessStraightLine) {
  auto k = parse_kernel(R"(
.kernel p
.reg s32 %a
.reg s32 %b
.reg s32 %c
entry:
  mov.s32 %a, 1
  mov.s32 %b, 2
  add.s32 %c, %a, %b
  st.global.s32 [%a], %c
  ret
)");
  Cfg cfg = build_cfg(k);
  const Dataflow df = compute_dataflow(k, cfg);
  const uint32_t a = k.find_reg("a"), b = k.find_reg("b"), c = k.find_reg("c");

  // Before the add (point 2): a and b live, c not yet.
  EXPECT_TRUE(df.live_at(0, 2, a));
  EXPECT_TRUE(df.live_at(0, 2, b));
  EXPECT_FALSE(df.live_at(0, 2, c));
  // Before the store (point 3): b is dead, a and c live.
  EXPECT_FALSE(df.live_at(0, 3, b));
  EXPECT_TRUE(df.live_at(0, 3, a));
  EXPECT_TRUE(df.live_at(0, 3, c));
  // Nothing here is a dead write.
  for (uint32_t i = 0; i < df.block_size[0]; ++i)
    EXPECT_FALSE(df.dst_dead(0, i)) << "inst " << i;
  // Def-use chains: each reg defined once; a read twice (add + address).
  EXPECT_EQ(df.def_count[a], 1u);
  EXPECT_EQ(df.use_count[a], 2u);
  EXPECT_EQ(df.use_count[c], 1u);
}

TEST(Dataflow, DeadWriteAndNeverReadDetected) {
  auto k = parse_kernel(R"(
.kernel dw
.reg s32 %a
.reg s32 %scratch
entry:
  mov.s32 %a, 7
  mul.s32 %scratch, %a, 3
  mov.s32 %a, %tid.x
  st.global.s32 [%a], %a
  ret
)");
  Cfg cfg = build_cfg(k);
  const Dataflow df = compute_dataflow(k, cfg);
  // The mul's destination is never read, and the first mov to %a is
  // overwritten after its only use feeds the mul.
  EXPECT_TRUE(df.dst_dead(0, 1));
  EXPECT_FALSE(df.dst_dead(0, 0));  // %a=7 is read by the mul
  EXPECT_FALSE(df.dst_dead(0, 2));

  const KernelReport rep = build_kernel_report(k, cfg, df);
  ASSERT_EQ(rep.dead_writes.size(), 1u);
  EXPECT_EQ(rep.dead_writes[0].reg, k.find_reg("scratch"));
  ASSERT_EQ(rep.never_read.size(), 1u);
  EXPECT_EQ(rep.never_read[0], k.find_reg("scratch"));
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.reg_names[rep.never_read[0]], "scratch");
}

TEST(Dataflow, PartialDefKeepsDstLiveBeforeGuard) {
  auto k = parse_kernel(R"(
.kernel g
.reg s32 %a
.reg s32 %b
.reg pred %p
entry:
  mov.s32 %a, 1
  mov.s32 %b, 2
  setp.lt.s32 %p, %b, 3
  @%p mov.s32 %a, 5
  st.global.s32 [%b], %a
  ret
)");
  Cfg cfg = build_cfg(k);
  const Dataflow df = compute_dataflow(k, cfg);
  const uint32_t a = k.find_reg("a");
  // The guarded mov merges into %a, so the incoming value is still live
  // before it (the guard may be false) — and the merged def is not dead.
  EXPECT_TRUE(df.live_at(0, 3, a));
  EXPECT_FALSE(df.dst_dead(0, 3));
  // An unconditional def would have killed it: point 1 (before %b's mov,
  // after %a's) still has a live because the store reads it.
  EXPECT_TRUE(df.live_at(0, 1, a));
}

TEST(Dataflow, UndefinedReadSurfacesInReport) {
  auto k = parse_kernel(R"(
.kernel u
.reg s32 %a
.reg s32 %never
entry:
  add.s32 %a, %never, 1
  st.global.s32 [%a], %a
  ret
)");
  Cfg cfg = build_cfg(k);
  const Dataflow df = compute_dataflow(k, cfg);
  const KernelReport rep = build_kernel_report(k, cfg, df);
  ASSERT_EQ(rep.undefined_reads.size(), 1u);
  EXPECT_EQ(rep.undefined_reads[0], k.find_reg("never"));
  EXPECT_FALSE(rep.clean());
}

TEST(Dataflow, IntervalsCoverEveryLivePoint) {
  // Random fuzz-shaped kernels: wherever the per-point sets say a register
  // is live, its linear interval must cover that point (intervals are a
  // conservative over-approximation), and intervals exist exactly for
  // ever-live registers.
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    Pcg32 rng(seed, 0xDA7A);
    std::string s = ".kernel iv" + std::to_string(seed) + "\n.reg s32 %x\n"
                    ".reg s32 %y\n.reg s32 %z\n.reg pred %p\nentry:\n"
                    "  mov.s32 %x, %tid.x\n  mov.s32 %y, 3\n";
    for (int op = 0; op < int(3 + rng.next_below(8)); ++op)
      s += (rng.next_below(2) ? "  add.s32 %z, %x, %y\n"
                              : "  mul.s32 %y, %z, 2\n");
    s += "  setp.lt.s32 %p, %x, 9\n  @%p add.s32 %z, %z, 1\n"
         "  st.global.s32 [%x], %z\n  ret\n";
    auto k = parse_kernel(s);
    Cfg cfg = build_cfg(k);
    const Dataflow df = compute_dataflow(k, cfg);

    std::vector<const LiveInterval*> by_reg(k.num_regs(), nullptr);
    for (const auto& iv : df.intervals) by_reg[iv.reg] = &iv;
    for (uint32_t p = 0; p < df.num_points; ++p) {
      df.live_before[p].for_each_set([&](size_t r) {
        ASSERT_NE(by_reg[r], nullptr) << "reg " << r;
        EXPECT_LE(by_reg[r]->begin, p);
        EXPECT_LT(p, by_reg[r]->end);
      });
    }
    for (const auto& iv : df.intervals)
      EXPECT_TRUE(df.ever_live.test(iv.reg));
  }
}

TEST(Dataflow, LiveInterferenceIsSubgraph) {
  // The liveness-refined interference graph never adds an edge the classic
  // construction lacks, and a never-read register interferes with nothing.
  auto k = parse_kernel(R"(
.kernel sub
.reg s32 %a
.reg s32 %b
.reg s32 %scratch
entry:
  mov.s32 %a, %tid.x
  mov.s32 %b, 5
  mul.s32 %scratch, %a, %b
  add.s32 %a, %a, %b
  st.global.s32 [%a], %a
  ret
)");
  Cfg cfg = build_cfg(k);
  const Dataflow df = compute_dataflow(k, cfg);
  const auto live = compute_liveness(k, cfg);
  const auto classic = build_interference(k, cfg, live);
  const auto refined = build_live_interference(k, cfg, df);
  const uint32_t scratch = k.find_reg("scratch");
  for (uint32_t r1 = 0; r1 < k.num_regs(); ++r1)
    for (uint32_t r2 = 0; r2 < k.num_regs(); ++r2)
      if (refined[r1].test(r2)) {
        EXPECT_TRUE(classic[r1].test(r2)) << r1 << " vs " << r2;
      }
  // classic gives the dead mul's destination edges to {a, b}; refined
  // drops them entirely.
  EXPECT_GT(classic[scratch].count(), 0u);
  EXPECT_EQ(refined[scratch].count(), 0u);
}

}  // namespace
}  // namespace gpurf::analysis
