// Transient soft-error injection (PR 7): the Poisson flip process, the
// static vulnerability model, the simulator's flip application, the
// Engine's AVF report / transient campaigns, and fault-aware re-tuning.
//
// The contracts that matter most:
//   * flip-rate 0 draws no random numbers — such runs are bit-identical
//     to fault-free references at every shard count;
//   * the same (rate, seed) reproduces the same flip trace, the same
//     SimStats and the same SoftErrorReport at shard counts {1, 2, 4};
//   * flips on dead registers are provably masked — they never become
//     architecturally visible and leave the output untouched;
//   * a zero-fault map never triggers re-tuning, and an unconstrained
//     tuner run is pinned bit-identical for every out-of-range
//     max_slices_hint.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "api/engine.hpp"
#include "api/json.hpp"
#include "exec/kernel_analysis.hpp"
#include "sim/gpu.hpp"
#include "sim/soft_error.hpp"
#include "testing_util.hpp"
#include "tuning/tuner.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace gpurf {
namespace {

namespace wl = gpurf::workloads;
namespace fs = std::filesystem;
using gpurf::testing::expect_same_sim_stats;

/// Fresh scratch directory under the cwd; removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::path(".") / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

// ------------------------------------------------------ SoftErrorProcess

TEST(SoftErrorProcess, ZeroRateDrawsNothing) {
  sim::SoftErrorSpec spec;  // flips_per_mcycle = 0
  spec.seed = 12345;
  sim::SoftErrorProcess p(spec, 15, 48);
  sim::FlipSite f;
  for (uint64_t c = 0; c < 100000; ++c) EXPECT_FALSE(p.next_flip(c, &f));
}

TEST(SoftErrorProcess, DeterministicTraceWithinGeometry) {
  sim::SoftErrorSpec spec;
  spec.flips_per_mcycle = 100000.0;  // 0.1 flips/cycle
  spec.seed = 7;
  const uint32_t sms = 15, slots = 48, cycles = 20000;
  sim::SoftErrorProcess a(spec, sms, slots), b(spec, sms, slots);
  uint64_t n = 0;
  for (uint64_t c = 0; c < cycles; ++c) {
    sim::FlipSite fa, fb;
    while (a.next_flip(c, &fa)) {
      ASSERT_TRUE(b.next_flip(c, &fb)) << "trace diverged at cycle " << c;
      EXPECT_EQ(fa.sm, fb.sm);
      EXPECT_EQ(fa.warp_slot, fb.warp_slot);
      EXPECT_EQ(fa.phys_reg, fb.phys_reg);
      EXPECT_EQ(fa.slice, fb.slice);
      EXPECT_EQ(fa.lane, fb.lane);
      EXPECT_EQ(fa.bit, fb.bit);
      EXPECT_LT(fa.sm, sms);
      EXPECT_LT(fa.warp_slot, slots);
      EXPECT_LT(fa.phys_reg, sim::kSoftPhysRegSpace);
      EXPECT_LT(fa.slice, sim::kSoftSlicesPerReg);
      EXPECT_LT(fa.lane, 32u);
      EXPECT_LT(fa.bit, sim::kSoftBitsPerSlice);
      ++n;
    }
    sim::FlipSite unused;
    EXPECT_FALSE(b.next_flip(c, &unused));
  }
  // Poisson with mean 2000: a +/- 50% band is > 20 standard deviations.
  EXPECT_GT(n, 1000u);
  EXPECT_LT(n, 3000u);

  // A different seed draws a different trace.
  const auto trace = [&](uint64_t seed) {
    sim::SoftErrorSpec s = spec;
    s.seed = seed;
    sim::SoftErrorProcess p(s, sms, slots);
    std::vector<uint32_t> sites;
    sim::FlipSite f;
    for (uint64_t c = 0; c < 1000 && sites.size() < 50; ++c)
      while (p.next_flip(c, &f))
        sites.push_back((f.phys_reg << 8) | (f.lane << 3) | (f.slice & 7));
    return sites;
  };
  EXPECT_NE(trace(7), trace(8));
}

// -------------------------------------------------------- SoftErrorModel

TEST(SoftErrorModel, BaselineCorruptIsRawBitFlip) {
  auto w = wl::make_dwt2d();
  exec::KernelAnalysis ka(w->kernel());
  sim::SoftErrorModel m(w->kernel(), ka, nullptr);
  const uint32_t v = 0x3f8a5c3eu;
  for (uint32_t slice = 0; slice < sim::kSoftSlicesPerReg; ++slice)
    for (uint32_t bit = 0; bit < sim::kSoftBitsPerSlice; ++bit)
      EXPECT_EQ(m.corrupt(v, 0, false, slice, bit),
                v ^ (1u << (slice * 4 + bit)));
}

TEST(SoftErrorModel, CompressedOwnersRespectAllocationMasks) {
  auto w = wl::make_dwt2d();
  exec::KernelAnalysis ka(w->kernel());
  const auto alloc =
      alloc::allocate_slices(w->kernel(), nullptr, nullptr, {false, false});
  sim::SoftErrorModel m(w->kernel(), ka, &alloc);
  // Every (site -> owner) edge must point back to a slice the owner's
  // allocation mask actually covers.
  for (uint32_t pr = 0; pr < sim::kSoftPhysRegSpace; ++pr) {
    for (uint32_t s = 0; s < sim::kSoftSlicesPerReg; ++s) {
      for (const auto& o : m.owners(pr, s)) {
        ASSERT_LT(o.reg, alloc.table.size());
        const auto& e = alloc.table[o.reg];
        ASSERT_TRUE(e.valid && !e.spilled);
        const auto& loc = o.second_piece ? e.r1 : e.r0;
        EXPECT_EQ(loc.phys_reg, pr);
        EXPECT_NE(loc.mask & (1u << s), 0u);
      }
    }
  }
  // The corruption round-trip only ever changes the value through the
  // stored encoding: re-flipping the same bit restores the original when
  // the register is stored full-width.
  for (uint32_t r = 0; r < alloc.table.size(); ++r) {
    const auto& e = alloc.table[r];
    if (!e.valid || e.spilled || e.float_bits != 32 || e.split) continue;
    const uint32_t v = 0xc0ffee42u;
    const uint32_t c = m.corrupt(v, r, false, 0, 1);
    EXPECT_NE(c, v);
    EXPECT_EQ(m.corrupt(c, r, false, 0, 1), v);
    break;
  }
}

// ----------------------------------------------------- Engine: soft runs

TEST(SoftSim, ZeroRateBitIdenticalAtEveryShardCount) {
  TempDir dir("gpurf_test_cache_soft0");
  Engine engine(EngineOptions().with_threads(4).with_cache_dir(dir.path));
  for (auto mode : {wl::SimMode::kOriginal, wl::SimMode::kCompressedPerfect}) {
    SimRequest req;
    req.mode = mode;
    req.scale = wl::Scale::kSample;
    auto ref = engine.simulate("DWT2D", req);
    ASSERT_TRUE(ref.ok()) << ref.status().to_string();
    EXPECT_FALSE(ref->soft.active);
    for (int shards : {1, 2, 4}) {
      SimRequest z = req;
      z.sim_shards = shards;
      z.soft.seed = 99;  // the seed alone must not matter at rate 0
      auto zr = engine.simulate("DWT2D", z);
      ASSERT_TRUE(zr.ok());
      expect_same_sim_stats(ref->stats, zr->stats,
                            "rate 0 T=" + std::to_string(shards));
      EXPECT_FALSE(zr->soft.active);
    }
  }
}

TEST(SoftSim, ExposureTrackingDoesNotPerturbTheRun) {
  TempDir dir("gpurf_test_cache_softexp");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  SimRequest req;
  req.mode = wl::SimMode::kCompressedPerfect;
  req.scale = wl::Scale::kSample;
  auto ref = engine.simulate("DWT2D", req);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();

  req.soft.track_exposure = true;
  auto e = engine.simulate("DWT2D", req);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->soft.active);
  EXPECT_EQ(e->soft.flips_injected, 0u);
  EXPECT_GT(e->soft.live_bit_cycles, 0u);
  sim::SimStats masked = e->stats;
  masked.soft_live_bit_cycles = 0;
  masked.soft_static_live_bit_cycles = 0;
  expect_same_sim_stats(ref->stats, masked, "exposure tracking");

  // The exposure integral itself is shard-invariant.
  for (int shards : {2, 4}) {
    SimRequest s = req;
    s.sim_shards = shards;
    auto r = engine.simulate("DWT2D", s);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->soft.live_bit_cycles, e->soft.live_bit_cycles)
        << "T=" << shards;
  }
}

TEST(SoftSim, SameSeedSameTraceAndStatsAtShards124) {
  TempDir dir("gpurf_test_cache_softdet");
  Engine engine(EngineOptions().with_threads(4).with_cache_dir(dir.path));
  SimRequest req;
  req.mode = wl::SimMode::kCompressedPerfect;
  req.scale = wl::Scale::kSample;
  req.soft.flips_per_mcycle = 100000.0;
  req.soft.seed = 3;
  req.sim_shards = 1;
  auto ref = engine.simulate("DWT2D", req);
  ASSERT_TRUE(ref.ok()) << ref.status().to_string();
  EXPECT_TRUE(ref->soft.active);
  EXPECT_GT(ref->soft.flips_injected, 0u);
  EXPECT_EQ(ref->soft.flips_injected,
            ref->soft.flips_on_live + ref->soft.flips_masked_dead);
  EXPECT_LE(ref->soft.flips_visible, ref->soft.flips_on_live);
  // Static classification (PR 9): provably-dead strikes are a subset of
  // the dynamically masked ones, and the static exposure integral is an
  // upper bound of the dynamic live-bit integral.
  EXPECT_LE(ref->soft.flips_static_dead, ref->soft.flips_masked_dead);
  EXPECT_GE(ref->soft.static_live_bit_cycles, ref->soft.live_bit_cycles);
  EXPECT_GT(ref->soft.static_live_bit_cycles, 0u);
  EXPECT_EQ(ref->soft.seed, 3u);

  for (int shards : {2, 4}) {
    SimRequest s = req;
    s.sim_shards = shards;
    auto r = engine.simulate("DWT2D", s);
    ASSERT_TRUE(r.ok());
    expect_same_sim_stats(ref->stats, r->stats,
                          "soft T=" + std::to_string(shards));
    EXPECT_TRUE(ref->soft == r->soft) << "T=" << shards;
    EXPECT_LE(r->soft.flips_static_dead, r->soft.flips_masked_dead)
        << "T=" << shards;
  }

  // A different seed lands a different trace (counters almost surely
  // differ; at minimum the report does).
  SimRequest other = req;
  other.soft.seed = 4;
  auto r4 = engine.simulate("DWT2D", other);
  ASSERT_TRUE(r4.ok());
  EXPECT_FALSE(ref->soft == r4->soft);

  // The JSON snapshot carries the soft report and stays well-formed.
  const std::string js = api::to_json(*ref);
  EXPECT_NE(js.find("\"soft\""), std::string::npos);
  EXPECT_NE(js.find("\"flips_injected\""), std::string::npos);
  EXPECT_TRUE(api::parse_json(js).ok());
}

TEST(SoftSim, DeadRegisterFlipsProvablyMasked) {
  // Find a deterministic run whose every flip lands on dead bits: such a
  // run must report zero visible flips and an output bit-identical to the
  // flip-free replay (quality delta exactly 0).
  TempDir dir("gpurf_test_cache_softdead");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  bool found = false;
  for (uint64_t seed = 1; seed <= 20 && !found; ++seed) {
    SimRequest req;
    req.mode = wl::SimMode::kOriginal;
    req.scale = wl::Scale::kSample;
    req.soft.flips_per_mcycle = 10000.0;
    req.soft.seed = seed;
    req.soft_score_quality = true;
    auto r = engine.simulate("DWT2D", req);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    if (r->soft.flips_injected == 0 || r->soft.flips_on_live != 0) continue;
    found = true;
    EXPECT_EQ(r->soft.flips_masked_dead, r->soft.flips_injected);
    EXPECT_EQ(r->soft.flips_visible, 0u);
    ASSERT_TRUE(r->soft.quality_scored);
    EXPECT_EQ(r->soft.quality_delta, 0.0)
        << "dead flips changed the output (seed " << seed << ")";
    EXPECT_EQ(r->soft.quality_faulty, r->soft.quality_fault_free);
  }
  EXPECT_TRUE(found)
      << "no all-dead flip trace among seeds 1..20 — geometry changed?";
}

// ------------------------------------------------- transient campaigns

TEST(TransientCampaign, SweepCompletesDeterministicallyAndSerializes) {
  TempDir dir("gpurf_test_cache_tcamp");
  Engine engine(EngineOptions()
                    .with_threads(2)
                    .with_cache_dir(dir.path)
                    .with_async_workers(2)
                    .with_max_inflight(4));
  TransientCampaignRequest creq;
  creq.sim.mode = wl::SimMode::kCompressedPerfect;
  creq.sim.scale = wl::Scale::kSample;
  creq.flip_rates = {5000.0, 20000.0};
  creq.seeds_per_rate = 2;
  creq.base_seed = 17;
  Job job = engine.submit(JobRequest::transient_campaign("DWT2D", creq));
  EXPECT_EQ(job.kind(), JobKind::kTransientCampaign);
  job.wait();
  ASSERT_EQ(job.state(), JobState::kDone) << job.status().to_string();

  const JobProgress p = job.progress();
  EXPECT_EQ(p.campaign_maps_total, 4);
  EXPECT_EQ(p.campaign_maps_done, 4);

  auto res = job.transient_result();
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_EQ(res->workload, "DWT2D");
  ASSERT_EQ(res->points.size(), 4u);
  // Rate-major order with distinct derived seeds.
  EXPECT_EQ(res->points[0].flips_per_mcycle, 5000.0);
  EXPECT_EQ(res->points[3].flips_per_mcycle, 20000.0);
  EXPECT_NE(res->points[0].seed, res->points[1].seed);
  for (const auto& pt : res->points) {
    EXPECT_EQ(pt.state, JobState::kDone) << pt.error;
    EXPECT_TRUE(pt.soft.active);
    EXPECT_EQ(pt.soft.flips_injected,
              pt.soft.flips_on_live + pt.soft.flips_masked_dead);
    // Static classification (PR 9): a flip the dataflow pass proves dead
    // is a subset of what the dynamic model masks, and the static
    // exposure integral upper-bounds the dynamic one.
    EXPECT_LE(pt.soft.flips_static_dead, pt.soft.flips_masked_dead);
    EXPECT_GE(pt.soft.static_live_bit_cycles, pt.soft.live_bit_cycles);
    EXPECT_GT(pt.cycles, 0u);
  }

  const std::string js = api::to_json(*res);
  EXPECT_NE(js.find("\"points\""), std::string::npos);
  EXPECT_NE(js.find("\"flips_per_mcycle\""), std::string::npos);
  EXPECT_TRUE(api::parse_json(js).ok());

  // The accessor is typed: a transient campaign has no fault-campaign
  // result and vice versa.
  EXPECT_FALSE(job.campaign_result().ok());

  // An empty rate sweep is rejected, not run.
  TransientCampaignRequest empty = creq;
  empty.flip_rates.clear();
  Job bad = engine.submit(JobRequest::transient_campaign("DWT2D", empty));
  bad.wait();
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------ fault-aware re-tuning

TEST(Retune, UnconstrainedTunerPinnedForOutOfRangeHints) {
  auto w = wl::make_dwt2d();
  wl::RunOptions ro;
  auto probe = wl::make_workload_probe(*w, ro);
  tuning::TunerOptions opt;
  opt.level = quality::QualityLevel::kHigh;
  const auto base = tuning::tune_precision(w->kernel(), *probe, opt);
  for (int hint : {-3, 0, 8, 100}) {
    opt.max_slices_hint = hint;
    const auto r = tuning::tune_precision(w->kernel(), *probe, opt);
    EXPECT_EQ(base.pmap.per_reg, r.pmap.per_reg) << "hint " << hint;
    EXPECT_EQ(base.slices_after, r.slices_after) << "hint " << hint;
  }
}

TEST(Retune, SliceBudgetCapsEveryTunedRegister) {
  auto w = wl::make_dwt2d();
  wl::RunOptions ro;
  auto probe = wl::make_workload_probe(*w, ro);
  tuning::TunerOptions opt;
  opt.level = quality::QualityLevel::kHigh;
  // The tuner targets f32 registers the program actually uses; untargeted
  // registers legitimately stay full-width.
  const auto& k = w->kernel();
  std::vector<uint32_t> uses(k.num_regs(), 0);
  for (const auto& b : k.blocks)
    for (const auto& in : b.insts) {
      for (int i = 0; i < in.num_srcs; ++i)
        if (in.srcs[i].is_reg()) ++uses[in.srcs[i].index];
      if (in.info().has_dst) ++uses[in.dst];
    }
  for (int hint : {4, 2, 1}) {
    opt.max_slices_hint = hint;
    const auto r = tuning::tune_precision(w->kernel(), *probe, opt);
    for (uint32_t reg = 0; reg < r.pmap.per_reg.size(); ++reg) {
      if (k.regs[reg].type != ir::Type::F32 || uses[reg] == 0) continue;
      // Capped at the widest Table-3 format within the budget — or the
      // narrowest format overall (2 slices) when nothing fits.
      EXPECT_LE(r.pmap.per_reg[reg].slices(), std::max(hint, 2))
          << "reg " << reg << " hint " << hint;
    }
  }
}

TEST(Retune, ZeroFaultMapNeverRetunes) {
  TempDir dir("gpurf_test_cache_retune0");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  SimRequest req;
  req.mode = wl::SimMode::kCompressedPerfect;
  req.scale = wl::Scale::kSample;
  auto plain = engine.simulate("DWT2D", req);
  ASSERT_TRUE(plain.ok()) << plain.status().to_string();

  req.retune_on_faults = true;
  req.fault.seed = 5;
  req.fault.density = 0.0;
  auto r = engine.simulate("DWT2D", req);
  ASSERT_TRUE(r.ok());
  expect_same_sim_stats(plain->stats, r->stats, "retune flag, no faults");
  EXPECT_FALSE(r->fault.retuned);
  EXPECT_EQ(r->fault.retune_slice_budget, 0u);
}

TEST(Retune, DenseMapRetunesToFewerSpills) {
  TempDir dir("gpurf_test_cache_retune1");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  // Search a small deterministic grid for a map dense enough to spill
  // under the unconstrained tuning while still simulating; the re-tuned
  // run must then trade precision for placement and strictly reduce the
  // spill count (SSAO at density 0.85, seed 1 is such a point today —
  // the grid keeps the test honest if allocator behaviour shifts).
  bool found = false;
  for (const char* name : {"SSAO", "Elevated", "Hotspot"}) {
    for (double density : {0.85, 0.9}) {
      for (uint64_t seed : {1, 2}) {
        SimRequest req;
        req.mode = wl::SimMode::kCompressedPerfect;
        req.scale = wl::Scale::kSample;
        req.fault.seed = seed;
        req.fault.density = density;
        auto plain = engine.simulate(name, req);
        if (!plain.ok() || plain->fault.registers_spilled == 0) continue;

        SimRequest rt = req;
        rt.retune_on_faults = true;
        auto r = engine.simulate(name, rt);
        // The plain run fit on the SM, so the adoption rule guarantees
        // the re-tuned configuration does too.
        ASSERT_TRUE(r.ok()) << name << " d=" << density << " seed=" << seed
                            << ": " << r.status().to_string();
        EXPECT_EQ(r->fault.spills_before_retune,
                  plain->fault.registers_spilled);
        EXPECT_LE(r->fault.registers_spilled,
                  plain->fault.registers_spilled);
        if (!r->fault.retuned) continue;  // no budget improved this map
        found = true;
        EXPECT_LT(r->fault.registers_spilled, plain->fault.registers_spilled)
            << name << " d=" << density << " seed=" << seed;
        EXPECT_GE(r->fault.retune_slice_budget, 1u);
        EXPECT_LE(r->fault.retune_slice_budget, 4u);
        return;
      }
    }
  }
  EXPECT_TRUE(found) << "no (workload, density, seed) in the grid gained "
                        "from re-tuning — allocator behaviour changed?";
}

TEST(Retune, RescuesInfeasibleRegisterPressure) {
  // SSAO at density 0.8, seed 1: the fault-aware allocation redirects so
  // aggressively that physical register pressure stops fitting on the SM
  // and the plain run fails.  Re-tuning narrows the formats until the
  // launch is feasible again — the run must succeed where the plain one
  // could not.  (Not every kernel is rescuable: DWT2D's pressure is
  // integer-register dominated and the tuner only narrows f32 — there
  // the re-tuned run fails exactly like the plain one.)
  TempDir dir("gpurf_test_cache_retune2");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  SimRequest req;
  req.mode = wl::SimMode::kCompressedPerfect;
  req.scale = wl::Scale::kSample;
  req.fault.seed = 1;
  req.fault.density = 0.8;
  auto plain = engine.simulate("SSAO", req);
  if (plain.ok()) GTEST_SKIP() << "map no longer overflows the SM";
  EXPECT_EQ(plain.status().code(), StatusCode::kFailedPrecondition);

  req.retune_on_faults = true;
  auto r = engine.simulate("SSAO", req);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(r->fault.retuned);
  EXPECT_GT(r->stats.cycles, 0u);
}

}  // namespace
}  // namespace gpurf
