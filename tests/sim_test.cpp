// Tests for the timing simulator: occupancy calculator (§2 numbers),
// cache model, and end-to-end simulations of small kernels — including
// functional equivalence between timed and untimed execution and the
// basic performance orderings the paper's results rest on.

#include <gtest/gtest.h>

#include "alloc/slice_alloc.hpp"
#include "analysis/range_analysis.hpp"
#include "ir/parser.hpp"
#include "sim/cache.hpp"
#include "sim/gpu.hpp"
#include "sim/occupancy.hpp"
#include "testing_util.hpp"

namespace gpurf::sim {
namespace {

using gpurf::ir::LaunchConfig;
using gpurf::ir::parse_kernel;

// ------------------------------------------------------------- occupancy

TEST(Occupancy, PaperImgvfNumbers) {
  const GpuConfig g = GpuConfig::fermi_gtx480();
  // §2: 52 regs x 32 threads x 10 warps = 16,640 -> one block, 10/48 warps.
  const auto orig = compute_occupancy(g, 52, 10, 14560);
  EXPECT_EQ(orig.blocks_per_sm, 1u);
  EXPECT_NEAR(orig.percent, 20.8, 0.1);
  EXPECT_EQ(orig.limiter, Occupancy::Limiter::kRegisters);

  // §2: at 29 registers three blocks fit -> 30/48 warps = 62.5 %.
  const auto comp = compute_occupancy(g, 29, 10, 14560);
  EXPECT_EQ(comp.blocks_per_sm, 3u);
  EXPECT_NEAR(comp.percent, 62.5, 0.01);

  // §6.1: at 24 registers the 14,560-byte shared memory caps at 3 blocks.
  const auto high = compute_occupancy(g, 24, 10, 14560);
  EXPECT_EQ(high.blocks_per_sm, 3u);
  EXPECT_EQ(high.limiter, Occupancy::Limiter::kSharedMem);
}

TEST(Occupancy, WarpAndBlockLimits) {
  const GpuConfig g = GpuConfig::fermi_gtx480();
  // Tiny pressure: 48 warps / 8 warps-per-block = 6 blocks (warp limit).
  const auto w = compute_occupancy(g, 4, 8, 0);
  EXPECT_EQ(w.blocks_per_sm, 6u);
  EXPECT_EQ(w.limiter, Occupancy::Limiter::kWarps);
  // 6 warps per block: 8 blocks would need 48 warps exactly; register
  // pressure 4 allows more than 8 -> block limit.
  const auto b = compute_occupancy(g, 4, 6, 0);
  EXPECT_EQ(b.blocks_per_sm, 8u);
  EXPECT_EQ(b.percent, 100.0);
}

TEST(Occupancy, RegisterGranularityMatchesPaperMath) {
  const GpuConfig g = GpuConfig::fermi_gtx480();
  // 34 regs x 320 threads = 10,880 -> exactly 3 blocks in 32,768.
  EXPECT_EQ(compute_occupancy(g, 34, 10, 0).blocks_per_sm, 3u);
  EXPECT_EQ(compute_occupancy(g, 35, 10, 0).blocks_per_sm, 2u);
}

// ------------------------------------------------------------------ cache

TEST(Cache, HitsAfterFill) {
  Cache c(CacheGeom{1024, 128, 2});
  EXPECT_FALSE(c.access(1));
  EXPECT_TRUE(c.access(1));
  EXPECT_EQ(c.stats().accesses, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction) {
  Cache c(CacheGeom{2 * 128, 128, 2});  // one set, two ways
  c.access(10);
  c.access(20);
  c.access(10);      // refresh 10
  c.access(30);      // evicts 20
  EXPECT_TRUE(c.access(10));
  EXPECT_FALSE(c.access(20));
}

TEST(Cache, SetIndexing) {
  Cache c(CacheGeom{4 * 128, 128, 1});  // four direct-mapped sets
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(1));
  EXPECT_TRUE(c.access(0));  // different sets: no conflict
  EXPECT_FALSE(c.access(4));  // same set as 0: evicts it
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, CapacityThrashing) {
  Cache c(CacheGeom{8 * 128, 128, 4});
  for (int round = 0; round < 3; ++round)
    for (uint64_t line = 0; line < 64; ++line) c.access(line);
  EXPECT_GT(c.stats().miss_rate(), 0.9);
}

// ----------------------------------------------------------- simulation

struct SimRig {
  gpurf::ir::Kernel k;
  gpurf::exec::GlobalMemory gmem;
  std::vector<gpurf::exec::Texture> textures;
  KernelLaunchSpec spec;

  SimRig(std::string_view text, LaunchConfig lc) : k(parse_kernel(text)) {
    spec.kernel = &k;
    spec.launch = lc;
    spec.gmem = &gmem;
    spec.textures = &textures;
  }
};

constexpr std::string_view kAxpy = R"(
.kernel axpy
.param s32 x_base
.param s32 y_base
.param s32 n
.reg s32 %i
.reg s32 %a
.reg f32 %x
.reg f32 %y
.reg pred %p
entry:
  mov.s32 %i, %ctaid.x
  mad.s32 %i, %i, 128, %tid.x
  setp.ge.s32 %p, %i, $n
  @%p bra exit
body:
  add.s32 %a, %i, $x_base
  ld.global.f32 %x, [%a]
  add.s32 %a, %i, $y_base
  ld.global.f32 %y, [%a]
  mad.f32 %y, %x, 2.0, %y
  st.global.f32 [%a], %y
exit:
  ret
)";

TEST(Simulate, AxpyCompletesAndMatchesFunctional) {
  const uint32_t n = 128 * 30;
  SimRig rig(kAxpy, LaunchConfig{30, 1, 128, 1});
  std::vector<float> x(n, 1.5f), y(n, 0.25f);
  const uint32_t xb = rig.gmem.alloc_f32(x);
  const uint32_t yb = rig.gmem.alloc_f32(y);
  rig.spec.params = {xb, yb, n};
  rig.spec.regs_per_thread = 8;

  const auto res = simulate(GpuConfig::fermi_gtx480(),
                            CompressionConfig::baseline(), rig.spec);
  EXPECT_GT(res.stats.cycles, 0u);
  EXPECT_GT(res.stats.ipc(), 0.0);
  EXPECT_EQ(res.stats.blocks_run, 30u);
  // thread instructions: 30 blocks x 128 threads x 10 instructions
  EXPECT_EQ(res.stats.thread_insts, 30u * 128u * 10u);
  for (uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(rig.gmem.read_f32(yb + i, 1)[0], 1.5f * 2.0f + 0.25f);
}

TEST(Simulate, TimedOutputsMatchUntimedExecution) {
  // The timing model must not change functional results.
  const uint32_t n = 128 * 8;
  std::vector<float> x(n), y0(n);
  for (uint32_t i = 0; i < n; ++i) {
    x[i] = float(i % 32) * 0.125f;
    y0[i] = float(i % 7);
  }

  // Untimed reference.
  SimRig a(kAxpy, LaunchConfig{8, 1, 128, 1});
  const uint32_t xa = a.gmem.alloc_f32(x);
  const uint32_t ya = a.gmem.alloc_f32(y0);
  gpurf::exec::ExecContext ctx;
  ctx.kernel = &a.k;
  ctx.launch = a.spec.launch;
  ctx.gmem = &a.gmem;
  ctx.textures = &a.textures;
  ctx.params = {xa, ya, n};
  gpurf::exec::run_functional(ctx);

  // Timed run.
  SimRig b(kAxpy, LaunchConfig{8, 1, 128, 1});
  const uint32_t xb = b.gmem.alloc_f32(x);
  const uint32_t yb = b.gmem.alloc_f32(y0);
  b.spec.params = {xb, yb, n};
  b.spec.regs_per_thread = 8;
  simulate(GpuConfig::fermi_gtx480(), CompressionConfig::baseline(), b.spec);

  EXPECT_EQ(a.gmem.read_f32(ya, n), b.gmem.read_f32(yb, n));
}

constexpr std::string_view kChain = R"(
.kernel chain
.param s32 out
.reg s32 %i
.reg s32 %a
.reg f32 %v
.reg pred %p
entry:
  mov.s32 %i, 0
  mov.f32 %v, 1.0
loop:
  setp.ge.s32 %p, %i, 64
  @%p bra done
body:
  mad.f32 %v, %v, 0.5, 0.25
  mad.f32 %v, %v, 0.5, 0.25
  mad.f32 %v, %v, 0.5, 0.25
  mad.f32 %v, %v, 0.5, 0.25
  add.s32 %i, %i, 1
  bra loop
done:
  mov.s32 %a, %tid.x
  add.s32 %a, %a, $out
  st.global.f32 [%a], %v
  ret
)";

TEST(Simulate, OccupancyImprovesLatencyBoundKernel) {
  // A pure dependency chain is latency bound: more warps -> higher IPC.
  auto run = [&](uint32_t regs) {
    SimRig rig(kChain, LaunchConfig{120, 1, 64, 1});
    const uint32_t out = rig.gmem.alloc(64 * 120);
    rig.spec.params = {out};
    rig.spec.regs_per_thread = regs;
    return simulate(GpuConfig::fermi_gtx480(),
                    CompressionConfig::baseline(), rig.spec);
  };
  const auto low = run(256);   // 2 warps per SM
  const auto high = run(32);   // many warps per SM
  EXPECT_GT(high.occupancy.warps_per_sm, low.occupancy.warps_per_sm);
  EXPECT_GT(high.stats.ipc(), 1.5 * low.stats.ipc());
}

TEST(Simulate, WritebackDelayCostsIpc) {
  // With compression enabled, a longer writeback delay can only slow the
  // dependency chain down.
  auto run = [&](uint32_t wb) {
    SimRig rig(kChain, LaunchConfig{30, 1, 64, 1});
    const uint32_t out = rig.gmem.alloc(64 * 30);
    rig.spec.params = {out};
    rig.spec.regs_per_thread = 64;
    return simulate(GpuConfig::fermi_gtx480(),
                    CompressionConfig::with_writeback_delay(wb), rig.spec);
  };
  const double ipc0 = run(0).stats.ipc();
  const double ipc8 = run(8).stats.ipc();
  EXPECT_GT(ipc0, ipc8);
}

TEST(Simulate, CompressedPipelineOverheadAtEqualOccupancy) {
  // Same occupancy, compression on vs. off: the deeper operand-collector
  // pipeline and writeback delay must not *help* (§6.2 Elevated effect).
  auto run = [&](bool compressed) {
    SimRig rig(kChain, LaunchConfig{30, 1, 64, 1});
    const uint32_t out = rig.gmem.alloc(64 * 30);
    rig.spec.params = {out};
    rig.spec.regs_per_thread = 64;
    return simulate(GpuConfig::fermi_gtx480(),
                    compressed ? CompressionConfig::paper_default()
                               : CompressionConfig::baseline(),
                    rig.spec);
  };
  EXPECT_LE(run(true).stats.ipc(), run(false).stats.ipc());
}

TEST(Simulate, BarrierKernelCompletes) {
  SimRig rig(R"(
.kernel barrier
.param s32 out
.reg s32 %x
.reg s32 %r
.reg s32 %a
entry:
  mov.s32 %x, %tid.x
  st.shared.s32 [%x], %x
  bar.sync
  mov.s32 %r, 63
  sub.s32 %r, %r, %x
  ld.shared.s32 %r, [%r]
  add.s32 %a, %x, $out
  st.global.s32 [%a], %r
  ret
)",
             LaunchConfig{15, 1, 64, 1});
  rig.k.shared_bytes = 256;
  const uint32_t out = rig.gmem.alloc(64 * 15);
  rig.spec.params = {out};
  rig.spec.regs_per_thread = 8;
  const auto res = simulate(GpuConfig::fermi_gtx480(),
                            CompressionConfig::baseline(), rig.spec);
  EXPECT_EQ(res.stats.blocks_run, 15u);
  EXPECT_EQ(rig.gmem.read(out + 0), 63u);
  EXPECT_EQ(rig.gmem.read(out + 63), 0u);
}

TEST(Simulate, SplitOperandsGenerateDoubleFetches) {
  // Force a split allocation and verify the bank-traffic statistics see it.
  SimRig rig(kChain, LaunchConfig{2, 1, 64, 1});
  const uint32_t out = rig.gmem.alloc(64 * 2);
  rig.spec.params = {out};
  rig.spec.regs_per_thread = 8;

  gpurf::alloc::AllocationResult alloc;
  alloc.table.assign(rig.k.num_regs(), {});
  for (uint32_t r = 0; r < rig.k.num_regs(); ++r) {
    auto& e = alloc.table[r];
    e.valid = true;
    e.slices = 8;
    e.r0 = {r, 0xf0};
    e.r1 = {r + 1, 0x0f};
    e.split = true;
  }
  alloc.num_physical_regs = rig.k.num_regs() + 1;
  rig.spec.allocation = &alloc;

  const auto res = simulate(GpuConfig::fermi_gtx480(),
                            CompressionConfig::paper_default(), rig.spec);
  EXPECT_GT(res.stats.double_fetches, 0u);
}

// ------------------------------------------------------ cycle accounting
//
// ISSUE 5: cycles must count exactly the ticks in which the machine could
// do work — the old loop always ran (and charged) at least one tick, so a
// degenerate launch cost a phantom cycle.

constexpr std::string_view kRetOnly = R"(
.kernel tiny
entry:
  ret
)";

TEST(Simulate, EmptyGridSimulatesInZeroCycles) {
  // Zero blocks is a legal degenerate launch: nothing runs, nothing is
  // charged.
  SimRig rig(kRetOnly, LaunchConfig{0, 1, 32, 1});
  rig.spec.regs_per_thread = 4;
  const auto res = simulate(GpuConfig::fermi_gtx480(),
                            CompressionConfig::baseline(), rig.spec);
  EXPECT_EQ(res.stats.cycles, 0u);
  EXPECT_EQ(res.stats.blocks_run, 0u);
  EXPECT_EQ(res.stats.warp_insts, 0u);
  EXPECT_EQ(res.stats.thread_insts, 0u);
  EXPECT_EQ(res.stats.ipc(), 0.0);
}

TEST(Simulate, OneInstructionKernelCountsExactCycles) {
  // A single warp issues its ret in cycle 0 and the machine is idle: one
  // cycle total, no drain tick.
  SimRig one(kRetOnly, LaunchConfig{1, 1, 32, 1});
  one.spec.regs_per_thread = 4;
  const auto r1 = simulate(GpuConfig::fermi_gtx480(),
                           CompressionConfig::baseline(), one.spec);
  EXPECT_EQ(r1.stats.cycles, 1u);
  EXPECT_EQ(r1.stats.warp_insts, 1u);

  // Four warps through two schedulers: two issue per cycle -> two cycles.
  SimRig four(kRetOnly, LaunchConfig{1, 1, 128, 1});
  four.spec.regs_per_thread = 4;
  const auto r4 = simulate(GpuConfig::fermi_gtx480(),
                           CompressionConfig::baseline(), four.spec);
  EXPECT_EQ(r4.stats.cycles, 2u);
  EXPECT_EQ(r4.stats.warp_insts, 4u);
}

TEST(Simulate, ZeroThreadBlockShapeIsRejected) {
  SimRig rig(kRetOnly, LaunchConfig{1, 1, 0, 1});
  rig.spec.regs_per_thread = 4;
  EXPECT_THROW(simulate(GpuConfig::fermi_gtx480(),
                        CompressionConfig::baseline(), rig.spec),
               gpurf::Error);
}

// -------------------------------------------------- multi-SM sharded sim

void expect_same_stats(const SimStats& a, const SimStats& b) {
  gpurf::testing::expect_same_sim_stats(a, b);
}

TEST(ShardedSimulate, AxpyStatsMatchSerialAtEveryShardCount) {
  gpurf::testing::PoolWidth width(8);
  const uint32_t n = 128 * 30;
  auto run = [&](int shards) {
    SimRig rig(kAxpy, LaunchConfig{30, 1, 128, 1});
    std::vector<float> x(n, 1.5f), y(n, 0.25f);
    const uint32_t xb = rig.gmem.alloc_f32(x);
    const uint32_t yb = rig.gmem.alloc_f32(y);
    rig.spec.params = {xb, yb, n};
    rig.spec.regs_per_thread = 8;
    SimOptions so;
    so.shards = shards;
    auto res = simulate(GpuConfig::fermi_gtx480(),
                        CompressionConfig::baseline(), rig.spec, nullptr, so);
    // The functional outputs stay correct under sharded ticking too.
    for (uint32_t i = 0; i < n; ++i)
      EXPECT_EQ(rig.gmem.read_f32(yb + i, 1)[0], 1.5f * 2.0f + 0.25f);
    return res;
  };
  const auto serial = run(1);
  for (int shards : {2, 4, 8}) {
    const auto sharded = run(shards);
    expect_same_stats(serial.stats, sharded.stats);
  }
}

TEST(ShardedSimulate, CompressedSplitAllocationMatchesSerial) {
  // Exercises the compressed-pipeline counters (double fetches,
  // conversions) and the deferred L2 replay under a split allocation.
  gpurf::testing::PoolWidth width(8);
  auto run = [&](int shards) {
    SimRig rig(kChain, LaunchConfig{16, 1, 64, 1});
    const uint32_t out = rig.gmem.alloc(64 * 16);
    rig.spec.params = {out};
    rig.spec.regs_per_thread = 8;
    gpurf::alloc::AllocationResult alloc;
    alloc.table.assign(rig.k.num_regs(), {});
    for (uint32_t r = 0; r < rig.k.num_regs(); ++r) {
      auto& e = alloc.table[r];
      e.valid = true;
      e.slices = 8;
      e.r0 = {r, 0xf0};
      e.r1 = {r + 1, 0x0f};
      e.split = true;
    }
    alloc.num_physical_regs = rig.k.num_regs() + 1;
    rig.spec.allocation = &alloc;
    SimOptions so;
    so.shards = shards;
    return simulate(GpuConfig::fermi_gtx480(),
                    CompressionConfig::paper_default(), rig.spec, nullptr,
                    so);
  };
  const auto serial = run(1);
  EXPECT_GT(serial.stats.double_fetches, 0u);
  for (int shards : {2, 8}) expect_same_stats(serial.stats, run(shards).stats);
}

TEST(ShardedSimulate, ShardCountBeyondPoolDegradesGracefully) {
  // shards > pool width clamps; shards <= 0 resolves to the pool width.
  gpurf::testing::PoolWidth width(2);
  SimRig rig(kAxpy, LaunchConfig{8, 1, 128, 1});
  const uint32_t n = 128 * 8;
  std::vector<float> x(n, 1.0f), y(n, 2.0f);
  rig.spec.params = {rig.gmem.alloc_f32(x), rig.gmem.alloc_f32(y), n};
  rig.spec.regs_per_thread = 8;
  SimOptions serial;  // shards = 1
  SimRig rig2(kAxpy, LaunchConfig{8, 1, 128, 1});
  rig2.spec.params = {rig2.gmem.alloc_f32(x), rig2.gmem.alloc_f32(y), n};
  rig2.spec.regs_per_thread = 8;
  SimOptions wide;
  wide.shards = 64;  // clamped to min(pool, num_sms)
  const auto a = simulate(GpuConfig::fermi_gtx480(),
                          CompressionConfig::baseline(), rig.spec, nullptr,
                          serial);
  const auto b = simulate(GpuConfig::fermi_gtx480(),
                          CompressionConfig::baseline(), rig2.spec, nullptr,
                          wide);
  expect_same_stats(a.stats, b.stats);

  // shards <= 0 resolves to the pool width (the Engine default path).
  SimRig rig3(kAxpy, LaunchConfig{8, 1, 128, 1});
  rig3.spec.params = {rig3.gmem.alloc_f32(x), rig3.gmem.alloc_f32(y), n};
  rig3.spec.regs_per_thread = 8;
  SimOptions auto_width;
  auto_width.shards = 0;
  const auto c = simulate(GpuConfig::fermi_gtx480(),
                          CompressionConfig::baseline(), rig3.spec, nullptr,
                          auto_width);
  expect_same_stats(a.stats, c.stats);
}

TEST(Simulate, RejectsOversizedKernel) {
  SimRig rig(kChain, LaunchConfig{1, 1, 64, 1});
  rig.spec.params = {0};
  rig.spec.regs_per_thread = 2000;  // cannot fit a single block
  EXPECT_THROW(simulate(GpuConfig::fermi_gtx480(),
                        CompressionConfig::baseline(), rig.spec),
               gpurf::Error);
}

}  // namespace
}  // namespace gpurf::sim
