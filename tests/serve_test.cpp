// Fleet-scale serving (ISSUE 8): latency histograms, consistent-hash
// engine sharding, the TCP transport, watch subscriptions, chunked result
// streaming, auth tokens and per-token quotas.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/json.hpp"
#include "api/metrics.hpp"
#include "api/server.hpp"
#include "serve/fleet.hpp"

namespace gpurf {
namespace {

EngineOptions test_engine_opts() {
  return EngineOptions().with_threads(1).with_disk_cache(false);
}

std::string submit_line(const std::string& workload,
                        const std::string& extra = "") {
  return R"({"op":"submit","kind":"simulate","workload":")" + workload +
         R"(","scale":"sample")" + extra + "}";
}

// ------------------------------------------------------ log2 histograms

TEST(Histogram, BucketMappingAndPercentiles) {
  LatencyHistogram h;
  h.record_us(0);    // bucket 0
  h.record_us(1);    // bit_width 1 -> bucket 1, le 1
  h.record_us(3);    // bit_width 2 -> bucket 2, le 3
  h.record_us(4);    // bit_width 3 -> bucket 3, le 7
  h.record_us(100);  // bit_width 7 -> bucket 7, le 127
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum_us, 108u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.buckets[7], 1u);

  // Percentiles return the containing bucket's upper bound: at most 2x
  // above the true sample, never below it.
  EXPECT_EQ(s.percentile_us(0.0), 0u);
  EXPECT_EQ(s.percentile_us(0.5), 3u);
  EXPECT_EQ(s.percentile_us(0.99), 127u);
  EXPECT_EQ(s.percentile_us(1.0), 127u);
  EXPECT_DOUBLE_EQ(s.mean_us(), 108.0 / 5.0);

  // Values past the last bucket boundary land in the open-ended bucket.
  LatencyHistogram big;
  big.record_us(~uint64_t{0});
  EXPECT_EQ(big.snapshot().buckets[HistogramSnapshot::kBuckets - 1], 1u);
  EXPECT_EQ(big.snapshot().percentile_us(0.5), ~uint64_t{0});
}

TEST(Histogram, MergeSumsBucketwise) {
  LatencyHistogram a, b;
  a.record_us(10);
  a.record_us(20);
  b.record_us(1000);
  HistogramSnapshot s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum_us, 1030u);
  EXPECT_EQ(s.percentile_us(0.99), 1023u);  // 1000 has bit_width 10
}

TEST(Histogram, EmptySnapshotIsZero) {
  const HistogramSnapshot s = LatencyHistogram().snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.percentile_us(0.5), 0u);
  EXPECT_DOUBLE_EQ(s.mean_us(), 0.0);
}

// ------------------------------------------------- fleet + hash routing

TEST(Fleet, RoutingIsDeterministicAndSpreadsShards) {
  serve::EngineFleet fleet(test_engine_opts(), 4);
  ASSERT_EQ(fleet.num_shards(), 4);
  std::set<int> used;
  for (const std::string& name : fleet.shard(0).workload_names()) {
    const int s = fleet.shard_for_workload(name);
    EXPECT_EQ(s, fleet.shard_for_workload(name)) << name;
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    used.insert(s);
  }
  // 8+ bundled workloads over 4 shards: the ring must not collapse onto
  // one shard.
  EXPECT_GE(used.size(), 2u);
  // Unknown names still route deterministically.
  EXPECT_EQ(fleet.shard_for_workload("no-such-kernel"),
            fleet.shard_for_workload("no-such-kernel"));
}

TEST(Fleet, ConsistentHashMovesFewKeysOnResize) {
  // Growing 4 -> 5 shards must keep most workload->shard assignments:
  // that is the property that makes rebalance cheap (only the moved
  // kernels re-warm).  With a handful of workloads the expectation is
  // coarse: strictly fewer moves than total keys.
  serve::EngineFleet four(test_engine_opts(), 4);
  serve::EngineFleet five(test_engine_opts(), 5);
  int moved = 0, total = 0;
  for (const std::string& name : four.shard(0).workload_names()) {
    ++total;
    if (four.shard_for_workload(name) != five.shard_for_workload(name))
      ++moved;
  }
  ASSERT_GT(total, 0);
  EXPECT_LT(moved, total);
}

TEST(Fleet, JobIdsAreDisjointResidueClassesAcrossShards) {
  serve::EngineFleet fleet(test_engine_opts(), 3);
  std::vector<Job> jobs;
  for (int s = 0; s < 3; ++s)
    for (int k = 0; k < 2; ++k)
      jobs.push_back(fleet.shard(s).submit(
          JobRequest::pipeline(fleet.shard(0).workload_names()[0])));
  std::set<uint64_t> ids;
  for (const Job& j : jobs) {
    ids.insert(j.id());
    // Residue-class routing recovers the owning shard from the id alone.
    const int owner = fleet.shard_for_job(j.id());
    EXPECT_EQ(static_cast<uint64_t>(owner), (j.id() - 1) % 3) << j.id();
    EXPECT_TRUE(fleet.shard(owner).find_job(j.id()).ok());
  }
  EXPECT_EQ(ids.size(), jobs.size());  // no collisions anywhere
  for (Job& j : jobs) j.wait();
}

TEST(Fleet, MetricsAggregateAcrossShards) {
  serve::EngineFleet fleet(test_engine_opts(), 2);
  const std::string wl = fleet.shard(0).workload_names()[0];
  Job a = fleet.shard(0).submit(JobRequest::pipeline(wl));
  Job b = fleet.shard(1).submit(JobRequest::pipeline(wl));
  a.wait();
  b.wait();
  const MetricsSnapshot sum = fleet.metrics_snapshot();
  EXPECT_EQ(sum.jobs_submitted, 2u);
  EXPECT_EQ(sum.jobs_done + sum.jobs_failed, 2u);
  // Per-stage histograms populated by the engines.
  EXPECT_GE(sum.queue_wait.count, 2u);
  EXPECT_GE(sum.tune.count, 2u);
  EXPECT_EQ(sum.jobs_submitted,
            fleet.shard(0).metrics_snapshot().jobs_submitted +
                fleet.shard(1).metrics_snapshot().jobs_submitted);
}

// ------------------------------------------------------- TCP transport

TEST(ServeTcp, RoundTripMatchesUnixBitForBit) {
  serve::EngineFleet fleet(test_engine_opts(), 2);
  api::ServerOptions sopts;
  sopts.socket_path = "./serve_tcp_test.sock";
  sopts.listen_port = 0;  // ephemeral
  api::Server server(fleet, sopts);
  ASSERT_TRUE(server.start().ok());
  ASSERT_GT(server.tcp_port(), 0);

  api::Client unix_c(sopts.socket_path);
  api::Client tcp_c("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(unix_c.status().ok()) << unix_c.status().to_string();
  ASSERT_TRUE(tcp_c.status().ok()) << tcp_c.status().to_string();

  // Same deterministic simulation through both transports; results must
  // deep-compare equal (chunked on TCP to also cover reassembly).
  auto submit_and_wait = [](api::Client& c, const std::string& req,
                            bool stream) {
    auto sub = c.call_json(req);
    EXPECT_TRUE(sub.ok());
    const uint64_t id = static_cast<uint64_t>(sub->get("job")->as_int());
    const std::string wait =
        R"({"op":"wait","job":)" + std::to_string(id) +
        R"(,"timeout_ms":600000)" +
        (stream ? R"(,"stream":true,"chunk_bytes":300})" : "}");
    return c.call_json(wait);
  };
  auto via_unix = submit_and_wait(unix_c, submit_line("DWT2D"), false);
  auto via_tcp = submit_and_wait(tcp_c, submit_line("DWT2D"), true);
  ASSERT_TRUE(via_unix.ok()) << via_unix.status().to_string();
  ASSERT_TRUE(via_tcp.ok()) << via_tcp.status().to_string();
  EXPECT_EQ(via_unix->get("state")->as_string(), "done");
  EXPECT_EQ(via_tcp->get("state")->as_string(), "done");
  // The chunked envelope advertised its framing...
  ASSERT_NE(via_tcp->get("result_chunks"), nullptr);
  EXPECT_GT(via_tcp->get("result_chunks")->as_int(), 1);
  // ...and the reassembled payload is identical to the inline one.
  ASSERT_NE(via_unix->get("result"), nullptr);
  ASSERT_NE(via_tcp->get("result"), nullptr);
  EXPECT_TRUE(api::deep_equal(*via_unix->get("result"),
                              *via_tcp->get("result")));
  // The submit response names the owning shard.
  auto sub = tcp_c.call_json(submit_line("DWT2D"));
  ASSERT_TRUE(sub.ok());
  ASSERT_NE(sub->get("shard"), nullptr);
  EXPECT_EQ(sub->get("shard")->as_int(),
            fleet.shard_for_workload("DWT2D"));
  server.stop();
}

TEST(ServeTcp, WatchStreamsProgressAndAgreesWithWait) {
  serve::EngineFleet fleet(test_engine_opts(), 1);
  api::ServerOptions sopts;
  sopts.listen_port = 0;  // TCP only — no unix socket at all
  api::Server server(fleet, sopts);
  ASSERT_TRUE(server.start().ok());

  api::Client c("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(c.status().ok()) << c.status().to_string();
  auto sub = c.call_json(submit_line("SSAO"));
  ASSERT_TRUE(sub.ok());
  const uint64_t id = static_cast<uint64_t>(sub->get("job")->as_int());

  std::vector<std::string> events;
  auto terminal = c.watch(id, 600000, [&](const api::JsonValue& ev) {
    events.push_back(ev.get("state") ? ev.get("state")->as_string() : "?");
  });
  ASSERT_TRUE(terminal.ok()) << terminal.status().to_string();
  EXPECT_EQ(terminal->get("event")->as_string(), "terminal");
  EXPECT_EQ(terminal->get("state")->as_string(), "done");
  ASSERT_NE(terminal->get("result"), nullptr);

  // The terminal state watch saw is the state a poll sees.
  auto polled = c.call_json(R"({"op":"status","job":)" + std::to_string(id) +
                            "}");
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled->get("state")->as_string(), "done");
  // Progress events (if any fired for this fast sample job) were all
  // non-terminal.
  for (const std::string& s : events) EXPECT_NE(s, "done");
  server.stop();
}

TEST(ServeTcp, AuthTokensGateEveryOp) {
  Engine engine(test_engine_opts());
  api::ServerOptions sopts;
  sopts.listen_port = 0;
  sopts.auth_tokens = {"secret-a", "secret-b"};
  api::Server server(engine, sopts);
  ASSERT_TRUE(server.start().ok());

  api::Client c("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(c.status().ok());
  auto anon = c.call_json(R"({"op":"ping"})");
  ASSERT_TRUE(anon.ok());
  EXPECT_FALSE(anon->get("ok")->as_bool());
  EXPECT_EQ(anon->get("error")->get("code")->as_string(), "UNAUTHENTICATED");

  auto bad = c.call_json(R"({"op":"ping","token":"wrong"})");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->get("error")->get("code")->as_string(), "UNAUTHENTICATED");

  auto good = c.call_json(R"({"op":"ping","token":"secret-b"})");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->get("ok")->as_bool());
  server.stop();
}

TEST(ServeTcp, QuotaRejectionsCarryRetryAfter) {
  Engine engine(test_engine_opts());
  api::ServerOptions sopts;
  sopts.listen_port = 0;
  sopts.token_rate = 0.5;  // one submit per 2s sustained...
  sopts.token_burst = 1.0;  // ...with a burst budget of exactly one
  api::Server server(engine, sopts);
  ASSERT_TRUE(server.start().ok());
  api::Client c("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(c.status().ok());

  auto first = c.call_json(submit_line("DWT2D"));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->get("ok")->as_bool());

  auto second = c.call_json(submit_line("DWT2D"));
  ASSERT_TRUE(second.ok());
  ASSERT_FALSE(second->get("ok")->as_bool());
  EXPECT_EQ(second->get("error")->get("code")->as_string(),
            "RESOURCE_EXHAUSTED");
  // The structured back-off hint is where a client learns when to come
  // back: with rate 0.5/s and an empty bucket that is ~2000ms out.
  const int64_t retry = api::envelope_retry_after_ms(*second);
  EXPECT_GE(retry, 1);
  EXPECT_LE(retry, 2100);
  // Non-quota errors carry no hint.
  auto miss = c.call_json(R"({"op":"status","job":999999})");
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(api::envelope_retry_after_ms(*miss), -1);
  // Ping is not rate limited — only submit consumes quota.
  auto pong = c.call_json(R"({"op":"ping"})");
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->get("ok")->as_bool());
  server.stop();
}

TEST(ServeTcp, InflightQuotaReleasesOnTerminal) {
  Engine engine(test_engine_opts());
  api::ServerOptions sopts;
  sopts.listen_port = 0;
  sopts.token_max_inflight = 1;
  api::Server server(engine, sopts);
  ASSERT_TRUE(server.start().ok());
  api::Client c("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(c.status().ok());

  auto first = c.call_json(submit_line("DWT2D"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->get("ok")->as_bool());
  const uint64_t id = static_cast<uint64_t>(first->get("job")->as_int());

  // While the first job is unfinished a second submit is rejected with
  // the structured hint; if the first already finished, the second is
  // simply accepted and becomes the in-flight job instead.
  uint64_t inflight_id = id;
  auto second = c.call_json(submit_line("DWT2D"));
  ASSERT_TRUE(second.ok());
  if (!second->get("ok")->as_bool()) {
    EXPECT_EQ(second->get("error")->get("code")->as_string(),
              "RESOURCE_EXHAUSTED");
    EXPECT_GE(api::envelope_retry_after_ms(*second), 0);
  } else {
    inflight_id = static_cast<uint64_t>(second->get("job")->as_int());
  }
  // Once every submitted job is terminal, the slot MUST be free again.
  auto done = c.call_json(R"({"op":"wait","job":)" +
                          std::to_string(inflight_id) +
                          R"(,"timeout_ms":600000})");
  ASSERT_TRUE(done.ok());
  auto third = c.call_json(submit_line("DWT2D"));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->get("ok")->as_bool()) << "in-flight slot not released";
  server.stop();
}

TEST(ServeTcp, OversizedRequestRejectedAndConnectionClosed) {
  Engine engine(test_engine_opts());
  api::ServerOptions sopts;
  sopts.listen_port = 0;
  sopts.max_request_bytes = 256;
  api::Server server(engine, sopts);
  ASSERT_TRUE(server.start().ok());
  api::Client c("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(c.status().ok());

  std::string huge = R"({"op":"ping","pad":")";
  huge.append(1024, 'x');
  huge += R"("})";
  auto resp = c.call_json(huge);
  ASSERT_TRUE(resp.ok()) << resp.status().to_string();
  EXPECT_FALSE(resp->get("ok")->as_bool());
  EXPECT_EQ(resp->get("error")->get("code")->as_string(), "INVALID_ARGUMENT");
  // The stream cannot be resynchronised; the server hangs up.
  auto after = c.call("{\"op\":\"ping\"}");
  EXPECT_FALSE(after.ok());
  server.stop();
}

TEST(ServeTcp, IdleConnectionsAreDropped) {
  Engine engine(test_engine_opts());
  api::ServerOptions sopts;
  sopts.listen_port = 0;
  sopts.idle_timeout_ms = 100;
  api::Server server(engine, sopts);
  ASSERT_TRUE(server.start().ok());
  api::Client c("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(c.status().ok());
  ASSERT_TRUE(c.call("{\"op\":\"ping\"}").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto resp = c.call("{\"op\":\"ping\"}");
  EXPECT_FALSE(resp.ok()) << "idle connection survived the timeout";
  server.stop();
}

TEST(Serve, HistogramsOpExportsAllStages) {
  Engine engine(test_engine_opts());
  api::ServerOptions sopts;
  sopts.socket_path = "./serve_hist_test.sock";
  api::Server server(engine, sopts);
  ASSERT_TRUE(server.start().ok());
  api::Client c(server.socket_path());
  ASSERT_TRUE(c.status().ok());

  auto sub = c.call_json(submit_line("DWT2D"));
  ASSERT_TRUE(sub.ok());
  const uint64_t id = static_cast<uint64_t>(sub->get("job")->as_int());
  ASSERT_TRUE(c.call_json(R"({"op":"wait","job":)" + std::to_string(id) +
                          R"(,"timeout_ms":600000})")
                  .ok());

  auto h = c.call_json(R"({"op":"histograms"})");
  ASSERT_TRUE(h.ok());
  const api::JsonValue* hh = h->get("histograms");
  ASSERT_NE(hh, nullptr);
  for (const char* stage : {"queue_wait", "tune", "sim", "serialize"}) {
    const api::JsonValue* s = hh->get(stage);
    ASSERT_NE(s, nullptr) << stage;
    EXPECT_NE(s->get("count"), nullptr) << stage;
    EXPECT_NE(s->get("p99_us"), nullptr) << stage;
    EXPECT_NE(s->get("buckets"), nullptr) << stage;
  }
  // The engine stages saw the job; serialize saw these requests.
  EXPECT_GE(hh->get("queue_wait")->get("count")->as_int(), 1);
  EXPECT_GE(hh->get("serialize")->get("count")->as_int(), 1);
  // Envelope metrics carry the summary form.
  const api::JsonValue* lat = h->get("metrics")->get("latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_NE(lat->get("sim"), nullptr);
  server.stop();
}

TEST(Serve, DeepEqualIgnoresObjectOrderButNotValues) {
  auto a = api::parse_json(R"({"x":1,"y":[1,2,{"k":true}],"z":"s"})");
  auto b = api::parse_json(R"({"z":"s","x":1,"y":[1,2,{"k":true}]})");
  auto c = api::parse_json(R"({"z":"s","x":1,"y":[2,1,{"k":true}]})");
  auto d = api::parse_json(R"({"x":1,"y":[1,2,{"k":true}]})");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_TRUE(api::deep_equal(*a, *b));
  EXPECT_FALSE(api::deep_equal(*a, *c));  // array order matters
  EXPECT_FALSE(api::deep_equal(*a, *d));  // missing member matters
  EXPECT_TRUE(api::deep_equal(*a, *a));
}

}  // namespace
}  // namespace gpurf
