#pragma once
// Helpers shared by the test binaries (each test is its own executable, so
// anything two suites need lives here rather than being copy-pasted).

#include "common/thread_pool.hpp"

namespace gpurf::testing {

/// RAII: resize the shared thread pool, restore the previous width on
/// scope exit — lets one process compare serial and parallel engine runs.
class PoolWidth {
 public:
  explicit PoolWidth(int n)
      : saved_(gpurf::common::ThreadPool::instance().size()) {
    gpurf::common::ThreadPool::instance().resize(n);
  }
  ~PoolWidth() { gpurf::common::ThreadPool::instance().resize(saved_); }

  PoolWidth(const PoolWidth&) = delete;
  PoolWidth& operator=(const PoolWidth&) = delete;

 private:
  int saved_;
};

}  // namespace gpurf::testing
