#pragma once
// Helpers shared by the test binaries (each test is its own executable, so
// anything two suites need lives here rather than being copy-pasted).

#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.hpp"
#include "sim/stats.hpp"

namespace gpurf::testing {

/// Field-by-field SimStats comparison with per-field failure messages —
/// the readable face of SimStats::operator== for the sharded-simulator
/// determinism suites (a bare == would say only "not equal").
inline void expect_same_sim_stats(const gpurf::sim::SimStats& a,
                                  const gpurf::sim::SimStats& b,
                                  const std::string& what = {}) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.thread_insts, b.thread_insts) << what;
  EXPECT_EQ(a.warp_insts, b.warp_insts) << what;
  EXPECT_EQ(a.blocks_run, b.blocks_run) << what;
  EXPECT_EQ(a.l1.accesses, b.l1.accesses) << what;
  EXPECT_EQ(a.l1.misses, b.l1.misses) << what;
  EXPECT_EQ(a.tex.accesses, b.tex.accesses) << what;
  EXPECT_EQ(a.tex.misses, b.tex.misses) << what;
  EXPECT_EQ(a.l2.accesses, b.l2.accesses) << what;
  EXPECT_EQ(a.l2.misses, b.l2.misses) << what;
  EXPECT_EQ(a.stall_scoreboard, b.stall_scoreboard) << what;
  EXPECT_EQ(a.stall_no_cu, b.stall_no_cu) << what;
  EXPECT_EQ(a.stall_barrier, b.stall_barrier) << what;
  EXPECT_EQ(a.stall_empty, b.stall_empty) << what;
  EXPECT_EQ(a.operand_fetches, b.operand_fetches) << what;
  EXPECT_EQ(a.double_fetches, b.double_fetches) << what;
  EXPECT_EQ(a.conversions, b.conversions) << what;
  // Defaulted operator== covers any counter the list above misses.
  EXPECT_TRUE(a == b) << what << " (field added to SimStats but not here?)";
}

/// RAII: resize the shared thread pool, restore the previous width on
/// scope exit — lets one process compare serial and parallel engine runs.
class PoolWidth {
 public:
  explicit PoolWidth(int n)
      : saved_(gpurf::common::ThreadPool::instance().size()) {
    gpurf::common::ThreadPool::instance().resize(n);
  }
  ~PoolWidth() { gpurf::common::ThreadPool::instance().resize(saved_); }

  PoolWidth(const PoolWidth&) = delete;
  PoolWidth& operator=(const PoolWidth&) = delete;

 private:
  int saved_;
};

}  // namespace gpurf::testing
