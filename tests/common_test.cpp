// Unit tests for the common utilities: bit manipulation, deterministic RNG,
// dynamic bitset and string helpers.

#include <gtest/gtest.h>

#include "common/bitset.hpp"
#include "common/bitutil.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strutil.hpp"

namespace gpurf {
namespace {

TEST(BitUtil, BitsForUnsigned) {
  EXPECT_EQ(bits_for_unsigned(0), 1);
  EXPECT_EQ(bits_for_unsigned(1), 1);
  EXPECT_EQ(bits_for_unsigned(2), 2);
  EXPECT_EQ(bits_for_unsigned(3), 2);
  EXPECT_EQ(bits_for_unsigned(255), 8);
  EXPECT_EQ(bits_for_unsigned(256), 9);
  EXPECT_EQ(bits_for_unsigned(UINT32_MAX), 32);
}

TEST(BitUtil, BitsForSignedRange) {
  EXPECT_EQ(bits_for_signed_range(0, 0), 1);
  EXPECT_EQ(bits_for_signed_range(-1, 0), 1);
  EXPECT_EQ(bits_for_signed_range(-1, 1), 2);
  EXPECT_EQ(bits_for_signed_range(-128, 127), 8);
  EXPECT_EQ(bits_for_signed_range(-129, 127), 9);
  EXPECT_EQ(bits_for_signed_range(-128, 128), 9);
  EXPECT_EQ(bits_for_signed_range(0, 127), 8);
  EXPECT_EQ(bits_for_signed_range(INT32_MIN, INT32_MAX), 32);
}

TEST(BitUtil, BitsForSignedRangeIsMinimal) {
  // Property: the returned n is the smallest width whose two's-complement
  // range covers [lo, hi].
  const int64_t cases[][2] = {{-5, 10},   {-1024, 1023}, {7, 7},
                              {-33, -31}, {0, 4095},     {-2048, 2047}};
  for (const auto& c : cases) {
    const int n = bits_for_signed_range(c[0], c[1]);
    const int64_t min_v = -(int64_t(1) << (n - 1));
    const int64_t max_v = (int64_t(1) << (n - 1)) - 1;
    EXPECT_LE(min_v, c[0]);
    EXPECT_GE(max_v, c[1]);
    if (n > 1) {
      const int64_t min2 = -(int64_t(1) << (n - 2));
      const int64_t max2 = (int64_t(1) << (n - 2)) - 1;
      EXPECT_TRUE(c[0] < min2 || c[1] > max2)
          << "width " << n << " not minimal for [" << c[0] << "," << c[1]
          << "]";
    }
  }
}

TEST(BitUtil, SlicesForBits) {
  EXPECT_EQ(slices_for_bits(1), 1);
  EXPECT_EQ(slices_for_bits(4), 1);
  EXPECT_EQ(slices_for_bits(5), 2);
  EXPECT_EQ(slices_for_bits(12), 3);
  EXPECT_EQ(slices_for_bits(13), 4);
  EXPECT_EQ(slices_for_bits(32), 8);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0xf, 4), -1);
  EXPECT_EQ(sign_extend(0x7, 4), 7);
  EXPECT_EQ(sign_extend(0x8, 4), -8);
  EXPECT_EQ(sign_extend(0xff, 8), -1);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xdeadbeef, 32), int32_t(0xdeadbeef));
}

TEST(BitUtil, SignExtendRoundTrip) {
  // Property: sign-extending the truncation of any in-range value is
  // the identity.
  for (int bits = 2; bits <= 16; ++bits) {
    const int32_t lo = -(1 << (bits - 1));
    const int32_t hi = (1 << (bits - 1)) - 1;
    for (int32_t v = lo; v <= hi; v += std::max(1, (hi - lo) / 37)) {
      EXPECT_EQ(sign_extend(uint32_t(v), bits), v);
    }
  }
}

TEST(BitUtil, ZeroExtendAndLowMask) {
  EXPECT_EQ(zero_extend(0xffffffffu, 8), 0xffu);
  EXPECT_EQ(zero_extend(0x12345678u, 16), 0x5678u);
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(4), 0xfu);
  EXPECT_EQ(low_mask(32), 0xffffffffu);
}

TEST(BitUtil, FloatBitsRoundTrip) {
  const float vals[] = {0.0f, -0.0f, 1.0f, -2.5f, 3.14159f, 1e-20f, 1e20f};
  for (float v : vals) EXPECT_EQ(bits_float(float_bits(v)), v);
}

TEST(BitUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Rng, Deterministic) {
  Pcg32 a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, StreamsDiffer) {
  Pcg32 a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundsRespected) {
  Pcg32 rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Pcg32 rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Bitset, SetTestReset) {
  DynBitset b(130);
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, MergeAndAndNot) {
  DynBitset a(70), b(70);
  a.set(1);
  b.set(2);
  b.set(68);
  EXPECT_TRUE(a.merge(b));
  EXPECT_TRUE(a.test(2));
  EXPECT_TRUE(a.test(68));
  EXPECT_FALSE(a.merge(b));  // no change the second time
  DynBitset c(70);
  c.set(2);
  a.and_not(c);
  EXPECT_FALSE(a.test(2));
  EXPECT_TRUE(a.test(1));
}

TEST(Bitset, ForEachSet) {
  DynBitset b(100);
  b.set(3);
  b.set(64);
  b.set(99);
  std::vector<size_t> got;
  b.for_each_set([&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, (std::vector<size_t>{3, 64, 99}));
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t x \r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StrUtil, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtil, SplitWs) {
  auto parts = split_ws("  add.s32   %a, %b  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "add.s32");
  EXPECT_EQ(parts[1], "%a,");
}

TEST(Error, CheckThrows) {
  EXPECT_THROW(GPURF_CHECK(false, "boom " << 42), Error);
  EXPECT_NO_THROW(GPURF_CHECK(true, "fine"));
}

}  // namespace
}  // namespace gpurf
