// Tests for the functional SIMT interpreter: arithmetic semantics,
// divergence/reconvergence, barriers + shared memory, memory traces,
// predication, and the precision-map / range-check hooks.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/range_analysis.hpp"
#include "common/bitutil.hpp"
#include "exec/interp.hpp"
#include "ir/parser.hpp"

namespace gpurf::exec {
namespace {

using gpurf::ir::LaunchConfig;
using gpurf::ir::parse_kernel;

struct Rig {
  gpurf::ir::Kernel k;
  GlobalMemory gmem;
  std::vector<Texture> textures;
  ExecContext ctx;

  Rig(std::string_view text, LaunchConfig lc, std::vector<uint32_t> params)
      : k(parse_kernel(text)) {
    ctx.kernel = &k;
    ctx.launch = lc;
    ctx.gmem = &gmem;
    ctx.textures = &textures;
    ctx.params = std::move(params);
  }
};

TEST(Interp, ThreadIdsAndStore) {
  Rig rig(R"(
.kernel tid
.param s32 out
.reg s32 %x
.reg s32 %a
entry:
  mov.s32 %x, %tid.x
  add.s32 %a, %x, $out
  st.global.s32 [%a], %x
  ret
)",
          LaunchConfig{1, 1, 64, 1}, {});
  const uint32_t out = rig.gmem.alloc(64);
  rig.ctx.params = {out};
  run_functional(rig.ctx);
  for (uint32_t i = 0; i < 64; ++i) EXPECT_EQ(rig.gmem.read(out + i), i);
}

TEST(Interp, IntegerArithmeticSemantics) {
  Rig rig(R"(
.kernel arith
.param s32 out
.reg s32 %x
.reg s32 %r
.reg s32 %a
entry:
  mov.s32 %x, %tid.x
  sub.s32 %r, %x, 5
  mul.s32 %r, %r, %r
  div.s32 %r, %r, 3
  rem.s32 %r, %r, 7
  add.s32 %a, %x, $out
  st.global.s32 [%a], %r
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t out = rig.gmem.alloc(32);
  rig.ctx.params = {out};
  run_functional(rig.ctx);
  for (int i = 0; i < 32; ++i) {
    const int expect = (((i - 5) * (i - 5)) / 3) % 7;
    EXPECT_EQ(int32_t(rig.gmem.read(out + i)), expect) << i;
  }
}

TEST(Interp, DivRemByZeroAreDeterministic) {
  Rig rig(R"(
.kernel dz
.param s32 out
.reg s32 %x
.reg s32 %q
.reg s32 %r
.reg s32 %a
entry:
  mov.s32 %x, %tid.x
  div.s32 %q, %x, 0
  rem.s32 %r, %x, 0
  add.s32 %q, %q, %r
  add.s32 %a, %x, $out
  st.global.s32 [%a], %q
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t out = rig.gmem.alloc(32);
  rig.ctx.params = {out};
  run_functional(rig.ctx);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rig.gmem.read(out + i), 0u);
}

TEST(Interp, FloatOpsMatchLibm) {
  Rig rig(R"(
.kernel fl
.param s32 out
.reg s32 %x
.reg s32 %a
.reg f32 %f
.reg f32 %g
entry:
  mov.s32 %x, %tid.x
  cvt.f32.s32 %f, %x
  mul.f32 %f, %f, 0.125
  sin.f32 %g, %f
  mad.f32 %g, %g, %g, %f
  sqrt.f32 %g, %g
  add.s32 %a, %x, $out
  st.global.f32 [%a], %g
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t out = rig.gmem.alloc(32);
  rig.ctx.params = {out};
  run_functional(rig.ctx);
  for (int i = 0; i < 32; ++i) {
    const float f = float(i) * 0.125f;
    const float expect = std::sqrt(std::sin(f) * std::sin(f) + f);
    EXPECT_EQ(bits_float(rig.gmem.read(out + i)), expect) << i;
  }
}

TEST(Interp, DivergenceReconverges) {
  // Divergent if/else: even lanes add 10, odd lanes add 100, everyone
  // then adds 1 after reconvergence.
  Rig rig(R"(
.kernel div
.param s32 out
.reg s32 %x
.reg s32 %r
.reg s32 %a
.reg pred %p
entry:
  mov.s32 %x, %tid.x
  and.s32 %r, %x, 1
  setp.eq.s32 %p, %r, 0
  @%p bra even
odd:
  add.s32 %r, %x, 100
  bra join
even:
  add.s32 %r, %x, 10
join:
  add.s32 %r, %r, 1
  add.s32 %a, %x, $out
  st.global.s32 [%a], %r
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t out = rig.gmem.alloc(32);
  rig.ctx.params = {out};
  run_functional(rig.ctx);
  for (int i = 0; i < 32; ++i) {
    const int expect = i + (i % 2 == 0 ? 10 : 100) + 1;
    EXPECT_EQ(int32_t(rig.gmem.read(out + i)), expect) << i;
  }
}

TEST(Interp, DataDependentLoopTripCounts) {
  // Each lane loops tid times: a classic divergence stress.
  Rig rig(R"(
.kernel loop
.param s32 out
.reg s32 %x
.reg s32 %i
.reg s32 %acc
.reg s32 %a
.reg pred %p
entry:
  mov.s32 %x, %tid.x
  mov.s32 %i, 0
  mov.s32 %acc, 0
head:
  setp.ge.s32 %p, %i, %x
  @%p bra done
body:
  add.s32 %acc, %acc, %i
  add.s32 %i, %i, 1
  bra head
done:
  add.s32 %a, %x, $out
  st.global.s32 [%a], %acc
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t out = rig.gmem.alloc(32);
  rig.ctx.params = {out};
  run_functional(rig.ctx);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(int32_t(rig.gmem.read(out + i)), i * (i - 1) / 2) << i;
}

TEST(Interp, BarrierAndSharedMemory) {
  // Reverse a 64-element block through shared memory.
  Rig rig(R"(
.kernel rev
.param s32 out
.reg s32 %x
.reg s32 %r
.reg s32 %a
entry:
  mov.s32 %x, %tid.x
  st.shared.s32 [%x], %x
  bar.sync
  mov.s32 %r, 63
  sub.s32 %r, %r, %x
  ld.shared.s32 %r, [%r]
  add.s32 %a, %x, $out
  st.global.s32 [%a], %r
  ret
)",
          LaunchConfig{1, 1, 64, 1}, {});
  // shared_bytes defaults to 0 but the interpreter pads; declare properly:
  rig.k.shared_bytes = 64 * 4;
  const uint32_t out = rig.gmem.alloc(64);
  rig.ctx.params = {out};
  run_functional(rig.ctx);
  for (uint32_t i = 0; i < 64; ++i)
    EXPECT_EQ(rig.gmem.read(out + i), 63 - i);
}

TEST(Interp, NegatedGuard) {
  Rig rig(R"(
.kernel ng
.param s32 out
.reg s32 %x
.reg s32 %r
.reg s32 %a
.reg pred %p
entry:
  mov.s32 %x, %tid.x
  mov.s32 %r, 0
  setp.lt.s32 %p, %x, 16
  @%p mov.s32 %r, 1
  @!%p mov.s32 %r, 2
  add.s32 %a, %x, $out
  st.global.s32 [%a], %r
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t out = rig.gmem.alloc(32);
  rig.ctx.params = {out};
  run_functional(rig.ctx);
  for (uint32_t i = 0; i < 32; ++i)
    EXPECT_EQ(rig.gmem.read(out + i), i < 16 ? 1u : 2u);
}

TEST(Interp, PartialWarpValidMask) {
  Rig rig(R"(
.kernel pw
.param s32 out
.reg s32 %x
.reg s32 %a
entry:
  mov.s32 %x, %tid.x
  add.s32 %a, %x, $out
  st.global.s32 [%a], %x
  ret
)",
          LaunchConfig{1, 1, 40, 1}, {});  // 40 threads: 1.25 warps
  const uint32_t out = rig.gmem.alloc(64);
  rig.ctx.params = {out};
  const uint64_t insts = run_functional(rig.ctx);
  EXPECT_EQ(insts, 40u * 4u);  // lanes beyond 40 never execute
  for (uint32_t i = 0; i < 40; ++i) EXPECT_EQ(rig.gmem.read(out + i), i);
  for (uint32_t i = 40; i < 64; ++i) EXPECT_EQ(rig.gmem.read(out + i), 0u);
}

TEST(Interp, TextureClampAndFetch) {
  Rig rig(R"(
.kernel tex
.param s32 out
.tex img
.reg s32 %x
.reg s32 %u
.reg s32 %a
.reg f32 %v
entry:
  mov.s32 %x, %tid.x
  sub.s32 %u, %x, 4
  tex.2d.f32 %v, img, %u, %u
  add.s32 %a, %x, $out
  st.global.f32 [%a], %v
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  Texture t;
  t.width = 8;
  t.height = 8;
  t.texels.resize(64);
  for (int i = 0; i < 64; ++i) t.texels[i] = float(i);
  rig.textures.push_back(std::move(t));
  const uint32_t out = rig.gmem.alloc(32);
  rig.ctx.params = {out};
  run_functional(rig.ctx);
  // Lane 0 samples (-4,-4) -> clamped to (0,0) = 0; lane 11 -> (7,7) = 63.
  EXPECT_EQ(bits_float(rig.gmem.read(out + 0)), 0.f);
  EXPECT_EQ(bits_float(rig.gmem.read(out + 11)), 63.f);
  EXPECT_EQ(bits_float(rig.gmem.read(out + 31)), 63.f);  // clamped high
}

TEST(Interp, StepResultMemoryTrace) {
  Rig rig(R"(
.kernel tr
.param s32 base
.reg s32 %x
.reg s32 %a
.reg f32 %v
entry:
  mov.s32 %x, %tid.x
  add.s32 %a, %x, $base
  ld.global.f32 %v, [%a+2]
  st.global.f32 [%a], %v
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t base = rig.gmem.alloc(64);
  rig.ctx.params = {base};
  BlockExec be(rig.ctx, 0, 0);
  StepResult r;
  do {
    r = be.step(0);
  } while (r.inst->op != gpurf::ir::Opcode::LD_GLOBAL);
  EXPECT_EQ(r.active_mask, 0xffffffffu);
  for (uint32_t l = 0; l < 4; ++l) EXPECT_EQ(r.addr[l], base + l + 2);
}

TEST(Interp, PrecisionMapQuantizesWrites) {
  Rig rig(R"(
.kernel pm
.param s32 out
.reg s32 %x
.reg s32 %a
.reg f32 %v
entry:
  mov.s32 %x, %tid.x
  mov.f32 %v, 0.3
  add.s32 %a, %x, $out
  st.global.f32 [%a], %v
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t out = rig.gmem.alloc(32);
  rig.ctx.params = {out};

  PrecisionMap pmap;
  pmap.per_reg.assign(rig.k.num_regs(), gpurf::fp::format_for_bits(32));
  pmap.per_reg[rig.k.find_reg("v")] = gpurf::fp::format_for_bits(16);
  rig.ctx.precision = &pmap;

  run_functional(rig.ctx);
  const float stored = bits_float(rig.gmem.read(out));
  EXPECT_EQ(stored, gpurf::fp::quantize(0.3f, gpurf::fp::format_for_bits(16)));
  EXPECT_NE(stored, 0.3f);
}

TEST(Interp, RangeCheckAcceptsSoundRanges) {
  auto text = R"(
.kernel rc
.param s32 out
.reg s32 %x
.reg s32 %c
.reg s32 %a
entry:
  mov.s32 %x, %tid.x
  and.s32 %c, %x, 7
  add.s32 %a, %x, $out
  st.global.s32 [%a], %c
  ret
)";
  Rig rig(text, LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t out = rig.gmem.alloc(32);
  rig.ctx.params = {out};
  const auto ranges = analysis::analyze_ranges(rig.k, rig.ctx.launch);
  rig.ctx.range_check = &ranges;
  EXPECT_NO_THROW(run_functional(rig.ctx));
}

TEST(Interp, SharedMemoryOutOfBoundsCaught) {
  Rig rig(R"(
.kernel oob
.reg s32 %x
entry:
  mov.s32 %x, 100000
  st.shared.s32 [%x], %x
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  // Recoverable gpurf::Error since PR 7 (soft-error injection can push a
  // corrupted address out of bounds; that must not abort the process).
  EXPECT_THROW(run_functional(rig.ctx), gpurf::Error);
}

TEST(Interp, InstructionCountMatchesActiveLanes) {
  Rig rig(R"(
.kernel cnt
.param s32 out
.reg s32 %x
.reg s32 %a
.reg pred %p
entry:
  mov.s32 %x, %tid.x
  setp.lt.s32 %p, %x, 8
  @%p add.s32 %x, %x, 1
  add.s32 %a, %x, $out
  st.global.s32 [%a], %x
  ret
)",
          LaunchConfig{1, 1, 32, 1}, {});
  const uint32_t out = rig.gmem.alloc(64);
  rig.ctx.params = {out};
  const uint64_t insts = run_functional(rig.ctx);
  // mov(32) + setp(32) + guarded add(8) + add(32) + st(32) + ret(32)
  EXPECT_EQ(insts, 32u + 32u + 8u + 32u + 32u + 32u);
}

}  // namespace
}  // namespace gpurf::exec
