// Tests for the precision tuner (§4.1) against synthetic quality probes
// with known answers.

#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "tuning/tuner.hpp"

namespace gpurf::tuning {
namespace {

using gpurf::quality::QualityLevel;

gpurf::ir::Kernel float_kernel() {
  return gpurf::ir::parse_kernel(R"(
.kernel t
.reg f32 %a
.reg f32 %b
.reg f32 %c
.reg f32 %unused
entry:
  mov.f32 %a, 1.0
  mov.f32 %b, 2.0
  add.f32 %c, %a, %b
  st.global.f32 [%c], %c
  ret
)");
}

/// Probe with a per-register minimum acceptable width: quality passes iff
/// every register is at least as wide as its floor.
class FloorProbe final : public QualityProbe {
 public:
  explicit FloorProbe(std::vector<int> floors) : floors_(std::move(floors)) {}

  double evaluate(const gpurf::exec::PrecisionMap& pmap) override {
    ++evals;
    for (size_t r = 0; r < floors_.size(); ++r)
      if (floors_[r] > 0 && pmap.per_reg[r].total_bits < floors_[r])
        return 0.0;
    return 1.0;
  }
  bool meets(double score, QualityLevel) const override {
    return score >= 1.0;
  }

  int evals = 0;

 private:
  std::vector<int> floors_;
};

TEST(Tuner, FindsPerRegisterFloors) {
  auto k = float_kernel();
  // floors: %a >= 16, %b >= 24, %c >= 8 (anything), %unused ignored.
  FloorProbe probe({16, 24, 8, 0});
  TunerOptions opt;
  const auto res = tune_precision(k, probe, opt);
  EXPECT_EQ(res.pmap.per_reg[0].total_bits, 16);
  EXPECT_EQ(res.pmap.per_reg[1].total_bits, 24);
  EXPECT_EQ(res.pmap.per_reg[2].total_bits, 8);
  EXPECT_GT(probe.evals, 3);
}

TEST(Tuner, UnusedRegistersNotTuned) {
  auto k = float_kernel();
  FloorProbe probe({8, 8, 8, 0});
  const auto res = tune_precision(k, probe, TunerOptions{});
  // %unused never appears in the program: left at 32 bits and excluded
  // from the slice accounting.
  EXPECT_EQ(res.pmap.per_reg[3].total_bits, 32);
  EXPECT_EQ(res.f32_regs, 3);
  EXPECT_EQ(res.slices_before, 24);
  EXPECT_EQ(res.slices_after, 6);  // three registers at 8 bits
}

TEST(Tuner, AllAt32WhenNothingPasses) {
  auto k = float_kernel();
  FloorProbe probe({32, 32, 32, 0});
  const auto res = tune_precision(k, probe, TunerOptions{});
  for (int r = 0; r < 3; ++r)
    EXPECT_EQ(res.pmap.per_reg[r].total_bits, 32);
  EXPECT_EQ(res.slices_after, res.slices_before);
}

TEST(Tuner, ThrowsWhenFullPrecisionFails) {
  auto k = float_kernel();
  class NeverProbe final : public QualityProbe {
    double evaluate(const gpurf::exec::PrecisionMap&) override { return 0; }
    bool meets(double, QualityLevel) const override { return false; }
  } probe;
  EXPECT_THROW(tune_precision(k, probe, TunerOptions{}), gpurf::Error);
}

TEST(Tuner, InteractionsResolvedByFixpoint) {
  // Budget probe: the *sum* of widths must stay >= 56 — the tuner must
  // stop narrowing once the budget is tight, wherever it started.
  auto k = float_kernel();
  class BudgetProbe final : public QualityProbe {
   public:
    double evaluate(const gpurf::exec::PrecisionMap& pmap) override {
      int total = 0;
      for (int r = 0; r < 3; ++r) total += pmap.per_reg[r].total_bits;
      return total >= 56 ? 1.0 : 0.0;
    }
    bool meets(double s, QualityLevel) const override { return s >= 1.0; }
  } probe;
  const auto res = tune_precision(k, probe, TunerOptions{});
  int total = 0;
  for (int r = 0; r < 3; ++r) total += res.pmap.per_reg[r].total_bits;
  EXPECT_GE(total, 56);
  EXPECT_LT(total, 96);  // meaningfully narrowed
  EXPECT_GE(res.final_score, 1.0);
}

TEST(Tuner, ResultFormatsAreTable3) {
  auto k = float_kernel();
  FloorProbe probe({14, 9, 21, 0});  // floors between format widths
  const auto res = tune_precision(k, probe, TunerOptions{});
  // The tuner only assigns Table-3 widths: floors round up to 16/12/24.
  EXPECT_EQ(res.pmap.per_reg[0].total_bits, 16);
  EXPECT_EQ(res.pmap.per_reg[1].total_bits, 12);
  EXPECT_EQ(res.pmap.per_reg[2].total_bits, 24);
}

}  // namespace
}  // namespace gpurf::tuning
