// Tests for the IR front end: assembler, printer round-trip, verifier.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace gpurf::ir {
namespace {

constexpr std::string_view kMini = R"(
.kernel mini
.param s32 out_base
.reg s32 %a
.reg s32 %b
.reg f32 %f
.reg pred %p

entry:
  mov.s32 %a, %tid.x
  add.s32 %b, %a, 5
  cvt.f32.s32 %f, %b
  mul.f32 %f, %f, 0.5
  setp.lt.s32 %p, %b, 100
  @%p add.s32 %b, %b, 1
  st.global.f32 [%a], %f
  ret
)";

TEST(Parser, ParsesMiniKernel) {
  Kernel k = parse_kernel(kMini);
  EXPECT_EQ(k.name, "mini");
  EXPECT_EQ(k.num_regs(), 4u);
  EXPECT_EQ(k.params.size(), 1u);
  EXPECT_EQ(k.blocks.size(), 1u);
  EXPECT_EQ(k.blocks[0].insts.size(), 8u);
  verify(k);
}

TEST(Parser, GuardParsing) {
  Kernel k = parse_kernel(kMini);
  const Instruction& guarded = k.blocks[0].insts[5];
  EXPECT_EQ(guarded.op, Opcode::ADD);
  EXPECT_EQ(guarded.guard, k.find_reg("p"));
  EXPECT_FALSE(guarded.guard_neg);
}

TEST(Parser, RegisterGroups) {
  Kernel k = parse_kernel(R"(
.kernel g
.reg f32 %acc<4>
entry:
  mov.f32 %acc0, 0.0
  mov.f32 %acc3, 1.0
  ret
)");
  EXPECT_EQ(k.num_regs(), 4u);
  EXPECT_NE(k.find_reg("acc0"), kNoReg);
  EXPECT_NE(k.find_reg("acc3"), kNoReg);
  EXPECT_EQ(k.find_reg("acc4"), kNoReg);
}

TEST(Parser, MemoryOffsets) {
  Kernel k = parse_kernel(R"(
.kernel m
.reg s32 %a
.reg f32 %v
entry:
  mov.s32 %a, 0
  ld.global.f32 %v, [%a+12]
  st.shared.f32 [%a-3], %v
  ret
)");
  EXPECT_EQ(k.blocks[0].insts[1].mem_offset, 12);
  EXPECT_EQ(k.blocks[0].insts[2].mem_offset, -3);
}

TEST(Parser, BranchTargetsResolved) {
  Kernel k = parse_kernel(R"(
.kernel b
.reg s32 %i
.reg pred %p
entry:
  mov.s32 %i, 0
loop:
  setp.ge.s32 %p, %i, 4
  @%p bra done
body:
  add.s32 %i, %i, 1
  bra loop
done:
  ret
)");
  EXPECT_EQ(k.blocks.size(), 4u);
  EXPECT_EQ(k.blocks[1].insts.back().target, k.find_block("done"));
  EXPECT_EQ(k.blocks[2].insts.back().target, k.find_block("loop"));
  verify(k);
}

TEST(Parser, Errors) {
  // unknown mnemonic
  EXPECT_THROW(parse_kernel(".kernel x\n.reg s32 %a\nentry:\n  frob.s32 %a, %a, %a\n  ret\n"),
               Error);
  // undeclared register
  EXPECT_THROW(parse_kernel(".kernel x\nentry:\n  mov.s32 %a, 0\n  ret\n"),
               Error);
  // duplicate register
  EXPECT_THROW(parse_kernel(".kernel x\n.reg s32 %a\n.reg f32 %a\nentry:\n  ret\n"),
               Error);
  // unknown label
  EXPECT_THROW(parse_kernel(".kernel x\nentry:\n  bra nowhere\n"), Error);
  // bad operand count
  EXPECT_THROW(parse_kernel(".kernel x\n.reg s32 %a\nentry:\n  add.s32 %a, %a\n  ret\n"),
               Error);
  // missing .kernel
  EXPECT_THROW(parse_kernel(".reg s32 %a\nentry:\n  ret\n"), Error);
  // bad float literal
  EXPECT_THROW(parse_kernel(".kernel x\n.reg f32 %f\nentry:\n  mov.f32 %f, abc\n  ret\n"),
               Error);
}

TEST(Parser, Comments) {
  Kernel k = parse_kernel(R"(
.kernel c  // trailing comment
.reg s32 %a   ; another style
entry:
  mov.s32 %a, 1  // immediate
  ret
)");
  EXPECT_EQ(k.blocks[0].insts.size(), 2u);
}

TEST(Parser, TextureOperands) {
  Kernel k = parse_kernel(R"(
.kernel t
.tex colors
.reg s32 %u
.reg f32 %v
entry:
  mov.s32 %u, 3
  tex.2d.f32 %v, colors, %u, %u
  ret
)");
  EXPECT_EQ(k.textures.size(), 1u);
  EXPECT_EQ(k.blocks[0].insts[1].tex, 0u);
  verify(k);
}

TEST(Parser, ParamRange) {
  Kernel k = parse_kernel(R"(
.kernel p
.param s32 width range(16,4096)
.param s32 base
.reg s32 %a
entry:
  mov.s32 %a, $width
  ret
)");
  ASSERT_TRUE(k.params[0].range.has_value());
  EXPECT_EQ(k.params[0].range->lo, 16);
  EXPECT_EQ(k.params[0].range->hi, 4096);
  EXPECT_FALSE(k.params[1].range.has_value());
}

TEST(Printer, RoundTrip) {
  // print(parse(x)) parses back to a kernel that prints identically.
  Kernel k1 = parse_kernel(kMini);
  const std::string text1 = print_kernel(k1);
  Kernel k2 = parse_kernel(text1);
  const std::string text2 = print_kernel(k2);
  EXPECT_EQ(text1, text2);
  verify(k2);
}

TEST(Verifier, RejectsTypeMismatch) {
  // float operand into integer add
  EXPECT_THROW(
      {
        Kernel k = parse_kernel(
            ".kernel v\n.reg s32 %a\n.reg f32 %f\nentry:\n"
            "  add.s32 %a, %a, %f\n  ret\n");
        verify(k);
      },
      Error);
}

TEST(Verifier, RejectsNonPredGuard) {
  Kernel k = parse_kernel(
      ".kernel v\n.reg s32 %a\n.reg s32 %b\nentry:\n  mov.s32 %a, 1\n  ret\n");
  // Forge a guard that is not a predicate.
  k.blocks[0].insts[0].guard = k.find_reg("b");
  EXPECT_THROW(verify(k), Error);
}

TEST(Verifier, RejectsMidBlockTerminator) {
  Kernel k = parse_kernel(
      ".kernel v\nentry:\n  ret\n");
  Instruction extra;
  extra.op = Opcode::BAR;
  k.blocks[0].insts.push_back(extra);  // instruction after ret
  EXPECT_THROW(verify(k), Error);
}

TEST(Verifier, RejectsFallOffEnd) {
  Kernel k = parse_kernel(
      ".kernel v\n.reg s32 %a\nentry:\n  mov.s32 %a, 1\n  ret\n");
  k.blocks[0].insts.pop_back();  // remove the ret
  EXPECT_THROW(verify(k), Error);
}

TEST(Verifier, RejectsUnreachableBlock) {
  Kernel k = parse_kernel(R"(
.kernel v
entry:
  ret
orphan:
  ret
)");
  EXPECT_THROW(verify(k), Error);
}

TEST(Verifier, RejectsTransOnInt) {
  EXPECT_THROW(
      {
        Kernel k = parse_kernel(
            ".kernel v\n.reg s32 %a\nentry:\n  sin.s32 %a, %a\n  ret\n");
        verify(k);
      },
      Error);
}

TEST(Kernel, Successors) {
  Kernel k = parse_kernel(R"(
.kernel s
.reg s32 %i
.reg pred %p
entry:
  mov.s32 %i, 0
loop:
  setp.ge.s32 %p, %i, 4
  @%p bra done
body:
  add.s32 %i, %i, 1
  bra loop
done:
  ret
)");
  EXPECT_EQ(k.successors(0), (std::vector<uint32_t>{1}));          // fallthrough
  EXPECT_EQ(k.successors(1), (std::vector<uint32_t>{3, 2}));       // cond
  EXPECT_EQ(k.successors(2), (std::vector<uint32_t>{1}));          // back edge
  EXPECT_TRUE(k.successors(3).empty());                            // ret
}

TEST(Kernel, NumDataRegs) {
  Kernel k = parse_kernel(kMini);
  EXPECT_EQ(k.num_data_regs(), 3u);  // %p excluded
}

TEST(Opcode, InfoTableConsistent) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    const auto& info = opcode_info(static_cast<Opcode>(i));
    EXPECT_FALSE(info.name.empty());
    EXPECT_GE(info.num_srcs, 0);
    EXPECT_LE(info.num_srcs, 3);
  }
}

}  // namespace
}  // namespace gpurf::ir
