// Job API (ISSUE 4): state machine, cooperative cancellation, deadlines
// (queue wait and execution), priority scheduling, metrics, and the
// cache-consistency guarantee — a cancelled job leaves no partial memo or
// disk-cache entry, and an un-cancelled re-run of the same workload is
// bit-identical to a never-cancelled baseline.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "api/engine.hpp"
#include "api/json.hpp"
#include "common/cancel.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace gpurf {
namespace {

namespace wl = gpurf::workloads;
namespace fs = std::filesystem;
using std::chrono::milliseconds;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::path(".") / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

void expect_same_pipeline(const wl::PipelineResult& a,
                          const wl::PipelineResult& b) {
  ASSERT_EQ(a.tune_perfect.pmap.per_reg.size(),
            b.tune_perfect.pmap.per_reg.size());
  for (size_t r = 0; r < a.tune_perfect.pmap.per_reg.size(); ++r) {
    EXPECT_TRUE(a.tune_perfect.pmap.per_reg[r] ==
                b.tune_perfect.pmap.per_reg[r])
        << "perfect reg " << r;
    EXPECT_TRUE(a.tune_high.pmap.per_reg[r] == b.tune_high.pmap.per_reg[r])
        << "high reg " << r;
  }
  EXPECT_EQ(a.tune_perfect.final_score, b.tune_perfect.final_score);
  EXPECT_EQ(a.tune_high.final_score, b.tune_high.final_score);
  EXPECT_EQ(a.pressure.original, b.pressure.original);
  EXPECT_EQ(a.pressure.both_perfect, b.pressure.both_perfect);
  EXPECT_EQ(a.pressure.both_high, b.pressure.both_high);
}

// ----------------------------------------------------------- CancelToken

TEST(CancelToken, CancelAndDeadlineCheckpoints) {
  common::CancelToken t;
  EXPECT_EQ(t.stop_reason(), common::StopReason::kNone);
  EXPECT_NO_THROW(t.checkpoint());

  t.cancel();
  EXPECT_EQ(t.stop_reason(), common::StopReason::kCancelled);
  EXPECT_THROW(t.checkpoint(), common::CancelledError);
  try {
    t.checkpoint();
    FAIL() << "checkpoint did not throw";
  } catch (const common::CancelledError& e) {
    EXPECT_EQ(e.reason(), common::StopReason::kCancelled);
  }

  common::CancelToken d;
  d.set_deadline(common::CancelToken::Clock::now() - milliseconds(1));
  EXPECT_EQ(d.stop_reason(), common::StopReason::kDeadline);
  try {
    d.checkpoint();
    FAIL() << "checkpoint did not throw";
  } catch (const common::CancelledError& e) {
    EXPECT_EQ(e.reason(), common::StopReason::kDeadline);
  }

  // Explicit cancellation wins over an elapsed deadline.
  d.cancel();
  EXPECT_EQ(d.stop_reason(), common::StopReason::kCancelled);
}

// ------------------------------------------------------- state machine

TEST(Job, CompletesWithResultAndProgress) {
  TempDir dir("gpurf_job_cache_done");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));

  Job job = engine.submit(JobRequest::pipeline("DWT2D"));
  ASSERT_TRUE(job.valid());
  EXPECT_GT(job.id(), 0u);
  job.wait();
  EXPECT_EQ(job.state(), JobState::kDone);
  EXPECT_TRUE(job.status().ok()) << job.status().to_string();

  auto pr = job.pipeline_result();
  ASSERT_TRUE(pr.ok()) << pr.status().to_string();
  EXPECT_GT(pr->pressure.original, 0u);

  const JobProgress p = job.progress();
  EXPECT_EQ(p.state, JobState::kDone);
  EXPECT_EQ(p.stage, common::JobStage::kFinished);
  EXPECT_GT(p.tuner_evaluations, 0);  // it really tuned
  EXPECT_GT(p.run_seq, 0u);
  EXPECT_GT(p.wall_ms, 0.0);

  // Kind mismatch is an error, not a crash.
  EXPECT_FALSE(job.sim_result().ok());

  // The registry still knows the job.
  auto found = engine.find_job(job.id());
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id(), job.id());
  EXPECT_FALSE(engine.find_job(99999u).ok());
}

TEST(Job, UnknownWorkloadFailsWithStatus) {
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  Job job = engine.submit(JobRequest::pipeline("NoSuchKernel"));
  job.wait();
  EXPECT_EQ(job.state(), JobState::kDone);
  EXPECT_EQ(job.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(job.pipeline_result().ok());
}

// ------------------------------------------- cancellation (acceptance)

TEST(Job, CancelMidTuneLeavesCachesConsistent) {
  // Reference: a never-cancelled pipeline, computed on an isolated engine.
  const auto w = wl::make_gicov();
  wl::PipelineResult ref;
  {
    Engine baseline(EngineOptions().with_threads(2).with_disk_cache(false));
    auto r = baseline.compute_pipeline(*w);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    ref = *r;
  }

  TempDir dir("gpurf_job_cache_cancel");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));

  // GICOV's tune takes seconds, so the cancel below lands mid-tune with a
  // wide margin.  Wait until the job is observably inside the tuner (at
  // least one probe evaluated) before cancelling.
  Job job = engine.submit(JobRequest::pipeline("GICOV"));
  const auto t0 = std::chrono::steady_clock::now();
  while (job.progress().tuner_evaluations < 1 && !job.done()) {
    ASSERT_LT(std::chrono::steady_clock::now() - t0, std::chrono::minutes(5));
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_FALSE(job.done()) << "tune finished before the cancel could land";
  const auto cancel_at = std::chrono::steady_clock::now();
  job.cancel();
  job.wait();
  const auto cancelled_after =
      std::chrono::steady_clock::now() - cancel_at;
  EXPECT_EQ(job.state(), JobState::kCancelled);
  EXPECT_EQ(job.status().code(), StatusCode::kCancelled);
  // "Within one probe batch": generous absolute bound so slow CI machines
  // pass, but far below the multi-second full tune this interrupted.
  EXPECT_LT(cancelled_after, std::chrono::seconds(30));

  // No partial disk-cache entry: the cancelled tune stored nothing.
  tuning::TuneResult perfect, high;
  EXPECT_EQ(wl::load_pmap_cache(*w, dir.path, perfect, high).code(),
            StatusCode::kNotFound);

  // No poisoned memo: a fresh, un-cancelled request on the SAME engine
  // recomputes from scratch and is bit-identical to the baseline.
  auto rerun = engine.pipeline("GICOV");
  ASSERT_TRUE(rerun.ok()) << rerun.status().to_string();
  expect_same_pipeline(ref, **rerun);

  // And now the disk cache holds a complete, loadable entry.
  EXPECT_TRUE(wl::load_pmap_cache(*w, dir.path, perfect, high).ok());
}

TEST(Job, CancelWhileQueuedIsImmediate) {
  TempDir dir("gpurf_job_cache_qcancel");
  Engine engine(EngineOptions()
                    .with_threads(1)
                    .with_cache_dir(dir.path)
                    .with_async_workers(1)
                    .with_max_inflight(8));
  // Occupy the single worker, then cancel a queued job: it must go
  // terminal without waiting for the blocker to finish.
  Job blocker = engine.submit(JobRequest::pipeline("GICOV"));
  Job queued = engine.submit(JobRequest::pipeline("Hotspot"));
  queued.cancel();
  EXPECT_TRUE(queued.wait_for(milliseconds(1000)));
  EXPECT_EQ(queued.state(), JobState::kCancelled);
  EXPECT_EQ(queued.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(queued.progress().run_seq, 0u);  // never started
  blocker.cancel();
  blocker.wait();
}

TEST(Job, CancelMidFlightShardedSimulate) {
  // ISSUE 5: the cancel/progress checkpoint threads through the sharded
  // simulator's per-cycle barrier, so cancelling a multi-SM simulation
  // stops it within one 4096-cycle slice, exactly like the serial path.
  TempDir dir("gpurf_job_cache_simcancel");
  // 10x memory latencies stretch the DWT2D full-scale run to ~150k cycles
  // (dozens of heartbeat slices) so the cancel reliably lands mid-sim.
  sim::GpuConfig slow = sim::GpuConfig::fermi_gtx480();
  slow.lat_l1_hit *= 10;
  slow.lat_l2_hit *= 10;
  slow.lat_dram *= 10;
  Engine engine(EngineOptions()
                    .with_threads(2)
                    .with_sim_shards(2)
                    .with_cache_dir(dir.path)
                    .with_gpu(slow));
  SimRequest req;
  req.mode = wl::SimMode::kOriginal;
  req.sim_shards = 2;
  Job job = engine.submit(JobRequest::simulate("DWT2D", req));

  // Wait for the first simulated-cycle heartbeat (published every 4096
  // cycles from the barrier phase), then cancel.
  JobProgress p;
  do {
    ASSERT_FALSE(job.done())
        << "simulation finished before a heartbeat was observed";
    std::this_thread::sleep_for(milliseconds(1));
    p = job.progress();
  } while (p.sim_cycles == 0);
  EXPECT_EQ(p.stage, common::JobStage::kSimulating);
  job.cancel();
  job.wait();
  EXPECT_EQ(job.state(), JobState::kCancelled);
  EXPECT_EQ(job.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(job.sim_result().ok());
  EXPECT_EQ(engine.inflight(), 0u);

  // A re-run on the same Engine is unaffected by the abandoned run and
  // matches a sharded=1 serial reference bit for bit.
  SimRequest serial_req = req;
  serial_req.sim_shards = 1;
  auto serial = engine.simulate("DWT2D", serial_req);
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();
  Job rerun = engine.submit(JobRequest::simulate("DWT2D", req));
  rerun.wait();
  ASSERT_TRUE(rerun.status().ok()) << rerun.status().to_string();
  auto sharded = rerun.sim_result();
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(serial->stats.cycles, sharded->stats.cycles);
  EXPECT_EQ(serial->stats.thread_insts, sharded->stats.thread_insts);
  EXPECT_EQ(serial->stats.l2.accesses, sharded->stats.l2.accesses);
  EXPECT_EQ(serial->stats.l2.misses, sharded->stats.l2.misses);
  EXPECT_GT(rerun.progress().sim_cycles, 0u);
}

// ----------------------------------------------------------- deadlines

TEST(Job, DeadlineExceededWhileRunning) {
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  Job job = engine.submit(
      JobRequest::pipeline("GICOV").with_deadline_ms(30));
  job.wait();
  EXPECT_EQ(job.state(), JobState::kDeadlineExceeded);
  EXPECT_EQ(job.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(Job, DeadlineAppliesToQueueWait) {
  TempDir dir("gpurf_job_cache_qdeadline");
  Engine engine(EngineOptions()
                    .with_threads(1)
                    .with_cache_dir(dir.path)
                    .with_async_workers(1)
                    .with_max_inflight(1));
  // The blocker consumes the only in-flight slot for seconds; the second
  // submit must give up at its deadline instead of blocking forever
  // (ISSUE 4 satellite: the pre-Job API blocked submitters indefinitely).
  Job blocker = engine.submit(JobRequest::pipeline("GICOV"));
  const auto t0 = std::chrono::steady_clock::now();
  Job rejected = engine.submit(
      JobRequest::pipeline("Hotspot").with_deadline_ms(100));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(rejected.state(), JobState::kDeadlineExceeded);
  EXPECT_EQ(rejected.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(waited, milliseconds(90));
  EXPECT_LT(waited, std::chrono::seconds(30));
  blocker.cancel();
  blocker.wait();
  EXPECT_EQ(engine.inflight(), 0u);
}

// ------------------------------------------------------------ priority

TEST(Job, PriorityOrdersASaturatedQueue) {
  TempDir dir("gpurf_job_cache_prio");
  Engine engine(EngineOptions()
                    .with_threads(1)
                    .with_cache_dir(dir.path)
                    .with_async_workers(1)
                    .with_max_inflight(8));
  // One worker: the blocker runs while low/high sit in the queue, so the
  // dequeue order is decided purely by priority — the high-priority job
  // must start (acquire its run_seq) before the earlier-submitted low one.
  Job blocker = engine.submit(JobRequest::pipeline("DWT2D"));
  while (blocker.progress().run_seq == 0 && !blocker.done())
    std::this_thread::sleep_for(milliseconds(1));
  Job low = engine.submit(JobRequest::pipeline("Hotspot").with_priority(0));
  Job high =
      engine.submit(JobRequest::pipeline("Hybridsort").with_priority(5));
  blocker.wait();
  low.wait();
  high.wait();
  ASSERT_EQ(blocker.state(), JobState::kDone)
      << blocker.status().to_string();
  ASSERT_EQ(low.state(), JobState::kDone) << low.status().to_string();
  ASSERT_EQ(high.state(), JobState::kDone) << high.status().to_string();
  EXPECT_LT(blocker.progress().run_seq, high.progress().run_seq);
  EXPECT_LT(high.progress().run_seq, low.progress().run_seq);
}

// ------------------------------------------------------------- metrics

TEST(Engine, MetricsJsonCountsCacheTrafficAndJobs) {
  TempDir dir("gpurf_job_cache_metrics");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));

  Job job = engine.submit(JobRequest::pipeline("DWT2D"));
  job.wait();
  ASSERT_EQ(job.state(), JobState::kDone);
  ASSERT_TRUE(engine.pipeline("DWT2D").ok());  // memo hit

  const std::string snapshot = engine.metrics_json();
  auto parsed = api::parse_json(snapshot);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string() << "\n" << snapshot;
  ASSERT_TRUE(parsed->is_object());
  const auto counter = [&](const char* name) {
    const api::JsonValue* v = parsed->get(name);
    return v ? v->as_double(-1) : -1.0;
  };
  EXPECT_EQ(counter("pipeline_memo_misses"), 1);
  EXPECT_GE(counter("pipeline_memo_hits"), 1);
  // The workload memoizes its own analysis handle after the first run, so
  // a pipeline-only session records (at least) the build as a miss; hits
  // come from simulate paths re-requesting the shared analysis.
  EXPECT_GE(counter("analysis_cache_misses"), 1);
  EXPECT_EQ(counter("jobs_submitted"), 1);
  EXPECT_EQ(counter("jobs_done"), 1);
  EXPECT_EQ(counter("jobs_failed"), 0);
  EXPECT_EQ(counter("queue_depth"), 0);
  EXPECT_EQ(counter("inflight"), 0);
  EXPECT_GT(counter("job_wall_ms_total"), 0.0);

  // Terminal-state counters: a failed job and a cancelled job.
  Job bad = engine.submit(JobRequest::pipeline("NoSuchKernel"));
  bad.wait();
  auto parsed2 = api::parse_json(engine.metrics_json());
  ASSERT_TRUE(parsed2.ok());
  const api::JsonValue* failed = parsed2->get("jobs_failed");
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->as_int(), 1);
}

// --------------------------------------------- futures shims unchanged

TEST(Engine, FuturesShimsRideOnJobs) {
  TempDir dir("gpurf_job_cache_shim");
  Engine engine(EngineOptions()
                    .with_threads(2)
                    .with_cache_dir(dir.path)
                    .with_async_workers(2)
                    .with_max_inflight(4));
  auto fut = engine.submit_pipeline("DWT2D");
  SimRequest req;
  req.mode = wl::SimMode::kCompressedHigh;
  req.scale = wl::Scale::kSample;
  auto fsim = engine.submit_simulate("DWT2D", req);

  auto pr = fut.get();
  ASSERT_TRUE(pr.ok()) << pr.status().to_string();
  auto sync = engine.pipeline("DWT2D");
  ASSERT_TRUE(sync.ok());
  expect_same_pipeline(**sync, *pr);

  auto sim = fsim.get();
  ASSERT_TRUE(sim.ok()) << sim.status().to_string();
  EXPECT_GT(sim->stats.ipc(), 0.0);
  EXPECT_EQ(engine.inflight(), 0u);
}

}  // namespace
}  // namespace gpurf
