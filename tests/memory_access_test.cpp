// Static memory-access analysis (ISSUE 10): address-bound proofs,
// footprint disjointness verdicts, bounds-check elision, OOB lint
// findings, and the Engine surfaces that consume them.

#include <gtest/gtest.h>

#include <cstring>

#include "analysis/dataflow.hpp"
#include "analysis/memory_access.hpp"
#include "api/engine.hpp"
#include "exec/interp.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "workloads/workload.hpp"

namespace gpurf {
namespace {

namespace analysis = gpurf::analysis;
namespace wl = gpurf::workloads;

/// gid = ctaid.x*32 + tid.x; stores out[gid], loads it back.  Perfectly
/// affine and block-disjoint at 32 threads/block.
constexpr const char* kAffine = R"(.kernel affine
.param s32 out_base
.reg s32 %gid
.reg s32 %a
.reg s32 %t
entry:
  mov.s32 %gid, %ctaid.x
  mad.s32 %gid, %gid, 32, %tid.x
  mad.s32 %a, %gid, 1, $out_base
  st.global.s32 [%a], %gid
  ld.global.s32 %t, [%a]
  st.global.s32 [%a], %t
  ret
)";

analysis::MemoryAccessAnalysis analyze(const ir::Kernel& k,
                                       const ir::LaunchConfig& lc,
                                       const std::vector<uint32_t>& params) {
  analysis::MemoryAccessOptions mo;
  mo.param_values = &params;
  return analysis::analyze_memory_accesses(k, lc, mo);
}

TEST(MemoryAccess, AffineKernelFullyProvenAndDisjoint) {
  ir::Kernel k = ir::parse_kernel(kAffine);
  ir::verify(k);
  const ir::LaunchConfig lc{4, 1, 32, 1};
  const std::vector<uint32_t> params{64};  // out_base = 64
  const auto ma = analyze(k, lc, params);
  EXPECT_EQ(ma.num_global, 3u);
  ASSERT_TRUE(ma.footprints_computed);
  EXPECT_TRUE(ma.stores_disjoint);
  EXPECT_TRUE(ma.loads_local);
  // Block footprints form the affine progression [64+32b, 95+32b].
  ASSERT_TRUE(ma.store_affine.valid);
  EXPECT_EQ(ma.store_affine.lo0, 64);
  EXPECT_EQ(ma.store_affine.hi0, 95);
  EXPECT_EQ(ma.store_affine.stride, 32);

  // 4*32 outputs after base 64: an image of 192 words proves every site;
  // one word short leaves the sites unproven (the last store could land
  // at 191).
  const auto proven =
      analysis::prove_in_bounds(ma, 192, analysis::shared_words(k));
  for (const auto& a : ma.accesses) EXPECT_TRUE(proven[a.flat]);
  const auto short_proven =
      analysis::prove_in_bounds(ma, 191, analysis::shared_words(k));
  uint32_t n = 0;
  for (const auto& a : ma.accesses) n += short_proven[a.flat] ? 1 : 0;
  EXPECT_EQ(n, 0u);
}

TEST(MemoryAccess, OverlappingStoresRefused) {
  // Every block stores the same [out, out+31] range: hulls collide, the
  // prover must refuse both verdicts.
  ir::Kernel k = ir::parse_kernel(R"(.kernel clash
.param s32 out_base
.reg s32 %a
entry:
  mad.s32 %a, %tid.x, 1, $out_base
  st.global.s32 [%a], %a
  ret
)");
  const auto ma = analyze(k, {4, 1, 32, 1}, {16});
  ASSERT_TRUE(ma.footprints_computed);
  EXPECT_FALSE(ma.stores_disjoint);
  // No loads at all: the block-parallel contract (no cross-block *read*)
  // holds vacuously — overlapping stores are legal there, the write-log
  // merge resolves them in grid order.  Only sharding must refuse.
  EXPECT_TRUE(ma.loads_local);
}

TEST(MemoryAccess, CrossBlockReadRefusesLoadsLocal) {
  // Disjoint stores, but each block also loads block 0's slot: the
  // block-parallel contract (no cross-block read) must fail while
  // stores_disjoint holds.
  ir::Kernel k = ir::parse_kernel(R"(.kernel crossread
.param s32 out_base
.reg s32 %gid
.reg s32 %a
.reg s32 %b
.reg s32 %t
entry:
  mov.s32 %gid, %ctaid.x
  mad.s32 %gid, %gid, 32, %tid.x
  mad.s32 %a, %gid, 1, $out_base
  st.global.s32 [%a], %gid
  mad.s32 %b, %tid.x, 0, $out_base
  ld.global.s32 %t, [%b]
  ret
)");
  const auto ma = analyze(k, {4, 1, 32, 1}, {16});
  ASSERT_TRUE(ma.footprints_computed);
  EXPECT_TRUE(ma.stores_disjoint);
  EXPECT_FALSE(ma.loads_local);
}

TEST(MemoryAccess, U32WrapStaysUnproven) {
  // A negative index reinterprets as a huge u32 address: the value
  // interval leaves [0, 2^32-1], so the site must widen and stay
  // unproven no matter the image size.
  ir::Kernel k = ir::parse_kernel(R"(.kernel wrap
.param s32 out_base
.reg s32 %a
entry:
  sub.s32 %a, %tid.x, 64
  st.global.s32 [%a], %a
  ret
)");
  const auto ma = analyze(k, {1, 1, 32, 1}, {0});
  ASSERT_EQ(ma.accesses.size(), 1u);
  EXPECT_FALSE(ma.accesses[0].addr_known);
  const auto proven =
      analysis::prove_in_bounds(ma, uint64_t(1) << 31, 2);
  EXPECT_FALSE(proven[ma.accesses[0].flat]);
}

TEST(MemoryAccess, DefiniteAndPossibleOobFindings) {
  // Site 1 always stores past a 16-word image (definite); site 2's range
  // straddles the boundary (possible).
  ir::Kernel k = ir::parse_kernel(R"(.kernel oob
.param s32 out_base
.reg s32 %a
entry:
  mad.s32 %a, %tid.x, 1, $out_base
  st.global.s32 [%a+100], %a
  st.global.s32 [%a+8], %a
  ret
)");
  const std::vector<uint32_t> params{0};
  const auto ma = analyze(k, {1, 1, 32, 1}, params);
  const auto proven = analysis::prove_in_bounds(ma, 16, 2);
  analysis::KernelReport rep;
  analysis::apply_memory_findings(rep, ma, proven, 16, 2, false);
  EXPECT_TRUE(rep.mem_analyzed);
  EXPECT_EQ(rep.mem_insts, 2u);
  EXPECT_EQ(rep.mem_proven, 0u);
  ASSERT_EQ(rep.oob_errors.size(), 1u);   // +100: [100,131], all >= 16
  ASSERT_EQ(rep.oob_warnings.size(), 1u); // +8: [8,39] straddles 16
  EXPECT_TRUE(rep.oob_errors[0].definite);
  EXPECT_FALSE(rep.oob_warnings[0].definite);
}

TEST(MemoryAccess, UnreachedSitesTriviallyProven) {
  ir::Kernel k = ir::parse_kernel(R"(.kernel unreached
.param s32 out_base
.reg s32 %a
entry:
  mad.s32 %a, %tid.x, 1, $out_base
  st.global.s32 [%a], %a
  ret
orphan:
  st.global.s32 [%a+100000], %a
  ret
)");
  const auto ma = analyze(k, {1, 1, 32, 1}, {0});
  ASSERT_EQ(ma.accesses.size(), 2u);
  const auto proven = analysis::prove_in_bounds(ma, 32, 2);
  EXPECT_TRUE(proven[ma.accesses[0].flat]);
  EXPECT_FALSE(ma.accesses[1].reached);
  EXPECT_TRUE(proven[ma.accesses[1].flat]);  // cannot execute
}

TEST(MemoryAccess, AnalysisIsDeterministic) {
  ir::Kernel k = ir::parse_kernel(kAffine);
  const std::vector<uint32_t> params{64};
  const auto a = analyze(k, {4, 1, 32, 1}, params);
  const auto b = analyze(k, {4, 1, 32, 1}, params);
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (size_t i = 0; i < a.accesses.size(); ++i) {
    EXPECT_EQ(a.accesses[i].addr, b.accesses[i].addr);
    EXPECT_EQ(a.accesses[i].addr_known, b.accesses[i].addr_known);
  }
  EXPECT_EQ(a.stores_disjoint, b.stores_disjoint);
  EXPECT_EQ(a.loads_local, b.loads_local);
  EXPECT_EQ(analysis::prove_in_bounds(a, 192, 2),
            analysis::prove_in_bounds(b, 192, 2));
}

// ------------------------------------------------------ workload proofs

TEST(MemoryAccess, WorkloadProofsGateParallelReplay) {
  // DWT2D is fully proven (no waiver); every bundled workload must end up
  // parallel-eligible one way or the other (proof or documented waiver) —
  // losing eligibility silently serialises replay.
  for (const auto& w : wl::make_all_workloads()) {
    auto inst = w->make_instance(wl::Scale::kSample, 0);
    const auto proofs = w->mem_proofs(inst, /*footprints=*/true);
    EXPECT_TRUE(proofs->parallel_ok) << w->spec().name;
    EXPECT_TRUE(proofs->shard_ok) << w->spec().name;
    if (w->spec().name == "DWT2D") {
      EXPECT_FALSE(w->spec().assume_disjoint);
      EXPECT_TRUE(proofs->mem.stores_disjoint);
      EXPECT_TRUE(proofs->mem.loads_local);
    }
  }
}

TEST(MemoryAccess, BoundsElisionBitIdenticalOnWorkloads) {
  // The elision consumer's end-to-end identity on a proven workload.
  const auto all = wl::make_all_workloads();
  for (const auto& w : all) {
    if (w->spec().name != "DWT2D" && w->spec().name != "GICOV") continue;
    wl::RunOptions off;
    off.block_parallel = false;
    off.elide_bounds_checks = false;
    wl::RunOptions on = off;
    on.elide_bounds_checks = true;
    auto i1 = w->make_instance(wl::Scale::kSample, 0);
    auto i2 = w->make_instance(wl::Scale::kSample, 0);
    const auto a = w->run(i1, nullptr, nullptr, off);
    const auto b = w->run(i2, nullptr, nullptr, on);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
        << w->spec().name;
  }
}

// ------------------------------------------------------- Engine surfaces

TEST(MemoryAccess, EngineAnalyzeReportsMemSection) {
  Engine eng{EngineOptions{}};
  const auto rep = eng.analyze("DWT2D");
  ASSERT_TRUE(rep.ok()) << rep.status().message();
  EXPECT_TRUE(rep->mem_analyzed);
  EXPECT_GT(rep->gmem_words, 0u);
  EXPECT_GT(rep->mem_insts, 0u);
  EXPECT_EQ(rep->mem_proven, rep->mem_insts);  // fully proven workload
  EXPECT_TRUE(rep->oob_errors.empty());
  EXPECT_TRUE(rep->footprints_computed);
  EXPECT_TRUE(rep->stores_disjoint);
  EXPECT_TRUE(rep->loads_local);
  EXPECT_FALSE(rep->disjoint_waived);

  const auto waived = eng.analyze("SSAO");
  ASSERT_TRUE(waived.ok());
  EXPECT_TRUE(waived->disjoint_waived);
  EXPECT_TRUE(waived->loads_local);

  // No bundled workload may carry a definite OOB: the lint gate's
  // invariant, pinned here without the CLI.
  for (const std::string& name : eng.workload_names()) {
    const auto r = eng.analyze(name);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_TRUE(r->oob_errors.empty()) << name;
  }
}

TEST(MemoryAccess, BareKernelAnalyzeSkipsGlobalClassification) {
  // Without an instance there is no image size: global sites must not be
  // classified (no spurious findings), shared-memory analysis still runs.
  Engine eng{EngineOptions{}};
  ir::Kernel k = ir::parse_kernel(kAffine);
  const auto rep = eng.analyze(k);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep->mem_analyzed);
  EXPECT_EQ(rep->gmem_words, 0u);
  EXPECT_TRUE(rep->oob_errors.empty());
  EXPECT_TRUE(rep->oob_warnings.empty());
}

}  // namespace
}  // namespace gpurf
