// Determinism of the parallel tuning/simulation engine (ISSUE 1).
//
// The contract of the speculative-batch tuner and the parallel probe is
// that parallelism is an implementation detail: a multi-threaded pipeline
// run must produce byte-identical precision maps, scores, and slice
// allocations to a forced single-thread (GPURF_THREADS=1-equivalent) run.
// These tests pin that contract in-process by resizing the shared pool and
// varying the tuner batch width.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "common/bitutil.hpp"
#include "common/thread_pool.hpp"
#include "rf/value_extractor.hpp"
#include "rf/value_truncator.hpp"
#include "sim/gpu.hpp"
#include "testing_util.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {
namespace {

void expect_same_pmap(const gpurf::exec::PrecisionMap& a,
                      const gpurf::exec::PrecisionMap& b) {
  ASSERT_EQ(a.per_reg.size(), b.per_reg.size());
  for (size_t r = 0; r < a.per_reg.size(); ++r) {
    EXPECT_EQ(a.per_reg[r].total_bits, b.per_reg[r].total_bits) << "reg " << r;
    EXPECT_TRUE(a.per_reg[r] == b.per_reg[r]) << "reg " << r;
  }
}

void expect_same_alloc(const gpurf::alloc::AllocationResult& a,
                       const gpurf::alloc::AllocationResult& b) {
  EXPECT_EQ(a.num_physical_regs, b.num_physical_regs);
  EXPECT_EQ(a.total_slices, b.total_slices);
  EXPECT_EQ(a.split_operands, b.split_operands);
  ASSERT_EQ(a.table.size(), b.table.size());
  for (size_t r = 0; r < a.table.size(); ++r) {
    const auto& x = a.table[r];
    const auto& y = b.table[r];
    EXPECT_EQ(x.valid, y.valid) << "reg " << r;
    EXPECT_EQ(x.r0.phys_reg, y.r0.phys_reg) << "reg " << r;
    EXPECT_EQ(x.r0.mask, y.r0.mask) << "reg " << r;
    EXPECT_EQ(x.r1.phys_reg, y.r1.phys_reg) << "reg " << r;
    EXPECT_EQ(x.r1.mask, y.r1.mask) << "reg " << r;
    EXPECT_EQ(x.split, y.split) << "reg " << r;
    EXPECT_EQ(x.slices, y.slices) << "reg " << r;
    EXPECT_EQ(x.is_signed, y.is_signed) << "reg " << r;
    EXPECT_EQ(x.is_float, y.is_float) << "reg " << r;
    EXPECT_EQ(x.float_bits, y.float_bits) << "reg " << r;
  }
}

void expect_same_pipeline(const PipelineResult& serial,
                          const PipelineResult& parallel) {
  expect_same_pmap(serial.tune_perfect.pmap, parallel.tune_perfect.pmap);
  expect_same_pmap(serial.tune_high.pmap, parallel.tune_high.pmap);
  EXPECT_EQ(serial.tune_perfect.final_score, parallel.tune_perfect.final_score);
  EXPECT_EQ(serial.tune_high.final_score, parallel.tune_high.final_score);

  EXPECT_EQ(serial.pressure.original, parallel.pressure.original);
  EXPECT_EQ(serial.pressure.narrow_int, parallel.pressure.narrow_int);
  EXPECT_EQ(serial.pressure.narrow_float_perfect,
            parallel.pressure.narrow_float_perfect);
  EXPECT_EQ(serial.pressure.narrow_float_high,
            parallel.pressure.narrow_float_high);
  EXPECT_EQ(serial.pressure.both_perfect, parallel.pressure.both_perfect);
  EXPECT_EQ(serial.pressure.both_high, parallel.pressure.both_high);

  expect_same_alloc(serial.alloc_both_perfect, parallel.alloc_both_perfect);
  expect_same_alloc(serial.alloc_both_high, parallel.alloc_both_high);
}

using gpurf::testing::PoolWidth;

PipelineResult pipeline_with_width(const Workload& w, int threads,
                                   int batch) {
  PoolWidth width(threads);
  PipelineOptions opt;
  opt.use_disk_cache = false;  // force fresh tuning
  opt.tuner_batch = batch;
  return compute_pipeline(w, opt);
}

TEST(ParallelDeterminism, Dwt2dPipelineMatchesSingleThread) {
  const auto w = make_dwt2d();
  const auto serial = pipeline_with_width(*w, 1, 1);
  const auto parallel = pipeline_with_width(*w, 4, 4);
  expect_same_pipeline(serial, parallel);
}

TEST(ParallelDeterminism, GicovPipelineMatchesSingleThread) {
  const auto w = make_gicov();
  const auto serial = pipeline_with_width(*w, 1, 1);
  const auto parallel = pipeline_with_width(*w, 4, 4);
  expect_same_pipeline(serial, parallel);
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreIdentical) {
  const auto w = make_dwt2d();
  const auto a = pipeline_with_width(*w, 4, 4);
  const auto b = pipeline_with_width(*w, 4, 4);
  expect_same_pipeline(a, b);
}

// The adaptive speculative batch (shrink on rejection, grow on full
// acceptance) must be bit-identical for every width sequence: different
// initial K values may only change how many probes are wasted.
TEST(ParallelDeterminism, AdaptiveBatchWidthDoesNotChangeResults) {
  const auto w = make_gicov();
  const auto serial = pipeline_with_width(*w, 1, 1);
  const auto k3 = pipeline_with_width(*w, 4, 3);
  const auto k8 = pipeline_with_width(*w, 4, 8);
  expect_same_pipeline(serial, k3);
  expect_same_pipeline(serial, k8);
}

// ------------------------------------------- block-parallel run_functional

/// One functional replay of a workload instance under the given knobs.
struct RunOut {
  std::vector<float> out;
  uint64_t insts = 0;
};

RunOut replay(const Workload& w, uint32_t variant, const RunOptions& opt) {
  RunOut r;
  RunOptions o = opt;
  o.thread_insts = &r.insts;
  auto inst = w.make_instance(Scale::kSample, variant);
  r.out = w.run(inst, nullptr, nullptr, o);
  return r;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(gpurf::float_bits(a[i]), gpurf::float_bits(b[i])) << "word " << i;
}

TEST(BlockParallelDeterminism, GmemImageAndInstCountMatchSerial) {
  for (const auto& make : {make_dwt2d, make_hotspot, make_deferred}) {
    const auto w = make();
    // Reference: serial blocks on the scalar data path.
    const auto ref =
        replay(*w, 0, RunOptions{/*use_soa=*/false, /*block_parallel=*/false});
    // Block-parallel SoA across a 4-wide pool.
    PoolWidth width(4);
    const auto par =
        replay(*w, 0, RunOptions{/*use_soa=*/true, /*block_parallel=*/true});
    expect_bitwise_equal(ref.out, par.out);
    EXPECT_EQ(ref.insts, par.insts) << w->spec().name;
  }
}

TEST(BlockParallelDeterminism, RepeatedParallelReplaysAreIdentical) {
  const auto w = make_hotspot3d();
  PoolWidth width(4);
  const auto a =
      replay(*w, 1, RunOptions{/*use_soa=*/true, /*block_parallel=*/true});
  const auto b =
      replay(*w, 1, RunOptions{/*use_soa=*/true, /*block_parallel=*/true});
  expect_bitwise_equal(a.out, b.out);
  EXPECT_EQ(a.insts, b.insts);
}

// ------------------------------------------------- multi-SM sharded sim
//
// ISSUE 5 contract: sim::simulate with SimOptions::shards > 1 ticks SM
// index ranges in parallel with a per-cycle barrier, and every SimStats
// field is bit-identical to the serial schedule at every shard count —
// for every bundled workload.  The L2 stream replays in SM-index order at
// the barrier and per-SM stats merge in SM-index order, so nothing about
// the result depends on thread scheduling.

using gpurf::testing::expect_same_sim_stats;

/// One sample-scale timing simulation of `w` with the given shard count.
/// The launch uses the original register pressure (a cheap
/// allocate_slices call — no tuning), so the whole 11-workload sweep
/// stays fast enough for tier-1.
gpurf::sim::SimStats sharded_sim_stats(const Workload& w,
                                       const gpurf::sim::CompressionConfig& cc,
                                       int shards) {
  PipelineResult pr;
  pr.pressure.original =
      gpurf::alloc::allocate_slices(w.kernel(), nullptr, nullptr,
                                    {false, false})
          .num_physical_regs;
  auto inst = w.make_instance(Scale::kSample, 0);
  auto spec = make_launch_spec(w, inst, pr, SimMode::kOriginal);
  gpurf::sim::SimOptions so;
  so.shards = shards;
  return gpurf::sim::simulate(gpurf::sim::GpuConfig::fermi_gtx480(), cc,
                              spec, nullptr, so)
      .stats;
}

TEST(ShardedSimDeterminism, AllWorkloadsBitIdenticalAcrossShardCounts) {
  PoolWidth width(8);
  for (const auto& w : make_all_workloads()) {
    const auto serial =
        sharded_sim_stats(*w, gpurf::sim::CompressionConfig::baseline(), 1);
    for (int shards : {2, 8})
      expect_same_sim_stats(
          serial,
          sharded_sim_stats(*w, gpurf::sim::CompressionConfig::baseline(),
                            shards),
          w->spec().name + " baseline T=" + std::to_string(shards));
  }
}

TEST(ShardedSimDeterminism, CompressedPipelineBitIdenticalAcrossShardCounts) {
  // Compression enables the deeper operand-collector pipeline (writeback
  // delay, indirection stage) without needing a tuned allocation — the
  // cheap way to cover the compressed timing path for every workload.
  PoolWidth width(8);
  for (const auto& w : make_all_workloads()) {
    const auto serial = sharded_sim_stats(
        *w, gpurf::sim::CompressionConfig::paper_default(), 1);
    for (int shards : {2, 8})
      expect_same_sim_stats(
          serial,
          sharded_sim_stats(
              *w, gpurf::sim::CompressionConfig::paper_default(), shards),
          w->spec().name + " compressed T=" + std::to_string(shards));
  }
}

TEST(ShardedSimDeterminism, RepeatedShardedRunsAreIdentical) {
  PoolWidth width(4);
  const auto w = make_gicov();
  const auto a =
      sharded_sim_stats(*w, gpurf::sim::CompressionConfig::baseline(), 4);
  const auto b =
      sharded_sim_stats(*w, gpurf::sim::CompressionConfig::baseline(), 4);
  expect_same_sim_stats(a, b, "GICOV repeat");
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  PoolWidth width(4);
  std::vector<std::atomic<int>> hits(1000);
  gpurf::common::parallel_for(hits.size(),
                              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  PoolWidth width(4);
  std::vector<std::atomic<int>> hits(64);
  gpurf::common::parallel_for(8, [&](size_t i) {
    gpurf::common::parallel_for(8, [&](size_t j) {
      hits[i * 8 + j].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  PoolWidth width(4);
  EXPECT_THROW(
      gpurf::common::parallel_for(
          100,
          [](size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          }),
      std::runtime_error);
}

TEST(ThreadPool, CycleBarrierRunsCompletionExactlyOncePerEpoch) {
  // Four participants, many epochs: the completion function must run
  // exactly once per epoch, with every participant's pre-barrier writes
  // visible, and its own writes visible to every participant afterwards.
  constexpr int kParts = 4;
  constexpr int kEpochs = 200;
  PoolWidth width(kParts);
  gpurf::common::CycleBarrier barrier(kParts);
  std::vector<int> contributions(kParts, 0);
  int completions = 0;
  int total = 0;
  std::atomic<int> mismatches{0};
  gpurf::common::parallel_for(kParts, [&](size_t p) {
    for (int e = 0; e < kEpochs; ++e) {
      contributions[p] = e + 1;  // pre-barrier write, distinct slot
      barrier.arrive_and_wait([&] {
        ++completions;
        total = 0;
        for (int c : contributions) total += c;
      });
      // Post-barrier: the completion's aggregate must reflect all four
      // contributions of this epoch.
      if (total != kParts * (e + 1)) mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(completions, kEpochs);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadPool, SmallerIterationCountThanThreads) {
  PoolWidth width(8);
  std::vector<std::atomic<int>> hits(3);
  gpurf::common::parallel_for(hits.size(),
                              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

// --------------------------------------------- warp-wide RF path equality

TEST(WarpSlicePaths, ExtractMatchesScalarReference) {
  for (uint32_t mask = 1; mask < 256; mask += 7) {
    gpurf::rf::ExtractSpec spec;
    spec.mask = static_cast<uint8_t>(mask);
    spec.first_slice = 1;
    spec.data_slices =
        static_cast<uint8_t>(std::popcount(mask) + spec.first_slice);
    if (spec.data_slices > 8) continue;
    spec.is_signed = (mask % 3) == 0;

    std::array<uint32_t, 32> fetched;
    for (int l = 0; l < 32; ++l)
      fetched[l] = 0x9e3779b9u * static_cast<uint32_t>(l + 1) + mask;

    const auto warp = gpurf::rf::warp_extract_piece(fetched, spec);
    const auto padded = gpurf::rf::warp_finalize(warp, spec);
    const auto whole = gpurf::rf::warp_extract(fetched, spec);
    for (int l = 0; l < 32; ++l) {
      EXPECT_EQ(warp[l], gpurf::rf::tve_extract_piece(fetched[l], spec))
          << "mask " << mask << " lane " << l;
      EXPECT_EQ(padded[l], gpurf::rf::tve_extract(fetched[l], spec))
          << "mask " << mask << " lane " << l;
      EXPECT_EQ(whole[l], padded[l]) << "mask " << mask << " lane " << l;
    }
  }
}

TEST(WarpSlicePaths, TruncateMatchesScalarReference) {
  for (uint32_t m0 = 1; m0 < 256; m0 += 11) {
    gpurf::rf::TruncateSpec spec;
    spec.mask0 = static_cast<uint8_t>(m0);
    spec.mask1 = static_cast<uint8_t>((m0 * 5) & 0x3u);  // small second piece
    spec.data_slices =
        static_cast<uint8_t>(std::popcount(m0) + std::popcount(spec.mask1));
    if (spec.data_slices > 8) continue;
    spec.is_float = false;

    std::array<uint32_t, 32> values;
    for (int l = 0; l < 32; ++l)
      values[l] = 0x85ebca6bu * static_cast<uint32_t>(l + 3) + m0;

    const auto warp = gpurf::rf::warp_truncate(values, spec);
    for (int l = 0; l < 32; ++l) {
      const auto ref = gpurf::rf::tvt_truncate(values[l], spec);
      EXPECT_EQ(warp[l].data0, ref.data0) << "m0 " << m0 << " lane " << l;
      EXPECT_EQ(warp[l].bitmask0, ref.bitmask0) << "m0 " << m0;
      EXPECT_EQ(warp[l].data1, ref.data1) << "m0 " << m0 << " lane " << l;
      EXPECT_EQ(warp[l].bitmask1, ref.bitmask1) << "m0 " << m0;
    }
  }
}

}  // namespace
}  // namespace gpurf::workloads
