// Permanent-fault injection (PR 6): the FaultMap model, the allocator's
// compression-directed redirection + graceful spill, the simulator's
// degradation accounting, and the Engine's fault-campaign orchestration.
//
// The two contracts that matter most:
//   * an all-zero fault map is *inert* — allocation and SimStats are
//     bit-identical to the fault-free path at every shard count;
//   * the same seed reproduces the same map, the same allocation and the
//     same SimStats at every shard count (campaigns are reproducible).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "api/engine.hpp"
#include "api/json.hpp"
#include "rf/compressed_rf.hpp"
#include "rf/fault_map.hpp"
#include "sim/gpu.hpp"
#include "testing_util.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace gpurf {
namespace {

namespace wl = gpurf::workloads;
namespace fs = std::filesystem;
using gpurf::testing::expect_same_sim_stats;
using gpurf::testing::PoolWidth;

/// Fresh scratch directory under the cwd; removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::path(".") / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

// ------------------------------------------------------------- FaultMap

TEST(FaultMap, GenerateIsDeterministicAndSized) {
  const auto a = rf::FaultMap::generate(42, 0.05);
  const auto b = rf::FaultMap::generate(42, 0.05);
  EXPECT_TRUE(a == b);
  // round(0.05 * 2048) sites, all distinct and in canonical order.
  EXPECT_EQ(a.num_faults(), size_t(0.05 * a.total_slice_sites() + 0.5));
  for (size_t i = 1; i < a.faults().size(); ++i) {
    const auto& p = a.faults()[i - 1];
    const auto& q = a.faults()[i];
    EXPECT_TRUE(std::tuple(p.bank, p.row, p.slice) <
                std::tuple(q.bank, q.row, q.slice));
  }
  const auto c = rf::FaultMap::generate(43, 0.05);
  EXPECT_FALSE(a == c) << "different seeds drew identical maps";
  EXPECT_TRUE(rf::FaultMap::generate(42, 0.0).empty());
}

TEST(FaultMap, FaultyMaskMatchesSites) {
  rf::FaultMap fm;
  fm.add_fault(3, 2, 5);  // phys reg = row * banks + bank = 2 * 16 + 3
  fm.add_fault(3, 2, 5);  // idempotent
  fm.add_fault(3, 2, 0);
  EXPECT_EQ(fm.num_faults(), 2u);
  EXPECT_EQ(fm.faulty_mask(2 * 16 + 3), uint8_t((1u << 5) | 1u));
  EXPECT_EQ(fm.faulty_mask(0), 0u);
  EXPECT_EQ(fm.faulty_mask(100000), 0u) << "beyond geometry = fault-free";
  EXPECT_TRUE(fm.is_faulty(3, 2, 5));
  EXPECT_FALSE(fm.is_faulty(3, 2, 1));
}

TEST(FaultMap, JsonRoundTrip) {
  const auto fm = rf::FaultMap::generate(7, 0.1);
  const auto back = rf::FaultMap::from_json(fm.to_json());
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(fm == *back);
  EXPECT_EQ(back->seed(), 7u);

  EXPECT_FALSE(rf::FaultMap::from_json("{}").ok());
  EXPECT_FALSE(rf::FaultMap::from_json("[1,2,3]").ok());
  // Out-of-geometry site must be rejected, not crash later.
  EXPECT_FALSE(rf::FaultMap::from_json(
                   R"({"version":1,"banks":2,"rows":2,"seed":0,)"
                   R"("density":0.1,"faults":[[5,0,0]]})")
                   .ok());
}

// ------------------------------------------- zero-fault map is inert

TEST(FaultAlloc, EmptyMapBitIdenticalForAllWorkloads) {
  const rf::FaultMap empty_map;
  const auto zero_map = rf::FaultMap::generate(99, 0.0);
  for (const auto& w : wl::make_all_workloads()) {
    const auto plain = alloc::allocate_slices(w->kernel(), nullptr, nullptr,
                                              {false, false});
    const auto with_empty = alloc::allocate_slices(
        w->kernel(), nullptr, nullptr, {false, false, &empty_map});
    const auto with_zero = alloc::allocate_slices(
        w->kernel(), nullptr, nullptr, {false, false, &zero_map});
    EXPECT_TRUE(plain == with_empty) << w->spec().name;
    EXPECT_TRUE(plain == with_zero) << w->spec().name;
    EXPECT_EQ(with_empty.registers_redirected, 0u) << w->spec().name;
    EXPECT_EQ(with_empty.registers_spilled, 0u) << w->spec().name;
  }
}

/// Sample-scale compressed-path timing run with an (optionally
/// fault-aware) untuned slice allocation — the cheap way to drive the
/// redirection/spill timing machinery for every workload without the
/// precision tuner.
sim::SimStats fault_sim_stats(const wl::Workload& w, const rf::FaultMap* fm,
                              int shards) {
  const auto alloc = alloc::allocate_slices(w.kernel(), nullptr, nullptr,
                                            {false, false, fm});
  auto inst = w.make_instance(wl::Scale::kSample, 0);
  wl::PipelineResult pr;
  auto spec = wl::make_launch_spec(w, inst, pr, wl::SimMode::kOriginal);
  spec.regs_per_thread = alloc.total_phys_regs();
  spec.allocation = &alloc;
  sim::SimOptions so;
  so.shards = shards;
  return sim::simulate(sim::GpuConfig::fermi_gtx480(),
                       sim::CompressionConfig::paper_default(), spec, nullptr,
                       so)
      .stats;
}

TEST(FaultSim, ZeroFaultBitIdenticalForAllWorkloadsAndShardCounts) {
  PoolWidth width(4);
  const rf::FaultMap empty_map;
  for (const auto& w : wl::make_all_workloads()) {
    const auto ref = fault_sim_stats(*w, nullptr, 1);
    EXPECT_EQ(ref.fault_redirected_fetches, 0u) << w->spec().name;
    EXPECT_EQ(ref.fault_spill_fetches, 0u) << w->spec().name;
    for (int shards : {1, 4})
      expect_same_sim_stats(
          ref, fault_sim_stats(*w, &empty_map, shards),
          w->spec().name + " empty map T=" + std::to_string(shards));
  }
}

TEST(FaultSim, SameSeedSameStatsAtEveryShardCount) {
  PoolWidth width(4);
  for (const char* name : {"DWT2D", "Hotspot"}) {
    std::unique_ptr<wl::Workload> w;
    for (auto& cand : wl::make_all_workloads())
      if (cand->spec().name == name) w = std::move(cand);
    ASSERT_TRUE(w) << name;
    const auto fm = rf::FaultMap::generate(7, 0.05);
    const auto fm_again = rf::FaultMap::generate(7, 0.05);
    const auto ref = fault_sim_stats(*w, &fm, 1);
    for (int shards : {2, 4})
      expect_same_sim_stats(ref, fault_sim_stats(*w, &fm_again, shards),
                            std::string(name) + " T=" +
                                std::to_string(shards));
  }
}

TEST(FaultSim, RedirectionChargesCyclesNeverCorrupts) {
  // Fix one faulty allocation and vary only the redirection penalty: the
  // schedule must be identical except for the charged cycles, which can
  // only grow with the penalty.  (Comparing against the *fault-free*
  // allocation instead would be unsound — redirection changes register
  // pressure and thus occupancy, which legally moves cycles either way.)
  auto w = wl::make_dwt2d();
  const auto fm = rf::FaultMap::generate(11, 0.10);
  const auto alloc = alloc::allocate_slices(w->kernel(), nullptr, nullptr,
                                            {false, false, &fm});
  ASSERT_GT(alloc.registers_redirected + alloc.registers_spilled, 0u);
  const auto run = [&](uint32_t penalty) {
    auto inst = w->make_instance(wl::Scale::kSample, 0);
    wl::PipelineResult pr;
    auto spec = wl::make_launch_spec(*w, inst, pr, wl::SimMode::kOriginal);
    spec.regs_per_thread = alloc.total_phys_regs();
    spec.allocation = &alloc;
    auto cc = sim::CompressionConfig::paper_default();
    cc.fault_redirection_cycles = penalty;
    return sim::simulate(sim::GpuConfig::fermi_gtx480(), cc, spec, nullptr,
                         sim::SimOptions{})
        .stats;
  };
  const auto p0 = run(0);
  const auto p4 = run(4);
  EXPECT_GT(p0.fault_redirected_fetches + p0.fault_spill_fetches, 0u);
  EXPECT_GE(p4.cycles, p0.cycles);
  // Functional results are untouched by the penalty: instruction counts
  // and memory traffic match exactly.
  EXPECT_EQ(p4.thread_insts, p0.thread_insts);
  EXPECT_EQ(p4.warp_insts, p0.warp_insts);
  EXPECT_EQ(p4.l1.accesses, p0.l1.accesses);
  EXPECT_EQ(p4.fault_redirected_fetches, p0.fault_redirected_fetches);
  EXPECT_EQ(p4.fault_spill_fetches, p0.fault_spill_fetches);
}

TEST(FaultSim, SpillPortWidthBoundsContention) {
  // Fully-spilled launch (density 1.0): instructions reading several
  // spilled sources contend for the spill store's read ports.  Widening
  // the port count can only reduce the serialization penalty; functional
  // behaviour and spill traffic are untouched.
  auto w = wl::make_dwt2d();
  const auto fm = rf::FaultMap::generate(1, 1.0);
  const auto alloc = alloc::allocate_slices(w->kernel(), nullptr, nullptr,
                                            {false, false, &fm});
  ASSERT_GT(alloc.registers_spilled, 0u);
  const auto run = [&](uint32_t ports) {
    auto inst = w->make_instance(wl::Scale::kSample, 0);
    wl::PipelineResult pr;
    auto spec = wl::make_launch_spec(*w, inst, pr, wl::SimMode::kOriginal);
    spec.regs_per_thread = alloc.total_phys_regs();
    spec.allocation = &alloc;
    auto cc = sim::CompressionConfig::paper_default();
    cc.spill_ports = ports;
    return sim::simulate(sim::GpuConfig::fermi_gtx480(), cc, spec, nullptr,
                         sim::SimOptions{})
        .stats;
  };
  const auto p1 = run(1);
  const auto p4 = run(4);
  EXPECT_GT(p1.spill_port_conflicts, 0u);
  EXPECT_LT(p4.spill_port_conflicts, p1.spill_port_conflicts);
  EXPECT_LE(p4.cycles, p1.cycles);
  EXPECT_EQ(p4.thread_insts, p1.thread_insts);
  EXPECT_EQ(p4.warp_insts, p1.warp_insts);
  EXPECT_EQ(p4.fault_spill_fetches, p1.fault_spill_fetches);
  // Values < 1 behave as a single port.
  expect_same_sim_stats(p1, run(0), "spill_ports 0 == 1");
}

// --------------------------------------------- allocator fault handling

TEST(FaultAlloc, SaturatedMapSpillsEverythingGracefully) {
  // Density 1.0: every compressed slice is broken — nothing can be
  // placed, everything must degrade to the spill store, nothing aborts.
  auto w = wl::make_dwt2d();
  const auto fm = rf::FaultMap::generate(1, 1.0);
  const auto a = alloc::allocate_slices(w->kernel(), nullptr, nullptr,
                                        {false, false, &fm});
  EXPECT_EQ(a.registers_redirected, 0u);
  EXPECT_GT(a.registers_spilled, 0u);
  EXPECT_EQ(a.spill_regs, a.registers_spilled);
  EXPECT_EQ(a.fault_coverage_pct(), 0.0);
  for (const auto& e : a.table)
    if (e.valid) {
      EXPECT_TRUE(e.spilled);
      EXPECT_EQ(e.r0.mask, 0xffu);
      EXPECT_EQ(e.float_bits, 32u);
    }
  // The fully-spilled launch still simulates (degraded, not dead).
  const auto st = fault_sim_stats(*w, &fm, 1);
  EXPECT_GT(st.fault_spill_fetches, 0u);
  EXPECT_GT(st.cycles, 0u);
}

TEST(FaultAlloc, ModerateMapPrefersRedirectionOverSpill) {
  auto w = wl::make_dwt2d();
  const auto fm = rf::FaultMap::generate(3, 0.05);
  const auto plain = alloc::allocate_slices(w->kernel(), nullptr, nullptr,
                                            {false, false});
  const auto a = alloc::allocate_slices(w->kernel(), nullptr, nullptr,
                                        {false, false, &fm});
  // At 5% faulty slices the freed space absorbs the faults in place.
  EXPECT_GT(a.registers_redirected, 0u);
  EXPECT_GE(a.fault_coverage_pct(), 50.0);
  EXPECT_GE(a.num_physical_regs, plain.num_physical_regs);
  // No operand may sit on a faulty slice.
  for (const auto& e : a.table) {
    if (!e.valid || e.spilled) continue;
    EXPECT_EQ(e.r0.mask & fm.faulty_mask(e.r0.phys_reg), 0u);
    if (e.split) {
      EXPECT_EQ(e.r1.mask & fm.faulty_mask(e.r1.phys_reg), 0u);
    }
  }
}

// --------------------------------------------------- spill-store RF path

TEST(CompressedRfSpill, SpilledOperandRoundTripsFullWidth) {
  std::vector<alloc::IndirectionEntry> table(2);
  // Entry 0: a normal full-width resident of physical register 0.
  table[0] = {true, {0, 0xff}, {}, false, 8, false, false, 32};
  // Entry 1: spilled to slot 0 of the uncompressed store.
  table[1] = {true, {0, 0xff}, {}, false, 8, false, false, 32,
              /*redirected=*/false, /*spilled=*/true};
  rf::CompressedRegisterFile crf(table, 1, 2);

  rf::WarpRegister a{}, b{};
  for (int l = 0; l < 32; ++l) {
    a[l] = 0xAAAA0000u + uint32_t(l);
    b[l] = 0xDEAD0000u + uint32_t(l);  // full 32-bit payload, no narrowing
  }
  crf.write_operand(0, 0, a);
  crf.write_operand(0, 1, b);
  crf.write_operand(1, 1, a);  // per-warp spill copies are independent
  const auto ra = crf.read_operand(0, 0);
  const auto rb = crf.read_operand(0, 1);
  const auto rc = crf.read_operand(1, 1);
  for (int l = 0; l < 32; ++l) {
    EXPECT_EQ(ra[l], a[l]) << "resident lane " << l;
    EXPECT_EQ(rb[l], b[l]) << "spilled lane " << l;
    EXPECT_EQ(rc[l], a[l]) << "warp-1 spilled lane " << l;
  }
  EXPECT_EQ(crf.stats().spill_accesses, 4u);  // 2 writes + 2 reads
}

// -------------------------------------------------- Engine fault path

TEST(EngineFault, ZeroDensityBitIdenticalAndOriginalModeRejected) {
  TempDir dir("gpurf_test_cache_fault0");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  SimRequest req;
  req.mode = wl::SimMode::kCompressedPerfect;
  req.scale = wl::Scale::kSample;
  auto plain = engine.simulate("DWT2D", req);
  ASSERT_TRUE(plain.ok()) << plain.status().to_string();

  req.fault.seed = 5;
  req.fault.density = 0.0;  // zero density = injection disabled
  auto zero = engine.simulate("DWT2D", req);
  ASSERT_TRUE(zero.ok());
  expect_same_sim_stats(plain->stats, zero->stats, "zero-density");
  EXPECT_FALSE(zero->fault.active);

  req.fault.density = 0.05;
  req.mode = wl::SimMode::kOriginal;
  auto bad = engine.simulate("DWT2D", req);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineFault, InjectionReportsDegradationDeterministically) {
  TempDir dir("gpurf_test_cache_fault1");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  SimRequest req;
  req.mode = wl::SimMode::kCompressedPerfect;
  req.scale = wl::Scale::kSample;
  req.fault.seed = 13;
  req.fault.density = 0.05;
  auto a = engine.simulate("DWT2D", req);
  ASSERT_TRUE(a.ok()) << a.status().to_string();
  EXPECT_TRUE(a->fault.active);
  EXPECT_EQ(a->fault.seed, 13u);
  EXPECT_GT(a->fault.faults_total, 0u);
  EXPECT_GE(a->fault.coverage_pct, 0.0);
  EXPECT_LE(a->fault.coverage_pct, 100.0);

  // Same seed, different shard count: identical map, identical stats.
  req.sim_shards = 4;
  auto b = engine.simulate("DWT2D", req);
  ASSERT_TRUE(b.ok());
  expect_same_sim_stats(a->stats, b->stats, "faulty T=4");
  EXPECT_TRUE(a->fault == b->fault);

  // The JSON snapshot carries the report and stays well-formed.
  const std::string js = api::to_json(*a);
  EXPECT_NE(js.find("\"fault\""), std::string::npos);
  EXPECT_NE(js.find("\"coverage_pct\""), std::string::npos);
  EXPECT_TRUE(api::parse_json(js).ok());
}

// ------------------------------------------------------ fault campaigns

TEST(FaultCampaign, SweepCompletesWithProgressAndMonotoneDensities) {
  TempDir dir("gpurf_test_cache_camp");
  Engine engine(EngineOptions()
                    .with_threads(2)
                    .with_cache_dir(dir.path)
                    .with_async_workers(2)
                    .with_max_inflight(4));
  FaultCampaignRequest creq;
  creq.sim.mode = wl::SimMode::kCompressedPerfect;
  creq.sim.scale = wl::Scale::kSample;
  creq.densities = {0.01, 0.05};
  creq.maps_per_density = 2;
  creq.base_seed = 21;
  Job job = engine.submit(JobRequest::fault_campaign("DWT2D", creq));
  EXPECT_EQ(job.kind(), JobKind::kFaultCampaign);
  job.wait();
  ASSERT_EQ(job.state(), JobState::kDone) << job.status().to_string();

  const JobProgress p = job.progress();
  EXPECT_EQ(p.campaign_maps_total, 4);
  EXPECT_EQ(p.campaign_maps_done, 4);

  auto res = job.campaign_result();
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  ASSERT_EQ(res->points.size(), 4u);
  uint32_t prev_faults = 0;
  for (size_t i = 0; i < res->points.size(); ++i) {
    const auto& pt = res->points[i];
    EXPECT_EQ(pt.state, JobState::kDone) << pt.error;
    EXPECT_TRUE(pt.fault.active);
    EXPECT_GT(pt.cycles, 0u);
    if (i >= 2) {  // density-major order: the 0.05 points inject more
      EXPECT_GE(pt.fault.faults_total, prev_faults);
      prev_faults = pt.fault.faults_total;
    }
  }
  // Two maps at one density must differ (distinct derived seeds).
  EXPECT_NE(res->points[0].seed, res->points[1].seed);

  const std::string js = api::to_json(*res);
  EXPECT_NE(js.find("\"points\""), std::string::npos);
  EXPECT_TRUE(api::parse_json(js).ok());

  // A campaign over the baseline RF is rejected, not run.
  FaultCampaignRequest orig = creq;
  orig.sim.mode = wl::SimMode::kOriginal;
  Job bad = engine.submit(JobRequest::fault_campaign("DWT2D", orig));
  bad.wait();
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultCampaign, QualityFloorTruncatesTheSweep) {
  // With re-tuning on, dense maps trade precision for placement, so the
  // perfect-quality delta turns strictly positive; an (absurdly low)
  // quality floor must then stop the sweep at the first density and mark
  // the result truncated.  Whether the higher-density children were still
  // cancellable is a race we deliberately don't pin down — truncation
  // metadata is the contract.
  TempDir dir("gpurf_test_cache_camp_floor");
  Engine engine(EngineOptions()
                    .with_threads(2)
                    .with_cache_dir(dir.path)
                    .with_async_workers(1)
                    .with_max_inflight(2));
  FaultCampaignRequest creq;
  creq.sim.mode = wl::SimMode::kCompressedPerfect;
  creq.sim.scale = wl::Scale::kSample;
  creq.sim.retune_on_faults = true;
  creq.densities = {0.9, 0.95};
  creq.maps_per_density = 2;
  creq.base_seed = 33;
  creq.quality_floor = 1e-12;
  Job job = engine.submit(JobRequest::fault_campaign("SSAO", creq));
  job.wait();
  ASSERT_EQ(job.state(), JobState::kDone) << job.status().to_string();
  auto res = job.campaign_result();
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  ASSERT_EQ(res->points.size(), 4u);
  // The floor forces quality scoring on even though the request didn't.
  ASSERT_EQ(res->points[0].state, JobState::kDone) << res->points[0].error;
  EXPECT_TRUE(res->points[0].fault.quality_scored);
  EXPECT_TRUE(res->truncated);
  EXPECT_EQ(res->truncated_at_density, 0.9);
  const std::string js = api::to_json(*res);
  EXPECT_NE(js.find("\"truncated\":true"), std::string::npos) << js;
  EXPECT_NE(js.find("\"truncated_at_density\""), std::string::npos);
  EXPECT_TRUE(api::parse_json(js).ok());

  // Without a floor the same sweep runs to completion untruncated (some
  // points may individually fail at these extreme densities — that's a
  // per-point outcome, not a truncation).
  creq.quality_floor = 0.0;
  Job all = engine.submit(JobRequest::fault_campaign("SSAO", creq));
  all.wait();
  ASSERT_EQ(all.state(), JobState::kDone) << all.status().to_string();
  auto full = all.campaign_result();
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  EXPECT_EQ(full->points.size(), 4u);
}

TEST(FaultCampaign, CancelLeavesNoPartialCacheState) {
  TempDir dir("gpurf_test_cache_camp_cancel");
  {
    Engine engine(EngineOptions()
                      .with_threads(2)
                      .with_cache_dir(dir.path)
                      .with_async_workers(2)
                      .with_max_inflight(2));
    FaultCampaignRequest creq;
    creq.sim.mode = wl::SimMode::kCompressedPerfect;
    creq.sim.scale = wl::Scale::kSample;
    creq.densities = {0.01, 0.02, 0.05};
    creq.maps_per_density = 4;
    Job job = engine.submit(JobRequest::fault_campaign("DWT2D", creq));
    job.cancel();
    job.wait();
    EXPECT_TRUE(job.state() == JobState::kCancelled ||
                job.state() == JobState::kDone);
    EXPECT_EQ(engine.inflight(), 0u);
  }
  // Whatever the cancel interrupted, the disk cache holds no half-written
  // entries: stores go through a rename from a .tmp that is cleaned up.
  for (const auto& entry : fs::recursive_directory_iterator(dir.path))
    EXPECT_EQ(entry.path().extension(), ".pmap")
        << "unexpected cache residue: " << entry.path();
}

// ------------------------------------------- degraded disk-cache dir

TEST(EngineFault, UnwritableCacheDirDegradesToMemoryOnce) {
  // A regular *file* where the cache directory should be: every store
  // fails, the Engine must latch the cache off and keep serving.
  const std::string bogus = "./gpurf_test_cache_not_a_dir";
  std::remove(bogus.c_str());
  { std::ofstream f(bogus); f << "occupied"; }
  {
    Engine engine(EngineOptions().with_threads(2).with_cache_dir(bogus));
    auto pr = engine.pipeline("DWT2D");
    ASSERT_TRUE(pr.ok()) << pr.status().to_string();
    const std::string m = engine.metrics_json();
    EXPECT_NE(m.find("\"disk_cache_disabled\":true"), std::string::npos) << m;
    EXPECT_EQ(m.find("\"disk_cache_write_failures\":0"), std::string::npos)
        << m;
    // Still serving: a second pipeline (memoized) and a simulation.
    SimRequest req;
    req.mode = wl::SimMode::kCompressedPerfect;
    req.scale = wl::Scale::kSample;
    auto sim = engine.simulate("DWT2D", req);
    EXPECT_TRUE(sim.ok()) << sim.status().to_string();
  }
  std::remove(bogus.c_str());
}

}  // namespace
}  // namespace gpurf
