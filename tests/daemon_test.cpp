// gpurfd wire protocol (ISSUE 4): request parsing, the response envelope
// (ok/error + embedded metrics), and a full round-trip over a real AF_UNIX
// socket — submit, wait, result payload, cancel semantics, shutdown.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <clocale>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/json.hpp"
#include "api/server.hpp"
#include "serve/fleet.hpp"

namespace gpurf {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::path(".") / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

api::ServerOptions unix_opts(std::string path) {
  api::ServerOptions o;
  o.socket_path = std::move(path);
  return o;
}

api::JsonValue parse_ok(const std::string& text) {
  auto v = api::parse_json(text);
  EXPECT_TRUE(v.ok()) << v.status().to_string() << "\n" << text;
  return v.ok() ? *v : api::JsonValue{};
}

// --------------------------------------------------------- JSON parser

TEST(JsonParse, ValuesRoundTrip) {
  auto v = parse_ok(R"({"a":1,"b":-2.5e1,"s":"x\n\"yA","t":true,)"
                    R"("n":null,"arr":[1,"two",{"k":3}]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(v.get("b")->as_double(), -25.0);
  EXPECT_EQ(v.get("s")->as_string(), "x\n\"yA");
  EXPECT_TRUE(v.get("t")->as_bool());
  EXPECT_TRUE(v.get("n")->is_null());
  ASSERT_TRUE(v.get("arr")->is_array());
  ASSERT_EQ(v.get("arr")->items.size(), 3u);
  EXPECT_EQ(v.get("arr")->items[2].get("k")->as_int(), 3);

  EXPECT_FALSE(api::parse_json("{\"a\":}").ok());
  EXPECT_FALSE(api::parse_json("[1,2").ok());
  EXPECT_FALSE(api::parse_json("{} trailing").ok());
  EXPECT_FALSE(api::parse_json("nul").ok());
  EXPECT_TRUE(api::parse_json("  [1, 2, 3]  ").ok());
}

TEST(JsonParse, FractionalAndExponentLiteralsAreLocaleIndependent) {
  // ISSUE 5: parse_json used strtod, which consults LC_NUMERIC — under a
  // comma-decimal locale "1.5" failed to parse and the daemon's wire
  // protocol broke.  std::from_chars is locale-independent; these
  // literals must round-trip regardless of the process locale.
  const struct { const char* text; double want; } cases[] = {
      {"1.5", 1.5},          {"-2.25", -2.25},
      {"0.125", 0.125},      {"1e3", 1000.0},
      {"1.5e3", 1500.0},     {"-4.5E-2", -0.045},
      {"2e+8", 2e8},         {"123456.789", 123456.789},
      {"0.0", 0.0},          {"-0.5e0", -0.5},
  };
  for (const auto& c : cases) {
    auto v = api::parse_json(c.text);
    ASSERT_TRUE(v.ok()) << c.text << ": " << v.status().to_string();
    EXPECT_DOUBLE_EQ(v->as_double(), c.want) << c.text;
  }

  // Writer side of the same bug class: doubles must serialise with a '.'
  // decimal separator (to_chars, C-locale semantics) and re-parse.
  api::JsonWriter w;
  w.begin_object();
  w.field("x", 1.5);
  w.field("y", -0.045);
  w.end_object();
  auto round = parse_ok(w.str());
  EXPECT_DOUBLE_EQ(round.get("x")->as_double(), 1.5);
  EXPECT_DOUBLE_EQ(round.get("y")->as_double(), -0.045);

  // If a comma-decimal locale is installed, pin the independence for
  // real; otherwise the C-locale assertions above still cover the
  // from_chars/to_chars contract.
  const char* saved = std::setlocale(LC_NUMERIC, nullptr);
  std::string saved_name = saved ? saved : "C";
  for (const char* loc : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8"}) {
    if (!std::setlocale(LC_NUMERIC, loc)) continue;
    auto v = api::parse_json("1.5");
    EXPECT_TRUE(v.ok()) << "under locale " << loc;
    if (v.ok()) {
      EXPECT_DOUBLE_EQ(v->as_double(), 1.5);
    }
    api::JsonWriter lw;
    lw.begin_object();
    lw.field("x", 2.5);
    lw.end_object();
    EXPECT_EQ(lw.str(), "{\"x\":2.5}") << "under locale " << loc;
    break;
  }
  std::setlocale(LC_NUMERIC, saved_name.c_str());
}

TEST(JsonParse, EveryEmittedSnapshotParses) {
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  EXPECT_TRUE(api::parse_json(engine.metrics_json()).ok());

  SimRequest req;
  req.scale = workloads::Scale::kSample;
  auto sim = engine.simulate("Hotspot", req);
  ASSERT_TRUE(sim.ok()) << sim.status().to_string();
  EXPECT_TRUE(api::parse_json(api::to_json(*sim)).ok());
  auto pj = engine.pipeline_json("Hotspot");
  ASSERT_TRUE(pj.ok());
  EXPECT_TRUE(api::parse_json(*pj).ok());
}

// ------------------------------------------------ request handling seam

TEST(Daemon, HandlesRequestsWithoutSocket) {
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  api::Server server(engine, api::ServerOptions{});  // never started

  // Envelope shape: ok + metrics on every response, success or error.
  auto pong = parse_ok(server.handle_request_line(R"({"op":"ping"})"));
  EXPECT_TRUE(pong.get("ok")->as_bool());
  ASSERT_NE(pong.get("metrics"), nullptr);
  EXPECT_TRUE(pong.get("metrics")->is_object());

  auto list = parse_ok(server.handle_request_line(R"({"op":"list"})"));
  ASSERT_TRUE(list.get("workloads")->is_array());
  EXPECT_EQ(list.get("workloads")->items.size(), 11u);

  // Error mapping to Status codes.
  auto bad = parse_ok(server.handle_request_line("this is not json"));
  EXPECT_FALSE(bad.get("ok")->as_bool());
  EXPECT_EQ(bad.get("error")->get("code")->as_string(), "INVALID_ARGUMENT");
  ASSERT_NE(bad.get("metrics"), nullptr);

  auto unknown_op =
      parse_ok(server.handle_request_line(R"({"op":"frobnicate"})"));
  EXPECT_EQ(unknown_op.get("error")->get("code")->as_string(),
            "INVALID_ARGUMENT");

  auto unknown_wl = parse_ok(server.handle_request_line(
      R"({"op":"submit","kind":"pipeline","workload":"NoSuchKernel"})"));
  EXPECT_FALSE(unknown_wl.get("ok")->as_bool());
  EXPECT_EQ(unknown_wl.get("error")->get("code")->as_string(), "NOT_FOUND");

  auto no_job = parse_ok(
      server.handle_request_line(R"({"op":"status","job":424242})"));
  EXPECT_EQ(no_job.get("error")->get("code")->as_string(), "NOT_FOUND");

  auto bad_mode = parse_ok(server.handle_request_line(
      R"({"op":"submit","kind":"simulate","workload":"DWT2D",)"
      R"("mode":"ultra"})"));
  EXPECT_EQ(bad_mode.get("error")->get("code")->as_string(),
            "INVALID_ARGUMENT");
}

TEST(Daemon, AnalyzeOpReturnsKernelReport) {
  // {"op":"analyze"} (PR 9): a registered workload or inline asm comes
  // back as an embedded KernelReport object.
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  api::Server server(engine, api::ServerOptions{});  // never started

  auto rep = parse_ok(
      server.handle_request_line(R"({"op":"analyze","workload":"DWT2D"})"));
  ASSERT_TRUE(rep.get("ok")->as_bool());
  const api::JsonValue* r = rep.get("report");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->get("kernel")->as_string(), "dwt2d");
  EXPECT_TRUE(r->get("clean")->as_bool());
  EXPECT_TRUE(r->get("undefined_reads")->items.empty());
  EXPECT_GT(r->get("static_pressure")->as_int(), 0);
  EXPECT_GT(r->get("alloc_pressure")->as_int(), 0);
  EXPECT_GT(r->get("live_interval_pressure")->as_int(), 0);
  EXPECT_FALSE(r->get("intervals")->items.empty());

  // Inline kernel with an undefined read: the analysis itself succeeds
  // and the report carries the finding.
  auto inline_rep = parse_ok(server.handle_request_line(
      R"({"op":"analyze","kernel":".kernel u\n.reg s32 %a\n)"
      R"(.reg s32 %n\nentry:\n  add.s32 %a, %n, 1\n)"
      R"(  st.global.s32 [%a], %a\n  ret\n"})"));
  ASSERT_TRUE(inline_rep.get("ok")->as_bool());
  EXPECT_FALSE(inline_rep.get("report")->get("clean")->as_bool());
  ASSERT_EQ(inline_rep.get("report")->get("undefined_reads")->items.size(),
            1u);

  // Error mapping: no target, unknown workload, unparsable inline asm.
  auto miss = parse_ok(server.handle_request_line(R"({"op":"analyze"})"));
  EXPECT_EQ(miss.get("error")->get("code")->as_string(), "INVALID_ARGUMENT");
  auto nf = parse_ok(server.handle_request_line(
      R"({"op":"analyze","workload":"NoSuchKernel"})"));
  EXPECT_EQ(nf.get("error")->get("code")->as_string(), "NOT_FOUND");
  auto garbled = parse_ok(server.handle_request_line(
      R"({"op":"analyze","kernel":"this is not asm"})"));
  EXPECT_EQ(garbled.get("error")->get("code")->as_string(),
            "INVALID_ARGUMENT");
}

// PR 6 regression: a missing "mode" keeps the per-kind default — original
// for simulate (so injecting faults without naming a mode is rejected,
// proving the default), perfect for fault_campaign (which would otherwise
// be rejected outright) — and the campaign wait attaches the result.
TEST(Daemon, ModeDefaultsPerKindAndCampaignWaitAttachesResult) {
  TempDir dir("gpurf_daemon_campaign_cache");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  api::Server server(engine, api::ServerOptions{});  // never started

  // simulate without "mode" == original: fault injection must bounce.
  auto sim = parse_ok(server.handle_request_line(
      R"({"op":"submit","kind":"simulate","workload":"DWT2D",)"
      R"("scale":"sample","fault_density":0.05,"fault_seed":7})"));
  ASSERT_TRUE(sim.get("ok")->as_bool());
  auto sim_done = parse_ok(server.handle_request_line(
      R"({"op":"wait","job":)" +
      std::to_string(sim.get("job")->as_int()) + R"(,"timeout_ms":600000})"));
  ASSERT_NE(sim_done.get("job_error"), nullptr);
  EXPECT_EQ(sim_done.get("job_error")->get("code")->as_string(),
            "INVALID_ARGUMENT");

  // fault_campaign without "mode" == perfect: runs to completion and the
  // wait response carries the campaign result snapshot.
  auto sub = parse_ok(server.handle_request_line(
      R"({"op":"submit","kind":"fault_campaign","workload":"DWT2D",)"
      R"("scale":"sample","densities":[0.0,0.05],"maps_per_density":1,)"
      R"("base_seed":42})"));
  ASSERT_TRUE(sub.get("ok")->as_bool()) << "campaign submit rejected";
  auto done = parse_ok(server.handle_request_line(
      R"({"op":"wait","job":)" +
      std::to_string(sub.get("job")->as_int()) + R"(,"timeout_ms":600000})"));
  ASSERT_TRUE(done.get("ok")->as_bool());
  EXPECT_EQ(done.get("state")->as_string(), "done");
  EXPECT_EQ(done.get("status_code")->as_string(), "OK");
  ASSERT_NE(done.get("result"), nullptr) << "wait lost the campaign result";
  const api::JsonValue* pts = done.get("result")->get("points");
  ASSERT_NE(pts, nullptr);
  ASSERT_TRUE(pts->is_array());
  EXPECT_EQ(pts->items.size(), 2u);
}

// ------------------------------------------------- socket round-trip

TEST(Daemon, SocketRoundTripSubmitWaitResultShutdown) {
  TempDir dir("gpurf_daemon_cache");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  const std::string sock = "./gpurfd_test.sock";
  api::Server server(engine, unix_opts(sock));
  ASSERT_TRUE(server.start().ok());
  ASSERT_TRUE(server.running());

  api::Client client(sock);
  ASSERT_TRUE(client.status().ok()) << client.status().to_string();

  auto pong = client.call_json(R"({"op":"ping"})");
  ASSERT_TRUE(pong.ok()) << pong.status().to_string();
  EXPECT_TRUE(pong->get("ok")->as_bool());

  // Submit a sample-scale simulate job (tunes the pipeline on the way)
  // and wait for it over the wire.
  auto sub = client.call_json(
      R"({"op":"submit","kind":"simulate","workload":"DWT2D",)"
      R"("mode":"high","scale":"sample","priority":3})");
  ASSERT_TRUE(sub.ok()) << sub.status().to_string();
  ASSERT_TRUE(sub->get("ok")->as_bool());
  ASSERT_NE(sub->get("job"), nullptr);
  const int64_t id = sub->get("job")->as_int();
  EXPECT_GT(id, 0);
  EXPECT_EQ(sub->get("priority")->as_int(), 3);

  auto done = client.call_json(R"({"op":"wait","job":)" +
                               std::to_string(id) +
                               R"(,"timeout_ms":600000})");
  ASSERT_TRUE(done.ok()) << done.status().to_string();
  ASSERT_TRUE(done->get("ok")->as_bool());
  EXPECT_EQ(done->get("state")->as_string(), "done");
  EXPECT_EQ(done->get("status_code")->as_string(), "OK");
  const api::JsonValue* result = done->get("result");
  ASSERT_NE(result, nullptr);
  ASSERT_NE(result->get("stats"), nullptr);
  EXPECT_GT(result->get("stats")->get("ipc")->as_double(), 0.0);
  const api::JsonValue* progress = done->get("progress");
  ASSERT_NE(progress, nullptr);
  EXPECT_GT(progress->get("wall_ms")->as_double(), 0.0);

  // A second status query still finds the job; cancel on a terminal job
  // is a no-op that reports the final state.
  auto cancelled = client.call_json(R"({"op":"cancel","job":)" +
                                    std::to_string(id) + "}");
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled->get("state")->as_string(), "done");

  // Metrics envelope: non-zero counters after the round trip.
  auto metrics = client.call_json(R"({"op":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  const api::JsonValue* m = metrics->get("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_GE(m->get("jobs_done")->as_int(), 1);
  EXPECT_GE(m->get("jobs_submitted")->as_int(), 1);
  EXPECT_GE(m->get("pipeline_memo_misses")->as_int(), 1);
  EXPECT_GT(m->get("job_wall_ms_total")->as_double(), 0.0);

  // Cooperative shutdown over the wire.
  auto bye = client.call_json(R"({"op":"shutdown"})");
  ASSERT_TRUE(bye.ok());
  EXPECT_TRUE(bye->get("shutting_down")->as_bool());
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(fs::exists(sock));
}

// ----------------------------------------------------- shutdown stress
//
// ISSUE 5: connection handlers used to run on *detached* threads tracked
// only by a counter, so Server destruction could free state the last few
// instructions of a handler still touched.  Handlers are joinable now and
// stop() joins them all; this test hammers the shutdown path with
// concurrent clients — under TSan/ASan the old race is a hard failure,
// and even without sanitizers the mid-traffic stop()+destruction would
// crash intermittently.

TEST(Daemon, ShutdownUnderConcurrentClients) {
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  for (int round = 0; round < 3; ++round) {
    const std::string sock =
        "./gpurfd_stress_" + std::to_string(round) + ".sock";
    std::atomic<bool> go{false};
    std::atomic<int> responses{0};
    {
      api::Server server(engine, unix_opts(sock));
      ASSERT_TRUE(server.start().ok());

      std::vector<std::thread> clients;
      for (int c = 0; c < 8; ++c) {
        clients.emplace_back([&, c] {
          api::Client client(sock);
          if (!client.status().ok()) return;
          while (!go.load(std::memory_order_acquire)) {}
          for (int i = 0; i < 50; ++i) {
            // Mix cheap round trips with job waits on nonexistent ids so
            // some handlers sit inside the sliced-wait path when stop()
            // lands; any response (or a clean connection error once the
            // server is gone) is acceptable.
            const std::string req =
                (c + i) % 4 == 0
                    ? R"({"op":"wait","job":999999,"timeout_ms":50})"
                    : R"({"op":"ping"})";
            auto resp = client.call(req);
            if (!resp.ok()) return;  // server went down mid-call
            responses.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      go.store(true, std::memory_order_release);
      // Let the traffic overlap the stop: some requests complete, some
      // race the shutdown.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      server.stop();
      // The Server object is destroyed at this scope's end while client
      // threads may still be draining their last call() — the joinable
      // registry guarantees no handler outlives stop().
      for (auto& t : clients) t.join();
    }
    EXPECT_GT(responses.load(), 0) << "round " << round;
  }
}

// ------------------------------------- client timeouts + bounded retry
//
// PR 6 satellite: transient transport failures (nothing listening yet, a
// wedged daemon) surface as kUnavailable — the retryable code — instead
// of a generic Internal, and no call can hang forever.

TEST(ClientRetry, NoDaemonSurfacesUnavailableAfterBoundedRetries) {
  api::ClientOptions copts;
  copts.retries = 2;
  copts.backoff_initial_ms = 5;
  copts.backoff_max_ms = 10;
  copts.connect_timeout_ms = 200;
  const auto t0 = std::chrono::steady_clock::now();
  api::Client client("./gpurfd_nobody_home.sock", copts);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(client.status().ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable)
      << client.status().to_string();
  // Bounded: 3 attempts with <= 10ms backoff each, not an endless loop.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 2.0);
  // A call on a never-connected client reports the connect failure.
  auto resp = client.call(R"({"op":"ping"})");
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
}

TEST(ClientRetry, RetriesUntilLateStartingServerAppears) {
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  const std::string sock = "./gpurfd_late.sock";
  api::Server server(engine, unix_opts(sock));
  // Start the server *after* the client begins connecting: the client's
  // retry loop must absorb the ECONNREFUSED/ENOENT window.
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(server.start().ok());
  });
  api::ClientOptions copts;
  copts.retries = 20;
  copts.backoff_initial_ms = 10;
  copts.backoff_max_ms = 50;
  api::Client client(sock, copts);
  starter.join();
  ASSERT_TRUE(client.status().ok()) << client.status().to_string();
  auto pong = client.call_json(R"({"op":"ping"})");
  ASSERT_TRUE(pong.ok()) << pong.status().to_string();
  EXPECT_TRUE(pong->get("ok")->as_bool());
  server.stop();
}

TEST(ClientRetry, SilentServerReadTimesOutAsUnavailable) {
  // A listener that accepts connections into its backlog but never
  // responds: connect succeeds, the response read must hit SO_RCVTIMEO.
  const std::string sock = "./gpurfd_silent.sock";
  ::unlink(sock.c_str());
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sock.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 4), 0);

  api::ClientOptions copts;
  copts.read_timeout_ms = 100;
  copts.retries = 0;
  api::Client client(sock, copts);
  ASSERT_TRUE(client.status().ok()) << client.status().to_string();
  auto resp = client.call(R"({"op":"ping"})");
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable)
      << resp.status().to_string();
  ::close(lfd);
  ::unlink(sock.c_str());
}

// ------------------------------------------------------ graceful drain
//
// PR 6 satellite: gpurfd's shutdown sequence is server.stop() followed by
// Engine::drain(budget) — still-queued jobs are cancelled outright,
// running jobs get the budget, stragglers are cancelled cooperatively.

TEST(Daemon, DrainCancelsQueuedJobsAndStaysUsable) {
  TempDir dir("gpurf_daemon_drain");
  Engine engine(EngineOptions()
                    .with_threads(2)
                    .with_cache_dir(dir.path)
                    .with_async_workers(1)   // one executor: rest stay queued
                    .with_max_inflight(8));
  // One long tuning job hogs the single executor; the rest sit queued.
  std::vector<Job> jobs;
  jobs.push_back(engine.submit(JobRequest::pipeline("DWT2D")));
  jobs.push_back(engine.submit(JobRequest::pipeline("Hotspot")));
  jobs.push_back(engine.submit(JobRequest::pipeline("Hybridsort")));

  const Status st = engine.drain(150);
  if (!st.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.to_string();
  }
  for (auto& j : jobs) {
    EXPECT_TRUE(job_state_terminal(j.state()))
        << job_state_name(j.state());
  }
  // At least the queued jobs were shed as cancelled; the running one
  // either finished inside the budget (OK) or was cancelled at it (the
  // drain then reports DeadlineExceeded).
  int cancelled = 0;
  for (auto& j : jobs)
    if (j.state() == JobState::kCancelled) ++cancelled;
  EXPECT_GE(cancelled, 2);

  // Drain is not shutdown: the Engine keeps serving afterwards.
  auto names = engine.workload_names();
  EXPECT_EQ(names.size(), 11u);
  SimRequest again_req;
  again_req.mode = workloads::SimMode::kOriginal;
  again_req.scale = workloads::Scale::kSample;
  Job again = engine.submit(JobRequest::simulate("Hotspot", again_req));
  again.wait();
  EXPECT_EQ(again.state(), JobState::kDone) << again.status().to_string();
}

// ------------------------------------------- socket path validation pin
//
// ISSUE 8 satellite: an AF_UNIX path that does not fit sun_path must be
// InvalidArgument on both ends — binding a silently-truncated path puts
// the socket somewhere no client ever looks.

TEST(Daemon, OverlongSocketPathIsInvalidArgumentOnBothEnds) {
  const std::string too_long = "./" + std::string(200, 'p') + ".sock";
  ASSERT_GE(too_long.size(), sizeof(sockaddr_un{}.sun_path));

  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  api::Server server(engine, unix_opts(too_long));
  const Status st = server.start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.to_string();
  EXPECT_FALSE(server.running());

  api::ClientOptions copts;
  copts.retries = 0;  // fail fast — nothing will ever listen there
  api::Client client(too_long, copts);
  ASSERT_FALSE(client.status().ok());
  EXPECT_EQ(client.status().code(), StatusCode::kInvalidArgument)
      << client.status().to_string();

  // A server with NO listener at all is rejected too.
  api::Server none(engine, api::ServerOptions{});
  const Status st2 = none.start();
  ASSERT_FALSE(st2.ok());
  EXPECT_EQ(st2.code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------- TCP shutdown stress
//
// ISSUE 8 satellite: the ShutdownUnderConcurrentClients scenario, over
// TCP against a sharded fleet, with the new ops (watch, cancel) in the
// mix.  Run under TSan this is the tripwire for races between the quota
// table, the watch push path and the joinable-thread shutdown sequence.

TEST(Daemon, TcpShutdownStressWithSubmitCancelWatch) {
  serve::EngineFleet fleet(
      EngineOptions().with_threads(1).with_disk_cache(false), 2);
  for (int round = 0; round < 3; ++round) {
    std::atomic<bool> go{false};
    std::atomic<int> responses{0};
    {
      api::ServerOptions sopts;
      sopts.listen_port = 0;
      api::Server server(fleet, sopts);
      ASSERT_TRUE(server.start().ok());
      const int port = server.tcp_port();
      ASSERT_GT(port, 0);

      std::vector<std::thread> clients;
      for (int c = 0; c < 8; ++c) {
        clients.emplace_back([&, c] {
          api::Client client("127.0.0.1", port);
          if (!client.status().ok()) return;
          while (!go.load(std::memory_order_acquire)) {}
          uint64_t last_id = 1;
          for (int i = 0; i < 24; ++i) {
            // Rotate submit / cancel / watch / wait / ping so handlers
            // sit in every code path when stop() lands mid-round.
            const int pick = (c + i) % 6;
            if (pick == 0) {
              auto sub = client.call_json(
                  R"({"op":"submit","kind":"simulate","workload":"SSAO",)"
                  R"("scale":"sample"})");
              if (!sub.ok()) return;
              if (sub->get("job")) last_id = sub->get("job")->as_int();
            } else if (pick == 1) {
              if (!client.call(R"({"op":"cancel","job":)" +
                               std::to_string(last_id) + "}")
                       .ok())
                return;
            } else if (pick == 2) {
              if (!client.watch(last_id, 40).ok()) return;
            } else if (pick == 3) {
              if (!client.call(R"({"op":"wait","job":)" +
                               std::to_string(last_id) +
                               R"(,"timeout_ms":40})")
                       .ok())
                return;
            } else {
              if (!client.call(R"({"op":"ping"})").ok()) return;
            }
            responses.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      go.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      server.stop();
      for (auto& t : clients) t.join();
    }
    EXPECT_GT(responses.load(), 0) << "round " << round;
    // The fleet survives each server generation; drain between rounds so
    // cancelled stragglers do not pile up.
    fleet.drain_all(5000);
  }
}

}  // namespace
}  // namespace gpurf
