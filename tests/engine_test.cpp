// gpurf::Engine (ISSUE 3): session isolation, Status-based error paths,
// versioned disk cache, async submission, JSON snapshots.
//
// The acceptance contract: two concurrently-live Engines with different
// EngineOptions (thread counts, cache dirs, tuner widths) produce results
// bit-identical to the legacy global-path computation, and every error
// path (unknown workload, malformed kernel, corrupt cache entry) comes
// back as a non-OK Status without terminating the process.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "api/engine.hpp"
#include "api/json.hpp"
#include "testing_util.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace gpurf {
namespace {

namespace wl = gpurf::workloads;
namespace fs = std::filesystem;

/// Fresh scratch directory under the cwd; removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::path(".") / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

void expect_same_pipeline(const wl::PipelineResult& a,
                          const wl::PipelineResult& b) {
  ASSERT_EQ(a.tune_perfect.pmap.per_reg.size(),
            b.tune_perfect.pmap.per_reg.size());
  for (size_t r = 0; r < a.tune_perfect.pmap.per_reg.size(); ++r) {
    EXPECT_TRUE(a.tune_perfect.pmap.per_reg[r] ==
                b.tune_perfect.pmap.per_reg[r])
        << "perfect reg " << r;
    EXPECT_TRUE(a.tune_high.pmap.per_reg[r] == b.tune_high.pmap.per_reg[r])
        << "high reg " << r;
  }
  EXPECT_EQ(a.tune_perfect.final_score, b.tune_perfect.final_score);
  EXPECT_EQ(a.tune_high.final_score, b.tune_high.final_score);
  EXPECT_EQ(a.pressure.original, b.pressure.original);
  EXPECT_EQ(a.pressure.narrow_int, b.pressure.narrow_int);
  EXPECT_EQ(a.pressure.both_perfect, b.pressure.both_perfect);
  EXPECT_EQ(a.pressure.both_high, b.pressure.both_high);
  EXPECT_EQ(a.alloc_both_perfect.num_physical_regs,
            b.alloc_both_perfect.num_physical_regs);
  EXPECT_EQ(a.alloc_both_perfect.total_slices,
            b.alloc_both_perfect.total_slices);
  EXPECT_EQ(a.alloc_both_high.num_physical_regs,
            b.alloc_both_high.num_physical_regs);
  EXPECT_EQ(a.alloc_both_high.split_operands,
            b.alloc_both_high.split_operands);
}

// ------------------------------------------------------------- StatusOr

TEST(Status, StatusOrHoldsValueOrError) {
  StatusOr<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  StatusOr<int> bad = Status::NotFound("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(bad.value(), gpurf::Error);

  StatusOr<int> copy = bad;
  EXPECT_EQ(copy.status().code(), StatusCode::kNotFound);
  copy = ok;
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(*copy, 42);
}

// ---------------------------------------------------------- workload API

TEST(Engine, WorkloadRegistry) {
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  const auto names = engine.workload_names();
  EXPECT_EQ(names.size(), 11u);  // the Table-4 set
  EXPECT_TRUE(engine.workload(names.front()).ok());

  auto missing = engine.workload("NoSuchKernel");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(Engine, OptionsAreResolvedAtConstruction) {
  Engine engine(EngineOptions().with_threads(3).with_cache_dir("xyz"));
  EXPECT_EQ(engine.options().threads, 3);
  EXPECT_EQ(engine.options().cache_dir, "xyz");
  EXPECT_EQ(engine.options().tuner.speculate_batch, 3);  // defaulted

  // Unset fields resolve to process defaults (env read once, not empty).
  Engine dflt;
  EXPECT_GE(dflt.options().threads, 1);
  EXPECT_FALSE(dflt.options().cache_dir.empty());
}

// --------------------------------------------------- isolation (tentpole)

TEST(Engine, ConcurrentEnginesMatchLegacyGlobalPath) {
  const auto w = wl::make_dwt2d();

  // Legacy global path, forced serial: the bit-exactness reference.
  wl::PipelineResult ref;
  {
    gpurf::testing::PoolWidth width(1);
    wl::PipelineOptions opt;
    opt.use_disk_cache = false;
    opt.tuner_batch = 1;
    ref = wl::compute_pipeline(*w, opt);
  }

  // Two concurrently-live Engines with different thread counts, tuner
  // widths and cache directories, each computing the pipeline fresh.
  TempDir dir_a("gpurf_test_cache_a"), dir_b("gpurf_test_cache_b");
  Engine a(EngineOptions().with_threads(1).with_cache_dir(dir_a.path));
  Engine b(EngineOptions()
               .with_threads(4)
               .with_cache_dir(dir_b.path)
               .with_tuner([] {
                 tuning::TunerOptions t;
                 t.speculate_batch = 4;
                 return t;
               }()));

  StatusOr<wl::PipelineResult> ra = Status::Internal("unset");
  StatusOr<wl::PipelineResult> rb = Status::Internal("unset");
  std::thread ta([&] { ra = a.compute_pipeline(*w); });
  std::thread tb([&] { rb = b.compute_pipeline(*w); });
  ta.join();
  tb.join();

  ASSERT_TRUE(ra.ok()) << ra.status().to_string();
  ASSERT_TRUE(rb.ok()) << rb.status().to_string();
  expect_same_pipeline(ref, *ra);
  expect_same_pipeline(ref, *rb);
}

TEST(Engine, MemoizedPipelineIsStablePerEngine) {
  TempDir dir("gpurf_test_cache_memo");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  auto p1 = engine.pipeline("DWT2D");
  auto p2 = engine.pipeline("DWT2D");
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);  // same memo entry, not a recomputation
}

// ------------------------------------------------- versioned disk cache

TEST(Engine, DiskCacheRoundTripAndCorruptionIsStatus) {
  const auto w = wl::make_dwt2d();
  TempDir dir("gpurf_test_cache_disk");

  {
    Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
    ASSERT_TRUE(engine.pipeline(*w).ok());
  }
  const std::string path = wl::pmap_cache_path(*w, dir.path);
  ASSERT_TRUE(fs::exists(path));

  // Round trip.
  tuning::TuneResult perfect, high;
  EXPECT_TRUE(wl::load_pmap_cache(*w, dir.path, perfect, high).ok());
  EXPECT_EQ(perfect.pmap.per_reg.size(), w->kernel().num_regs());

  // Corrupt entry -> kDataLoss, not a crash, and not silently loaded.
  { std::ofstream(path) << "gpurf-pmap 2 1 12345 999999\n1 2\n"; }
  auto st = wl::load_pmap_cache(*w, dir.path, perfect, high);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);

  // Unversioned (pre-ISSUE-3) entry -> kDataLoss.
  { std::ofstream(path) << "32 32\n32 32\n"; }
  st = wl::load_pmap_cache(*w, dir.path, perfect, high);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);

  // Rows outside the Table-3 width set -> kDataLoss.
  {
    std::ofstream out(path);
    out << "gpurf-pmap 2 " << fp::kFormatTableVersion << " "
        << wl::kernel_cache_fingerprint(*w) << " " << w->kernel().num_regs()
        << "\n";
    for (uint32_t r = 0; r < w->kernel().num_regs(); ++r) out << "31 33\n";
  }
  st = wl::load_pmap_cache(*w, dir.path, perfect, high);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);

  // A fresh Engine on the corrupted dir re-tunes and repairs the entry.
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));
  ASSERT_TRUE(engine.pipeline(*w).ok());
  EXPECT_TRUE(wl::load_pmap_cache(*w, dir.path, perfect, high).ok());
}

// ------------------------------------------------------------ error paths

TEST(Engine, ErrorPathsReturnStatusWithoutTerminating) {
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));

  auto pr = engine.pipeline("NoSuchKernel");
  ASSERT_FALSE(pr.ok());
  EXPECT_EQ(pr.status().code(), StatusCode::kNotFound);

  auto sim = engine.simulate("NoSuchKernel", wl::SimMode::kOriginal);
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(sim.status().code(), StatusCode::kNotFound);

  auto parsed = engine.parse_kernel("this is not a kernel");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);

  // A kernel that assembles but is ill-typed (s32 source in a float add)
  // fails verification with FailedPrecondition instead of throwing.
  auto k = engine.parse_kernel(R"(
.kernel illtyped
.reg s32 %i
.reg f32 %f
entry:
  add.f32 %f, %i, %i
  ret
)");
  ASSERT_TRUE(k.ok()) << k.status().to_string();
  auto st = engine.verify_kernel(*k);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(Engine, VerifyRejectsUndefinedReadsUnlessWaived) {
  // PR 9: verify_kernel folds the liveness pass in — a register read on
  // some path before any definition is a FailedPrecondition naming the
  // register, with an explicit opt-out for intentionally partial kernels.
  Engine engine(EngineOptions().with_threads(1).with_disk_cache(false));
  auto k = engine.parse_kernel(R"(
.kernel undef
.reg s32 %a
.reg s32 %never
entry:
  add.s32 %a, %never, 1
  st.global.s32 [%a], %a
  ret
)");
  ASSERT_TRUE(k.ok()) << k.status().to_string();
  const auto st = engine.verify_kernel(*k);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("never"), std::string::npos) << st.to_string();
  EXPECT_TRUE(engine.verify_kernel(*k, /*allow_undefined_reads=*/true).ok());

  // A clean kernel still verifies, and Engine::analyze agrees on both.
  auto clean = engine.parse_kernel(
      ".kernel ok\n.reg s32 %a\nentry:\n  mov.s32 %a, %tid.x\n"
      "  st.global.s32 [%a], %a\n  ret\n");
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(engine.verify_kernel(*clean).ok());
  auto rep = engine.analyze(*clean);
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  EXPECT_TRUE(rep->clean());
  EXPECT_GT(rep->alloc_pressure, 0u);
  auto bad_rep = engine.analyze(*k);
  ASSERT_TRUE(bad_rep.ok()) << bad_rep.status().to_string();
  ASSERT_EQ(bad_rep->undefined_reads.size(), 1u);
  EXPECT_EQ(bad_rep->reg_names[bad_rep->undefined_reads[0]], "never");

  // The JSON snapshot of a report is well-formed.
  EXPECT_TRUE(api::parse_json(api::to_json(*bad_rep)).ok());
}

// -------------------------------------------------------------- async API

TEST(Engine, AsyncSubmissionsMatchSyncResults) {
  TempDir dir("gpurf_test_cache_async");
  Engine engine(EngineOptions()
                    .with_threads(2)
                    .with_cache_dir(dir.path)
                    .with_async_workers(2)
                    .with_max_inflight(4));

  auto fut_pr = engine.submit_pipeline("DWT2D");
  SimRequest req;
  req.mode = wl::SimMode::kCompressedHigh;
  req.scale = wl::Scale::kSample;
  auto fut_sim = engine.submit_simulate("DWT2D", req);
  auto fut_bad = engine.submit_pipeline("NoSuchKernel");

  auto async_pr = fut_pr.get();
  ASSERT_TRUE(async_pr.ok()) << async_pr.status().to_string();
  auto sync_pr = engine.pipeline("DWT2D");
  ASSERT_TRUE(sync_pr.ok());
  expect_same_pipeline(**sync_pr, *async_pr);

  auto async_sim = fut_sim.get();
  ASSERT_TRUE(async_sim.ok()) << async_sim.status().to_string();
  EXPECT_GT(async_sim->stats.ipc(), 0.0);

  auto bad = fut_bad.get();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);

  EXPECT_EQ(engine.inflight(), 0u);
}

// ---------------------------------------------------------- JSON snapshots

TEST(Engine, JsonSnapshots) {
  TempDir dir("gpurf_test_cache_json");
  Engine engine(EngineOptions().with_threads(2).with_cache_dir(dir.path));

  auto js = engine.pipeline_json("DWT2D");
  ASSERT_TRUE(js.ok()) << js.status().to_string();
  EXPECT_NE(js->find("\"pressure\""), std::string::npos);
  EXPECT_NE(js->find("\"tune_perfect\""), std::string::npos);
  EXPECT_NE(js->find("\"per_reg_bits\""), std::string::npos);
  EXPECT_EQ(js->front(), '{');
  EXPECT_EQ(js->back(), '}');

  SimRequest req;
  req.mode = wl::SimMode::kCompressedHigh;
  req.scale = wl::Scale::kSample;
  auto sim = engine.simulate("DWT2D", req);
  ASSERT_TRUE(sim.ok());
  const std::string sj = api::to_json(*sim);
  EXPECT_NE(sj.find("\"occupancy\""), std::string::npos);
  EXPECT_NE(sj.find("\"ipc\""), std::string::npos);
  EXPECT_NE(sj.find("\"stalls\""), std::string::npos);
}

}  // namespace
}  // namespace gpurf
