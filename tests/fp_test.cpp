// Tests for the Table-3 reduced-precision float formats: encoding layout,
// round-to-nearest-even, special values, denormal flush, and parameterized
// properties across all seven formats.

#include <gtest/gtest.h>

#include <cmath>

#include "common/bitutil.hpp"
#include "common/rng.hpp"
#include "fp/format.hpp"

namespace gpurf::fp {
namespace {

TEST(Format, Table3Definitions) {
  const auto& f = table3_formats();
  ASSERT_EQ(f.size(), 7u);
  const int totals[] = {32, 28, 24, 20, 16, 12, 8};
  const int exps[] = {8, 7, 6, 5, 5, 4, 3};
  const int mans[] = {23, 20, 17, 14, 10, 7, 4};
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(f[i].total_bits, totals[i]);
    EXPECT_EQ(f[i].exp_bits, exps[i]);
    EXPECT_EQ(f[i].man_bits, mans[i]);
    // sign + exponent + mantissa == total (Table 3: "All configurations
    // also include a sign bit").
    EXPECT_EQ(1 + f[i].exp_bits + f[i].man_bits, f[i].total_bits);
    EXPECT_EQ(f[i].slices(), f[i].total_bits / 4);
  }
}

TEST(Format, LookupByBits) {
  EXPECT_EQ(format_for_bits(16).man_bits, 10);
  EXPECT_THROW(format_for_bits(17), gpurf::Error);
}

TEST(Format, Fp32IsIdentity) {
  const auto f32 = format_for_bits(32);
  const float vals[] = {0.f, -0.f, 1.f, 3.14159f, -1e30f, 1e-40f};
  for (float v : vals) {
    EXPECT_EQ(encode(v, f32), float_bits(v));
    EXPECT_EQ(float_bits(quantize(v, f32)), float_bits(v));
  }
}

TEST(Format, HalfPrecisionKnownValues) {
  const auto h = format_for_bits(16);  // IEEE binary16
  EXPECT_EQ(encode(1.0f, h), 0x3c00u);
  EXPECT_EQ(encode(-2.0f, h), 0xc000u);
  EXPECT_EQ(encode(0.5f, h), 0x3800u);
  EXPECT_EQ(encode(65504.0f, h), 0x7bffu);  // max half
  EXPECT_EQ(decode(0x3c00u, h), 1.0f);
  EXPECT_EQ(decode(0x7c00u, h), std::numeric_limits<float>::infinity());
}

TEST(Format, RoundToNearestEven) {
  const auto h = format_for_bits(16);
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half value;
  // RNE rounds to the even mantissa (1.0).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(quantize(halfway, h), 1.0f);
  // Slightly above halfway rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -16);
  EXPECT_EQ(quantize(above, h), 1.0f + std::ldexp(1.0f, -10));
}

TEST(Format, OverflowSaturatesToInfinity) {
  const auto h = format_for_bits(16);
  EXPECT_TRUE(std::isinf(quantize(1e6f, h)));
  EXPECT_TRUE(std::isinf(quantize(-1e6f, h)));
  EXPECT_LT(quantize(-1e6f, h), 0.f);
  const auto f8 = format_for_bits(8);
  // 8-bit: 3 exponent bits, bias 3, max normal = 2^4 * 1.9375 = 15.5.
  EXPECT_EQ(quantize(15.5f, f8), 15.5f);
  EXPECT_TRUE(std::isinf(quantize(32.f, f8)));
}

TEST(Format, DenormalsFlushToZero) {
  const auto h = format_for_bits(16);
  // Smallest half normal is 2^-14; below that flushes to (signed) zero.
  EXPECT_EQ(quantize(std::ldexp(1.0f, -14), h), std::ldexp(1.0f, -14));
  EXPECT_EQ(quantize(std::ldexp(1.0f, -15), h), 0.0f);
  EXPECT_EQ(float_bits(quantize(-std::ldexp(1.0f, -15), h)),
            float_bits(-0.0f));
  // binary32 denormal inputs also flush.
  EXPECT_EQ(quantize(std::ldexp(1.0f, -140), format_for_bits(24)), 0.0f);
}

TEST(Format, NanPropagates) {
  for (const auto& f : table3_formats()) {
    const float q = quantize(std::nanf(""), f);
    EXPECT_TRUE(std::isnan(q)) << f.total_bits;
  }
}

TEST(Format, InfinityPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  for (const auto& f : table3_formats()) {
    EXPECT_EQ(quantize(inf, f), inf) << f.total_bits;
    EXPECT_EQ(quantize(-inf, f), -inf) << f.total_bits;
  }
}

TEST(Format, QuantizedFractionsExact) {
  // k/256 for k in [0,255] has at most 8 significand bits: exact from
  // 12-bit (7+1 significand... only k with <= 8 significand bits) upward.
  const auto f16 = format_for_bits(16);
  for (int k = 0; k < 256; ++k) {
    const float v = float(k) / 256.0f;
    EXPECT_TRUE(exactly_representable(v, f16)) << k;
  }
  // 0.3 is not exactly representable anywhere below binary32.
  for (const auto& f : table3_formats()) {
    if (f.is_fp32()) continue;
    EXPECT_FALSE(exactly_representable(0.3f, f)) << f.total_bits;
  }
}

// ---------------------------------------------------------------- properties

class FormatProperty : public ::testing::TestWithParam<int> {};

TEST_P(FormatProperty, EncodeFitsWidth) {
  const auto fmt = format_for_bits(GetParam());
  gpurf::Pcg32 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const float v = rng.next_float(-1000.f, 1000.f);
    const uint32_t bits = encode(v, fmt);
    EXPECT_EQ(bits & ~low_mask(fmt.total_bits), 0u)
        << "encoded value spills beyond " << fmt.total_bits << " bits";
  }
}

TEST_P(FormatProperty, QuantizeIsIdempotent) {
  const auto fmt = format_for_bits(GetParam());
  gpurf::Pcg32 rng(GetParam() * 7);
  for (int i = 0; i < 2000; ++i) {
    const float v = rng.next_float(-100.f, 100.f);
    const float q1 = quantize(v, fmt);
    const float q2 = quantize(q1, fmt);
    EXPECT_EQ(float_bits(q1), float_bits(q2));
  }
}

TEST_P(FormatProperty, QuantizeIsMonotone) {
  const auto fmt = format_for_bits(GetParam());
  gpurf::Pcg32 rng(GetParam() * 13);
  for (int i = 0; i < 2000; ++i) {
    float a = rng.next_float(-50.f, 50.f);
    float b = rng.next_float(-50.f, 50.f);
    if (a > b) std::swap(a, b);
    const float qa = quantize(a, fmt);
    const float qb = quantize(b, fmt);
    EXPECT_LE(qa, qb) << a << " vs " << b;
  }
}

TEST_P(FormatProperty, RelativeErrorBounded) {
  const auto fmt = format_for_bits(GetParam());
  gpurf::Pcg32 rng(GetParam() * 31);
  // Values inside the format's normal range: relative error <= 2^-(m+1).
  const double max_rel = std::ldexp(1.0, -(fmt.man_bits + 1));
  for (int i = 0; i < 2000; ++i) {
    const float v = rng.next_float(0.26f, 8.f);  // inside all normal ranges
    const float q = quantize(v, fmt);
    EXPECT_LE(std::abs(double(q) - v) / v, max_rel * 1.0000001) << v;
  }
}

TEST_P(FormatProperty, SignSymmetry) {
  const auto fmt = format_for_bits(GetParam());
  gpurf::Pcg32 rng(GetParam() * 17);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.next_float(0.f, 100.f);
    EXPECT_EQ(float_bits(quantize(-v, fmt)),
              float_bits(-quantize(v, fmt)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, FormatProperty,
                         ::testing::Values(32, 28, 24, 20, 16, 12, 8),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "bits" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace gpurf::fp
