// gpurf-lint — static kernel verifier over the instruction-granular
// dataflow pass (PR 9) and the static memory-access pass (ISSUE 10).  For
// every registered workload (or an assembly file passed on the command
// line) it reports what the analyses prove about the kernel *before* any
// simulation: undefined register reads, statically dead writes, registers
// that are written but never read, the three register-pressure figures
// (static liveness bound, baseline slice-allocator pressure, live-interval
// allocator pressure), in-bounds proof coverage, definite / possible
// out-of-bounds accesses and the parallel-execution disjointness verdicts.
//
// Usage:
//   gpurf-lint [--json] [--fail-on=CLASS[,CLASS]...]
//              [--workload NAME]... [--file PATH]...
//
// With no --workload/--file arguments, lints all eleven Table-4
// workloads.  `--fail-on` selects which finding classes flip the exit
// status to 1:
//   undefined-reads  a register is read on some path before any
//                    definition (the default, matching PR 9 behaviour);
//   oob              a memory access is *definitely* out of bounds — its
//                    whole static address interval misses the buffer
//                    (possible-OOB warnings never fail);
//   overlap          a workload's parallel-execution memory contract is
//                    neither statically proven nor waived (applies only
//                    to targets with instance context, i.e. workloads);
//   dead-writes      a write's destination is statically dead.
// CI runs `--fail-on=undefined-reads,oob,overlap` as a hard gate over the
// workload suite.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "api/engine.hpp"
#include "api/json.hpp"

namespace analysis = gpurf::analysis;
namespace api = gpurf::api;

namespace {

struct FailOn {
  bool undefined_reads = false;
  bool oob = false;
  bool overlap = false;
  bool dead_writes = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--fail-on=CLASS[,CLASS]...] "
               "[--workload NAME]... [--file PATH]...\n"
               "classes: undefined-reads oob overlap dead-writes\n"
               "(no targets: lint all registered workloads)\n",
               argv0);
  return 2;
}

bool parse_fail_on(const std::string& spec, FailOn* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string c = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (c == "undefined-reads") {
      out->undefined_reads = true;
    } else if (c == "oob") {
      out->oob = true;
    } else if (c == "overlap") {
      out->overlap = true;
    } else if (c == "dead-writes") {
      out->dead_writes = true;
    } else {
      std::fprintf(stderr, "gpurf-lint: unknown --fail-on class '%s'\n",
                   c.c_str());
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

/// The overlap gate only applies where disjointness was actually in
/// question: targets with instance context (workloads).  Bare --file
/// kernels carry no launch or memory image to prove anything against.
bool overlap_unresolved(const analysis::KernelReport& r) {
  return r.mem_analyzed && r.gmem_words > 0 && !r.disjoint_waived &&
         !(r.stores_disjoint && r.loads_local);
}

void print_report(const analysis::KernelReport& r) {
  std::printf("%-12s %4u insts  %2u regs  pressure %2u static / %2u alloc / "
              "%2u interval  %zu dead write%s  %zu never-read  %zu undefined\n",
              r.kernel.c_str(), r.num_insts, r.num_regs, r.static_pressure,
              r.alloc_pressure, r.live_interval_pressure, r.dead_writes.size(),
              r.dead_writes.size() == 1 ? "" : "s", r.never_read.size(),
              r.undefined_reads.size());
  auto name = [&](uint32_t reg) {
    return reg < r.reg_names.size() ? r.reg_names[reg]
                                    : "r" + std::to_string(reg);
  };
  for (uint32_t reg : r.undefined_reads)
    std::printf("  error: undefined read of %%%s\n", name(reg).c_str());
  for (const auto& dw : r.dead_writes)
    std::printf("  note: dead write to %%%s at block %u inst %u\n",
                name(dw.reg).c_str(), dw.blk, dw.inst);
  for (uint32_t reg : r.never_read)
    std::printf("  note: %%%s is written but never read\n", name(reg).c_str());
  if (!r.mem_analyzed) return;
  std::printf("  mem: %u/%u site%s proven in bounds", r.mem_proven,
              r.mem_insts, r.mem_insts == 1 ? "" : "s");
  if (r.gmem_words > 0) {
    if (r.footprints_computed)
      std::printf("; stores %s, loads %s%s",
                  r.stores_disjoint ? "disjoint" : "may overlap",
                  r.loads_local ? "local" : "may cross blocks",
                  r.disjoint_waived ? " (waived)" : "");
    else
      std::printf("; footprints not computed%s",
                  r.disjoint_waived ? " (waived)" : "");
    if (!r.store_affine.empty())
      std::printf("; store footprint %s", r.store_affine.c_str());
    if (!r.load_affine.empty())
      std::printf("; load footprint %s", r.load_affine.c_str());
  }
  std::printf("\n");
  const auto print_oob = [&](const analysis::OobFinding& f, const char* sev) {
    std::printf("  %s: %s %s %s bounds at block %u inst %u", sev,
                f.definite ? "definite" : "possible",
                f.shared ? "shared" : "global",
                f.is_store ? "store outside" : "load outside", f.blk, f.inst);
    if (f.addr_known)
      std::printf(" (words [%lld, %lld])", static_cast<long long>(f.lo),
                  static_cast<long long>(f.hi));
    else
      std::printf(" (address statically unknown)");
    std::printf("\n");
  };
  for (const auto& f : r.oob_errors) print_oob(f, "error");
  for (const auto& f : r.oob_warnings) print_oob(f, "warning");
  if (overlap_unresolved(r))
    std::printf("  warning: parallel-execution memory contract unproven "
                "and not waived (stores_disjoint=%d loads_local=%d)\n",
                r.stores_disjoint ? 1 : 0, r.loads_local ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  FailOn fail_on;
  bool fail_on_set = false;
  std::vector<std::string> workloads;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json = true;
    } else if (a.rfind("--fail-on=", 0) == 0) {
      fail_on_set = true;
      if (!parse_fail_on(a.substr(10), &fail_on)) return usage(argv[0]);
    } else if (a == "--fail-on" && i + 1 < argc) {
      fail_on_set = true;
      if (!parse_fail_on(argv[++i], &fail_on)) return usage(argv[0]);
    } else if (a == "--workload" && i + 1 < argc) {
      workloads.emplace_back(argv[++i]);
    } else if (a == "--file" && i + 1 < argc) {
      files.emplace_back(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (!fail_on_set) fail_on.undefined_reads = true;  // historical default

  // The lint pass never tunes or simulates; skip the disk cache so the
  // tool leaves no state behind and runs from a cold container.
  gpurf::Engine engine(gpurf::EngineOptions().with_disk_cache(false));
  if (workloads.empty() && files.empty())
    workloads = engine.workload_names();

  std::vector<analysis::KernelReport> reports;
  for (const auto& name : workloads) {
    auto rep = engine.analyze(name);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   rep.status().to_string().c_str());
      return 2;
    }
    reports.push_back(std::move(rep).value());
  }
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto k = engine.parse_kernel(text.str());
    if (!k.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   k.status().to_string().c_str());
      return 2;
    }
    auto rep = engine.analyze(*k);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   rep.status().to_string().c_str());
      return 2;
    }
    reports.push_back(std::move(rep).value());
  }

  if (json) {
    std::string out = "[";
    for (size_t i = 0; i < reports.size(); ++i) {
      if (i) out += ",";
      out += api::to_json(reports[i]);
    }
    out += "]\n";
    std::fputs(out.c_str(), stdout);
  }
  bool undef = false, oob = false, overlap = false, dead = false;
  for (const auto& r : reports) {
    if (!json) print_report(r);
    undef |= !r.undefined_reads.empty();
    oob |= !r.oob_errors.empty();
    overlap |= overlap_unresolved(r);
    dead |= !r.dead_writes.empty();
  }
  bool failed = false;
  const auto gate = [&](bool on, bool found, const char* what) {
    if (!on || !found) return;
    failed = true;
    std::fprintf(stderr, "gpurf-lint: %s found\n", what);
  };
  gate(fail_on.undefined_reads, undef, "undefined register reads");
  gate(fail_on.oob, oob, "definitely out-of-bounds accesses");
  gate(fail_on.overlap, overlap,
       "unproven, unwaived parallel-execution memory contracts");
  gate(fail_on.dead_writes, dead, "statically dead writes");
  return failed ? 1 : 0;
}
