// gpurf-lint — static kernel verifier over the instruction-granular
// dataflow pass (PR 9).  For every registered workload (or an assembly
// file passed on the command line) it reports what the analysis proves
// about the kernel *before* any simulation: undefined register reads,
// statically dead writes, registers that are written but never read, and
// the three register-pressure figures (static liveness bound, baseline
// slice-allocator pressure, live-interval allocator pressure).
//
// Usage:
//   gpurf-lint [--json] [--workload NAME]... [--file PATH]...
//
// With no --workload/--file arguments, lints all eleven Table-4
// workloads.  Exit status is 0 only when every linted kernel is free of
// undefined reads — CI runs this as a hard gate over the workload suite.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "api/engine.hpp"
#include "api/json.hpp"

namespace analysis = gpurf::analysis;
namespace api = gpurf::api;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--workload NAME]... [--file PATH]...\n"
               "(no targets: lint all registered workloads)\n",
               argv0);
  return 2;
}

void print_report(const analysis::KernelReport& r) {
  std::printf("%-12s %4u insts  %2u regs  pressure %2u static / %2u alloc / "
              "%2u interval  %zu dead write%s  %zu never-read  %zu undefined\n",
              r.kernel.c_str(), r.num_insts, r.num_regs, r.static_pressure,
              r.alloc_pressure, r.live_interval_pressure, r.dead_writes.size(),
              r.dead_writes.size() == 1 ? "" : "s", r.never_read.size(),
              r.undefined_reads.size());
  auto name = [&](uint32_t reg) {
    return reg < r.reg_names.size() ? r.reg_names[reg]
                                    : "r" + std::to_string(reg);
  };
  for (uint32_t reg : r.undefined_reads)
    std::printf("  error: undefined read of %%%s\n", name(reg).c_str());
  for (const auto& dw : r.dead_writes)
    std::printf("  note: dead write to %%%s at block %u inst %u\n",
                name(dw.reg).c_str(), dw.blk, dw.inst);
  for (uint32_t reg : r.never_read)
    std::printf("  note: %%%s is written but never read\n", name(reg).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> workloads;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json = true;
    } else if (a == "--workload" && i + 1 < argc) {
      workloads.emplace_back(argv[++i]);
    } else if (a == "--file" && i + 1 < argc) {
      files.emplace_back(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  // The lint pass never tunes or simulates; skip the disk cache so the
  // tool leaves no state behind and runs from a cold container.
  gpurf::Engine engine(gpurf::EngineOptions().with_disk_cache(false));
  if (workloads.empty() && files.empty())
    workloads = engine.workload_names();

  std::vector<analysis::KernelReport> reports;
  bool failed = false;
  for (const auto& name : workloads) {
    auto rep = engine.analyze(name);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   rep.status().to_string().c_str());
      return 2;
    }
    reports.push_back(std::move(rep).value());
  }
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto k = engine.parse_kernel(text.str());
    if (!k.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   k.status().to_string().c_str());
      return 2;
    }
    auto rep = engine.analyze(*k);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   rep.status().to_string().c_str());
      return 2;
    }
    reports.push_back(std::move(rep).value());
  }

  if (json) {
    std::string out = "[";
    for (size_t i = 0; i < reports.size(); ++i) {
      if (i) out += ",";
      out += api::to_json(reports[i]);
    }
    out += "]\n";
    std::fputs(out.c_str(), stdout);
  }
  for (const auto& r : reports) {
    if (!json) print_report(r);
    if (!r.undefined_reads.empty()) failed = true;
  }
  if (failed)
    std::fprintf(stderr, "gpurf-lint: undefined register reads found\n");
  return failed ? 1 : 0;
}
