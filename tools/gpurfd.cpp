// gpurfd — long-lived daemon serving a gpurf Engine fleet over a local
// AF_UNIX socket and/or TCP (ISSUE 4; fleet-scale serving since ISSUE 8).
// Clients speak newline-delimited JSON (see api/server.hpp for the wire
// protocol): expensive tuning pipelines and timing simulations become
// first-class jobs with deadlines, priorities, cancellation, progress and
// watch subscriptions, and every response carries the fleet's metrics
// snapshot.
//
// Usage:
//   gpurfd [--socket PATH] [--listen HOST:PORT] [--engines N]
//          [--threads N] [--cache-dir DIR] [--async-workers N]
//          [--max-inflight N] [--no-disk-cache] [--drain-ms N]
//          [--auth-token TOK]... [--token-max-inflight N]
//          [--token-rate R] [--token-burst B]
//          [--max-request-bytes N] [--idle-timeout-ms N]
//
// At least one of --socket / --listen is required.  --engines N shards
// the daemon into N Engines routed by kernel fingerprint (ISSUE 8).
// --auth-token may repeat; once any token is set, every request must
// carry a matching "token" field.
//
// Runs until a client sends {"op":"shutdown"} or the process receives
// SIGINT/SIGTERM.  Shutdown is graceful (PR 6 satellite): the listeners
// close first (no new requests), then still-queued jobs are cancelled
// and running jobs get up to --drain-ms (default 5000) to finish before
// being cancelled cooperatively; only then does the process exit.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "api/engine.hpp"
#include "api/server.hpp"
#include "serve/fleet.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] [--listen HOST:PORT] [--engines N]\n"
      "          [--threads N] [--cache-dir DIR] [--async-workers N]\n"
      "          [--max-inflight N] [--no-disk-cache] [--drain-ms N]\n"
      "          [--auth-token TOK]... [--token-max-inflight N]\n"
      "          [--token-rate R] [--token-burst B]\n"
      "          [--max-request-bytes N] [--idle-timeout-ms N]\n"
      "(at least one of --socket / --listen)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  gpurf::api::ServerOptions sopts;
  gpurf::EngineOptions opts;
  int engines = 1;
  long drain_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0;
    };
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg("--socket")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sopts.socket_path = v;
    } else if (arg("--listen")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      // HOST:PORT, with a bare ":PORT" (or "PORT") binding the default
      // loopback host.
      const std::string hp = v;
      const size_t colon = hp.rfind(':');
      std::string port_str;
      if (colon == std::string::npos) {
        port_str = hp;
      } else {
        if (colon > 0) sopts.listen_host = hp.substr(0, colon);
        port_str = hp.substr(colon + 1);
      }
      char* end = nullptr;
      const long port = std::strtol(port_str.c_str(), &end, 10);
      if (port_str.empty() || *end != '\0' || port < 0 || port > 65535) {
        std::fprintf(stderr, "gpurfd: bad --listen '%s' (HOST:PORT)\n", v);
        return 2;
      }
      sopts.listen_port = static_cast<int>(port);
    } else if (arg("--engines")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      engines = std::atoi(v);
      if (engines < 1) engines = 1;
    } else if (arg("--threads")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.threads = std::atoi(v);
    } else if (arg("--cache-dir")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.cache_dir = v;
    } else if (arg("--async-workers")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.async_workers = std::atoi(v);
    } else if (arg("--max-inflight")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.max_inflight = static_cast<size_t>(std::atoll(v));
    } else if (arg("--no-disk-cache")) {
      opts.use_disk_cache = false;
    } else if (arg("--drain-ms")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      drain_ms = std::atol(v);
    } else if (arg("--auth-token")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sopts.auth_tokens.push_back(v);
    } else if (arg("--token-max-inflight")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sopts.token_max_inflight = static_cast<size_t>(std::atoll(v));
    } else if (arg("--token-rate")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sopts.token_rate = std::atof(v);
    } else if (arg("--token-burst")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sopts.token_burst = std::atof(v);
    } else if (arg("--max-request-bytes")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sopts.max_request_bytes = static_cast<size_t>(std::atoll(v));
    } else if (arg("--idle-timeout-ms")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      sopts.idle_timeout_ms = std::atoi(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (sopts.socket_path.empty() && sopts.listen_port < 0)
    return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  gpurf::serve::EngineFleet fleet(opts, engines);
  gpurf::api::Server server(fleet, sopts);
  const gpurf::Status st = server.start();
  if (!st.ok()) {
    std::fprintf(stderr, "gpurfd: %s\n", st.to_string().c_str());
    return 1;
  }
  const gpurf::EngineOptions& eo = fleet.shard(0).options();
  if (!sopts.socket_path.empty())
    std::printf("gpurfd listening on %s", sopts.socket_path.c_str());
  if (server.tcp_port() >= 0)
    std::printf("%s%s:%d", sopts.socket_path.empty() ? "gpurfd listening on "
                                                     : " and ",
                sopts.listen_host.c_str(), server.tcp_port());
  std::printf(" (engines=%d, threads=%d, async_workers=%d, max_inflight=%zu"
              "%s)\n",
              fleet.num_shards(), eo.threads, eo.async_workers,
              eo.max_inflight,
              sopts.auth_tokens.empty() ? "" : ", auth on");
  std::fflush(stdout);

  // Wait for a client shutdown request or a signal.
  while (server.running() && !server.shutdown_requested() && !g_signal)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Stop accepting first, then drain every shard: queued jobs are
  // cancelled outright, running jobs share the --drain-ms budget,
  // stragglers are cancelled cooperatively.  The Engine destructors then
  // have nothing left to wait on.
  std::printf("gpurfd: shutting down (drain budget %ld ms)\n", drain_ms);
  std::fflush(stdout);
  server.stop();
  const gpurf::Status drained = fleet.drain_all(drain_ms);
  if (!drained.ok())
    std::fprintf(stderr, "gpurfd: drain: %s\n", drained.to_string().c_str());
  return 0;
}
