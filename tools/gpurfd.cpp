// gpurfd — long-lived daemon serving one gpurf::Engine over a local socket
// (ISSUE 4).  Clients speak newline-delimited JSON (see api/server.hpp for
// the wire protocol): expensive tuning pipelines and timing simulations
// become first-class jobs with deadlines, priorities, cancellation and
// progress, and every response carries the Engine's metrics snapshot.
//
// Usage:
//   gpurfd --socket PATH [--threads N] [--cache-dir DIR]
//          [--async-workers N] [--max-inflight N] [--no-disk-cache]
//          [--drain-ms N]
//
// Runs until a client sends {"op":"shutdown"} or the process receives
// SIGINT/SIGTERM.  Shutdown is graceful (PR 6 satellite): the listener
// closes first (no new requests), then still-queued jobs are cancelled
// and running jobs get up to --drain-ms (default 5000) to finish before
// being cancelled cooperatively; only then does the process exit.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "api/engine.hpp"
#include "api/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--threads N] [--cache-dir DIR]\n"
               "          [--async-workers N] [--max-inflight N] "
               "[--no-disk-cache] [--drain-ms N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  long drain_ms = 5000;
  gpurf::EngineOptions opts;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0;
    };
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg("--socket")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      socket_path = v;
    } else if (arg("--threads")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.threads = std::atoi(v);
    } else if (arg("--cache-dir")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.cache_dir = v;
    } else if (arg("--async-workers")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.async_workers = std::atoi(v);
    } else if (arg("--max-inflight")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opts.max_inflight = static_cast<size_t>(std::atoll(v));
    } else if (arg("--no-disk-cache")) {
      opts.use_disk_cache = false;
    } else if (arg("--drain-ms")) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      drain_ms = std::atol(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  gpurf::Engine engine(opts);
  gpurf::api::Server server(engine, gpurf::api::ServerOptions{socket_path});
  const gpurf::Status st = server.start();
  if (!st.ok()) {
    std::fprintf(stderr, "gpurfd: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("gpurfd listening on %s (threads=%d, async_workers=%d, "
              "max_inflight=%zu)\n",
              socket_path.c_str(), engine.options().threads,
              engine.options().async_workers, engine.options().max_inflight);
  std::fflush(stdout);

  // Wait for a client shutdown request or a signal.
  while (server.running() && !server.shutdown_requested() && !g_signal)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Stop accepting first, then drain: queued jobs are cancelled outright,
  // running jobs get the --drain-ms budget, stragglers are cancelled
  // cooperatively.  The Engine destructor then has nothing left to wait on.
  std::printf("gpurfd: shutting down (drain budget %ld ms)\n", drain_ms);
  std::fflush(stdout);
  server.stop();
  const gpurf::Status drained = engine.drain(drain_ms);
  if (!drained.ok())
    std::fprintf(stderr, "gpurfd: drain: %s\n", drained.to_string().c_str());
  return 0;
}
