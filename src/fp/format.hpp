#pragma once
// Reduced-precision floating-point formats (paper Table 3).
//
// Every format mimics IEEE 754: one sign bit, `exp_bits` biased exponent
// bits, `man_bits` mantissa bits, +/-infinity and NaN encodings.  During
// conversion, rounding is round-to-nearest-even and denormals are flushed to
// zero (§3.2.5: "denormals are truncated to zero, which is safe as the same
// simplification is made in the precision selection step").
//
//   total bits:  32  28  24  20  16  12   8
//   exponent:     8   7   6   5   5   4   3
//   mantissa:    23  20  17  14  10   7   4
//
// The 32-bit format is IEEE binary32 itself and converts losslessly; the
// 16-bit format is IEEE binary16.  The others keep roughly the single-
// precision exponent/mantissa ratio (§5.2).

#include <array>
#include <cstdint>

namespace gpurf::fp {

struct FloatFormat {
  int total_bits = 32;
  int exp_bits = 8;
  int man_bits = 23;

  constexpr int bias() const { return (1 << (exp_bits - 1)) - 1; }
  constexpr int max_exp_field() const { return (1 << exp_bits) - 1; }
  constexpr int slices() const { return total_bits / 4; }
  constexpr bool is_fp32() const { return total_bits == 32; }

  bool operator==(const FloatFormat& o) const {
    return total_bits == o.total_bits && exp_bits == o.exp_bits &&
           man_bits == o.man_bits;
  }
};

/// Version of the Table-3 format set.  Bump whenever the formats above (or
/// their quantization semantics) change: on-disk precision-map caches embed
/// this so entries tuned against an older table are rejected as stale
/// instead of silently reinterpreted.
inline constexpr int kFormatTableVersion = 1;

/// The seven Table-3 formats ordered from widest (32) to narrowest (8).
const std::array<FloatFormat, 7>& table3_formats();

/// Look up the Table-3 format with the given total width; throws on widths
/// not in {32,28,24,20,16,12,8}.
FloatFormat format_for_bits(int total_bits);

/// Encode an IEEE binary32 value into `fmt`.  The result occupies the low
/// `fmt.total_bits` bits.  Overflow saturates to +/-infinity; values whose
/// magnitude falls below the smallest normal are flushed to +/-0; NaN maps
/// to a canonical quiet NaN.
uint32_t encode(float v, const FloatFormat& fmt);

/// Decode a value produced by encode() back to binary32 (exact: every
/// normal value of every Table-3 format is representable in binary32).
float decode(uint32_t bits, const FloatFormat& fmt);

/// decode(encode(v)) — the value that a register-file slice actually
/// stores.  This is the quantization applied on every f32 register write
/// when a precision assignment is active.
float quantize(float v, const FloatFormat& fmt);

/// True if quantize(v, fmt) reproduces v bit-exactly (NaN compares true
/// against NaN).
bool exactly_representable(float v, const FloatFormat& fmt);

/// Warp-wide quantization for the SoA interpreter: quantize the 32 lanes of
/// `bits` (binary32 bit patterns) in place, lane l only when bit l of `mask`
/// is set.  Bit-identical to calling quantize() per active lane; one call
/// per warp write keeps encode/decode inlined in one translation unit.
void quantize_warp(uint32_t* bits, uint32_t mask, const FloatFormat& fmt);

}  // namespace gpurf::fp
