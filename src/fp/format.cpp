#include "fp/format.hpp"

#include <cmath>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace gpurf::fp {

const std::array<FloatFormat, 7>& table3_formats() {
  static const std::array<FloatFormat, 7> kFormats = {{
      {32, 8, 23},
      {28, 7, 20},
      {24, 6, 17},
      {20, 5, 14},
      {16, 5, 10},
      {12, 4, 7},
      {8, 3, 4},
  }};
  return kFormats;
}

FloatFormat format_for_bits(int total_bits) {
  for (const auto& f : table3_formats())
    if (f.total_bits == total_bits) return f;
  GPURF_CHECK(false, "no Table-3 float format with " << total_bits << " bits");
  return {};
}

uint32_t encode(float v, const FloatFormat& fmt) {
  const uint32_t raw = float_bits(v);
  if (fmt.is_fp32()) return raw;

  const uint32_t sign = raw >> 31;
  const int exp = static_cast<int>((raw >> 23) & 0xff);
  const uint32_t man = raw & 0x7fffff;

  const int mb = fmt.man_bits;
  const uint32_t sign_shifted = sign << (fmt.total_bits - 1);
  const uint32_t exp_mask_target = static_cast<uint32_t>(fmt.max_exp_field());

  if (exp == 0xff) {
    // Inf / NaN: all-ones exponent in the target too.
    uint32_t out = sign_shifted | (exp_mask_target << mb);
    if (man != 0) out |= (1u << (mb - 1));  // canonical quiet NaN
    return out;
  }
  if (exp == 0) {
    // binary32 denormal (or zero): flush to signed zero.
    return sign_shifted;
  }

  // Normal number: re-bias the exponent, round the mantissa (RNE).
  int e_target = exp - 127 + fmt.bias();
  uint32_t m = man;
  const int drop = 23 - mb;
  uint32_t m_hi = m >> drop;
  const uint32_t round_bit = (m >> (drop - 1)) & 1u;
  const uint32_t sticky = m & low_mask(drop - 1);
  if (round_bit && (sticky != 0 || (m_hi & 1u))) {
    ++m_hi;
    if (m_hi == (1u << mb)) {  // mantissa overflow: 1.111.. -> 10.000..
      m_hi = 0;
      ++e_target;
    }
  }

  if (e_target >= fmt.max_exp_field()) {
    // Overflow: saturate to infinity.
    return sign_shifted | (exp_mask_target << mb);
  }
  if (e_target <= 0) {
    // Would be a target denormal: flush to zero.
    return sign_shifted;
  }
  return sign_shifted | (static_cast<uint32_t>(e_target) << mb) | m_hi;
}

float decode(uint32_t bits, const FloatFormat& fmt) {
  if (fmt.is_fp32()) return bits_float(bits);

  const int mb = fmt.man_bits;
  const uint32_t sign = (bits >> (fmt.total_bits - 1)) & 1u;
  const uint32_t e = (bits >> mb) & static_cast<uint32_t>(fmt.max_exp_field());
  const uint32_t m = bits & low_mask(mb);

  if (e == 0) {
    // Zero (denormals are never produced by encode).
    return bits_float(sign << 31);
  }
  if (e == static_cast<uint32_t>(fmt.max_exp_field())) {
    if (m == 0) return bits_float((sign << 31) | 0x7f800000u);  // inf
    return bits_float((sign << 31) | 0x7fc00000u);              // quiet NaN
  }
  const int exp32 = static_cast<int>(e) - fmt.bias() + 127;
  GPURF_ASSERT(exp32 > 0 && exp32 < 255,
               "re-biased exponent escaped binary32 range");
  const uint32_t man32 = m << (23 - mb);
  return bits_float((sign << 31) | (static_cast<uint32_t>(exp32) << 23) |
                    man32);
}

float quantize(float v, const FloatFormat& fmt) {
  if (fmt.is_fp32()) return v;
  return decode(encode(v, fmt), fmt);
}

bool exactly_representable(float v, const FloatFormat& fmt) {
  const float q = quantize(v, fmt);
  if (std::isnan(v)) return std::isnan(q);
  return float_bits(q) == float_bits(v);
}

void quantize_warp(uint32_t* bits, uint32_t mask, const FloatFormat& fmt) {
  if (fmt.is_fp32()) return;
  if (mask == 0xffffffffu) {
    for (int l = 0; l < 32; ++l)
      bits[l] = float_bits(decode(encode(bits_float(bits[l]), fmt), fmt));
    return;
  }
  for (int l = 0; l < 32; ++l)
    if ((mask >> l) & 1u)
      bits[l] = float_bits(decode(encode(bits_float(bits[l]), fmt), fmt));
}

}  // namespace gpurf::fp
