#include "analysis/memory_access.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "analysis/dataflow.hpp"
#include "common/error.hpp"

namespace gpurf::analysis {

namespace ir = gpurf::ir;

namespace {

bool is_global_op(ir::Opcode op) {
  return op == ir::Opcode::LD_GLOBAL || op == ir::Opcode::ST_GLOBAL;
}

bool is_store_op(ir::Opcode op) {
  return op == ir::Opcode::ST_GLOBAL || op == ir::Opcode::ST_SHARED;
}

/// Interpreter address arithmetic: addr = (int64)(u32)reg + mem_offset.
/// A solved value interval maps 1:1 onto addresses only when it already
/// fits u32; otherwise the reinterpretation may wrap and all we know is
/// the full u32 range.  Returns whether the mapping was exact.
bool effective_addr(const Interval& value, int64_t off, Interval* out) {
  if (value.is_empty() || value.lo < 0 ||
      value.hi > static_cast<int64_t>(UINT32_MAX)) {
    *out = Interval::make(off, static_cast<int64_t>(UINT32_MAX) + off);
    return false;
  }
  *out = Interval::make(value.lo + off, value.hi + off);
  return true;
}

/// One per-(site, block) address segment for the disjointness sweeps.
struct Seg {
  int64_t lo = 0;
  int64_t hi = 0;
  uint32_t block = 0;
};

/// Max-hi tracker over the two best *distinct-block* segments seen so far.
/// For a new segment from block b, the largest hi among earlier segments
/// of any other block is t1.hi (if t1.block != b) else t2.hi — keeping
/// more than two entries can never change that maximum.
struct Top2 {
  int64_t hi[2] = {0, 0};
  uint32_t block[2] = {0, 0};
  int n = 0;

  void add(int64_t h, uint32_t b) {
    for (int i = 0; i < n; ++i) {
      if (block[i] == b) {
        hi[i] = std::max(hi[i], h);
        if (n == 2 && hi[1] > hi[0]) {
          std::swap(hi[0], hi[1]);
          std::swap(block[0], block[1]);
        }
        return;
      }
    }
    if (n < 2) {
      hi[n] = h;
      block[n] = b;
      ++n;
    } else if (h > hi[1]) {
      hi[1] = h;
      block[1] = b;
    }
    if (n == 2 && hi[1] > hi[0]) {
      std::swap(hi[0], hi[1]);
      std::swap(block[0], block[1]);
    }
  }

  /// Largest hi among tracked segments NOT from block b (or nullopt).
  bool other_max(uint32_t b, int64_t* out) const {
    for (int i = 0; i < n; ++i) {
      if (block[i] != b) {
        *out = hi[i];
        return true;
      }
    }
    return false;
  }
};

/// True iff no two segments from different blocks overlap.
bool segments_disjoint(std::vector<Seg>& segs) {
  std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
    return a.lo < b.lo || (a.lo == b.lo && a.block < b.block);
  });
  Top2 top;
  for (const Seg& s : segs) {
    int64_t h;
    if (top.other_max(s.block, &h) && s.lo <= h) return false;
    top.add(s.hi, s.block);
  }
  return true;
}

/// True iff no load segment overlaps a store segment from another block.
bool loads_are_local(const std::vector<Seg>& stores,
                     const std::vector<Seg>& loads) {
  struct Ev {
    Seg s;
    bool is_store;
  };
  std::vector<Ev> evs;
  evs.reserve(stores.size() + loads.size());
  for (const Seg& s : stores) evs.push_back({s, true});
  for (const Seg& s : loads) evs.push_back({s, false});
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    return a.s.lo < b.s.lo;
  });
  Top2 store_top, load_top;
  for (const Ev& e : evs) {
    int64_t h;
    if (e.is_store) {
      if (load_top.other_max(e.s.block, &h) && e.s.lo <= h) return false;
      store_top.add(e.s.hi, e.s.block);
    } else {
      if (store_top.other_max(e.s.block, &h) && e.s.lo <= h) return false;
      load_top.add(e.s.hi, e.s.block);
    }
  }
  return true;
}

AffineFootprint detect_affine(const std::vector<Interval>& hull) {
  AffineFootprint af;
  if (hull.empty()) return af;
  for (const Interval& h : hull)
    if (h.is_empty()) return af;
  af.lo0 = hull[0].lo;
  af.hi0 = hull[0].hi;
  if (hull.size() == 1) {
    af.valid = true;
    return af;
  }
  const int64_t s = hull[1].lo - hull[0].lo;
  for (size_t b = 0; b < hull.size(); ++b) {
    const int64_t d = s * static_cast<int64_t>(b);
    if (hull[b].lo != af.lo0 + d || hull[b].hi != af.hi0 + d) return af;
  }
  af.stride = s;
  af.valid = true;
  return af;
}

}  // namespace

std::string AffineFootprint::to_string() const {
  if (!valid) return "";
  char buf[96];
  std::snprintf(buf, sizeof buf, "[%" PRId64 "%+" PRId64 "b, %" PRId64
                                 "%+" PRId64 "b]",
                lo0, stride, hi0, stride);
  return buf;
}

MemoryAccessAnalysis analyze_memory_accesses(const ir::Kernel& k,
                                             const ir::LaunchConfig& lc,
                                             const MemoryAccessOptions& opts) {
  MemoryAccessAnalysis ma;

  std::vector<uint32_t> block_first(k.blocks.size(), 0);
  uint32_t total = 0;
  for (size_t b = 0; b < k.blocks.size(); ++b) {
    block_first[b] = total;
    total += static_cast<uint32_t>(k.blocks[b].insts.size());
  }
  ma.num_insts = total;

  // Launch-wide solve: one interval per site covering every block/thread.
  RangeAnalysisOptions ro;
  ro.collect_mem = true;
  ro.param_values = opts.param_values;
  const RangeAnalysisResult full = analyze_ranges(k, lc, ro);

  ma.accesses.reserve(full.mem.size());
  for (const MemSiteRange& s : full.mem) {
    const ir::Instruction& in = k.blocks[s.blk].insts[s.inst];
    MemAccess a;
    a.blk = s.blk;
    a.inst = s.inst;
    a.flat = block_first[s.blk] + s.inst;
    a.is_store = is_store_op(in.op);
    a.is_global = is_global_op(in.op);
    a.mem_offset = in.mem_offset;
    a.reached = s.reached;
    if (s.reached) a.addr_known = effective_addr(s.value, a.mem_offset, &a.addr);
    (a.is_global ? ma.num_global : ma.num_shared)++;
    ma.accesses.push_back(a);
  }

  if (!opts.footprints) return ma;

  // Fast path: a launch with no reachable global store cannot violate
  // either contract — nothing is written for another block to read or
  // collide with.
  bool any_global_store = false;
  for (const MemAccess& a : ma.accesses)
    any_global_store |= a.is_global && a.is_store && a.reached;
  if (!any_global_store) {
    ma.footprints_computed = true;
    ma.stores_disjoint = true;
    ma.loads_local = true;
    return ma;
  }

  const uint64_t nblocks = uint64_t(lc.grid_x) * uint64_t(lc.grid_y);
  if (nblocks == 0 || nblocks > opts.max_blocks) return ma;  // unproven

  std::vector<Seg> stores, loads;
  bool stores_known = true;
  bool loads_known = true;
  ma.store_hull.assign(nblocks, Interval::empty());
  ma.load_hull.assign(nblocks, Interval::empty());

  for (uint32_t by = 0; by < lc.grid_y; ++by) {
    for (uint32_t bx = 0; bx < lc.grid_x; ++bx) {
      const uint32_t b = by * lc.grid_x + bx;
      RangeAnalysisOptions ro2;
      ro2.collect_mem = true;
      ro2.param_values = opts.param_values;
      ro2.ctaid_x = Interval::point(bx);
      ro2.ctaid_y = Interval::point(by);
      const RangeAnalysisResult r = analyze_ranges(k, lc, ro2);
      GPURF_ASSERT(r.mem.size() == ma.accesses.size(),
                   "per-block solve enumerated different mem sites");
      for (size_t i = 0; i < r.mem.size(); ++i) {
        const MemAccess& a = ma.accesses[i];
        if (!a.is_global || !r.mem[i].reached) continue;
        Interval addr;
        const bool known =
            effective_addr(r.mem[i].value, a.mem_offset, &addr);
        if (!known) {
          (a.is_store ? stores_known : loads_known) = false;
          continue;
        }
        Interval& hull = (a.is_store ? ma.store_hull : ma.load_hull)[b];
        hull = iv_union(hull, addr);
        (a.is_store ? stores : loads).push_back({addr.lo, addr.hi, b});
      }
    }
  }

  ma.footprints_computed = true;
  ma.blocks_checked = static_cast<uint32_t>(nblocks);
  if (stores_known) {
    ma.stores_disjoint = segments_disjoint(stores);
    if (loads_known)
      ma.loads_local = loads_are_local(stores, loads);
  }
  ma.store_affine = detect_affine(ma.store_hull);
  ma.load_affine = detect_affine(ma.load_hull);
  return ma;
}

std::vector<uint8_t> prove_in_bounds(const MemoryAccessAnalysis& ma,
                                     uint64_t gmem_words,
                                     uint64_t shared_word_count) {
  std::vector<uint8_t> out(ma.num_insts, 0);
  for (const MemAccess& a : ma.accesses) {
    if (!a.reached) {
      out[a.flat] = 1;  // cannot execute, so the check cannot fire
      continue;
    }
    if (!a.addr_known) continue;
    const uint64_t limit = a.is_global ? gmem_words : shared_word_count;
    if (limit == 0) continue;
    if (a.addr.lo >= 0 && a.addr.hi < static_cast<int64_t>(limit))
      out[a.flat] = 1;
  }
  return out;
}

void apply_memory_findings(KernelReport& rep, const MemoryAccessAnalysis& ma,
                           const std::vector<uint8_t>& proven,
                           uint64_t gmem_words, uint64_t shared_word_count,
                           bool waived) {
  rep.mem_analyzed = true;
  rep.gmem_words = gmem_words;
  rep.mem_insts = static_cast<uint32_t>(ma.accesses.size());
  rep.mem_proven = 0;
  rep.oob_errors.clear();
  rep.oob_warnings.clear();
  for (const MemAccess& a : ma.accesses) {
    if (proven[a.flat]) {
      ++rep.mem_proven;
      continue;
    }
    if (!a.reached) continue;
    if (a.is_global && gmem_words == 0) continue;  // no instance context
    const uint64_t limit = a.is_global ? gmem_words : shared_word_count;
    OobFinding f;
    f.blk = a.blk;
    f.inst = a.inst;
    f.is_store = a.is_store;
    f.shared = !a.is_global;
    f.addr_known = a.addr_known;
    f.lo = a.addr.lo;
    f.hi = a.addr.hi;
    // Definite: the whole (exactly known) interval misses the buffer, so
    // the dynamic check fires whenever the site executes.
    f.definite = a.addr_known && !a.addr.is_empty() &&
                 (a.addr.hi < 0 || a.addr.lo >= static_cast<int64_t>(limit));
    (f.definite ? rep.oob_errors : rep.oob_warnings).push_back(f);
  }
  rep.footprints_computed = ma.footprints_computed;
  rep.stores_disjoint = ma.stores_disjoint;
  rep.loads_local = ma.loads_local;
  rep.disjoint_waived = waived;
  rep.store_affine = ma.store_affine.to_string();
  rep.load_affine = ma.load_affine.to_string();
}

}  // namespace gpurf::analysis
