#include "analysis/range_analysis.hpp"

#include <algorithm>
#include <map>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "analysis/uses.hpp"
#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace gpurf::analysis {

namespace ir = gpurf::ir;
using ir::CmpOp;
using ir::Kernel;
using ir::LaunchConfig;
using ir::Opcode;
using ir::Type;

namespace {

constexpr int kNoNode = -1;

/// A node of the range-constraint graph (one per e-SSA value).
struct RNode {
  enum class Kind : uint8_t { CONST, ARITH, PHI, SIGMA };
  Kind kind = Kind::CONST;

  Opcode op = Opcode::MOV;      // ARITH
  Type ty = Type::S32;          // result type
  Type src_ty = Type::S32;      // CVT source type
  Interval cval;                // CONST payload
  std::vector<int> deps;        // ARITH operands / PHI inputs / SIGMA {src}

  // SIGMA payload: constraint `src REL other` known to hold on this edge.
  CmpOp cmp = CmpOp::EQ;
  bool cmp_holds = true;        // false -> negation of cmp holds
  bool src_is_lhs = true;       // src appears on the left of cmp
  int sigma_other = kNoNode;    // node id of the other operand (future), or
  Interval sigma_other_const;   // a constant bound

  // Whether this node represents a value physically written into the
  // register file (a real definition); only these contribute to the final
  // per-register range.
  bool is_def = false;
  uint32_t origin_reg = ir::kNoReg;

  // Solver state.
  Interval range = Interval::empty();
  int scc = -1;
};

CmpOp negate_cmp(CmpOp c) {
  switch (c) {
    case CmpOp::EQ: return CmpOp::NE;
    case CmpOp::NE: return CmpOp::EQ;
    case CmpOp::LT: return CmpOp::GE;
    case CmpOp::LE: return CmpOp::GT;
    case CmpOp::GT: return CmpOp::LE;
    case CmpOp::GE: return CmpOp::LT;
  }
  return c;
}

CmpOp swap_cmp(CmpOp c) {
  switch (c) {
    case CmpOp::LT: return CmpOp::GT;
    case CmpOp::LE: return CmpOp::GE;
    case CmpOp::GT: return CmpOp::LT;
    case CmpOp::GE: return CmpOp::LE;
    default: return c;
  }
}

/// Interval of values x can take given `x REL other` holds.
Interval bound_for(CmpOp rel, const Interval& other) {
  if (other.is_empty()) return Interval::empty();
  switch (rel) {
    case CmpOp::LT:
      return Interval::make(Interval::kNegInf, sat_add(other.hi, -1));
    case CmpOp::LE:
      return Interval::make(Interval::kNegInf, other.hi);
    case CmpOp::GT:
      return Interval::make(sat_add(other.lo, 1), Interval::kPosInf);
    case CmpOp::GE:
      return Interval::make(other.lo, Interval::kPosInf);
    case CmpOp::EQ:
      return other;
    case CmpOp::NE:
      return Interval::top();
  }
  return Interval::top();
}

Interval type_range(Type t) {
  return t == Type::U32 ? Interval::full_u32() : Interval::full_s32();
}

bool is_mem_op(Opcode op) {
  return op == Opcode::LD_GLOBAL || op == Opcode::LD_SHARED ||
         op == Opcode::ST_GLOBAL || op == Opcode::ST_SHARED;
}

class RangeAnalyzer {
 public:
  RangeAnalyzer(const Kernel& k, const LaunchConfig& lc,
                const RangeAnalysisOptions& opts)
      : k_(k), lc_(lc), opts_(opts), cfg_(build_cfg(k)) {}

  RangeAnalysisResult run() {
    if (opts_.collect_mem) enumerate_mem_sites();
    idom_ = compute_idom(cfg_);
    build_dom_tree();
    place_phis();
    rename();
    solve();
    return merge();
  }

 private:
  // ---------------------------------------------------------------- helpers
  bool tracked(uint32_t r) const { return ir::is_int(k_.regs[r].type); }

  int new_node(RNode n) {
    nodes_.push_back(std::move(n));
    return static_cast<int>(nodes_.size() - 1);
  }

  int const_node(Interval iv, Type ty) {
    RNode n;
    n.kind = RNode::Kind::CONST;
    n.cval = iv;
    n.ty = ty;
    return new_node(std::move(n));
  }

  int undef_node(uint32_t reg) {
    auto it = undef_cache_.find(reg);
    if (it != undef_cache_.end()) return it->second;
    RNode n;
    n.kind = RNode::Kind::CONST;
    n.ty = k_.regs[reg].type;
    n.cval = type_range(n.ty);
    n.origin_reg = reg;
    const int id = new_node(std::move(n));
    undef_cache_[reg] = id;
    return id;
  }

  int special_node(ir::Special s) {
    auto it = special_cache_.find(s);
    if (it != special_cache_.end()) return it->second;
    Interval iv;
    switch (s) {
      case ir::Special::TID_X: iv = Interval::make(0, lc_.block_x - 1); break;
      case ir::Special::TID_Y: iv = Interval::make(0, lc_.block_y - 1); break;
      case ir::Special::CTAID_X:
        iv = opts_.ctaid_x
                 ? iv_intersect(*opts_.ctaid_x, Interval::make(0, lc_.grid_x - 1))
                 : Interval::make(0, lc_.grid_x - 1);
        break;
      case ir::Special::CTAID_Y:
        iv = opts_.ctaid_y
                 ? iv_intersect(*opts_.ctaid_y, Interval::make(0, lc_.grid_y - 1))
                 : Interval::make(0, lc_.grid_y - 1);
        break;
      case ir::Special::NTID_X: iv = Interval::point(lc_.block_x); break;
      case ir::Special::NTID_Y: iv = Interval::point(lc_.block_y); break;
      case ir::Special::NCTAID_X: iv = Interval::point(lc_.grid_x); break;
      case ir::Special::NCTAID_Y: iv = Interval::point(lc_.grid_y); break;
    }
    const int id = const_node(iv, Type::U32);
    special_cache_[s] = id;
    return id;
  }

  int param_node(uint32_t p) {
    auto it = param_cache_.find(p);
    if (it != param_cache_.end()) return it->second;
    const auto& info = k_.params[p];
    Interval iv = info.range
                      ? Interval::make(info.range->lo, info.range->hi)
                      : type_range(info.type);
    // Exact launch values beat the declared contract: the memory pass seeds
    // buffer base addresses (plain s32/u32 params with no useful range)
    // with the words the replay engine will actually pass.
    if (opts_.param_values && p < opts_.param_values->size() &&
        ir::is_int(info.type)) {
      const uint32_t w = (*opts_.param_values)[p];
      iv = info.type == Type::U32
               ? Interval::point(static_cast<int64_t>(w))
               : Interval::point(static_cast<int32_t>(w));
    }
    const int id = const_node(iv, ir::is_int(info.type) ? info.type : Type::S32);
    param_cache_[p] = id;
    return id;
  }

  /// Constraint-graph node for a source operand (int context).
  int operand_node(const ir::Operand& o) {
    switch (o.kind) {
      case ir::Operand::Kind::REG:
        return current_version(o.index);
      case ir::Operand::Kind::IMM_I:
        return const_node(Interval::point(o.imm_i), Type::S32);
      case ir::Operand::Kind::IMM_F:
        GPURF_ASSERT(false, "float immediate in integer context");
        return kNoNode;
      case ir::Operand::Kind::SPECIAL:
        return special_node(static_cast<ir::Special>(o.index));
      case ir::Operand::Kind::PARAM:
        return param_node(o.index);
    }
    return kNoNode;
  }

  int current_version(uint32_t reg) {
    GPURF_ASSERT(tracked(reg), "version query for non-int reg");
    auto& st = stacks_[reg];
    // Use of a never-defined register: conservative full range.
    if (st.empty()) return undef_node(reg);
    return st.back();
  }

  // ----------------------------------------------------------- SSA plumbing
  void build_dom_tree() {
    dom_children_.assign(cfg_.num_blocks(), {});
    for (uint32_t b = 1; b < cfg_.num_blocks(); ++b) {
      if (idom_[b] != kNoBlock && idom_[b] != b)
        dom_children_[idom_[b]].push_back(b);
    }
  }

  void place_phis() {
    const auto df = compute_dominance_frontiers(cfg_, idom_);
    const auto live = compute_liveness(k_, cfg_);
    const uint32_t nr = k_.num_regs();
    phis_.assign(cfg_.num_blocks(), {});

    for (uint32_t r = 0; r < nr; ++r) {
      if (!tracked(r)) continue;
      // Def blocks of r.
      std::vector<uint32_t> work;
      std::vector<bool> has_def(cfg_.num_blocks(), false);
      for (uint32_t b = 0; b < cfg_.num_blocks(); ++b)
        for (const auto& in : k_.blocks[b].insts)
          if (def_of(in) == r && !has_def[b]) {
            has_def[b] = true;
            work.push_back(b);
          }
      std::vector<bool> has_phi(cfg_.num_blocks(), false);
      while (!work.empty()) {
        const uint32_t b = work.back();
        work.pop_back();
        for (uint32_t j : df[b]) {
          if (has_phi[j]) continue;
          if (!live.live_in[j].test(r)) continue;  // pruned SSA
          has_phi[j] = true;
          // Create the phi node up-front so that predecessors renamed in
          // any dominator-tree order can append their incoming value.
          RNode n;
          n.kind = RNode::Kind::PHI;
          n.ty = k_.regs[r].type;
          n.origin_reg = r;
          phis_[j].push_back(PhiSlot{r, new_node(std::move(n))});
          if (!has_def[j]) {
            has_def[j] = true;
            work.push_back(j);
          }
        }
      }
    }
  }

  struct PhiSlot {
    uint32_t reg;
    int node;
  };

  void rename() {
    stacks_.assign(k_.num_regs(), {});
    rename_block(0);
  }

  void rename_block(uint32_t b) {
    std::vector<uint32_t> pushed;  // regs we pushed here (for pop)

    // 1. Edge sigma: single-predecessor block whose predecessor ends with a
    //    conditional branch gets constraints for the compared registers.
    if (cfg_.preds[b].size() == 1) attach_sigmas(b, cfg_.preds[b][0], pushed);

    // 2. Phi definitions (nodes already created at placement time).
    for (auto& phi : phis_[b]) {
      stacks_[phi.reg].push_back(phi.node);
      pushed.push_back(phi.reg);
    }

    // 3. Straight-line instructions.
    const auto& insts = k_.blocks[b].insts;
    for (uint32_t ii = 0; ii < insts.size(); ++ii) {
      const auto& in = insts[ii];
      if (opts_.collect_mem && is_mem_op(in.op)) record_mem_site(b, ii, in);
      const uint32_t d = def_of(in);
      if (d == ir::kNoReg || !tracked(d)) continue;
      const int computed = translate(in);
      int version = computed;
      if (is_partial_def(in)) {
        // Guarded write: downstream may observe either the new or the old
        // value.
        auto& st = stacks_[d];
        if (!st.empty()) {
          RNode m;
          m.kind = RNode::Kind::PHI;
          m.ty = k_.regs[d].type;
          m.deps = {computed, st.back()};
          m.origin_reg = d;
          version = new_node(std::move(m));
        }
      }
      stacks_[d].push_back(version);
      pushed.push_back(d);
    }

    // 4. Feed phi inputs of CFG successors with the versions live at the
    //    end of this block.
    for (uint32_t s : cfg_.succs[b])
      for (auto& phi : phis_[s])
        nodes_[phi.node].deps.push_back(current_version(phi.reg));

    // 5. Dominator-tree children.
    for (uint32_t c : dom_children_[b]) rename_block(c);

    // 6. Pop.
    for (auto it = pushed.rbegin(); it != pushed.rend(); ++it)
      stacks_[*it].pop_back();
  }

  // ------------------------------------------------------------- mem sites
  void enumerate_mem_sites() {
    for (uint32_t b = 0; b < k_.blocks.size(); ++b) {
      const auto& insts = k_.blocks[b].insts;
      for (uint32_t ii = 0; ii < insts.size(); ++ii) {
        if (!is_mem_op(insts[ii].op)) continue;
        MemSiteRange s;
        s.blk = b;
        s.inst = ii;
        mem_sites_.push_back(s);
        mem_nodes_.push_back(kNoNode);
        site_of_[(uint64_t(b) << 32) | ii] =
            static_cast<int>(mem_sites_.size() - 1);
      }
    }
  }

  /// Bind the reaching version of the address operand (always srcs[0], a
  /// register — the parser enforces that) to this site.  A non-integer
  /// address register stays unbound: the site is reached but its range is
  /// unknown (full u32 after the consumer's wrap rule).
  void record_mem_site(uint32_t b, uint32_t ii, const ir::Instruction& in) {
    const auto it = site_of_.find((uint64_t(b) << 32) | ii);
    GPURF_ASSERT(it != site_of_.end(), "mem site not enumerated");
    mem_sites_[it->second].reached = true;
    const ir::Operand& a = in.srcs[0];
    if (a.is_reg() && tracked(a.index))
      mem_nodes_[it->second] = current_version(a.index);
  }

  void attach_sigmas(uint32_t b, uint32_t p, std::vector<uint32_t>& pushed) {
    const auto& pb = k_.blocks[p];
    if (pb.insts.empty()) return;
    const auto& term = pb.insts.back();
    if (term.op != Opcode::BRA || term.guard == ir::kNoReg) return;
    if (term.target == p + 1) return;  // degenerate: both edges same block
    const bool taken = (term.target == b);
    const bool guard_value = taken ? !term.guard_neg : term.guard_neg;

    // Find the SETP defining the guard within the same block.
    const ir::Instruction* setp = nullptr;
    for (auto it = pb.insts.rbegin(); it != pb.insts.rend(); ++it) {
      if (def_of(*it) == term.guard) {
        if (it->op == Opcode::SETP && it->guard == ir::kNoReg) setp = &*it;
        break;
      }
    }
    if (!setp || !ir::is_int(setp->type)) return;

    for (int side = 0; side < 2; ++side) {
      const ir::Operand& me = setp->srcs[side];
      const ir::Operand& other = setp->srcs[1 - side];
      if (!me.is_reg() || !tracked(me.index)) continue;
      if (stacks_[me.index].empty()) continue;  // undefined: no constraint

      RNode n;
      n.kind = RNode::Kind::SIGMA;
      n.ty = k_.regs[me.index].type;
      n.origin_reg = me.index;
      n.deps = {stacks_[me.index].back()};
      n.cmp = setp->cmp;
      n.cmp_holds = guard_value;
      n.src_is_lhs = (side == 0);
      if (other.is_reg()) {
        if (!tracked(other.index) || stacks_[other.index].empty()) continue;
        n.sigma_other = stacks_[other.index].back();
      } else if (other.kind == ir::Operand::Kind::IMM_I) {
        n.sigma_other = kNoNode;
        n.sigma_other_const = Interval::point(other.imm_i);
      } else if (other.kind == ir::Operand::Kind::PARAM) {
        n.sigma_other = param_node(other.index);
      } else if (other.kind == ir::Operand::Kind::SPECIAL) {
        n.sigma_other = special_node(static_cast<ir::Special>(other.index));
      } else {
        continue;
      }
      // Make the future an ordering dependency so the referenced value's
      // SCC is solved first; a genuine cycle through the future lands both
      // in one SCC, where growth defers the bound (Pereira's futures).
      if (n.sigma_other != kNoNode) n.deps.push_back(n.sigma_other);
      const int id = new_node(std::move(n));
      stacks_[me.index].push_back(id);
      pushed.push_back(me.index);
    }
  }

  /// Build the constraint node for the value computed by `in` (dst is a
  /// tracked integer register).
  int translate(const ir::Instruction& in) {
    const Type ty = in.type;
    switch (in.op) {
      case Opcode::MOV: {
        RNode n;
        n.kind = RNode::Kind::PHI;  // copy == 1-input phi
        n.ty = ty;
        n.deps = {operand_node(in.srcs[0])};
        n.is_def = true;
        n.origin_reg = in.dst;
        return new_node(std::move(n));
      }
      case Opcode::SELP: {
        RNode n;
        n.kind = RNode::Kind::PHI;
        n.ty = ty;
        n.deps = {operand_node(in.srcs[0]), operand_node(in.srcs[1])};
        n.is_def = true;
        n.origin_reg = in.dst;
        return new_node(std::move(n));
      }
      case Opcode::LD_GLOBAL:
      case Opcode::LD_SHARED: {
        // Loads produce statically unknown integers.
        RNode n;
        n.kind = RNode::Kind::CONST;
        n.ty = ty;
        n.cval = type_range(ty);
        n.is_def = true;
        n.origin_reg = in.dst;
        return new_node(std::move(n));
      }
      case Opcode::CVT: {
        RNode n;
        n.ty = ty;
        n.origin_reg = in.dst;
        n.is_def = true;
        if (in.cvt_src_type == Type::F32) {
          n.kind = RNode::Kind::CONST;
          n.cval = type_range(ty);
        } else {
          n.kind = RNode::Kind::ARITH;
          n.op = Opcode::CVT;
          n.src_ty = in.cvt_src_type;
          n.deps = {operand_node(in.srcs[0])};
        }
        return new_node(std::move(n));
      }
      default: {
        RNode n;
        n.kind = RNode::Kind::ARITH;
        n.op = in.op;
        n.ty = ty;
        n.origin_reg = in.dst;
        n.is_def = true;
        for (int i = 0; i < in.num_srcs; ++i)
          n.deps.push_back(operand_node(in.srcs[i]));
        return new_node(std::move(n));
      }
    }
  }

  // ------------------------------------------------------------- evaluation
  Interval eval(const RNode& n, bool apply_sigma) const {
    switch (n.kind) {
      case RNode::Kind::CONST:
        return n.cval;
      case RNode::Kind::PHI: {
        Interval u = Interval::empty();
        for (int d : n.deps) u = iv_union(u, nodes_[d].range);
        return u;
      }
      case RNode::Kind::SIGMA: {
        const Interval src = nodes_[n.deps[0]].range;
        if (src.is_empty()) return src;
        Interval other;
        bool have_other = false;
        if (n.sigma_other == kNoNode) {
          other = n.sigma_other_const;
          have_other = true;
        } else if (apply_sigma ||
                   nodes_[n.sigma_other].scc != n.scc) {
          // Futures inside the same SCC are deferred during growth.
          other = nodes_[n.sigma_other].range;
          have_other = !other.is_empty();
        }
        if (!have_other) return src;
        CmpOp rel = n.cmp_holds ? n.cmp : negate_cmp(n.cmp);
        if (!n.src_is_lhs) rel = swap_cmp(rel);
        return iv_intersect(src, bound_for(rel, other));
      }
      case RNode::Kind::ARITH: {
        std::array<Interval, 3> a{};
        for (size_t i = 0; i < n.deps.size(); ++i) {
          a[i] = nodes_[n.deps[i]].range;
          if (a[i].is_empty()) return Interval::empty();
        }
        switch (n.op) {
          case Opcode::ADD: return iv_add(a[0], a[1]);
          case Opcode::SUB: return iv_sub(a[0], a[1]);
          case Opcode::MUL: return iv_mul(a[0], a[1]);
          case Opcode::MAD: return iv_add(iv_mul(a[0], a[1]), a[2]);
          case Opcode::DIV: return iv_div(a[0], a[1]);
          case Opcode::REM: return iv_rem(a[0], a[1]);
          case Opcode::MIN: return iv_min(a[0], a[1]);
          case Opcode::MAX: return iv_max(a[0], a[1]);
          case Opcode::ABS: return iv_abs(a[0]);
          case Opcode::NEG: return iv_neg(a[0]);
          case Opcode::AND: return iv_and(a[0], a[1]);
          case Opcode::OR: return iv_or(a[0], a[1]);
          case Opcode::XOR: return iv_xor(a[0], a[1]);
          case Opcode::NOT: return iv_not(a[0]);
          case Opcode::SHL: return iv_shl(a[0], a[1]);
          case Opcode::SHR:
            return n.ty == Type::U32 ? iv_shr_u(a[0], a[1])
                                     : iv_shr_s(a[0], a[1]);
          case Opcode::CVT: {
            // Integer-to-integer conversion.
            const Interval& s = a[0];
            if (n.ty == Type::U32)
              return (s.lo >= 0 && s.hi <= int64_t(UINT32_MAX))
                         ? s
                         : Interval::full_u32();
            return (s.lo >= INT32_MIN && s.hi <= INT32_MAX)
                       ? s
                       : Interval::full_s32();
          }
          default:
            return Interval::top();
        }
      }
    }
    return Interval::top();
  }

  // ------------------------------------------------------------------ solve
  void solve() {
    compute_sccs();
    // Process SCCs in dependency order (Tarjan completion order: an SCC is
    // completed only after every SCC it depends on).
    for (const auto& scc : scc_members_) {
      grow(scc);
      narrow(scc);
    }
  }

  void compute_sccs() {
    // Iterative Tarjan over dep edges.
    const int n = static_cast<int>(nodes_.size());
    std::vector<int> index(n, -1), low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<int> stack;
    int next_index = 0;

    struct Frame {
      int v;
      size_t ei;
    };
    for (int root = 0; root < n; ++root) {
      if (index[root] != -1) continue;
      std::vector<Frame> call{{root, 0}};
      index[root] = low[root] = next_index++;
      stack.push_back(root);
      on_stack[root] = true;
      while (!call.empty()) {
        Frame& f = call.back();
        const auto& deps = nodes_[f.v].deps;
        if (f.ei < deps.size()) {
          const int w = deps[f.ei++];
          if (index[w] == -1) {
            index[w] = low[w] = next_index++;
            stack.push_back(w);
            on_stack[w] = true;
            call.push_back({w, 0});
          } else if (on_stack[w]) {
            low[f.v] = std::min(low[f.v], index[w]);
          }
        } else {
          if (low[f.v] == index[f.v]) {
            std::vector<int> comp;
            int w;
            do {
              w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              nodes_[w].scc = static_cast<int>(scc_members_.size());
              comp.push_back(w);
            } while (w != f.v);
            scc_members_.push_back(std::move(comp));
          }
          const int v = f.v;
          call.pop_back();
          if (!call.empty())
            low[call.back().v] = std::min(low[call.back().v], low[v]);
        }
      }
    }
  }

  void grow(const std::vector<int>& scc) {
    // Phase 1: plain ascending (join) iteration.  Copy/phi cycles (e.g.
    // buffer-swap idioms) reach their exact fixpoint here without ever
    // needing widening.
    bool changed = true;
    int iter = 0;
    const int ascend_limit = 4 + 2 * static_cast<int>(scc.size());
    while (changed && iter++ < ascend_limit) {
      changed = false;
      for (int v : scc) {
        RNode& n = nodes_[v];
        const Interval e = eval(n, /*apply_sigma=*/false);
        if (e.is_empty()) continue;
        const Interval u = iv_union(n.range, e);
        if (!(u == n.range)) {
          n.range = u;
          changed = true;
        }
      }
    }
    if (!changed) return;

    // Phase 2: still growing (a genuine arithmetic loop) — widen the
    // moving bounds to infinity; narrowing recovers precision afterwards.
    changed = true;
    iter = 0;
    while (changed && iter++ < 64) {
      changed = false;
      for (int v : scc) {
        RNode& n = nodes_[v];
        const Interval e = eval(n, /*apply_sigma=*/false);
        if (e.is_empty()) continue;
        if (n.range.is_empty()) {
          n.range = e;
          changed = true;
          continue;
        }
        Interval w = n.range;
        if (e.lo < w.lo) {
          w.lo = Interval::kNegInf;
          changed = true;
        }
        if (e.hi > w.hi) {
          w.hi = Interval::kPosInf;
          changed = true;
        }
        n.range = w;
      }
    }
  }

  void narrow(const std::vector<int>& scc) {
    bool changed = true;
    int iter = 0;
    while (changed && iter++ < 16) {
      changed = false;
      for (int v : scc) {
        RNode& n = nodes_[v];
        const Interval e = eval(n, /*apply_sigma=*/true);
        Interval r = n.range;
        if (e.is_empty()) {
          if (!r.is_empty()) {
            n.range = e;
            changed = true;
          }
          continue;
        }
        if (r.is_empty()) {
          n.range = e;
          changed = true;
          continue;
        }
        if (r.lo_inf() && !e.lo_inf()) {
          r.lo = e.lo;
          changed = true;
        }
        if (r.hi_inf() && !e.hi_inf()) {
          r.hi = e.hi;
          changed = true;
        }
        // Sigma nodes may also *shrink* within the solved bound.
        if (n.kind == RNode::Kind::SIGMA) {
          if (e.lo > r.lo) {
            r.lo = e.lo;
            changed = true;
          }
          if (e.hi < r.hi) {
            r.hi = e.hi;
            changed = true;
          }
        }
        n.range = r;
      }
    }
  }

  // ------------------------------------------------------------------ merge
  RangeAnalysisResult merge() {
    RangeAnalysisResult res;
    res.regs.assign(k_.num_regs(), {});
    res.num_nodes = static_cast<int>(nodes_.size());
    res.num_sccs = static_cast<int>(scc_members_.size());

    for (uint32_t r = 0; r < k_.num_regs(); ++r) {
      auto& out = res.regs[r];
      if (!tracked(r)) {
        out.analyzed = false;
        out.bits = 32;
        continue;
      }
      const Interval machine = type_range(k_.regs[r].type);
      Interval u = Interval::empty();
      for (const auto& n : nodes_) {
        if (n.origin_reg != r || !n.is_def) continue;
        Interval d = n.range;
        // A definition whose mathematical interval escapes the machine
        // type may wrap at run time — the stored value can then be
        // *anything* of that type, so the def must widen to full range
        // (clamping would be unsound).
        if (!d.is_empty() && (d.lo < machine.lo || d.hi > machine.hi))
          d = machine;
        u = iv_union(u, d);
      }
      if (u.is_empty()) u = Interval::point(0);  // dead register
      out.analyzed = true;
      out.range = u;
      out.is_signed = u.lo < 0;
      out.bits = out.is_signed
                     ? bits_for_signed_range(u.lo, u.hi)
                     : bits_for_unsigned_range(static_cast<uint64_t>(u.lo),
                                               static_cast<uint64_t>(u.hi));
      out.bits = std::clamp(out.bits, 1, 32);
    }

    // Per-memory-site address ranges, with the same wrap-escape rule: a
    // solved interval escaping the address register's machine type may wrap
    // at run time, so it must widen to the full type range before use.
    for (size_t i = 0; i < mem_sites_.size(); ++i) {
      MemSiteRange s = mem_sites_[i];
      if (s.reached) {
        const int node = mem_nodes_[i];
        if (node == kNoNode) {
          // Untracked (non-integer) address register: the bits are still a
          // u32, which is all the consumer can assume.
          s.value = Interval::full_u32();
        } else {
          const RNode& n = nodes_[node];
          const Interval machine = type_range(n.ty);
          Interval d = n.range;
          if (d.is_empty() || d.lo < machine.lo || d.hi > machine.hi)
            d = machine;
          s.value = d;
        }
      }
      res.mem.push_back(s);
    }
    return res;
  }

  const Kernel& k_;
  const LaunchConfig& lc_;
  RangeAnalysisOptions opts_;
  Cfg cfg_;
  std::vector<uint32_t> idom_;
  std::vector<std::vector<uint32_t>> dom_children_;
  std::vector<std::vector<PhiSlot>> phis_;
  std::vector<std::vector<int>> stacks_;
  std::vector<RNode> nodes_;
  std::map<ir::Special, int> special_cache_;
  std::map<uint32_t, int> param_cache_;
  std::map<uint32_t, int> undef_cache_;
  std::vector<std::vector<int>> scc_members_;
  std::vector<MemSiteRange> mem_sites_;  ///< block-major, parallel to...
  std::vector<int> mem_nodes_;           ///< ...the bound address node (or kNoNode)
  std::map<uint64_t, int> site_of_;      ///< (blk<<32|inst) -> mem_sites_ index
};

}  // namespace

int RangeAnalysisResult::slices_for_reg(uint32_t r) const {
  return slices_for_bits(regs.at(r).bits);
}

RangeAnalysisResult analyze_ranges(const Kernel& k, const LaunchConfig& lc) {
  return RangeAnalyzer(k, lc, {}).run();
}

RangeAnalysisResult analyze_ranges(const Kernel& k, const LaunchConfig& lc,
                                   const RangeAnalysisOptions& options) {
  return RangeAnalyzer(k, lc, options).run();
}

}  // namespace gpurf::analysis
