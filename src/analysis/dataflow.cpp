#include "analysis/dataflow.hpp"

#include <algorithm>

#include "analysis/uses.hpp"

namespace gpurf::analysis {

using gpurf::ir::Kernel;
using gpurf::ir::Type;

Dataflow compute_dataflow(const Kernel& k, const Cfg& cfg) {
  Dataflow df;
  df.block = compute_liveness(k, cfg);

  const uint32_t nb = cfg.num_blocks();
  const uint32_t nr = k.num_regs();

  df.block_size.resize(nb);
  df.point_first.resize(nb);
  df.inst_first.resize(nb);
  uint32_t points = 0, insts = 0;
  for (uint32_t b = 0; b < nb; ++b) {
    df.block_size[b] = static_cast<uint32_t>(k.blocks[b].insts.size());
    df.point_first[b] = points;
    df.inst_first[b] = insts;
    points += df.block_size[b] + 1;
    insts += df.block_size[b];
  }
  df.num_points = points;
  df.num_insts = insts;

  df.live_before.resize(points);
  df.dead_dst.assign(insts, 0);
  df.ever_live = DynBitset(nr);
  df.def_count.assign(nr, 0);
  df.use_count.assign(nr, 0);

  // One backward scan per block from its live-out set.  The transfer for
  // point i (about to execute instruction i) from point i+1:
  //   live_before = (live_after \ dst-if-full-def) ∪ uses
  // Partial (guarded) defs merge into the destination, so they do not
  // kill: the old value is needed exactly when the merged value is.
  for (uint32_t b = 0; b < nb; ++b) {
    DynBitset cur = df.block.live_out[b];
    df.live_before[df.point_first[b] + df.block_size[b]] = cur;
    for (uint32_t i = df.block_size[b]; i-- > 0;) {
      const gpurf::ir::Instruction& in = k.blocks[b].insts[i];
      const uint32_t d = def_of(in);
      if (d != gpurf::ir::kNoReg) {
        ++df.def_count[d];
        if (!cur.test(d)) df.dead_dst[df.inst_first[b] + i] = 1;
        if (!is_partial_def(in)) cur.reset(d);
      }
      for_each_use(in, [&](uint32_t r) {
        ++df.use_count[r];
        cur.set(r);
      });
      df.live_before[df.point_first[b] + i] = cur;
    }
  }

  for (const DynBitset& s : df.live_before) df.ever_live.merge(s);

  // Linear intervals: min/max point where the register is live, per
  // ever-live register, half-open at the top.
  std::vector<uint32_t> lo(nr, points), hi(nr, 0);
  for (uint32_t p = 0; p < points; ++p) {
    df.live_before[p].for_each_set([&](size_t rr) {
      const uint32_t r = static_cast<uint32_t>(rr);
      lo[r] = std::min(lo[r], p);
      hi[r] = std::max(hi[r], p + 1);
    });
  }
  for (uint32_t r = 0; r < nr; ++r)
    if (lo[r] < points) df.intervals.push_back(LiveInterval{r, lo[r], hi[r]});

  return df;
}

std::vector<DynBitset> build_live_interference(const Kernel& k, const Cfg& cfg,
                                               const Dataflow& df) {
  const uint32_t nr = k.num_regs();
  std::vector<DynBitset> adj(nr, DynBitset(nr));
  auto is_data = [&](uint32_t r) { return k.regs[r].type != Type::PRED; };
  auto add_edges_from = [&](uint32_t d, const DynBitset& liveset) {
    if (!is_data(d)) return;
    liveset.for_each_set([&](size_t rr) {
      const uint32_t r = static_cast<uint32_t>(rr);
      if (r == d || !is_data(r)) return;
      adj[d].set(r);
      adj[r].set(d);
    });
  };

  for (uint32_t b = 0; b < cfg.num_blocks(); ++b) {
    DynBitset cur = df.block.live_out[b];
    for (uint32_t i = static_cast<uint32_t>(k.blocks[b].insts.size());
         i-- > 0;) {
      const auto& in = k.blocks[b].insts[i];
      const uint32_t d = def_of(in);
      if (d != gpurf::ir::kNoReg) {
        // A dead write is elided before it reaches the register file, so
        // it interferes with nothing; build_interference's unconditional
        // def-edge is exactly the conservatism live_intervals mode drops.
        if (!df.dst_dead(b, i)) {
          if (is_partial_def(in)) cur.set(d);
          add_edges_from(d, cur);
        }
        if (!is_partial_def(in)) cur.reset(d);
      }
      for_each_use(in, [&](uint32_t r) { cur.set(r); });
    }
  }
  return adj;
}

KernelReport build_kernel_report(const Kernel& k, const Cfg& cfg,
                                 const Dataflow& df) {
  KernelReport rep;
  rep.kernel = k.name;
  rep.num_regs = k.num_regs();
  rep.num_blocks = cfg.num_blocks();
  rep.num_insts = df.num_insts;
  rep.static_pressure = df.block.max_pressure;
  rep.undefined_reads = df.block.undefined_uses;
  rep.intervals = df.intervals;
  rep.reg_names.reserve(k.num_regs());
  for (const auto& ri : k.regs) rep.reg_names.push_back(ri.name);

  for (uint32_t b = 0; b < cfg.num_blocks(); ++b)
    for (uint32_t i = 0; i < df.block_size[b]; ++i)
      if (df.dst_dead(b, i)) {
        const uint32_t d = def_of(k.blocks[b].insts[i]);
        rep.dead_writes.push_back(DeadWrite{b, i, d});
      }

  for (uint32_t r = 0; r < k.num_regs(); ++r)
    if (df.def_count[r] > 0 && df.use_count[r] == 0) rep.never_read.push_back(r);

  return rep;
}

}  // namespace gpurf::analysis
