#pragma once
// Static integer range analysis in the style of Pereira et al. [CGO'13],
// the framework the paper adopts in §4.2 to find narrow integer operands.
//
// Pipeline:
//   1. SSA construction (dominance frontiers, pruned phi placement).
//   2. e-SSA: sigma nodes on the outgoing edges of conditional branches,
//      capturing the inequality enforced by the branch (Fig. 8b).
//   3. A constraint graph whose strongly-connected components are solved in
//      topological order with the classic three phases: growth analysis with
//      jump-to-infinity widening, future (sigma-bound) resolution, and
//      narrowing (Fig. 8c).
//   4. Per-register merge: the union of the ranges of all SSA definitions of
//      each original register, from which the required bitwidth and
//      signedness are derived (Fig. 8d).
//
// Special registers (%tid, %ctaid, ...) are seeded from the launch
// configuration; parameters use their declared range contract or the full
// type range, as ptxas would.

#include <vector>

#include "analysis/interval.hpp"
#include "ir/kernel.hpp"

namespace gpurf::analysis {

struct IntWidthInfo {
  Interval range = Interval::full_s32();
  int bits = 32;          ///< bits that must be stored (1..32)
  bool is_signed = true;  ///< needs sign extension on read (lo < 0)
  bool analyzed = false;  ///< true only for integer data registers
};

struct RangeAnalysisResult {
  std::vector<IntWidthInfo> regs;  ///< indexed by kernel register id
  int num_nodes = 0;               ///< constraint-graph size (stats)
  int num_sccs = 0;

  /// Total 4-bit slices needed by an integer register under this analysis.
  int slices_for_reg(uint32_t r) const;
};

RangeAnalysisResult analyze_ranges(const gpurf::ir::Kernel& k,
                                   const gpurf::ir::LaunchConfig& lc);

}  // namespace gpurf::analysis
