#pragma once
// Static integer range analysis in the style of Pereira et al. [CGO'13],
// the framework the paper adopts in §4.2 to find narrow integer operands.
//
// Pipeline:
//   1. SSA construction (dominance frontiers, pruned phi placement).
//   2. e-SSA: sigma nodes on the outgoing edges of conditional branches,
//      capturing the inequality enforced by the branch (Fig. 8b).
//   3. A constraint graph whose strongly-connected components are solved in
//      topological order with the classic three phases: growth analysis with
//      jump-to-infinity widening, future (sigma-bound) resolution, and
//      narrowing (Fig. 8c).
//   4. Per-register merge: the union of the ranges of all SSA definitions of
//      each original register, from which the required bitwidth and
//      signedness are derived (Fig. 8d).
//
// Special registers (%tid, %ctaid, ...) are seeded from the launch
// configuration; parameters use their declared range contract or the full
// type range, as ptxas would.
//
// The memory-access pass (ISSUE 10) reuses the same solver with three
// extensions, all opt-in via RangeAnalysisOptions: the %ctaid seeds can be
// pinned to a single block (per-block footprints), parameters can be seeded
// with the exact runtime values of one launch (buffer base addresses), and
// the solved interval of every load/store address operand can be collected
// per instruction site.

#include <optional>
#include <vector>

#include "analysis/interval.hpp"
#include "ir/kernel.hpp"

namespace gpurf::analysis {

struct IntWidthInfo {
  Interval range = Interval::full_s32();
  int bits = 32;          ///< bits that must be stored (1..32)
  bool is_signed = true;  ///< needs sign extension on read (lo < 0)
  bool analyzed = false;  ///< true only for integer data registers
};

/// Solved interval of the address operand of one memory instruction.
/// `value` is the mathematical range of the register *before* the
/// interpreter's u32 reinterpretation and mem_offset addition — consumers
/// (memory_access.cpp) apply those themselves.
struct MemSiteRange {
  uint32_t blk = 0;
  uint32_t inst = 0;              ///< index within blocks[blk].insts
  Interval value = Interval::empty();
  bool reached = false;  ///< site renamed (statically reachable from entry)
};

struct RangeAnalysisOptions {
  /// Collect MemSiteRange for every LD/ST (global and shared) site.
  bool collect_mem = false;
  /// Pin %ctaid.x / %ctaid.y to a sub-range (typically a point) instead of
  /// the full grid — per-block footprint solves.  %nctaid keeps the grid.
  std::optional<Interval> ctaid_x;
  std::optional<Interval> ctaid_y;
  /// Exact runtime parameter words of one launch; when set, parameter i is
  /// seeded with the point interval of its value (interpreted in the
  /// parameter's declared type) instead of its declared range contract.
  const std::vector<uint32_t>* param_values = nullptr;
};

struct RangeAnalysisResult {
  std::vector<IntWidthInfo> regs;  ///< indexed by kernel register id
  int num_nodes = 0;               ///< constraint-graph size (stats)
  int num_sccs = 0;
  /// Per-memory-instruction address operand ranges, block-major, one entry
  /// per LD_GLOBAL/LD_SHARED/ST_GLOBAL/ST_SHARED site (TEX2D is clamped by
  /// construction and excluded).  Empty unless options.collect_mem.
  std::vector<MemSiteRange> mem;

  /// Total 4-bit slices needed by an integer register under this analysis.
  int slices_for_reg(uint32_t r) const;
};

RangeAnalysisResult analyze_ranges(const gpurf::ir::Kernel& k,
                                   const gpurf::ir::LaunchConfig& lc);
RangeAnalysisResult analyze_ranges(const gpurf::ir::Kernel& k,
                                   const gpurf::ir::LaunchConfig& lc,
                                   const RangeAnalysisOptions& options);

}  // namespace gpurf::analysis
