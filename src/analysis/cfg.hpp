#pragma once
// Control-flow graph utilities: predecessor/successor lists, reverse
// post-order, dominators, post-dominators (for SIMT reconvergence points)
// and dominance frontiers (for SSA phi placement).

#include <cstdint>
#include <vector>

#include "ir/kernel.hpp"

namespace gpurf::analysis {

constexpr uint32_t kNoBlock = gpurf::ir::kNoBlock;

struct Cfg {
  std::vector<std::vector<uint32_t>> succs;
  std::vector<std::vector<uint32_t>> preds;
  std::vector<uint32_t> rpo;        ///< block ids in reverse post-order
  std::vector<uint32_t> rpo_index;  ///< block id -> position in rpo

  uint32_t num_blocks() const { return static_cast<uint32_t>(succs.size()); }
};

Cfg build_cfg(const gpurf::ir::Kernel& k);

/// Immediate dominators (Cooper-Harvey-Kennedy).  idom[entry] == entry;
/// unreachable blocks get kNoBlock.
std::vector<uint32_t> compute_idom(const Cfg& cfg);

/// Immediate post-dominators over the reverse CFG with a virtual exit node.
/// ipdom[b] == kNoBlock means the virtual exit (i.e. b post-dominated only
/// by program exit).  Used as the SIMT reconvergence point of branches in b.
std::vector<uint32_t> compute_ipdom(const Cfg& cfg);

/// Dominance frontiers, given idom.
std::vector<std::vector<uint32_t>> compute_dominance_frontiers(
    const Cfg& cfg, const std::vector<uint32_t>& idom);

}  // namespace gpurf::analysis
