#include "analysis/cfg.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpurf::analysis {

using gpurf::ir::Kernel;

Cfg build_cfg(const Kernel& k) {
  Cfg cfg;
  const uint32_t n = static_cast<uint32_t>(k.blocks.size());
  cfg.succs.resize(n);
  cfg.preds.resize(n);
  for (uint32_t b = 0; b < n; ++b) {
    cfg.succs[b] = k.successors(b);
    for (uint32_t s : cfg.succs[b]) cfg.preds[s].push_back(b);
  }

  // Reverse post-order via iterative DFS from block 0.
  std::vector<uint8_t> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<uint32_t> post;
  post.reserve(n);
  std::vector<std::pair<uint32_t, size_t>> stack;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, i] = stack.back();
    if (i < cfg.succs[b].size()) {
      const uint32_t s = cfg.succs[b][i++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  cfg.rpo.assign(post.rbegin(), post.rend());
  cfg.rpo_index.assign(n, UINT32_MAX);
  for (uint32_t i = 0; i < cfg.rpo.size(); ++i)
    cfg.rpo_index[cfg.rpo[i]] = i;
  return cfg;
}

namespace {

// Intersection step of the Cooper-Harvey-Kennedy algorithm, operating on
// RPO indices (smaller index = earlier in RPO = closer to entry).
uint32_t intersect(uint32_t a, uint32_t b, const std::vector<uint32_t>& idom,
                   const std::vector<uint32_t>& rpo_index) {
  while (a != b) {
    while (rpo_index[a] > rpo_index[b]) a = idom[a];
    while (rpo_index[b] > rpo_index[a]) b = idom[b];
  }
  return a;
}

}  // namespace

std::vector<uint32_t> compute_idom(const Cfg& cfg) {
  const uint32_t n = cfg.num_blocks();
  std::vector<uint32_t> idom(n, kNoBlock);
  if (n == 0) return idom;
  idom[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t b : cfg.rpo) {
      if (b == 0) continue;
      uint32_t new_idom = kNoBlock;
      for (uint32_t p : cfg.preds[b]) {
        if (idom[p] == kNoBlock) continue;  // not yet processed/unreachable
        new_idom = (new_idom == kNoBlock)
                       ? p
                       : intersect(p, new_idom, idom, cfg.rpo_index);
      }
      if (new_idom != kNoBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

std::vector<uint32_t> compute_ipdom(const Cfg& cfg) {
  const uint32_t n = cfg.num_blocks();
  // Reverse CFG with virtual exit node `n`.  Exit blocks (no successors)
  // connect to the virtual exit.
  const uint32_t vexit = n;
  std::vector<std::vector<uint32_t>> rsuccs(n + 1), rpreds(n + 1);
  for (uint32_t b = 0; b < n; ++b) {
    if (cfg.succs[b].empty()) {
      rsuccs[vexit].push_back(b);
      rpreds[b].push_back(vexit);
    }
    for (uint32_t s : cfg.succs[b]) {
      rsuccs[s].push_back(b);
      rpreds[b].push_back(s);
    }
  }

  // RPO of the reverse graph from vexit.
  std::vector<uint8_t> state(n + 1, 0);
  std::vector<uint32_t> post;
  std::vector<std::pair<uint32_t, size_t>> stack;
  stack.emplace_back(vexit, 0);
  state[vexit] = 1;
  while (!stack.empty()) {
    auto& [b, i] = stack.back();
    if (i < rsuccs[b].size()) {
      const uint32_t s = rsuccs[b][i++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  std::vector<uint32_t> rpo(post.rbegin(), post.rend());
  std::vector<uint32_t> rpo_index(n + 1, UINT32_MAX);
  for (uint32_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  std::vector<uint32_t> ipdom(n + 1, kNoBlock);
  ipdom[vexit] = vexit;
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t b : rpo) {
      if (b == vexit) continue;
      uint32_t nd = kNoBlock;
      for (uint32_t p : rpreds[b]) {
        if (ipdom[p] == kNoBlock) continue;
        nd = (nd == kNoBlock) ? p : intersect(p, nd, ipdom, rpo_index);
      }
      if (nd != kNoBlock && ipdom[b] != nd) {
        ipdom[b] = nd;
        changed = true;
      }
    }
  }
  std::vector<uint32_t> out(n, kNoBlock);
  for (uint32_t b = 0; b < n; ++b)
    out[b] = (ipdom[b] == vexit) ? kNoBlock : ipdom[b];
  return out;
}

std::vector<std::vector<uint32_t>> compute_dominance_frontiers(
    const Cfg& cfg, const std::vector<uint32_t>& idom) {
  const uint32_t n = cfg.num_blocks();
  std::vector<std::vector<uint32_t>> df(n);
  for (uint32_t b = 0; b < n; ++b) {
    if (cfg.preds[b].size() < 2) continue;
    for (uint32_t p : cfg.preds[b]) {
      uint32_t runner = p;
      while (runner != kNoBlock && runner != idom[b]) {
        auto& v = df[runner];
        if (std::find(v.begin(), v.end(), b) == v.end()) v.push_back(b);
        if (runner == idom[runner]) break;  // reached entry
        runner = idom[runner];
      }
    }
  }
  return df;
}

}  // namespace gpurf::analysis
