#include "analysis/liveness.hpp"

#include "analysis/uses.hpp"
#include "common/error.hpp"

namespace gpurf::analysis {

using gpurf::ir::Kernel;
using gpurf::ir::Type;

Liveness compute_liveness(const Kernel& k, const Cfg& cfg) {
  const uint32_t nb = cfg.num_blocks();
  const uint32_t nr = k.num_regs();

  // Per-block use (upward-exposed) and def (fully-defined) sets.
  std::vector<DynBitset> use(nb, DynBitset(nr)), def(nb, DynBitset(nr));
  for (uint32_t b = 0; b < nb; ++b) {
    for (const auto& in : k.blocks[b].insts) {
      for_each_use(in, [&](uint32_t r) {
        if (!def[b].test(r)) use[b].set(r);
      });
      const uint32_t d = def_of(in);
      if (d != gpurf::ir::kNoReg) {
        if (is_partial_def(in) && !def[b].test(d)) use[b].set(d);
        def[b].set(d);
      }
    }
  }

  Liveness lv;
  lv.live_in.assign(nb, DynBitset(nr));
  lv.live_out.assign(nb, DynBitset(nr));

  // Iterate to fixpoint, walking post-order (reverse of RPO) for speed.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = cfg.rpo.rbegin(); it != cfg.rpo.rend(); ++it) {
      const uint32_t b = *it;
      DynBitset out(nr);
      for (uint32_t s : cfg.succs[b]) out.merge(lv.live_in[s]);
      DynBitset in = out;
      in.and_not(def[b]);
      in.merge(use[b]);
      if (!(out == lv.live_out[b])) {
        lv.live_out[b] = out;
        changed = true;
      }
      if (!(in == lv.live_in[b])) {
        lv.live_in[b] = std::move(in);
        changed = true;
      }
    }
  }

  lv.live_in[0].for_each_set(
      [&](size_t r) { lv.undefined_uses.push_back(static_cast<uint32_t>(r)); });

  // Pressure: walk each block backward from live_out, tracking the set of
  // live data registers.
  auto is_data = [&](uint32_t r) { return k.regs[r].type != Type::PRED; };
  uint32_t max_pressure = 0;
  for (uint32_t b = 0; b < nb; ++b) {
    DynBitset live = lv.live_out[b];
    auto count_data = [&]() {
      uint32_t c = 0;
      live.for_each_set([&](size_t r) {
        if (is_data(static_cast<uint32_t>(r))) ++c;
      });
      return c;
    };
    max_pressure = std::max(max_pressure, count_data());
    for (auto it = k.blocks[b].insts.rbegin(); it != k.blocks[b].insts.rend();
         ++it) {
      const auto& in = *it;
      const uint32_t d = def_of(in);
      if (d != gpurf::ir::kNoReg && !is_partial_def(in)) live.reset(d);
      for_each_use(in, [&](uint32_t r) { live.set(r); });
      if (d != gpurf::ir::kNoReg && is_partial_def(in)) live.set(d);
      max_pressure = std::max(max_pressure, count_data());
    }
  }
  lv.max_pressure = max_pressure;
  return lv;
}

std::vector<DynBitset> build_interference(const Kernel& k, const Cfg& cfg,
                                          const Liveness& live) {
  const uint32_t nr = k.num_regs();
  std::vector<DynBitset> adj(nr, DynBitset(nr));
  auto is_data = [&](uint32_t r) { return k.regs[r].type != Type::PRED; };
  auto add_edges_from = [&](uint32_t d, const DynBitset& liveset) {
    if (!is_data(d)) return;
    liveset.for_each_set([&](size_t rr) {
      const uint32_t r = static_cast<uint32_t>(rr);
      if (r == d || !is_data(r)) return;
      adj[d].set(r);
      adj[r].set(d);
    });
  };

  for (uint32_t b = 0; b < cfg.num_blocks(); ++b) {
    DynBitset cur = live.live_out[b];
    for (auto it = k.blocks[b].insts.rbegin(); it != k.blocks[b].insts.rend();
         ++it) {
      const auto& in = *it;
      const uint32_t d = def_of(in);
      if (d != gpurf::ir::kNoReg) {
        if (is_partial_def(in)) cur.set(d);
        // The def interferes with everything live across it.
        add_edges_from(d, cur);
        if (!is_partial_def(in)) cur.reset(d);
      }
      for_each_use(in, [&](uint32_t r) { cur.set(r); });
    }
  }
  return adj;
}

}  // namespace gpurf::analysis
