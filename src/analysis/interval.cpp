#include "analysis/interval.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gpurf::analysis {

std::string Interval::str() const {
  if (is_empty()) return "[]";
  std::string l = lo_inf() ? "-inf" : std::to_string(lo);
  std::string h = hi_inf() ? "+inf" : std::to_string(hi);
  return "[" + l + "," + h + "]";
}

int64_t sat(int64_t v) {
  return std::clamp(v, Interval::kNegInf, Interval::kPosInf);
}

int64_t sat_add(int64_t a, int64_t b) {
  // Domain values are within +/- 2^62 / 4 so int64 addition cannot overflow
  // after the operands are saturated.
  if (a <= Interval::kNegInf || b <= Interval::kNegInf) {
    GPURF_ASSERT(!(a >= Interval::kPosInf || b >= Interval::kPosInf),
                 "inf + -inf in interval arithmetic");
    return Interval::kNegInf;
  }
  if (a >= Interval::kPosInf || b >= Interval::kPosInf)
    return Interval::kPosInf;
  return sat(a + b);
}

int64_t sat_mul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  const bool neg = (a < 0) != (b < 0);
  if (a <= Interval::kNegInf || a >= Interval::kPosInf ||
      b <= Interval::kNegInf || b >= Interval::kPosInf)
    return neg ? Interval::kNegInf : Interval::kPosInf;
  // Detect overflow with 128-bit arithmetic.
  const __int128 p = static_cast<__int128>(a) * static_cast<__int128>(b);
  if (p >= static_cast<__int128>(Interval::kPosInf)) return Interval::kPosInf;
  if (p <= static_cast<__int128>(Interval::kNegInf)) return Interval::kNegInf;
  return static_cast<int64_t>(p);
}

Interval iv_union(const Interval& a, const Interval& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval iv_intersect(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  const int64_t l = std::max(a.lo, b.lo);
  const int64_t h = std::min(a.hi, b.hi);
  if (l > h) return Interval::empty();
  return {l, h};
}

namespace {
bool any_empty(const Interval& a, const Interval& b) {
  return a.is_empty() || b.is_empty();
}
}  // namespace

Interval iv_add(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  return {sat_add(a.lo, b.lo), sat_add(a.hi, b.hi)};
}

Interval iv_sub(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  return {sat_add(a.lo, -sat(b.hi)), sat_add(a.hi, -sat(b.lo))};
}

Interval iv_mul(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  const int64_t c[4] = {sat_mul(a.lo, b.lo), sat_mul(a.lo, b.hi),
                        sat_mul(a.hi, b.lo), sat_mul(a.hi, b.hi)};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval iv_div(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  // Remove 0 from the divisor range; if the divisor is exactly {0} the
  // result is undefined behaviour at run time -> return top conservatively.
  Interval d = b;
  if (d.lo == 0 && d.hi == 0) return Interval::top();
  if (d.lo == 0) d.lo = 1;
  if (d.hi == 0) d.hi = -1;
  if (d.lo > d.hi) return Interval::top();  // divisor range was {-k..k}\{0}? keep simple
  if (d.contains(0)) {
    // Divisor straddles zero: result magnitude is bounded by |a|.
    const int64_t m = std::max(std::abs(sat(a.lo)), std::abs(sat(a.hi)));
    if (a.lo_inf() || a.hi_inf()) return Interval::top();
    return {-m, m};
  }
  auto q = [](int64_t x, int64_t y) -> int64_t {
    if (x <= Interval::kNegInf)
      return y > 0 ? Interval::kNegInf : Interval::kPosInf;
    if (x >= Interval::kPosInf)
      return y > 0 ? Interval::kPosInf : Interval::kNegInf;
    return x / y;  // trunc toward zero, matching the ISA
  };
  const int64_t c[4] = {q(a.lo, d.lo), q(a.lo, d.hi), q(a.hi, d.lo),
                        q(a.hi, d.hi)};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval iv_rem(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  // a % b has |result| < max(|b|) and shares a's sign (C semantics).
  int64_t bmax = std::max(std::abs(sat(b.lo)), std::abs(sat(b.hi)));
  if (b.lo_inf() || b.hi_inf()) bmax = Interval::kPosInf;
  int64_t lo = 0, hi = 0;
  if (a.lo < 0) lo = -sat_add(bmax, -1);
  if (a.hi > 0) hi = sat_add(bmax, -1);
  // Additionally bounded by a itself when a is small.
  if (!a.lo_inf()) lo = std::max(lo, std::min<int64_t>(a.lo, 0));
  if (!a.hi_inf()) hi = std::min(hi, std::max<int64_t>(a.hi, 0));
  return {lo, hi};
}

Interval iv_min(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval iv_max(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval iv_abs(const Interval& a) {
  if (a.is_empty()) return a;
  if (a.lo >= 0) return a;
  if (a.hi <= 0) return {-sat(a.hi), -sat(a.lo)};
  return {0, std::max(-sat(a.lo), sat(a.hi))};
}

Interval iv_neg(const Interval& a) {
  if (a.is_empty()) return a;
  return {-sat(a.hi), -sat(a.lo)};
}

namespace {
// Smallest 2^k - 1 >= v, for nonnegative v (used for or/xor upper bounds).
int64_t pow2m1_at_least(int64_t v) {
  if (v <= 0) return 0;
  if (v >= Interval::kPosInf) return Interval::kPosInf;
  int64_t m = 1;
  while (m - 1 < v && m < (int64_t(1) << 62)) m <<= 1;
  return m - 1;
}
}  // namespace

Interval iv_and(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  if (a.lo >= 0 && b.lo >= 0) {
    // Nonnegative & nonnegative: 0 <= a&b <= min(max a, max b).
    int64_t hi = std::min(sat(a.hi), sat(b.hi));
    return {0, hi};
  }
  if (b.lo >= 0) return {0, sat(b.hi)};  // mask by nonnegative b
  if (a.lo >= 0) return {0, sat(a.hi)};
  return Interval::full_s32();
}

Interval iv_or(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  if (a.lo >= 0 && b.lo >= 0) {
    const int64_t hi = pow2m1_at_least(std::max(sat(a.hi), sat(b.hi)));
    return {std::max(a.lo, b.lo), hi};
  }
  return Interval::full_s32();
}

Interval iv_xor(const Interval& a, const Interval& b) {
  if (any_empty(a, b)) return Interval::empty();
  if (a.lo >= 0 && b.lo >= 0) {
    const int64_t hi = pow2m1_at_least(std::max(sat(a.hi), sat(b.hi)));
    return {0, hi};
  }
  return Interval::full_s32();
}

Interval iv_not(const Interval& a) {
  if (a.is_empty()) return a;
  // ~x == -x - 1
  return {sat_add(-sat(a.hi), -1), sat_add(-sat(a.lo), -1)};
}

namespace {
int64_t shl_one(int64_t v, int64_t s) {
  if (v <= Interval::kNegInf || v >= Interval::kPosInf)
    return v;
  if (s < 0) s = 0;
  if (s > 31) s = 31;
  return sat_mul(v, int64_t(1) << s);
}
}  // namespace

Interval iv_shl(const Interval& a, const Interval& sh) {
  if (any_empty(a, sh)) return Interval::empty();
  const int64_t s_lo = std::clamp<int64_t>(sh.lo, 0, 31);
  const int64_t s_hi = std::clamp<int64_t>(sh.hi, 0, 31);
  const int64_t c[4] = {shl_one(a.lo, s_lo), shl_one(a.lo, s_hi),
                        shl_one(a.hi, s_lo), shl_one(a.hi, s_hi)};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval iv_shr_s(const Interval& a, const Interval& sh) {
  if (any_empty(a, sh)) return Interval::empty();
  const int64_t s_lo = std::clamp<int64_t>(sh.lo, 0, 31);
  const int64_t s_hi = std::clamp<int64_t>(sh.hi, 0, 31);
  auto shr1 = [](int64_t v, int64_t s) -> int64_t {
    if (v <= Interval::kNegInf || v >= Interval::kPosInf) return v;
    return v >> s;
  };
  const int64_t c[4] = {shr1(a.lo, s_lo), shr1(a.lo, s_hi),
                        shr1(a.hi, s_lo), shr1(a.hi, s_hi)};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval iv_shr_u(const Interval& a, const Interval& sh) {
  if (any_empty(a, sh)) return Interval::empty();
  if (a.lo < 0) return Interval::full_u32();  // bit pattern reinterpretation
  return iv_shr_s(a, sh);
}

}  // namespace gpurf::analysis
