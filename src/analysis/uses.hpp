#pragma once
// Use/def helpers shared by liveness, SSA construction and the allocators.

#include "ir/instruction.hpp"

namespace gpurf::analysis {

/// Invoke fn(reg_id) for every register read by `in` (sources + guard).
template <typename Fn>
void for_each_use(const gpurf::ir::Instruction& in, Fn&& fn) {
  for (int i = 0; i < in.num_srcs; ++i)
    if (in.srcs[i].is_reg()) fn(in.srcs[i].index);
  if (in.guard != gpurf::ir::kNoReg) fn(in.guard);
}

/// The register defined by `in`, or kNoReg.
inline uint32_t def_of(const gpurf::ir::Instruction& in) {
  return in.info().has_dst ? in.dst : gpurf::ir::kNoReg;
}

/// A guarded (predicated) definition only partially defines its destination:
/// inactive lanes keep the old value, so the old value must stay live.
inline bool is_partial_def(const gpurf::ir::Instruction& in) {
  return in.info().has_dst && in.guard != gpurf::ir::kNoReg;
}

}  // namespace gpurf::analysis
