#pragma once
// Backward dataflow liveness over virtual registers, register-pressure
// measurement, and the interference graph used by both allocators.
//
// Register pressure is defined as in the paper (§2): the maximum number of
// live 32-bit data registers at any program point; predicate registers live
// in a separate predicate file and are not counted.

#include <cstdint>
#include <vector>

#include "analysis/cfg.hpp"
#include "common/bitset.hpp"
#include "ir/kernel.hpp"

namespace gpurf::analysis {

struct Liveness {
  std::vector<DynBitset> live_in;   ///< per block
  std::vector<DynBitset> live_out;  ///< per block
  /// Maximum simultaneous live *data* (non-predicate) registers.
  uint32_t max_pressure = 0;
  /// Registers live-in at the entry block — must be empty for well-formed
  /// kernels (no use of an undefined register).  Exposed for tests.
  std::vector<uint32_t> undefined_uses;
};

Liveness compute_liveness(const gpurf::ir::Kernel& k, const Cfg& cfg);

/// Symmetric interference graph over data registers: adj[r] has bit s set if
/// r and s are simultaneously live (or co-defined).  Predicate registers get
/// empty rows.
std::vector<DynBitset> build_interference(const gpurf::ir::Kernel& k,
                                          const Cfg& cfg,
                                          const Liveness& live);

}  // namespace gpurf::analysis
