#pragma once
// Integer interval domain for the static range analysis (Pereira et al.,
// CGO'13).  Values live in a signed 64-bit domain large enough to hold both
// s32 and u32 quantities; +/- infinity are sentinel values well inside
// int64_t so that saturating arithmetic never overflows.

#include <algorithm>
#include <cstdint>
#include <string>

namespace gpurf::analysis {

struct Interval {
  static constexpr int64_t kNegInf = INT64_MIN / 4;
  static constexpr int64_t kPosInf = INT64_MAX / 4;

  int64_t lo = 1;   // lo > hi encodes the empty interval
  int64_t hi = 0;

  static Interval empty() { return {1, 0}; }
  static Interval make(int64_t l, int64_t h) { return {l, h}; }
  static Interval point(int64_t v) { return {v, v}; }
  static Interval top() { return {kNegInf, kPosInf}; }
  static Interval full_s32() { return {INT32_MIN, INT32_MAX}; }
  static Interval full_u32() { return {0, int64_t(UINT32_MAX)}; }

  bool is_empty() const { return lo > hi; }
  bool contains(int64_t v) const { return !is_empty() && lo <= v && v <= hi; }
  bool lo_inf() const { return lo <= kNegInf; }
  bool hi_inf() const { return hi >= kPosInf; }
  bool is_bounded() const { return !is_empty() && !lo_inf() && !hi_inf(); }

  bool operator==(const Interval& o) const {
    if (is_empty() && o.is_empty()) return true;
    return lo == o.lo && hi == o.hi;
  }

  std::string str() const;
};

/// Saturate v into the sentinel-bounded domain.
int64_t sat(int64_t v);
/// Saturating add / mul on domain values (inf-aware).
int64_t sat_add(int64_t a, int64_t b);
int64_t sat_mul(int64_t a, int64_t b);

Interval iv_union(const Interval& a, const Interval& b);
Interval iv_intersect(const Interval& a, const Interval& b);

// Transfer functions.  All handle empty inputs (-> empty output) and
// infinities; results are NOT clamped to a machine type (callers clamp).
Interval iv_add(const Interval& a, const Interval& b);
Interval iv_sub(const Interval& a, const Interval& b);
Interval iv_mul(const Interval& a, const Interval& b);
Interval iv_div(const Interval& a, const Interval& b);   // trunc toward zero
Interval iv_rem(const Interval& a, const Interval& b);
Interval iv_min(const Interval& a, const Interval& b);
Interval iv_max(const Interval& a, const Interval& b);
Interval iv_abs(const Interval& a);
Interval iv_neg(const Interval& a);
Interval iv_and(const Interval& a, const Interval& b);
Interval iv_or(const Interval& a, const Interval& b);
Interval iv_xor(const Interval& a, const Interval& b);
Interval iv_not(const Interval& a);
Interval iv_shl(const Interval& a, const Interval& sh);
Interval iv_shr_s(const Interval& a, const Interval& sh);  // arithmetic
Interval iv_shr_u(const Interval& a, const Interval& sh);  // logical (u32)

}  // namespace gpurf::analysis
