#pragma once
// Instruction-granular dataflow over the decoded stream (PR 9 tentpole).
//
// `liveness.*` answers block-level questions (live-in/out, pressure,
// interference); this layer refines them to *program points* so that
// downstream consumers can reason per instruction:
//
//  * the interpreter elides quantize/range-check/writeback for destination
//    rows that are dead at the write point (ExecContext::elide_dead_writes);
//  * the slice allocator packs live ranges instead of whole-kernel maxima
//    (AllocOptions::live_intervals, via build_live_interference);
//  * the soft-error model classifies strikes against the static live mask
//    (SimStats::soft_flips_static_dead) and integrates a static upper bound
//    of the dynamic live-bit exposure;
//  * gpurf-lint / {"op":"analyze"} surface the same facts as a KernelReport.
//
// Point layout (shared with sim::SoftErrorModel): per block `size + 1`
// points, flattened block-major.  Point i of a block is "about to execute
// instruction i"; point `size` is the block's live-out.  The per-point
// transfer handles partial (guarded) definitions precisely: a guarded def
// merges into its destination, so it does not kill the old value — the
// destination is live before such a def exactly when it is live after it.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "common/bitset.hpp"
#include "ir/kernel.hpp"

namespace gpurf::analysis {

/// Half-open linear live range [begin, end) of one virtual register over
/// the flattened point order — the nesfab-style summary of where a value
/// matters.  Linear intervals over block layout order are a conservative
/// over-approximation of the exact per-point sets (holes are ignored).
struct LiveInterval {
  uint32_t reg = 0;
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t length() const { return end - begin; }
  bool overlaps(const LiveInterval& o) const {
    return begin < o.end && o.begin < end;
  }
  bool operator==(const LiveInterval&) const = default;
};

struct Dataflow {
  /// Block-level results this refinement started from.
  Liveness block;

  /// Per-point live sets, flattened block-major (one extra live-out point
  /// per block).  Index with point_index().
  std::vector<DynBitset> live_before;
  std::vector<uint32_t> point_first;  ///< per block: first point index
  std::vector<uint32_t> inst_first;   ///< per block: first instruction index
  std::vector<uint32_t> block_size;   ///< per block: instruction count

  /// Per instruction (flattened block-major): the destination is dead
  /// immediately after the write — nothing can ever read it, so the
  /// writeback (and for pure ALU ops the whole computation) is elidable.
  /// Safe for partial defs too: if the merged value is dead, so is the
  /// old value it merged with.
  std::vector<uint8_t> dead_dst;

  /// Union of every live_before point: registers whose value is read
  /// somewhere.  The complement (over appearing registers) is the
  /// "never read" set the lint reports.
  DynBitset ever_live;

  /// Linear live interval per ever-live register, sorted by reg id.
  std::vector<LiveInterval> intervals;

  /// Def-use chain summary per register: how many instructions define /
  /// read it (guard reads count as uses).
  std::vector<uint32_t> def_count;
  std::vector<uint32_t> use_count;

  uint32_t num_points = 0;
  uint32_t num_insts = 0;

  /// Point index of (blk, inst); `inst == block_size[blk]` addresses the
  /// live-out point.  Out-of-range inputs clamp (mirrors the soft-error
  /// model's contract for warps parked past the last instruction).
  uint32_t point_index(uint32_t blk, uint32_t inst) const {
    if (blk >= block_size.size()) return num_points - 1;
    if (inst > block_size[blk]) inst = block_size[blk];
    return point_first[blk] + inst;
  }

  bool live_at(uint32_t blk, uint32_t inst, uint32_t reg) const {
    const DynBitset& s = live_before[point_index(blk, inst)];
    return reg < s.size() && s.test(reg);
  }

  bool dst_dead(uint32_t blk, uint32_t inst) const {
    return dead_dst[inst_first[blk] + inst] != 0;
  }
};

Dataflow compute_dataflow(const gpurf::ir::Kernel& k, const Cfg& cfg);

/// Liveness-refined interference (AllocOptions::live_intervals): like
/// build_interference, but a definition whose destination is dead at the
/// write point contributes no edges, and never-live registers interfere
/// with nothing — their storage may alias anything.  Sound under elided
/// dead writebacks: a dead write never reaches the register file, so it
/// cannot clobber a co-located live value.
std::vector<DynBitset> build_live_interference(const gpurf::ir::Kernel& k,
                                               const Cfg& cfg,
                                               const Dataflow& df);

/// One statically-dead write site.
struct DeadWrite {
  uint32_t blk = 0;
  uint32_t inst = 0;
  uint32_t reg = 0;

  bool operator==(const DeadWrite&) const = default;
};

/// One static out-of-bounds finding (ISSUE 10): a memory access whose
/// statically derived address interval is not contained in its buffer.
/// `definite` means the whole interval lies outside (the dynamic bounds
/// check fires on every execution of the site); otherwise only part of
/// the interval escapes — or the address is statically unknown
/// (`addr_known` false) — and the finding is a warning.
struct OobFinding {
  uint32_t blk = 0;
  uint32_t inst = 0;       ///< index within blocks[blk].insts
  bool is_store = false;
  bool shared = false;     ///< shared-memory access (else global)
  bool definite = false;
  bool addr_known = false; ///< static interval exact (lo/hi meaningful)
  int64_t lo = 0;          ///< word-address interval, valid if addr_known
  int64_t hi = 0;

  bool operator==(const OobFinding&) const = default;
};

/// Kernel verifier/lint summary (gpurf-lint, {"op":"analyze"}).
struct KernelReport {
  std::string kernel;
  uint32_t num_regs = 0;
  uint32_t num_blocks = 0;
  uint32_t num_insts = 0;

  /// Paper §2 pressure: max simultaneously live data registers.
  uint32_t static_pressure = 0;
  /// Whole-kernel colouring pressure (alloc::baseline_pressure) — filled
  /// by callers that may depend on the alloc layer; 0 = not computed.
  uint32_t alloc_pressure = 0;
  /// Colouring pressure under the liveness-refined interference graph —
  /// filled by the same callers; 0 = not computed.
  uint32_t live_interval_pressure = 0;

  /// Register names indexed by reg id (diagnostics; ids elsewhere).
  std::vector<std::string> reg_names;

  /// Registers read on some path before any definition (entry live-in).
  std::vector<uint32_t> undefined_reads;
  /// Writes whose destination is dead at the write point.
  std::vector<DeadWrite> dead_writes;
  /// Registers that appear in the program but are never read.
  std::vector<uint32_t> never_read;
  std::vector<LiveInterval> intervals;

  // --- Static memory-access analysis (ISSUE 10).  Filled by
  // analysis::apply_memory_findings; mem_analyzed gates all of it.  The
  // workload path supplies full instance context (launch geometry, params,
  // global-memory size); a bare kernel is analysed at the default launch
  // with gmem_words = 0, which disables global OOB classification.
  bool mem_analyzed = false;
  uint64_t gmem_words = 0;  ///< 0 = no instance context for global OOB
  uint32_t mem_insts = 0;   ///< memory access sites in the kernel
  uint32_t mem_proven = 0;  ///< sites statically proven in bounds
  std::vector<OobFinding> oob_errors;    ///< definite OOB (always traps)
  std::vector<OobFinding> oob_warnings;  ///< possible OOB (unproven)
  /// Parallel-execution contract verdicts over per-block footprints.
  bool footprints_computed = false;
  bool stores_disjoint = false;  ///< no two blocks store to the same word
  bool loads_local = false;      ///< no block reads another block's stores
  bool disjoint_waived = false;  ///< WorkloadSpec::assume_disjoint
  /// Per-block footprint as an affine function of block id (empty when the
  /// footprint is not affine or was not computed), e.g. "[0+192b, 191+192b]".
  std::string store_affine;
  std::string load_affine;

  bool clean() const { return undefined_reads.empty(); }
};

/// Assemble the report's analysis-layer fields (the two allocator pressure
/// fields stay 0 — callers with access to alloc:: fill them).
KernelReport build_kernel_report(const gpurf::ir::Kernel& k, const Cfg& cfg,
                                 const Dataflow& df);

}  // namespace gpurf::analysis
