#pragma once
// Static memory-access analysis (ISSUE 10): per-instruction address bounds
// and per-block store/load footprints, derived from the same Pereira-style
// constraint solver the paper uses for value ranges (§4.2) — extended from
// "how many bits does this register need" to "which words can this
// instruction touch".
//
// Inputs beyond the kernel text: the LaunchConfig (seeds %tid/%ctaid) and,
// critically, the exact parameter words of one launch — buffer base
// addresses arrive as plain integer params with no useful declared range,
// so without value seeding nothing about global memory is provable.  The
// replay engine knows the params before execution starts, which is what
// makes this a *static* pre-execution analysis of a *concrete* launch.
//
// Three consumers (mirrors PR 9's dead-write shape):
//   * perf      — prove_in_bounds() flags accesses whose dynamic bounds
//                 check can never fire; ExecContext::elide_bounds_checks
//                 skips them, bit-identical by construction;
//   * gating    — stores_disjoint / loads_local verdicts let Workload::run
//                 and Engine::simulate choose block-parallel / sharded
//                 execution only when the documented memory contract
//                 (sim/gpu.hpp) is statically verified (or waived);
//   * lint      — definite / possible OOB findings and overlap verdicts
//                 surface through KernelReport, gpurf-lint and the daemon.
//
// Soundness rules inherited from the interpreter's address arithmetic
// (`addr = (int64)(u32)reg + mem_offset`):
//   * a solved value interval maps to an address interval only when it
//     already fits u32 ([0, 2^32-1]); anything else may wrap at the u32
//     reinterpretation and widens to full u32;
//   * unreachable sites (never renamed from entry) can never execute and
//     are trivially proven;
//   * TEX2D is clamp-addressed and read-only — excluded by construction.
//
// Per-block footprints re-run the solver once per block with %ctaid pinned
// to that block's coordinates; grids larger than `max_blocks` leave the
// disjointness verdicts unproven (the caller falls back to the serial
// path).  Footprints that form an affine progression in the linear block
// id are summarised in stride/offset form.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/interval.hpp"
#include "analysis/range_analysis.hpp"
#include "ir/kernel.hpp"

namespace gpurf::analysis {

/// Word size of a kernel's (static) shared-memory image.  Must match
/// BlockExec's allocation exactly — the interpreter and the prover have to
/// agree on what "in bounds" means.
inline uint64_t shared_words(const gpurf::ir::Kernel& k) {
  return (k.shared_bytes + 3) / 4 + 1;
}

/// One static memory instruction (global or shared load/store).
struct MemAccess {
  uint32_t blk = 0;
  uint32_t inst = 0;   ///< index within blocks[blk].insts
  uint32_t flat = 0;   ///< block-major flattened index (DecodedInst::flat)
  bool is_store = false;
  bool is_global = false;  ///< global vs shared address space
  int64_t mem_offset = 0;
  bool reached = true;     ///< statically reachable from entry
  /// Effective word-address interval (u32 reinterpretation + mem_offset
  /// applied) over the whole launch.  Meaningful only when addr_known.
  Interval addr = Interval::empty();
  bool addr_known = false;  ///< no u32 wrap — `addr` soundly bounds every
                            ///< dynamic address of this site
};

/// Whole-block footprint as an affine function of the linear block id b
/// (b = ctaid.y * grid_x + ctaid.x):  F(b) = [lo0 + stride*b,
/// hi0 + stride*b].  `valid` only when every checked block fits exactly.
struct AffineFootprint {
  bool valid = false;
  int64_t lo0 = 0;
  int64_t hi0 = 0;
  int64_t stride = 0;

  std::string to_string() const;
};

struct MemoryAccessOptions {
  /// Exact runtime parameter words of the launch (base addresses).  Null
  /// leaves params at their declared contracts — shared-memory proofs
  /// still work, global ones almost never do.
  const std::vector<uint32_t>* param_values = nullptr;
  /// Cap on per-block footprint solves; grids beyond it leave the
  /// disjointness verdicts unproven.
  uint32_t max_blocks = 4096;
  /// Skip the per-block footprint solves entirely (elision-only callers).
  bool footprints = true;
};

struct MemoryAccessAnalysis {
  /// Every LD/ST site, block-major (TEX2D excluded).
  std::vector<MemAccess> accesses;
  uint32_t num_global = 0;
  uint32_t num_shared = 0;
  uint32_t num_insts = 0;  ///< total flattened instructions in the kernel

  // --- launch-wide disjointness verdicts (global space only; shared
  // memory is private per block by construction) ---
  bool footprints_computed = false;  ///< per-block solves ran for all blocks
  uint32_t blocks_checked = 0;
  /// No global word is stored by two different blocks.
  bool stores_disjoint = false;
  /// No block loads a global word another block stores (the block-parallel
  /// replay contract; weaker than stores_disjoint + loads_local combined
  /// being the sharded-sim contract).
  bool loads_local = false;

  /// Per-block merged footprint hulls (diagnostics; size == blocks_checked
  /// when footprints_computed).  Empty interval = block touches nothing.
  std::vector<Interval> store_hull;
  std::vector<Interval> load_hull;
  AffineFootprint store_affine;
  AffineFootprint load_affine;
};

MemoryAccessAnalysis analyze_memory_accesses(
    const gpurf::ir::Kernel& k, const gpurf::ir::LaunchConfig& lc,
    const MemoryAccessOptions& opts = {});

/// Per-flattened-instruction proof flags: out[flat] == 1 iff that site's
/// every dynamic address is statically proven inside its target space
/// (`gmem_words` for global, shared_words(k) for shared — pass the exact
/// image sizes the interpreter will run against).  Non-memory instructions
/// stay 0.  Sites never reached are proven (they cannot execute).
std::vector<uint8_t> prove_in_bounds(const MemoryAccessAnalysis& ma,
                                     uint64_t gmem_words,
                                     uint64_t shared_word_count);

struct KernelReport;  // dataflow.hpp

/// Fill a KernelReport's static-memory section (lint consumer): proof
/// coverage counts, definite / possible OOB findings classified against
/// the given image sizes (gmem_words == 0 skips global classification —
/// no instance context), and the disjointness verdicts.  `proven` is
/// prove_in_bounds() output for the same sizes; `waived` mirrors the
/// workload's assume_disjoint flag into the report.
void apply_memory_findings(KernelReport& rep, const MemoryAccessAnalysis& ma,
                           const std::vector<uint8_t>& proven,
                           uint64_t gmem_words, uint64_t shared_word_count,
                           bool waived);

}  // namespace gpurf::analysis
