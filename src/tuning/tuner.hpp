#pragma once
// Floating-point precision tuning (paper §4.1, adopting Angerd et al.,
// TACO 2017).
//
// The tuner searches, per floating-point register, for the narrowest
// Table-3 format such that the program still meets a user-selected quality
// threshold on a set of representative sample inputs.  Like the original
// heuristic it is data driven: no guarantee is given for inputs outside the
// sample set (§4.1).
//
// Search strategy: greedy monotone descent per register (try the next
// narrower format while quality holds), iterated over all registers until a
// fixpoint, followed by a final validation run.  Each candidate assignment
// is evaluated by actually executing the kernel with writes quantized
// through the candidate formats (exec::PrecisionMap) and scoring the output
// against the exact reference.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/cancel.hpp"
#include "exec/machine.hpp"
#include "ir/kernel.hpp"
#include "quality/metrics.hpp"

namespace gpurf::tuning {

/// Evaluates one candidate precision assignment against the quality metric.
/// Implemented by the workload harness: runs the kernel functionally on the
/// sample inputs with `pmap` active and scores the output vs. the exact
/// reference.
///
/// Concurrency contract: when TunerOptions::speculate_batch > 1 the tuner
/// calls evaluate() from multiple threads at once; implementations must be
/// safe under concurrent evaluation (evaluate() must behave as a pure
/// function of `pmap` apart from thread-safe bookkeeping).
class QualityProbe {
 public:
  virtual ~QualityProbe() = default;
  virtual double evaluate(const exec::PrecisionMap& pmap) = 0;
  virtual bool meets(double score, quality::QualityLevel level) const = 0;

  /// Score a whole speculative batch at once.  The default fans the
  /// candidates out over the shared thread pool and calls evaluate();
  /// implementations that replay several sample variants per candidate
  /// should override it to flatten (candidate x variant) into one grid, so
  /// the pool load-balances at the finer granularity (K < threads no
  /// longer strands cores).  Scores must equal per-candidate evaluate().
  virtual std::vector<double> evaluate_batch(
      const std::vector<const exec::PrecisionMap*>& pmaps);
};

struct TunerOptions {
  quality::QualityLevel level = quality::QualityLevel::kPerfect;
  int max_passes = 4;   ///< fixpoint iteration bound over all registers
  /// Speculative batch width of the greedy descent.  1 = the original
  /// serial loop.  K > 1 evaluates the next K candidates of the optimistic
  /// all-accept path concurrently and accepts the longest valid prefix;
  /// the accepted assignment is bit-for-bit identical to the serial
  /// result (only `evaluations` grows, counting the wasted speculation).
  /// <= 0 = auto: the current thread pool's width at tune time (an Engine
  /// resolves this to its own thread count at construction).
  int speculate_batch = 0;
  /// Adapt the batch width to the acceptance pattern: a rejection halves K
  /// (quality failed early — deep speculation was wasted), a fully
  /// accepted batch doubles it, clamped to [1, speculate_batch_max].  The
  /// accepted assignment stays bit-identical by construction for every K
  /// sequence, so adaptivity never changes results, only probe waste.
  bool adaptive_batch = true;
  /// Upper clamp for the adaptive width; <= 0 means 4 * speculate_batch.
  int speculate_batch_max = 0;
  /// Skip the final validation probe at the end of tune_precision.  The
  /// probe contract makes evaluate() a pure function of the pmap, so the
  /// validation score always equals the score of the last accepted
  /// evaluation; callers that tune several quality levels back-to-back
  /// (the pipeline tunes perfect + high) set this and batch all final
  /// validations through one QualityProbe::evaluate_batch call instead of
  /// running them serially.  final_score is still set (to the accepted
  /// score) and the deferred validation must still be performed by the
  /// caller — see workloads::compute_pipeline.
  bool defer_validation = false;
  /// Slice budget per tuned register (PR 7, fault-aware re-tuning): when in
  /// [1, 7], every target register *starts* at the widest Table-3 format
  /// occupying at most this many 4-bit slices (the narrowest format when
  /// even that exceeds the budget), and the quality threshold becomes
  /// best-effort — the full-precision quality check and the final
  /// validation assert are skipped, because a dense permanent-fault map
  /// may force precision below the threshold to keep values inside the
  /// compressed file instead of the spill store.  The greedy descent still
  /// only narrows *further* when quality holds.  Values <= 0 or >= 8 are
  /// unconstrained: the tuner's behaviour — and its output — is pinned
  /// bit-identical to a hint of 0 (retune_test relies on this).
  int max_slices_hint = 0;
  /// Cooperative cancellation / deadline checkpoint, polled between probe
  /// batches (never mid-probe), plus the tuner's progress mailbox
  /// (pass / evaluation counters).  Null disables both.  When a stop is
  /// requested, tune_precision throws common::CancelledError without
  /// touching any caller-visible cache — partial descent state lives only
  /// in the local TuneResult, so a cancelled tune leaves nothing behind.
  /// (Non-const: the tuner writes the token's progress counters.)
  gpurf::common::CancelToken* cancel = nullptr;
};

struct TuneResult {
  exec::PrecisionMap pmap;     ///< format per register (f32 regs narrowed)
  int evaluations = 0;         ///< number of functional quality probes
  int f32_regs = 0;            ///< number of tuned registers
  int slices_before = 0;       ///< total f32 slices at 32-bit
  int slices_after = 0;        ///< total f32 slices after tuning
  double final_score = 0.0;    ///< quality score of the accepted assignment
};

TuneResult tune_precision(const gpurf::ir::Kernel& k, QualityProbe& probe,
                          const TunerOptions& opt);

}  // namespace gpurf::tuning
