#include "tuning/tuner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace gpurf::tuning {

namespace ir = gpurf::ir;
using gpurf::exec::PrecisionMap;
using gpurf::fp::FloatFormat;
using gpurf::fp::table3_formats;

namespace {

/// Count static uses of each register — registers with more uses are tuned
/// first so that high-traffic values settle before low-traffic ones refine
/// around them (the TACO'17 heuristic orders by estimated impact).
std::vector<uint32_t> static_use_counts(const ir::Kernel& k) {
  std::vector<uint32_t> uses(k.num_regs(), 0);
  for (const auto& b : k.blocks)
    for (const auto& in : b.insts) {
      for (int i = 0; i < in.num_srcs; ++i)
        if (in.srcs[i].is_reg()) ++uses[in.srcs[i].index];
      if (in.info().has_dst) ++uses[in.dst];
    }
  return uses;
}

}  // namespace

std::vector<double> QualityProbe::evaluate_batch(
    const std::vector<const exec::PrecisionMap*>& pmaps) {
  std::vector<double> scores(pmaps.size(), 0.0);
  gpurf::common::parallel_for(
      pmaps.size(), [&](size_t i) { scores[i] = evaluate(*pmaps[i]); });
  return scores;
}

TuneResult tune_precision(const ir::Kernel& k, QualityProbe& probe,
                          const TunerOptions& opt_in) {
  TunerOptions opt = opt_in;
  if (opt.speculate_batch <= 0)
    opt.speculate_batch = gpurf::common::ThreadPool::current().size();

  TuneResult res;
  res.pmap.per_reg.assign(k.num_regs(), gpurf::fp::format_for_bits(32));

  // Registers eligible for tuning: f32 registers that the program defines.
  const auto uses = static_use_counts(k);
  std::vector<uint32_t> targets;
  for (uint32_t r = 0; r < k.num_regs(); ++r)
    if (k.regs[r].type == ir::Type::F32 && uses[r] > 0) targets.push_back(r);
  std::sort(targets.begin(), targets.end(), [&](uint32_t a, uint32_t b) {
    if (uses[a] != uses[b]) return uses[a] > uses[b];
    return a < b;
  });

  res.f32_regs = static_cast<int>(targets.size());
  res.slices_before = 8 * res.f32_regs;

  // Slice-budget constraint (PR 7): cap every target's starting format at
  // the widest Table-3 format within the budget before any probe runs.
  // The descent below then only narrows further, so the budget is a hard
  // ceiling on slices_after per register; quality becomes best-effort.
  const bool constrained = opt.max_slices_hint > 0 && opt.max_slices_hint < 8;
  if (constrained) {
    const auto& fmts = table3_formats();
    gpurf::fp::FloatFormat cap = fmts.back();  // narrowest, if nothing fits
    for (const auto& f : fmts)
      if (f.slices() <= opt.max_slices_hint) {
        cap = f;
        break;
      }
    for (uint32_t r : targets) res.pmap.per_reg[r] = cap;
  }

  // Cancellation/deadline checkpoint + progress mailbox.  Polled before
  // every probe batch so a stop request is honoured within one batch; the
  // evaluation counter is published after each batch returns.
  auto checkpoint = [&] {
    if (opt.cancel) {
      opt.cancel->tuner_evaluations.store(res.evaluations,
                                          std::memory_order_relaxed);
      opt.cancel->checkpoint();
    }
  };

  const auto& formats = table3_formats();  // widest (32) .. narrowest (8)

  // Index of a register's current format in the Table-3 list.
  auto fmt_index_in = [&](const PrecisionMap& pm, uint32_t r) {
    for (size_t i = 0; i < formats.size(); ++i)
      if (formats[i] == pm.per_reg[r]) return i;
    GPURF_ASSERT(false, "format escaped Table-3 set");
    return size_t{0};
  };
  auto fmt_index = [&](uint32_t r) { return fmt_index_in(res.pmap, r); };

  checkpoint();
  double last_score = probe.evaluate(res.pmap);
  ++res.evaluations;
  if (!constrained)
    GPURF_CHECK(probe.meets(last_score, opt.level),
                "kernel '" << k.name
                           << "' fails the quality threshold at full "
                              "precision; the metric or reference is broken");

  for (int pass = 0; pass < opt.max_passes; ++pass) {
    bool changed = false;
    if (opt.cancel)
      opt.cancel->tuner_pass.store(pass + 1, std::memory_order_relaxed);
    if (opt.speculate_batch <= 1) {
      // Original serial greedy descent.
      for (uint32_t r : targets) {
        size_t idx = fmt_index(r);
        while (idx + 1 < formats.size()) {
          const FloatFormat trial = formats[idx + 1];
          const FloatFormat saved = res.pmap.per_reg[r];
          res.pmap.per_reg[r] = trial;
          checkpoint();
          const double score = probe.evaluate(res.pmap);
          ++res.evaluations;
          if (probe.meets(score, opt.level)) {
            last_score = score;
            ++idx;
            changed = true;
          } else {
            res.pmap.per_reg[r] = saved;
            break;
          }
        }
      }
    } else {
      // Speculative batch descent.  The serial loop's candidate sequence
      // is deterministic along the optimistic all-accept path: narrow the
      // cursor register one step at a time until it bottoms out, then move
      // to the next target.  We materialise the next K cumulative
      // assignments of that path, evaluate them concurrently, and accept
      // the longest prefix whose probes all pass.  On the first failure
      // the serial algorithm would restore that register and move past it
      // — which is exactly how the cursor advances here — so the accepted
      // assignment matches the serial run bit for bit, for every K.
      const size_t k_init = static_cast<size_t>(opt.speculate_batch);
      const size_t k_max =
          opt.speculate_batch_max > 0
              ? static_cast<size_t>(opt.speculate_batch_max)
              : 4 * k_init;
      size_t k_cur = std::min(k_init, k_max);
      size_t t = 0;  // cursor into `targets`
      while (t < targets.size()) {
        struct Candidate {
          uint32_t reg = 0;
          PrecisionMap pmap;  ///< cumulative assignment if all before pass
        };
        std::vector<Candidate> chain;
        chain.reserve(k_cur);
        {
          PrecisionMap cur = res.pmap;
          size_t ct = t;
          size_t idx = fmt_index_in(cur, targets[ct]);
          while (chain.size() < k_cur && ct < targets.size()) {
            if (idx + 1 >= formats.size()) {
              ++ct;
              if (ct < targets.size()) idx = fmt_index_in(cur, targets[ct]);
              continue;
            }
            ++idx;
            cur.per_reg[targets[ct]] = formats[idx];
            chain.push_back(Candidate{targets[ct], cur});
          }
        }
        if (chain.empty()) break;  // every remaining target is at minimum

        std::vector<const PrecisionMap*> pmaps(chain.size());
        for (size_t i = 0; i < chain.size(); ++i) pmaps[i] = &chain[i].pmap;
        checkpoint();
        const std::vector<double> scores = probe.evaluate_batch(pmaps);
        res.evaluations += static_cast<int>(chain.size());

        size_t accepted = 0;
        while (accepted < chain.size() &&
               probe.meets(scores[accepted], opt.level))
          ++accepted;

        // Adaptive width: rejections mean the optimistic path was wrong
        // early and deep speculation is waste; full acceptance means the
        // descent is on a long monotone run worth speculating deeper —
        // but only grow when the pool can actually absorb the batch (on a
        // 1-wide pool every speculated candidate is serial work, so deep
        // chains would just multiply the waste a rejection discards).
        // Results are K-invariant by construction, so the width policy
        // never affects the accepted assignment.
        if (opt.adaptive_batch) {
          const bool can_grow =
              gpurf::common::ThreadPool::current().size() > 1;
          k_cur = accepted == chain.size()
                      ? std::min(can_grow ? k_cur * 2 : k_cur, k_max)
                      : std::max<size_t>(1, k_cur / 2);
        }
        if (accepted > 0) {
          res.pmap = chain[accepted - 1].pmap;
          last_score = scores[accepted - 1];
          changed = true;
        }
        if (accepted < chain.size()) {
          // Serial semantics: the failed register keeps its last accepted
          // format and the scan moves to the register after it.
          const uint32_t failed_reg = chain[accepted].reg;
          while (t < targets.size() && targets[t] != failed_reg) ++t;
          ++t;
        } else {
          // Whole batch accepted: resume from the chain's last register,
          // which may still have narrower formats to try.
          const uint32_t tail_reg = chain.back().reg;
          while (t < targets.size() && targets[t] != tail_reg) ++t;
        }
      }
    }
    if (!changed) break;
  }

  // Final validation of the accepted assignment.  With defer_validation
  // the caller batches this probe with other pending validations; the
  // accepted score is bit-identical to what the probe would return here
  // (evaluate() is a pure function of the pmap by contract).
  if (opt.defer_validation) {
    res.final_score = last_score;
  } else {
    checkpoint();
    res.final_score = probe.evaluate(res.pmap);
    ++res.evaluations;
    GPURF_ASSERT(constrained || probe.meets(res.final_score, opt.level),
                 "accepted assignment fails validation");
  }
  if (opt.cancel)
    opt.cancel->tuner_evaluations.store(res.evaluations,
                                        std::memory_order_relaxed);

  res.slices_after = 0;
  for (uint32_t r : targets) res.slices_after += res.pmap.per_reg[r].slices();
  return res;
}

}  // namespace gpurf::tuning
