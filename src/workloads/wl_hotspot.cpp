// Hotspot (Rodinia): 2-D thermal simulation — iterative 5-point stencil
// over a shared-memory tile with halo, multiple time steps per launch
// (pyramidal structure simplified to a fixed-halo ping-pong).
//
// Table 4: % deviation metric, 31 registers/thread, 8 warps/block (16x16).
// Compression profile: moderate float state (temperatures quantized from
// sensor-style fixed-point data), plus narrow tile/coordinate integers —
// one of the kernels where the integer framework matters (§6.1).

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel hotspot
.param s32 temp_base
.param s32 power_base
.param s32 out_base
.param s32 width range(16,1024)
.param s32 height range(16,1024)
.shared 2592            // two 18x18 f32 tiles (ping-pong)
.reg s32 %tx
.reg s32 %ty
.reg s32 %bx
.reg s32 %by
.reg s32 %w
.reg s32 %h
.reg s32 %lin
.reg s32 %gx
.reg s32 %gy
.reg s32 %i
.reg s32 %sx
.reg s32 %sy
.reg s32 %cx
.reg s32 %cy
.reg s32 %wm1
.reg s32 %hm1
.reg s32 %ga
.reg s32 %sa
.reg s32 %sa2
.reg s32 %cur
.reg s32 %nxt
.reg s32 %swp
.reg s32 %step
.reg f32 %cap
.reg f32 %rx
.reg f32 %ry
.reg f32 %rz
.reg f32 %amb
.reg f32 %pw
.reg f32 %tC
.reg f32 %tL
.reg f32 %tR
.reg f32 %tU
.reg f32 %tD
.reg f32 %dh
.reg f32 %dv
.reg f32 %dz
.reg f32 %tload
.reg f32 %tmin
.reg f32 %tmax
.reg f32 %rx2
.reg f32 %ry2
.reg f32 %pscale
.reg f32 %camb
.reg f32 %rz2
.reg pred %p0

entry:
  mov.s32 %w, $width
  mov.s32 %h, $height
  mov.s32 %tx, %tid.x
  mov.s32 %ty, %tid.y
  mov.s32 %bx, %ctaid.x
  mov.s32 %by, %ctaid.y
  mad.s32 %lin, %ty, 16, %tx
  mad.s32 %gx, %bx, 16, %tx
  mad.s32 %gy, %by, 16, %ty
  sub.s32 %wm1, %w, 1
  sub.s32 %hm1, %h, 1
  mov.f32 %cap, 0.5
  mov.f32 %rx, 0.25
  mov.f32 %ry, 0.25
  mov.f32 %rz, 0.0625
  mov.f32 %amb, 0.5
  mov.f32 %rx2, 0.125
  mov.f32 %ry2, 0.125
  mov.f32 %pscale, 2.0
  mov.f32 %camb, 0.03125
  mov.f32 %rz2, 0.015625
  mov.f32 %tmin, 1000.0
  mov.f32 %tmax, -1000.0
  // power of this cell
  mad.s32 %ga, %gy, %w, %gx
  add.s32 %ga, %ga, $power_base
  ld.global.f32 %pw, [%ga]
  // cooperative load of the 18x18 halo tile into both buffers
  mov.s32 %i, %lin
load_loop:
  setp.ge.s32 %p0, %i, 324
  @%p0 bra load_done
load_body:
  rem.s32 %sx, %i, 18
  div.s32 %sy, %i, 18
  mad.s32 %cx, %bx, 16, %sx
  sub.s32 %cx, %cx, 1
  max.s32 %cx, %cx, 0
  min.s32 %cx, %cx, %wm1
  mad.s32 %cy, %by, 16, %sy
  sub.s32 %cy, %cy, 1
  max.s32 %cy, %cy, 0
  min.s32 %cy, %cy, %hm1
  mad.s32 %ga, %cy, %w, %cx
  add.s32 %ga, %ga, $temp_base
  ld.global.f32 %tload, [%ga]
  st.shared.f32 [%i], %tload
  st.shared.f32 [%i+324], %tload
  add.s32 %i, %i, 256
  bra load_loop
load_done:
  bar.sync
  mov.s32 %cur, 0
  mov.s32 %nxt, 324
  mov.s32 %step, 0
step_loop:
  setp.ge.s32 %p0, %step, 4
  @%p0 bra step_done
step_body:
  add.s32 %sx, %tx, 1
  add.s32 %sy, %ty, 1
  mad.s32 %sa, %sy, 18, %sx
  add.s32 %sa, %sa, %cur
  ld.shared.f32 %tC, [%sa]
  ld.shared.f32 %tL, [%sa-1]
  ld.shared.f32 %tR, [%sa+1]
  ld.shared.f32 %tU, [%sa-18]
  ld.shared.f32 %tD, [%sa+18]
  add.f32 %dh, %tL, %tR
  mad.f32 %dh, %tC, -2.0, %dh
  add.f32 %dv, %tU, %tD
  mad.f32 %dv, %tC, -2.0, %dv
  sub.f32 %dz, %amb, %tC
  mul.f32 %dh, %dh, %rx
  mad.f32 %dh, %dv, %ry, %dh
  mad.f32 %dh, %dz, %rz, %dh
  // second-order correction terms
  sub.f32 %dz, %tL, %tR
  mad.f32 %dh, %dz, %rx2, %dh
  sub.f32 %dz, %tU, %tD
  mad.f32 %dh, %dz, %ry2, %dh
  mad.f32 %dh, %pw, %pscale, %dh
  mad.f32 %dh, %dz, %rz2, %dh
  add.f32 %dh, %dh, %camb
  mad.f32 %tC, %dh, %cap, %tC
  // flux limiter: clamp to the extremes seen so far
  min.f32 %tmin, %tmin, %tC
  max.f32 %tmax, %tmax, %tC
  mad.s32 %sa2, %sy, 18, %sx
  add.s32 %sa2, %sa2, %nxt
  bar.sync
  st.shared.f32 [%sa2], %tC
  bar.sync
  mov.s32 %swp, %cur
  mov.s32 %cur, %nxt
  mov.s32 %nxt, %swp
  add.s32 %step, %step, 1
  bra step_loop
step_done:
  add.s32 %sx, %tx, 1
  add.s32 %sy, %ty, 1
  mad.s32 %sa, %sy, 18, %sx
  add.s32 %sa, %sa, %cur
  ld.shared.f32 %tC, [%sa]
  max.f32 %tC, %tC, %tmin
  min.f32 %tC, %tC, %tmax
  mad.s32 %ga, %gy, %w, %gx
  add.s32 %ga, %ga, $out_base
  st.global.f32 [%ga], %tC
  ret
)";

class HotspotWorkload final : public Workload {
 public:
  HotspotWorkload()
      // Waiver: 2D row-interleaved tiles (see wl_ssao.cpp) — store hulls
      // of adjacent tiles overlap as intervals though the word sets are
      // disjoint.  loads_local is proven; only sharding needs the waiver.
      : Workload(WorkloadSpec{"Hotspot", gpurf::quality::MetricKind::kDeviation,
                              2, 31, 8, /*assume_disjoint=*/true},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t tiles = scale == Scale::kFull ? 12 : 4;
    const uint32_t w = tiles * 16, h = tiles * 16;
    inst.launch.grid_x = tiles;
    inst.launch.grid_y = tiles;
    inst.launch.block_x = 16;
    inst.launch.block_y = 16;

    gpurf::Pcg32 rng(0x5057u + variant, 77);
    std::vector<float> temp(size_t(w) * h), power(size_t(w) * h);
    for (auto& t : temp) t = float(rng.next_below(256)) / 256.0f;
    for (auto& p : power) p = float(rng.next_below(64)) / 1024.0f;

    const uint32_t temp_base = inst.gmem.alloc_f32(temp);
    const uint32_t power_base = inst.gmem.alloc_f32(power);
    const uint32_t out_base = inst.gmem.alloc(size_t(w) * h);
    inst.params = {temp_base, power_base, out_base, w, h};
    inst.out_base = out_base;
    inst.out_words = size_t(w) * h;
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_hotspot() {
  return std::make_unique<HotspotWorkload>();
}

}  // namespace gpurf::workloads
