// Deferred shading pass: reconstruct view-space position from a depth
// G-buffer, then accumulate diffuse + specular contributions from eight
// point lights read from a light buffer.  Five G-buffer channels arrive
// through the texture path; RGB accumulators are kept separate, which
// makes this the widest graphics kernel (Table 4: 47 registers).
//
// Table 4: SSIM metric, 47 registers/thread, 8 warps/block (16x16).

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel deferred
.param s32 lights_base
.param s32 out_base
.param s32 width range(64,4096)
.tex g_nx
.tex g_ny
.tex g_depth
.tex g_albedo
.tex g_spec
.tex g_emissive
.reg s32 %tx
.reg s32 %ty
.reg s32 %x
.reg s32 %y
.reg s32 %li
.reg s32 %la
.reg s32 %oa
.reg f32 %nx
.reg f32 %ny
.reg f32 %nz
.reg f32 %depth
.reg f32 %alb
.reg f32 %spc
.reg f32 %posx
.reg f32 %posy
.reg f32 %posz
.reg f32 %lpx
.reg f32 %lpy
.reg f32 %lpz
.reg f32 %lr
.reg f32 %lg
.reg f32 %lb
.reg f32 %lx
.reg f32 %ly
.reg f32 %lz
.reg f32 %d2
.reg f32 %ndl
.reg f32 %atten
.reg f32 %dr
.reg f32 %dg
.reg f32 %db
.reg f32 %sr
.reg f32 %sg
.reg f32 %sb
.reg f32 %hz
.reg f32 %ndh
.reg f32 %spec_i
.reg f32 %t0
.reg f32 %t1
.reg f32 %proj
.reg f32 %lum
.reg f32 %lpx2
.reg f32 %lpy2
.reg f32 %lpz2
.reg f32 %lr2
.reg f32 %lg2
.reg f32 %lb2
.reg f32 %lx2
.reg f32 %ly2
.reg f32 %lz2
.reg f32 %d22
.reg f32 %ndl2
.reg f32 %atten2
.reg f32 %hz2
.reg f32 %ndh2
.reg f32 %spec_i2
.reg f32 %vx
.reg f32 %vy
.reg f32 %vz
.reg f32 %ambr
.reg f32 %ambg
.reg f32 %ambb
.reg f32 %expo
.reg f32 %emis
.reg f32 %fx
.reg f32 %fy
.reg f32 %vig
.reg f32 %str
.reg f32 %stg
.reg f32 %stb
.reg pred %pq

entry:
  mov.s32 %tx, %tid.x
  mov.s32 %ty, %tid.y
  mov.s32 %x, %ctaid.x
  mad.s32 %x, %x, 16, %tx
  mov.s32 %y, %ctaid.y
  mad.s32 %y, %y, 16, %ty
  // G-buffer fetch
  tex.2d.f32 %nx, g_nx, %x, %y
  tex.2d.f32 %ny, g_ny, %x, %y
  tex.2d.f32 %depth, g_depth, %x, %y
  tex.2d.f32 %alb, g_albedo, %x, %y
  tex.2d.f32 %spc, g_spec, %x, %y
  tex.2d.f32 %emis, g_emissive, %x, %y
  // normal z from unit constraint (wide mantissa: stays full precision)
  mul.f32 %t0, %nx, %nx
  mad.f32 %t0, %ny, %ny, %t0
  mov.f32 %t1, 1.0
  sub.f32 %t0, %t1, %t0
  max.f32 %t0, %t0, 0.0
  sqrt.f32 %nz, %t0
  // view-space position from quantized pixel grid and depth
  mov.f32 %proj, 0.0078125
  cvt.f32.s32 %posx, %x
  mul.f32 %posx, %posx, %proj
  mul.f32 %posx, %posx, %depth
  cvt.f32.s32 %posy, %y
  mul.f32 %posy, %posy, %proj
  mul.f32 %posy, %posy, %depth
  mov.f32 %posz, %depth
  // vignette factors from the pixel grid (consumed after the light loop)
  cvt.f32.s32 %fx, %x
  mul.f32 %fx, %fx, 0.0078125
  sub.f32 %fx, %fx, 0.75
  cvt.f32.s32 %fy, %y
  mul.f32 %fy, %fy, 0.0078125
  sub.f32 %fy, %fy, 0.75
  // view vector (camera at origin; -position, unnormalised proxy)
  neg.f32 %vx, %posx
  neg.f32 %vy, %posy
  neg.f32 %vz, %posz
  // ambient and exposure, applied after the light loop
  mov.f32 %ambr, 0.0625
  mov.f32 %ambg, 0.09375
  mov.f32 %ambb, 0.125
  mov.f32 %expo, 0.5
  // specular tint
  mov.f32 %str, 0.9375
  mov.f32 %stg, 0.875
  mov.f32 %stb, 0.75
  // accumulators
  mov.f32 %dr, 0.0
  mov.f32 %dg, 0.0
  mov.f32 %db, 0.0
  mov.f32 %sr, 0.0
  mov.f32 %sg, 0.0
  mov.f32 %sb, 0.0
  mov.s32 %li, 0
light_loop:
  setp.ge.s32 %pq, %li, 8
  @%pq bra light_done
light_body:
  // two light records per iteration (6 floats each: pos xyz, colour rgb)
  mul.s32 %la, %li, 6
  add.s32 %la, %la, $lights_base
  ld.global.f32 %lpx, [%la]
  ld.global.f32 %lpy, [%la+1]
  ld.global.f32 %lpz, [%la+2]
  ld.global.f32 %lr, [%la+3]
  ld.global.f32 %lg, [%la+4]
  ld.global.f32 %lb, [%la+5]
  ld.global.f32 %lpx2, [%la+6]
  ld.global.f32 %lpy2, [%la+7]
  ld.global.f32 %lpz2, [%la+8]
  ld.global.f32 %lr2, [%la+9]
  ld.global.f32 %lg2, [%la+10]
  ld.global.f32 %lb2, [%la+11]
  sub.f32 %lx, %lpx, %posx
  sub.f32 %ly, %lpy, %posy
  sub.f32 %lz, %lpz, %posz
  sub.f32 %lx2, %lpx2, %posx
  sub.f32 %ly2, %lpy2, %posy
  sub.f32 %lz2, %lpz2, %posz
  mul.f32 %d2, %lx, %lx
  mad.f32 %d2, %ly, %ly, %d2
  mad.f32 %d2, %lz, %lz, %d2
  add.f32 %d2, %d2, 1.0
  rcp.f32 %atten, %d2
  mul.f32 %d22, %lx2, %lx2
  mad.f32 %d22, %ly2, %ly2, %d22
  mad.f32 %d22, %lz2, %lz2, %d22
  add.f32 %d22, %d22, 1.0
  rcp.f32 %atten2, %d22
  // unnormalised n . l (monotone proxy, keeps maths division-free)
  mul.f32 %ndl, %nx, %lx
  mad.f32 %ndl, %ny, %ly, %ndl
  mad.f32 %ndl, %nz, %lz, %ndl
  max.f32 %ndl, %ndl, 0.0
  mul.f32 %ndl, %ndl, %atten
  mad.f32 %dr, %ndl, %lr, %dr
  mad.f32 %dg, %ndl, %lg, %dg
  mad.f32 %db, %ndl, %lb, %db
  mul.f32 %ndl2, %nx, %lx2
  mad.f32 %ndl2, %ny, %ly2, %ndl2
  mad.f32 %ndl2, %nz, %lz2, %ndl2
  max.f32 %ndl2, %ndl2, 0.0
  mul.f32 %ndl2, %ndl2, %atten2
  mad.f32 %dr, %ndl2, %lr2, %dr
  mad.f32 %dg, %ndl2, %lg2, %dg
  mad.f32 %db, %ndl2, %lb2, %db
  // Blinn-ish specular with a view-biased half-vector proxy
  add.f32 %hz, %lpz, %vz
  mul.f32 %ndh, %nz, %hz
  mad.f32 %ndh, %nx, %vx, %ndh
  mad.f32 %ndh, %ny, %vy, %ndh
  max.f32 %ndh, %ndh, 0.0
  mul.f32 %spec_i, %ndh, %ndh
  mul.f32 %spec_i, %spec_i, %spec_i
  mul.f32 %spec_i, %spec_i, %atten
  mad.f32 %sr, %spec_i, %lr, %sr
  mad.f32 %sg, %spec_i, %lg, %sg
  mad.f32 %sb, %spec_i, %lb, %sb
  add.f32 %hz2, %lpz2, %vz
  mul.f32 %ndh2, %nz, %hz2
  mad.f32 %ndh2, %nx, %vx, %ndh2
  mad.f32 %ndh2, %ny, %vy, %ndh2
  max.f32 %ndh2, %ndh2, 0.0
  mul.f32 %spec_i2, %ndh2, %ndh2
  mul.f32 %spec_i2, %spec_i2, %spec_i2
  mul.f32 %spec_i2, %spec_i2, %atten2
  mad.f32 %sr, %spec_i2, %lr2, %sr
  mad.f32 %sg, %spec_i2, %lg2, %sg
  mad.f32 %sb, %spec_i2, %lb2, %sb
  add.s32 %li, %li, 2
  bra light_loop
light_done:
  // ambient floor
  add.f32 %dr, %dr, %ambr
  add.f32 %dg, %dg, %ambg
  add.f32 %db, %db, %ambb
  // combine: lum = dot(weights, albedo*diffuse + tinted specular)
  mul.f32 %sr, %sr, %str
  mul.f32 %sg, %sg, %stg
  mul.f32 %sb, %sb, %stb
  mul.f32 %t0, %dr, %alb
  mad.f32 %t0, %sr, %spc, %t0
  mul.f32 %t0, %t0, 0.25
  mul.f32 %t1, %dg, %alb
  mad.f32 %t1, %sg, %spc, %t1
  mad.f32 %t0, %t1, 0.5, %t0
  mul.f32 %t1, %db, %alb
  mad.f32 %t1, %sb, %spc, %t1
  mad.f32 %lum, %t1, 0.25, %t0
  add.f32 %lum, %lum, %emis
  mul.f32 %lum, %lum, %expo
  // radial vignette and depth fog
  mul.f32 %vig, %fx, %fx
  mad.f32 %vig, %fy, %fy, %vig
  mul.f32 %vig, %vig, 0.25
  mov.f32 %t0, 1.0
  sub.f32 %vig, %t0, %vig
  mul.f32 %lum, %lum, %vig
  mul.f32 %t1, %depth, 0.25
  sub.f32 %t0, %t0, %t1
  mul.f32 %lum, %lum, %t0
  min.f32 %lum, %lum, 4.0
  mad.s32 %oa, %y, $width, %x
  add.s32 %oa, %oa, $out_base
  st.global.f32 [%oa], %lum
  ret
)";

class DeferredWorkload final : public Workload {
 public:
  DeferredWorkload()
      // Waiver: per-pixel stores go through a computed framebuffer index
      // the range solver cannot tighten, so the disjointness prover sees
      // statically-unknown store addresses.  Each pixel is written by
      // exactly one block (2D tiling), pinned by the determinism tests.
      : Workload(WorkloadSpec{"Deferred", gpurf::quality::MetricKind::kSsim,
                              1, 47, 8, /*assume_disjoint=*/true},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t tiles = scale == Scale::kFull ? 12 : 3;
    const uint32_t w = tiles * 16, h = tiles * 16;
    inst.launch.grid_x = tiles;
    inst.launch.grid_y = tiles;
    inst.launch.block_x = 16;
    inst.launch.block_y = 16;

    gpurf::Pcg32 rng(0xDEFEu + variant, 23);
    auto make_tex = [&](int denom) {
      gpurf::exec::Texture t;
      t.width = static_cast<int>(w);
      t.height = static_cast<int>(h);
      t.texels.resize(size_t(w) * h);
      for (auto& v : t.texels)
        v = float(rng.next_below(256)) / float(denom);
      return t;
    };
    // Normals in [-0.5, 0.5), depth/albedo/spec in [0, 1).
    gpurf::exec::Texture gnx = make_tex(256), gny = make_tex(256);
    for (auto& v : gnx.texels) v -= 0.5f;
    for (auto& v : gny.texels) v -= 0.5f;
    inst.textures.push_back(std::move(gnx));
    inst.textures.push_back(std::move(gny));
    inst.textures.push_back(make_tex(256));
    inst.textures.push_back(make_tex(256));
    inst.textures.push_back(make_tex(256));
    inst.textures.push_back(make_tex(1024));  // emissive (dim)

    std::vector<float> lights(8 * 6);
    for (size_t i = 0; i < lights.size(); ++i)
      lights[i] = float(rng.next_below(64)) / 16.0f;  // quantized /16
    const uint32_t lights_base = inst.gmem.alloc_f32(lights);
    const uint32_t out_base = inst.gmem.alloc(size_t(w) * h);
    inst.params = {lights_base, out_base, w};
    inst.out_base = out_base;
    inst.out_words = size_t(w) * h;
    inst.image_w = static_cast<int>(w);
    inst.image_h = static_cast<int>(h);
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_deferred() {
  return std::make_unique<DeferredWorkload>();
}

}  // namespace gpurf::workloads
