// Pathtracer (shadertoy-style): two-bounce path tracing of a four-sphere
// scene with a per-thread xorshift RNG for the bounce directions.  The
// RNG state is a genuine full-width integer and the bounce arithmetic
// carries full mantissas, so perfect-quality compression finds little;
// the high-quality threshold (SSIM 0.9) unlocks half-precision shading.
//
// Table 4: SSIM metric, 50 registers/thread, 8 warps/block (16x16).

#include <bit>

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel pathtracer
.param s32 out_base
.param s32 width range(64,4096)
.reg s32 %tx
.reg s32 %ty
.reg s32 %x
.reg s32 %y
.reg s32 %seed
.reg s32 %r1
.reg s32 %bounce
.reg s32 %hitid
.reg s32 %oa
.reg f32 %rox
.reg f32 %roy
.reg f32 %roz
.reg f32 %rdx
.reg f32 %rdy
.reg f32 %rdz
.reg f32 %tbest
.reg f32 %nxv
.reg f32 %nyv
.reg f32 %nzv
.reg f32 %px
.reg f32 %py
.reg f32 %pz
.reg f32 %ocx
.reg f32 %ocy
.reg f32 %ocz
.reg f32 %bq
.reg f32 %cq
.reg f32 %disc
.reg f32 %troot
.reg f32 %attr
.reg f32 %attg
.reg f32 %attb
.reg f32 %accr
.reg f32 %accg
.reg f32 %accb
.reg f32 %ux
.reg f32 %uy
.reg f32 %uz
.reg f32 %skyr
.reg f32 %skyg
.reg f32 %skyb
.reg f32 %alr
.reg f32 %alg
.reg f32 %alb2
.reg f32 %t0
.reg f32 %t1
.reg f32 %lum
.reg f32 %s0x
.reg f32 %s0y
.reg f32 %s0z
.reg f32 %s0r
.reg f32 %s1x
.reg f32 %s1y
.reg f32 %s1z
.reg f32 %s1r
.reg f32 %s2x
.reg f32 %s2y
.reg f32 %s2z
.reg f32 %s2r
.reg f32 %s3x
.reg f32 %s3y
.reg f32 %s3z
.reg f32 %s3r
.reg f32 %a0r
.reg f32 %a0g
.reg f32 %a0b
.reg f32 %a1r
.reg f32 %a1g
.reg f32 %a1b
.reg f32 %wr
.reg f32 %wg
.reg f32 %wb
.reg f32 %expo
.reg pred %ph
.reg pred %pt
.reg pred %pq

entry:
  mov.s32 %tx, %tid.x
  mov.s32 %ty, %tid.y
  mov.s32 %x, %ctaid.x
  mad.s32 %x, %x, 16, %tx
  mov.s32 %y, %ctaid.y
  mad.s32 %y, %y, 16, %ty
  // xorshift seed from pixel id
  mad.s32 %seed, %y, 9781, %x
  mad.s32 %seed, %seed, 2654435761, 12345
  // camera
  mov.f32 %rox, 0.0
  mov.f32 %roy, 0.75
  mov.f32 %roz, -3.0
  cvt.f32.s32 %rdx, %x
  mul.f32 %rdx, %rdx, 0.0053
  sub.f32 %rdx, %rdx, 0.507
  cvt.f32.s32 %rdy, %y
  mul.f32 %rdy, %rdy, 0.0049
  sub.f32 %rdy, %rdy, 0.471
  mov.f32 %rdz, 1.0
  // %t0/%troot are first written under @%ph guards — partial defs merge
  // the old value, so give them a defined value on every path
  // (gpurf-lint: no undefined reads).
  mov.f32 %t0, 0.0
  mov.f32 %troot, 0.0
  mov.f32 %attr, 1.0
  mov.f32 %attg, 1.0
  mov.f32 %attb, 1.0
  mov.f32 %accr, 0.0
  mov.f32 %accg, 0.0
  mov.f32 %accb, 0.0
  // scene table held in registers for the whole trace
  mov.f32 %s0x, -1.0
  mov.f32 %s0y, 0.5
  mov.f32 %s0z, 1.0
  mov.f32 %s0r, 0.25
  mov.f32 %s1x, 1.0
  mov.f32 %s1y, 0.5
  mov.f32 %s1z, 1.5
  mov.f32 %s1r, 0.25
  mov.f32 %s2x, 0.0
  mov.f32 %s2y, -100.0
  mov.f32 %s2z, 2.0
  mov.f32 %s2r, 10100.25
  mov.f32 %s3x, 0.0
  mov.f32 %s3y, 1.5
  mov.f32 %s3z, 2.5
  mov.f32 %s3r, 0.5625
  mov.f32 %a0r, 0.9375
  mov.f32 %a0g, 0.25
  mov.f32 %a0b, 0.1875
  mov.f32 %a1r, 0.25
  mov.f32 %a1g, 0.8125
  mov.f32 %a1b, 0.375
  mov.f32 %wr, 0.25
  mov.f32 %wg, 0.5
  mov.f32 %wb, 0.25
  mov.f32 %expo, 0.75
  mov.s32 %bounce, 0
bounce_loop:
  setp.ge.s32 %pq, %bounce, 2
  @%pq bra bounce_done
bounce_body:
  mov.f32 %tbest, 1000.0
  mov.s32 %hitid, -1
  // ---- sphere 0: centre (-1, 0.5, 1), r^2 = 0.25
  sub.f32 %ocx, %rox, %s0x
  sub.f32 %ocy, %roy, %s0y
  sub.f32 %ocz, %roz, %s0z
  mul.f32 %bq, %ocx, %rdx
  mad.f32 %bq, %ocy, %rdy, %bq
  mad.f32 %bq, %ocz, %rdz, %bq
  mul.f32 %cq, %ocx, %ocx
  mad.f32 %cq, %ocy, %ocy, %cq
  mad.f32 %cq, %ocz, %ocz, %cq
  sub.f32 %cq, %cq, %s0r
  mul.f32 %disc, %bq, %bq
  sub.f32 %disc, %disc, %cq
  setp.gt.f32 %ph, %disc, 0.0
  @%ph sqrt.f32 %t0, %disc
  @%ph neg.f32 %troot, %bq
  @%ph sub.f32 %troot, %troot, %t0
  @%ph setp.gt.f32 %ph, %troot, 0.01
  @%ph setp.lt.f32 %ph, %troot, %tbest
  @%ph mov.f32 %tbest, %troot
  @%ph mov.s32 %hitid, 0
  // ---- sphere 1
  sub.f32 %ocx, %rox, %s1x
  sub.f32 %ocy, %roy, %s1y
  sub.f32 %ocz, %roz, %s1z
  mul.f32 %bq, %ocx, %rdx
  mad.f32 %bq, %ocy, %rdy, %bq
  mad.f32 %bq, %ocz, %rdz, %bq
  mul.f32 %cq, %ocx, %ocx
  mad.f32 %cq, %ocy, %ocy, %cq
  mad.f32 %cq, %ocz, %ocz, %cq
  sub.f32 %cq, %cq, %s1r
  mul.f32 %disc, %bq, %bq
  sub.f32 %disc, %disc, %cq
  setp.gt.f32 %ph, %disc, 0.0
  @%ph sqrt.f32 %t0, %disc
  @%ph neg.f32 %troot, %bq
  @%ph sub.f32 %troot, %troot, %t0
  @%ph setp.gt.f32 %ph, %troot, 0.01
  @%ph setp.lt.f32 %ph, %troot, %tbest
  @%ph mov.f32 %tbest, %troot
  @%ph mov.s32 %hitid, 1
  // ---- sphere 2: ground ball ~ plane
  sub.f32 %ocx, %rox, %s2x
  sub.f32 %ocy, %roy, %s2y
  sub.f32 %ocz, %roz, %s2z
  mul.f32 %bq, %ocx, %rdx
  mad.f32 %bq, %ocy, %rdy, %bq
  mad.f32 %bq, %ocz, %rdz, %bq
  mul.f32 %cq, %ocx, %ocx
  mad.f32 %cq, %ocy, %ocy, %cq
  mad.f32 %cq, %ocz, %ocz, %cq
  sub.f32 %cq, %cq, %s2r
  mul.f32 %disc, %bq, %bq
  sub.f32 %disc, %disc, %cq
  setp.gt.f32 %ph, %disc, 0.0
  @%ph sqrt.f32 %t0, %disc
  @%ph neg.f32 %troot, %bq
  @%ph sub.f32 %troot, %troot, %t0
  @%ph setp.gt.f32 %ph, %troot, 0.01
  @%ph setp.lt.f32 %ph, %troot, %tbest
  @%ph mov.f32 %tbest, %troot
  @%ph mov.s32 %hitid, 2
  // ---- sphere 3
  sub.f32 %ocx, %rox, %s3x
  sub.f32 %ocy, %roy, %s3y
  sub.f32 %ocz, %roz, %s3z
  mul.f32 %bq, %ocx, %rdx
  mad.f32 %bq, %ocy, %rdy, %bq
  mad.f32 %bq, %ocz, %rdz, %bq
  mul.f32 %cq, %ocx, %ocx
  mad.f32 %cq, %ocy, %ocy, %cq
  mad.f32 %cq, %ocz, %ocz, %cq
  sub.f32 %cq, %cq, %s3r
  mul.f32 %disc, %bq, %bq
  sub.f32 %disc, %disc, %cq
  setp.gt.f32 %ph, %disc, 0.0
  @%ph sqrt.f32 %t0, %disc
  @%ph neg.f32 %troot, %bq
  @%ph sub.f32 %troot, %troot, %t0
  @%ph setp.gt.f32 %ph, %troot, 0.01
  @%ph setp.lt.f32 %ph, %troot, %tbest
  @%ph mov.f32 %tbest, %troot
  @%ph mov.s32 %hitid, 3
  // miss -> sky and terminate the path
  setp.ge.s32 %pq, %hitid, 0
  @%pq bra hit_case
miss_case:
  mul.f32 %skyr, %rdy, 0.25
  add.f32 %skyr, %skyr, 0.55
  mul.f32 %skyg, %rdy, 0.375
  add.f32 %skyg, %skyg, 0.65
  mul.f32 %skyb, %rdy, 0.5
  add.f32 %skyb, %skyb, 0.8
  mad.f32 %accr, %attr, %skyr, %accr
  mad.f32 %accg, %attg, %skyg, %accg
  mad.f32 %accb, %attb, %skyb, %accb
  bra bounce_done
hit_case:
  // hit point and (scaled) normal
  mad.f32 %px, %rdx, %tbest, %rox
  mad.f32 %py, %rdy, %tbest, %roy
  mad.f32 %pz, %rdz, %tbest, %roz
  // normal ~ p - centre, selected by hitid (scaled by 2 for r=0.5)
  setp.eq.s32 %ph, %hitid, 0
  selp.f32 %t0, %s0x, %s1x, %ph
  setp.le.s32 %pt, %hitid, 1
  selp.f32 %t1, %s0y, %s3y, %pt
  sub.f32 %nxv, %px, %t0
  sub.f32 %nyv, %py, %t1
  sub.f32 %nzv, %pz, 1.25
  setp.eq.s32 %ph, %hitid, 2
  selp.f32 %nxv, 0.0, %nxv, %ph
  selp.f32 %nyv, 1.0, %nyv, %ph
  selp.f32 %nzv, 0.0, %nzv, %ph
  // per-sphere albedo (quantized /16 values)
  setp.eq.s32 %ph, %hitid, 0
  selp.f32 %alr, %a0r, %a1r, %ph
  selp.f32 %alg, %a0g, %a1g, %ph
  selp.f32 %alb2, %a0b, %a1b, %ph
  setp.eq.s32 %ph, %hitid, 2
  selp.f32 %alr, 0.5, %alr, %ph
  selp.f32 %alg, 0.5, %alg, %ph
  selp.f32 %alb2, 0.5, %alb2, %ph
  mul.f32 %attr, %attr, %alr
  mul.f32 %attg, %attg, %alg
  mul.f32 %attb, %attb, %alb2
  // xorshift32 x3 -> jittered bounce direction in [-1,1]
  shl.s32 %r1, %seed, 13
  xor.s32 %seed, %seed, %r1
  shr.s32 %r1, %seed, 17
  xor.s32 %seed, %seed, %r1
  shl.s32 %r1, %seed, 5
  xor.s32 %seed, %seed, %r1
  and.s32 %r1, %seed, 65535
  cvt.f32.s32 %ux, %r1
  mul.f32 %ux, %ux, 0.0000305
  sub.f32 %ux, %ux, 1.0
  shr.s32 %r1, %seed, 8
  and.s32 %r1, %r1, 65535
  cvt.f32.s32 %uy, %r1
  mul.f32 %uy, %uy, 0.0000305
  sub.f32 %uy, %uy, 1.0
  shr.s32 %r1, %seed, 16
  and.s32 %r1, %r1, 65535
  cvt.f32.s32 %uz, %r1
  mul.f32 %uz, %uz, 0.0000305
  sub.f32 %uz, %uz, 1.0
  // new ray: origin = hit point, direction = normal + jitter
  mov.f32 %rox, %px
  mov.f32 %roy, %py
  mov.f32 %roz, %pz
  add.f32 %rdx, %nxv, %ux
  add.f32 %rdy, %nyv, %uy
  add.f32 %rdz, %nzv, %uz
  add.s32 %bounce, %bounce, 1
  bra bounce_loop
bounce_done:
  // luminance with dyadic weights
  mul.f32 %lum, %accr, %wr
  mad.f32 %lum, %accg, %wg, %lum
  mad.f32 %lum, %accb, %wb, %lum
  mul.f32 %lum, %lum, %expo
  min.f32 %lum, %lum, 2.0
  max.f32 %lum, %lum, 0.0
  mad.s32 %oa, %y, $width, %x
  add.s32 %oa, %oa, $out_base
  st.global.f32 [%oa], %lum
  ret
)";

class PathtracerWorkload final : public Workload {
 public:
  PathtracerWorkload()
      // Waiver: 2D row-interleaved tiles (see wl_ssao.cpp) — store hulls
      // of adjacent tiles overlap as intervals though the word sets are
      // disjoint.  loads_local is proven; only sharding needs the waiver.
      : Workload(WorkloadSpec{"Pathtracer", gpurf::quality::MetricKind::kSsim,
                              1, 50, 8, /*assume_disjoint=*/true},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t /*variant*/) const override {
    Instance inst;
    const uint32_t tiles = scale == Scale::kFull ? 12 : 3;
    const uint32_t w = tiles * 16, h = tiles * 16;
    inst.launch.grid_x = tiles;
    inst.launch.grid_y = tiles;
    inst.launch.block_x = 16;
    inst.launch.block_y = 16;

    const uint32_t out_base = inst.gmem.alloc(size_t(w) * h);
    inst.params = {out_base, w};
    inst.out_base = out_base;
    inst.out_words = size_t(w) * h;
    inst.image_w = static_cast<int>(w);
    inst.image_h = static_cast<int>(h);
    return inst;
  }

  uint32_t num_sample_variants() const override { return 1; }
};

}  // namespace

std::unique_ptr<Workload> make_pathtracer() {
  return std::make_unique<PathtracerWorkload>();
}

}  // namespace gpurf::workloads
