// CFD (Rodinia euler3d, compute_flux): per-cell flux accumulation over
// three unstructured-mesh neighbours.  All five conserved variables of the
// cell and of all three neighbours are held live together with the edge
// normals — the register-pressure champion of the suite (Table 4: 60).
// Pressure is computed with a normalised-density simplification so the
// arithmetic stays division-free (see DESIGN.md substitutions).
//
// Table 4: % deviation, 60 registers/thread, 6 warps/block (192x1).

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel cfd
.param s32 var_base
.param s32 nbr_base
.param s32 norm_base
.param s32 out_base
.param s32 ncells range(1152,16777216)
.reg s32 %lin
.reg s32 %gid
.reg s32 %na
.reg s32 %nb0
.reg s32 %nb1
.reg s32 %nb2
.reg s32 %a0
.reg s32 %a1
.reg s32 %a2
.reg s32 %oa
.reg s32 %nc
.reg f32 %r
.reg f32 %mx
.reg f32 %my
.reg f32 %mz
.reg f32 %e
.reg f32 %pr
.reg f32 %r0
.reg f32 %mx0
.reg f32 %my0
.reg f32 %mz0
.reg f32 %e0
.reg f32 %pr0
.reg f32 %r1
.reg f32 %mx1
.reg f32 %my1
.reg f32 %mz1
.reg f32 %e1
.reg f32 %pr1
.reg f32 %r2
.reg f32 %mx2
.reg f32 %my2
.reg f32 %mz2
.reg f32 %e2
.reg f32 %pr2
.reg f32 %nx0
.reg f32 %ny0
.reg f32 %nz0
.reg f32 %nx1
.reg f32 %ny1
.reg f32 %nz1
.reg f32 %nx2
.reg f32 %ny2
.reg f32 %nz2
.reg f32 %fr
.reg f32 %fmx
.reg f32 %fmy
.reg f32 %fmz
.reg f32 %fe
.reg f32 %gm1
.reg f32 %lam
.reg f32 %half
.reg f32 %ke
.reg f32 %ke0
.reg f32 %ke1
.reg f32 %ke2
.reg f32 %vx
.reg f32 %vy
.reg f32 %vz
.reg f32 %ir
.reg f32 %smax
.reg f32 %wt0
.reg f32 %wt1
.reg f32 %wt2
.reg f32 %ir0
.reg f32 %ir1
.reg f32 %ir2
.reg f32 %vup0
.reg f32 %vup1
.reg f32 %vup2
.reg f32 %t0
.reg f32 %t1
.reg pred %pq

entry:
  mov.s32 %lin, %tid.x
  mov.s32 %gid, %ctaid.x
  mad.s32 %gid, %gid, 192, %lin
  setp.ge.s32 %pq, %gid, $ncells
  @%pq bra exit
body:
  mov.s32 %nc, $ncells
  mov.f32 %gm1, 0.5
  mov.f32 %lam, 0.25
  mov.f32 %half, 0.5
  mov.f32 %wt0, 0.5
  mov.f32 %wt1, 0.3125
  mov.f32 %wt2, 0.1875
  // cell variables (SoA layout: field f at var_base + f*ncells + i)
  add.s32 %na, %gid, $var_base
  ld.global.f32 %r, [%na]
  add.s32 %na, %na, %nc
  ld.global.f32 %mx, [%na]
  add.s32 %na, %na, %nc
  ld.global.f32 %my, [%na]
  add.s32 %na, %na, %nc
  ld.global.f32 %mz, [%na]
  add.s32 %na, %na, %nc
  ld.global.f32 %e, [%na]
  // normalised-density pressure: p = gm1 * (e - 0.25*(mx^2+my^2+mz^2))
  mul.f32 %ke, %mx, %mx
  mad.f32 %ke, %my, %my, %ke
  mad.f32 %ke, %mz, %mz, %ke
  mul.f32 %ke, %ke, -0.25
  add.f32 %pr, %e, %ke
  mul.f32 %pr, %pr, %gm1
  // cell velocity (momentum / density) and a CFL-style speed bound
  rcp.f32 %ir, %r
  mul.f32 %vx, %mx, %ir
  mul.f32 %vy, %my, %ir
  mul.f32 %vz, %mz, %ir
  abs.f32 %smax, %vx
  abs.f32 %t0, %vy
  max.f32 %smax, %smax, %t0
  abs.f32 %t0, %vz
  max.f32 %smax, %smax, %t0
  min.f32 %smax, %smax, 4.0
  // three neighbour indices
  mul.s32 %na, %gid, 3
  add.s32 %na, %na, $nbr_base
  ld.global.s32 %nb0, [%na]
  ld.global.s32 %nb1, [%na+1]
  ld.global.s32 %nb2, [%na+2]
  // neighbour 0 variables + pressure
  add.s32 %a0, %nb0, $var_base
  ld.global.f32 %r0, [%a0]
  add.s32 %a0, %a0, %nc
  ld.global.f32 %mx0, [%a0]
  add.s32 %a0, %a0, %nc
  ld.global.f32 %my0, [%a0]
  add.s32 %a0, %a0, %nc
  ld.global.f32 %mz0, [%a0]
  add.s32 %a0, %a0, %nc
  ld.global.f32 %e0, [%a0]
  mul.f32 %ke0, %mx0, %mx0
  mad.f32 %ke0, %my0, %my0, %ke0
  mad.f32 %ke0, %mz0, %mz0, %ke0
  mul.f32 %ke0, %ke0, -0.25
  add.f32 %pr0, %e0, %ke0
  mul.f32 %pr0, %pr0, %gm1
  rcp.f32 %ir0, %r0
  mul.f32 %vup0, %mx0, %ir0
  // neighbour 1
  add.s32 %a1, %nb1, $var_base
  ld.global.f32 %r1, [%a1]
  add.s32 %a1, %a1, %nc
  ld.global.f32 %mx1, [%a1]
  add.s32 %a1, %a1, %nc
  ld.global.f32 %my1, [%a1]
  add.s32 %a1, %a1, %nc
  ld.global.f32 %mz1, [%a1]
  add.s32 %a1, %a1, %nc
  ld.global.f32 %e1, [%a1]
  mul.f32 %ke1, %mx1, %mx1
  mad.f32 %ke1, %my1, %my1, %ke1
  mad.f32 %ke1, %mz1, %mz1, %ke1
  mul.f32 %ke1, %ke1, -0.25
  add.f32 %pr1, %e1, %ke1
  mul.f32 %pr1, %pr1, %gm1
  rcp.f32 %ir1, %r1
  mul.f32 %vup1, %mx1, %ir1
  // neighbour 2
  add.s32 %a2, %nb2, $var_base
  ld.global.f32 %r2, [%a2]
  add.s32 %a2, %a2, %nc
  ld.global.f32 %mx2, [%a2]
  add.s32 %a2, %a2, %nc
  ld.global.f32 %my2, [%a2]
  add.s32 %a2, %a2, %nc
  ld.global.f32 %mz2, [%a2]
  add.s32 %a2, %a2, %nc
  ld.global.f32 %e2, [%a2]
  mul.f32 %ke2, %mx2, %mx2
  mad.f32 %ke2, %my2, %my2, %ke2
  mad.f32 %ke2, %mz2, %mz2, %ke2
  mul.f32 %ke2, %ke2, -0.25
  add.f32 %pr2, %e2, %ke2
  mul.f32 %pr2, %pr2, %gm1
  rcp.f32 %ir2, %r2
  mul.f32 %vup2, %mx2, %ir2
  // edge normals (AoS: 9 floats per cell)
  mul.s32 %na, %gid, 9
  add.s32 %na, %na, $norm_base
  ld.global.f32 %nx0, [%na]
  ld.global.f32 %ny0, [%na+1]
  ld.global.f32 %nz0, [%na+2]
  ld.global.f32 %nx1, [%na+3]
  ld.global.f32 %ny1, [%na+4]
  ld.global.f32 %nz1, [%na+5]
  ld.global.f32 %nx2, [%na+6]
  ld.global.f32 %ny2, [%na+7]
  ld.global.f32 %nz2, [%na+8]
  // Lax-Friedrichs-style flux accumulation over the three edges
  mov.f32 %fr, 0.0
  mov.f32 %fmx, 0.0
  mov.f32 %fmy, 0.0
  mov.f32 %fmz, 0.0
  mov.f32 %fe, 0.0
  // edge 0
  add.f32 %t0, %mx, %mx0
  mul.f32 %t1, %t0, %nx0
  add.f32 %t0, %my, %my0
  mad.f32 %t1, %t0, %ny0, %t1
  add.f32 %t0, %mz, %mz0
  mad.f32 %t1, %t0, %nz0, %t1
  mul.f32 %t1, %t1, %half
  add.f32 %fr, %fr, %t1
  sub.f32 %t0, %r0, %r
  mad.f32 %fr, %t0, %lam, %fr
  add.f32 %t0, %pr, %pr0
  mul.f32 %t0, %t0, %half
  mad.f32 %fmx, %t0, %nx0, %fmx
  mad.f32 %fmy, %t0, %ny0, %fmy
  mad.f32 %fmz, %t0, %nz0, %fmz
  sub.f32 %t0, %mx0, %mx
  mad.f32 %fmx, %t0, %lam, %fmx
  sub.f32 %t0, %my0, %my
  mad.f32 %fmy, %t0, %lam, %fmy
  sub.f32 %t0, %mz0, %mz
  mad.f32 %fmz, %t0, %lam, %fmz
  add.f32 %t0, %e, %e0
  mul.f32 %t1, %t0, %half
  mul.f32 %t1, %t1, %wt0
  mad.f32 %fe, %t1, %nx0, %fe
  mul.f32 %t1, %vx, %pr
  mad.f32 %fe, %t1, %wt0, %fe
  mul.f32 %t1, %vy, %pr0
  mad.f32 %fe, %t1, %wt0, %fe
  mul.f32 %t1, %vz, %ke0
  mad.f32 %fe, %t1, %wt0, %fe
  sub.f32 %t0, %e0, %e
  mul.f32 %t0, %t0, %smax
  mad.f32 %fe, %t0, %lam, %fe
  mul.f32 %t1, %vup0, %ir0
  mad.f32 %fe, %t1, %wt0, %fe
  // edge 1
  add.f32 %t0, %mx, %mx1
  mul.f32 %t1, %t0, %nx1
  add.f32 %t0, %my, %my1
  mad.f32 %t1, %t0, %ny1, %t1
  add.f32 %t0, %mz, %mz1
  mad.f32 %t1, %t0, %nz1, %t1
  mul.f32 %t1, %t1, %half
  add.f32 %fr, %fr, %t1
  sub.f32 %t0, %r1, %r
  mad.f32 %fr, %t0, %lam, %fr
  add.f32 %t0, %pr, %pr1
  mul.f32 %t0, %t0, %half
  mad.f32 %fmx, %t0, %nx1, %fmx
  mad.f32 %fmy, %t0, %ny1, %fmy
  mad.f32 %fmz, %t0, %nz1, %fmz
  sub.f32 %t0, %mx1, %mx
  mad.f32 %fmx, %t0, %lam, %fmx
  sub.f32 %t0, %my1, %my
  mad.f32 %fmy, %t0, %lam, %fmy
  sub.f32 %t0, %mz1, %mz
  mad.f32 %fmz, %t0, %lam, %fmz
  add.f32 %t0, %e, %e1
  mul.f32 %t1, %t0, %half
  mul.f32 %t1, %t1, %wt1
  mad.f32 %fe, %t1, %nx1, %fe
  mul.f32 %t1, %vx, %pr
  mad.f32 %fe, %t1, %wt1, %fe
  mul.f32 %t1, %vy, %pr1
  mad.f32 %fe, %t1, %wt1, %fe
  mul.f32 %t1, %vz, %ke1
  mad.f32 %fe, %t1, %wt1, %fe
  sub.f32 %t0, %e1, %e
  mul.f32 %t0, %t0, %smax
  mad.f32 %fe, %t0, %lam, %fe
  mul.f32 %t1, %vup1, %ir1
  mad.f32 %fe, %t1, %wt1, %fe
  // edge 2
  add.f32 %t0, %mx, %mx2
  mul.f32 %t1, %t0, %nx2
  add.f32 %t0, %my, %my2
  mad.f32 %t1, %t0, %ny2, %t1
  add.f32 %t0, %mz, %mz2
  mad.f32 %t1, %t0, %nz2, %t1
  mul.f32 %t1, %t1, %half
  add.f32 %fr, %fr, %t1
  sub.f32 %t0, %r2, %r
  mad.f32 %fr, %t0, %lam, %fr
  add.f32 %t0, %pr, %pr2
  mul.f32 %t0, %t0, %half
  mad.f32 %fmx, %t0, %nx2, %fmx
  mad.f32 %fmy, %t0, %ny2, %fmy
  mad.f32 %fmz, %t0, %nz2, %fmz
  sub.f32 %t0, %mx2, %mx
  mad.f32 %fmx, %t0, %lam, %fmx
  sub.f32 %t0, %my2, %my
  mad.f32 %fmy, %t0, %lam, %fmy
  sub.f32 %t0, %mz2, %mz
  mad.f32 %fmz, %t0, %lam, %fmz
  add.f32 %t0, %e, %e2
  mul.f32 %t1, %t0, %half
  mul.f32 %t1, %t1, %wt2
  mad.f32 %fe, %t1, %nx2, %fe
  mul.f32 %t1, %vx, %pr
  mad.f32 %fe, %t1, %wt2, %fe
  mul.f32 %t1, %vy, %pr2
  mad.f32 %fe, %t1, %wt2, %fe
  mul.f32 %t1, %vz, %ke2
  mad.f32 %fe, %t1, %wt2, %fe
  sub.f32 %t0, %e2, %e
  mul.f32 %t0, %t0, %smax
  mad.f32 %fe, %t0, %lam, %fe
  mul.f32 %t1, %vup2, %ir2
  mad.f32 %fe, %t1, %wt2, %fe
  // write the five flux components (SoA)
  add.s32 %oa, %gid, $out_base
  st.global.f32 [%oa], %fr
  add.s32 %oa, %oa, %nc
  st.global.f32 [%oa], %fmx
  add.s32 %oa, %oa, %nc
  st.global.f32 [%oa], %fmy
  add.s32 %oa, %oa, %nc
  st.global.f32 [%oa], %fmz
  add.s32 %oa, %oa, %nc
  st.global.f32 [%oa], %fe
exit:
  ret
)";

class CfdWorkload final : public Workload {
 public:
  CfdWorkload()
      // Waiver: flux loads read neighbour cells through index arithmetic
      // the interval solver widens past the block boundary, so loads_local
      // is unprovable — though every load reads pristine input arrays, not
      // another block's output (stores_disjoint *is* proven).
      : Workload(WorkloadSpec{"CFD", gpurf::quality::MetricKind::kDeviation,
                              2, 60, 6, /*assume_disjoint=*/true},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t blocks = scale == Scale::kFull ? 120 : 6;
    const uint32_t ncells = blocks * 192;
    inst.launch.grid_x = blocks;
    inst.launch.block_x = 192;

    gpurf::Pcg32 rng(0xCFDu + variant, 17);
    std::vector<float> vars(size_t(ncells) * 5);
    for (uint32_t i = 0; i < ncells; ++i) {
      vars[i] = 0.5f + float(rng.next_below(256)) / 512.0f;          // rho
      vars[ncells + i] = float(int(rng.next_below(256)) - 128) / 256.0f;
      vars[2 * ncells + i] = float(int(rng.next_below(256)) - 128) / 256.0f;
      vars[3 * ncells + i] = float(int(rng.next_below(256)) - 128) / 256.0f;
      vars[4 * ncells + i] = 0.5f + float(rng.next_below(256)) / 256.0f;
    }
    std::vector<uint32_t> nbrs(size_t(ncells) * 3);
    for (auto& n : nbrs) n = rng.next_below(ncells);
    std::vector<float> norms(size_t(ncells) * 9);
    for (auto& n : norms) n = float(int(rng.next_below(128)) - 64) / 64.0f;

    const uint32_t var_base = inst.gmem.alloc_f32(vars);
    const uint32_t nbr_base = inst.gmem.alloc(nbrs);
    const uint32_t norm_base = inst.gmem.alloc_f32(norms);
    const uint32_t out_base = inst.gmem.alloc(size_t(ncells) * 5);
    inst.params = {var_base, nbr_base, norm_base, out_base, ncells};
    inst.out_base = out_base;
    inst.out_words = size_t(ncells) * 5;
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_cfd() {
  return std::make_unique<CfdWorkload>();
}

}  // namespace gpurf::workloads
