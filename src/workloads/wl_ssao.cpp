// SSAO: screen-space ambient occlusion — for each pixel, compare the
// centre depth against sixteen spiral-offset depth-texture samples and
// accumulate a falloff-weighted occlusion term.  Texture-bound like GICOV:
// the paper reports an IPC regression from texture-cache contention
// (miss rate 69 % -> 73 %, §6.2).
//
// Table 4: SSIM metric, 28 registers/thread, 8 warps/block (16x16).

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel ssao
.param s32 out_base
.param s32 width range(64,4096)
.tex depth
.tex normal
.reg s32 %tx
.reg s32 %ty
.reg s32 %x
.reg s32 %y
.reg s32 %u
.reg s32 %v
.reg s32 %i
.reg s32 %du
.reg s32 %dv
.reg s32 %oa
.reg f32 %dC
.reg f32 %nC
.reg f32 %dS0
.reg f32 %dS1
.reg f32 %diff0
.reg f32 %diff1
.reg f32 %occ
.reg f32 %w0
.reg f32 %w1
.reg f32 %w2
.reg f32 %w3
.reg f32 %bias
.reg f32 %scale
.reg f32 %inv16
.reg f32 %t0
.reg f32 %t1
.reg f32 %out
.reg f32 %w4
.reg f32 %w5
.reg f32 %occ2
.reg f32 %rscale
.reg f32 %rbias
.reg f32 %fx
.reg f32 %fy
.reg f32 %amb
.reg f32 %pow2
.reg f32 %gamma
.reg pred %pq

entry:
  mov.s32 %tx, %tid.x
  mov.s32 %ty, %tid.y
  mov.s32 %x, %ctaid.x
  mad.s32 %x, %x, 16, %tx
  mov.s32 %y, %ctaid.y
  mad.s32 %y, %y, 16, %ty
  tex.2d.f32 %dC, depth, %x, %y
  tex.2d.f32 %nC, normal, %x, %y
  mov.f32 %occ, 0.0
  mov.f32 %w0, 1.0
  mov.f32 %w1, 0.75
  mov.f32 %w2, 0.5
  mov.f32 %w3, 0.25
  mov.f32 %w4, 0.875
  mov.f32 %w5, 0.625
  mov.f32 %occ2, 0.0
  mov.f32 %bias, 0.015625
  mov.f32 %scale, 8.0
  mov.f32 %inv16, 0.0625
  mov.f32 %amb, 0.125
  mov.f32 %pow2, 0.5
  mov.f32 %gamma, 0.9375
  // depth-proportional range check factors (live across the loop)
  mad.f32 %rscale, %dC, 2.0, 1.0
  mul.f32 %rbias, %dC, 0.25
  // vignette factors consumed at the very end
  cvt.f32.s32 %fx, %x
  mul.f32 %fx, %fx, 0.0078125
  sub.f32 %fx, %fx, 0.75
  cvt.f32.s32 %fy, %y
  mul.f32 %fy, %fy, 0.0078125
  sub.f32 %fy, %fy, 0.75
  // 16 samples on an expanding spiral, two per ring step (ILP pairs)
  mov.s32 %i, 1
ring_loop:
  setp.gt.s32 %pq, %i, 4
  @%pq bra ring_done
ring_body:
  // sample pair 1 at radius 6i: (+6i, +6i-1), (-6i, +6i)
  mad.s32 %du, %i, 6, %x
  mov.s32 %u, %du
  mad.s32 %dv, %i, 6, %y
  sub.s32 %v, %dv, 1
  tex.2d.f32 %dS0, depth, %u, %v
  mul.s32 %u, %i, 6
  sub.s32 %u, %x, %u
  mov.s32 %v, %dv
  tex.2d.f32 %dS1, depth, %u, %v
  sub.f32 %diff0, %dC, %dS0
  sub.f32 %diff0, %diff0, %bias
  mul.f32 %diff0, %diff0, %scale
  max.f32 %diff0, %diff0, 0.0
  min.f32 %diff0, %diff0, 1.0
  mad.f32 %occ, %diff0, %w0, %occ
  mad.f32 %occ, %diff0, %w4, %occ
  sub.f32 %diff1, %dC, %dS1
  sub.f32 %diff1, %diff1, %bias
  mul.f32 %diff1, %diff1, %scale
  max.f32 %diff1, %diff1, 0.0
  min.f32 %diff1, %diff1, 1.0
  mad.f32 %occ, %diff1, %w1, %occ
  mad.f32 %occ, %diff1, %w5, %occ
  // sample pair 2 at radius 6i: (+6i, -6i), (-6i+1, -6i)
  mov.s32 %u, %du
  mul.s32 %v, %i, 6
  sub.s32 %v, %y, %v
  tex.2d.f32 %dS0, depth, %u, %v
  mul.s32 %u, %i, 6
  sub.s32 %u, %x, %u
  add.s32 %u, %u, 1
  tex.2d.f32 %dS1, depth, %u, %v
  sub.f32 %diff0, %dC, %dS0
  sub.f32 %diff0, %diff0, %bias
  mul.f32 %diff0, %diff0, %scale
  max.f32 %diff0, %diff0, 0.0
  min.f32 %diff0, %diff0, 1.0
  mul.f32 %diff0, %diff0, %rscale
  mad.f32 %occ2, %diff0, %w2, %occ2
  sub.f32 %diff1, %dC, %dS1
  sub.f32 %diff1, %diff1, %rbias
  mul.f32 %diff1, %diff1, %scale
  max.f32 %diff1, %diff1, 0.0
  min.f32 %diff1, %diff1, 1.0
  mad.f32 %occ2, %diff1, %w3, %occ2
  add.s32 %i, %i, 1
  bra ring_loop
ring_done:
  // combine both hemispheres, ambient floor, vignette
  mad.f32 %occ, %occ2, %pow2, %occ
  mul.f32 %t0, %occ, %inv16
  mul.f32 %t0, %t0, %nC
  mov.f32 %t1, 1.0
  sub.f32 %out, %t1, %t0
  add.f32 %out, %out, %amb
  mul.f32 %t1, %fx, %fx
  mad.f32 %t1, %fy, %fy, %t1
  mul.f32 %t1, %t1, 0.125
  sub.f32 %out, %out, %t1
  mul.f32 %out, %out, %gamma
  max.f32 %out, %out, 0.0
  min.f32 %out, %out, 1.0
  mad.s32 %oa, %y, $width, %x
  add.s32 %oa, %oa, $out_base
  st.global.f32 [%oa], %out
  ret
)";

class SsaoWorkload final : public Workload {
 public:
  SsaoWorkload()
      // Waiver: 2D row-interleaved tiles — a block's store interval spans
      // whole image rows, so adjacent tiles' interval hulls overlap even
      // though the actual word sets are disjoint (loads_local *is* proven;
      // only sharded simulation needs the waiver).
      : Workload(WorkloadSpec{"SSAO", gpurf::quality::MetricKind::kSsim, 1,
                              28, 8, /*assume_disjoint=*/true},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t tiles = scale == Scale::kFull ? 12 : 3;
    const uint32_t w = tiles * 16, h = tiles * 16;
    inst.launch.grid_x = tiles;
    inst.launch.grid_y = tiles;
    inst.launch.block_x = 16;
    inst.launch.block_y = 16;

    gpurf::Pcg32 rng(0x55A0u + variant, 7);
    gpurf::exec::Texture depth, normal;
    depth.width = normal.width = static_cast<int>(w);
    depth.height = normal.height = static_cast<int>(h);
    depth.texels.resize(size_t(w) * h);
    normal.texels.resize(size_t(w) * h);
    // Smooth-ish depth field: base gradient + quantized noise.
    for (uint32_t y = 0; y < h; ++y)
      for (uint32_t x = 0; x < w; ++x) {
        depth.texels[size_t(y) * w + x] =
            float(x + y) / float(w + h) * 0.5f +
            float(rng.next_below(64)) / 256.0f;
        normal.texels[size_t(y) * w + x] =
            float(rng.next_below(256)) / 256.0f;
      }
    inst.textures.push_back(std::move(depth));
    inst.textures.push_back(std::move(normal));

    const uint32_t out_base = inst.gmem.alloc(size_t(w) * h);
    inst.params = {out_base, w};
    inst.out_base = out_base;
    inst.out_words = size_t(w) * h;
    inst.image_w = static_cast<int>(w);
    inst.image_h = static_cast<int>(h);
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_ssao() {
  return std::make_unique<SsaoWorkload>();
}

}  // namespace gpurf::workloads
