#include "workloads/workload.hpp"

namespace gpurf::workloads {

std::vector<std::unique_ptr<Workload>> make_all_workloads() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(make_deferred());
  v.push_back(make_ssao());
  v.push_back(make_elevated());
  v.push_back(make_pathtracer());
  v.push_back(make_cfd());
  v.push_back(make_dwt2d());
  v.push_back(make_hotspot());
  v.push_back(make_hotspot3d());
  v.push_back(make_imgvf());
  v.push_back(make_gicov());
  v.push_back(make_hybridsort());
  return v;
}

}  // namespace gpurf::workloads
