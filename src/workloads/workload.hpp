#pragma once
// Workload harness: the paper's eleven CUDA kernels (Table 4) re-expressed
// in the project's PTX-like IR, each with deterministic synthetic inputs,
// an exact reference output and its quality metric.
//
// Substitution note (see DESIGN.md §1): the original kernels are CUDA
// programs run under GPGPU-Sim; ours are genuine programs in our IR with
// the same algorithmic skeleton, block geometry, shared-memory usage and
// register-pressure characteristics.  Every number reported downstream —
// register pressure, tuned precision, occupancy, IPC — is *computed* from
// these programs by the analyses and the simulator, never hard-coded.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/memory_access.hpp"
#include "common/cancel.hpp"
#include "exec/interp.hpp"
#include "exec/machine.hpp"
#include "ir/kernel.hpp"
#include "quality/metrics.hpp"

namespace gpurf::workloads {

struct WorkloadSpec {
  std::string name;
  gpurf::quality::MetricKind metric;
  int group = 2;                 ///< 1 graphics / 2 Rodinia-style / 3 binary
  uint32_t paper_regs = 0;       ///< Table 4 "register usage per thread"
  uint32_t warps_per_block = 8;  ///< Table 4
  /// Documented waiver of the parallel-execution memory contract
  /// (ISSUE 10): the static disjointness prover cannot establish
  /// loads_local / stores_disjoint for this kernel (interleaved-row tiles,
  /// data-dependent addressing, ...), but the author asserts the contract
  /// holds — block-parallel replay and sharded simulation stay enabled.
  /// Workloads without the waiver get the contract *proven* per launch or
  /// fall back to the bit-identical serial path.
  bool assume_disjoint = false;
};

/// Input scale: kSample instances are small (fast tuner probes); kFull
/// instances provide enough blocks to load all 15 SMs for timing runs.
enum class Scale { kSample, kFull };

/// Interpreter strategy knobs threaded into the ExecContext.  SoA vs the
/// scalar reference is bit-identical unconditionally; block-parallel vs
/// serial is bit-identical because no Table-4 kernel reads gmem written by
/// another block of the same launch (see ExecContext::block_parallel) —
/// benches and differential tests flip both knobs to pin this.
struct RunOptions {
  bool use_soa = true;
  bool block_parallel = true;
  /// Skip statically dead destination writebacks (PR 9).  Bit-identical
  /// outputs by construction (a value feeding any store is live at the
  /// store), pinned by the fuzz and workload differential tests; on by
  /// default because functional replay only observes memory.
  bool elide_dead_writes = true;
  /// Skip dynamic bounds checks for accesses the static memory pass proved
  /// in bounds against this instance (ISSUE 10).  Bit-identical by
  /// construction — a proven check can never fire — pinned by the fuzz
  /// oracle and bench_analysis identity gates.  On by default in replay;
  /// the timing simulator never elides (its soft-error model needs checks
  /// firing on flipped address registers).
  bool elide_bounds_checks = true;
  uint64_t* thread_insts = nullptr;  ///< out: executed thread instructions
  /// Cooperative cancellation/deadline checkpoint, polled at the start of
  /// every functional replay (a replay itself always runs to completion,
  /// so replays never leave partial state).  Null disables it.
  gpurf::common::CancelToken* cancel = nullptr;
};

class Workload {
 public:
  /// One prepared launch: memory contents, textures, parameters, geometry.
  struct Instance {
    gpurf::exec::GlobalMemory gmem;
    std::vector<gpurf::exec::Texture> textures;
    std::vector<uint32_t> params;
    gpurf::ir::LaunchConfig launch;
    uint32_t out_base = 0;   ///< result buffer (word address)
    size_t out_words = 0;
    int image_w = 0;         ///< SSIM metrics: output image dimensions
    int image_h = 0;
  };

  virtual ~Workload() = default;

  const WorkloadSpec& spec() const { return spec_; }
  const gpurf::ir::Kernel& kernel() const { return kernel_; }

  /// Build a fresh deterministic instance.  `variant` selects among the
  /// representative sample inputs the tuner trains on (§4.1).
  virtual Instance make_instance(Scale scale, uint32_t variant) const = 0;

  /// Number of distinct sample variants for tuning.
  virtual uint32_t num_sample_variants() const { return 2; }

  /// Metric bound to an instance's output shape.
  std::unique_ptr<gpurf::quality::QualityMetric> make_metric(
      const Instance& inst) const;

  /// Run the kernel functionally on `inst` (mutating its memory) and
  /// return the output buffer.  `pmap` quantizes f32 register writes;
  /// `range_check` asserts integer writes stay in their analysed ranges.
  std::vector<float> run(Instance& inst, const gpurf::exec::PrecisionMap* pmap,
                         const analysis::RangeAnalysisResult* range_check =
                             nullptr,
                         const RunOptions& opt = {}) const;

  /// Static memory proofs for one launch shape (ISSUE 10): per-instruction
  /// in-bounds flags (bounds-check elision) plus the disjointness verdicts
  /// gating block-parallel replay / sharded simulation.  Proofs depend on
  /// (launch geometry, params, gmem size), so they are cached per key —
  /// tuner probes replaying the same instance shape pay the solve once.
  /// `footprints` requests the per-block disjointness solves (skipped by
  /// elision-only callers; a cached entry is upgraded on demand).
  struct MemProofs {
    analysis::MemoryAccessAnalysis mem;
    std::vector<uint8_t> proven;  ///< per flattened instruction
    uint32_t proven_sites = 0;    ///< memory sites proven in bounds
    uint64_t gmem_words = 0;
    bool parallel_ok = false;  ///< loads_local proven or waived
    bool shard_ok = false;     ///< loads_local && stores_disjoint, or waived
  };
  std::shared_ptr<const MemProofs> mem_proofs(const Instance& inst,
                                              bool footprints = true) const;

 protected:
  Workload(WorkloadSpec spec, std::string_view asm_text);

  WorkloadSpec spec_;
  gpurf::ir::Kernel kernel_;

 private:
  /// Kernel analysis shared by every run of this workload (computed once;
  /// safe under concurrent run() calls from parallel tuner probes).
  mutable std::shared_ptr<const gpurf::exec::KernelAnalysis> analysis_;
  mutable std::once_flag analysis_once_;
  /// Memory-proof cache, keyed by (launch, gmem words, params); guarded by
  /// mem_mu_ against concurrent tuner probes.
  mutable std::mutex mem_mu_;
  mutable std::map<std::string, std::shared_ptr<const MemProofs>> mem_cache_;
};

/// All eleven Table-4 workloads, in the paper's order.
std::vector<std::unique_ptr<Workload>> make_all_workloads();

/// Individual factories.
std::unique_ptr<Workload> make_deferred();
std::unique_ptr<Workload> make_ssao();
std::unique_ptr<Workload> make_elevated();
std::unique_ptr<Workload> make_pathtracer();
std::unique_ptr<Workload> make_cfd();
std::unique_ptr<Workload> make_dwt2d();
std::unique_ptr<Workload> make_hotspot();
std::unique_ptr<Workload> make_hotspot3d();
std::unique_ptr<Workload> make_imgvf();
std::unique_ptr<Workload> make_gicov();
std::unique_ptr<Workload> make_hybridsort();

}  // namespace gpurf::workloads
