// Hotspot3D (Rodinia): 3-D thermal simulation — 7-point stencil marching
// the z dimension with register-rotated layers (tB/tC/tA), per-direction
// conductance coefficients, global-memory traffic each layer.
//
// Table 4: % deviation, 42 registers/thread, 8 warps/block (16x16).

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel hotspot3d
.param s32 temp_base
.param s32 power_base
.param s32 out_base
.param s32 width range(16,1024)
.param s32 height range(16,1024)
.param s32 depth range(4,64)
.reg s32 %tx
.reg s32 %ty
.reg s32 %gx
.reg s32 %gy
.reg s32 %w
.reg s32 %h
.reg s32 %d
.reg s32 %wm1
.reg s32 %hm1
.reg s32 %xl
.reg s32 %xr
.reg s32 %yu
.reg s32 %yd
.reg s32 %plane
.reg s32 %z
.reg s32 %zn
.reg s32 %zoff
.reg s32 %aC
.reg s32 %aN
.reg s32 %aS
.reg s32 %aE
.reg s32 %aW
.reg s32 %aA
.reg s32 %aP
.reg s32 %aO
.reg s32 %tbase
.reg s32 %pbase
.reg s32 %obase
.reg f32 %ce
.reg f32 %cw
.reg f32 %cn
.reg f32 %cs
.reg f32 %ct
.reg f32 %cb
.reg f32 %cc
.reg f32 %sdv
.reg f32 %amb
.reg f32 %tA
.reg f32 %tB
.reg f32 %tC
.reg f32 %tN
.reg f32 %tS
.reg f32 %tE
.reg f32 %tW
.reg f32 %pw
.reg f32 %acc
.reg f32 %sum
.reg f32 %tmin
.reg f32 %tmax
.reg f32 %ct2
.reg f32 %cb2
.reg f32 %pscale
.reg f32 %accsq
.reg f32 %camb2
.reg f32 %cap3
.reg f32 %pw2
.reg pred %p0

entry:
  mov.s32 %w, $width
  mov.s32 %h, $height
  mov.s32 %d, $depth
  mov.s32 %tx, %tid.x
  mov.s32 %ty, %tid.y
  mov.s32 %gx, %ctaid.x
  mad.s32 %gx, %gx, 16, %tx
  mov.s32 %gy, %ctaid.y
  mad.s32 %gy, %gy, 16, %ty
  sub.s32 %wm1, %w, 1
  sub.s32 %hm1, %h, 1
  // clamped in-plane neighbour coordinates
  sub.s32 %xl, %gx, 1
  max.s32 %xl, %xl, 0
  add.s32 %xr, %gx, 1
  min.s32 %xr, %xr, %wm1
  sub.s32 %yu, %gy, 1
  max.s32 %yu, %yu, 0
  add.s32 %yd, %gy, 1
  min.s32 %yd, %yd, %hm1
  mul.s32 %plane, %w, %h
  mov.s32 %tbase, $temp_base
  mov.s32 %pbase, $power_base
  mov.s32 %obase, $out_base
  // per-direction conductances (Rodinia ce/cw/cn/cs/ct/cb/cc)
  mov.f32 %ce, 0.03125
  mov.f32 %cw, 0.03125
  mov.f32 %cn, 0.0625
  mov.f32 %cs, 0.0625
  mov.f32 %ct, 0.125
  mov.f32 %cb, 0.125
  mov.f32 %cc, 0.5
  mov.f32 %sdv, 0.25
  mov.f32 %amb, 0.5
  mov.f32 %ct2, 0.0625
  mov.f32 %cb2, 0.03125
  mov.f32 %pscale, 2.0
  mov.f32 %tmin, 1000.0
  mov.f32 %tmax, -1000.0
  mov.f32 %accsq, 0.0
  mov.f32 %camb2, 0.015625
  mov.f32 %cap3, 0.75
  mov.f32 %pw2, 0.5
  // bootstrap: tB = tC = layer 0 value
  mad.s32 %aC, %gy, %w, %gx
  add.s32 %aC, %aC, %tbase
  ld.global.f32 %tC, [%aC]
  mov.f32 %tB, %tC
  mov.f32 %acc, 0.0
  mov.s32 %z, 0
z_loop:
  setp.ge.s32 %p0, %z, %d
  @%p0 bra z_done
z_body:
  // layer above (clamped at depth-1)
  add.s32 %zn, %z, 1
  sub.s32 %aO, %d, 1
  min.s32 %zn, %zn, %aO
  mul.s32 %zoff, %zn, %plane
  mad.s32 %aA, %gy, %w, %gx
  add.s32 %aA, %aA, %zoff
  add.s32 %aA, %aA, %tbase
  ld.global.f32 %tA, [%aA]
  // in-plane neighbours at layer z
  mul.s32 %zoff, %z, %plane
  mad.s32 %aN, %yu, %w, %gx
  add.s32 %aN, %aN, %zoff
  add.s32 %aN, %aN, %tbase
  ld.global.f32 %tN, [%aN]
  mad.s32 %aS, %yd, %w, %gx
  add.s32 %aS, %aS, %zoff
  add.s32 %aS, %aS, %tbase
  ld.global.f32 %tS, [%aS]
  mad.s32 %aE, %gy, %w, %xr
  add.s32 %aE, %aE, %zoff
  add.s32 %aE, %aE, %tbase
  ld.global.f32 %tE, [%aE]
  mad.s32 %aW, %gy, %w, %xl
  add.s32 %aW, %aW, %zoff
  add.s32 %aW, %aW, %tbase
  ld.global.f32 %tW, [%aW]
  mad.s32 %aP, %gy, %w, %gx
  add.s32 %aP, %aP, %zoff
  add.s32 %aP, %aP, %pbase
  ld.global.f32 %pw, [%aP]
  // sum = cc*tC + ce*tE + cw*tW + cn*tN + cs*tS + ct*tA + cb*tB + sdv*pw + amb*0.0625
  mul.f32 %sum, %tC, %cc
  mad.f32 %sum, %tE, %ce, %sum
  mad.f32 %sum, %tW, %cw, %sum
  mad.f32 %sum, %tN, %cn, %sum
  mad.f32 %sum, %tS, %cs, %sum
  mad.f32 %sum, %tA, %ct, %sum
  mad.f32 %sum, %tB, %cb, %sum
  mad.f32 %sum, %pw, %sdv, %sum
  mad.f32 %sum, %amb, 0.0625, %sum
  mad.f32 %sum, %tA, %ct2, %sum
  mad.f32 %sum, %tB, %cb2, %sum
  mad.f32 %sum, %pw, %pscale, %sum
  mad.f32 %sum, %pw, %pw2, %sum
  add.f32 %sum, %sum, %camb2
  mul.f32 %sum, %sum, %cap3
  min.f32 %tmin, %tmin, %sum
  max.f32 %tmax, %tmax, %sum
  add.f32 %acc, %acc, %sum
  mad.f32 %accsq, %sum, %sum, %accsq
  // write layer result
  mad.s32 %aO, %gy, %w, %gx
  add.s32 %aO, %aO, %zoff
  add.s32 %aO, %aO, %obase
  st.global.f32 [%aO], %sum
  // rotate layers
  mov.f32 %tB, %tC
  mov.f32 %tC, %tA
  add.s32 %z, %z, 1
  bra z_loop
z_done:
  // per-column statistics (range-limited mean) in the extra plane
  max.f32 %acc, %acc, %tmin
  min.f32 %acc, %acc, %tmax
  mad.f32 %acc, %accsq, 0.0625, %acc
  mul.s32 %zoff, %d, %plane
  mad.s32 %aO, %gy, %w, %gx
  add.s32 %aO, %aO, %zoff
  add.s32 %aO, %aO, %obase
  st.global.f32 [%aO], %acc
  ret
)";

class Hotspot3DWorkload final : public Workload {
 public:
  Hotspot3DWorkload()
      // Waiver: 2D row-interleaved tiles (see wl_ssao.cpp) — store hulls
      // of adjacent tiles overlap as intervals though the word sets are
      // disjoint.  loads_local is proven; only sharding needs the waiver.
      : Workload(WorkloadSpec{"Hotspot3D",
                              gpurf::quality::MetricKind::kDeviation, 2, 42,
                              8, /*assume_disjoint=*/true},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t tiles = scale == Scale::kFull ? 12 : 4;
    const uint32_t w = tiles * 16, h = tiles * 16;
    const uint32_t d = scale == Scale::kFull ? 8 : 4;
    inst.launch.grid_x = tiles;
    inst.launch.grid_y = tiles;
    inst.launch.block_x = 16;
    inst.launch.block_y = 16;

    gpurf::Pcg32 rng(0x3D07u + variant, 13);
    std::vector<float> temp(size_t(w) * h * d), power(size_t(w) * h * d);
    for (auto& t : temp) t = float(rng.next_below(256)) / 256.0f;
    for (auto& p : power) p = float(rng.next_below(64)) / 1024.0f;

    const uint32_t temp_base = inst.gmem.alloc_f32(temp);
    const uint32_t power_base = inst.gmem.alloc_f32(power);
    // Output: d layers + one checksum plane.
    const uint32_t out_base = inst.gmem.alloc(size_t(w) * h * (d + 1));
    inst.params = {temp_base, power_base, out_base, w, h, d};
    inst.out_base = out_base;
    inst.out_words = size_t(w) * h * (d + 1);
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_hotspot3d() {
  return std::make_unique<Hotspot3DWorkload>();
}

}  // namespace gpurf::workloads
