#include "workloads/pipeline.hpp"

#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "ir/printer.hpp"

namespace gpurf::workloads {

namespace {

using gpurf::quality::MetricKind;
using gpurf::quality::QualityLevel;

/// Probe: run the kernel on every sample variant with the candidate
/// precision map and combine the per-variant scores pessimistically
/// (worst case over the sample set, as the tuner must satisfy all
/// representative inputs).
class WorkloadProbe final : public gpurf::tuning::QualityProbe {
 public:
  explicit WorkloadProbe(const Workload& w) : w_(w) {
    for (uint32_t v = 0; v < w.num_sample_variants(); ++v) {
      Workload::Instance inst = w.make_instance(Scale::kSample, v);
      metric_ = w.make_metric(inst);
      refs_.push_back(w_.run(inst, nullptr));
    }
  }

  double evaluate(const gpurf::exec::PrecisionMap& pmap) override {
    double combined = 0.0;
    for (uint32_t v = 0; v < w_.num_sample_variants(); ++v) {
      Workload::Instance inst = w_.make_instance(Scale::kSample, v);
      const auto out = w_.run(inst, &pmap);
      const double s = metric_->score(refs_[v], out);
      combined = (v == 0) ? s : worse(combined, s);
    }
    return combined;
  }

  bool meets(double score, QualityLevel level) const override {
    return metric_->meets(score, level);
  }

 private:
  double worse(double a, double b) const {
    // Deviation grows with error; SSIM and binary shrink.
    return metric_->kind() == MetricKind::kDeviation ? std::max(a, b)
                                                     : std::min(a, b);
  }

  const Workload& w_;
  std::unique_ptr<gpurf::quality::QualityMetric> metric_;
  std::vector<std::vector<float>> refs_;
};

/// Tuned precision maps are the only expensive artifact (hundreds of
/// functional probes); cache them on disk keyed by a hash of the kernel
/// text so every bench binary in a session reuses them.  Delete
/// .gpurf_cache/ to force re-tuning.
std::string cache_path(const Workload& w) {
  const std::string text = gpurf::ir::print_kernel(w.kernel());
  const size_t h = std::hash<std::string>{}(text);
  return ".gpurf_cache/" + w.spec().name + "_" + std::to_string(h) + ".pmap";
}

bool load_pmaps(const Workload& w, gpurf::tuning::TuneResult& perfect,
                gpurf::tuning::TuneResult& high) {
  std::FILE* f = std::fopen(cache_path(w).c_str(), "r");
  if (!f) return false;
  const uint32_t n = w.kernel().num_regs();
  perfect.pmap.per_reg.assign(n, gpurf::fp::format_for_bits(32));
  high.pmap.per_reg.assign(n, gpurf::fp::format_for_bits(32));
  bool ok = true;
  for (uint32_t r = 0; r < n && ok; ++r) {
    int bp = 0, bh = 0;
    ok = std::fscanf(f, "%d %d", &bp, &bh) == 2;
    if (ok) {
      perfect.pmap.per_reg[r] = gpurf::fp::format_for_bits(bp);
      high.pmap.per_reg[r] = gpurf::fp::format_for_bits(bh);
    }
  }
  std::fclose(f);
  return ok;
}

void store_pmaps(const Workload& w, const gpurf::tuning::TuneResult& perfect,
                 const gpurf::tuning::TuneResult& high) {
  (void)std::system("mkdir -p .gpurf_cache");
  std::FILE* f = std::fopen(cache_path(w).c_str(), "w");
  if (!f) return;
  for (uint32_t r = 0; r < w.kernel().num_regs(); ++r)
    std::fprintf(f, "%d %d\n", perfect.pmap.per_reg[r].total_bits,
                 high.pmap.per_reg[r].total_bits);
  std::fclose(f);
}

PipelineResult compute_pipeline(const Workload& w) {
  PipelineResult pr;
  const auto& k = w.kernel();

  // Launch geometry of the full-scale run drives the special-register
  // ranges; sample and full instances share block dimensions.
  const auto inst = w.make_instance(Scale::kFull, 0);

  // 1. Integer range analysis (§4.2).
  pr.ranges = analysis::analyze_ranges(k, inst.launch);

  // 2. Float precision tuning (§4.1), two thresholds (§6.1).
  if (!load_pmaps(w, pr.tune_perfect, pr.tune_high)) {
    WorkloadProbe probe(w);
    gpurf::tuning::TunerOptions topt;
    topt.level = QualityLevel::kPerfect;
    pr.tune_perfect = gpurf::tuning::tune_precision(k, probe, topt);
    topt.level = QualityLevel::kHigh;
    pr.tune_high = gpurf::tuning::tune_precision(k, probe, topt);
    store_pmaps(w, pr.tune_perfect, pr.tune_high);
  }

  // 3. Slice allocation (§4.3) under each framework combination.
  using gpurf::alloc::AllocOptions;
  using gpurf::alloc::allocate_slices;
  AllocOptions none{false, false}, ints{true, false}, floats{false, true},
      both{true, true};

  pr.pressure.original =
      allocate_slices(k, nullptr, nullptr, none).num_physical_regs;
  pr.pressure.narrow_int =
      allocate_slices(k, &pr.ranges, nullptr, ints).num_physical_regs;
  pr.pressure.narrow_float_perfect =
      allocate_slices(k, nullptr, &pr.tune_perfect.pmap, floats)
          .num_physical_regs;
  pr.pressure.narrow_float_high =
      allocate_slices(k, nullptr, &pr.tune_high.pmap, floats)
          .num_physical_regs;
  pr.alloc_both_perfect =
      allocate_slices(k, &pr.ranges, &pr.tune_perfect.pmap, both);
  pr.alloc_both_high =
      allocate_slices(k, &pr.ranges, &pr.tune_high.pmap, both);
  pr.pressure.both_perfect = pr.alloc_both_perfect.num_physical_regs;
  pr.pressure.both_high = pr.alloc_both_high.num_physical_regs;
  return pr;
}

}  // namespace

const PipelineResult& run_pipeline(const Workload& w) {
  static std::map<std::string, std::unique_ptr<PipelineResult>> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(w.spec().name);
  if (it == cache.end()) {
    auto pr = std::make_unique<PipelineResult>(compute_pipeline(w));
    it = cache.emplace(w.spec().name, std::move(pr)).first;
  }
  return *it->second;
}

gpurf::sim::CompressionConfig make_compression_config(SimMode mode) {
  return mode == SimMode::kOriginal
             ? gpurf::sim::CompressionConfig::baseline()
             : gpurf::sim::CompressionConfig::paper_default();
}

gpurf::sim::KernelLaunchSpec make_launch_spec(const Workload& w,
                                              Workload::Instance& inst,
                                              const PipelineResult& pr,
                                              SimMode mode) {
  gpurf::sim::KernelLaunchSpec spec;
  spec.kernel = &w.kernel();
  spec.launch = inst.launch;
  spec.gmem = &inst.gmem;
  spec.textures = &inst.textures;
  spec.params = inst.params;
  switch (mode) {
    case SimMode::kOriginal:
      spec.regs_per_thread = pr.pressure.original;
      break;
    case SimMode::kCompressedPerfect:
      spec.regs_per_thread = pr.pressure.both_perfect;
      spec.precision = &pr.tune_perfect.pmap;
      spec.allocation = &pr.alloc_both_perfect;
      break;
    case SimMode::kCompressedHigh:
      spec.regs_per_thread = pr.pressure.both_high;
      spec.precision = &pr.tune_high.pmap;
      spec.allocation = &pr.alloc_both_high;
      break;
  }
  return spec;
}

}  // namespace gpurf::workloads
