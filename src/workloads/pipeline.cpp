#include "workloads/pipeline.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "ir/printer.hpp"

namespace gpurf::workloads {

namespace {

using gpurf::quality::MetricKind;
using gpurf::quality::QualityLevel;

/// Probe: run the kernel on every sample variant with the candidate
/// precision map and combine the per-variant scores pessimistically
/// (worst case over the sample set, as the tuner must satisfy all
/// representative inputs).
///
/// The pristine sample instances are built once at construction; each
/// evaluation copies one (memory images only) instead of regenerating it.
/// evaluate() is safe to call concurrently (required by the tuner's
/// speculative batch mode) and itself fans the variants out across the
/// shared thread pool when called from the serial path.
class WorkloadProbe final : public gpurf::tuning::QualityProbe {
 public:
  explicit WorkloadProbe(const Workload& w) : w_(w) {
    const uint32_t nv = w.num_sample_variants();
    protos_.reserve(nv);
    for (uint32_t v = 0; v < nv; ++v) {
      protos_.push_back(w.make_instance(Scale::kSample, v));
      metrics_.push_back(w.make_metric(protos_.back()));
      Workload::Instance inst = protos_[v];  // run() mutates the memory
      refs_.push_back(w_.run(inst, nullptr));
    }
  }

  double evaluate(const gpurf::exec::PrecisionMap& pmap) override {
    const size_t nv = protos_.size();
    std::vector<double> scores(nv, 0.0);
    gpurf::common::parallel_for(nv, [&](size_t v) {
      scores[v] = score_variant(pmap, v);
    });
    // Ordered pessimistic fold — identical to the serial loop regardless
    // of which thread scored which variant.
    double combined = scores[0];
    for (size_t v = 1; v < nv; ++v) combined = worse(combined, scores[v]);
    return combined;
  }

  /// Batch fan-out at (candidate x variant) granularity: the tuner's
  /// speculative chain of K candidates becomes K * num_variants
  /// independent functional replays, so the pool stays saturated even when
  /// K is smaller than the thread count (e.g. right after the adaptive
  /// width shrank).  The per-candidate pessimistic fold runs in variant
  /// order, identical to evaluate().
  std::vector<double> evaluate_batch(
      const std::vector<const gpurf::exec::PrecisionMap*>& pmaps) override {
    const size_t nv = protos_.size();
    const size_t nc = pmaps.size();
    std::vector<double> grid(nc * nv, 0.0);
    gpurf::common::parallel_for(nc * nv, [&](size_t i) {
      grid[i] = score_variant(*pmaps[i / nv], i % nv);
    });
    std::vector<double> scores(nc, 0.0);
    for (size_t c = 0; c < nc; ++c) {
      double combined = grid[c * nv];
      for (size_t v = 1; v < nv; ++v)
        combined = worse(combined, grid[c * nv + v]);
      scores[c] = combined;
    }
    return scores;
  }

  bool meets(double score, QualityLevel level) const override {
    return metrics_[0]->meets(score, level);
  }

 private:
  /// One functional replay: candidate pmap on sample variant v.
  double score_variant(const gpurf::exec::PrecisionMap& pmap, size_t v) {
    Workload::Instance inst = protos_[v];  // fresh copy per evaluation
    const auto out = w_.run(inst, &pmap);
    return metrics_[v]->score(refs_[v], out);
  }

  double worse(double a, double b) const {
    // Deviation grows with error; SSIM and binary shrink.
    return metrics_[0]->kind() == MetricKind::kDeviation ? std::max(a, b)
                                                         : std::min(a, b);
  }

  const Workload& w_;
  std::vector<Workload::Instance> protos_;
  std::vector<std::unique_ptr<gpurf::quality::QualityMetric>> metrics_;
  std::vector<std::vector<float>> refs_;
};

/// Tuned precision maps are the only expensive artifact (hundreds of
/// functional probes); cache them on disk keyed by a hash of the kernel
/// text so every bench binary in a session reuses them.  The directory is
/// $GPURF_CACHE_DIR when set, else ".gpurf_cache"; delete it to force
/// re-tuning.
std::string cache_dir() {
  if (const char* env = std::getenv("GPURF_CACHE_DIR"))
    if (env[0] != '\0') return env;
  return ".gpurf_cache";
}

std::string cache_path(const Workload& w) {
  const std::string text = gpurf::ir::print_kernel(w.kernel());
  const size_t h = std::hash<std::string>{}(text);
  return cache_dir() + "/" + w.spec().name + "_" + std::to_string(h) +
         ".pmap";
}

bool load_pmaps(const Workload& w, gpurf::tuning::TuneResult& perfect,
                gpurf::tuning::TuneResult& high) {
  std::FILE* f = std::fopen(cache_path(w).c_str(), "r");
  if (!f) return false;
  const uint32_t n = w.kernel().num_regs();
  perfect.pmap.per_reg.assign(n, gpurf::fp::format_for_bits(32));
  high.pmap.per_reg.assign(n, gpurf::fp::format_for_bits(32));
  bool ok = true;
  for (uint32_t r = 0; r < n && ok; ++r) {
    int bp = 0, bh = 0;
    ok = std::fscanf(f, "%d %d", &bp, &bh) == 2;
    if (ok) {
      perfect.pmap.per_reg[r] = gpurf::fp::format_for_bits(bp);
      high.pmap.per_reg[r] = gpurf::fp::format_for_bits(bh);
    }
  }
  std::fclose(f);
  return ok;
}

void store_pmaps(const Workload& w, const gpurf::tuning::TuneResult& perfect,
                 const gpurf::tuning::TuneResult& high) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir(), ec);
  if (ec) return;  // cache is best-effort
  std::FILE* f = std::fopen(cache_path(w).c_str(), "w");
  if (!f) return;
  for (uint32_t r = 0; r < w.kernel().num_regs(); ++r)
    std::fprintf(f, "%d %d\n", perfect.pmap.per_reg[r].total_bits,
                 high.pmap.per_reg[r].total_bits);
  std::fclose(f);
}

}  // namespace

PipelineResult compute_pipeline(const Workload& w,
                                const PipelineOptions& opt) {
  PipelineResult pr;
  const auto& k = w.kernel();

  // Launch geometry of the full-scale run drives the special-register
  // ranges; sample and full instances share block dimensions.
  const auto inst = w.make_instance(Scale::kFull, 0);

  // 1. Integer range analysis (§4.2).
  pr.ranges = analysis::analyze_ranges(k, inst.launch);

  // 2. Float precision tuning (§4.1), two thresholds (§6.1).
  if (!opt.use_disk_cache || !load_pmaps(w, pr.tune_perfect, pr.tune_high)) {
    WorkloadProbe probe(w);
    gpurf::tuning::TunerOptions topt;
    topt.speculate_batch =
        opt.tuner_batch > 0 ? opt.tuner_batch
                            : gpurf::common::ThreadPool::instance().size();
    topt.level = QualityLevel::kPerfect;
    pr.tune_perfect = gpurf::tuning::tune_precision(k, probe, topt);
    topt.level = QualityLevel::kHigh;
    pr.tune_high = gpurf::tuning::tune_precision(k, probe, topt);
    if (opt.use_disk_cache) store_pmaps(w, pr.tune_perfect, pr.tune_high);
  }

  // 3. Slice allocation (§4.3) under each framework combination.
  using gpurf::alloc::AllocOptions;
  using gpurf::alloc::allocate_slices;
  AllocOptions none{false, false}, ints{true, false}, floats{false, true},
      both{true, true};

  pr.pressure.original =
      allocate_slices(k, nullptr, nullptr, none).num_physical_regs;
  pr.pressure.narrow_int =
      allocate_slices(k, &pr.ranges, nullptr, ints).num_physical_regs;
  pr.pressure.narrow_float_perfect =
      allocate_slices(k, nullptr, &pr.tune_perfect.pmap, floats)
          .num_physical_regs;
  pr.pressure.narrow_float_high =
      allocate_slices(k, nullptr, &pr.tune_high.pmap, floats)
          .num_physical_regs;
  pr.alloc_both_perfect =
      allocate_slices(k, &pr.ranges, &pr.tune_perfect.pmap, both);
  pr.alloc_both_high =
      allocate_slices(k, &pr.ranges, &pr.tune_high.pmap, both);
  pr.pressure.both_perfect = pr.alloc_both_perfect.num_physical_regs;
  pr.pressure.both_high = pr.alloc_both_high.num_physical_regs;
  return pr;
}

const PipelineResult& run_pipeline(const Workload& w) {
  // Per-workload once-entries instead of one global lock: independent
  // workloads requested from different threads tune concurrently, while
  // each workload's pipeline still runs exactly once.
  struct Entry {
    std::once_flag once;
    std::unique_ptr<PipelineResult> result;
  };
  static std::mutex mu;                        // guards the map shape only
  static std::map<std::string, Entry> cache;   // node-stable addresses

  Entry* e;
  {
    std::lock_guard<std::mutex> lock(mu);
    e = &cache[w.spec().name];
  }
  std::call_once(e->once,
                 [&] { e->result = std::make_unique<PipelineResult>(
                           compute_pipeline(w)); });
  return *e->result;
}

gpurf::sim::CompressionConfig make_compression_config(SimMode mode) {
  return mode == SimMode::kOriginal
             ? gpurf::sim::CompressionConfig::baseline()
             : gpurf::sim::CompressionConfig::paper_default();
}

gpurf::sim::KernelLaunchSpec make_launch_spec(const Workload& w,
                                              Workload::Instance& inst,
                                              const PipelineResult& pr,
                                              SimMode mode) {
  gpurf::sim::KernelLaunchSpec spec;
  spec.kernel = &w.kernel();
  spec.launch = inst.launch;
  spec.gmem = &inst.gmem;
  spec.textures = &inst.textures;
  spec.params = inst.params;
  switch (mode) {
    case SimMode::kOriginal:
      spec.regs_per_thread = pr.pressure.original;
      break;
    case SimMode::kCompressedPerfect:
      spec.regs_per_thread = pr.pressure.both_perfect;
      spec.precision = &pr.tune_perfect.pmap;
      spec.allocation = &pr.alloc_both_perfect;
      break;
    case SimMode::kCompressedHigh:
      spec.regs_per_thread = pr.pressure.both_high;
      spec.precision = &pr.tune_high.pmap;
      spec.allocation = &pr.alloc_both_high;
      break;
  }
  return spec;
}

}  // namespace gpurf::workloads
