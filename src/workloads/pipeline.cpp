#include "workloads/pipeline.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fp/format.hpp"
#include "ir/printer.hpp"

namespace gpurf::workloads {

namespace {

using gpurf::quality::MetricKind;
using gpurf::quality::QualityLevel;

/// Probe: run the kernel on every sample variant with the candidate
/// precision map and combine the per-variant scores pessimistically
/// (worst case over the sample set, as the tuner must satisfy all
/// representative inputs).
///
/// The pristine sample instances are built once at construction; each
/// evaluation copies one (memory images only) instead of regenerating it.
/// evaluate() is safe to call concurrently (required by the tuner's
/// speculative batch mode) and itself fans the variants out across the
/// current thread pool when called from the serial path.
class WorkloadProbe final : public gpurf::tuning::QualityProbe {
 public:
  WorkloadProbe(const Workload& w, const RunOptions& run) : w_(w), run_(run) {
    run_.thread_insts = nullptr;
    const uint32_t nv = w.num_sample_variants();
    protos_.reserve(nv);
    for (uint32_t v = 0; v < nv; ++v) {
      protos_.push_back(w.make_instance(Scale::kSample, v));
      metrics_.push_back(w.make_metric(protos_.back()));
      Workload::Instance inst = protos_[v];  // run() mutates the memory
      refs_.push_back(w_.run(inst, nullptr, nullptr, run_));
    }
  }

  double evaluate(const gpurf::exec::PrecisionMap& pmap) override {
    const size_t nv = protos_.size();
    std::vector<double> scores(nv, 0.0);
    gpurf::common::parallel_for(nv, [&](size_t v) {
      scores[v] = score_variant(pmap, v);
    });
    // Ordered pessimistic fold — identical to the serial loop regardless
    // of which thread scored which variant.
    double combined = scores[0];
    for (size_t v = 1; v < nv; ++v) combined = worse(combined, scores[v]);
    return combined;
  }

  /// Batch fan-out at (candidate x variant) granularity: the tuner's
  /// speculative chain of K candidates becomes K * num_variants
  /// independent functional replays, so the pool stays saturated even when
  /// K is smaller than the thread count (e.g. right after the adaptive
  /// width shrank).  The per-candidate pessimistic fold runs in variant
  /// order, identical to evaluate().
  std::vector<double> evaluate_batch(
      const std::vector<const gpurf::exec::PrecisionMap*>& pmaps) override {
    const size_t nv = protos_.size();
    const size_t nc = pmaps.size();
    std::vector<double> grid(nc * nv, 0.0);
    gpurf::common::parallel_for(nc * nv, [&](size_t i) {
      grid[i] = score_variant(*pmaps[i / nv], i % nv);
    });
    std::vector<double> scores(nc, 0.0);
    for (size_t c = 0; c < nc; ++c) {
      double combined = grid[c * nv];
      for (size_t v = 1; v < nv; ++v)
        combined = worse(combined, grid[c * nv + v]);
      scores[c] = combined;
    }
    return scores;
  }

  bool meets(double score, QualityLevel level) const override {
    return metrics_[0]->meets(score, level);
  }

 private:
  /// One functional replay: candidate pmap on sample variant v.
  double score_variant(const gpurf::exec::PrecisionMap& pmap, size_t v) {
    Workload::Instance inst = protos_[v];  // fresh copy per evaluation
    const auto out = w_.run(inst, &pmap, nullptr, run_);
    return metrics_[v]->score(refs_[v], out);
  }

  double worse(double a, double b) const {
    // Deviation grows with error; SSIM and binary shrink.
    return metrics_[0]->kind() == MetricKind::kDeviation ? std::max(a, b)
                                                         : std::min(a, b);
  }

  const Workload& w_;
  RunOptions run_;
  std::vector<Workload::Instance> protos_;
  std::vector<std::unique_ptr<gpurf::quality::QualityMetric>> metrics_;
  std::vector<std::vector<float>> refs_;
};

/// Cache schema version.  v1 files (headerless "bp bh" rows) are rejected
/// as unversioned; bump this when the row layout changes.
constexpr int kPmapCacheVersion = 2;

constexpr const char kPmapMagic[] = "gpurf-pmap";

bool is_table3_width(int bits) {
  for (const auto& f : gpurf::fp::table3_formats())
    if (f.total_bits == bits) return true;
  return false;
}

}  // namespace

std::unique_ptr<gpurf::tuning::QualityProbe> make_workload_probe(
    const Workload& w, const RunOptions& run) {
  return std::make_unique<WorkloadProbe>(w, run);
}

const std::string& default_cache_dir() {
  // Environment read exactly once per process (env-var-as-default rule).
  static const std::string dir = [] {
    if (const char* env = std::getenv("GPURF_CACHE_DIR"))
      if (env[0] != '\0') return std::string(env);
    return std::string(".gpurf_cache");
  }();
  return dir;
}

uint64_t kernel_cache_fingerprint(const Workload& w) {
  // FNV-1a over the printed kernel text.  Deliberately NOT
  // std::hash<std::string>: the fingerprint lives in on-disk cache
  // filenames and headers, so it must be identical across standard-library
  // implementations and releases.
  const std::string text = gpurf::ir::print_kernel(w.kernel());
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string pmap_cache_path(const Workload& w, const std::string& dir) {
  const std::string& d = dir.empty() ? default_cache_dir() : dir;
  return d + "/" + w.spec().name + "_" +
         std::to_string(kernel_cache_fingerprint(w)) + ".pmap";
}

gpurf::Status load_pmap_cache(const Workload& w, const std::string& dir,
                              gpurf::tuning::TuneResult& perfect,
                              gpurf::tuning::TuneResult& high) {
  const std::string path = pmap_cache_path(w, dir);
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return gpurf::Status::NotFound("no cache entry at " + path);

  auto data_loss = [&](const std::string& why) {
    std::fclose(f);
    return gpurf::Status::DataLoss("cache entry " + path + ": " + why);
  };

  // Header: magic, schema version, format-table version, kernel
  // fingerprint, register count.  Any mismatch means the entry was tuned
  // by an incompatible build (or is not a cache file at all); the caller
  // must re-tune rather than trust it.
  char magic[16] = {0};
  int schema = 0, fmtver = 0;
  uint64_t fp = 0;
  uint32_t nregs = 0;
  if (std::fscanf(f, "%15s %d %d %" SCNu64 " %" SCNu32, magic, &schema,
                  &fmtver, &fp, &nregs) != 5)
    return data_loss("unversioned or malformed header");
  if (std::string(magic) != kPmapMagic)
    return data_loss("bad magic '" + std::string(magic) + "'");
  if (schema != kPmapCacheVersion)
    return data_loss("schema version " + std::to_string(schema) +
                     " != " + std::to_string(kPmapCacheVersion));
  if (fmtver != gpurf::fp::kFormatTableVersion)
    return data_loss("format-table version " + std::to_string(fmtver) +
                     " != " + std::to_string(gpurf::fp::kFormatTableVersion));
  if (fp != kernel_cache_fingerprint(w))
    return data_loss("kernel fingerprint mismatch (stale entry)");
  if (nregs != w.kernel().num_regs())
    return data_loss("register count mismatch");

  perfect.pmap.per_reg.assign(nregs, gpurf::fp::format_for_bits(32));
  high.pmap.per_reg.assign(nregs, gpurf::fp::format_for_bits(32));
  for (uint32_t r = 0; r < nregs; ++r) {
    int bp = 0, bh = 0;
    if (std::fscanf(f, "%d %d", &bp, &bh) != 2)
      return data_loss("truncated at row " + std::to_string(r));
    if (!is_table3_width(bp) || !is_table3_width(bh))
      return data_loss("non-Table-3 width at row " + std::to_string(r));
    perfect.pmap.per_reg[r] = gpurf::fp::format_for_bits(bp);
    high.pmap.per_reg[r] = gpurf::fp::format_for_bits(bh);
  }
  std::fclose(f);
  return gpurf::Status::Ok();
}

gpurf::Status store_pmap_cache(const Workload& w, const std::string& dir,
                               const gpurf::tuning::TuneResult& perfect,
                               const gpurf::tuning::TuneResult& high) {
  const std::string& d = dir.empty() ? default_cache_dir() : dir;
  std::error_code ec;
  std::filesystem::create_directories(d, ec);
  if (ec)
    return gpurf::Status::Internal("cannot create cache dir " + d + ": " +
                                   ec.message());
  // Write-then-rename: the entry appears at its final path only complete.
  // Readers (and crashed/cancelled writers) can therefore never observe a
  // half-written cache file — they see either the old entry or the new
  // one.  rename(2) is atomic within a filesystem and the temp file sits
  // in the cache dir itself.
  const std::string path = pmap_cache_path(w, d);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return gpurf::Status::Internal("cannot open " + tmp);
  std::fprintf(f, "%s %d %d %" PRIu64 " %u\n", kPmapMagic, kPmapCacheVersion,
               gpurf::fp::kFormatTableVersion, kernel_cache_fingerprint(w),
               w.kernel().num_regs());
  for (uint32_t r = 0; r < w.kernel().num_regs(); ++r)
    std::fprintf(f, "%d %d\n", perfect.pmap.per_reg[r].total_bits,
                 high.pmap.per_reg[r].total_bits);
  if (std::fclose(f) != 0 || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return gpurf::Status::Internal("cannot commit " + path);
  }
  return gpurf::Status::Ok();
}

PipelineResult compute_pipeline(const Workload& w,
                                const PipelineOptions& opt) {
  PipelineResult pr;
  const auto& k = w.kernel();

  // Per-job control channel: stage transitions double as cancellation/
  // deadline checkpoints, so a stop request takes effect *between* the
  // Fig.-7 stages (the tuner adds its own per-batch checkpoints inside
  // stage 2).  The unwound exception leaves pr on the stack — no shared
  // structure has been touched yet when it escapes.
  gpurf::common::CancelToken* tok = opt.tuner.cancel;
  auto enter_stage = [&](gpurf::common::JobStage s) {
    if (!tok) return;
    tok->set_stage(s);
    tok->checkpoint();
  };

  // Launch geometry of the full-scale run drives the special-register
  // ranges; sample and full instances share block dimensions.
  const auto inst = w.make_instance(Scale::kFull, 0);

  // 1. Integer range analysis (§4.2).
  enter_stage(gpurf::common::JobStage::kRanges);
  pr.ranges = analysis::analyze_ranges(k, inst.launch);

  // 2. Float precision tuning (§4.1), two thresholds (§6.1).  A stale or
  // corrupt disk-cache entry (non-OK, non-NotFound load) falls through to
  // a fresh tune — the entry is overwritten with a current one below.
  enter_stage(gpurf::common::JobStage::kTuning);
  // A session whose cache dir proved unwritable stops touching the disk
  // entirely (loads too: a dir that rejects writes often rejects reads,
  // and a disabled cache should behave like --no-disk-cache).
  const auto disk_ok = [&] {
    return opt.use_disk_cache &&
           !(opt.stats && opt.stats->disk_cache_disabled.load(
                              std::memory_order_relaxed));
  };
  bool cached = false;
  if (disk_ok()) {
    const gpurf::Status loaded =
        load_pmap_cache(w, opt.cache_dir, pr.tune_perfect, pr.tune_high);
    cached = loaded.ok();
    if (opt.stats) {
      if (loaded.ok())
        opt.stats->disk_cache_hits.fetch_add(1, std::memory_order_relaxed);
      else if (loaded.code() == gpurf::StatusCode::kDataLoss)
        opt.stats->disk_cache_stale_rejections.fetch_add(
            1, std::memory_order_relaxed);
    }
  }
  if (!cached) {
    WorkloadProbe probe(w, opt.run);
    gpurf::tuning::TunerOptions topt = opt.tuner;
    if (opt.tuner_batch > 0) topt.speculate_batch = opt.tuner_batch;
    // speculate_batch <= 0 resolves to the current pool width inside
    // tune_precision.
    // Both final validation probes run as one batch after the second tune
    // instead of serially inside each call (they are independent replays,
    // so the pool overlaps them).  Scores are bit-identical to the serial
    // path: evaluate() is a pure function of the pmap.
    topt.defer_validation = true;
    topt.level = QualityLevel::kPerfect;
    pr.tune_perfect = gpurf::tuning::tune_precision(k, probe, topt);
    topt.level = QualityLevel::kHigh;
    pr.tune_high = gpurf::tuning::tune_precision(k, probe, topt);

    enter_stage(gpurf::common::JobStage::kValidating);
    const std::vector<const gpurf::exec::PrecisionMap*> finals = {
        &pr.tune_perfect.pmap, &pr.tune_high.pmap};
    const std::vector<double> scores = probe.evaluate_batch(finals);
    pr.tune_perfect.final_score = scores[0];
    pr.tune_high.final_score = scores[1];
    ++pr.tune_perfect.evaluations;
    ++pr.tune_high.evaluations;
    GPURF_ASSERT(probe.meets(scores[0], QualityLevel::kPerfect) &&
                     probe.meets(scores[1], QualityLevel::kHigh),
                 "accepted assignment fails validation");

    // Past this point the result is complete; the store is atomic
    // (write-then-rename) and no checkpoint runs between validation and
    // store, so the disk cache only ever holds fully-validated entries.
    // A failed store (read-only dir, disk full) degrades gracefully: log
    // once, latch the cache off for this session, keep serving from
    // memory — it must never escape as an error from a submit path.
    if (disk_ok()) {
      const gpurf::Status stored =
          store_pmap_cache(w, opt.cache_dir, pr.tune_perfect, pr.tune_high);
      if (!stored.ok() && opt.stats) {
        opt.stats->disk_cache_write_failures.fetch_add(
            1, std::memory_order_relaxed);
        if (!opt.stats->disk_cache_disabled.exchange(
                true, std::memory_order_relaxed))
          std::fprintf(stderr,
                       "gpurf: disk cache disabled for this session (%s)\n",
                       stored.to_string().c_str());
      }
    }
  }

  // 3. Slice allocation (§4.3) under each framework combination.
  enter_stage(gpurf::common::JobStage::kAllocating);
  using gpurf::alloc::AllocOptions;
  using gpurf::alloc::allocate_slices;
  AllocOptions none{false, false}, ints{true, false}, floats{false, true},
      both{true, true};

  pr.pressure.original =
      allocate_slices(k, nullptr, nullptr, none).num_physical_regs;
  pr.pressure.narrow_int =
      allocate_slices(k, &pr.ranges, nullptr, ints).num_physical_regs;
  pr.pressure.narrow_float_perfect =
      allocate_slices(k, nullptr, &pr.tune_perfect.pmap, floats)
          .num_physical_regs;
  pr.pressure.narrow_float_high =
      allocate_slices(k, nullptr, &pr.tune_high.pmap, floats)
          .num_physical_regs;
  pr.alloc_both_perfect =
      allocate_slices(k, &pr.ranges, &pr.tune_perfect.pmap, both);
  pr.alloc_both_high =
      allocate_slices(k, &pr.ranges, &pr.tune_high.pmap, both);
  pr.pressure.both_perfect = pr.alloc_both_perfect.num_physical_regs;
  pr.pressure.both_high = pr.alloc_both_high.num_physical_regs;
  return pr;
}

const PipelineResult& PipelineCache::get(const Workload& w,
                                         gpurf::common::CancelToken* cancel) {
  // Per-workload once-entries instead of one cache-wide lock: independent
  // workloads requested from different threads tune concurrently, while
  // each workload's pipeline still runs exactly once per cache instance.
  Entry* e;
  {
    gpurf::common::MutexLock lock(mu_);
    e = &cache_[w.spec().name];
  }
  // Win the computing latch or wait out the current winner.  If the
  // winner publishes, every waiter returns its result (a memo hit); if it
  // unwinds (cancelled / deadline / core error), nothing partial is
  // memoized and exactly one waiter is woken to recompute with its own
  // token — see the header for why this is not a std::once_flag.
  gpurf::common::MutexLock lk(e->mu);
  while (true) {
    if (e->result) {
      if (opt_.stats)
        opt_.stats->memo_hits.fetch_add(1, std::memory_order_relaxed);
      return *e->result;
    }
    if (!e->computing) break;
    e->cv.wait(lk.native());
  }
  e->computing = true;
  lk.unlock();
  if (opt_.stats)
    opt_.stats->memo_misses.fetch_add(1, std::memory_order_relaxed);
  PipelineOptions o = opt_;
  o.tuner.cancel = cancel;
  o.run.cancel = cancel;
  std::unique_ptr<PipelineResult> fresh;
  try {
    fresh = std::make_unique<PipelineResult>(compute_pipeline(w, o));
  } catch (...) {
    lk.lock();
    e->computing = false;
    e->cv.notify_one();
    throw;
  }
  lk.lock();
  e->result = std::move(fresh);
  e->computing = false;
  e->cv.notify_all();
  return *e->result;
}

gpurf::sim::CompressionConfig make_compression_config(SimMode mode) {
  return mode == SimMode::kOriginal
             ? gpurf::sim::CompressionConfig::baseline()
             : gpurf::sim::CompressionConfig::paper_default();
}

gpurf::sim::KernelLaunchSpec make_launch_spec(const Workload& w,
                                              Workload::Instance& inst,
                                              const PipelineResult& pr,
                                              SimMode mode) {
  gpurf::sim::KernelLaunchSpec spec;
  spec.kernel = &w.kernel();
  spec.launch = inst.launch;
  spec.gmem = &inst.gmem;
  spec.textures = &inst.textures;
  spec.params = inst.params;
  switch (mode) {
    case SimMode::kOriginal:
      spec.regs_per_thread = pr.pressure.original;
      break;
    case SimMode::kCompressedPerfect:
      spec.regs_per_thread = pr.pressure.both_perfect;
      spec.precision = &pr.tune_perfect.pmap;
      spec.allocation = &pr.alloc_both_perfect;
      break;
    case SimMode::kCompressedHigh:
      spec.regs_per_thread = pr.pressure.both_high;
      spec.precision = &pr.tune_high.pmap;
      spec.allocation = &pr.alloc_both_high;
      break;
  }
  return spec;
}

}  // namespace gpurf::workloads
