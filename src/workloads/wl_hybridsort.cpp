// Hybridsort (bucket-count phase): every thread classifies 16 float keys
// into 16 buckets kept as register-resident saturating counters, four keys
// per loop iteration, then emits its private histogram.  The output is
// integer-exact, so the quality metric is binary (Table 4): any
// compression-induced bucket flip fails both quality levels — only
// losslessly representable float formats are accepted, making perfect and
// high behave identically (§6.1).
//
// Table 4: binary metric, 36 registers/thread, 8 warps/block (256x1).

#include <string>

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

std::string build_asm() {
  std::string s = R"(
.kernel hybridsort
.param s32 keys_base
.param s32 hist_base
.param s32 nthreads range(256,1048576)
.reg s32 %lin
.reg s32 %gid
.reg s32 %ka
.reg s32 %ha
.reg s32 %i
.reg s32 %b0
.reg s32 %b1
.reg s32 %b2
.reg s32 %b3
.reg s32 %inc
.reg s32 %c<16>
.reg f32 %k0
.reg f32 %k1
.reg f32 %k2
.reg f32 %k3
.reg f32 %scale
.reg f32 %shift
.reg f32 %q0
.reg f32 %q1
.reg f32 %q2
.reg f32 %q3
.reg f32 %ksum
.reg f32 %kmin
.reg f32 %kmax
.reg f32 %pvt
.reg f32 %scale2
.reg s32 %bsum
.reg pred %pe
.reg pred %pq

entry:
  mov.s32 %lin, %tid.x
  mov.s32 %gid, %ctaid.x
  mad.s32 %gid, %gid, 256, %lin
  mov.f32 %scale, 16.0
  mov.f32 %shift, 0.0
  mov.f32 %ksum, 0.0
  mov.f32 %kmin, 1.0
  mov.f32 %kmax, 0.0
  mov.f32 %pvt, 0.5
  mov.f32 %scale2, 0.0625
  mov.s32 %bsum, 0
)";
  for (int c = 0; c < 16; ++c)
    s += "  mov.s32 %c" + std::to_string(c) + ", 0\n";
  s += R"(  shl.s32 %ka, %gid, 4
  add.s32 %ka, %ka, $keys_base
  mul.s32 %ha, %gid, 20
  add.s32 %ha, %ha, $hist_base
  mov.s32 %i, 0
key_loop:
  setp.ge.s32 %pq, %i, 4
  @%pq bra key_done
key_body:
  ld.global.f32 %k0, [%ka]
  ld.global.f32 %k1, [%ka+1]
  ld.global.f32 %k2, [%ka+2]
  ld.global.f32 %k3, [%ka+3]
  add.s32 %ka, %ka, 4
)";
  for (int j = 0; j < 4; ++j) {
    const std::string k = "%k" + std::to_string(j);
    const std::string q = "%q" + std::to_string(j);
    const std::string b = "%b" + std::to_string(j);
    s += "  sub.f32 " + q + ", " + k + ", %shift\n";
    s += "  mul.f32 " + q + ", " + q + ", %scale\n";
    s += "  cvt.s32.f32 " + b + ", " + q + "\n";
    s += "  max.s32 " + b + ", " + b + ", 0\n";
    s += "  min.s32 " + b + ", " + b + ", 15\n";
  }
  // Saturating per-bucket counters: bounded for the range analysis.
  for (int c = 0; c < 16; ++c) {
    for (int j = 0; j < 4; ++j) {
      const std::string cc = "%c" + std::to_string(c);
      s += "  setp.eq.s32 %pe, %b" + std::to_string(j) + ", " +
           std::to_string(c) + "\n";
      s += "  selp.s32 %inc, 1, 0, %pe\n";
      s += "  add.s32 " + cc + ", " + cc + ", %inc\n";
      s += "  min.s32 " + cc + ", " + cc + ", 31\n";
    }
  }
  s += R"(  // key statistics keep the four keys live across the counter phase
  add.f32 %ksum, %k0, %ksum
  add.f32 %ksum, %k1, %ksum
  add.f32 %ksum, %k2, %ksum
  add.f32 %ksum, %k3, %ksum
  min.f32 %kmin, %kmin, %k0
  min.f32 %kmin, %kmin, %k1
  max.f32 %kmax, %kmax, %k2
  max.f32 %kmax, %kmax, %k3
  add.s32 %bsum, %bsum, %b0
  add.s32 %bsum, %bsum, %b1
  add.s32 %bsum, %bsum, %b2
  add.s32 %bsum, %bsum, %b3
  min.s32 %bsum, %bsum, 255
  add.s32 %i, %i, 1
  bra key_loop
key_done:
)";
  for (int c = 0; c < 16; ++c) {
    s += "  st.global.s32 [%ha+" + std::to_string(c) + "], %c" +
         std::to_string(c) + "\n";
  }
  s += R"(  sub.f32 %kmax, %kmax, %kmin
  mul.f32 %kmax, %kmax, %scale2
  sub.f32 %ksum, %ksum, %pvt
  st.global.f32 [%ha+16], %ksum
  st.global.f32 [%ha+17], %kmin
  st.global.f32 [%ha+18], %kmax
  st.global.s32 [%ha+19], %bsum
  ret
)";
  return s;
}

class HybridsortWorkload final : public Workload {
 public:
  HybridsortWorkload()
      // Waiver: bucket loads are data-dependent (indices read from
      // memory), so loads_local is unprovable — though the histogram
      // buckets each block reads are its own (stores_disjoint *is*
      // proven).
      : Workload(WorkloadSpec{"Hybridsort",
                              gpurf::quality::MetricKind::kBinary, 3, 36, 8,
                              /*assume_disjoint=*/true},
                 build_asm()) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t blocks = scale == Scale::kFull ? 96 : 8;
    const uint32_t nthreads = blocks * 256;
    inst.launch.grid_x = blocks;
    inst.launch.block_x = 256;

    gpurf::Pcg32 rng(0xB5047u + variant, 3);
    std::vector<float> keys(size_t(nthreads) * 16);
    for (auto& k : keys) k = float(rng.next_below(256)) / 256.0f;

    const uint32_t keys_base = inst.gmem.alloc_f32(keys);
    const uint32_t hist_base = inst.gmem.alloc(size_t(nthreads) * 20);
    inst.params = {keys_base, hist_base, nthreads};
    inst.out_base = hist_base;
    inst.out_words = size_t(nthreads) * 20;
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_hybridsort() {
  return std::make_unique<HybridsortWorkload>();
}

}  // namespace gpurf::workloads
