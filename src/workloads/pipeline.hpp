#pragma once
// The full static compression pipeline of Fig. 7, packaged per workload:
//
//   range analysis (§4.2)  ->  integer bitwidths
//   precision tuning (§4.1) -> float formats, per quality level
//   slice allocation (§4.3) -> register pressure + indirection table
//
// plus helpers to derive simulator launch specs for the paper's
// experiment configurations (original / compressed / artificial).
//
// Ownership model (ISSUE 3): pipeline results memoize inside a
// PipelineCache instance, and the expensive tuned precision maps persist
// in a versioned on-disk cache under PipelineOptions::cache_dir.  The
// public entry point is gpurf::Engine (src/api/engine.hpp), which owns one
// PipelineCache per session — two Engines with different options never
// share state.  The free run_pipeline() below survives as a thin shim over
// the process-default Engine for legacy callers; compute_pipeline() is the
// raw, memo-free computation used by benches and determinism tests.

#include <atomic>
#include <condition_variable>
#include <memory>
#include <map>
#include <mutex>
#include <string>

#include "alloc/slice_alloc.hpp"
#include "analysis/range_analysis.hpp"
#include "api/status.hpp"
#include "common/thread_annotations.hpp"
#include "sim/gpu.hpp"
#include "tuning/tuner.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

/// Register pressure under each framework combination (Fig. 9's six bars).
struct PressureReport {
  uint32_t original = 0;
  uint32_t narrow_int = 0;
  uint32_t narrow_float_perfect = 0;
  uint32_t narrow_float_high = 0;
  uint32_t both_perfect = 0;
  uint32_t both_high = 0;
};

struct PipelineResult {
  analysis::RangeAnalysisResult ranges;
  gpurf::tuning::TuneResult tune_perfect;
  gpurf::tuning::TuneResult tune_high;
  PressureReport pressure;
  gpurf::alloc::AllocationResult alloc_both_perfect;
  gpurf::alloc::AllocationResult alloc_both_high;
};

/// Directory for the on-disk precision-map cache when PipelineOptions does
/// not name one: $GPURF_CACHE_DIR if set, else ".gpurf_cache".  The
/// environment is consulted exactly once per process (the env-var-as-
/// default rule: Engine construction captures it; nothing re-reads the
/// environment afterwards).
const std::string& default_cache_dir();

/// Cache-observability counters for the pipeline layer (ISSUE 4 metrics
/// satellite).  Relaxed atomics bumped on the memo / disk-cache paths; an
/// Engine owns one instance and merges it into metrics_json().
struct PipelineStats {
  std::atomic<uint64_t> memo_hits{0};    ///< PipelineCache served a result
  std::atomic<uint64_t> memo_misses{0};  ///< PipelineCache computed fresh
  std::atomic<uint64_t> disk_cache_hits{0};
  std::atomic<uint64_t> disk_cache_stale_rejections{0};  ///< kDataLoss loads
  std::atomic<uint64_t> disk_cache_write_failures{0};    ///< failed stores
  /// Latched once a store fails (unwritable/full cache dir): the session
  /// stops touching the disk cache and keeps serving from memory — a
  /// degraded environment must never fail submit paths (PR 6 satellite).
  std::atomic<bool> disk_cache_disabled{false};
};

/// Pipeline computation knobs.  An Engine fills every field from its
/// EngineOptions at construction; default-constructed options reproduce
/// the legacy env-driven behaviour.
struct PipelineOptions {
  /// Load/store tuned precision maps in the on-disk cache.
  bool use_disk_cache = true;
  /// Cache directory; empty means default_cache_dir().
  std::string cache_dir;
  /// Base tuner options (quality level is set per tuning run; a
  /// speculate_batch <= 0 resolves to the current thread pool's width).
  gpurf::tuning::TunerOptions tuner;
  /// Speculative batch width override; <= 0 defers to `tuner`.  Kept for
  /// callers predating the full TunerOptions plumbing.
  int tuner_batch = 0;
  /// Interpreter strategy for every functional replay the tuner's quality
  /// probes perform (thread_insts is ignored).
  RunOptions run;
  /// Cache counters to bump (nullable).  Not owned; must outlive every
  /// compute_pipeline / PipelineCache::get call using these options.
  PipelineStats* stats = nullptr;
};

/// Compute a pipeline result directly — no memo, no Engine.  Benches and
/// determinism tests use this for fresh, controlled runs.
PipelineResult compute_pipeline(const Workload& w,
                                const PipelineOptions& opt = {});

/// Build the workload's quality probe — the same probe compute_pipeline
/// tunes against (every sample variant replayed functionally, scores
/// combined pessimistically).  Public so the Engine's fault-aware re-tuning
/// path (PR 7) can re-run tune_precision under a slice budget without
/// invalidating the cached unconstrained pipeline result.  Construction
/// replays every sample variant once to build the references; `run.cancel`
/// threads into those replays and all later evaluations.
std::unique_ptr<gpurf::tuning::QualityProbe> make_workload_probe(
    const Workload& w, const RunOptions& run);

/// Session-scoped memo of pipeline results, keyed by workload name.
/// Independent workloads may be requested from different threads
/// concurrently; each workload's pipeline is computed exactly once per
/// cache instance.  gpurf::Engine owns one of these per session.
class PipelineCache {
 public:
  explicit PipelineCache(PipelineOptions opt = {}) : opt_(std::move(opt)) {}

  /// Run (or fetch the memoized) pipeline for a workload.  `cancel`
  /// applies to a computation this call performs itself: its checkpoints
  /// thread into the tuner and the functional replays, and a stop unwinds
  /// as common::CancelledError *before* the memo entry is published — the
  /// computing latch resets and one waiter is woken to recompute with its
  /// own token, so a cancelled job can never leave a partial memo and can
  /// never strand other callers.  A caller that merely waits on another
  /// thread's in-flight computation is not interruptible (it blocks until
  /// the winner publishes or unwinds).
  ///
  /// The latch is a hand-rolled mutex + condvar state machine rather than
  /// std::once_flag: the exceptional-unwind path of std::call_once is
  /// exactly the part of the contract sanitizer runtimes get wrong
  /// (a waiter parked in the interceptor is never requeued after the
  /// winner throws, deadlocking every later caller), and the cancel path
  /// above throws by design.
  const PipelineResult& get(const Workload& w,
                            gpurf::common::CancelToken* cancel = nullptr);

  const PipelineOptions& options() const { return opt_; }

 private:
  struct Entry {
    gpurf::common::Mutex mu;
    std::condition_variable cv;
    /// A caller is inside compute_pipeline.
    bool computing GPURF_GUARDED_BY(mu) = false;
    /// Set once, then immutable (published under mu before any waiter
    /// can observe it).
    std::unique_ptr<PipelineResult> result GPURF_GUARDED_BY(mu);
  };

  PipelineOptions opt_;
  gpurf::common::Mutex mu_;  ///< guards the map shape only
  std::map<std::string, Entry> cache_
      GPURF_GUARDED_BY(mu_);  ///< node-stable addresses
};

/// Legacy shim: run (or fetch the memoized) pipeline on the process-default
/// Engine (api/engine.hpp).  New code should hold an Engine and call
/// engine.pipeline() for session-scoped configuration and Status-based
/// error handling.  Defined in src/api/engine.cpp.
const PipelineResult& run_pipeline(const Workload& w);

// ------------------------------------------------------- on-disk pmap cache
//
// Tuned precision maps are the only expensive artifact (hundreds of
// functional probes), so they persist across processes.  Entries are
// versioned: the header records the cache schema version, the Table-3
// format-table version (fp::kFormatTableVersion) and the kernel's content
// fingerprint, and loading rejects any mismatch with a non-OK Status
// instead of silently reinterpreting stale bits.

/// Stable content fingerprint of a kernel (FNV-1a over its printed text) —
/// unlike exec::KernelAnalysis::fingerprint it contains no addresses and no
/// implementation-defined hashing, so it is comparable across processes,
/// builds and standard libraries.
uint64_t kernel_cache_fingerprint(const Workload& w);

/// Path of the workload's cache entry inside `dir`.
std::string pmap_cache_path(const Workload& w, const std::string& dir);

/// Load the tuned perfect/high precision maps for `w` from `dir`.
///   OK          — maps loaded into `perfect` / `high`;
///   kNotFound   — no cache entry (expected on first run);
///   kDataLoss   — entry exists but is unversioned, stale (fingerprint or
///                 format-table mismatch) or corrupt; callers re-tune.
gpurf::Status load_pmap_cache(const Workload& w, const std::string& dir,
                              gpurf::tuning::TuneResult& perfect,
                              gpurf::tuning::TuneResult& high);

/// Store tuned precision maps (best effort; returns non-OK on I/O failure).
gpurf::Status store_pmap_cache(const Workload& w, const std::string& dir,
                               const gpurf::tuning::TuneResult& perfect,
                               const gpurf::tuning::TuneResult& high);

// ------------------------------------------------------------- simulation

/// Experiment configurations of §6.
enum class SimMode {
  kOriginal,          ///< baseline RF, original pressure
  kCompressedPerfect, ///< proposed RF, perfect-quality compression
  kCompressedHigh,    ///< proposed RF, high-quality compression
};

/// Assemble a timing-simulation launch for a workload instance.  The
/// instance must outlive the returned spec (it borrows memory/textures).
gpurf::sim::KernelLaunchSpec make_launch_spec(const Workload& w,
                                              Workload::Instance& inst,
                                              const PipelineResult& pr,
                                              SimMode mode);

/// Compression config matching the mode (baseline vs. paper default).
gpurf::sim::CompressionConfig make_compression_config(SimMode mode);

}  // namespace gpurf::workloads
