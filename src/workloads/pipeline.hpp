#pragma once
// The full static compression pipeline of Fig. 7, packaged per workload:
//
//   range analysis (§4.2)  ->  integer bitwidths
//   precision tuning (§4.1) -> float formats, per quality level
//   slice allocation (§4.3) -> register pressure + indirection table
//
// plus helpers to derive simulator launch specs for the paper's
// experiment configurations (original / compressed / artificial).
//
// Results are memoized per workload name inside one process: the tuner
// runs hundreds of functional probes, and several benches/tests want the
// same artifacts.

#include <memory>

#include "alloc/slice_alloc.hpp"
#include "analysis/range_analysis.hpp"
#include "sim/gpu.hpp"
#include "tuning/tuner.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

/// Register pressure under each framework combination (Fig. 9's six bars).
struct PressureReport {
  uint32_t original = 0;
  uint32_t narrow_int = 0;
  uint32_t narrow_float_perfect = 0;
  uint32_t narrow_float_high = 0;
  uint32_t both_perfect = 0;
  uint32_t both_high = 0;
};

struct PipelineResult {
  analysis::RangeAnalysisResult ranges;
  gpurf::tuning::TuneResult tune_perfect;
  gpurf::tuning::TuneResult tune_high;
  PressureReport pressure;
  gpurf::alloc::AllocationResult alloc_both_perfect;
  gpurf::alloc::AllocationResult alloc_both_high;
};

/// Run (or fetch the memoized) pipeline for a workload.  Independent
/// workloads may be pipelined from different threads concurrently; each
/// workload's pipeline is computed exactly once per process.
const PipelineResult& run_pipeline(const Workload& w);

/// Pipeline computation knobs (run_pipeline uses the defaults).
struct PipelineOptions {
  /// Load/store tuned precision maps in the on-disk cache (directory from
  /// $GPURF_CACHE_DIR, default ".gpurf_cache").
  bool use_disk_cache = true;
  /// Speculative batch width for the tuner's greedy descent; <= 0 means
  /// "use the shared thread pool's width".
  int tuner_batch = 0;
};

/// Compute a pipeline result directly, bypassing the in-process memo —
/// for benches and determinism tests that need fresh, controlled runs.
PipelineResult compute_pipeline(const Workload& w,
                                const PipelineOptions& opt = {});

/// Experiment configurations of §6.
enum class SimMode {
  kOriginal,          ///< baseline RF, original pressure
  kCompressedPerfect, ///< proposed RF, perfect-quality compression
  kCompressedHigh,    ///< proposed RF, high-quality compression
};

/// Assemble a timing-simulation launch for a workload instance.  The
/// instance must outlive the returned spec (it borrows memory/textures).
gpurf::sim::KernelLaunchSpec make_launch_spec(const Workload& w,
                                              Workload::Instance& inst,
                                              const PipelineResult& pr,
                                              SimMode mode);

/// Compression config matching the mode (baseline vs. paper default).
gpurf::sim::CompressionConfig make_compression_config(SimMode mode);

}  // namespace gpurf::workloads
