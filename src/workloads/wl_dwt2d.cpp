// DWT2D (Rodinia): one level of a 2-D 5/3 integer lifting wavelet over
// 8x2-pixel tiles.  Pixels arrive packed four-per-word and are unpacked
// with shift/mask — the pattern that makes static range analysis shine:
// every lifting intermediate has a provable narrow range (§6.1 highlights
// DWT2D as a kernel where the integer framework is key).  The horizontal
// pass runs on both rows, then a vertical pass combines them; all 16
// pixels and both rows' subband coefficients are live through the
// vertical stage.
//
// Table 4: % deviation, 38 registers/thread, 6 warps/block (192x1).

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel dwt2d
.param s32 img_base
.param s32 out_base
.param s32 nsegs range(192,65536)
.reg s32 %lin
.reg s32 %seg
.reg s32 %w0
.reg s32 %w1
.reg s32 %w2
.reg s32 %w3
.reg s32 %pa0
.reg s32 %pa1
.reg s32 %pa2
.reg s32 %pa3
.reg s32 %pa4
.reg s32 %pa5
.reg s32 %pa6
.reg s32 %pa7
.reg s32 %pb0
.reg s32 %pb1
.reg s32 %pb2
.reg s32 %pb3
.reg s32 %pb4
.reg s32 %pb5
.reg s32 %pb6
.reg s32 %pb7
.reg s32 %da0
.reg s32 %da1
.reg s32 %da2
.reg s32 %da3
.reg s32 %sa0
.reg s32 %sa1
.reg s32 %sa2
.reg s32 %sa3
.reg s32 %db0
.reg s32 %db1
.reg s32 %db2
.reg s32 %db3
.reg s32 %sb0
.reg s32 %sb1
.reg s32 %sb2
.reg s32 %sb3
.reg s32 %vs0
.reg s32 %vs1
.reg s32 %vs2
.reg s32 %vs3
.reg s32 %vd0
.reg s32 %vd1
.reg s32 %vd2
.reg s32 %vd3
.reg s32 %t0
.reg s32 %t1
.reg s32 %ga
.reg s32 %oa
.reg f32 %f0
.reg f32 %f1
.reg f32 %f2
.reg f32 %f3
.reg f32 %g0
.reg f32 %g1
.reg f32 %g2
.reg f32 %g3
.reg f32 %norm
.reg f32 %snorm
.reg f32 %ci0
.reg f32 %ci1
.reg pred %pq

entry:
  mov.s32 %lin, %tid.x
  mov.s32 %seg, %ctaid.x
  mad.s32 %seg, %seg, 192, %lin
  setp.ge.s32 %pq, %seg, $nsegs
  @%pq bra exit
body:
  // four packed words = 8 pixels of row A and 8 pixels of row B
  shl.s32 %ga, %seg, 2
  add.s32 %ga, %ga, $img_base
  ld.global.s32 %w0, [%ga]
  ld.global.s32 %w1, [%ga+1]
  ld.global.s32 %w2, [%ga+2]
  ld.global.s32 %w3, [%ga+3]
  and.s32 %pa0, %w0, 255
  shr.s32 %t0, %w0, 8
  and.s32 %pa1, %t0, 255
  shr.s32 %t0, %w0, 16
  and.s32 %pa2, %t0, 255
  shr.s32 %t0, %w0, 24
  and.s32 %pa3, %t0, 255
  and.s32 %pa4, %w1, 255
  shr.s32 %t0, %w1, 8
  and.s32 %pa5, %t0, 255
  shr.s32 %t0, %w1, 16
  and.s32 %pa6, %t0, 255
  shr.s32 %t0, %w1, 24
  and.s32 %pa7, %t0, 255
  and.s32 %pb0, %w2, 255
  shr.s32 %t1, %w2, 8
  and.s32 %pb1, %t1, 255
  shr.s32 %t1, %w2, 16
  and.s32 %pb2, %t1, 255
  shr.s32 %t1, %w2, 24
  and.s32 %pb3, %t1, 255
  and.s32 %pb4, %w3, 255
  shr.s32 %t1, %w3, 8
  and.s32 %pb5, %t1, 255
  shr.s32 %t1, %w3, 16
  and.s32 %pb6, %t1, 255
  shr.s32 %t1, %w3, 24
  and.s32 %pb7, %t1, 255
  // horizontal predict/update, row A
  add.s32 %t0, %pa0, %pa2
  shr.s32 %t0, %t0, 1
  sub.s32 %da0, %pa1, %t0
  add.s32 %t0, %pa2, %pa4
  shr.s32 %t0, %t0, 1
  sub.s32 %da1, %pa3, %t0
  add.s32 %t0, %pa4, %pa6
  shr.s32 %t0, %t0, 1
  sub.s32 %da2, %pa5, %t0
  add.s32 %t0, %pa6, %pa6
  shr.s32 %t0, %t0, 1
  sub.s32 %da3, %pa7, %t0
  add.s32 %t1, %da0, %da0
  add.s32 %t1, %t1, 2
  shr.s32 %t1, %t1, 2
  add.s32 %sa0, %pa0, %t1
  add.s32 %t1, %da0, %da1
  add.s32 %t1, %t1, 2
  shr.s32 %t1, %t1, 2
  add.s32 %sa1, %pa2, %t1
  add.s32 %t1, %da1, %da2
  add.s32 %t1, %t1, 2
  shr.s32 %t1, %t1, 2
  add.s32 %sa2, %pa4, %t1
  add.s32 %t1, %da2, %da3
  add.s32 %t1, %t1, 2
  shr.s32 %t1, %t1, 2
  add.s32 %sa3, %pa6, %t1
  // horizontal predict/update, row B
  add.s32 %t0, %pb0, %pb2
  shr.s32 %t0, %t0, 1
  sub.s32 %db0, %pb1, %t0
  add.s32 %t0, %pb2, %pb4
  shr.s32 %t0, %t0, 1
  sub.s32 %db1, %pb3, %t0
  add.s32 %t0, %pb4, %pb6
  shr.s32 %t0, %t0, 1
  sub.s32 %db2, %pb5, %t0
  add.s32 %t0, %pb6, %pb6
  shr.s32 %t0, %t0, 1
  sub.s32 %db3, %pb7, %t0
  add.s32 %t1, %db0, %db0
  add.s32 %t1, %t1, 2
  shr.s32 %t1, %t1, 2
  add.s32 %sb0, %pb0, %t1
  add.s32 %t1, %db0, %db1
  add.s32 %t1, %t1, 2
  shr.s32 %t1, %t1, 2
  add.s32 %sb1, %pb2, %t1
  add.s32 %t1, %db1, %db2
  add.s32 %t1, %t1, 2
  shr.s32 %t1, %t1, 2
  add.s32 %sb2, %pb4, %t1
  add.s32 %t1, %db2, %db3
  add.s32 %t1, %t1, 2
  shr.s32 %t1, %t1, 2
  add.s32 %sb3, %pb6, %t1
  // vertical pass on the smooth coefficients: LL = (sA+sB)/2, LH = sA-sB
  add.s32 %vs0, %sa0, %sb0
  shr.s32 %vs0, %vs0, 1
  sub.s32 %vd0, %sa0, %sb0
  add.s32 %vs1, %sa1, %sb1
  shr.s32 %vs1, %vs1, 1
  sub.s32 %vd1, %sa1, %sb1
  add.s32 %vs2, %sa2, %sb2
  shr.s32 %vs2, %vs2, 1
  sub.s32 %vd2, %sa2, %sb2
  add.s32 %vs3, %sa3, %sb3
  shr.s32 %vs3, %vs3, 1
  sub.s32 %vd3, %sa3, %sb3
  // vertical pass on the detail coefficients folds into HL via averaging
  add.s32 %da0, %da0, %db0
  add.s32 %da1, %da1, %db1
  add.s32 %da2, %da2, %db2
  add.s32 %da3, %da3, %db3
  // normalised float subbands (LL and LH planes)
  mov.f32 %norm, 0.00390625
  mov.f32 %snorm, 0.001953125
  cvt.f32.s32 %f0, %vd0
  mul.f32 %f0, %f0, %norm
  cvt.f32.s32 %f1, %vd1
  mul.f32 %f1, %f1, %norm
  cvt.f32.s32 %f2, %vd2
  mul.f32 %f2, %f2, %norm
  cvt.f32.s32 %f3, %vd3
  mul.f32 %f3, %f3, %norm
  cvt.f32.s32 %g0, %vs0
  mul.f32 %g0, %g0, %snorm
  cvt.f32.s32 %g1, %vs1
  mul.f32 %g1, %g1, %snorm
  cvt.f32.s32 %g2, %vs2
  mul.f32 %g2, %g2, %snorm
  cvt.f32.s32 %g3, %vs3
  mul.f32 %g3, %g3, %snorm
  // output layout: 4 x LL float, 4 x LH float, 4 x HL int, 4 x HH int
  shl.s32 %oa, %seg, 4
  add.s32 %oa, %oa, $out_base
  st.global.f32 [%oa], %g0
  st.global.f32 [%oa+1], %g1
  st.global.f32 [%oa+2], %g2
  st.global.f32 [%oa+3], %g3
  st.global.f32 [%oa+4], %f0
  st.global.f32 [%oa+5], %f1
  st.global.f32 [%oa+6], %f2
  st.global.f32 [%oa+7], %f3
  cvt.f32.s32 %ci0, %da0
  st.global.f32 [%oa+8], %ci0
  cvt.f32.s32 %ci1, %da1
  st.global.f32 [%oa+9], %ci1
  cvt.f32.s32 %ci0, %da2
  st.global.f32 [%oa+10], %ci0
  cvt.f32.s32 %ci1, %da3
  st.global.f32 [%oa+11], %ci1
  // HH: pixel parity checksums keep the unpacked pixels live to the end
  xor.s32 %t0, %pa0, %pa7
  xor.s32 %t0, %t0, %pb0
  xor.s32 %t0, %t0, %pb7
  xor.s32 %t0, %t0, %w0
  xor.s32 %t0, %t0, %w1
  and.s32 %t0, %t0, 255
  cvt.f32.s32 %ci0, %t0
  st.global.f32 [%oa+12], %ci0
  xor.s32 %t1, %pa1, %pa6
  xor.s32 %t1, %t1, %pb1
  xor.s32 %t1, %t1, %pb6
  xor.s32 %t1, %t1, %w2
  xor.s32 %t1, %t1, %w3
  and.s32 %t1, %t1, 255
  cvt.f32.s32 %ci1, %t1
  st.global.f32 [%oa+13], %ci1
  xor.s32 %t0, %pa2, %pa5
  xor.s32 %t0, %t0, %pb2
  xor.s32 %t0, %t0, %pb5
  cvt.f32.s32 %ci0, %t0
  st.global.f32 [%oa+14], %ci0
  xor.s32 %t1, %pa3, %pa4
  xor.s32 %t1, %t1, %pb3
  xor.s32 %t1, %t1, %pb4
  cvt.f32.s32 %ci1, %t1
  st.global.f32 [%oa+15], %ci1
exit:
  ret
)";

class Dwt2dWorkload final : public Workload {
 public:
  Dwt2dWorkload()
      : Workload(WorkloadSpec{"DWT2D", gpurf::quality::MetricKind::kDeviation,
                              2, 38, 6},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t blocks = scale == Scale::kFull ? 120 : 8;
    const uint32_t nsegs = blocks * 192;
    inst.launch.grid_x = blocks;
    inst.launch.block_x = 192;

    gpurf::Pcg32 rng(0xD7D2u + variant, 5);
    std::vector<uint32_t> packed(size_t(nsegs) * 4);
    for (auto& w : packed) {
      w = rng.next_below(256) | (rng.next_below(256) << 8) |
          (rng.next_below(256) << 16) | (rng.next_below(256) << 24);
    }
    const uint32_t img_base = inst.gmem.alloc(packed);
    const uint32_t out_base = inst.gmem.alloc(size_t(nsegs) * 16);
    inst.params = {img_base, out_base, nsegs};
    inst.out_base = out_base;
    inst.out_words = size_t(nsegs) * 16;
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_dwt2d() {
  return std::make_unique<Dwt2dWorkload>();
}

}  // namespace gpurf::workloads
