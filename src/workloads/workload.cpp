#include "workloads/workload.hpp"

#include "common/error.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace gpurf::workloads {

using gpurf::quality::MetricKind;

Workload::Workload(WorkloadSpec spec, std::string_view asm_text)
    : spec_(std::move(spec)), kernel_(gpurf::ir::parse_kernel(asm_text)) {
  gpurf::ir::verify(kernel_);
}

std::unique_ptr<gpurf::quality::QualityMetric> Workload::make_metric(
    const Instance& inst) const {
  switch (spec_.metric) {
    case MetricKind::kSsim:
      GPURF_CHECK(inst.image_w > 0 && inst.image_h > 0,
                  "SSIM workload without image dimensions");
      return gpurf::quality::make_ssim_metric(inst.image_w, inst.image_h);
    case MetricKind::kDeviation:
      return gpurf::quality::make_deviation_metric();
    case MetricKind::kBinary:
      return gpurf::quality::make_binary_metric();
  }
  GPURF_ASSERT(false, "unknown metric kind");
  return nullptr;
}

std::vector<float> Workload::run(
    Instance& inst, const gpurf::exec::PrecisionMap* pmap,
    const analysis::RangeAnalysisResult* range_check,
    const RunOptions& opt) const {
  // Replay-granular stop: a cancelled tuning job aborts before the next
  // replay starts, never in the middle of one.
  if (opt.cancel) opt.cancel->checkpoint();
  gpurf::exec::ExecContext ctx;
  ctx.kernel = &kernel_;
  ctx.launch = inst.launch;
  ctx.gmem = &inst.gmem;
  ctx.textures = &inst.textures;
  ctx.params = inst.params;
  ctx.precision = pmap;
  ctx.range_check = range_check;
  ctx.use_soa = opt.use_soa;
  ctx.block_parallel = opt.block_parallel;
  ctx.elide_dead_writes = opt.elide_dead_writes;
  std::call_once(analysis_once_,
                 [&] { analysis_ = gpurf::exec::analyze_kernel(kernel_); });
  ctx.analysis = analysis_;
  const uint64_t insts = gpurf::exec::run_functional(ctx);
  if (opt.thread_insts) *opt.thread_insts = insts;
  return inst.gmem.read_f32(inst.out_base, inst.out_words);
}

}  // namespace gpurf::workloads
