#include "workloads/workload.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace gpurf::workloads {

using gpurf::quality::MetricKind;

Workload::Workload(WorkloadSpec spec, std::string_view asm_text)
    : spec_(std::move(spec)), kernel_(gpurf::ir::parse_kernel(asm_text)) {
  gpurf::ir::verify(kernel_);
}

std::unique_ptr<gpurf::quality::QualityMetric> Workload::make_metric(
    const Instance& inst) const {
  switch (spec_.metric) {
    case MetricKind::kSsim:
      GPURF_CHECK(inst.image_w > 0 && inst.image_h > 0,
                  "SSIM workload without image dimensions");
      return gpurf::quality::make_ssim_metric(inst.image_w, inst.image_h);
    case MetricKind::kDeviation:
      return gpurf::quality::make_deviation_metric();
    case MetricKind::kBinary:
      return gpurf::quality::make_binary_metric();
  }
  GPURF_ASSERT(false, "unknown metric kind");
  return nullptr;
}

std::shared_ptr<const Workload::MemProofs> Workload::mem_proofs(
    const Instance& inst, bool footprints) const {
  // Key: everything the proofs depend on beyond the kernel text.
  char head[96];
  std::snprintf(head, sizeof head, "%ux%ux%ux%u|%zu|", inst.launch.grid_x,
                inst.launch.grid_y, inst.launch.block_x, inst.launch.block_y,
                inst.gmem.size());
  std::string key = head;
  for (uint32_t p : inst.params) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%x,", p);
    key += buf;
  }

  const bool grid_over_cap =
      uint64_t(inst.launch.grid_x) * inst.launch.grid_y >
      analysis::MemoryAccessOptions{}.max_blocks;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    auto it = mem_cache_.find(key);
    // An elision-only entry is upgraded when footprints are wanted —
    // unless the grid exceeds the solve cap, where retrying cannot
    // improve the verdicts.
    if (it != mem_cache_.end() &&
        (!footprints || it->second->mem.footprints_computed || grid_over_cap))
      return it->second;
  }

  auto proofs = std::make_shared<MemProofs>();
  analysis::MemoryAccessOptions mo;
  mo.param_values = &inst.params;
  mo.footprints = footprints;
  proofs->mem = analysis::analyze_memory_accesses(kernel_, inst.launch, mo);
  proofs->gmem_words = inst.gmem.size();
  proofs->proven = analysis::prove_in_bounds(
      proofs->mem, proofs->gmem_words, analysis::shared_words(kernel_));
  for (const auto& a : proofs->mem.accesses)
    proofs->proven_sites += proofs->proven[a.flat];
  proofs->parallel_ok = proofs->mem.loads_local || spec_.assume_disjoint;
  proofs->shard_ok =
      (proofs->mem.loads_local && proofs->mem.stores_disjoint) ||
      spec_.assume_disjoint;

  std::lock_guard<std::mutex> lock(mem_mu_);
  auto& slot = mem_cache_[key];
  // Keep the stronger entry if a concurrent probe raced us there.
  if (!slot || (footprints && !slot->mem.footprints_computed))
    slot = std::move(proofs);
  return slot;
}

std::vector<float> Workload::run(
    Instance& inst, const gpurf::exec::PrecisionMap* pmap,
    const analysis::RangeAnalysisResult* range_check,
    const RunOptions& opt) const {
  // Replay-granular stop: a cancelled tuning job aborts before the next
  // replay starts, never in the middle of one.
  if (opt.cancel) opt.cancel->checkpoint();
  gpurf::exec::ExecContext ctx;
  ctx.kernel = &kernel_;
  ctx.launch = inst.launch;
  ctx.gmem = &inst.gmem;
  ctx.textures = &inst.textures;
  ctx.params = inst.params;
  ctx.precision = pmap;
  ctx.range_check = range_check;
  ctx.use_soa = opt.use_soa;
  ctx.elide_dead_writes = opt.elide_dead_writes;

  // Static memory proofs (ISSUE 10).  Block-parallel execution now
  // requires the no-cross-block-reads contract proven (or waived); the
  // per-block footprint solves are only paid when parallelism is actually
  // reachable (several blocks and a real pool).  Bounds-check elision uses
  // the launch-wide solve either way.
  const bool want_parallel =
      opt.block_parallel &&
      uint64_t(inst.launch.grid_x) * inst.launch.grid_y > 1 &&
      gpurf::common::ThreadPool::instance().size() > 1;
  std::shared_ptr<const MemProofs> proofs;
  if (opt.elide_bounds_checks || want_parallel)
    proofs = mem_proofs(inst, /*footprints=*/want_parallel);
  ctx.block_parallel =
      opt.block_parallel && (!want_parallel || proofs->parallel_ok);
  if (proofs && opt.elide_bounds_checks) {
    ctx.elide_bounds_checks = true;
    ctx.mem_proven = proofs->proven.data();
  }

  std::call_once(analysis_once_,
                 [&] { analysis_ = gpurf::exec::analyze_kernel(kernel_); });
  ctx.analysis = analysis_;
  const uint64_t insts = gpurf::exec::run_functional(ctx);
  if (opt.thread_insts) *opt.thread_insts = insts;
  return inst.gmem.read_f32(inst.out_base, inst.out_words);
}

}  // namespace gpurf::workloads
