// IMGVF (Rodinia leukocyte) — the paper's motivating kernel (§2, Table 1).
// Iterative Motion-Gradient-Vector-Flow solver over a shared-memory tile:
// each sweep reads the 8-neighbourhood of every cell, applies a piecewise-
// linear Heaviside weighting, blends with the original image force, and
// ping-pongs between two shared buffers under barriers.
//
// Table 4: % deviation, 52 registers/thread, 10 warps/block (320x1),
// 14,560 bytes of shared memory per block (the §6.1 occupancy cap).

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel imgvf
.param s32 img_base
.param s32 out_base
.param s32 iters range(1,8)
.shared 14560           // two 32x56 f32 tiles + alignment pad
.reg s32 %lin
.reg s32 %blk
.reg s32 %tilebase
.reg s32 %cell
.reg s32 %cy
.reg s32 %cx
.reg s32 %up
.reg s32 %dn
.reg s32 %lf
.reg s32 %rt
.reg s32 %sa
.reg s32 %sb
.reg s32 %ga
.reg s32 %cur
.reg s32 %nxt
.reg s32 %swp
.reg s32 %iter
.reg s32 %niter
.reg f32 %m
.reg f32 %nU
.reg f32 %nD
.reg f32 %nL
.reg f32 %nR
.reg f32 %nUL
.reg f32 %nUR
.reg f32 %nDL
.reg f32 %nDR
.reg f32 %dU
.reg f32 %dD
.reg f32 %dL
.reg f32 %dR
.reg f32 %dUL
.reg f32 %dUR
.reg f32 %dDL
.reg f32 %dDR
.reg f32 %hU
.reg f32 %hD
.reg f32 %hL
.reg f32 %hR
.reg f32 %hUL
.reg f32 %hUR
.reg f32 %hDL
.reg f32 %hDR
.reg f32 %acc
.reg f32 %tc
.reg f32 %absd
.reg f32 %inv
.reg f32 %omv
.reg f32 %img
.reg f32 %nv
.reg f32 %c4
.reg f32 %chalf
.reg f32 %cq
.reg f32 %mu
.reg f32 %ceps
.reg f32 %maxn
.reg f32 %wU
.reg f32 %wD
.reg f32 %wL
.reg f32 %wR
.reg f32 %wUL
.reg f32 %wUR
.reg f32 %wDL
.reg f32 %wDR
.reg f32 %tload
.reg pred %pq

entry:
  mov.s32 %lin, %tid.x
  mov.s32 %blk, %ctaid.x
  mul.s32 %tilebase, %blk, 1792
  add.s32 %tilebase, %tilebase, $img_base
  mov.s32 %niter, $iters
  // Heaviside and blending constants (power-of-two friendly, as in the
  // fixed-point-tuned Rodinia kernel)
  mov.f32 %c4, 4.0
  mov.f32 %chalf, 0.5
  mov.f32 %cq, 0.25
  mov.f32 %mu, 0.5
  mov.f32 %ceps, 64.0
  mov.f32 %wUL, 0.5
  mov.f32 %wUR, 0.375
  mov.f32 %wDL, 0.625
  mov.f32 %wDR, 0.25
  mov.f32 %wU, 1.0
  mov.f32 %wD, 0.5
  mov.f32 %wL, 0.75
  mov.f32 %wR, 0.25
  mov.f32 %inv, 0.25
  mov.f32 %omv, 0.75
  mov.f32 %tc, 0.0
  // load the 32x56 tile into both buffers
  mov.s32 %cell, %lin
load_loop:
  setp.ge.s32 %pq, %cell, 1792
  @%pq bra load_done
load_body:
  add.s32 %ga, %tilebase, %cell
  ld.global.f32 %tload, [%ga]
  st.shared.f32 [%cell], %tload
  st.shared.f32 [%cell+1792], %tload
  add.s32 %cell, %cell, 320
  bra load_loop
load_done:
  bar.sync
  mov.s32 %cur, 0
  mov.s32 %nxt, 1792
  mov.s32 %iter, 0
iter_loop:
  setp.ge.s32 %pq, %iter, %niter
  @%pq bra iter_done
iter_body:
  mov.s32 %cell, %lin
cell_loop:
  setp.ge.s32 %pq, %cell, 1792
  @%pq bra cell_done
cell_body:
  rem.s32 %cx, %cell, 56
  div.s32 %cy, %cell, 56
  sub.s32 %up, %cy, 1
  max.s32 %up, %up, 0
  add.s32 %dn, %cy, 1
  min.s32 %dn, %dn, 31
  sub.s32 %lf, %cx, 1
  max.s32 %lf, %lf, 0
  add.s32 %rt, %cx, 1
  min.s32 %rt, %rt, 55
  // centre + 8 neighbours from the current buffer
  mad.s32 %sa, %cy, 56, %cx
  add.s32 %sa, %sa, %cur
  ld.shared.f32 %m, [%sa]
  mad.s32 %sb, %up, 56, %cx
  add.s32 %sb, %sb, %cur
  ld.shared.f32 %nU, [%sb]
  mad.s32 %sb, %dn, 56, %cx
  add.s32 %sb, %sb, %cur
  ld.shared.f32 %nD, [%sb]
  mad.s32 %sb, %cy, 56, %lf
  add.s32 %sb, %sb, %cur
  ld.shared.f32 %nL, [%sb]
  mad.s32 %sb, %cy, 56, %rt
  add.s32 %sb, %sb, %cur
  ld.shared.f32 %nR, [%sb]
  mad.s32 %sb, %up, 56, %lf
  add.s32 %sb, %sb, %cur
  ld.shared.f32 %nUL, [%sb]
  mad.s32 %sb, %up, 56, %rt
  add.s32 %sb, %sb, %cur
  ld.shared.f32 %nUR, [%sb]
  mad.s32 %sb, %dn, 56, %lf
  add.s32 %sb, %sb, %cur
  ld.shared.f32 %nDL, [%sb]
  mad.s32 %sb, %dn, 56, %rt
  add.s32 %sb, %sb, %cur
  ld.shared.f32 %nDR, [%sb]
  // neighbour differences
  sub.f32 %dU, %nU, %m
  sub.f32 %dD, %nD, %m
  sub.f32 %dL, %nL, %m
  sub.f32 %dR, %nR, %m
  sub.f32 %dUL, %nUL, %m
  sub.f32 %dUR, %nUR, %m
  sub.f32 %dDL, %nDL, %m
  sub.f32 %dDR, %nDR, %m
  // Heaviside weights for all eight directions (kept live together, as
  // the unrolled Rodinia kernel does): H(d) = clamp(4d + 0.5, 0, 1)
  mad.f32 %hU, %dU, %c4, %chalf
  max.f32 %hU, %hU, 0.0
  min.f32 %hU, %hU, 1.0
  mul.f32 %hU, %hU, %wU
  mad.f32 %hD, %dD, %c4, %chalf
  max.f32 %hD, %hD, 0.0
  min.f32 %hD, %hD, 1.0
  mul.f32 %hD, %hD, %wD
  mad.f32 %hL, %dL, %c4, %chalf
  max.f32 %hL, %hL, 0.0
  min.f32 %hL, %hL, 1.0
  mul.f32 %hL, %hL, %wL
  mad.f32 %hR, %dR, %c4, %chalf
  max.f32 %hR, %hR, 0.0
  min.f32 %hR, %hR, 1.0
  mul.f32 %hR, %hR, %wR
  mad.f32 %hUL, %dUL, %c4, %chalf
  max.f32 %hUL, %hUL, 0.0
  min.f32 %hUL, %hUL, 1.0
  mul.f32 %hUL, %hUL, %wUL
  mad.f32 %hUR, %dUR, %c4, %chalf
  max.f32 %hUR, %hUR, 0.0
  min.f32 %hUR, %hUR, 1.0
  mul.f32 %hUR, %hUR, %wUR
  mad.f32 %hDL, %dDL, %c4, %chalf
  max.f32 %hDL, %hDL, 0.0
  min.f32 %hDL, %hDL, 1.0
  mul.f32 %hDL, %hDL, %wDL
  mad.f32 %hDR, %dDR, %c4, %chalf
  max.f32 %hDR, %hDR, 0.0
  min.f32 %hDR, %hDR, 1.0
  mul.f32 %hDR, %hDR, %wDR
  mov.f32 %acc, 0.0
  mad.f32 %acc, %hU, %dU, %acc
  mad.f32 %acc, %hD, %dD, %acc
  mad.f32 %acc, %hL, %dL, %acc
  mad.f32 %acc, %hR, %dR, %acc
  mad.f32 %acc, %hUL, %dUL, %acc
  mad.f32 %acc, %hUR, %dUR, %acc
  mad.f32 %acc, %hDL, %dDL, %acc
  mad.f32 %acc, %hDR, %dDR, %acc
  mul.f32 %acc, %acc, %mu
  // neighbourhood maximum: stability clamp for the flow update
  max.f32 %maxn, %nU, %nD
  max.f32 %maxn, %maxn, %nL
  max.f32 %maxn, %maxn, %nR
  max.f32 %maxn, %maxn, %nUL
  max.f32 %maxn, %maxn, %nUR
  max.f32 %maxn, %maxn, %nDL
  max.f32 %maxn, %maxn, %nDR
  max.f32 %maxn, %maxn, %m
  // image force blend: nv = 0.75*(m + acc/4) + 0.25*img, and track the
  // per-thread total change for the convergence criterion
  add.s32 %ga, %tilebase, %cell
  ld.global.f32 %img, [%ga]
  mad.f32 %nv, %acc, %cq, %m
  mul.f32 %nv, %nv, %omv
  mad.f32 %nv, %img, %inv, %nv
  min.f32 %nv, %nv, %maxn
  sub.f32 %absd, %nv, %m
  abs.f32 %absd, %absd
  add.f32 %tc, %tc, %absd
  min.f32 %tc, %tc, %ceps
  mad.s32 %sb, %cy, 56, %cx
  add.s32 %sb, %sb, %nxt
  st.shared.f32 [%sb], %nv
  add.s32 %cell, %cell, 320
  bra cell_loop
cell_done:
  bar.sync
  mov.s32 %swp, %cur
  mov.s32 %cur, %nxt
  mov.s32 %nxt, %swp
  add.s32 %iter, %iter, 1
  bra iter_loop
iter_done:
  // write the converged tile back
  mov.s32 %cell, %lin
store_loop:
  setp.ge.s32 %pq, %cell, 1792
  @%pq bra store_done
store_body:
  add.s32 %sa, %cell, %cur
  ld.shared.f32 %nv, [%sa]
  mad.f32 %nv, %tc, 0.0, %nv
  mul.s32 %ga, %blk, 1792
  add.s32 %ga, %ga, %cell
  add.s32 %ga, %ga, $out_base
  st.global.f32 [%ga], %nv
  add.s32 %cell, %cell, 320
  bra store_loop
store_done:
  ret
)";

class ImgvfWorkload final : public Workload {
 public:
  ImgvfWorkload()
      : Workload(WorkloadSpec{"IMGVF", gpurf::quality::MetricKind::kDeviation,
                              2, 52, 10},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t blocks = scale == Scale::kFull ? 120 : 2;
    const uint32_t iters = scale == Scale::kFull ? 4 : 2;
    inst.launch.grid_x = blocks;
    inst.launch.block_x = 320;

    gpurf::Pcg32 rng(0x1364Fu + variant, 29);
    std::vector<float> img(size_t(blocks) * 1792);
    for (auto& v : img) v = float(rng.next_below(256)) / 256.0f;

    const uint32_t img_base = inst.gmem.alloc_f32(img);
    const uint32_t out_base = inst.gmem.alloc(size_t(blocks) * 1792);
    inst.params = {img_base, out_base, iters};
    inst.out_base = out_base;
    inst.out_words = size_t(blocks) * 1792;
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_imgvf() {
  return std::make_unique<ImgvfWorkload>();
}

}  // namespace gpurf::workloads
