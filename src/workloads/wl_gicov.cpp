// GICOV (Rodinia leukocyte): gradient inverse coefficient of variation —
// for every pixel, sample the gradient image along a small circle through
// the texture path, track mean and variance (sum / sum-of-squares) over
// two candidate radii and emit the best score.  Texture-dominated: the
// paper attributes GICOV's IPC *regression* under compression to texture-
// cache contention (miss rate 76 % -> 86 %, §6.2) — higher occupancy
// enlarges the combined working set past the 12 KB texture cache.
//
// Table 4: % deviation, 24 registers/thread, 6 warps/block (192x1).

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel gicov
.param s32 out_base
.param s32 width range(64,4096)
.param s32 height range(64,4096)
.param s32 npix range(192,16777216)
.tex grad
.tex grady
.reg s32 %lin
.reg s32 %gid
.reg s32 %x
.reg s32 %y
.reg s32 %u
.reg s32 %v
.reg s32 %i
.reg s32 %oa
.reg f32 %t
.reg f32 %sum1
.reg f32 %sq1
.reg f32 %sum2
.reg f32 %sq2
.reg f32 %mean1
.reg f32 %var1
.reg f32 %mean2
.reg f32 %var2
.reg f32 %sum3
.reg f32 %sq3
.reg f32 %score1
.reg f32 %score2
.reg f32 %best
.reg f32 %eps
.reg f32 %inv12
.reg f32 %inv12b
.reg f32 %wexp
.reg f32 %t2
.reg f32 %sum1y
.reg f32 %sq1y
.reg f32 %sum2y
.reg f32 %sq2y
.reg f32 %wr0
.reg f32 %wr1
.reg f32 %wr2
.reg f32 %scorey
.reg f32 %thr
.reg s32 %bestr
.reg pred %pq
.reg pred %pb

entry:
  mov.s32 %lin, %tid.x
  mov.s32 %gid, %ctaid.x
  mad.s32 %gid, %gid, 192, %lin
  setp.ge.s32 %pq, %gid, $npix
  @%pq bra exit
body:
  // Candidate cell sites are scattered over the image (the detector tests
  // ellipse centres, not raster pixels); sixteen neighbouring threads probe
  // one site's 4x4 sub-grid.
  shr.s32 %u, %gid, 4
  mul.s32 %v, %u, 97
  rem.s32 %x, %v, $width
  mul.s32 %v, %u, 57
  rem.s32 %y, %v, $height
  and.s32 %u, %gid, 3
  add.s32 %x, %x, %u
  shr.s32 %u, %gid, 2
  and.s32 %u, %u, 3
  add.s32 %y, %y, %u
  mov.f32 %eps, 0.0078125
  mov.f32 %inv12, 0.08333333
  mov.f32 %inv12b, 0.08333333
  mov.f32 %wexp, 0.75
  mov.f32 %sum1, 0.0
  mov.f32 %sq1, 0.0
  mov.f32 %sum2, 0.0
  mov.f32 %sq2, 0.0
  mov.f32 %sum3, 0.0
  mov.f32 %sq3, 0.0
  mov.f32 %sum1y, 0.0
  mov.f32 %sq1y, 0.0
  mov.f32 %sum2y, 0.0
  mov.f32 %sq2y, 0.0
  mov.f32 %wr0, 1.0
  mov.f32 %wr1, 0.5
  mov.f32 %wr2, 0.25
  mov.f32 %thr, 0.0625
  // radius-2 circle: 12 samples, offsets unrolled
  add.s32 %u, %x, 2
  mov.s32 %v, %y
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  tex.2d.f32 %t2, grady, %u, %v
  mad.f32 %sum1y, %t2, %wr0, %sum1y
  mad.f32 %sq1y, %t2, %t2, %sq1y
  add.s32 %u, %x, 2
  add.s32 %v, %y, 1
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  add.s32 %u, %x, 1
  add.s32 %v, %y, 2
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  mov.s32 %u, %x
  add.s32 %v, %y, 2
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  tex.2d.f32 %t2, grady, %u, %v
  mad.f32 %sum1y, %t2, %wr1, %sum1y
  mad.f32 %sq1y, %t2, %t2, %sq1y
  sub.s32 %u, %x, 1
  add.s32 %v, %y, 2
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  sub.s32 %u, %x, 2
  add.s32 %v, %y, 1
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  sub.s32 %u, %x, 2
  mov.s32 %v, %y
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  sub.s32 %u, %x, 2
  sub.s32 %v, %y, 1
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  sub.s32 %u, %x, 1
  sub.s32 %v, %y, 2
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  mov.s32 %u, %x
  sub.s32 %v, %y, 2
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  add.s32 %u, %x, 1
  sub.s32 %v, %y, 2
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  add.s32 %u, %x, 2
  sub.s32 %v, %y, 1
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum1, %sum1, %t
  mad.f32 %sq1, %t, %t, %sq1
  // radius-5 circle: 12 samples via a small loop (4 rotations x 3 points)
  mov.s32 %i, 0
r5_loop:
  setp.ge.s32 %pq, %i, 4
  @%pq bra r5_done
r5_body:
  mad.s32 %u, %i, 2, %x
  add.s32 %u, %u, 1
  add.s32 %v, %y, 5
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum2, %sum2, %t
  mad.f32 %sq2, %t, %t, %sq2
  mad.s32 %u, %i, 2, %x
  add.s32 %u, %u, 1
  sub.s32 %v, %y, 5
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum2, %sum2, %t
  mad.f32 %sq2, %t, %t, %sq2
  add.s32 %u, %x, 5
  mad.s32 %v, %i, 2, %y
  sub.s32 %v, %v, 3
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum2, %sum2, %t
  mad.f32 %sq2, %t, %t, %sq2
  tex.2d.f32 %t2, grady, %u, %v
  mad.f32 %sum2y, %t2, %wr2, %sum2y
  mad.f32 %sq2y, %t2, %t2, %sq2y
  // middle circle (radius 3)
  add.s32 %u, %x, 3
  mad.s32 %v, %i, 2, %y
  sub.s32 %v, %v, 3
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum3, %sum3, %t
  mad.f32 %sq3, %t, %t, %sq3
  sub.s32 %u, %x, 3
  tex.2d.f32 %t, grad, %u, %v
  add.f32 %sum3, %sum3, %t
  mad.f32 %sq3, %t, %t, %sq3
  add.s32 %i, %i, 1
  bra r5_loop
r5_done:
  // GICOV score = mean^2 / variance for each radius, keep the best
  mul.f32 %mean1, %sum1, %inv12
  mul.f32 %var1, %mean1, %mean1
  neg.f32 %var1, %var1
  mad.f32 %var1, %sq1, %inv12, %var1
  add.f32 %var1, %var1, %eps
  mul.f32 %score1, %mean1, %mean1
  div.f32 %score1, %score1, %var1
  // blend in the middle circle with a decay weight
  mad.f32 %sum2, %sum3, %wexp, %sum2
  mad.f32 %sq2, %sq3, %wexp, %sq2
  mul.f32 %mean2, %sum2, %inv12b
  mul.f32 %var2, %mean2, %mean2
  neg.f32 %var2, %var2
  mad.f32 %var2, %sq2, %inv12b, %var2
  add.f32 %var2, %var2, %eps
  mul.f32 %score2, %mean2, %mean2
  div.f32 %score2, %score2, %var2
  max.f32 %best, %score1, %score2
  // directional score from the y-gradient sums
  mul.f32 %scorey, %sum1y, %sum2y
  mad.f32 %scorey, %sq1y, 0.0625, %scorey
  mad.f32 %scorey, %sq2y, 0.0625, %scorey
  mad.f32 %best, %scorey, 0.03125, %best
  sub.f32 %best, %best, %thr
  mul.f32 %best, %best, 1.5
  setp.ge.f32 %pb, %score2, %score1
  selp.s32 %bestr, 5, 2, %pb
  cvt.f32.s32 %t, %bestr
  mad.f32 %best, %t, 0.0078125, %best
  add.s32 %oa, %gid, $out_base
  st.global.f32 [%oa], %best
exit:
  ret
)";

class GicovWorkload final : public Workload {
 public:
  GicovWorkload()
      : Workload(WorkloadSpec{"GICOV", gpurf::quality::MetricKind::kDeviation,
                              2, 24, 6},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t blocks = scale == Scale::kFull ? 108 : 8;
    const uint32_t npix = blocks * 192;
    const uint32_t width = 384;
    inst.launch.grid_x = blocks;
    inst.launch.block_x = 192;

    gpurf::Pcg32 rng(0x61C0u + variant, 11);
    const int grad_h = 256;
    gpurf::exec::Texture grad;
    grad.width = static_cast<int>(width);
    grad.height = grad_h + 16;
    grad.texels.resize(size_t(grad.width) * grad.height);
    for (auto& t : grad.texels) t = float(rng.next_below(256)) / 256.0f;
    gpurf::exec::Texture grady;
    grady.width = grad.width;
    grady.height = grad.height;
    grady.texels.resize(grad.texels.size());
    for (auto& t : grady.texels)
      t = float(int(rng.next_below(256)) - 128) / 256.0f;
    inst.textures.push_back(std::move(grad));
    inst.textures.push_back(std::move(grady));

    const uint32_t out_base = inst.gmem.alloc(npix);
    inst.params = {out_base, width, uint32_t(grad_h), npix};
    inst.out_base = out_base;
    inst.out_words = npix;
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_gicov() {
  return std::make_unique<GicovWorkload>();
}

}  // namespace gpurf::workloads
