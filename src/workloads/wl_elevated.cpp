// Elevated (shadertoy): ray-marched fractal terrain.  Fixed-step ray
// march against a two-octave sine/cosine FBM height field, finite-
// difference shading, exponential fog.  Dominated by SFU work whose
// results carry full-width mantissas — the kernel where perfect-quality
// compression barely helps (and the deeper operand-collector pipeline can
// even cost IPC, §6.2), while high quality unlocks another block.
//
// Table 4: SSIM metric, 46 registers/thread, 8 warps/block (16x16).

#include <bit>

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpurf::workloads {

namespace {

constexpr std::string_view kAsm = R"(
.kernel elevated
.param s32 out_base
.param s32 width range(64,4096)
.param f32 cam_ox
.param f32 cam_oz
.reg s32 %tx
.reg s32 %ty
.reg s32 %x
.reg s32 %y
.reg s32 %step
.reg s32 %oa
.reg f32 %dirx
.reg f32 %diry
.reg f32 %dirz
.reg f32 %posx
.reg f32 %posy
.reg f32 %posz
.reg f32 %dt
.reg f32 %tdist
.reg f32 %h
.reg f32 %o1
.reg f32 %o2
.reg f32 %a1
.reg f32 %a2
.reg f32 %f1
.reg f32 %f2
.reg f32 %d
.reg f32 %focal
.reg f32 %hitT
.reg f32 %hx
.reg f32 %hz
.reg f32 %slope
.reg f32 %shade
.reg f32 %fog
.reg f32 %sky
.reg f32 %sunx
.reg f32 %sunz
.reg f32 %amb
.reg f32 %t0
.reg f32 %t1
.reg f32 %t2
.reg f32 %out
.reg f32 %a3
.reg f32 %f3
.reg f32 %o3
.reg f32 %cloud
.reg f32 %cldens
.reg f32 %clf
.reg f32 %fogr
.reg f32 %fogk
.reg f32 %sunw
.reg f32 %hazek
.reg f32 %skyb
.reg f32 %skyk
.reg f32 %p0x
.reg f32 %p0z
.reg f32 %snowh
.reg f32 %snoww
.reg f32 %rockr
.reg f32 %rockk
.reg f32 %grassk
.reg f32 %mindist
.reg pred %pq
.reg pred %ph

entry:
  mov.s32 %tx, %tid.x
  mov.s32 %ty, %tid.y
  mov.s32 %x, %ctaid.x
  mad.s32 %x, %x, 16, %tx
  mov.s32 %y, %ctaid.y
  mad.s32 %y, %y, 16, %ty
  // camera ray (division by a non-dyadic focal length keeps mantissas wide)
  cvt.f32.s32 %dirx, %x
  mul.f32 %dirx, %dirx, 0.0051
  sub.f32 %dirx, %dirx, 0.49
  cvt.f32.s32 %diry, %y
  mul.f32 %diry, %diry, 0.0037
  sub.f32 %diry, %diry, 0.61
  mov.f32 %dirz, 0.9962
  mov.f32 %posx, $cam_ox
  mov.f32 %posy, 1.7
  mov.f32 %posz, $cam_oz
  mov.f32 %dt, 0.3
  mov.f32 %a1, 0.9
  mov.f32 %a2, 0.37
  mov.f32 %f1, 1.3
  mov.f32 %f2, 2.9
  mov.f32 %sunx, 0.7
  mov.f32 %sunz, 0.3
  mov.f32 %amb, 0.21
  mov.f32 %a3, 0.13
  mov.f32 %f3, 6.1
  mov.f32 %cldens, 0.071
  mov.f32 %clf, 0.83
  mov.f32 %fogr, 0.67
  mov.f32 %fogk, -0.13
  mov.f32 %sunw, 1.9
  mov.f32 %hazek, 0.055
  mov.f32 %skyb, 0.74
  mov.f32 %skyk, -0.43
  mov.f32 %snowh, 1.1
  mov.f32 %snoww, 0.27
  mov.f32 %cloud, 0.0
  mov.f32 %rockr, 0.41
  mov.f32 %rockk, 0.19
  mov.f32 %grassk, 0.57
  mov.f32 %mindist, 100.0
  mov.f32 %p0x, $cam_ox
  mov.f32 %p0z, $cam_oz
  mov.f32 %tdist, 0.0
  mov.f32 %focal, 1.357
  mov.f32 %hitT, 0.0
  mov.f32 %hx, 0.0
  mov.f32 %hz, 0.0
  // %o1/%o2 are consumed after the march loop; the trip count guarantees
  // 12 iterations, but statically the zero-trip path reaches march_done,
  // so define them on every path (gpurf-lint: no undefined reads).
  mov.f32 %o1, 0.0
  mov.f32 %o2, 0.0
  mov.s32 %step, 0
march_loop:
  setp.ge.s32 %pq, %step, 12
  @%pq bra march_done
march_body:
  mad.f32 %posx, %dirx, %dt, %posx
  mad.f32 %posy, %diry, %dt, %posy
  mad.f32 %posz, %dirz, %dt, %posz
  add.f32 %tdist, %tdist, %dt
  // two-octave FBM height
  mul.f32 %t0, %posx, %f1
  sin.f32 %t0, %t0
  mul.f32 %t1, %posz, %f1
  cos.f32 %t1, %t1
  mul.f32 %o1, %t0, %t1
  mul.f32 %o1, %o1, %a1
  mul.f32 %t0, %posx, %f2
  sin.f32 %t0, %t0
  mul.f32 %t1, %posz, %f2
  cos.f32 %t1, %t1
  mul.f32 %o2, %t0, %t1
  mul.f32 %o2, %o2, %a2
  mul.f32 %t0, %posx, %f3
  sin.f32 %t0, %t0
  mul.f32 %t1, %posz, %f3
  cos.f32 %t1, %t1
  mul.f32 %o3, %t0, %t1
  mul.f32 %o3, %o3, %a3
  add.f32 %h, %o1, %o2
  add.f32 %h, %h, %o3
  // cloud density accumulates along the ray above the cloud deck
  sub.f32 %t2, %posy, %snowh
  max.f32 %t2, %t2, 0.0
  mul.f32 %t2, %t2, %cldens
  mad.f32 %cloud, %t2, %clf, %cloud
  sub.f32 %d, %posy, %h
  min.f32 %mindist, %mindist, %d
  // first hit: record distance and finite-difference slopes
  setp.lt.f32 %ph, %d, 0.05
  @%ph setp.eq.f32 %ph, %hitT, 0.0
  // slope probes (one octave, offset +0.35)
  add.f32 %t0, %posx, 0.35
  mul.f32 %t0, %t0, %f1
  sin.f32 %t0, %t0
  mul.f32 %t1, %posz, %f1
  cos.f32 %t1, %t1
  mul.f32 %t2, %t0, %t1
  mul.f32 %t2, %t2, %a1
  @%ph sub.f32 %hx, %t2, %h
  add.f32 %t0, %posz, 0.35
  mul.f32 %t0, %t0, %f1
  cos.f32 %t0, %t0
  mul.f32 %t1, %posx, %f1
  sin.f32 %t1, %t1
  mul.f32 %t2, %t1, %t0
  mul.f32 %t2, %t2, %a1
  @%ph sub.f32 %hz, %t2, %h
  @%ph mov.f32 %hitT, %tdist
  add.s32 %step, %step, 1
  bra march_loop
march_done:
  // shading: sun-facing slope + ambient + snow band, exponential fog
  mul.f32 %slope, %hx, %sunx
  mad.f32 %slope, %hz, %sunz, %slope
  mul.f32 %slope, %slope, %sunw
  neg.f32 %slope, %slope
  max.f32 %slope, %slope, 0.0
  add.f32 %shade, %slope, %amb
  // snow above snowh
  sub.f32 %t0, %posy, %snowh
  mul.f32 %t0, %t0, 4.0
  max.f32 %t0, %t0, 0.0
  min.f32 %t0, %t0, 1.0
  mad.f32 %shade, %t0, %snoww, %shade
  // rock/grass albedo bands by height (uses the recorded octave mix)
  mul.f32 %t1, %o1, %rockk
  mad.f32 %t1, %o2, %grassk, %t1
  max.f32 %t1, %t1, 0.0
  mul.f32 %t2, %rockr, 0.33
  mad.f32 %shade, %t1, %t2, %shade
  // near-miss glow from the closest approach distance
  abs.f32 %t1, %mindist
  min.f32 %t1, %t1, 1.0
  mul.f32 %t1, %t1, 0.0625
  sub.f32 %shade, %shade, %t1
  mul.f32 %t0, %hitT, %fogk
  mul.f32 %t0, %t0, %focal
  ex2.f32 %fog, %t0
  mad.f32 %fog, %fog, %fogr, 0.0
  // haze grows with distance from the camera origin (wide values)
  sub.f32 %t1, %posx, %p0x
  abs.f32 %t1, %t1
  sub.f32 %t2, %posz, %p0z
  abs.f32 %t2, %t2
  add.f32 %t1, %t1, %t2
  mul.f32 %t1, %t1, %hazek
  min.f32 %t1, %t1, 0.5
  // sky gradient + cloud cover
  mul.f32 %sky, %diry, %skyk
  add.f32 %sky, %sky, %skyb
  min.f32 %cloud, %cloud, 1.0
  mad.f32 %sky, %cloud, 0.125, %sky
  add.f32 %sky, %sky, %t1
  // out = hit ? mix(sky, shade, fog) : sky
  sub.f32 %t1, %shade, %sky
  mad.f32 %t2, %t1, %fog, %sky
  setp.gt.f32 %ph, %hitT, 0.01
  selp.f32 %out, %t2, %sky, %ph
  max.f32 %out, %out, 0.0
  min.f32 %out, %out, 1.0
  mad.s32 %oa, %y, $width, %x
  add.s32 %oa, %oa, $out_base
  st.global.f32 [%oa], %out
  ret
)";

class ElevatedWorkload final : public Workload {
 public:
  ElevatedWorkload()
      // Waiver: 2D row-interleaved tiles (see wl_ssao.cpp) — store hulls
      // of adjacent tiles overlap as intervals though the word sets are
      // disjoint.  loads_local is proven; only sharding needs the waiver.
      : Workload(WorkloadSpec{"Elevated", gpurf::quality::MetricKind::kSsim,
                              1, 46, 8, /*assume_disjoint=*/true},
                 kAsm) {}

  Instance make_instance(Scale scale, uint32_t variant) const override {
    Instance inst;
    const uint32_t tiles = scale == Scale::kFull ? 12 : 3;
    const uint32_t w = tiles * 16, h = tiles * 16;
    inst.launch.grid_x = tiles;
    inst.launch.grid_y = tiles;
    inst.launch.block_x = 16;
    inst.launch.block_y = 16;

    // Camera origin varies per sample input (different view of the field).
    const float ox = 2.13f + 0.77f * float(variant);
    const float oz = -1.04f + 1.31f * float(variant);
    const uint32_t out_base = inst.gmem.alloc(size_t(w) * h);
    inst.params = {out_base, w, std::bit_cast<uint32_t>(ox),
                   std::bit_cast<uint32_t>(oz)};
    inst.out_base = out_base;
    inst.out_words = size_t(w) * h;
    inst.image_w = static_cast<int>(w);
    inst.image_h = static_cast<int>(h);
    return inst;
  }
};

}  // namespace

std::unique_ptr<Workload> make_elevated() {
  return std::make_unique<ElevatedWorkload>();
}

}  // namespace gpurf::workloads
