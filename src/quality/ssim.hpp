#pragma once
// Structural Similarity Index (Wang, Bovik, Sheikh, Simoncelli 2004),
// the quality metric the paper uses for its graphics kernels (§5.3).

#include "quality/image.hpp"

namespace gpurf::quality {

struct SsimParams {
  int window = 11;        ///< Gaussian window size (odd)
  double sigma = 1.5;     ///< Gaussian std-dev
  double k1 = 0.01;
  double k2 = 0.03;
  double dynamic_range = 1.0;  ///< L: our images are in [0,1]
};

/// Mean SSIM over all fully-covered windows.  Both images must have equal
/// dimensions of at least `window` in each direction.  Result is in [-1, 1];
/// identical images score exactly 1.0.
double ssim(const Image& ref, const Image& test,
            const SsimParams& p = SsimParams{});

}  // namespace gpurf::quality
