#pragma once
// Output-quality degradation under fault-directed redirection (PR 6).
//
// A fault campaign compares three functional runs of one workload
// instance: the exact reference (no precision map), the fault-free tuned
// run, and the faulty run whose allocation was steered around broken
// slices (spilled registers revert to full precision, so a fault can
// only *improve* numerics — the interesting signal is the latency/
// pressure cost, but the delta keeps the claim honest).  The helpers
// here normalize "how much worse" across the three metric families,
// whose score directions differ.

#include "quality/metrics.hpp"

namespace gpurf::quality {

/// Signed degradation of `faulty` relative to `fault_free`, oriented so
/// positive always means worse output: deviation grows with error, SSIM
/// and binary shrink.
inline double degradation_delta(MetricKind kind, double fault_free,
                                double faulty) {
  return kind == MetricKind::kDeviation ? faulty - fault_free
                                        : fault_free - faulty;
}

}  // namespace gpurf::quality
