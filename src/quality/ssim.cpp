#include "quality/ssim.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace gpurf::quality {

double ssim(const Image& ref, const Image& test, const SsimParams& p) {
  GPURF_CHECK(ref.width() == test.width() && ref.height() == test.height(),
              "ssim: image dimensions differ");
  GPURF_CHECK(p.window % 2 == 1 && p.window >= 3, "ssim: bad window size");
  GPURF_CHECK(ref.width() >= p.window && ref.height() >= p.window,
              "ssim: image smaller than window");

  // Precompute the normalized 2-D Gaussian kernel.
  const int n = p.window;
  const int half = n / 2;
  std::vector<double> kernel(size_t(n) * n);
  double ksum = 0.0;
  for (int dy = -half; dy <= half; ++dy) {
    for (int dx = -half; dx <= half; ++dx) {
      const double w =
          std::exp(-(dx * dx + dy * dy) / (2.0 * p.sigma * p.sigma));
      kernel[size_t(dy + half) * n + (dx + half)] = w;
      ksum += w;
    }
  }
  for (double& w : kernel) w /= ksum;

  const double c1 = (p.k1 * p.dynamic_range) * (p.k1 * p.dynamic_range);
  const double c2 = (p.k2 * p.dynamic_range) * (p.k2 * p.dynamic_range);

  double total = 0.0;
  long count = 0;
  for (int y = half; y < ref.height() - half; ++y) {
    for (int x = half; x < ref.width() - half; ++x) {
      double mu_r = 0, mu_t = 0;
      for (int dy = -half; dy <= half; ++dy)
        for (int dx = -half; dx <= half; ++dx) {
          const double w = kernel[size_t(dy + half) * n + (dx + half)];
          mu_r += w * ref.at(x + dx, y + dy);
          mu_t += w * test.at(x + dx, y + dy);
        }
      double var_r = 0, var_t = 0, cov = 0;
      for (int dy = -half; dy <= half; ++dy)
        for (int dx = -half; dx <= half; ++dx) {
          const double w = kernel[size_t(dy + half) * n + (dx + half)];
          const double a = ref.at(x + dx, y + dy) - mu_r;
          const double b = test.at(x + dx, y + dy) - mu_t;
          var_r += w * a * a;
          var_t += w * b * b;
          cov += w * a * b;
        }
      const double num = (2 * mu_r * mu_t + c1) * (2 * cov + c2);
      const double den =
          (mu_r * mu_r + mu_t * mu_t + c1) * (var_r + var_t + c2);
      total += num / den;
      ++count;
    }
  }
  GPURF_ASSERT(count > 0, "ssim: no windows evaluated");
  return total / static_cast<double>(count);
}

}  // namespace gpurf::quality
