#pragma once
// Grayscale float image container used by the graphics workloads and the
// SSIM quality metric.

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace gpurf::quality {

class Image {
 public:
  Image() = default;
  Image(int w, int h) : w_(w), h_(h), data_(size_t(w) * h, 0.f) {
    GPURF_CHECK(w > 0 && h > 0, "image dimensions must be positive");
  }
  Image(int w, int h, std::vector<float> data)
      : w_(w), h_(h), data_(std::move(data)) {
    GPURF_CHECK(data_.size() == size_t(w) * h, "image data size mismatch");
  }

  int width() const { return w_; }
  int height() const { return h_; }

  float& at(int x, int y) {
    GPURF_ASSERT(x >= 0 && x < w_ && y >= 0 && y < h_,
                 "pixel (" << x << "," << y << ") out of range");
    return data_[size_t(y) * w_ + x];
  }
  float at(int x, int y) const {
    GPURF_ASSERT(x >= 0 && x < w_ && y >= 0 && y < h_,
                 "pixel (" << x << "," << y << ") out of range");
    return data_[size_t(y) * w_ + x];
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

 private:
  int w_ = 0, h_ = 0;
  std::vector<float> data_;
};

}  // namespace gpurf::quality
