#pragma once
// Quality metrics and thresholds (paper §5.3, §6.1).
//
// Three metric families are used by the paper's benchmarks:
//   * SSIM for the graphics kernels (Group 1),
//   * percentage deviation from the exact output (Group 2),
//   * a binary correct/incorrect metric for Hybridsort (Group 3).
//
// Two quality levels gate the precision tuner:
//   * perfect  — SSIM == 1.0 / 0 % deviation / binary-correct,
//   * high     — SSIM >= 0.9 / <= 10 % deviation / binary-correct.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace gpurf::quality {

enum class QualityLevel { kPerfect, kHigh };

enum class MetricKind { kSsim, kDeviation, kBinary };

std::string_view metric_name(MetricKind m);
std::string_view level_name(QualityLevel l);

/// Compares a candidate output buffer against the exact reference.
/// `score()` is metric-specific (SSIM value, % deviation, or 0/1);
/// `meets()` applies the paper's thresholds for the requested level.
class QualityMetric {
 public:
  virtual ~QualityMetric() = default;

  virtual MetricKind kind() const = 0;
  virtual double score(std::span<const float> ref,
                       std::span<const float> test) const = 0;
  virtual bool meets(double score, QualityLevel level) const = 0;
};

/// SSIM over a w x h grayscale image stored row-major in the buffers.
std::unique_ptr<QualityMetric> make_ssim_metric(int width, int height);

/// Percentage deviation: 100 * sum|test-ref| / sum|ref| (normalised L1).
/// NaN or Inf anywhere in `test` fails every level.
std::unique_ptr<QualityMetric> make_deviation_metric();

/// Binary: score 1 when every element is bit-identical, else 0.
std::unique_ptr<QualityMetric> make_binary_metric();

}  // namespace gpurf::quality
