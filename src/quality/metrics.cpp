#include "quality/metrics.hpp"

#include <cmath>

#include "common/bitutil.hpp"
#include "common/error.hpp"
#include "quality/ssim.hpp"

namespace gpurf::quality {

std::string_view metric_name(MetricKind m) {
  switch (m) {
    case MetricKind::kSsim: return "SSIM";
    case MetricKind::kDeviation: return "% deviation";
    case MetricKind::kBinary: return "Binary";
  }
  return "?";
}

std::string_view level_name(QualityLevel l) {
  switch (l) {
    case QualityLevel::kPerfect: return "perfect";
    case QualityLevel::kHigh: return "high";
  }
  return "?";
}

namespace {

class SsimMetric final : public QualityMetric {
 public:
  SsimMetric(int w, int h) : w_(w), h_(h) {}

  MetricKind kind() const override { return MetricKind::kSsim; }

  double score(std::span<const float> ref,
               std::span<const float> test) const override {
    GPURF_CHECK(ref.size() == size_t(w_) * h_ && test.size() == ref.size(),
                "ssim metric: buffer size mismatch");
    for (float v : test)
      if (!std::isfinite(v)) return -1.0;
    Image ri(w_, h_, {ref.begin(), ref.end()});
    Image ti(w_, h_, {test.begin(), test.end()});
    return ssim(ri, ti);
  }

  bool meets(double s, QualityLevel level) const override {
    // "Perfect" means no deviation from the original output (§2): the SSIM
    // of bit-identical images is exactly 1.0 in double arithmetic, so the
    // comparison needs no tolerance — any lossy format is rejected.
    return level == QualityLevel::kPerfect ? s >= 1.0 : s >= 0.9;
  }

 private:
  int w_, h_;
};

class DeviationMetric final : public QualityMetric {
 public:
  MetricKind kind() const override { return MetricKind::kDeviation; }

  double score(std::span<const float> ref,
               std::span<const float> test) const override {
    GPURF_CHECK(ref.size() == test.size(),
                "deviation metric: buffer size mismatch");
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
      if (!std::isfinite(test[i])) return 1e9;
      num += std::abs(double(test[i]) - double(ref[i]));
      den += std::abs(double(ref[i]));
    }
    if (den == 0.0) return num == 0.0 ? 0.0 : 1e9;
    return 100.0 * num / den;
  }

  bool meets(double s, QualityLevel level) const override {
    return level == QualityLevel::kPerfect ? s <= 0.0 : s <= 10.0;
  }
};

class BinaryMetric final : public QualityMetric {
 public:
  MetricKind kind() const override { return MetricKind::kBinary; }

  double score(std::span<const float> ref,
               std::span<const float> test) const override {
    GPURF_CHECK(ref.size() == test.size(),
                "binary metric: buffer size mismatch");
    for (size_t i = 0; i < ref.size(); ++i)
      if (float_bits(ref[i]) != float_bits(test[i])) return 0.0;
    return 1.0;
  }

  bool meets(double s, QualityLevel /*level*/) const override {
    // Binary quality has only two states; both levels require correctness
    // (§6.1: Hybridsort must stay perfect even at the high-quality level).
    return s >= 1.0;
  }
};

}  // namespace

std::unique_ptr<QualityMetric> make_ssim_metric(int width, int height) {
  return std::make_unique<SsimMetric>(width, height);
}

std::unique_ptr<QualityMetric> make_deviation_metric() {
  return std::make_unique<DeviationMetric>();
}

std::unique_ptr<QualityMetric> make_binary_metric() {
  return std::make_unique<BinaryMetric>();
}

}  // namespace gpurf::quality
