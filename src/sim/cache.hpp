#pragma once
// Set-associative LRU cache model.  Tag-only (data comes from the
// functional interpreter); a probe updates LRU state and fills on miss.
//
// NOT thread-safe, and deliberately so: access() advances an internal
// tick_ that stamps LRU recency, so both the hit/miss outcome and the
// replacement state depend on the exact global order of probes.  Callers
// that share a cache across threads (the sharded simulator's L2) must
// therefore serialise a deterministic access order themselves — per-SM
// probe streams are buffered during the parallel tick and replayed here
// in SM-index order at the cycle barrier (see sim/gpu.cpp).

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace gpurf::sim {

class Cache {
 public:
  explicit Cache(const CacheGeom& g);

  /// Probe line address `line` (already divided by line size).  Returns
  /// true on hit.  Misses allocate (LRU victim).
  bool access(uint64_t line);

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    uint64_t tag = 0;
    bool valid = false;
    uint64_t lru = 0;
  };
  CacheGeom geom_;
  uint32_t sets_;
  std::vector<Line> lines_;  // sets_ x assoc
  uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace gpurf::sim
