#pragma once
// Transient (SEU) soft-error machinery for the timing simulator (PR 7).
//
// Two cooperating pieces:
//
//  * SoftErrorProcess — a deterministic Poisson bit-flip arrival process
//    over the physical register-file geometry.  Inter-arrival gaps are
//    exponential in continuous cycle time, so the expected flip count is
//    rate * cycles and the RNG is consumed O(#flips), not O(#cycles): a
//    zero rate draws no random numbers at all, which is what makes
//    zero-rate runs bit-identical to fault-free references.  The process
//    is owned by simulate() and advanced only in the serial barrier
//    phase, so the flip trace — and everything downstream of it — is
//    identical at every shard count.
//
//  * SoftErrorModel — the static vulnerability map of one launch: which
//    architectural register (if any) owns each (physical register, slice)
//    site under the active allocation, how many payload bits each
//    register occupies, and per-(block, instruction) live-register sets
//    borrowed from the instruction-granular dataflow pass cached in the
//    KernelAnalysis (src/analysis/dataflow.*, PR 9) — the same per-point
//    facts the interpreter's dead-write elision and the allocator's
//    live-range packing consume.  It also implements the corruption
//    round-trip: reconstruct the stored (truncated / encoded) payload of
//    the victim register, flip the struck bit, and decompress back
//    through the Value Extractor / Value Converter into the architectural
//    32-bit value — narrow-float decoding can absorb a flip, which is one
//    of the masking effects the AVF report quantifies.
//
// The flip site space is fixed — independent of the launch's allocation —
// so baseline and compressed runs at equal rates see identically
// distributed strikes and differ only in how many of them land on live
// bits: (SM, warp slot in [0, max_warps_per_sm), physical register in
// [0, kSoftPhysRegSpace), slice in [0, 8), lane in [0, 32), bit in
// [0, 4)).

#include <cstdint>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "common/bitset.hpp"
#include "common/rng.hpp"
#include "exec/kernel_analysis.hpp"
#include "sim/gpu.hpp"

namespace gpurf::sim {

/// Flip site space: matches the permanent rf::FaultMap geometry (16 banks
/// x 16 rows of 8-slice registers per warp context).
inline constexpr uint32_t kSoftPhysRegSpace = 256;
inline constexpr uint32_t kSoftSlicesPerReg = 8;
inline constexpr uint32_t kSoftBitsPerSlice = 4;

/// One sampled strike.
struct FlipSite {
  uint32_t sm = 0;
  uint32_t warp_slot = 0;  ///< in [0, max_warps_per_sm)
  uint32_t phys_reg = 0;   ///< in [0, kSoftPhysRegSpace)
  uint32_t slice = 0;      ///< in [0, kSoftSlicesPerReg)
  uint32_t lane = 0;       ///< in [0, 32)
  uint32_t bit = 0;        ///< in [0, kSoftBitsPerSlice)
};

class SoftErrorProcess {
 public:
  SoftErrorProcess(const SoftErrorSpec& spec, uint32_t num_sms,
                   uint32_t warp_slots_per_sm);

  /// True (filling *out) when the next strike lands on `cycle`; call in a
  /// loop until false — multiple strikes per cycle are possible at high
  /// rates.  Must be called with non-decreasing cycle numbers.
  bool next_flip(uint64_t cycle, FlipSite* out);

 private:
  void advance();

  gpurf::Pcg32 rng_;
  double rate_per_cycle_ = 0.0;
  double next_time_ = 0.0;
  uint32_t num_sms_ = 1;
  uint32_t warp_slots_ = 1;
};

class SoftErrorModel {
 public:
  static constexpr uint32_t kNoReg = ~0u;

  /// `allocation` selects the storage model: nullptr = baseline (every
  /// non-predicate architectural register stored full-width at its own
  /// id), else the compressed slice packing (aliasing allowed: registers
  /// with disjoint live ranges may own the same site — at most one is
  /// live at any program point, by the interference contract).
  SoftErrorModel(const gpurf::ir::Kernel& k,
                 const gpurf::exec::KernelAnalysis& ka,
                 const gpurf::alloc::AllocationResult* allocation);

  /// Architectural registers owning site (phys_reg, slice); empty = the
  /// site holds no allocated payload (strike is masked as dead).
  struct Owner {
    uint32_t reg = kNoReg;
    bool second_piece = false;  ///< site belongs to the split's r1 piece
  };
  const std::vector<Owner>& owners(uint32_t phys_reg, uint32_t slice) const;

  /// Is `reg` architecturally live when a warp stands at (blk, inst)?
  /// `inst == block size` means "past the last instruction" (live-out).
  bool reg_live(uint32_t blk, uint32_t inst, uint32_t reg) const;

  /// Live payload bits (one lane) at a warp position — the deterministic
  /// exposure integrand: sum over live registers of their stored width
  /// (32 baseline, 4 * allocated slices compressed).
  uint32_t payload_bits(uint32_t blk, uint32_t inst) const;

  /// Static classification (PR 9): the site holds no payload that is live
  /// at *any* program point — every strike there is masked regardless of
  /// where the warp stands, so soft_flips_static_dead is a lower bound of
  /// soft_flips_masked_dead by construction.
  bool site_static_dead(uint32_t phys_reg, uint32_t slice) const;

  /// Position-independent upper bound of payload_bits(): the sum of the
  /// stored widths of every ever-live register.  Integrated alongside the
  /// dynamic exposure it yields the static live-bit integral, >= the
  /// dynamic one per warp-cycle by live_before ⊆ ever_live.
  uint32_t static_payload_bits() const { return static_bits_; }

  /// Corrupt one stored bit of the victim register and return the
  /// post-decompression architectural value.  `value` is the current
  /// architectural 32-bit value; equality of the result means the strike
  /// was numerically masked by the storage encoding.
  uint32_t corrupt(uint32_t value, uint32_t reg, bool second_piece,
                   uint32_t slice, uint32_t bit) const;

 private:
  const gpurf::ir::Kernel* k_;
  const gpurf::alloc::AllocationResult* alloc_;  ///< nullptr = baseline
  /// Instruction-granular liveness, borrowed from the KernelAnalysis the
  /// launch already carries (PR 9) — the model no longer recomputes the
  /// per-point scan itself.  The analysis outlives the model (simulate()
  /// holds the shared_ptr for the whole run).
  const gpurf::analysis::Dataflow* df_;
  /// (phys_reg * 8 + slice) -> owning registers; baseline mode leaves this
  /// empty and resolves ownership by identity.
  std::vector<std::vector<Owner>> owners_;
  std::vector<Owner> no_owner_;
  std::vector<uint32_t> reg_bits_;  ///< stored payload width per arch reg
  /// Per-point payload-bit sums over the dataflow's point layout
  /// (allocation-dependent, so computed here rather than in the analysis).
  std::vector<uint32_t> bits_at_;
  uint32_t static_bits_ = 0;  ///< sum of widths over ever-live registers
};

}  // namespace gpurf::sim
