#include "sim/soft_error.hpp"

#include <bit>
#include <cmath>

#include "analysis/dataflow.hpp"
#include "fp/format.hpp"
#include "rf/value_converter.hpp"
#include "rf/value_extractor.hpp"
#include "rf/value_truncator.hpp"

namespace gpurf::sim {

namespace {
/// Dedicated PCG stream for the flip process so a campaign seed never
/// collides with workload-input generation streams.
constexpr uint64_t kFlipStream = 0x50f7e44c0deULL;
}  // namespace

SoftErrorProcess::SoftErrorProcess(const SoftErrorSpec& spec, uint32_t num_sms,
                                   uint32_t warp_slots_per_sm)
    : rng_(spec.seed, kFlipStream),
      rate_per_cycle_(spec.flips_per_mcycle * 1e-6),
      num_sms_(num_sms),
      warp_slots_(warp_slots_per_sm) {
  if (rate_per_cycle_ > 0.0) advance();
}

void SoftErrorProcess::advance() {
  // Exponential inter-arrival gap; next_float() is in [0, 1) so the log
  // argument stays in (0, 1].  A zero gap just means two strikes in the
  // same cycle.
  const double u = static_cast<double>(rng_.next_float());
  next_time_ += -std::log(1.0 - u) / rate_per_cycle_;
}

bool SoftErrorProcess::next_flip(uint64_t cycle, FlipSite* out) {
  if (rate_per_cycle_ <= 0.0) return false;
  if (next_time_ >= static_cast<double>(cycle + 1)) return false;
  out->sm = rng_.next_below(num_sms_);
  out->warp_slot = rng_.next_below(warp_slots_);
  out->phys_reg = rng_.next_below(kSoftPhysRegSpace);
  out->slice = rng_.next_below(kSoftSlicesPerReg);
  out->lane = rng_.next_below(32);
  out->bit = rng_.next_below(kSoftBitsPerSlice);
  advance();
  return true;
}

SoftErrorModel::SoftErrorModel(const gpurf::ir::Kernel& k,
                               const gpurf::exec::KernelAnalysis& ka,
                               const gpurf::alloc::AllocationResult* allocation)
    : k_(&k), alloc_(allocation), df_(&ka.dataflow()) {
  const uint32_t nregs = k.num_regs();

  // Stored payload width per architectural register.  Predicates live in a
  // separate predicate file and spilled registers in the uncompressed
  // spill store — neither occupies the sampled slice geometry, but spilled
  // values still count their full 32 bits toward the exposure integral
  // (they are stored *somewhere*, uncompressed).
  reg_bits_.assign(nregs, 0);
  for (uint32_t r = 0; r < nregs; ++r) {
    if (k.regs[r].type == gpurf::ir::Type::PRED) continue;
    if (!alloc_) {
      reg_bits_[r] = 32;
      continue;
    }
    const auto& e = alloc_->table[r];
    if (!e.valid) continue;
    reg_bits_[r] = e.spilled ? 32 : 4u * e.slices;
  }

  // Reverse map (physical register, slice) -> owning registers.  Aliasing
  // is expected: non-interfering registers share slices, and at most one
  // owner is live at any program point.
  if (alloc_) {
    owners_.resize(size_t(kSoftPhysRegSpace) * kSoftSlicesPerReg);
    for (uint32_t r = 0; r < nregs; ++r) {
      const auto& e = alloc_->table[r];
      if (!e.valid || e.spilled) continue;
      const auto add_piece = [&](const gpurf::alloc::SliceLoc& loc,
                                 bool second) {
        if (loc.phys_reg >= kSoftPhysRegSpace) return;
        for (uint32_t s = 0; s < kSoftSlicesPerReg; ++s)
          if ((loc.mask >> s) & 1u)
            owners_[size_t(loc.phys_reg) * kSoftSlicesPerReg + s].push_back(
                Owner{r, second});
      };
      add_piece(e.r0, false);
      if (e.split) add_piece(e.r1, true);
    }
  }

  // Per-point liveness comes precomputed from the KernelAnalysis (PR 9):
  // the dataflow pass builds the exact same flattened block-major layout
  // (point i = "about to execute instruction i", point block_size = the
  // live-out) the model used to scan out itself.  Only the payload-bit
  // sums are allocation-dependent, so they stay here.
  bits_at_.assign(df_->num_points, 0);
  for (uint32_t p = 0; p < df_->num_points; ++p) {
    uint32_t bits = 0;
    df_->live_before[p].for_each_set([&](size_t r) { bits += reg_bits_[r]; });
    bits_at_[p] = bits;
  }
  df_->ever_live.for_each_set([&](size_t r) { static_bits_ += reg_bits_[r]; });
}

const std::vector<SoftErrorModel::Owner>& SoftErrorModel::owners(
    uint32_t phys_reg, uint32_t slice) const {
  if (owners_.empty()) return no_owner_;  // baseline: identity, not mapped
  return owners_[size_t(phys_reg) * kSoftSlicesPerReg + slice];
}

bool SoftErrorModel::reg_live(uint32_t blk, uint32_t inst,
                              uint32_t reg) const {
  return df_->live_at(blk, inst, reg);
}

uint32_t SoftErrorModel::payload_bits(uint32_t blk, uint32_t inst) const {
  return bits_at_[df_->point_index(blk, inst)];
}

bool SoftErrorModel::site_static_dead(uint32_t phys_reg,
                                      uint32_t slice) const {
  const auto live_somewhere = [&](uint32_t r) {
    return r < df_->ever_live.size() && df_->ever_live.test(r);
  };
  if (alloc_) {
    for (const Owner& o : owners(phys_reg, slice))
      if (live_somewhere(o.reg)) return false;
    return true;  // unallocated, or every aliased owner is never live
  }
  // Baseline identity storage: the site is its own register.
  return !(phys_reg < k_->num_regs() &&
           k_->regs[phys_reg].type != gpurf::ir::Type::PRED &&
           live_somewhere(phys_reg));
}

uint32_t SoftErrorModel::corrupt(uint32_t value, uint32_t reg,
                                 bool second_piece, uint32_t slice,
                                 uint32_t bit) const {
  const uint32_t flip = 1u << (slice * kSoftBitsPerSlice + bit);
  if (!alloc_) return value ^ flip;  // full-width storage: raw bit flip

  // Compressed storage: reconstruct the stored payload exactly as the
  // Value Truncator writes it, strike the bit, and read it back through
  // the Value Extractor / Value Converter.
  const auto& e = alloc_->table[reg];
  gpurf::rf::TruncateSpec tspec;
  tspec.mask0 = e.r0.mask;
  tspec.mask1 = e.split ? e.r1.mask : 0;
  tspec.data_slices = e.slices;
  tspec.is_float = e.is_float;
  if (e.is_float) tspec.float_fmt = gpurf::fp::format_for_bits(e.float_bits);
  gpurf::rf::TruncateResult tr = gpurf::rf::tvt_truncate(value, tspec);
  if (second_piece)
    tr.data1 ^= flip;
  else
    tr.data0 ^= flip;

  gpurf::rf::ExtractSpec s0;
  s0.mask = e.r0.mask;
  s0.first_slice = 0;
  s0.data_slices = e.slices;
  s0.is_signed = e.is_signed;
  uint32_t merged = gpurf::rf::tve_extract_piece(tr.data0, s0);
  if (e.split) {
    gpurf::rf::ExtractSpec s1 = s0;
    s1.mask = e.r1.mask;
    s1.first_slice = static_cast<uint8_t>(std::popcount(e.r0.mask));
    merged |= gpurf::rf::tve_extract_piece(tr.data1, s1);
  }
  merged = gpurf::rf::tve_finalize(merged, s0);
  if (e.is_float && e.float_bits != 32)
    merged = gpurf::rf::tvc_convert(
        merged, gpurf::fp::format_for_bits(e.float_bits));
  return merged;
}

}  // namespace gpurf::sim
