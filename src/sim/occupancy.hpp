#pragma once
// CUDA-style occupancy calculation (paper §2): how many thread blocks fit
// on one SM given register pressure, shared-memory usage and the warp /
// block limits.

#include <algorithm>
#include <cstdint>

#include "sim/config.hpp"

namespace gpurf::sim {

struct Occupancy {
  uint32_t blocks_per_sm = 0;
  uint32_t warps_per_sm = 0;
  double percent = 0.0;  ///< active warps / max warps (the paper's metric)

  enum class Limiter { kRegisters, kSharedMem, kWarps, kBlocks, kNone };
  Limiter limiter = Limiter::kNone;
};

inline Occupancy compute_occupancy(const GpuConfig& g,
                                   uint32_t regs_per_thread,
                                   uint32_t warps_per_block,
                                   uint32_t shared_bytes_per_block) {
  Occupancy o;
  // Register limit at warp granularity: regs/thread x 32 threads x warps.
  const uint64_t regs_per_block =
      uint64_t(regs_per_thread) * 32 * warps_per_block;
  const uint32_t by_regs =
      regs_per_block == 0
          ? g.max_blocks_per_sm
          : static_cast<uint32_t>(g.registers_per_sm / regs_per_block);
  const uint32_t by_smem =
      shared_bytes_per_block == 0
          ? g.max_blocks_per_sm
          : g.shared_mem_bytes / shared_bytes_per_block;
  const uint32_t by_warps = g.max_warps_per_sm / warps_per_block;
  const uint32_t by_blocks = g.max_blocks_per_sm;

  o.blocks_per_sm = std::min({by_regs, by_smem, by_warps, by_blocks});
  o.warps_per_sm = o.blocks_per_sm * warps_per_block;
  o.percent = 100.0 * o.warps_per_sm / g.max_warps_per_sm;

  if (o.blocks_per_sm == by_regs && by_regs < by_blocks)
    o.limiter = Occupancy::Limiter::kRegisters;
  else if (o.blocks_per_sm == by_smem && by_smem < by_blocks)
    o.limiter = Occupancy::Limiter::kSharedMem;
  else if (o.blocks_per_sm == by_warps && by_warps < by_blocks)
    o.limiter = Occupancy::Limiter::kWarps;
  else
    o.limiter = Occupancy::Limiter::kBlocks;
  return o;
}

}  // namespace gpurf::sim
