#include "sim/gpu.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "sim/cache.hpp"
#include "sim/soft_error.hpp"

namespace gpurf::sim {

namespace ir = gpurf::ir;
namespace exec = gpurf::exec;
using ir::Opcode;
using ir::UnitClass;

namespace {

constexpr int kNoIndex = -1;

/// Process-wide token bounding sharded-sim thread usage: at most one
/// simulation runs a dedicated shard crew at a time.  A second concurrent
/// sharded simulate degrades to the serial schedule (bit-identical by the
/// determinism contract — only wall-clock changes) instead of
/// oversubscribing the host with additional spin-barrier crews.  The sims
/// deliberately do NOT route through ThreadPool::parallel_for: that holds
/// the pool's submit mutex for the whole job, which would serialise every
/// other session's short fan-outs (tuner probe batches, and with them
/// their cancellation checkpoints) behind a multi-second hold.
std::atomic<bool> shard_crew_busy{false};

class ShardCrewToken {
 public:
  ShardCrewToken()
      : acquired_(!shard_crew_busy.exchange(true, std::memory_order_acquire)) {}
  ~ShardCrewToken() {
    if (acquired_) shard_crew_busy.store(false, std::memory_order_release);
  }
  ShardCrewToken(const ShardCrewToken&) = delete;
  ShardCrewToken& operator=(const ShardCrewToken&) = delete;

  bool acquired() const { return acquired_; }

 private:
  bool acquired_;
};

/// Execution latency by instruction class.
uint32_t latency_of(const GpuConfig& g, const ir::Instruction& in) {
  switch (in.op) {
    case Opcode::MUL:
    case Opcode::MAD:
      return in.type == ir::Type::F32 ? g.lat_mul : g.lat_alu;
    case Opcode::SIN: case Opcode::COS: case Opcode::EX2:
    case Opcode::LG2: case Opcode::SQRT: case Opcode::RSQRT:
    case Opcode::RCP: case Opcode::DIV: case Opcode::REM:
      return g.lat_sfu;
    default:
      return g.lat_alu;
  }
}

struct FetchReq {
  uint8_t bank = 0;
  bool served = false;
};

struct CuEntry {
  bool valid = false;
  int warp = kNoIndex;
  exec::StepResult step;
  uint64_t active_from = 0;  ///< fetch requests visible from this cycle
  uint64_t alloc_cycle = 0;  ///< age for arbitration
  std::vector<FetchReq> fetches;
  uint32_t conversions_left = 0;
  bool ready_marked = false;
  bool dispatch_tried = false;

  bool fetches_done() const {
    for (const auto& f : fetches)
      if (!f.served) return false;
    return true;
  }
};

struct WriteBack {
  uint64_t cycle;
  int warp;
  uint32_t reg;
  bool operator>(const WriteBack& o) const { return cycle > o.cycle; }
};

struct BlockCtx {
  std::unique_ptr<exec::BlockExec> exec;
  uint32_t warps_live = 0;
  uint32_t barrier_arrived = 0;
};

struct WarpCtx {
  int block = kNoIndex;          ///< index into SmCore::blocks_
  uint32_t warp_in_block = 0;
  uint32_t gwarp = 0;            ///< global id used for bank hashing
  bool at_barrier = false;
  bool active = false;
  std::vector<uint8_t> pending;  ///< scoreboard flags per register
  uint64_t last_issued = 0;
};

class BlockDispatcher {
 public:
  explicit BlockDispatcher(const ir::LaunchConfig& lc) : lc_(lc) {}
  bool empty() const { return next_ >= uint64_t(lc_.num_blocks()); }
  std::pair<uint32_t, uint32_t> pop() {
    GPURF_ASSERT(!empty(), "dispatcher empty");
    const uint32_t bx = static_cast<uint32_t>(next_ % lc_.grid_x);
    const uint32_t by = static_cast<uint32_t>(next_ / lc_.grid_x);
    ++next_;
    return {bx, by};
  }

 private:
  const ir::LaunchConfig& lc_;
  uint64_t next_ = 0;
};

/// One LDST dispatch whose L2-dependent latency is resolved at the
/// barrier: the probe stream (`lines`) replays against the shared L2 in
/// SM-index order, because both the hit/miss outcome and the cache's
/// tick_-based LRU state depend on global access order.
struct PendingL2 {
  int warp = kNoIndex;        ///< destination warp (kNoIndex: no writeback)
  uint32_t reg = 0;           ///< destination register
  uint64_t issued_at = 0;     ///< dispatch cycle
  uint32_t base_latency = 0;  ///< latency floor (L1 / texture hit path)
  uint32_t extra = 0;         ///< serialisation cycles (transactions - 1)
  size_t line_begin = 0;      ///< range into SmCore::l2_lines_
  size_t line_end = 0;
};

class SmCore {
 public:
  /// Each SM owns a *copy* of the launch's ExecContext so that functional
  /// execution (thread_insts accumulation, analysis handle) never shares
  /// mutable state across SMs during a parallel tick.  Global memory stays
  /// shared: blocks of one launch write disjoint words (see gpu.hpp).
  SmCore(const GpuConfig& g, const CompressionConfig& cc,
         const KernelLaunchSpec& spec, const exec::ExecContext& base_ctx,
         const Occupancy& occ, const SoftErrorModel* soft_model)
      : g_(g),
        cc_(cc),
        spec_(spec),
        ctx_(base_ctx),
        occ_(occ),
        soft_model_(soft_model),
        l1_(g.l1),
        tex_(g.tex) {
    ctx_.thread_insts = 0;
    cus_.resize(g.collector_units);
    const uint32_t wpb = spec.launch.warps_per_block();
    warps_.resize(size_t(occ.blocks_per_sm) * wpb);
    for (uint32_t s = 0; s < occ.blocks_per_sm; ++s)
      for (uint32_t w = 0; w < wpb; ++w) {
        WarpCtx& wc = warps_[size_t(s) * wpb + w];
        wc.gwarp = s * wpb + w;
        wc.warp_in_block = w;
        wc.pending.assign(spec.kernel->num_regs(), 0);
      }
    blocks_.resize(occ.blocks_per_sm);
  }

  bool idle() const {
    for (const auto& b : blocks_)
      if (b.exec) return false;
    return true;
  }

  /// Parallel phase: everything an SM does in one cycle that touches only
  /// SM-private state.  L2-bound memory dispatches are buffered (see
  /// PendingL2) instead of probing the shared L2; block refill moved to
  /// fill_blocks() in the barrier phase.
  void tick(uint64_t now) {
    if (soft_model_) accumulate_exposure();
    retire_writebacks(now);
    dispatch_ready(now);
    arbitrate_banks(now);
    run_converters(now);
    issue(now);
  }

  /// Serial phase only (SM-index order, like commit_memory): land one
  /// sampled strike on this SM and classify it.  Touches only SM-private
  /// state plus the warp's functional registers — which no other SM reads
  /// — so the taxonomy and the corrupted payloads are identical at every
  /// shard count.
  void apply_soft_flip(const FlipSite& ev) {
    ++stats_.soft_flips_injected;
    // Static classification first (PR 9): a site none of whose aliased
    // owners is ever live can only resolve to "masked" below, whatever
    // the warp state — counting it here keeps the invariant
    // static_dead <= masked_dead structural rather than sampled.
    if (soft_model_->site_static_dead(ev.phys_reg, ev.slice))
      ++stats_.soft_flips_static_dead;
    const auto masked = [&] { ++stats_.soft_flips_masked_dead; };
    if (ev.warp_slot >= warps_.size()) return masked();
    WarpCtx& wc = warps_[ev.warp_slot];
    if (!wc.active || wc.block == kNoIndex) return masked();
    BlockCtx& blk = blocks_[wc.block];
    if (!blk.exec) return masked();
    exec::WarpState& ws = blk.exec->warp_mut(wc.warp_in_block);
    if (ws.done() || ws.stack().empty()) return masked();
    if (!((ws.valid_mask() >> ev.lane) & 1u)) return masked();
    const exec::StackEntry& pos = ws.stack().back();

    // Resolve the struck site to an architectural register that is live at
    // the warp's current position.  Compressed allocations may alias one
    // site to several registers with disjoint live ranges; at most one of
    // them is live here (interference contract).
    uint32_t victim = SoftErrorModel::kNoReg;
    bool second_piece = false;
    if (cc_.enabled && spec_.allocation) {
      for (const SoftErrorModel::Owner& o :
           soft_model_->owners(ev.phys_reg, ev.slice))
        if (soft_model_->reg_live(pos.blk, pos.inst, o.reg)) {
          victim = o.reg;
          second_piece = o.second_piece;
          break;
        }
    } else if (ev.phys_reg < spec_.kernel->num_regs() &&
               spec_.kernel->regs[ev.phys_reg].type != ir::Type::PRED &&
               soft_model_->reg_live(pos.blk, pos.inst, ev.phys_reg)) {
      victim = ev.phys_reg;  // baseline: full-width storage at its own id
    }
    if (victim == SoftErrorModel::kNoReg) return masked();

    ++stats_.soft_flips_on_live;
    const uint32_t v = ws.reg(victim, ev.lane);
    const uint32_t corrupted =
        soft_model_->corrupt(v, victim, second_piece, ev.slice, ev.bit);
    if (corrupted == v) return;  // absorbed by the narrow storage encoding
    ws.set_reg(victim, ev.lane, corrupted);
    ++stats_.soft_flips_visible;
  }

  /// Barrier phase 1 (serial, SM-index order): replay this SM's buffered
  /// L2 probes against the shared L2 and schedule the writebacks whose
  /// latency depended on the hit/miss outcomes.
  void commit_memory(Cache& l2) {
    for (const PendingL2& p : pending_) {
      uint32_t worst = p.base_latency;
      for (size_t i = p.line_begin; i < p.line_end; ++i)
        worst = std::max(
            worst, l2.access(l2_lines_[i]) ? g_.lat_l2_hit : g_.lat_dram);
      if (p.warp != kNoIndex) {
        const uint64_t wb_extra = cc_.enabled ? cc_.writeback_delay : 0;
        wb_.push(WriteBack{p.issued_at + worst + p.extra + wb_extra, p.warp,
                           p.reg});
      }
    }
    pending_.clear();
    l2_lines_.clear();
  }

  /// Barrier phase 2 (serial, SM-index order): claim blocks from the
  /// shared dispatcher.  Running this at the barrier — instead of
  /// on-demand inside tick() — is what makes block placement a pure
  /// function of the cycle number and the SM index.
  void fill_blocks(BlockDispatcher& dispatcher) {
    for (uint32_t slot = 0; slot < blocks_.size(); ++slot) {
      if (blocks_[slot].exec || dispatcher.empty()) continue;
      auto [bx, by] = dispatcher.pop();
      BlockCtx& b = blocks_[slot];
      b.exec = std::make_unique<exec::BlockExec>(ctx_, bx, by);
      b.warps_live = warps_per_block();
      b.barrier_arrived = 0;
      ++stats_.blocks_run;
      for (uint32_t w = 0; w < warps_per_block(); ++w) {
        WarpCtx& wc = warps_[size_t(slot) * warps_per_block() + w];
        wc.block = static_cast<int>(slot);
        wc.active = true;
        wc.at_barrier = false;
        std::fill(wc.pending.begin(), wc.pending.end(), 0);
      }
    }
  }

  /// L1 / texture miss-rate bookkeeping is merged into this SM's stats at
  /// the end of the run; simulate() folds per-SM stats in SM-index order.
  void flush_cache_stats() {
    stats_.l1.merge(l1_.stats());
    stats_.tex.merge(tex_.stats());
  }

  const SimStats& stats() const { return stats_; }
  uint64_t thread_insts() const { return ctx_.thread_insts; }

 private:
  uint32_t warps_per_block() const { return spec_.launch.warps_per_block(); }

  /// Live-bit exposure integral (PR 7): per cycle, every resident warp
  /// contributes (live payload bits at its current position) x (valid
  /// lanes).  Purely SM-private, position-driven, flip-independent — the
  /// deterministic cross-section number bench_soft compares.
  void accumulate_exposure() {
    for (const WarpCtx& wc : warps_) {
      if (!wc.active || wc.block == kNoIndex) continue;
      const BlockCtx& blk = blocks_[wc.block];
      if (!blk.exec) continue;
      const exec::WarpState& ws = blk.exec->warp(wc.warp_in_block);
      if (ws.done() || ws.stack().empty()) continue;
      const exec::StackEntry& pos = ws.stack().back();
      const uint64_t lanes = uint64_t(std::popcount(ws.valid_mask()));
      stats_.soft_live_bit_cycles +=
          uint64_t(soft_model_->payload_bits(pos.blk, pos.inst)) * lanes;
      // Static upper bound over the identical warp-cycles: ever-live
      // payload is position-independent, so per row this integral
      // dominates the dynamic one (live_before ⊆ ever_live) — the
      // comparison bench_analysis/bench_soft report.
      stats_.soft_static_live_bit_cycles +=
          uint64_t(soft_model_->static_payload_bits()) * lanes;
    }
  }

  void retire_writebacks(uint64_t now) {
    while (!wb_.empty() && wb_.top().cycle <= now) {
      const WriteBack w = wb_.top();
      wb_.pop();
      warps_[w.warp].pending[w.reg] = 0;
    }
  }

  // ------------------------------------------------------------- dispatch
  void dispatch_ready(uint64_t now) {
    spu_used_ = 0;  // both SPUs accept one instruction per cycle
    // Dispatch ready collector units, oldest first (selection sort over the
    // small fixed-size CU array keeps this allocation-free).
    for (;;) {
      int c = kNoIndex;
      for (int i = 0; i < int(cus_.size()); ++i)
        if (cus_[i].valid && cus_[i].ready_marked && !cus_[i].dispatch_tried &&
            (c == kNoIndex || cus_[i].alloc_cycle < cus_[c].alloc_cycle))
          c = i;
      if (c == kNoIndex) break;
      cus_[c].dispatch_tried = true;
      CuEntry& cu = cus_[c];
      const ir::Instruction& in = *cu.step.inst;
      const UnitClass unit = in.info().unit;
      uint64_t done_at = 0;
      if (unit == UnitClass::LDST) {
        if (now < ldst_free_) continue;
        const MemAccess ma = memory_access(now, cu);
        ldst_free_ = now + ma.transactions;
        if (ma.deferred) {
          // L2-dependent latency: the writeback (if any) is scheduled by
          // commit_memory() at this cycle's barrier, once the buffered L2
          // probes have resolved hit/miss in SM-index order.
          cu.valid = false;
          continue;
        }
        done_at = now + ma.latency;
      } else if (unit == UnitClass::SFU) {
        if (now < sfu_free_) continue;
        sfu_free_ = now + g_.sfu_initiation;
        done_at = now + latency_of(g_, in);
      } else {
        if (spu_used_ >= 2) continue;  // two single-precision units
        ++spu_used_;
        done_at = now + latency_of(g_, in);
      }

      if (in.info().has_dst) {
        const uint64_t wb_extra = cc_.enabled ? cc_.writeback_delay : 0;
        wb_.push(WriteBack{done_at + wb_extra, cu.warp, in.dst});
      }
      cu.valid = false;
    }
    for (auto& cu : cus_) cu.dispatch_tried = false;
  }

  // ------------------------------------------------------- bank arbitration
  void arbitrate_banks(uint64_t now) {
    // One read port per bank: serve the oldest pending request per bank.
    for (int bank = 0; bank < int(g_.register_banks); ++bank) {
      int best = kNoIndex;
      int best_fetch = kNoIndex;
      for (int c = 0; c < int(cus_.size()); ++c) {
        CuEntry& cu = cus_[c];
        if (!cu.valid || cu.ready_marked || cu.active_from > now) continue;
        for (int f = 0; f < int(cu.fetches.size()); ++f) {
          if (cu.fetches[f].served || cu.fetches[f].bank != bank) continue;
          if (best == kNoIndex ||
              cu.alloc_cycle < cus_[best].alloc_cycle) {
            best = c;
            best_fetch = f;
          }
          break;
        }
      }
      if (best != kNoIndex) {
        cus_[best].fetches[best_fetch].served = true;
        ++stats_.operand_fetches;
      }
    }
    // Mark CUs whose fetches completed and need no conversion.
    for (auto& cu : cus_) {
      if (cu.valid && !cu.ready_marked && cu.active_from <= now &&
          cu.fetches_done() && cu.conversions_left == 0)
        cu.ready_marked = true;
    }
  }

  void run_converters(uint64_t now) {
    if (!cc_.enabled) return;
    uint32_t budget = cc_.conversions_per_cycle;
    for (auto& cu : cus_) {
      if (budget == 0) break;
      if (!(cu.valid && !cu.ready_marked && cu.active_from <= now &&
            cu.fetches_done() && cu.conversions_left > 0))
        continue;
      const uint32_t take = std::min(budget, cu.conversions_left);
      cu.conversions_left -= take;
      budget -= take;
      stats_.conversions += take;
      // Converted operands become ready next cycle (one-cycle VC latency);
      // leaving ready_marked false until the next arbitrate pass models it.
    }
  }

  // ------------------------------------------------------------------ issue
  void issue(uint64_t now) {
    for (uint32_t sched = 0; sched < g_.warp_schedulers; ++sched) {
      bool issued = false;
      bool saw_scoreboard = false, saw_no_cu = false, saw_barrier = false;
      // GTO: greedily retry the last-issued warp first, then oldest
      // (arrival order).  -1 sentinel visits the greedy candidate once.
      int& greedy = greedy_warp_[sched];
      for (int idx = -1; idx < int(warps_.size()); ++idx) {
        int w = idx;
        if (idx == -1) {
          if (greedy < 0) continue;
          w = greedy;
        } else if (w == greedy) {
          continue;  // already tried as the greedy candidate
        }
        WarpCtx& wc = warps_[w];
        if (!wc.active || (wc.gwarp % g_.warp_schedulers) != sched)
          continue;
        if (wc.at_barrier) {
          saw_barrier = true;
          continue;
        }
        BlockCtx& blk = blocks_[wc.block];
        // Predecoded view: the control classification comes from the shared
        // decoded stream instead of being re-derived per issue attempt, and
        // step() below executes the same instruction through the SoA warp
        // kernels of the functional interpreter.
        const exec::DecodedInst* dec = blk.exec->peek_decoded(wc.warp_in_block);
        if (!dec) continue;
        const ir::Instruction* in = dec->in;

        if (!scoreboard_clear(wc, *in)) {
          saw_scoreboard = true;
          continue;
        }
        const bool is_control = dec->is_control;
        int cu_slot = kNoIndex;
        if (!is_control) {
          for (int c = 0; c < int(cus_.size()); ++c)
            if (!cus_[c].valid) {
              cu_slot = c;
              break;
            }
          if (cu_slot == kNoIndex) {
            saw_no_cu = true;
            continue;
          }
        }

        // Issue: functional execution happens now.
        const exec::StepResult step = blk.exec->step(wc.warp_in_block);
        ++stats_.warp_insts;
        wc.last_issued = now;
        greedy = wc.active ? w : kNoIndex;

        if (is_control) {
          handle_control(w, step);
          if (!wc.active || wc.at_barrier) greedy = kNoIndex;
        } else {
          allocate_cu(now, w, cu_slot, step);
        }
        issued = true;
        break;
      }
      if (!issued) greedy = kNoIndex;
      if (!issued) {
        if (saw_scoreboard) ++stats_.stall_scoreboard;
        else if (saw_no_cu) ++stats_.stall_no_cu;
        else if (saw_barrier) ++stats_.stall_barrier;
        else ++stats_.stall_empty;
      }
    }
  }

  bool scoreboard_clear(const WarpCtx& wc, const ir::Instruction& in) const {
    bool ok = true;
    analysis_for_each_reg(in, [&](uint32_t r) {
      if (wc.pending[r]) ok = false;
    });
    return ok;
  }

  /// All registers an instruction touches (sources, guard, destination).
  template <typename Fn>
  static void analysis_for_each_reg(const ir::Instruction& in, Fn&& fn) {
    for (int i = 0; i < in.num_srcs; ++i)
      if (in.srcs[i].is_reg()) fn(in.srcs[i].index);
    if (in.guard != ir::kNoReg) fn(in.guard);
    if (in.info().has_dst) fn(in.dst);
  }

  void handle_control(int w, const exec::StepResult& step) {
    WarpCtx& wc = warps_[w];
    BlockCtx& blk = blocks_[wc.block];
    if (step.warp_done) {
      wc.active = false;
      GPURF_ASSERT(blk.warps_live > 0, "warp count underflow");
      if (--blk.warps_live == 0) {
        blk.exec.reset();  // slot refilled by fill_blocks()
      }
      return;
    }
    if (step.at_barrier) {
      wc.at_barrier = true;
      if (++blk.barrier_arrived == blk.warps_live) {
        blk.barrier_arrived = 0;
        const uint32_t base = uint32_t(wc.block) * warps_per_block();
        for (uint32_t i = 0; i < warps_per_block(); ++i)
          warps_[base + i].at_barrier = false;
      }
    }
  }

  void allocate_cu(uint64_t now, int w, int cu_slot,
                   const exec::StepResult& step) {
    WarpCtx& wc = warps_[w];
    const ir::Instruction& in = *step.inst;
    CuEntry& cu = cus_[cu_slot];
    cu = CuEntry{};
    cu.valid = true;
    cu.warp = w;
    cu.step = step;
    cu.alloc_cycle = now;
    cu.active_from =
        now + 1 + (cc_.enabled ? cc_.indirection_read_cycles : 0);

    // Distinct register source operands -> bank fetch requests.
    uint32_t seen[3];
    int nseen = 0;
    bool fault_penalty = false;  // >= 1 redirected/spilled source operand
    uint32_t nspill = 0;         // spill-store fetches of this instruction
    for (int i = 0; i < in.num_srcs; ++i) {
      if (!in.srcs[i].is_reg()) continue;
      const uint32_t r = in.srcs[i].index;
      if (spec_.kernel->regs[r].type == ir::Type::PRED) continue;
      bool dup = false;
      for (int s = 0; s < nseen; ++s)
        if (seen[s] == r) dup = true;
      if (dup) continue;
      seen[nseen++] = r;

      if (cc_.enabled && spec_.allocation) {
        const auto& e = spec_.allocation->table[r];
        GPURF_ASSERT(e.valid, "operand without allocation");
        cu.fetches.push_back(FetchReq{
            static_cast<uint8_t>((e.r0.phys_reg + wc.gwarp) %
                                 g_.register_banks),
            false});
        if (e.split) {
          cu.fetches.push_back(FetchReq{
              static_cast<uint8_t>((e.r1.phys_reg + wc.gwarp) %
                                   g_.register_banks),
              false});
          ++stats_.double_fetches;
        }
        if (e.is_float && e.float_bits != 32 && !e.spilled)
          ++cu.conversions_left;
        if (e.spilled) {
          ++stats_.fault_spill_fetches;
          fault_penalty = true;
          ++nspill;
        } else if (e.redirected) {
          ++stats_.fault_redirected_fetches;
          fault_penalty = true;
        }
      } else {
        cu.fetches.push_back(FetchReq{
            static_cast<uint8_t>((r + wc.gwarp) % g_.register_banks),
            false});
      }
    }

    // Fault redirection penalty (§RRCD): the extra remap stage delays the
    // collector unit's first fetch, once per affected instruction.
    if (fault_penalty) cu.active_from += cc_.fault_redirection_cycles;

    // Spill-store port contention (PR 7): the uncompressed store has
    // cc_.spill_ports read ports, so an instruction needing more
    // concurrent spill fetches serializes the excess one port-width batch
    // per cycle.
    if (nspill > 0) {
      const uint32_t ports = std::max<uint32_t>(1, cc_.spill_ports);
      const uint32_t extra = (nspill + ports - 1) / ports - 1;
      if (extra > 0) {
        cu.active_from += extra;
        stats_.spill_port_conflicts += extra;
      }
    }

    // Scoreboard: destination pends until writeback.
    if (in.info().has_dst) wc.pending[in.dst] = 1;
  }

  // ----------------------------------------------------------------- memory
  struct MemAccess {
    uint32_t transactions = 1;
    uint32_t latency = 0;   ///< valid when !deferred
    bool deferred = false;  ///< resolved by commit_memory() at the barrier
  };

  /// Classify one memory dispatch.  Shared-memory traffic is entirely
  /// SM-private and resolves immediately; global / texture traffic probes
  /// the private L1 / texture caches now but buffers its L2 stream (the
  /// only cross-SM cache) for the in-order barrier replay.
  MemAccess memory_access(uint64_t now, const CuEntry& cu) {
    const ir::Instruction& in = *cu.step.inst;
    const uint32_t mask = cu.step.active_mask;

    if (in.op == Opcode::LD_SHARED || in.op == Opcode::ST_SHARED) {
      // 32 word-interleaved banks; conflict degree = max distinct words
      // mapped to one bank.
      std::array<std::vector<uint32_t>, 32> per_bank;
      for (int l = 0; l < 32; ++l) {
        if (!((mask >> l) & 1u)) continue;
        const uint32_t a = cu.step.addr[l];
        auto& v = per_bank[a % 32];
        if (std::find(v.begin(), v.end(), a) == v.end()) v.push_back(a);
      }
      uint32_t degree = 1;
      for (const auto& v : per_bank)
        degree = std::max<uint32_t>(degree, uint32_t(v.size()));
      return {degree, g_.lat_shared + (degree - 1), false};
    }

    PendingL2 p;
    p.issued_at = now;
    p.line_begin = l2_lines_.size();
    if (in.info().has_dst) {
      p.warp = cu.warp;
      p.reg = in.dst;
    }

    if (in.op == Opcode::TEX2D) {
      std::vector<uint64_t> lines;
      for (int l = 0; l < 32; ++l) {
        if (!((mask >> l) & 1u)) continue;
        const uint64_t line =
            (uint64_t(in.tex) << 40) | (cu.step.addr[l] / 32);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
          lines.push_back(line);
      }
      for (uint64_t line : lines) {
        if (tex_.access(line)) continue;
        // Texture miss: L2, then DRAM.  Tag texture space into L2.
        l2_lines_.push_back(line | (uint64_t(1) << 60));
      }
      const uint32_t n = std::max<uint32_t>(1, uint32_t(lines.size()));
      p.base_latency = g_.lat_tex_hit;
      p.extra = n - 1;
      p.line_end = l2_lines_.size();
      pending_.push_back(p);
      return {n, 0, true};
    }

    // Global loads/stores: coalesce into 128-byte (32-word) lines.
    std::vector<uint64_t> lines;
    for (int l = 0; l < 32; ++l) {
      if (!((mask >> l) & 1u)) continue;
      const uint64_t line = cu.step.addr[l] / 32;
      if (std::find(lines.begin(), lines.end(), line) == lines.end())
        lines.push_back(line);
    }
    const bool is_store = in.op == Opcode::ST_GLOBAL;
    for (uint64_t line : lines) {
      if (is_store) {
        // Write-evict L1 (Fermi global stores): go straight to L2.
        l2_lines_.push_back(line);
        continue;
      }
      if (l1_.access(line)) continue;
      l2_lines_.push_back(line);
    }
    const uint32_t n = std::max<uint32_t>(1, uint32_t(lines.size()));
    p.base_latency = g_.lat_l1_hit;
    p.extra = n - 1;
    p.line_end = l2_lines_.size();
    pending_.push_back(p);
    return {n, 0, true};
  }

  const GpuConfig& g_;
  const CompressionConfig& cc_;
  const KernelLaunchSpec& spec_;
  exec::ExecContext ctx_;  ///< SM-private copy (thread_insts, analysis)
  const Occupancy& occ_;
  const SoftErrorModel* soft_model_;  ///< null = no soft-error tracking

  Cache l1_;
  Cache tex_;
  SimStats stats_;  ///< SM-private; merged in SM-index order at the end

  /// L2 probes buffered during the parallel tick (see PendingL2).
  std::vector<PendingL2> pending_;
  std::vector<uint64_t> l2_lines_;

  std::vector<BlockCtx> blocks_;
  std::vector<WarpCtx> warps_;
  std::vector<CuEntry> cus_;
  std::priority_queue<WriteBack, std::vector<WriteBack>,
                      std::greater<WriteBack>>
      wb_;
  uint64_t ldst_free_ = 0;
  uint64_t sfu_free_ = 0;
  uint32_t spu_used_ = 0;
  std::array<int, 8> greedy_warp_{kNoIndex, kNoIndex, kNoIndex, kNoIndex,
                                  kNoIndex, kNoIndex, kNoIndex, kNoIndex};
};

}  // namespace

void validate_launch_spec(const CompressionConfig& comp,
                          const KernelLaunchSpec& spec) {
  GPURF_CHECK(spec.kernel && spec.gmem, "incomplete launch spec");
  GPURF_CHECK(spec.regs_per_thread > 0, "regs_per_thread must be set");
  // Zero *blocks* is a legal degenerate launch (simulates in zero
  // cycles); a block shape with zero threads is malformed.
  GPURF_CHECK(spec.launch.threads_per_block() > 0,
              "launch '" << spec.kernel->name
                         << "' has an empty block shape");
  // Note: comp.enabled without an allocation is legal — the compressed
  // pipeline overheads (conversion, writeback delay) apply even when every
  // operand still maps 1:1 (sim_test pins this); the allocation only adds
  // indirection-table traffic and split-operand double fetches.
  (void)comp;
}

SimResult simulate(const GpuConfig& gpu, const CompressionConfig& comp,
                   const KernelLaunchSpec& spec,
                   gpurf::common::CancelToken* cancel,
                   const SimOptions& opt) {
  validate_launch_spec(comp, spec);

  SimResult res;
  res.occupancy = compute_occupancy(gpu, spec.regs_per_thread,
                                    spec.launch.warps_per_block(),
                                    spec.kernel->shared_bytes);
  GPURF_CHECK(res.occupancy.blocks_per_sm > 0,
              "kernel does not fit on the SM (register pressure "
                  << spec.regs_per_thread << ")");

  exec::ExecContext ctx;
  ctx.kernel = spec.kernel;
  ctx.launch = spec.launch;
  ctx.gmem = spec.gmem;
  ctx.textures = spec.textures;
  ctx.params = spec.params;
  ctx.precision = spec.precision;
  ctx.analysis = exec::analyze_kernel(*spec.kernel);

  BlockDispatcher dispatcher(spec.launch);
  Cache l2(gpu.l2);

  // Soft-error machinery (PR 7): the vulnerability model is built once
  // against the active storage layout; the flip process is owned here and
  // advanced exclusively in the serial barrier phase, so the flip trace is
  // a pure function of (rate, seed) at every shard count.
  std::unique_ptr<SoftErrorModel> soft_model;
  std::optional<SoftErrorProcess> soft_proc;
  if (spec.soft.active()) {
    soft_model = std::make_unique<SoftErrorModel>(
        *spec.kernel, *ctx.analysis, comp.enabled ? spec.allocation : nullptr);
    if (spec.soft.enabled())
      soft_proc.emplace(spec.soft, gpu.num_sms, gpu.max_warps_per_sm);
  }

  std::vector<std::unique_ptr<SmCore>> sms;
  for (uint32_t s = 0; s < gpu.num_sms; ++s)
    sms.push_back(std::make_unique<SmCore>(gpu, comp, spec, ctx,
                                           res.occupancy, soft_model.get()));

  // Initial block placement: one barrier-phase fill before cycle 0, in
  // SM-index order — identical for the serial and every sharded schedule.
  for (auto& sm : sms) sm->fill_blocks(dispatcher);

  const auto all_idle = [&] {
    for (const auto& sm : sms)
      if (!sm->idle()) return false;
    return true;
  };

  // Shard resolution: <= 0 means "current pool width"; clamp to the SM
  // count; nested calls (pool workers) and one-thread pools run serial.
  // The pool only *sizes* the crew — see ShardCrewToken for why the
  // shards run on dedicated threads rather than pool workers.
  common::ThreadPool& pool = common::ThreadPool::current();
  int nshards = opt.shards <= 0 ? pool.size() : opt.shards;
  nshards = std::min<int>(nshards, static_cast<int>(gpu.num_sms));
  nshards = std::min<int>(nshards, pool.size());
  if (nshards < 1 || common::in_pool_worker()) nshards = 1;

  std::optional<ShardCrewToken> crew;
  if (nshards > 1) {
    crew.emplace();
    // Another simulation already runs a shard crew: take the serial
    // schedule (identical results) instead of stacking spinning threads.
    if (!crew->acquired()) nshards = 1;
  }

  // Per-cycle schedule, identical at every shard count:
  //   1. parallel: every SM ticks against private state (L2 buffered);
  //   2. barrier (one thread): L2 replay + writeback scheduling in
  //      SM-index order, then block refill in SM-index order, then the
  //      cycle counter / cancellation / termination bookkeeping.
  // `stop` and `cycle` are written only inside the serial phase and read
  // by the shards after the barrier release (the barrier's epoch ordering
  // publishes them); `err` latches the first exception — shard loops must
  // never unwind past the barrier, or the remaining shards would hang.
  uint64_t cycle = 0;
  bool stop = dispatcher.empty() && all_idle();
  std::exception_ptr err;
  std::mutex err_mu;
  const auto record_error = [&] {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!err) err = std::current_exception();
  };

  const auto serial_phase = [&]() noexcept {
    try {
      if (err) {
        stop = true;
        return;
      }
      for (auto& sm : sms) sm->commit_memory(l2);
      for (auto& sm : sms) sm->fill_blocks(dispatcher);
      // Land this cycle's sampled strikes, routed to their SM in SM-index
      // independent arrival order (the process emits them sequentially) —
      // serial-phase-only, like every other cross-SM mutation.
      if (soft_proc) {
        FlipSite site;
        while (soft_proc->next_flip(cycle, &site))
          sms[site.sm]->apply_soft_flip(site);
      }
      ++cycle;
      // Cancellation/deadline checkpoint + progress heartbeat: every 4096
      // cycles keeps the poll off the per-cycle hot path while bounding
      // the stop latency to one slice (unchanged from the serial-only
      // simulator — Job cancellation latency does not grow with shards).
      if (cancel && (cycle & 0xFFF) == 0) {
        cancel->sim_cycles.store(cycle, std::memory_order_relaxed);
        cancel->checkpoint();
      }
      if (dispatcher.empty() && all_idle()) {
        stop = true;
        return;
      }
      GPURF_CHECK(cycle < gpu.max_cycles, "simulation exceeded max_cycles");
    } catch (...) {
      record_error();
      stop = true;
    }
  };

  if (nshards <= 1) {
    while (!stop) {
      for (auto& sm : sms) sm->tick(cycle);
      serial_phase();
    }
  } else {
    common::CycleBarrier barrier(nshards);
    const auto shard_loop = [&](size_t shard) {
      // Contiguous static SM partition, same formula as parallel_for's
      // shard split: a pure function of (num_sms, nshards, shard).
      const size_t n = sms.size();
      const size_t lo = n * shard / static_cast<size_t>(nshards);
      const size_t hi = n * (shard + 1) / static_cast<size_t>(nshards);
      for (;;) {
        if (stop) break;
        try {
          for (size_t s = lo; s < hi; ++s) sms[s]->tick(cycle);
        } catch (...) {
          record_error();
        }
        barrier.arrive_and_wait(serial_phase);
      }
    };
    // Dedicated crew: the caller runs shard 0, nshards-1 spawned threads
    // run the rest.  shard_loop never throws (exceptions latch into
    // `err`), so every started thread always reaches its join.  Spawned
    // threads park on a start gate until the whole crew exists — if a
    // std::thread constructor fails mid-crew (thread rlimit), the partial
    // crew is told to abort and joined, and the run degrades to the
    // serial schedule instead of leaving threads at a barrier that can
    // never fill (or terminating on a joinable ~thread during unwind).
    std::atomic<int> gate{0};  // 0 = hold, 1 = run, -1 = abort
    const auto crew_main = [&](size_t s) {
      int g;
      while ((g = gate.load(std::memory_order_acquire)) == 0)
        std::this_thread::yield();
      if (g > 0) shard_loop(s);
    };
    std::vector<std::thread> extra;
    extra.reserve(static_cast<size_t>(nshards - 1));
    try {
      for (int s = 1; s < nshards; ++s)
        extra.emplace_back([&crew_main, s] { crew_main(size_t(s)); });
    } catch (...) {
      gate.store(-1, std::memory_order_release);
      for (auto& t : extra) t.join();
      extra.clear();
    }
    if (static_cast<int>(extra.size()) == nshards - 1) {
      gate.store(1, std::memory_order_release);
      shard_loop(0);
      for (auto& t : extra) t.join();
    } else {
      while (!stop) {
        for (auto& sm : sms) sm->tick(cycle);
        serial_phase();
      }
    }
  }
  if (err) std::rethrow_exception(err);

  res.stats.cycles = cycle;
  for (auto& sm : sms) {
    sm->flush_cache_stats();
    res.stats.merge_sm(sm->stats());
    res.stats.thread_insts += sm->thread_insts();
  }
  res.stats.l2 = l2.stats();

  if (spec.soft.active()) {
    res.soft.active = true;
    res.soft.flips_per_mcycle = spec.soft.flips_per_mcycle;
    res.soft.seed = spec.soft.seed;
    res.soft.flips_injected = res.stats.soft_flips_injected;
    res.soft.flips_on_live = res.stats.soft_flips_on_live;
    res.soft.flips_masked_dead = res.stats.soft_flips_masked_dead;
    res.soft.flips_visible = res.stats.soft_flips_visible;
    res.soft.live_bit_cycles = res.stats.soft_live_bit_cycles;
    res.soft.flips_static_dead = res.stats.soft_flips_static_dead;
    res.soft.static_live_bit_cycles = res.stats.soft_static_live_bit_cycles;
  }
  return res;
}

}  // namespace gpurf::sim
