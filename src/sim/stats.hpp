#pragma once
// Simulation statistics: IPC plus the secondary counters the paper's
// discussion relies on (texture miss rates for GICOV/SSAO, stall
// breakdowns for the writeback-delay sensitivity).

#include <cstdint>

namespace gpurf::sim {

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0 : double(misses) / double(accesses);
  }

  void merge(const CacheStats& o) {
    accesses += o.accesses;
    misses += o.misses;
  }

  bool operator==(const CacheStats&) const = default;
};

struct SimStats {
  uint64_t cycles = 0;
  uint64_t thread_insts = 0;  ///< sum of active lanes over issued warp insts
  uint64_t warp_insts = 0;
  uint64_t blocks_run = 0;

  CacheStats l1;
  CacheStats tex;
  CacheStats l2;

  // Issue-stall breakdown (per scheduler slot with no issue).
  uint64_t stall_scoreboard = 0;
  uint64_t stall_no_cu = 0;
  uint64_t stall_barrier = 0;
  uint64_t stall_empty = 0;  ///< no resident warp had a fetchable instruction

  uint64_t operand_fetches = 0;
  uint64_t double_fetches = 0;
  uint64_t conversions = 0;

  // Fault tolerance (PR 6): source-operand fetches from registers that
  // were redirected around faulty slices / spilled to the uncompressed
  // store.  Both stay zero for fault-free allocations.
  uint64_t fault_redirected_fetches = 0;
  uint64_t fault_spill_fetches = 0;

  /// Spill-store port contention (PR 7): extra serialization cycles paid
  /// when one instruction needs more concurrent spill-store fetches than
  /// the configured port count (CompressionConfig::spill_ports).
  uint64_t spill_port_conflicts = 0;

  // Transient soft errors (PR 7).  The sampled taxonomy:
  //   injected = on_live + masked_dead
  // where masked_dead covers flips into unallocated slices, architecturally
  // dead registers and idle warp slots, and visible <= on_live counts flips
  // that changed the stored 32-bit value (narrow-float decode can absorb a
  // mantissa flip).  soft_live_bit_cycles is the *deterministic* exposure
  // integral: sum over cycles and resident warps of live payload bits at
  // the warp's current position — the soft-error cross-section that the
  // paper's compression claim shrinks, independent of flip sampling noise.
  uint64_t soft_flips_injected = 0;
  uint64_t soft_flips_on_live = 0;
  uint64_t soft_flips_masked_dead = 0;
  uint64_t soft_flips_visible = 0;
  uint64_t soft_live_bit_cycles = 0;

  // Static AVF refinement (PR 9): flips into sites whose aliased owners
  // are live at *no* program point — provably masked by the static live
  // mask alone, so soft_flips_static_dead <= soft_flips_masked_dead by
  // construction.  soft_static_live_bit_cycles integrates the static
  // (position-independent) payload upper bound over the same warp-cycles
  // as soft_live_bit_cycles; the gap between the two integrals is the
  // cross-section the per-point analysis shaves off the whole-kernel
  // view.
  uint64_t soft_flips_static_dead = 0;
  uint64_t soft_static_live_bit_cycles = 0;

  double ipc() const {
    return cycles == 0 ? 0.0 : double(thread_insts) / double(cycles);
  }

  /// Field-wise equality — the determinism contract of the sharded
  /// simulator ("bit-identical SimStats") is checked against this, so a
  /// newly added counter is compared automatically (defaulted ==) but
  /// must still be added to merge_sm below.
  bool operator==(const SimStats&) const = default;

  /// Fold one SM's private counters into an aggregate (ISSUE 5: the
  /// sharded simulator gives every SmCore its own SimStats and merges
  /// them in SM-index order at the end of the run).  `cycles` and
  /// `thread_insts` are launch-wide values owned by simulate() itself
  /// and are deliberately not summed here.
  void merge_sm(const SimStats& sm) {
    warp_insts += sm.warp_insts;
    blocks_run += sm.blocks_run;
    l1.merge(sm.l1);
    tex.merge(sm.tex);
    stall_scoreboard += sm.stall_scoreboard;
    stall_no_cu += sm.stall_no_cu;
    stall_barrier += sm.stall_barrier;
    stall_empty += sm.stall_empty;
    operand_fetches += sm.operand_fetches;
    double_fetches += sm.double_fetches;
    conversions += sm.conversions;
    fault_redirected_fetches += sm.fault_redirected_fetches;
    fault_spill_fetches += sm.fault_spill_fetches;
    spill_port_conflicts += sm.spill_port_conflicts;
    soft_flips_injected += sm.soft_flips_injected;
    soft_flips_on_live += sm.soft_flips_on_live;
    soft_flips_masked_dead += sm.soft_flips_masked_dead;
    soft_flips_visible += sm.soft_flips_visible;
    soft_live_bit_cycles += sm.soft_live_bit_cycles;
    soft_flips_static_dead += sm.soft_flips_static_dead;
    soft_static_live_bit_cycles += sm.soft_static_live_bit_cycles;
  }
};

}  // namespace gpurf::sim
