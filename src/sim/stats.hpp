#pragma once
// Simulation statistics: IPC plus the secondary counters the paper's
// discussion relies on (texture miss rates for GICOV/SSAO, stall
// breakdowns for the writeback-delay sensitivity).

#include <cstdint>

namespace gpurf::sim {

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0 : double(misses) / double(accesses);
  }
};

struct SimStats {
  uint64_t cycles = 0;
  uint64_t thread_insts = 0;  ///< sum of active lanes over issued warp insts
  uint64_t warp_insts = 0;
  uint64_t blocks_run = 0;

  CacheStats l1;
  CacheStats tex;
  CacheStats l2;

  // Issue-stall breakdown (per scheduler slot with no issue).
  uint64_t stall_scoreboard = 0;
  uint64_t stall_no_cu = 0;
  uint64_t stall_barrier = 0;
  uint64_t stall_empty = 0;  ///< no resident warp had a fetchable instruction

  uint64_t operand_fetches = 0;
  uint64_t double_fetches = 0;
  uint64_t conversions = 0;

  double ipc() const {
    return cycles == 0 ? 0.0 : double(thread_insts) / double(cycles);
  }
};

}  // namespace gpurf::sim
