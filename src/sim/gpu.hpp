#pragma once
// Cycle-level GPU timing simulator (paper §3.1 baseline + §3.2 proposal).
//
// Modelled mechanisms — exactly the ones the paper's results flow from:
//  * block dispatcher with occupancy limits (registers / shared memory /
//    max warps / max blocks);
//  * two GTO warp schedulers per SM, dual issue;
//  * scoreboard without forwarding (dependent instructions wait for
//    writeback, §6.3);
//  * operand collector: 16 collector units, per-bank arbitration over the
//    16 register banks, bank = (reg + warp) % 16;
//  * compressed mode adds: source indirection-table read stage, split
//    operands costing two fetches, Value Converter throughput of six
//    warp conversions per cycle, and a configurable writeback delay;
//  * SPU x2 / SFU / LD-ST pipelines with per-class latencies;
//  * memory coalescing into 128-byte lines, L1 / texture / shared L2 /
//    DRAM latencies, shared-memory bank conflicts.
//
// Execution is functional-at-issue: when a warp instruction issues, the
// interpreter (exec::BlockExec) executes it and the timing token flows
// through collection, execution and writeback.  Precision maps quantize
// f32 writes during compressed runs, so timing results correspond to the
// same numerics the quality metrics scored.
//
// Sharded execution (ISSUE 5): SimOptions::shards > 1 partitions the SMs
// into contiguous index ranges ticked in parallel with a deterministic
// per-cycle barrier.  The shards run on a dedicated, process-gated thread
// crew sized by the current thread pool's width — not on pool workers,
// because a simulation occupies its threads for the whole run and must
// not starve other sessions' short fan-outs (see sim/gpu.cpp); when
// another simulation already holds the crew token, the run degrades to
// the serial schedule with identical results.  Each SM owns private
// SimStats, a private ExecContext (thread_insts) and its private L1 /
// texture caches; the only cross-SM structures — the block dispatcher and
// the shared L2 — are touched exclusively in the serial barrier phase, in
// SM-index order (per-SM L2 accesses are buffered during the parallel
// tick and replayed at the barrier, because the cache's LRU state is
// order-sensitive).  SimStats are therefore bit-identical to the serial
// schedule at every shard count.
//
// Sharded memory contract (stricter than block-parallel run_functional,
// which replays a write log in grid order): blocks of one launch must
// neither read another block's global-memory writes NOR store to a word
// another block stores to — SMs execute functionally against the one
// shared GlobalMemory during the parallel tick, so overlapping stores
// from different SMs would be an unsynchronized data race.  Since
// ISSUE 10 this contract is statically verified, not assumed: the
// memory-access analysis (analysis/memory_access.hpp) proves per-block
// store/load footprint disjointness from the launch's concrete
// parameters, and Engine::simulate only shards when the proof holds.
// Workloads the interval domain cannot prove (2-D tiled footprints,
// data-dependent addressing) carry an explicit, per-workload documented
// assume_disjoint waiver in their WorkloadSpec; unproven, unwaived
// kernels fall back to shards = 1 with bit-identical results (SimStats
// are shard-count-invariant, see above).  Direct sim::simulate calls
// default to shards = 1 and take no verdict.

#include <memory>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "common/cancel.hpp"
#include "exec/interp.hpp"
#include "exec/machine.hpp"
#include "ir/kernel.hpp"
#include "sim/config.hpp"
#include "sim/occupancy.hpp"
#include "sim/stats.hpp"

namespace gpurf::sim {

/// Transient (SEU) soft-error process for one launch (PR 7).  Bit flips
/// arrive as a Poisson process over continuous cycle time and land on a
/// uniformly random physical site (SM, warp slot, physical register,
/// slice, lane, bit-within-slice).  The process is fully determined by
/// (rate, seed): the same pair produces the same flip trace — and the same
/// SimStats — at every shard count, because flips are generated and
/// applied in the serial barrier phase in SM-index order.  A rate <= 0
/// disables injection entirely and draws no random numbers, so such runs
/// are bit-identical to fault-free references.
struct SoftErrorSpec {
  /// Expected flips per million simulated cycles over the whole GPU.
  double flips_per_mcycle = 0.0;
  uint64_t seed = 1;
  /// Accumulate the live-bit exposure integral even when the flip rate is
  /// zero.  A rate-0 run with this set executes identically to fault-free
  /// (no flips, no RNG draws) but reports SimStats::soft_live_bit_cycles —
  /// the deterministic cross-section measurement bench_soft compares
  /// between baseline and compressed.  Left false, rate-0 runs are
  /// bit-identical to fault-free references in every SimStats field.
  bool track_exposure = false;

  bool enabled() const { return flips_per_mcycle > 0.0; }
  bool active() const { return enabled() || track_exposure; }
};

struct KernelLaunchSpec {
  const gpurf::ir::Kernel* kernel = nullptr;
  gpurf::ir::LaunchConfig launch;
  gpurf::exec::GlobalMemory* gmem = nullptr;
  const std::vector<gpurf::exec::Texture>* textures = nullptr;
  std::vector<uint32_t> params;

  /// Register pressure used for occupancy (baseline colouring or the
  /// compressed physical count from the slice allocator).
  uint32_t regs_per_thread = 0;

  /// Compressed mode only: quantization of f32 register writes and the
  /// operand -> physical-register mapping for bank traffic.
  const gpurf::exec::PrecisionMap* precision = nullptr;
  const gpurf::alloc::AllocationResult* allocation = nullptr;

  /// Transient soft-error injection (PR 7).  Part of the launch spec, not
  /// SimOptions: an active flip process changes functional state and
  /// SimStats, while SimOptions is documented results-invariant.
  SoftErrorSpec soft;
};

/// Fault-injection outcome of one simulated launch (PR 6).  The simulator
/// itself only charges the redirection penalty — the report is assembled
/// by the caller (Engine::simulate) from the fault map, the fault-aware
/// allocation and the optional quality probe; `active == false` means the
/// run was fault-free and every other field is at its default.
struct FaultInjectionReport {
  bool active = false;
  uint64_t seed = 0;
  double density = 0.0;             ///< actual density of the injected map
  uint32_t faults_total = 0;        ///< faulty slice sites in the map
  uint32_t faults_in_footprint = 0; ///< inside the allocated registers
  uint32_t registers_redirected = 0;
  uint32_t registers_spilled = 0;
  uint32_t spill_regs = 0;          ///< spill-store slots consumed
  double coverage_pct = 100.0;      ///< AllocationResult::fault_coverage_pct
  bool quality_scored = false;      ///< quality delta below is meaningful
  double quality_fault_free = 0.0;
  double quality_faulty = 0.0;
  double quality_delta = 0.0;       ///< positive = worse than fault-free

  /// Fault-aware re-tuning (PR 7): when the map was dense enough that the
  /// baseline tuning would spill and the caller opted in, the Engine
  /// re-tunes with a slice budget and keeps the best configuration.
  bool retuned = false;             ///< a re-tuned configuration was adopted
  uint32_t retune_slice_budget = 0; ///< winning max_slices_hint (0 = none)
  uint32_t spills_before_retune = 0;///< registers_spilled without re-tuning

  bool operator==(const FaultInjectionReport&) const = default;
};

/// AVF-style vulnerability breakdown of one soft-error run (PR 7).  The
/// counter fields mirror SimStats (they are the merged totals); the report
/// adds the spec that produced them plus the quality delta the Engine
/// scores via the workload metric.  `active == false` means no flip
/// process was attached and every other field is at its default.
struct SoftErrorReport {
  bool active = false;
  double flips_per_mcycle = 0.0;
  uint64_t seed = 0;
  uint64_t flips_injected = 0;
  uint64_t flips_on_live = 0;
  uint64_t flips_masked_dead = 0;
  uint64_t flips_visible = 0;
  uint64_t live_bit_cycles = 0;     ///< deterministic exposure integral
  /// Static AVF refinement (PR 9): flips provably masked by the static
  /// live mask alone (<= flips_masked_dead), and the static upper-bound
  /// integral (>= live_bit_cycles).
  uint64_t flips_static_dead = 0;
  uint64_t static_live_bit_cycles = 0;
  bool quality_scored = false;
  double quality_fault_free = 0.0;
  double quality_faulty = 0.0;
  double quality_delta = 0.0;

  /// Architecturally-visible flips per injected flip (AVF proxy).
  double avf() const {
    return flips_injected == 0 ? 0.0
                               : double(flips_visible) / double(flips_injected);
  }

  bool operator==(const SoftErrorReport&) const = default;
};

struct SimResult {
  SimStats stats;
  Occupancy occupancy;
  FaultInjectionReport fault;
  SoftErrorReport soft;
};

/// Execution-strategy knobs for one simulate() call (timing results are
/// identical for every setting; only wall-clock changes).
struct SimOptions {
  /// Number of SM shards ticked in parallel per cycle.  1 = serial (the
  /// reference schedule); <= 0 resolves to the current thread pool's
  /// width; values are clamped to min(pool width, num_sms).  Nested calls
  /// from inside a pool worker always degrade to serial.
  int shards = 1;
};

/// Validate a launch spec before committing simulator resources.  Bad
/// input (missing kernel/memory, unset register pressure, a block shape
/// with zero threads) raises gpurf::Error via GPURF_CHECK — recoverable
/// at the Engine boundary, which converts it to a Status instead of
/// terminating.  An *empty grid* (zero blocks) is legal: it is a
/// degenerate launch that simulates in exactly zero cycles (ISSUE 5 fixed
/// the drain-tick off-by-one that used to charge one cycle for it).  Note
/// that compressed mode (comp.enabled) without a slice allocation is
/// legal: the conversion/writeback overheads apply even when every
/// operand still maps 1:1 (`comp` is taken for future mode-dependent
/// checks).
void validate_launch_spec(const CompressionConfig& comp,
                          const KernelLaunchSpec& spec);

/// Run one kernel launch to completion.  Calls validate_launch_spec first.
/// `cancel` (nullable) is the cooperative stop/progress channel: the
/// barrier phase polls it every few thousand cycles, publishing the
/// simulated-cycle count and throwing common::CancelledError once a stop
/// was requested — the partially-advanced simulator state is simply
/// discarded with the stack, so cancellation can never corrupt anything
/// observable.  `opt.shards` selects serial vs. multi-SM sharded
/// execution; SimStats are bit-identical either way.
SimResult simulate(const GpuConfig& gpu, const CompressionConfig& comp,
                   const KernelLaunchSpec& spec,
                   gpurf::common::CancelToken* cancel = nullptr,
                   const SimOptions& opt = {});

}  // namespace gpurf::sim
