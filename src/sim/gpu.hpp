#pragma once
// Cycle-level GPU timing simulator (paper §3.1 baseline + §3.2 proposal).
//
// Modelled mechanisms — exactly the ones the paper's results flow from:
//  * block dispatcher with occupancy limits (registers / shared memory /
//    max warps / max blocks);
//  * two GTO warp schedulers per SM, dual issue;
//  * scoreboard without forwarding (dependent instructions wait for
//    writeback, §6.3);
//  * operand collector: 16 collector units, per-bank arbitration over the
//    16 register banks, bank = (reg + warp) % 16;
//  * compressed mode adds: source indirection-table read stage, split
//    operands costing two fetches, Value Converter throughput of six
//    warp conversions per cycle, and a configurable writeback delay;
//  * SPU x2 / SFU / LD-ST pipelines with per-class latencies;
//  * memory coalescing into 128-byte lines, L1 / texture / shared L2 /
//    DRAM latencies, shared-memory bank conflicts.
//
// Execution is functional-at-issue: when a warp instruction issues, the
// interpreter (exec::BlockExec) executes it and the timing token flows
// through collection, execution and writeback.  Precision maps quantize
// f32 writes during compressed runs, so timing results correspond to the
// same numerics the quality metrics scored.

#include <memory>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "common/cancel.hpp"
#include "exec/interp.hpp"
#include "exec/machine.hpp"
#include "ir/kernel.hpp"
#include "sim/config.hpp"
#include "sim/occupancy.hpp"
#include "sim/stats.hpp"

namespace gpurf::sim {

struct KernelLaunchSpec {
  const gpurf::ir::Kernel* kernel = nullptr;
  gpurf::ir::LaunchConfig launch;
  gpurf::exec::GlobalMemory* gmem = nullptr;
  const std::vector<gpurf::exec::Texture>* textures = nullptr;
  std::vector<uint32_t> params;

  /// Register pressure used for occupancy (baseline colouring or the
  /// compressed physical count from the slice allocator).
  uint32_t regs_per_thread = 0;

  /// Compressed mode only: quantization of f32 register writes and the
  /// operand -> physical-register mapping for bank traffic.
  const gpurf::exec::PrecisionMap* precision = nullptr;
  const gpurf::alloc::AllocationResult* allocation = nullptr;
};

struct SimResult {
  SimStats stats;
  Occupancy occupancy;
};

/// Validate a launch spec before committing simulator resources.  Bad
/// input (missing kernel/memory, unset register pressure, empty grid)
/// raises gpurf::Error via GPURF_CHECK — recoverable at the Engine
/// boundary, which converts it to a Status instead of terminating.  Note
/// that compressed mode (comp.enabled) without a slice allocation is
/// legal: the conversion/writeback overheads apply even when operands map
/// 1:1 (`comp` is taken for future mode-dependent checks).
void validate_launch_spec(const CompressionConfig& comp,
                          const KernelLaunchSpec& spec);

/// Run one kernel launch to completion.  Calls validate_launch_spec first.
/// `cancel` (nullable) is the cooperative stop/progress channel: the cycle
/// loop polls it every few thousand cycles, publishing the simulated-cycle
/// count and throwing common::CancelledError once a stop was requested —
/// the partially-advanced simulator state is simply discarded with the
/// stack, so cancellation can never corrupt anything observable.
SimResult simulate(const GpuConfig& gpu, const CompressionConfig& comp,
                   const KernelLaunchSpec& spec,
                   gpurf::common::CancelToken* cancel = nullptr);

}  // namespace gpurf::sim
