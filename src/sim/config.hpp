#pragma once
// GPU configuration (paper Table 2: Fermi GTX 480) and the compressed
// register-file pipeline parameters (§3.2.7/§3.2.8).

#include <cstdint>

namespace gpurf::sim {

struct CacheGeom {
  uint32_t size_bytes = 16 * 1024;
  uint32_t line_bytes = 128;
  uint32_t assoc = 4;

  uint32_t num_sets() const { return size_bytes / (line_bytes * assoc); }
};

struct GpuConfig {
  // Table 2, per GPU.
  uint32_t clock_mhz = 1400;
  uint32_t num_sms = 15;
  CacheGeom l2{768 * 1024, 128, 16};

  // Table 2, per SM.
  uint32_t warp_schedulers = 2;
  uint32_t max_warps_per_sm = 48;
  uint32_t max_blocks_per_sm = 8;
  uint32_t registers_per_sm = 32768;
  uint32_t register_banks = 16;
  uint32_t collector_units = 16;
  uint32_t shared_mem_bytes = 48 * 1024;
  CacheGeom l1{16 * 1024, 128, 4};
  CacheGeom tex{12 * 1024, 128, 4};

  // Execution latencies (cycles).  Dependent-issue latencies on Fermi are
  // ~18 cycles for arithmetic (Wong et al. microbenchmarks; GPGPU-Sim
  // models similar pipeline depths); memory magnitudes follow the
  // GPGPU-Sim GTX 480 configuration.
  uint32_t lat_alu = 14;       ///< simple int/fp ALU op
  uint32_t lat_mul = 18;       ///< mul / mad
  uint32_t lat_sfu = 36;       ///< transcendental / div / rem
  uint32_t sfu_initiation = 4; ///< SFU accepts one warp inst / 4 cycles
  uint32_t lat_shared = 36;
  uint32_t lat_l1_hit = 60;
  uint32_t lat_l2_hit = 180;
  uint32_t lat_dram = 360;
  uint32_t lat_tex_hit = 80;

  /// Safety bound for runaway simulations.
  uint64_t max_cycles = 80'000'000;

  static GpuConfig fermi_gtx480() { return GpuConfig{}; }
};

/// Knobs of the proposed register-file organisation.  Inactive (enabled ==
/// false) reproduces the unmodified baseline pipeline.
struct CompressionConfig {
  bool enabled = false;

  /// Extra operand-collector depth for the source indirection-table read
  /// (§3.2.7: one added pipeline stage on the read path).
  uint32_t indirection_read_cycles = 1;

  /// Value Converter throughput (§3.2.5) and latency (one cycle, §3.2.8).
  uint32_t conversions_per_cycle = 6;

  /// Added writeback delay: low-precision conversion + destination-table
  /// access + pessimistic bank-conflict allowance (§3.2.8 models three
  /// cycles for all operands; §6.3 sweeps {0,2,4,8}).
  uint32_t writeback_delay = 3;

  /// Extra collector-unit latency when an instruction touches a register
  /// that was steered around permanent faults (RRCD-style redirection) or
  /// lives in the uncompressed spill store.  Charged once per instruction
  /// with at least one such source operand; zero-fault allocations never
  /// pay it.
  uint32_t fault_redirection_cycles = 1;

  /// Read ports on the uncompressed spill store (PR 7).  An instruction
  /// whose sources need more concurrent spill fetches than this serializes
  /// the excess, one extra cycle per additional port-width batch, counted
  /// in SimStats::spill_port_conflicts.  Values < 1 behave as 1.
  uint32_t spill_ports = 1;

  static CompressionConfig baseline() { return CompressionConfig{}; }
  static CompressionConfig paper_default() {
    CompressionConfig c;
    c.enabled = true;
    return c;
  }
  static CompressionConfig with_writeback_delay(uint32_t wb) {
    CompressionConfig c;
    c.enabled = true;
    c.writeback_delay = wb;
    return c;
  }
};

}  // namespace gpurf::sim
