#include "sim/cache.hpp"

#include "common/error.hpp"

namespace gpurf::sim {

Cache::Cache(const CacheGeom& g) : geom_(g), sets_(g.num_sets()) {
  GPURF_CHECK(sets_ > 0, "cache must have at least one set");
  lines_.resize(size_t(sets_) * geom_.assoc);
}

bool Cache::access(uint64_t line) {
  ++tick_;
  ++stats_.accesses;
  const uint32_t set = static_cast<uint32_t>(line % sets_);
  const uint64_t tag = line;  // storing the full line id as tag is exact
  Line* base = &lines_[size_t(set) * geom_.assoc];

  Line* victim = base;
  for (uint32_t w = 0; w < geom_.assoc; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.lru = tick_;
      return true;
    }
    if (!l.valid) {
      victim = &l;
    } else if (victim->valid && l.lru < victim->lru) {
      victim = &l;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

}  // namespace gpurf::sim
