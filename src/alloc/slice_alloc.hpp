#pragma once
// Register allocation (paper §4.3).
//
// Two allocators share the liveness/interference machinery:
//
//  * Baseline: classic graph colouring at 32-bit granularity — its colour
//    count is the per-thread register pressure of an uncompressed register
//    file (the "Original" bars of Fig. 9).
//
//  * Slice packing: every architectural register is annotated with a slice
//    count (4-bit slices) from the integer range analysis and/or the float
//    precision tuner; the allocator packs these fragments into 8-slice
//    physical registers, splitting an operand across at most two physical
//    registers to fight fragmentation (§4.3).  The output is the content of
//    the indirection table: per architectural register up to two (physical
//    register, slice mask) pairs plus the signedness/type flags consumed by
//    the Value Extractor and Value Truncator.
//
// Non-interfering registers may share physical slices; the indirection
// table is static per kernel (§3.2), which is sound because entries of
// registers with disjoint live ranges may alias the same storage.
//
// Fault-directed redirection (PR 6, RRCD-style): an optional
// rf::FaultMap marks permanently broken 4-bit slices; the allocator
// simply never hands those slice-columns out, so operands are redirected
// into the space static compression freed.  When an operand cannot be
// placed in <= 2 pieces inside the 256-register compressed file (extreme
// fault densities), it degrades gracefully to the *uncompressed spill
// store* — a separate full-width register space outside the fault map —
// instead of aborting.  With an empty fault map the placement is
// bit-identical to the fault-free allocator.

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/range_analysis.hpp"
#include "exec/machine.hpp"
#include "ir/kernel.hpp"

namespace gpurf::rf {
class FaultMap;
}

namespace gpurf::alloc {

/// One (physical register, slice mask) piece of an operand's storage.
struct SliceLoc {
  uint32_t phys_reg = 0;
  uint8_t mask = 0;  ///< which 4-bit slices of the physical register

  bool operator==(const SliceLoc&) const = default;
};

/// Indirection-table entry for one architectural register (paper Fig. 2:
/// two physical registers r0/r1 with masks m0/m1, packed into 32 bits).
struct IndirectionEntry {
  bool valid = false;
  SliceLoc r0;
  SliceLoc r1;       ///< second piece when split
  bool split = false;
  uint8_t slices = 8;     ///< total data slices of the operand
  bool is_signed = false; ///< sign-extend on extraction (narrow s32)
  bool is_float = false;  ///< needs Value Converter on read / Truncator on write
  uint8_t float_bits = 32;  ///< Table-3 format width when is_float
  /// Placement shares a physical register with >= 1 faulty slice: the
  /// operand was steered around the fault (RRCD redirection) and its
  /// accesses pay CompressionConfig::fault_redirection_cycles.
  bool redirected = false;
  /// Operand could not be placed in the compressed file; r0.phys_reg is a
  /// slot in the uncompressed spill store (full width, mask 0xff, no
  /// conversion).  Spilled registers skip precision quantization: the
  /// spill store holds full 32-bit words.
  bool spilled = false;

  bool operator==(const IndirectionEntry&) const = default;
};

struct AllocOptions {
  bool pack_ints = true;    ///< use range-analysis widths for integer regs
  bool pack_floats = true;  ///< use precision-map widths for f32 regs
  /// Permanent-fault map (nullable = fault-free).  Faulty slices are never
  /// allocated; see the redirection note at the top of this header.
  const gpurf::rf::FaultMap* faults = nullptr;
  /// Pack live ranges instead of whole-kernel maxima (PR 9): interference
  /// comes from the instruction-granular dataflow pass
  /// (analysis::build_live_interference), where statically dead writes —
  /// elided before they reach the register file — contribute no edges and
  /// never-read registers may alias anything.  Off by default: existing
  /// allocations (and the zero-fault bit-identity pins) are untouched.
  bool live_intervals = false;
};

struct AllocationResult {
  std::vector<IndirectionEntry> table;  ///< indexed by architectural reg id
  uint32_t num_physical_regs = 0;       ///< compressed register pressure
  uint32_t total_slices = 0;            ///< sum of operand slice counts
  uint32_t split_operands = 0;          ///< operands split across 2 regs

  // Fault-tolerance outcome (all zero with a null/empty fault map).
  uint32_t registers_redirected = 0;  ///< placed despite sharing a faulty reg
  uint32_t registers_spilled = 0;     ///< fell back to the spill store
  uint32_t spill_regs = 0;            ///< 32-bit spill-store slots used
  uint32_t faulty_slices_avoided = 0; ///< faulty slices inside the footprint

  /// Fraction of allocated physical slices actually holding data.
  double packing_density() const {
    return num_physical_regs == 0
               ? 1.0
               : double(total_slices) / (8.0 * num_physical_regs);
  }

  /// Register pressure including the spill store (occupancy input).
  uint32_t total_phys_regs() const { return num_physical_regs + spill_regs; }

  /// Coverage (%) of fault-affected registers tolerated in place: 100 x
  /// redirected / (redirected + spilled); 100 when no register was
  /// affected (every fault either sits outside the footprint or under a
  /// redirected operand).
  double fault_coverage_pct() const {
    const uint32_t affected = registers_redirected + registers_spilled;
    return affected == 0
               ? 100.0
               : 100.0 * double(registers_redirected) / double(affected);
  }

  bool operator==(const AllocationResult&) const = default;
};

/// Baseline 32-bit pressure: graph-colouring register count.
uint32_t baseline_pressure(const gpurf::ir::Kernel& k);

/// Baseline 32-bit pressure under live-range packing (PR 9): colouring of
/// the liveness-refined interference graph (a subgraph of the classic
/// one, so the count shrinks wherever dead writes or never-read registers
/// inflated it).  The delta against baseline_pressure is what
/// AllocOptions::live_intervals buys before any slice compression.
uint32_t live_interval_pressure(const gpurf::ir::Kernel& k);

/// Slice-packing allocation.  `ranges` may be null when !opt.pack_ints;
/// `pmap` may be null when !opt.pack_floats.
AllocationResult allocate_slices(const gpurf::ir::Kernel& k,
                                 const analysis::RangeAnalysisResult* ranges,
                                 const exec::PrecisionMap* pmap,
                                 const AllocOptions& opt);

}  // namespace gpurf::alloc
