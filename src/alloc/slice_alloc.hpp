#pragma once
// Register allocation (paper §4.3).
//
// Two allocators share the liveness/interference machinery:
//
//  * Baseline: classic graph colouring at 32-bit granularity — its colour
//    count is the per-thread register pressure of an uncompressed register
//    file (the "Original" bars of Fig. 9).
//
//  * Slice packing: every architectural register is annotated with a slice
//    count (4-bit slices) from the integer range analysis and/or the float
//    precision tuner; the allocator packs these fragments into 8-slice
//    physical registers, splitting an operand across at most two physical
//    registers to fight fragmentation (§4.3).  The output is the content of
//    the indirection table: per architectural register up to two (physical
//    register, slice mask) pairs plus the signedness/type flags consumed by
//    the Value Extractor and Value Truncator.
//
// Non-interfering registers may share physical slices; the indirection
// table is static per kernel (§3.2), which is sound because entries of
// registers with disjoint live ranges may alias the same storage.

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/range_analysis.hpp"
#include "exec/machine.hpp"
#include "ir/kernel.hpp"

namespace gpurf::alloc {

/// One (physical register, slice mask) piece of an operand's storage.
struct SliceLoc {
  uint32_t phys_reg = 0;
  uint8_t mask = 0;  ///< which 4-bit slices of the physical register
};

/// Indirection-table entry for one architectural register (paper Fig. 2:
/// two physical registers r0/r1 with masks m0/m1, packed into 32 bits).
struct IndirectionEntry {
  bool valid = false;
  SliceLoc r0;
  SliceLoc r1;       ///< second piece when split
  bool split = false;
  uint8_t slices = 8;     ///< total data slices of the operand
  bool is_signed = false; ///< sign-extend on extraction (narrow s32)
  bool is_float = false;  ///< needs Value Converter on read / Truncator on write
  uint8_t float_bits = 32;  ///< Table-3 format width when is_float
};

struct AllocOptions {
  bool pack_ints = true;    ///< use range-analysis widths for integer regs
  bool pack_floats = true;  ///< use precision-map widths for f32 regs
};

struct AllocationResult {
  std::vector<IndirectionEntry> table;  ///< indexed by architectural reg id
  uint32_t num_physical_regs = 0;       ///< compressed register pressure
  uint32_t total_slices = 0;            ///< sum of operand slice counts
  uint32_t split_operands = 0;          ///< operands split across 2 regs

  /// Fraction of allocated physical slices actually holding data.
  double packing_density() const {
    return num_physical_regs == 0
               ? 1.0
               : double(total_slices) / (8.0 * num_physical_regs);
  }
};

/// Baseline 32-bit pressure: graph-colouring register count.
uint32_t baseline_pressure(const gpurf::ir::Kernel& k);

/// Slice-packing allocation.  `ranges` may be null when !opt.pack_ints;
/// `pmap` may be null when !opt.pack_floats.
AllocationResult allocate_slices(const gpurf::ir::Kernel& k,
                                 const analysis::RangeAnalysisResult* ranges,
                                 const exec::PrecisionMap* pmap,
                                 const AllocOptions& opt);

}  // namespace gpurf::alloc
