#include "alloc/slice_alloc.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "analysis/dataflow.hpp"
#include "analysis/liveness.hpp"
#include "analysis/uses.hpp"
#include "common/bitutil.hpp"
#include "common/error.hpp"
#include "rf/fault_map.hpp"

namespace gpurf::alloc {

namespace ir = gpurf::ir;
using gpurf::DynBitset;

namespace {

/// Registers that actually appear in the program (dead declarations do not
/// occupy register-file space).
std::vector<bool> appearing_regs(const ir::Kernel& k) {
  std::vector<bool> used(k.num_regs(), false);
  for (const auto& b : k.blocks)
    for (const auto& in : b.insts) {
      analysis::for_each_use(in, [&](uint32_t r) { used[r] = true; });
      if (in.info().has_dst) used[in.dst] = true;
    }
  return used;
}

struct PhysReg {
  // occupants[s]: architectural registers using slice-column s.
  std::array<std::vector<uint32_t>, 8> occupants;
};

/// Slices of `p` that register `r` could use: a slice-column is available
/// when none of its occupants interferes with r.
uint8_t available_mask(const PhysReg& p, uint32_t r,
                       const std::vector<DynBitset>& adj) {
  uint8_t m = 0;
  for (int s = 0; s < 8; ++s) {
    bool ok = true;
    for (uint32_t o : p.occupants[s]) {
      if (o == r || adj[r].test(o)) {
        ok = false;
        break;
      }
    }
    if (ok) m |= static_cast<uint8_t>(1u << s);
  }
  return m;
}

/// Take the lowest `n` set bits of `avail`.
uint8_t take_slices(uint8_t avail, int n) {
  uint8_t out = 0;
  for (int s = 0; s < 8 && n > 0; ++s) {
    if (avail & (1u << s)) {
      out |= static_cast<uint8_t>(1u << s);
      --n;
    }
  }
  GPURF_ASSERT(n == 0, "take_slices: not enough available slices");
  return out;
}

void occupy(PhysReg& p, uint8_t mask, uint32_t r) {
  for (int s = 0; s < 8; ++s)
    if (mask & (1u << s)) p.occupants[s].push_back(r);
}

}  // namespace

AllocationResult allocate_slices(const ir::Kernel& k,
                                 const analysis::RangeAnalysisResult* ranges,
                                 const exec::PrecisionMap* pmap,
                                 const AllocOptions& opt) {
  GPURF_CHECK(!opt.pack_ints || ranges != nullptr,
              "pack_ints requires range-analysis results");
  GPURF_CHECK(!opt.pack_floats || (pmap != nullptr && pmap->active()),
              "pack_floats requires a precision map");

  const auto cfg = analysis::build_cfg(k);
  const auto live = analysis::compute_liveness(k, cfg);
  const auto adj =
      opt.live_intervals
          ? analysis::build_live_interference(k, cfg,
                                              analysis::compute_dataflow(k, cfg))
          : analysis::build_interference(k, cfg, live);
  const auto used = appearing_regs(k);

  AllocationResult res;
  res.table.assign(k.num_regs(), IndirectionEntry{});

  // Slice width per architectural register.
  struct Item {
    uint32_t reg;
    int slices;
    uint32_t degree;
  };
  std::vector<Item> items;
  for (uint32_t r = 0; r < k.num_regs(); ++r) {
    if (!used[r] || k.regs[r].type == ir::Type::PRED) continue;
    int slices = 8;
    auto& e = res.table[r];
    if (k.regs[r].type == ir::Type::F32) {
      e.is_float = true;
      if (opt.pack_floats) {
        const auto& fmt = pmap->format(r);
        slices = fmt.slices();
        e.float_bits = static_cast<uint8_t>(fmt.total_bits);
      }
    } else if (opt.pack_ints) {
      const auto& info = ranges->regs[r];
      GPURF_ASSERT(info.analyzed, "int register missing range info");
      slices = slices_for_bits(info.bits);
      e.is_signed = info.is_signed;
    }
    e.valid = true;
    e.slices = static_cast<uint8_t>(slices);
    items.push_back(Item{r, slices, static_cast<uint32_t>(adj[r].count())});
  }

  // First-fit-decreasing order: wide operands first, ties by interference
  // degree so constrained registers get first pick.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.slices != b.slices) return a.slices > b.slices;
    if (a.degree != b.degree) return a.degree > b.degree;
    return a.reg < b.reg;
  });

  std::vector<PhysReg> phys;

  // Faulty slice-columns are simply masked out of availability — that is
  // the whole redirection policy: operands land in the space static
  // compression left free, away from broken slices.  An empty map keeps
  // placement bit-identical to the fault-free allocator.
  const gpurf::rf::FaultMap* faults =
      (opt.faults && !opt.faults->empty()) ? opt.faults : nullptr;
  const auto usable = [&](size_t p) -> uint8_t {
    return faults ? static_cast<uint8_t>(
                        0xffu & ~faults->faulty_mask(static_cast<uint32_t>(p)))
                  : uint8_t{0xff};
  };

  // Pass 1: best-fit into a single physical register.  Pass 2: split
  // across the two fullest candidates (at most 2 physical registers per
  // operand, §4.3).
  const auto try_place = [&](const Item& it, IndirectionEntry& e) -> bool {
    int best = -1;
    int best_avail = 9;
    std::vector<uint8_t> avail(phys.size());
    for (size_t p = 0; p < phys.size(); ++p) {
      avail[p] = available_mask(phys[p], it.reg, adj) & usable(p);
      const int a = std::popcount(avail[p]);
      if (a >= it.slices && a < best_avail) {
        best = static_cast<int>(p);
        best_avail = a;
      }
    }
    if (best >= 0) {
      const uint8_t m = take_slices(avail[best], it.slices);
      occupy(phys[best], m, it.reg);
      e.r0 = SliceLoc{static_cast<uint32_t>(best), m};
      e.split = false;
      return true;
    }

    int p1 = -1, p2 = -1;
    for (size_t p = 0; p < phys.size(); ++p) {
      if (std::popcount(avail[p]) == 0) continue;
      if (p1 < 0 || std::popcount(avail[p]) > std::popcount(avail[p1]))
        p1 = static_cast<int>(p);
    }
    if (p1 >= 0) {
      for (size_t p = 0; p < phys.size(); ++p) {
        if (static_cast<int>(p) == p1 || std::popcount(avail[p]) == 0)
          continue;
        if (p2 < 0 || std::popcount(avail[p]) > std::popcount(avail[p2]))
          p2 = static_cast<int>(p);
      }
    }
    if (p1 >= 0 && p2 >= 0 &&
        std::popcount(avail[p1]) + std::popcount(avail[p2]) >= it.slices) {
      const int take1 = std::min<int>(std::popcount(avail[p1]), it.slices);
      const uint8_t m1 = take_slices(avail[p1], take1);
      const uint8_t m2 = take_slices(avail[p2], it.slices - take1);
      occupy(phys[p1], m1, it.reg);
      occupy(phys[p2], m2, it.reg);
      e.r0 = SliceLoc{static_cast<uint32_t>(p1), m1};
      e.r1 = SliceLoc{static_cast<uint32_t>(p2), m2};
      e.split = true;
      ++res.split_operands;
      return true;
    }
    return false;
  };

  for (const Item& it : items) {
    auto& e = res.table[it.reg];
    const size_t base = phys.size();
    bool placed = try_place(it, e);

    // Pass 3: open new physical registers until the operand fits.  With no
    // faults a fresh register always fits the operand whole (pass 1 picks
    // it as the sole candidate), so the operand stays unsplit, which the
    // paper's §6.5 power discussion prefers (fewer double-fetches).  Under
    // faults a fresh register may itself be partially broken, so keep
    // growing — a split against an existing register can still resolve it
    // — up to the indirection table's 256-register cap.
    while (!placed && phys.size() < 256) {
      phys.emplace_back();
      placed = try_place(it, e);
    }
    if (!placed) {
      // Graceful degradation: the operand cannot be placed in <= 2 pieces
      // inside the compressed file.  Give it a full-width slot in the
      // uncompressed spill store instead of aborting, and roll back the
      // registers speculatively opened above (no occupants yet).
      phys.resize(base);
      e.spilled = true;
      e.split = false;
      e.slices = 8;
      e.is_signed = false;
      e.float_bits = 32;
      e.r0 = SliceLoc{res.spill_regs++, 0xff};
      e.r1 = SliceLoc{};
      ++res.registers_spilled;
      continue;
    }

    res.total_slices += static_cast<uint32_t>(it.slices);
    if (faults) {
      const uint8_t fm =
          faults->faulty_mask(e.r0.phys_reg) |
          (e.split ? faults->faulty_mask(e.r1.phys_reg) : uint8_t{0});
      if (fm) {
        e.redirected = true;
        ++res.registers_redirected;
      }
    }
  }

  res.num_physical_regs = static_cast<uint32_t>(phys.size());
  GPURF_CHECK(res.num_physical_regs <= 256,
              "allocation exceeds the 256-entry indirection table");
  if (faults)
    for (uint32_t p = 0; p < res.num_physical_regs; ++p)
      res.faulty_slices_avoided +=
          static_cast<uint32_t>(std::popcount(faults->faulty_mask(p)));
  return res;
}

uint32_t baseline_pressure(const ir::Kernel& k) {
  // With every operand at the full 8 slices, slice packing degenerates to
  // interference-graph colouring, which is exactly the uncompressed
  // allocation.
  AllocOptions opt;
  opt.pack_ints = false;
  opt.pack_floats = false;
  return allocate_slices(k, nullptr, nullptr, opt).num_physical_regs;
}

uint32_t live_interval_pressure(const ir::Kernel& k) {
  AllocOptions opt;
  opt.pack_ints = false;
  opt.pack_floats = false;
  opt.live_intervals = true;
  return allocate_slices(k, nullptr, nullptr, opt).num_physical_regs;
}

}  // namespace gpurf::alloc
