#include "ir/verifier.hpp"

#include <string>

#include "common/error.hpp"
#include "ir/printer.hpp"

namespace gpurf::ir {

namespace {

class Verifier {
 public:
  explicit Verifier(const Kernel& k) : k_(k) {}

  void run() {
    GPURF_CHECK(!k_.name.empty(), "kernel has no name");
    GPURF_CHECK(!k_.blocks.empty(), "kernel has no blocks");
    for (uint32_t b = 0; b < k_.blocks.size(); ++b) {
      for (const auto& in : k_.blocks[b].insts) check_inst(b, in);
      check_terminator(b);
    }
    check_exit_reachable();
  }

 private:
  [[noreturn]] void fail(uint32_t block, const Instruction& in,
                         const std::string& msg) const {
    throw Error("verify(" + k_.name + "): block '" + k_.blocks[block].label +
                "': '" + print_instruction(k_, in) + "': " + msg);
  }

  Type reg_type(uint32_t id) const { return k_.regs.at(id).type; }

  void expect_reg(uint32_t block, const Instruction& in, const Operand& o,
                  Type t, const char* what) const {
    if (!o.is_reg()) return;  // immediates/specials/params checked separately
    if (reg_type(o.index) != t)
      fail(block, in,
           std::string(what) + " register has type " +
               std::string(type_name(reg_type(o.index))) + ", expected " +
               std::string(type_name(t)));
  }

  void check_operand(uint32_t block, const Instruction& in, const Operand& o,
                     Type expect) const {
    switch (o.kind) {
      case Operand::Kind::REG:
        GPURF_CHECK(o.index < k_.regs.size(), "register index out of range");
        expect_reg(block, in, o, expect, "source");
        break;
      case Operand::Kind::IMM_I:
        if (expect == Type::F32)
          fail(block, in, "integer immediate used in float context");
        if (expect == Type::PRED)
          fail(block, in, "immediate used where predicate expected");
        if (o.imm_i < INT32_MIN || o.imm_i > static_cast<int64_t>(UINT32_MAX))
          fail(block, in, "immediate does not fit in 32 bits");
        break;
      case Operand::Kind::IMM_F:
        if (expect != Type::F32)
          fail(block, in, "float immediate used in non-float context");
        break;
      case Operand::Kind::SPECIAL:
        if (expect == Type::F32 || expect == Type::PRED)
          fail(block, in, "special register used in non-integer context");
        break;
      case Operand::Kind::PARAM: {
        GPURF_CHECK(o.index < k_.params.size(), "param index out of range");
        const Type pt = k_.params[o.index].type;
        const bool ok =
            (pt == expect) || (is_int(pt) && is_int(expect));
        if (!ok)
          fail(block, in, "param type mismatch");
        break;
      }
    }
  }

  void check_inst(uint32_t block, const Instruction& in) const {
    const auto& info = in.info();
    if (in.guard != kNoReg && reg_type(in.guard) != Type::PRED)
      fail(block, in, "guard is not a predicate register");

    // Destination typing.
    if (info.has_dst) {
      GPURF_CHECK(in.dst < k_.regs.size(), "dst register out of range");
      const Type want = info.dst_is_pred ? Type::PRED : in.type;
      if (reg_type(in.dst) != want)
        fail(block, in, "destination type mismatch");
    }

    // Opcode-specific typing constraints.
    switch (in.op) {
      case Opcode::AND: case Opcode::OR: case Opcode::XOR:
      case Opcode::NOT: case Opcode::SHL: case Opcode::SHR:
      case Opcode::REM:
        if (!is_int(in.type))
          fail(block, in, "bitwise/shift/rem ops are integer-only");
        break;
      case Opcode::SIN: case Opcode::COS: case Opcode::EX2:
      case Opcode::LG2: case Opcode::SQRT: case Opcode::RSQRT:
      case Opcode::RCP:
        if (in.type != Type::F32)
          fail(block, in, "transcendental ops are f32-only");
        break;
      case Opcode::CVT: {
        const bool i2f = is_int(in.cvt_src_type) && in.type == Type::F32;
        const bool f2i = in.cvt_src_type == Type::F32 && is_int(in.type);
        const bool ii = is_int(in.cvt_src_type) && is_int(in.type);
        if (!(i2f || f2i || ii)) fail(block, in, "unsupported cvt combination");
        break;
      }
      case Opcode::SETP:
        if (in.type == Type::PRED) fail(block, in, "setp on predicates");
        break;
      case Opcode::BAR:
        break;
      case Opcode::BRA:
        GPURF_CHECK(in.target < k_.blocks.size(), "branch target out of range");
        break;
      default:
        if (in.type == Type::PRED)
          fail(block, in, "predicate type not allowed here");
        break;
    }

    // Source operand typing.
    for (int s = 0; s < in.num_srcs; ++s) {
      Type expect = in.type;
      if (in.op == Opcode::CVT) expect = in.cvt_src_type;
      if (in.op == Opcode::SELP && s == 2) expect = Type::PRED;
      if ((in.op == Opcode::SHL || in.op == Opcode::SHR) && s == 1)
        expect = Type::U32;
      if ((in.op == Opcode::LD_GLOBAL || in.op == Opcode::LD_SHARED ||
           in.op == Opcode::ST_GLOBAL || in.op == Opcode::ST_SHARED) &&
          s == 0) {
        // Address operand: any integer register.
        if (!in.srcs[0].is_reg() || !is_int(reg_type(in.srcs[0].index)))
          fail(block, in, "address must be an integer register");
        continue;
      }
      if (in.op == Opcode::TEX2D) {
        if (in.srcs[s].is_reg() && !is_int(reg_type(in.srcs[s].index)))
          fail(block, in, "texture coordinates must be integer");
        continue;
      }
      check_operand(block, in, in.srcs[s], expect);
    }

    if (in.op == Opcode::TEX2D) {
      GPURF_CHECK(in.tex < k_.textures.size(), "texture slot out of range");
      if (reg_type(in.dst) != Type::F32)
        fail(block, in, "tex.2d destination must be f32");
    }
  }

  void check_terminator(uint32_t b) const {
    const auto& blk = k_.blocks[b];
    // Terminators (conditional or not) must end their block — the CFG is
    // derived from the final instruction only.
    for (size_t i = 0; i + 1 < blk.insts.size(); ++i) {
      const auto& in = blk.insts[i];
      if (in.info().is_terminator)
        throw Error("verify(" + k_.name + "): terminator in the middle of "
                    "block '" + blk.label + "'");
    }
    // The final block must not fall off the end of the kernel.
    if (b + 1 == k_.blocks.size()) {
      if (blk.insts.empty() || (blk.insts.back().op != Opcode::RET &&
                                !(blk.insts.back().op == Opcode::BRA &&
                                  blk.insts.back().guard == kNoReg)))
        throw Error("verify(" + k_.name +
                    "): control falls off the end of the kernel");
    }
  }

  void check_exit_reachable() const {
    // Every block must be reachable from entry (catches label typos).
    std::vector<bool> seen(k_.blocks.size(), false);
    std::vector<uint32_t> stack{0};
    seen[0] = true;
    while (!stack.empty()) {
      const uint32_t b = stack.back();
      stack.pop_back();
      for (uint32_t s : k_.successors(b)) {
        GPURF_CHECK(s < k_.blocks.size(), "successor out of range");
        if (!seen[s]) {
          seen[s] = true;
          stack.push_back(s);
        }
      }
    }
    for (uint32_t b = 0; b < k_.blocks.size(); ++b)
      if (!seen[b])
        throw Error("verify(" + k_.name + "): unreachable block '" +
                    k_.blocks[b].label + "'");
  }

  const Kernel& k_;
};

}  // namespace

void verify(const Kernel& k) { Verifier(k).run(); }

}  // namespace gpurf::ir
