#pragma once
// Disassembler: renders a Kernel back to the assembly syntax accepted by
// parse_kernel().  print(parse(x)) round-trips modulo whitespace.

#include <string>

#include "ir/kernel.hpp"

namespace gpurf::ir {

std::string print_kernel(const Kernel& k);
std::string print_instruction(const Kernel& k, const Instruction& in);

}  // namespace gpurf::ir
