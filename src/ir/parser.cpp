#include "ir/parser.hpp"

#include <charconv>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strutil.hpp"

namespace gpurf::ir {

namespace {

struct PendingBranch {
  uint32_t block;
  uint32_t inst;
  std::string label;
  int line;
};

const std::map<std::string_view, Opcode>& mnemonic_map() {
  static const std::map<std::string_view, Opcode> m = {
      {"add", Opcode::ADD},       {"sub", Opcode::SUB},
      {"mul", Opcode::MUL},       {"mad", Opcode::MAD},
      {"div", Opcode::DIV},       {"rem", Opcode::REM},
      {"min", Opcode::MIN},       {"max", Opcode::MAX},
      {"abs", Opcode::ABS},       {"neg", Opcode::NEG},
      {"and", Opcode::AND},       {"or", Opcode::OR},
      {"xor", Opcode::XOR},       {"not", Opcode::NOT},
      {"shl", Opcode::SHL},       {"shr", Opcode::SHR},
      {"sin", Opcode::SIN},       {"cos", Opcode::COS},
      {"ex2", Opcode::EX2},       {"lg2", Opcode::LG2},
      {"sqrt", Opcode::SQRT},     {"rsqrt", Opcode::RSQRT},
      {"rcp", Opcode::RCP},       {"cvt", Opcode::CVT},
      {"mov", Opcode::MOV},       {"selp", Opcode::SELP},
      {"setp", Opcode::SETP},     {"ld.global", Opcode::LD_GLOBAL},
      {"st.global", Opcode::ST_GLOBAL}, {"ld.shared", Opcode::LD_SHARED},
      {"st.shared", Opcode::ST_SHARED}, {"tex.2d", Opcode::TEX2D},
      {"bra", Opcode::BRA},       {"ret", Opcode::RET},
      {"bar.sync", Opcode::BAR},
  };
  return m;
}

std::optional<Type> parse_type(std::string_view s) {
  if (s == "s32") return Type::S32;
  if (s == "u32") return Type::U32;
  if (s == "f32") return Type::F32;
  if (s == "pred") return Type::PRED;
  return std::nullopt;
}

std::optional<CmpOp> parse_cmp(std::string_view s) {
  if (s == "eq") return CmpOp::EQ;
  if (s == "ne") return CmpOp::NE;
  if (s == "lt") return CmpOp::LT;
  if (s == "le") return CmpOp::LE;
  if (s == "gt") return CmpOp::GT;
  if (s == "ge") return CmpOp::GE;
  return std::nullopt;
}

std::optional<Special> parse_special(std::string_view s) {
  static const std::map<std::string_view, Special> m = {
      {"%tid.x", Special::TID_X},       {"%tid.y", Special::TID_Y},
      {"%ctaid.x", Special::CTAID_X},   {"%ctaid.y", Special::CTAID_Y},
      {"%ntid.x", Special::NTID_X},     {"%ntid.y", Special::NTID_Y},
      {"%nctaid.x", Special::NCTAID_X}, {"%nctaid.y", Special::NCTAID_Y},
  };
  auto it = m.find(s);
  if (it == m.end()) return std::nullopt;
  return it->second;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Kernel run() {
    int line_no = 0;
    for (std::string_view raw : split(text_, '\n')) {
      ++line_no;
      line_ = line_no;
      std::string_view line = strip_comment(raw);
      line = trim(line);
      if (line.empty()) continue;
      if (line[0] == '.') {
        directive(line);
      } else if (line.back() == ':' && line.find(' ') == line.npos) {
        start_block(std::string(line.substr(0, line.size() - 1)));
      } else {
        instruction(line);
      }
    }
    resolve_branches();
    GPURF_CHECK(!k_.blocks.empty(), "kernel has no instructions");
    GPURF_CHECK(!k_.name.empty(), "missing .kernel directive");
    return std::move(k_);
  }

 private:
  static std::string_view strip_comment(std::string_view s) {
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == ';') return s.substr(0, i);
      if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/')
        return s.substr(0, i);
    }
    return s;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("line " + std::to_string(line_) + ": " + msg);
  }

  void directive(std::string_view line) {
    auto tok = split_ws(line);
    if (tok[0] == ".kernel") {
      if (tok.size() != 2) fail(".kernel expects a name");
      k_.name = std::string(tok[1]);
    } else if (tok[0] == ".param") {
      if (tok.size() < 3) fail(".param expects: .param TYPE NAME [range(..)]");
      auto t = parse_type(tok[1]);
      if (!t || *t == Type::PRED) fail("bad param type");
      ParamInfo p;
      p.type = *t;
      p.name = std::string(tok[2]);
      if (tok.size() >= 4) p.range = parse_range(tok[3]);
      if (k_.find_param(p.name) != UINT32_MAX)
        fail("duplicate param " + p.name);
      k_.params.push_back(std::move(p));
    } else if (tok[0] == ".reg") {
      if (tok.size() != 3) fail(".reg expects: .reg TYPE %NAME[<N>]");
      auto t = parse_type(tok[1]);
      if (!t) fail("bad register type");
      declare_regs(tok[2], *t);
    } else if (tok[0] == ".shared") {
      if (tok.size() != 2) fail(".shared expects a byte count");
      k_.shared_bytes = parse_u32(tok[1]);
    } else if (tok[0] == ".tex") {
      if (tok.size() != 2) fail(".tex expects a name");
      k_.textures.push_back(TexInfo{std::string(tok[1])});
    } else {
      fail("unknown directive " + std::string(tok[0]));
    }
  }

  ParamRange parse_range(std::string_view s) {
    // range(LO,HI)
    if (!starts_with(s, "range(") || s.back() != ')')
      fail("bad range annotation, expected range(LO,HI)");
    auto body = s.substr(6, s.size() - 7);
    auto parts = split(body, ',');
    if (parts.size() != 2) fail("range needs two bounds");
    ParamRange r;
    r.lo = parse_i64(trim(parts[0]));
    r.hi = parse_i64(trim(parts[1]));
    if (r.lo > r.hi) fail("range lo > hi");
    return r;
  }

  void declare_regs(std::string_view spec, Type t) {
    if (spec.empty() || spec[0] != '%') fail("register name must start with %");
    spec.remove_prefix(1);
    auto lt = spec.find('<');
    if (lt == spec.npos) {
      add_reg(std::string(spec), t);
      return;
    }
    if (spec.back() != '>') fail("bad register group syntax");
    const std::string base(spec.substr(0, lt));
    const uint32_t n = parse_u32(spec.substr(lt + 1, spec.size() - lt - 2));
    if (n == 0 || n > 1024) fail("bad register group count");
    for (uint32_t i = 0; i < n; ++i) add_reg(base + std::to_string(i), t);
  }

  void add_reg(std::string name, Type t) {
    if (k_.find_reg(name) != kNoReg) fail("duplicate register %" + name);
    k_.regs.push_back(RegInfo{std::move(name), t});
  }

  void start_block(std::string label) {
    if (k_.find_block(label) != kNoBlock) fail("duplicate label " + label);
    // Merge an empty trailing block (label directly after a label).
    k_.blocks.push_back(BasicBlock{std::move(label), {}});
  }

  BasicBlock& current_block() {
    if (k_.blocks.empty()) k_.blocks.push_back(BasicBlock{"entry", {}});
    return k_.blocks.back();
  }

  void instruction(std::string_view line) {
    Instruction in;
    auto tok = split_ws(line);
    size_t ti = 0;

    // Guard predicate.
    if (!tok.empty() && tok[0][0] == '@') {
      std::string_view g = tok[0].substr(1);
      if (!g.empty() && g[0] == '!') {
        in.guard_neg = true;
        g.remove_prefix(1);
      }
      if (g.empty() || g[0] != '%') fail("guard must name a predicate reg");
      in.guard = reg_id(g);
      ++ti;
    }
    if (ti >= tok.size()) fail("missing mnemonic");

    parse_mnemonic(tok[ti], in);
    ++ti;

    // Re-join remaining tokens then split on commas so that operands may be
    // written with or without spaces after commas.
    std::string rest;
    for (size_t i = ti; i < tok.size(); ++i) {
      if (!rest.empty()) rest += ' ';
      rest += std::string(tok[i]);
    }
    std::vector<std::string> ops;
    for (auto piece : split(rest, ',')) {
      auto p = trim(piece);
      if (!p.empty()) ops.emplace_back(p);
    }
    parse_operands(in, ops);
    current_block().insts.push_back(in);
  }

  void parse_mnemonic(std::string_view m, Instruction& in) {
    auto parts = split(m, '.');
    const auto& map = mnemonic_map();
    size_t consumed = 0;
    // Longest-prefix match: try two joined parts, then one.
    if (parts.size() >= 2) {
      std::string two = std::string(parts[0]) + "." + std::string(parts[1]);
      if (auto it = map.find(two); it != map.end()) {
        in.op = it->second;
        consumed = 2;
      }
    }
    if (consumed == 0) {
      if (auto it = map.find(parts[0]); it != map.end()) {
        in.op = it->second;
        consumed = 1;
      } else {
        fail("unknown mnemonic " + std::string(m));
      }
    }
    std::vector<std::string_view> mods(parts.begin() + consumed, parts.end());
    switch (in.op) {
      case Opcode::SETP: {
        if (mods.size() != 2) fail("setp needs .CMP.TYPE");
        auto c = parse_cmp(mods[0]);
        auto t = parse_type(mods[1]);
        if (!c || !t) fail("bad setp modifiers");
        in.cmp = *c;
        in.type = *t;
        break;
      }
      case Opcode::CVT: {
        if (mods.size() != 2) fail("cvt needs .DSTTYPE.SRCTYPE");
        auto d = parse_type(mods[0]);
        auto s = parse_type(mods[1]);
        if (!d || !s) fail("bad cvt types");
        in.type = *d;
        in.cvt_src_type = *s;
        break;
      }
      case Opcode::BRA:
      case Opcode::RET:
      case Opcode::BAR:
        if (!mods.empty()) fail("unexpected modifier");
        break;
      default: {
        if (mods.size() != 1) fail("expected exactly one type suffix");
        auto t = parse_type(mods[0]);
        if (!t) fail("bad type suffix ." + std::string(mods[0]));
        in.type = *t;
        break;
      }
    }
  }

  void parse_operands(Instruction& in, const std::vector<std::string>& ops) {
    const auto& info = in.info();
    switch (in.op) {
      case Opcode::BRA: {
        if (ops.size() != 1) fail("bra expects a label");
        pending_.push_back(PendingBranch{
            static_cast<uint32_t>(k_.blocks.size() - (k_.blocks.empty() ? 0 : 1)),
            static_cast<uint32_t>(current_block().insts.size()), ops[0],
            line_});
        return;
      }
      case Opcode::RET:
      case Opcode::BAR:
        if (!ops.empty()) fail("unexpected operands");
        return;
      case Opcode::LD_GLOBAL:
      case Opcode::LD_SHARED: {
        if (ops.size() != 2) fail("ld expects: %dst, [%addr(+off)]");
        in.dst = reg_id(ops[0]);
        parse_addr(ops[1], in);
        in.num_srcs = 1;
        return;
      }
      case Opcode::ST_GLOBAL:
      case Opcode::ST_SHARED: {
        if (ops.size() != 2) fail("st expects: [%addr(+off)], %val");
        parse_addr(ops[0], in);
        in.srcs[1] = value_operand(ops[1], in.type);
        in.num_srcs = 2;
        return;
      }
      case Opcode::TEX2D: {
        if (ops.size() != 4) fail("tex.2d expects: %dst, TEX, %u, %v");
        in.dst = reg_id(ops[0]);
        bool found = false;
        for (uint32_t t = 0; t < k_.textures.size(); ++t) {
          if (k_.textures[t].name == ops[1]) {
            in.tex = t;
            found = true;
            break;
          }
        }
        if (!found) fail("unknown texture " + ops[1]);
        in.srcs[0] = value_operand(ops[2], Type::S32);
        in.srcs[1] = value_operand(ops[3], Type::S32);
        in.num_srcs = 2;
        return;
      }
      default:
        break;
    }

    size_t oi = 0;
    if (info.has_dst) {
      if (ops.empty()) fail("missing destination");
      in.dst = reg_id(ops[0]);
      oi = 1;
    }
    const int want = info.num_srcs;
    if (static_cast<int>(ops.size() - oi) != want)
      fail("expected " + std::to_string(want) + " source operands, got " +
           std::to_string(ops.size() - oi));
    for (int s = 0; s < want; ++s) {
      Type expect = in.type;
      if (in.op == Opcode::CVT) expect = in.cvt_src_type;
      if (in.op == Opcode::SELP && s == 2) expect = Type::PRED;
      if ((in.op == Opcode::SHL || in.op == Opcode::SHR) && s == 1)
        expect = Type::U32;
      in.srcs[s] = value_operand(ops[oi + s], expect);
    }
    in.num_srcs = static_cast<uint8_t>(want);
  }

  void parse_addr(const std::string& s, Instruction& in) {
    if (s.size() < 2 || s.front() != '[' || s.back() != ']')
      fail("memory operand must be bracketed: " + s);
    std::string_view body = trim(std::string_view(s).substr(1, s.size() - 2));
    size_t pos = body.find_first_of("+-", 1);
    std::string_view base = body;
    if (pos != body.npos) {
      base = trim(body.substr(0, pos));
      auto off = trim(body.substr(pos));  // includes sign
      in.mem_offset = static_cast<int32_t>(parse_i64(off));
    }
    in.srcs[0] = value_operand(std::string(base), Type::U32);
    if (!in.srcs[0].is_reg()) fail("address must be a register");
  }

  Operand value_operand(const std::string& s, Type expect) {
    if (s.empty()) fail("empty operand");
    if (s[0] == '%') {
      if (auto sp = parse_special(s)) return Operand::special(*sp);
      return Operand::reg(reg_id(s));
    }
    if (s[0] == '$') {
      const uint32_t p = k_.find_param(s.substr(1));
      if (p == UINT32_MAX) fail("unknown param " + s);
      return Operand::param(p);
    }
    // Immediate.
    if (expect == Type::F32) return Operand::immf(parse_f32(s));
    return Operand::imm(parse_i64(s));
  }

  uint32_t reg_id(std::string_view s) {
    if (s.empty() || s[0] != '%') fail("expected register, got " + std::string(s));
    const uint32_t id = k_.find_reg(s.substr(1));
    if (id == kNoReg) fail("undeclared register " + std::string(s));
    return id;
  }

  uint32_t parse_u32(std::string_view s) {
    const int64_t v = parse_i64(s);
    if (v < 0 || v > UINT32_MAX) fail("value out of u32 range");
    return static_cast<uint32_t>(v);
  }

  int64_t parse_i64(std::string_view s) {
    int64_t v = 0;
    bool neg = false;
    size_t i = 0;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
      neg = s[i] == '-';
      ++i;
    }
    std::string_view digits = s.substr(i);
    int base = 10;
    if (starts_with(digits, "0x") || starts_with(digits, "0X")) {
      base = 16;
      digits.remove_prefix(2);
    }
    auto [p, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), v, base);
    if (ec != std::errc() || p != digits.data() + digits.size())
      fail("bad integer literal " + std::string(s));
    return neg ? -v : v;
  }

  float parse_f32(std::string_view s) {
    std::string tmp(s);
    char* end = nullptr;
    const float f = std::strtof(tmp.c_str(), &end);
    if (end != tmp.c_str() + tmp.size())
      fail("bad float literal " + std::string(s));
    return f;
  }

  void resolve_branches() {
    for (const auto& pb : pending_) {
      const uint32_t t = k_.find_block(pb.label);
      if (t == kNoBlock)
        throw Error("line " + std::to_string(pb.line) + ": unknown label " +
                    pb.label);
      // Find the instruction again: it was appended to the block that was
      // current at parse time; that block may have grown.
      GPURF_ASSERT(pb.block < k_.blocks.size(), "branch block vanished");
      auto& blk = k_.blocks[pb.block];
      GPURF_ASSERT(pb.inst < blk.insts.size(), "branch inst vanished");
      blk.insts[pb.inst].target = t;
    }
  }

  std::string_view text_;
  Kernel k_;
  std::vector<PendingBranch> pending_;
  int line_ = 0;
};

}  // namespace

Kernel parse_kernel(std::string_view text) { return Parser(text).run(); }

}  // namespace gpurf::ir
