#pragma once
// Instruction representation of the PTX-like virtual ISA.
//
// Design notes
// ------------
// * Registers are *virtual* (unbounded count, typed).  The slice allocator
//   later maps them to physical registers + slice masks, mirroring the
//   paper's PTX-level workflow (§5.1).
// * Memory is word-addressed: addresses and load/store offsets count 32-bit
//   words.  A 128-byte coalescing line therefore spans 32 consecutive words.
// * Every instruction may be guarded by a predicate (`@%p` / `@!%p`), which
//   the interpreter folds into the active mask.

#include <array>
#include <cstdint>

#include "ir/opcode.hpp"
#include "ir/type.hpp"

namespace gpurf::ir {

constexpr uint32_t kNoReg = UINT32_MAX;
constexpr uint32_t kNoBlock = UINT32_MAX;

/// Special read-only hardware registers (PTX %tid etc.).
enum class Special : uint8_t {
  TID_X, TID_Y, CTAID_X, CTAID_Y, NTID_X, NTID_Y, NCTAID_X, NCTAID_Y,
};
constexpr int kNumSpecials = static_cast<int>(Special::NCTAID_Y) + 1;

std::string_view special_name(Special s);

/// A source operand: virtual register, immediate, special register or
/// kernel parameter.
struct Operand {
  enum class Kind : uint8_t { REG, IMM_I, IMM_F, SPECIAL, PARAM };

  Kind kind = Kind::IMM_I;
  uint32_t index = 0;  ///< reg id / param index / Special enum value
  int64_t imm_i = 0;   ///< integer immediate payload
  float imm_f = 0.f;   ///< float immediate payload

  static Operand reg(uint32_t id) {
    Operand o;
    o.kind = Kind::REG;
    o.index = id;
    return o;
  }
  static Operand imm(int64_t v) {
    Operand o;
    o.kind = Kind::IMM_I;
    o.imm_i = v;
    return o;
  }
  static Operand immf(float v) {
    Operand o;
    o.kind = Kind::IMM_F;
    o.imm_f = v;
    return o;
  }
  static Operand special(Special s) {
    Operand o;
    o.kind = Kind::SPECIAL;
    o.index = static_cast<uint32_t>(s);
    return o;
  }
  static Operand param(uint32_t idx) {
    Operand o;
    o.kind = Kind::PARAM;
    o.index = idx;
    return o;
  }

  bool is_reg() const { return kind == Kind::REG; }
};

/// One warp-wide instruction.
struct Instruction {
  Opcode op = Opcode::MOV;
  Type type = Type::S32;          ///< operation type (dst type for CVT)
  Type cvt_src_type = Type::S32;  ///< CVT only: source type
  CmpOp cmp = CmpOp::EQ;          ///< SETP only

  uint32_t dst = kNoReg;          ///< destination register (or predicate)
  std::array<Operand, 3> srcs{};
  uint8_t num_srcs = 0;

  uint32_t guard = kNoReg;        ///< guard predicate register
  bool guard_neg = false;         ///< @!%p

  uint32_t target = kNoBlock;     ///< BRA: destination block index
  int32_t mem_offset = 0;         ///< LD/ST: immediate word offset
  uint32_t tex = 0;               ///< TEX2D: texture slot index

  const OpcodeInfo& info() const { return opcode_info(op); }
};

}  // namespace gpurf::ir
