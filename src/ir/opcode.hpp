#pragma once
// Opcode set and static per-opcode metadata for the virtual ISA.

#include <cstdint>
#include <string_view>

namespace gpurf::ir {

enum class Opcode : uint8_t {
  // Integer & float arithmetic (type field selects variant).
  ADD, SUB, MUL, MAD, DIV, REM, MIN, MAX, ABS, NEG,
  // Bitwise / shifts (integer only; SHR is arithmetic for S32, logical U32).
  AND, OR, XOR, NOT, SHL, SHR,
  // Transcendentals executed by the Special Function Unit.
  SIN, COS, EX2, LG2, SQRT, RSQRT, RCP,
  // Data movement and conversion.
  CVT, MOV, SELP,
  // Comparison -> predicate.
  SETP,
  // Memory.
  LD_GLOBAL, ST_GLOBAL, LD_SHARED, ST_SHARED, TEX2D,
  // Control.
  BRA, RET, BAR,
};

enum class CmpOp : uint8_t { EQ, NE, LT, LE, GT, GE };

/// Execution-unit class used by the timing simulator (§3.1: SPU, SFU, LD/ST).
enum class UnitClass : uint8_t { SPU, SFU, LDST, CONTROL };

struct OpcodeInfo {
  std::string_view name;    ///< assembly mnemonic
  int num_srcs;             ///< number of register/immediate source operands
  bool has_dst;             ///< writes a destination register
  bool dst_is_pred;         ///< destination is a predicate (SETP)
  UnitClass unit;           ///< which pipeline executes it
  bool is_memory;           ///< touches a memory space
  bool is_terminator;       ///< ends a basic block (BRA/RET)
};

const OpcodeInfo& opcode_info(Opcode op);

constexpr int kNumOpcodes = static_cast<int>(Opcode::BAR) + 1;

std::string_view cmp_name(CmpOp c);

}  // namespace gpurf::ir
