#pragma once
// Kernel container: registers, parameters, textures, basic blocks, and the
// launch geometry used both by the interpreter and by the static analyses.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/instruction.hpp"
#include "ir/type.hpp"

namespace gpurf::ir {

/// Declared virtual register.
struct RegInfo {
  std::string name;  ///< without the leading '%'
  Type type = Type::S32;
};

/// Optional static value-range contract on an integer parameter, usable by
/// the range analysis (e.g. an image width known to be <= 4096).  Parameters
/// without a contract are treated as full-range, exactly like ptxas would.
struct ParamRange {
  int64_t lo = 0;
  int64_t hi = 0;
};

struct ParamInfo {
  std::string name;
  Type type = Type::U32;
  std::optional<ParamRange> range;  ///< integer params only
};

struct TexInfo {
  std::string name;
};

struct BasicBlock {
  std::string label;
  std::vector<Instruction> insts;
};

/// CUDA-style launch geometry (2-D grid of 2-D blocks).  Threads are
/// linearised x-major into warps of 32.
struct LaunchConfig {
  uint32_t grid_x = 1, grid_y = 1;
  uint32_t block_x = 32, block_y = 1;

  uint32_t threads_per_block() const { return block_x * block_y; }
  uint32_t warps_per_block() const {
    return (threads_per_block() + 31) / 32;
  }
  uint32_t num_blocks() const { return grid_x * grid_y; }
};

class Kernel {
 public:
  std::string name;
  std::vector<RegInfo> regs;
  std::vector<ParamInfo> params;
  std::vector<TexInfo> textures;
  std::vector<BasicBlock> blocks;
  uint32_t shared_bytes = 0;  ///< static shared memory per block

  uint32_t num_regs() const { return static_cast<uint32_t>(regs.size()); }

  /// Find a register id by name; returns kNoReg if absent.
  uint32_t find_reg(std::string_view n) const;
  /// Find a parameter index by name; returns UINT32_MAX if absent.
  uint32_t find_param(std::string_view n) const;
  /// Find a block index by label; returns kNoBlock if absent.
  uint32_t find_block(std::string_view label) const;

  /// Total number of instructions across all blocks.
  size_t num_insts() const;

  /// Number of non-predicate (32-bit data) registers — the quantity that
  /// occupies register-file space and is reported as register pressure.
  uint32_t num_data_regs() const;

  /// Successor block indices of block `b`, derived from its terminator
  /// (fall-through to b+1 when the last instruction is not an unconditional
  /// terminator).
  std::vector<uint32_t> successors(uint32_t b) const;
};

}  // namespace gpurf::ir
