#pragma once
// Value types of the PTX-like virtual ISA.
//
// The reproduction targets the paper's evaluation space: 32-bit integer and
// single-precision float operands (none of the paper's benchmarks use double
// precision, §5.2).  Predicates live in a separate predicate file, exactly as
// in PTX, and are therefore excluded from register-pressure accounting.

#include <cstdint>
#include <string_view>

namespace gpurf::ir {

enum class Type : uint8_t {
  S32,   ///< 32-bit signed integer
  U32,   ///< 32-bit unsigned integer
  F32,   ///< IEEE-754 binary32
  PRED,  ///< 1-bit predicate (separate register file)
};

constexpr bool is_int(Type t) { return t == Type::S32 || t == Type::U32; }
constexpr bool is_float(Type t) { return t == Type::F32; }

constexpr std::string_view type_name(Type t) {
  switch (t) {
    case Type::S32: return "s32";
    case Type::U32: return "u32";
    case Type::F32: return "f32";
    case Type::PRED: return "pred";
  }
  return "?";
}

}  // namespace gpurf::ir
