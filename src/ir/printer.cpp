#include "ir/printer.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strutil.hpp"

namespace gpurf::ir {

namespace {

std::string operand_str(const Kernel& k, const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::REG:
      return "%" + k.regs.at(o.index).name;
    case Operand::Kind::IMM_I:
      return std::to_string(o.imm_i);
    case Operand::Kind::IMM_F: {
      std::ostringstream oss;
      oss.precision(9);
      oss << o.imm_f;
      std::string s = oss.str();
      if (s.find('.') == s.npos && s.find('e') == s.npos &&
          s.find("inf") == s.npos && s.find("nan") == s.npos)
        s += ".0";
      return s;
    }
    case Operand::Kind::SPECIAL:
      return std::string(special_name(static_cast<Special>(o.index)));
    case Operand::Kind::PARAM:
      return "$" + k.params.at(o.index).name;
  }
  return "?";
}

std::string addr_str(const Kernel& k, const Instruction& in) {
  std::string s = "[" + operand_str(k, in.srcs[0]);
  if (in.mem_offset > 0) s += "+" + std::to_string(in.mem_offset);
  if (in.mem_offset < 0) s += std::to_string(in.mem_offset);
  return s + "]";
}

}  // namespace

std::string print_instruction(const Kernel& k, const Instruction& in) {
  std::string s;
  if (in.guard != kNoReg) {
    s += "@";
    if (in.guard_neg) s += "!";
    s += "%" + k.regs.at(in.guard).name + " ";
  }
  const auto& info = in.info();
  s += std::string(info.name);
  switch (in.op) {
    case Opcode::SETP:
      s += "." + std::string(cmp_name(in.cmp)) + "." +
           std::string(type_name(in.type));
      break;
    case Opcode::CVT:
      s += "." + std::string(type_name(in.type)) + "." +
           std::string(type_name(in.cvt_src_type));
      break;
    case Opcode::BRA:
    case Opcode::RET:
    case Opcode::BAR:
      break;
    default:
      s += "." + std::string(type_name(in.type));
      break;
  }

  switch (in.op) {
    case Opcode::BRA:
      s += " " + k.blocks.at(in.target).label;
      return s;
    case Opcode::RET:
    case Opcode::BAR:
      return s;
    case Opcode::LD_GLOBAL:
    case Opcode::LD_SHARED:
      s += " %" + k.regs.at(in.dst).name + ", " + addr_str(k, in);
      return s;
    case Opcode::ST_GLOBAL:
    case Opcode::ST_SHARED:
      s += " " + addr_str(k, in) + ", " + operand_str(k, in.srcs[1]);
      return s;
    case Opcode::TEX2D:
      s += " %" + k.regs.at(in.dst).name + ", " +
           k.textures.at(in.tex).name + ", " + operand_str(k, in.srcs[0]) +
           ", " + operand_str(k, in.srcs[1]);
      return s;
    default:
      break;
  }

  bool first = true;
  if (info.has_dst) {
    s += " %" + k.regs.at(in.dst).name;
    first = false;
  }
  for (int i = 0; i < in.num_srcs; ++i) {
    s += first ? " " : ", ";
    first = false;
    s += operand_str(k, in.srcs[i]);
  }
  return s;
}

std::string print_kernel(const Kernel& k) {
  std::ostringstream out;
  out << ".kernel " << k.name << "\n";
  for (const auto& p : k.params) {
    out << ".param " << type_name(p.type) << " " << p.name;
    if (p.range)
      out << " range(" << p.range->lo << "," << p.range->hi << ")";
    out << "\n";
  }
  for (const auto& t : k.textures) out << ".tex " << t.name << "\n";
  if (k.shared_bytes > 0) out << ".shared " << k.shared_bytes << "\n";
  for (const auto& r : k.regs)
    out << ".reg " << type_name(r.type) << " %" << r.name << "\n";
  out << "\n";
  for (const auto& b : k.blocks) {
    out << b.label << ":\n";
    for (const auto& in : b.insts)
      out << "  " << print_instruction(k, in) << "\n";
  }
  return out.str();
}

}  // namespace gpurf::ir
