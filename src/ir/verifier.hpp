#pragma once
// Structural + type verification of kernels.
//
// The verifier enforces the ISA's typing rules so that downstream analyses
// (range analysis, precision tuning, allocation) and the interpreter can
// assume well-formed input.  Throws gpurf::Error describing the first
// violation.

#include "ir/kernel.hpp"

namespace gpurf::ir {

void verify(const Kernel& k);

}  // namespace gpurf::ir
