#include "ir/kernel.hpp"

#include "common/error.hpp"

namespace gpurf::ir {

std::string_view special_name(Special s) {
  switch (s) {
    case Special::TID_X: return "%tid.x";
    case Special::TID_Y: return "%tid.y";
    case Special::CTAID_X: return "%ctaid.x";
    case Special::CTAID_Y: return "%ctaid.y";
    case Special::NTID_X: return "%ntid.x";
    case Special::NTID_Y: return "%ntid.y";
    case Special::NCTAID_X: return "%nctaid.x";
    case Special::NCTAID_Y: return "%nctaid.y";
  }
  return "?";
}

uint32_t Kernel::find_reg(std::string_view n) const {
  for (uint32_t i = 0; i < regs.size(); ++i)
    if (regs[i].name == n) return i;
  return kNoReg;
}

uint32_t Kernel::find_param(std::string_view n) const {
  for (uint32_t i = 0; i < params.size(); ++i)
    if (params[i].name == n) return i;
  return UINT32_MAX;
}

uint32_t Kernel::find_block(std::string_view label) const {
  for (uint32_t i = 0; i < blocks.size(); ++i)
    if (blocks[i].label == label) return i;
  return kNoBlock;
}

size_t Kernel::num_insts() const {
  size_t n = 0;
  for (const auto& b : blocks) n += b.insts.size();
  return n;
}

uint32_t Kernel::num_data_regs() const {
  uint32_t n = 0;
  for (const auto& r : regs)
    if (r.type != Type::PRED) ++n;
  return n;
}

std::vector<uint32_t> Kernel::successors(uint32_t b) const {
  GPURF_ASSERT(b < blocks.size(), "bad block index " << b);
  const auto& blk = blocks[b];
  std::vector<uint32_t> out;
  if (blk.insts.empty()) {
    if (b + 1 < blocks.size()) out.push_back(b + 1);
    return out;
  }
  const Instruction& last = blk.insts.back();
  if (last.op == Opcode::RET) return out;
  if (last.op == Opcode::BRA) {
    out.push_back(last.target);
    if (last.guard != kNoReg && b + 1 < blocks.size() &&
        last.target != b + 1) {
      out.push_back(b + 1);
    } else if (last.guard != kNoReg && b + 1 < blocks.size() &&
               last.target == b + 1) {
      // Degenerate conditional branch to the fall-through block.
    }
    return out;
  }
  if (b + 1 < blocks.size()) out.push_back(b + 1);
  return out;
}

}  // namespace gpurf::ir
