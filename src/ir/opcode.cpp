#include "ir/opcode.hpp"

#include <array>

#include "common/error.hpp"

namespace gpurf::ir {

namespace {

constexpr OpcodeInfo kInfo[] = {
    // name      srcs dst  dpred unit               mem    term
    {"add",      2, true,  false, UnitClass::SPU,   false, false},
    {"sub",      2, true,  false, UnitClass::SPU,   false, false},
    {"mul",      2, true,  false, UnitClass::SPU,   false, false},
    {"mad",      3, true,  false, UnitClass::SPU,   false, false},
    {"div",      2, true,  false, UnitClass::SFU,   false, false},
    {"rem",      2, true,  false, UnitClass::SFU,   false, false},
    {"min",      2, true,  false, UnitClass::SPU,   false, false},
    {"max",      2, true,  false, UnitClass::SPU,   false, false},
    {"abs",      1, true,  false, UnitClass::SPU,   false, false},
    {"neg",      1, true,  false, UnitClass::SPU,   false, false},
    {"and",      2, true,  false, UnitClass::SPU,   false, false},
    {"or",       2, true,  false, UnitClass::SPU,   false, false},
    {"xor",      2, true,  false, UnitClass::SPU,   false, false},
    {"not",      1, true,  false, UnitClass::SPU,   false, false},
    {"shl",      2, true,  false, UnitClass::SPU,   false, false},
    {"shr",      2, true,  false, UnitClass::SPU,   false, false},
    {"sin",      1, true,  false, UnitClass::SFU,   false, false},
    {"cos",      1, true,  false, UnitClass::SFU,   false, false},
    {"ex2",      1, true,  false, UnitClass::SFU,   false, false},
    {"lg2",      1, true,  false, UnitClass::SFU,   false, false},
    {"sqrt",     1, true,  false, UnitClass::SFU,   false, false},
    {"rsqrt",    1, true,  false, UnitClass::SFU,   false, false},
    {"rcp",      1, true,  false, UnitClass::SFU,   false, false},
    {"cvt",      1, true,  false, UnitClass::SPU,   false, false},
    {"mov",      1, true,  false, UnitClass::SPU,   false, false},
    {"selp",     3, true,  false, UnitClass::SPU,   false, false},
    {"setp",     2, true,  true,  UnitClass::SPU,   false, false},
    {"ld.global",  1, true,  false, UnitClass::LDST, true,  false},
    {"st.global",  2, false, false, UnitClass::LDST, true,  false},
    {"ld.shared",  1, true,  false, UnitClass::LDST, true,  false},
    {"st.shared",  2, false, false, UnitClass::LDST, true,  false},
    {"tex.2d",     2, true,  false, UnitClass::LDST, true,  false},
    {"bra",      0, false, false, UnitClass::CONTROL, false, true},
    {"ret",      0, false, false, UnitClass::CONTROL, false, true},
    {"bar.sync", 0, false, false, UnitClass::CONTROL, false, false},
};

static_assert(sizeof(kInfo) / sizeof(kInfo[0]) == kNumOpcodes,
              "opcode info table out of sync with Opcode enum");

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  const auto idx = static_cast<size_t>(op);
  GPURF_ASSERT(idx < static_cast<size_t>(kNumOpcodes), "bad opcode " << idx);
  return kInfo[idx];
}

std::string_view cmp_name(CmpOp c) {
  switch (c) {
    case CmpOp::EQ: return "eq";
    case CmpOp::NE: return "ne";
    case CmpOp::LT: return "lt";
    case CmpOp::LE: return "le";
    case CmpOp::GT: return "gt";
    case CmpOp::GE: return "ge";
  }
  return "?";
}

}  // namespace gpurf::ir
