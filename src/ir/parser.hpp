#pragma once
// Assembler for the PTX-like virtual ISA.
//
// Grammar (line oriented; `//` and `;` start comments):
//
//   .kernel NAME
//   .param  (s32|u32|f32) NAME [range(LO,HI)]
//   .reg    (s32|u32|f32|pred) %NAME          -- one register
//   .reg    (s32|u32|f32|pred) %NAME<N>       -- %NAME0 .. %NAME(N-1)
//   .shared BYTES
//   .tex    NAME                              -- slots in declaration order
//
//   LABEL:
//   [@%p | @!%p] MNEMONIC OPERAND, OPERAND, ...
//
// Mnemonics carry PTX-style suffixes:
//   add.s32 / add.u32 / add.f32, setp.lt.s32, cvt.f32.s32,
//   ld.global.f32 %d, [%addr+OFF], st.shared.u32 [%addr], %v,
//   tex.2d.f32 %d, TEXNAME, %u, %v, selp.f32 %d, %a, %b, %p,
//   bra LABEL, ret, bar.sync
//
// Memory offsets and addresses are measured in 32-bit words.

#include <string>
#include <string_view>

#include "ir/kernel.hpp"

namespace gpurf::ir {

/// Assemble `text` into a Kernel.  Throws gpurf::Error with a line-numbered
/// message on malformed input.  The result is verified structurally (labels
/// resolved, register kinds consistent); full type checking is `verify()`.
Kernel parse_kernel(std::string_view text);

}  // namespace gpurf::ir
