#include "serve/fleet.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "workloads/pipeline.hpp"

namespace gpurf::serve {

namespace {

/// FNV-1a over bytes — the same construction kernel_cache_fingerprint
/// uses, here for routing names that match no bundled workload.
uint64_t fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

EngineFleet::EngineFleet(const EngineOptions& base, int shards) {
  const int n = std::max(1, shards);
  owned_.reserve(static_cast<size_t>(n));
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EngineOptions o = base;
    o.job_id_start = static_cast<uint64_t>(i) + 1;
    o.job_id_stride = static_cast<uint64_t>(n);
    owned_.push_back(std::make_unique<Engine>(std::move(o)));
    shards_.push_back(owned_.back().get());
  }
  build_ring();
}

EngineFleet::EngineFleet(Engine& engine) {
  shards_.push_back(&engine);
  build_ring();
}

void EngineFleet::build_ring() {
  common::MutexLock lock(mu_);
  // Ring points are a deterministic splitmix64 stream per shard, so every
  // process with the same shard count computes the same ring — routing is
  // stable across daemon restarts (what makes the shared disk cache land
  // warm on the owning shard).
  ring_.reserve(shards_.size() * kVirtualNodes);
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    uint64_t state = 0x9e3779b97f4a7c15ull ^ (static_cast<uint64_t>(s) + 1);
    for (int v = 0; v < kVirtualNodes; ++v)
      ring_.emplace_back(splitmix64(state), s);
  }
  std::sort(ring_.begin(), ring_.end());

  for (const std::string& name : shards_[0]->workload_names()) {
    auto w = shards_[0]->workload(name);
    if (w.ok())
      fingerprints_[name] = workloads::kernel_cache_fingerprint(**w);
  }
}

int EngineFleet::shard_for_workload(std::string_view name) const {
  if (shards_.size() == 1) return 0;
  common::MutexLock lock(mu_);
  uint64_t key;
  auto it = fingerprints_.find(std::string(name));
  key = it != fingerprints_.end() ? it->second : fnv1a(name);
  // Mix the key before the ring walk: fingerprints are FNV outputs whose
  // low bits correlate across similar kernels, and the ring points are
  // splitmix64 outputs — one extra splitmix round puts the key in the
  // same distribution.
  uint64_t state = key;
  key = splitmix64(state);
  auto pos = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(key, -1));
  if (pos == ring_.end()) pos = ring_.begin();
  return pos->second;
}

MetricsSnapshot EngineFleet::metrics_snapshot() const {
  MetricsSnapshot total;
  for (const Engine* e : shards_) total += e->metrics_snapshot();
  return total;
}

Status EngineFleet::drain_all(int64_t budget_ms) {
  Status first;
  for (Engine* e : shards_) {
    Status st = e->drain(budget_ms);
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

}  // namespace gpurf::serve
