#pragma once
// gpurf::serve::EngineFleet — N Engines inside one daemon with
// kernel-fingerprint-affine routing (ISSUE 8 tentpole).
//
// The paper's pipeline is cache-friendly per kernel: tune results memoize
// by workload, kernel analyses memoize by fingerprint, and the disk cache
// keys on kernel_cache_fingerprint.  A fleet exploits that by routing
// every request for the same kernel to the same Engine shard, so each
// shard's memo/analysis caches stay hot for its stable subset of kernels
// instead of every shard cold-starting every kernel.
//
// Routing is a consistent-hash ring over workload fingerprints
// (kVirtualNodes splitmix64-derived points per shard): adding or removing
// a shard moves only ~1/N of the fingerprint space, which is the
// "graceful rebalance" story — best-effort, because a moved kernel merely
// re-tunes on its new shard (the disk cache is shared, so even that is
// usually a load, not a recompute).  Nothing is migrated at runtime;
// resizing means restarting the daemon with a different --engines.
//
// Job-id space: shard i of N constructs its Engine with
// job_id_start = i+1, job_id_stride = N, so ids are disjoint residue
// classes and any job-addressed op (status/wait/cancel/watch) routes
// statelessly via shard_for_job = (id-1) % N.  Campaign children inherit
// their parent Engine and therefore its residue class.
//
// The fleet can also wrap a caller-owned single Engine (non-owning mode):
// that keeps the Server's historical Server(Engine&) constructor — and
// every in-process test built on it — working unchanged.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/engine.hpp"
#include "api/metrics.hpp"
#include "common/thread_annotations.hpp"

namespace gpurf::serve {

class EngineFleet {
 public:
  /// Owning fleet: `shards` Engines built from `base` (job-id
  /// partitioning applied per shard; everything else — threads, caches,
  /// GPU model — identical).  shards < 1 is clamped to 1.
  explicit EngineFleet(const EngineOptions& base, int shards);

  /// Non-owning single-shard fleet around a caller-owned Engine (the
  /// legacy Server(Engine&) path).  The Engine must outlive the fleet.
  explicit EngineFleet(Engine& engine);

  EngineFleet(const EngineFleet&) = delete;
  EngineFleet& operator=(const EngineFleet&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Engine& shard(int i) { return *shards_[static_cast<size_t>(i)]; }

  /// Shard index owning a workload, by consistent hash of its kernel
  /// fingerprint.  Unknown names hash by name so the request still lands
  /// deterministically on one shard (which reports NotFound).
  int shard_for_workload(std::string_view name) const;

  /// Shard index owning a job id (residue-class routing).  Any id maps to
  /// some shard; a never-issued id yields NotFound from that shard.
  int shard_for_job(uint64_t job_id) const {
    return static_cast<int>((job_id - 1) % shards_.size());
  }

  /// Fleet-wide metrics: per-shard snapshots summed.
  MetricsSnapshot metrics_snapshot() const;

  /// Drain every shard (gpurfd --drain-ms).  Returns the first non-OK
  /// status, after draining all shards regardless.
  Status drain_all(int64_t budget_ms);

 private:
  void build_ring();

  static constexpr int kVirtualNodes = 64;  ///< ring points per shard

  std::vector<std::unique_ptr<Engine>> owned_;
  std::vector<Engine*> shards_;
  /// Guards the routing table.  Today the table is built once (from the
  /// constructors) and only read afterwards, but the capability annotation
  /// keeps the invariant checkable: any future runtime rebalance path must
  /// take mu_ or the CI clang job's -Werror=thread-safety rejects it.
  mutable common::Mutex mu_;
  /// Sorted ring of (point, shard) pairs.
  std::vector<std::pair<uint64_t, int>> ring_ GPURF_GUARDED_BY(mu_);
  /// Workload name -> kernel fingerprint, from shard 0's registry (all
  /// shards carry identical registries).
  std::unordered_map<std::string, uint64_t> fingerprints_
      GPURF_GUARDED_BY(mu_);
};

}  // namespace gpurf::serve
