#pragma once
// Permanent stuck-at fault model for the compressed register file (PR 6,
// ROADMAP item 4a).
//
// RRCD (see PAPERS.md) observes that the slices freed by static compression
// are exactly the spare capacity needed to tolerate permanent register-file
// faults: an architectural register can simply be *redirected* away from a
// broken slice into freed space, at the cost of one extra remap stage on
// the operand path.  This header models the fault population itself; the
// redirection policy lives in the slice allocator (alloc/slice_alloc.hpp)
// and the latency penalty in the timing simulator (sim/config.hpp).
//
// Granularity: one fault disables one 4-bit slice of one register-file row
// — site (bank, row, slice).  The compressed file is addressed through the
// 256-entry indirection table, so the default geometry is 16 banks x 16
// rows x 8 slices = 2048 slice sites, and a fault at (bank, row, slice)
// disables slice `slice` of compressed physical register
// `row * banks + bank` in every warp's copy (conservative: the per-warp
// copies of a row share column drivers, so a defect takes out the column
// for all of them).  The uncompressed spill store the allocator degrades
// into is a separate structure and deliberately outside this map.
//
// Determinism: generate(seed, density) draws a fixed count of distinct
// sites with a partial Fisher-Yates shuffle over a Pcg32 stream — the same
// seed yields the same map on every platform, thread count and shard
// count, which is what makes fault-campaign sweeps reproducible Jobs.

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hpp"

namespace gpurf::rf {

/// One permanently faulty 4-bit slice site.
struct FaultSite {
  uint32_t bank = 0;
  uint32_t row = 0;
  uint8_t slice = 0;

  bool operator==(const FaultSite&) const = default;
};

class FaultMap {
 public:
  /// Default geometry: the 256 physical registers reachable through the
  /// indirection table (Fig. 2), interleaved over the 16 banks.
  static constexpr uint32_t kDefaultBanks = 16;
  static constexpr uint32_t kDefaultRowsPerBank = 16;

  FaultMap() : FaultMap(kDefaultBanks, kDefaultRowsPerBank) {}
  FaultMap(uint32_t banks, uint32_t rows_per_bank);

  /// Deterministic seeded map: round(density * total_slice_sites) distinct
  /// faulty sites sampled uniformly without replacement.  `density` is
  /// clamped to [0, 1]; density 0 yields an empty (fault-free) map.
  static FaultMap generate(uint64_t seed, double density,
                           uint32_t banks = kDefaultBanks,
                           uint32_t rows_per_bank = kDefaultRowsPerBank);

  uint32_t banks() const { return banks_; }
  uint32_t rows_per_bank() const { return rows_; }
  uint64_t seed() const { return seed_; }
  uint64_t total_slice_sites() const {
    return uint64_t(banks_) * rows_ * 8;
  }

  size_t num_faults() const { return faults_.size(); }
  bool empty() const { return faults_.empty(); }

  /// Actual fault density: faulty sites / total sites.
  double density() const {
    return total_slice_sites() == 0
               ? 0.0
               : double(faults_.size()) / double(total_slice_sites());
  }

  /// Mark one site faulty (idempotent).  Out-of-geometry sites are
  /// rejected with gpurf::Error via GPURF_CHECK.
  void add_fault(uint32_t bank, uint32_t row, uint8_t slice);

  bool is_faulty(uint32_t bank, uint32_t row, uint8_t slice) const;

  /// Faulty-slice mask of one compressed physical register (bank =
  /// phys_reg % banks, row = phys_reg / banks).  Registers beyond the
  /// geometry are reported fault-free (they cannot exist in hardware the
  /// map describes, and the spill store is outside the map by design).
  uint8_t faulty_mask(uint32_t phys_reg) const {
    return phys_reg < masks_.size() ? masks_[phys_reg] : 0;
  }

  /// Sites in canonical (bank, row, slice) order.
  const std::vector<FaultSite>& faults() const { return faults_; }

  /// Serialization: {"version":1,"banks":B,"rows":R,"seed":S,
  /// "faults":[[bank,row,slice],...]}.  from_json accepts exactly what
  /// to_json emits and rejects malformed or out-of-geometry input with
  /// InvalidArgument.
  std::string to_json() const;
  static StatusOr<FaultMap> from_json(const std::string& text);

  bool operator==(const FaultMap& o) const {
    return banks_ == o.banks_ && rows_ == o.rows_ && faults_ == o.faults_;
  }

 private:
  uint32_t banks_ = kDefaultBanks;
  uint32_t rows_ = kDefaultRowsPerBank;
  uint64_t seed_ = 0;
  std::vector<FaultSite> faults_;  ///< canonical order, no duplicates
  std::vector<uint8_t> masks_;     ///< per-phys-reg faulty-slice mask
};

}  // namespace gpurf::rf
