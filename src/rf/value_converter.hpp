#pragma once
// Value Converter (paper §3.2.5).
//
// Expands a low-precision float operand (LSB-aligned bits in a Table-3
// format, as produced by the Value Extractor) to IEEE binary32 before it is
// forwarded to the execution units.  The hardware provides six parallel
// Warp Value Converters — enough for two dual-issued instructions with up
// to three float sources per cycle (§3.2.5) — each one a single-cycle
// gate network (§3.2.8: within the 0.71 ns Fermi cycle at 45 nm).

#include <array>
#include <cstdint>

#include "fp/format.hpp"

namespace gpurf::rf {

/// Throughput of the converter block: warp conversions per cycle.
constexpr int kWarpConvertersPerSM = 6;

/// One thread-level conversion: narrow-format bits -> binary32 bits.
uint32_t tvc_convert(uint32_t narrow_bits, const gpurf::fp::FloatFormat& fmt);

/// One warp-level conversion (32 threads in parallel).
std::array<uint32_t, 32> warp_convert(const std::array<uint32_t, 32>& in,
                                      const gpurf::fp::FloatFormat& fmt);

}  // namespace gpurf::rf
