#include "rf/value_truncator.hpp"

#include <bit>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace gpurf::rf {

TruncateResult tvt_truncate(uint32_t value32, const TruncateSpec& spec) {
  GPURF_ASSERT(std::popcount(spec.mask0) + std::popcount(spec.mask1) ==
                   spec.data_slices,
               "truncate spec: masks do not cover the operand");

  // Step 1: narrow floats are converted down to their storage format; the
  // encoded bits are LSB-aligned in the data slices.
  uint32_t payload = value32;
  if (spec.is_float && !spec.float_fmt.is_fp32())
    payload = gpurf::fp::encode(gpurf::bits_float(value32), spec.float_fmt);

  // Step 2: scatter data slices into their physical positions.
  TruncateResult r;
  const int first1 = std::popcount(spec.mask0);
  r.data0 = scatter_slices(payload, spec.mask0, 0);
  r.bitmask0 = slice_mask_to_bits(spec.mask0);
  if (spec.mask1 != 0) {
    r.data1 = scatter_slices(payload, spec.mask1, first1);
    r.bitmask1 = slice_mask_to_bits(spec.mask1);
  }
  return r;
}

std::array<TruncateResult, 32> warp_truncate(
    const std::array<uint32_t, 32>& values, const TruncateSpec& spec) {
  // Warp-wide word-level scatter.  The writeback control (masks, format)
  // is uniform across lanes, so everything spec-derived — the spec sanity
  // check, the bitline-enable masks and the slice shift routing — is
  // computed once per warp; the per-lane work is the float down-convert
  // (lane data dependent) plus one shift-mask-or per data slice.
  GPURF_ASSERT(std::popcount(spec.mask0) + std::popcount(spec.mask1) ==
                   spec.data_slices,
               "truncate spec: masks do not cover the operand");

  const bool convert = spec.is_float && !spec.float_fmt.is_fp32();
  std::array<uint32_t, 32> payload;
  for (int l = 0; l < 32; ++l)
    payload[l] = convert
                     ? gpurf::fp::encode(gpurf::bits_float(values[l]),
                                         spec.float_fmt)
                     : values[l];

  ShiftPlan plan0;
  plan0.build_scatter(spec.mask0, 0);
  const uint32_t bitmask0 = slice_mask_to_bits(spec.mask0);

  std::array<TruncateResult, 32> out{};
  for (int p = 0; p < plan0.count; ++p) {
    const int from = plan0.from[p], to = plan0.to[p];
    for (int l = 0; l < 32; ++l)
      out[l].data0 |= ((payload[l] >> from) & 0xfu) << to;
  }
  for (int l = 0; l < 32; ++l) out[l].bitmask0 = bitmask0;

  if (spec.mask1 != 0) {
    ShiftPlan plan1;
    plan1.build_scatter(spec.mask1, std::popcount(spec.mask0));
    const uint32_t bitmask1 = slice_mask_to_bits(spec.mask1);
    for (int p = 0; p < plan1.count; ++p) {
      const int from = plan1.from[p], to = plan1.to[p];
      for (int l = 0; l < 32; ++l)
        out[l].data1 |= ((payload[l] >> from) & 0xfu) << to;
    }
    for (int l = 0; l < 32; ++l) out[l].bitmask1 = bitmask1;
  }
  return out;
}

}  // namespace gpurf::rf
