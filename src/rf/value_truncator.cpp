#include "rf/value_truncator.hpp"

#include <bit>

#include "common/bitutil.hpp"
#include "common/error.hpp"

namespace gpurf::rf {

TruncateResult tvt_truncate(uint32_t value32, const TruncateSpec& spec) {
  GPURF_ASSERT(std::popcount(spec.mask0) + std::popcount(spec.mask1) ==
                   spec.data_slices,
               "truncate spec: masks do not cover the operand");

  // Step 1: narrow floats are converted down to their storage format; the
  // encoded bits are LSB-aligned in the data slices.
  uint32_t payload = value32;
  if (spec.is_float && !spec.float_fmt.is_fp32())
    payload = gpurf::fp::encode(gpurf::bits_float(value32), spec.float_fmt);

  // Step 2: scatter data slices into their physical positions.
  TruncateResult r;
  const int first1 = std::popcount(spec.mask0);
  r.data0 = scatter_slices(payload, spec.mask0, 0);
  r.bitmask0 = slice_mask_to_bits(spec.mask0);
  if (spec.mask1 != 0) {
    r.data1 = scatter_slices(payload, spec.mask1, first1);
    r.bitmask1 = slice_mask_to_bits(spec.mask1);
  }
  return r;
}

std::array<TruncateResult, 32> warp_truncate(
    const std::array<uint32_t, 32>& values, const TruncateSpec& spec) {
  std::array<TruncateResult, 32> out;
  for (int l = 0; l < 32; ++l) out[l] = tvt_truncate(values[l], spec);
  return out;
}

}  // namespace gpurf::rf
