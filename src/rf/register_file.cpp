#include "rf/register_file.hpp"

namespace gpurf::rf {

BankedRegisterFile::BankedRegisterFile(const RegisterFileGeom& g)
    : geom_(g), storage_(static_cast<size_t>(g.total_warp_registers())) {
  for (auto& r : storage_) r.fill(0);
}

const WarpRegister& BankedRegisterFile::read(uint32_t index) const {
  GPURF_ASSERT(index < storage_.size(), "warp register " << index);
  return storage_[index];
}

void BankedRegisterFile::write(uint32_t index, const WarpRegister& value) {
  GPURF_ASSERT(index < storage_.size(), "warp register " << index);
  storage_[index] = value;
}

void BankedRegisterFile::write_masked(uint32_t index,
                                      const WarpRegister& value,
                                      uint32_t bitmask) {
  GPURF_ASSERT(index < storage_.size(), "warp register " << index);
  auto& reg = storage_[index];
  for (int l = 0; l < 32; ++l)
    reg[l] = (reg[l] & ~bitmask) | (value[l] & bitmask);
}

}  // namespace gpurf::rf
