#include "rf/compressed_rf.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "rf/value_converter.hpp"
#include "rf/value_extractor.hpp"
#include "rf/value_truncator.hpp"

namespace gpurf::rf {

using gpurf::alloc::IndirectionEntry;

CompressedRegisterFile::CompressedRegisterFile(
    const std::vector<IndirectionEntry>& table, uint32_t num_phys_regs,
    uint32_t warps)
    : table_(table),
      num_phys_(num_phys_regs),
      storage_(RegisterFileGeom{
          16,
          static_cast<int>((num_phys_regs * warps + 15) / 16) + 1, 1024}) {
  src_table_.load(table_);
  dst_table_.load(table_);  // identical content, separate structure (§3.2.2)
  for (const IndirectionEntry& e : table_)
    if (e.valid && e.spilled)
      num_spill_ = std::max(num_spill_, e.r0.phys_reg + 1);
  spill_.assign(size_t(num_spill_) * warps, WarpRegister{});
}

size_t CompressedRegisterFile::spill_index(uint32_t warp,
                                           uint32_t slot) const {
  GPURF_ASSERT(slot < num_spill_, "spill slot " << slot << " out of range");
  return size_t(warp) * num_spill_ + slot;
}

void CompressedRegisterFile::write_operand(uint32_t warp, uint32_t arch_reg,
                                           const WarpRegister& values) {
  const IndirectionEntry& e = table_.at(arch_reg);
  GPURF_ASSERT(e.valid, "write to unallocated register " << arch_reg);
  if (e.spilled) {
    // Uncompressed spill store: full-width write, no truncation.
    spill_[spill_index(warp, e.r0.phys_reg)] = values;
    ++stats_.spill_accesses;
    return;
  }
  // Destination indirection lookup (content equals the packed entry).
  (void)dst_table_.lookup(arch_reg);

  TruncateSpec spec;
  spec.mask0 = e.r0.mask;
  spec.mask1 = e.split ? e.r1.mask : 0;
  spec.data_slices = e.slices;
  spec.is_float = e.is_float;
  if (e.is_float) spec.float_fmt = gpurf::fp::format_for_bits(e.float_bits);

  const auto pieces = warp_truncate(values, spec);

  WarpRegister img0{}, img1{};
  for (int l = 0; l < 32; ++l) {
    img0[l] = pieces[l].data0;
    img1[l] = pieces[l].data1;
  }
  storage_.write_masked(phys_index(warp, e.r0.phys_reg), img0,
                        pieces[0].bitmask0);
  if (e.split)
    storage_.write_masked(phys_index(warp, e.r1.phys_reg), img1,
                          pieces[0].bitmask1);
}

WarpRegister CompressedRegisterFile::read_operand(uint32_t warp,
                                                  uint32_t arch_reg) {
  const IndirectionEntry& e = table_.at(arch_reg);
  GPURF_ASSERT(e.valid, "read of unallocated register " << arch_reg);
  if (e.spilled) {
    // Uncompressed spill store: full-width read, no extraction/conversion.
    ++stats_.spill_accesses;
    return spill_[spill_index(warp, e.r0.phys_reg)];
  }
  const PackedEntry& packed = src_table_.lookup(arch_reg);
  GPURF_ASSERT(packed.m0() == e.r0.mask, "table content mismatch");

  // Fetch + extract piece 0.
  ExtractSpec s0;
  s0.mask = e.r0.mask;
  s0.first_slice = 0;
  s0.data_slices = e.slices;
  s0.is_signed = e.is_signed;
  const WarpRegister& f0 = storage_.read(phys_index(warp, e.r0.phys_reg));
  WarpRegister merged = warp_extract_piece(f0, s0);
  ++stats_.fetches;

  if (e.split) {
    ExtractSpec s1 = s0;
    s1.mask = e.r1.mask;
    s1.first_slice = static_cast<uint8_t>(std::popcount(e.r0.mask));
    const WarpRegister& f1 = storage_.read(phys_index(warp, e.r1.phys_reg));
    const WarpRegister part = warp_extract_piece(f1, s1);
    // 1024-bit OR gate in the collector unit (§3.2.4).
    for (int l = 0; l < 32; ++l) merged[l] |= part[l];
    ++stats_.fetches;
    ++stats_.double_fetches;
  }

  // Padding / sign extension (warp-wide: uniform fill mask, per-lane sign
  // mux select).
  merged = warp_finalize(merged, s0);

  // Narrow floats pass through the Value Converter.
  if (e.is_float && e.float_bits != 32) {
    merged = warp_convert(merged, gpurf::fp::format_for_bits(e.float_bits));
    ++stats_.conversions;
  }
  return merged;
}

}  // namespace gpurf::rf
