#include "rf/area_model.hpp"

namespace gpurf::rf {

namespace {
// §6.4 constants.
constexpr long long kAoiTransistors = 6;
constexpr long long kMuxesPerTve = 8;          // one 9:1 mux per output slice
constexpr long long kBitsPerMux = 4;           // nibble-wide
constexpr long long kAoiCellsPerMuxBit = 8;    // 9:1 mux bit ~= 8 AOI cells
constexpr long long kPadMuxTransistors = 6 * 4;  // 4-bit 2:1 mux
constexpr long long kTvcTransistors = 1300;    // synthesised converter
constexpr long long kTveEquivalentInTvt = 2048;  // §6.4's TVT estimate
constexpr long long kSramCell = 6;
constexpr long long kCuOrBits = 1024;
constexpr long long kCuExtraBitsPerOperand = 35;
constexpr long long kCuOperands = 3;
}  // namespace

AreaConfig AreaConfig::fermi_gtx480() {
  AreaConfig c;
  c.name = "Fermi GTX 480";
  c.rf_banks = 16;
  c.warp_converters = 6;
  c.warp_truncators = 3;
  c.collector_units = 16;
  c.rf_instances_per_sm = 1;
  c.sms = 15;
  c.chip_transistors = 3.1e9;
  return c;
}

AreaConfig AreaConfig::volta_v100() {
  AreaConfig c;
  c.name = "Volta V100";
  // One register file per processing block; the number of banks scales
  // with the per-scheduler issue width (§7): half the Fermi extractors.
  c.rf_banks = 8;
  c.warp_converters = 6;
  c.warp_truncators = 3;
  c.collector_units = 16;
  c.rf_instances_per_sm = 4;
  c.sms = 84;
  c.chip_transistors = 21e9;
  return c;
}

AreaBreakdown compute_area(const AreaConfig& cfg) {
  AreaBreakdown a;
  a.tve = kMuxesPerTve * kBitsPerMux * kAoiCellsPerMuxBit * kAoiTransistors +
          kPadMuxTransistors;  // 1536 + 24
  a.warp_extractor = 32 * a.tve;
  a.extractors_total = cfg.rf_banks * a.warp_extractor;

  a.tvc = kTvcTransistors;
  a.converters_total = cfg.warp_converters * 32 * a.tvc;

  a.indirection_table = cfg.indirection_entries * 32 * kSramCell;
  a.tables_total = cfg.indirection_tables * a.indirection_table;

  a.tvt = kTvcTransistors + 2 * kTveEquivalentInTvt;  // 5396
  a.truncators_total = cfg.warp_truncators * 32 * a.tvt;

  a.cu_extension = kCuOrBits * kAoiTransistors +
                   kCuExtraBitsPerOperand * kCuOperands * kAoiTransistors;
  a.cus_total = cfg.collector_units * a.cu_extension;

  a.per_rf_instance = a.extractors_total + a.converters_total +
                      a.tables_total + a.truncators_total + a.cus_total;
  a.per_sm = a.per_rf_instance * cfg.rf_instances_per_sm;
  a.chip_total = a.per_sm * cfg.sms;
  a.fraction_of_chip =
      static_cast<double>(a.chip_total) / cfg.chip_transistors;
  return a;
}

}  // namespace gpurf::rf
