#include "rf/value_converter.hpp"

#include "common/bitutil.hpp"

namespace gpurf::rf {

uint32_t tvc_convert(uint32_t narrow_bits, const gpurf::fp::FloatFormat& fmt) {
  return gpurf::float_bits(gpurf::fp::decode(narrow_bits, fmt));
}

std::array<uint32_t, 32> warp_convert(const std::array<uint32_t, 32>& in,
                                      const gpurf::fp::FloatFormat& fmt) {
  std::array<uint32_t, 32> out;
  for (int l = 0; l < 32; ++l) out[l] = tvc_convert(in[l], fmt);
  return out;
}

}  // namespace gpurf::rf
