#pragma once
// End-to-end functional model of the compressed register file: the full
// §3.2 read path (source indirection lookup -> banked fetch(es) -> Value
// Extractor -> CU OR-merge -> Value Converter) and write path (destination
// indirection lookup -> Value Truncator -> slice-masked writeback).
//
// This model is the bit-accurate reference used by the integration tests:
// storing a value through write_operand() and reading it back through
// read_operand() must reproduce the value exactly for integers inside their
// analysed range, and quantized through its Table-3 format for floats —
// i.e. exactly what exec::PrecisionMap applies in the interpreter.

#include <cstdint>
#include <optional>
#include <vector>

#include "alloc/slice_alloc.hpp"
#include "fp/format.hpp"
#include "rf/indirection_table.hpp"
#include "rf/register_file.hpp"

namespace gpurf::rf {

struct ReadStats {
  uint64_t fetches = 0;        ///< physical register fetches
  uint64_t double_fetches = 0; ///< reads needing two fetches (split operand)
  uint64_t conversions = 0;    ///< Value Converter activations
  uint64_t spill_accesses = 0; ///< full-width spill-store reads/writes
};

class CompressedRegisterFile {
 public:
  /// `warps` per-SM warp contexts; each warp gets its own copy of the
  /// kernel's physical register set.
  CompressedRegisterFile(
      const std::vector<gpurf::alloc::IndirectionEntry>& table,
      uint32_t num_phys_regs, uint32_t warps);

  /// Write one warp-wide architectural register (32 binary32/int values).
  void write_operand(uint32_t warp, uint32_t arch_reg,
                     const WarpRegister& values);

  /// Read one warp-wide architectural register back through the full
  /// extract/convert path.
  WarpRegister read_operand(uint32_t warp, uint32_t arch_reg);

  const ReadStats& stats() const { return stats_; }
  const gpurf::alloc::IndirectionEntry& entry(uint32_t arch_reg) const {
    return table_.at(arch_reg);
  }

 private:
  uint32_t phys_index(uint32_t warp, uint32_t phys_reg) const {
    return warp * num_phys_ + phys_reg;
  }
  size_t spill_index(uint32_t warp, uint32_t slot) const;

  std::vector<gpurf::alloc::IndirectionEntry> table_;
  IndirectionTable src_table_;   ///< read path (§3.2.2)
  IndirectionTable dst_table_;   ///< write path
  uint32_t num_phys_;
  BankedRegisterFile storage_;
  // Uncompressed spill store for entries the allocator could not place in
  // the compressed file (extreme fault densities): full 32-bit words,
  // bypassing the indirection tables, truncator, extractor and converter.
  uint32_t num_spill_ = 0;
  std::vector<WarpRegister> spill_;
  ReadStats stats_;
};

}  // namespace gpurf::rf
