#pragma once
// Slice-placement primitives shared by the Value Extractor and the Value
// Truncator (paper §3.2.3 / §3.2.6).
//
// Convention (fixed by the register allocator, see alloc/slice_alloc.hpp):
// an operand with n data slices numbers them 0..n-1 from the LSB.  Data
// slices map in order onto the set bits of mask m0 (ascending bit position)
// within physical register r0, then onto the set bits of m1 within r1.

#include <array>
#include <bit>
#include <cstdint>
#include <utility>

#include "common/error.hpp"

namespace gpurf::rf {

constexpr int kSlicesPerReg = 8;
constexpr int kSliceBits = 4;

/// Extract the 4-bit slice `s` of `word`.
inline uint32_t get_slice(uint32_t word, int s) {
  GPURF_ASSERT(s >= 0 && s < kSlicesPerReg, "slice index " << s);
  return (word >> (s * kSliceBits)) & 0xfu;
}

/// Return `word` with slice `s` replaced by the low nibble of `v`.
inline uint32_t set_slice(uint32_t word, int s, uint32_t v) {
  GPURF_ASSERT(s >= 0 && s < kSlicesPerReg, "slice index " << s);
  const uint32_t sh = static_cast<uint32_t>(s * kSliceBits);
  return (word & ~(0xfu << sh)) | ((v & 0xfu) << sh);
}

/// Expand an 8-bit slice mask into a 32-bit bit mask (bitline enables).
inline uint32_t slice_mask_to_bits(uint8_t mask) {
  uint32_t out = 0;
  for (int s = 0; s < kSlicesPerReg; ++s)
    if (mask & (1u << s)) out |= 0xfu << (s * kSliceBits);
  return out;
}

/// Scatter: place data slices [first_data_slice ...) of `value` into the
/// set-bit positions of `mask`, producing the physical-register image.
/// Returns only the written slices (other slices zero); pair with
/// slice_mask_to_bits(mask) for a masked write.
inline uint32_t scatter_slices(uint32_t value, uint8_t mask,
                               int first_data_slice) {
  uint32_t out = 0;
  int j = first_data_slice;
  for (int s = 0; s < kSlicesPerReg; ++s) {
    if (mask & (1u << s)) {
      out = set_slice(out, s, get_slice(value, j));
      ++j;
    }
  }
  return out;
}

/// Gather: collect the slices of `data` selected by `mask` (ascending) and
/// deposit them into the output starting at data-slice `first_data_slice`.
/// This is one TVE pass over one fetched physical register (Fig. 3).
inline uint32_t gather_slices(uint32_t data, uint8_t mask,
                              int first_data_slice) {
  uint32_t out = 0;
  int j = first_data_slice;
  for (int s = 0; s < kSlicesPerReg; ++s) {
    if (mask & (1u << s)) {
      out = set_slice(out, j, get_slice(data, s));
      ++j;
    }
  }
  return out;
}

/// Precompiled slice routing for warp-wide paths: the (mask, first_slice)
/// control of an operand is uniform across a warp, so the per-slice shift
/// distances are resolved once per warp access and each pair then costs a
/// single shift-mask-or per lane.  `build_gather` routes physical -> data
/// positions (Value Extractor); `build_scatter` routes data -> physical
/// positions (Value Truncator).  Shifts are in bits.
struct ShiftPlan {
  int count = 0;
  std::array<int8_t, kSlicesPerReg> from{};
  std::array<int8_t, kSlicesPerReg> to{};

  void build_gather(uint8_t mask, int first_data_slice) {
    GPURF_ASSERT(first_data_slice >= 0 &&
                     first_data_slice + std::popcount(mask) <= kSlicesPerReg,
                 "slice routing escapes the register: first "
                     << first_data_slice << " mask " << int(mask));
    count = 0;
    int j = first_data_slice;
    for (int s = 0; s < kSlicesPerReg; ++s) {
      if (!(mask & (1u << s))) continue;
      from[count] = static_cast<int8_t>(s * kSliceBits);
      to[count] = static_cast<int8_t>(j * kSliceBits);
      ++count;
      ++j;
    }
  }

  void build_scatter(uint8_t mask, int first_data_slice) {
    build_gather(mask, first_data_slice);
    for (int p = 0; p < count; ++p) std::swap(from[p], to[p]);
  }
};

}  // namespace gpurf::rf
