#include "rf/indirection_table.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpurf::rf {

PackedEntry PackedEntry::pack(const gpurf::alloc::IndirectionEntry& e) {
  GPURF_CHECK(e.r0.phys_reg < 256 && (!e.split || e.r1.phys_reg < 256),
              "physical register id exceeds 8-bit entry field");
  PackedEntry p;
  p.raw = (e.r0.phys_reg << 24) | (uint32_t(e.r0.mask) << 16) |
          ((e.split ? e.r1.phys_reg : 0u) << 8) |
          uint32_t(e.split ? e.r1.mask : 0u);
  return p;
}

IndirectionTable::IndirectionTable() = default;

void IndirectionTable::load(
    const std::vector<gpurf::alloc::IndirectionEntry>& table) {
  GPURF_CHECK(table.size() <= kIndirectionEntries,
              "kernel uses more than 256 architectural registers");
  entries_.fill(PackedEntry{});
  // Spilled registers live in the uncompressed spill store and are not
  // addressed through the table (their slot ids are a separate space).
  for (size_t i = 0; i < table.size(); ++i)
    if (table[i].valid && !table[i].spilled)
      entries_[i] = PackedEntry::pack(table[i]);
}

const PackedEntry& IndirectionTable::lookup(uint32_t arch_reg) const {
  GPURF_ASSERT(arch_reg < kIndirectionEntries, "arch reg out of range");
  return entries_[arch_reg];
}

int IndirectionTable::cycles_for(const std::vector<uint32_t>& arch_regs) {
  std::array<int, kIndirectionBanks> per_bank{};
  for (uint32_t r : arch_regs) ++per_bank[bank_of(r)];
  return *std::max_element(per_bank.begin(), per_bank.end());
}

}  // namespace gpurf::rf
