#include "rf/value_extractor.hpp"

namespace gpurf::rf {

uint32_t tve_extract_piece(uint32_t fetched, const ExtractSpec& spec) {
  return gather_slices(fetched, spec.mask, spec.first_slice);
}

uint32_t tve_finalize(uint32_t merged, const ExtractSpec& spec) {
  const int n = spec.data_slices;
  if (n >= kSlicesPerReg) return merged;
  if (!spec.is_signed) return merged;  // zero padding is already in place
  // The sign bit is the top bit of the last data slice; the 2:1 mux picks
  // 0x0 or 0xF nibbles for every slice above it.
  const uint32_t sign_bit = (merged >> (n * kSliceBits - 1)) & 1u;
  if (!sign_bit) return merged;
  uint32_t out = merged;
  for (int s = n; s < kSlicesPerReg; ++s) out = set_slice(out, s, 0xf);
  return out;
}

uint32_t tve_extract(uint32_t fetched, const ExtractSpec& spec) {
  return tve_finalize(tve_extract_piece(fetched, spec), spec);
}

std::array<uint32_t, 32> warp_extract_piece(
    const std::array<uint32_t, 32>& fetched, const ExtractSpec& spec) {
  std::array<uint32_t, 32> out;
  for (int l = 0; l < 32; ++l) out[l] = tve_extract_piece(fetched[l], spec);
  return out;
}

}  // namespace gpurf::rf
