#include "rf/value_extractor.hpp"

namespace gpurf::rf {

uint32_t tve_extract_piece(uint32_t fetched, const ExtractSpec& spec) {
  return gather_slices(fetched, spec.mask, spec.first_slice);
}

uint32_t tve_finalize(uint32_t merged, const ExtractSpec& spec) {
  const int n = spec.data_slices;
  if (n >= kSlicesPerReg) return merged;
  if (!spec.is_signed) return merged;  // zero padding is already in place
  // The sign bit is the top bit of the last data slice; the 2:1 mux picks
  // 0x0 or 0xF nibbles for every slice above it.
  const uint32_t sign_bit = (merged >> (n * kSliceBits - 1)) & 1u;
  if (!sign_bit) return merged;
  uint32_t out = merged;
  for (int s = n; s < kSlicesPerReg; ++s) out = set_slice(out, s, 0xf);
  return out;
}

uint32_t tve_extract(uint32_t fetched, const ExtractSpec& spec) {
  return tve_finalize(tve_extract_piece(fetched, spec), spec);
}

std::array<uint32_t, 32> warp_extract_piece(
    const std::array<uint32_t, 32>& fetched, const ExtractSpec& spec) {
  // Warp-wide word-level gather: the spec is uniform across lanes, so the
  // slice routing is resolved ONCE into (from, to) shift pairs and each
  // pair becomes one shift-mask-or over all 32 lanes — 32*k word ops for k
  // data slices instead of 32 independent 8-step slice walks.  This is the
  // software analogue of the hardware's single shared control signal
  // driving 32 TVE muxes (§3.2.3).
  ShiftPlan plan;
  plan.build_gather(spec.mask, spec.first_slice);

  std::array<uint32_t, 32> out{};
  for (int p = 0; p < plan.count; ++p) {
    const int from = plan.from[p], to = plan.to[p];
    for (int l = 0; l < 32; ++l)
      out[l] |= ((fetched[l] >> from) & 0xfu) << to;
  }
  return out;
}

std::array<uint32_t, 32> warp_finalize(const std::array<uint32_t, 32>& merged,
                                       const ExtractSpec& spec) {
  std::array<uint32_t, 32> out = merged;
  const int n = spec.data_slices;
  if (n >= kSlicesPerReg || !spec.is_signed) return out;
  // Uniform fill mask for the padding slices; per lane only the sign-bit
  // test remains (the hardware's 2:1 mux select).
  const uint32_t fill = slice_mask_to_bits(
      static_cast<uint8_t>(0xffu << n));
  const int sign_shift = n * kSliceBits - 1;
  for (int l = 0; l < 32; ++l)
    if ((out[l] >> sign_shift) & 1u) out[l] |= fill;
  return out;
}

std::array<uint32_t, 32> warp_extract(const std::array<uint32_t, 32>& fetched,
                                      const ExtractSpec& spec) {
  return warp_finalize(warp_extract_piece(fetched, spec), spec);
}

}  // namespace gpurf::rf
