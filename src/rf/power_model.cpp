#include "rf/power_model.hpp"

namespace gpurf::rf {

PowerComparison compare_power(const PowerInputs& in, const AreaConfig& cfg) {
  PowerComparison out;
  // Compressed design: every read costs one fetch, a double-fetch fraction
  // costs a second fetch; extraction/conversion logic adds a small term;
  // the indirection-table read is proportional to its relative size.
  out.compressed_read_energy = 1.0 + in.double_fetch_fraction +
                               in.logic_vs_sram_energy +
                               in.table_vs_rf_size;
  // Doubling the register file doubles the bitline length and thus the
  // energy per read (§6.5, [5]).
  out.doubled_rf_read_energy = 2.0;

  const AreaBreakdown area = compute_area(cfg);
  out.static_overhead_fraction = area.fraction_of_chip;
  out.compressed_wins =
      out.compressed_read_energy < out.doubled_rf_read_energy;
  return out;
}

}  // namespace gpurf::rf
