#pragma once
// Banked register-file storage (paper §3.1 baseline, extended with
// slice-masked writes for the compressed organisation).
//
// 16 banks, 64 entries per bank, 1024 bits per entry (one warp register =
// 32 lanes x 32 bits), one read + one write port per bank.  Physical warp
// registers map to banks with the GPGPU-Sim interleaving
// bank = (reg + warp) % 16, so the arbitration behaviour matches the
// baseline the paper modified.

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace gpurf::rf {

using WarpRegister = std::array<uint32_t, 32>;

struct RegisterFileGeom {
  int banks = 16;
  int entries_per_bank = 64;
  int bits_per_entry = 1024;

  int total_warp_registers() const { return banks * entries_per_bank; }
  /// Total 32-bit thread registers (the paper's "32768 registers per SM").
  int total_thread_registers() const {
    return total_warp_registers() * (bits_per_entry / 32);
  }
};

class BankedRegisterFile {
 public:
  explicit BankedRegisterFile(const RegisterFileGeom& g = RegisterFileGeom{});

  const RegisterFileGeom& geom() const { return geom_; }

  static int bank_of(uint32_t phys_reg, uint32_t warp_id) {
    return static_cast<int>((phys_reg + warp_id) % 16u);
  }

  /// Full 1024-bit read of one warp register.
  const WarpRegister& read(uint32_t index) const;

  /// Full write.
  void write(uint32_t index, const WarpRegister& value);

  /// Slice-masked write: for each lane, only the bit lines enabled in
  /// `bitmask` are driven (§3.2.6 step 3) so co-resident operands survive.
  void write_masked(uint32_t index, const WarpRegister& value,
                    uint32_t bitmask);

 private:
  RegisterFileGeom geom_;
  std::vector<WarpRegister> storage_;
};

}  // namespace gpurf::rf
