#pragma once
// Analytical power model (paper §6.5).
//
// The paper argues the compressed design consumes less dynamic power than
// the alternative of doubling the register file:
//  * a doubled register file doubles bitline length and therefore roughly
//    doubles energy per read (bitline charging dominates SRAM dynamic
//    power);
//  * the compressed design only pays 2x on reads that need a double fetch
//    (operand split across two physical registers) — a compiler-controlled
//    fraction;
//  * converters/extractors/truncators are an order of magnitude below SRAM
//    energies, and the indirection tables are tiny SRAMs.
// Static power scales with the §6.4 area overhead.

#include "rf/area_model.hpp"

namespace gpurf::rf {

struct PowerInputs {
  /// Fraction of operand reads that require two physical fetches,
  /// measured by the allocator / simulator for a given kernel.
  double double_fetch_fraction = 0.0;
  /// Relative energy of one logic-block activation (extract/convert/
  /// truncate) vs. one register-file read (order 0.1 per §6.5 / [19]).
  double logic_vs_sram_energy = 0.1;
  /// Relative size of one indirection table vs. the register file
  /// (256x32b vs 16x64x1024b = 1/128).
  double table_vs_rf_size = 256.0 * 32 / (16.0 * 64 * 1024);
};

struct PowerComparison {
  /// Dynamic energy per register read, compressed design, relative to the
  /// baseline register file (1.0 = baseline).
  double compressed_read_energy = 1.0;
  /// Dynamic energy per register read of a 2x-capacity register file.
  double doubled_rf_read_energy = 2.0;
  /// Static-power overhead fraction (== area overhead fraction).
  double static_overhead_fraction = 0.0;
  bool compressed_wins = false;
};

PowerComparison compare_power(const PowerInputs& in, const AreaConfig& cfg);

}  // namespace gpurf::rf
