#pragma once
// Value Extractor (paper §3.2.3, Fig. 3/4).
//
// Each Thread Value Extractor (TVE) realigns the compressed slices fetched
// from one physical register to their data positions and pads the result:
// zeros for floats and unsigned integers, sign-extension nibbles (0x0/0xF
// selected by a 2:1 mux) for signed integers.  A warp-level extractor is 32
// parallel TVEs; one extractor sits behind each register bank, so a fetch
// never costs an extra cycle (§3.2.8: "shallow critical path of one
// multiplexer").
//
// When an operand is split across two physical registers the two partial
// extractions are OR-merged inside the collector unit (§3.2.4); the partial
// results here leave unfilled slices at zero so the OR is exact.

#include <array>
#include <cstdint>

#include "rf/slices.hpp"

namespace gpurf::rf {

/// Static per-operand extraction control (latched into the CU from the
/// indirection info + instruction annotation).
struct ExtractSpec {
  uint8_t mask = 0xff;       ///< slice mask inside the fetched register
  uint8_t first_slice = 0;   ///< data-slice index where this piece starts
  uint8_t data_slices = 8;   ///< total operand slices (both pieces)
  bool is_signed = false;    ///< sign-extend after the *final* piece
};

/// One TVE pass over one fetched 32-bit thread register: realign, no
/// padding (partial result for the CU OR-merge).
uint32_t tve_extract_piece(uint32_t fetched, const ExtractSpec& spec);

/// Pad a fully OR-merged operand: zero-fill (already zero) or sign-extend
/// the nibbles above the data slices.  `data_slices`/`is_signed` from spec.
uint32_t tve_finalize(uint32_t merged, const ExtractSpec& spec);

/// Convenience: extract a whole unsplit operand in one step.
uint32_t tve_extract(uint32_t fetched, const ExtractSpec& spec);

/// Warp-level extractor: 32 TVEs in parallel.  Implemented warp-wide: the
/// uniform slice routing is compiled once into a ShiftPlan and applied as
/// word-level shift-mask-or sweeps across the 32 lanes (the software
/// analogue of one shared control signal driving 32 muxes).
std::array<uint32_t, 32> warp_extract_piece(
    const std::array<uint32_t, 32>& fetched, const ExtractSpec& spec);

/// Warp-level padding / sign extension of OR-merged operands: uniform fill
/// mask, per-lane 2:1 mux select on the sign bit.
std::array<uint32_t, 32> warp_finalize(const std::array<uint32_t, 32>& merged,
                                       const ExtractSpec& spec);

/// Warp-level extraction of a whole unsplit operand.
std::array<uint32_t, 32> warp_extract(const std::array<uint32_t, 32>& fetched,
                                      const ExtractSpec& spec);

}  // namespace gpurf::rf
