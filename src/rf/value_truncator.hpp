#pragma once
// Value Truncator (paper §3.2.6, Fig. 5).
//
// Before writeback, a Thread Value Truncator (TVT):
//   Step 1 — if the operand is a narrow float, converts binary32 down to
//            its assigned Table-3 format (skipped for integers, whose low
//            bits are already correct by the range-analysis contract);
//   Step 2 — scatters the data slices to their assigned positions inside
//            up to two physical registers (two TVE-like networks);
//   Step 3 — forwards the compressed data together with the slice masks;
//            at writeback only the masked bit lines are activated so
//            co-resident operands in the other slices are preserved.
//
// The writeback bus is three instructions wide, so the block contains three
// Warp Value Truncators of 32 TVTs each.

#include <array>
#include <cstdint>

#include "fp/format.hpp"
#include "rf/slices.hpp"

namespace gpurf::rf {

constexpr int kWarpTruncatorsPerSM = 3;

/// Static per-operand writeback control (from the destination indirection
/// table + instruction annotation).
struct TruncateSpec {
  uint8_t mask0 = 0xff;      ///< slice mask in the first physical register
  uint8_t mask1 = 0;         ///< slice mask in the second (0 = not split)
  uint8_t data_slices = 8;
  bool is_float = false;
  gpurf::fp::FloatFormat float_fmt{};  ///< used when is_float
};

/// Result of one TVT: per-piece register image + bitline write masks.
struct TruncateResult {
  uint32_t data0 = 0;
  uint32_t bitmask0 = 0;  ///< 32-bit bitline-enable mask for piece 0
  uint32_t data1 = 0;
  uint32_t bitmask1 = 0;
};

TruncateResult tvt_truncate(uint32_t value32, const TruncateSpec& spec);

/// Warp-level truncation (32 threads).
std::array<TruncateResult, 32> warp_truncate(
    const std::array<uint32_t, 32>& values, const TruncateSpec& spec);

}  // namespace gpurf::rf
