#include "rf/fault_map.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "api/json.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace gpurf::rf {

FaultMap::FaultMap(uint32_t banks, uint32_t rows_per_bank)
    : banks_(banks), rows_(rows_per_bank) {
  GPURF_CHECK(banks_ > 0 && rows_ > 0, "fault map needs a non-empty geometry");
  GPURF_CHECK(uint64_t(banks_) * rows_ * 8 <= (1ull << 32) - 1,
              "fault map geometry too large");
  masks_.assign(size_t(banks_) * rows_, 0);
}

void FaultMap::add_fault(uint32_t bank, uint32_t row, uint8_t slice) {
  GPURF_CHECK(bank < banks_ && row < rows_ && slice < 8,
              "fault site (" << bank << "," << row << ","
                             << unsigned(slice) << ") outside geometry "
                             << banks_ << "x" << rows_ << "x8");
  const uint32_t phys = row * banks_ + bank;
  const uint8_t bit = static_cast<uint8_t>(1u << slice);
  if (masks_[phys] & bit) return;  // idempotent
  masks_[phys] |= bit;
  FaultSite site{bank, row, slice};
  faults_.insert(std::upper_bound(faults_.begin(), faults_.end(), site,
                                  [](const FaultSite& a, const FaultSite& b) {
                                    if (a.bank != b.bank) return a.bank < b.bank;
                                    if (a.row != b.row) return a.row < b.row;
                                    return a.slice < b.slice;
                                  }),
                 site);
}

bool FaultMap::is_faulty(uint32_t bank, uint32_t row, uint8_t slice) const {
  if (bank >= banks_ || row >= rows_ || slice >= 8) return false;
  return (masks_[row * banks_ + bank] >> slice) & 1u;
}

FaultMap FaultMap::generate(uint64_t seed, double density, uint32_t banks,
                            uint32_t rows_per_bank) {
  FaultMap map(banks, rows_per_bank);
  map.seed_ = seed;
  const double d = std::clamp(density, 0.0, 1.0);
  const uint64_t total = map.total_slice_sites();
  const uint64_t count =
      std::min<uint64_t>(total, uint64_t(std::llround(d * double(total))));
  if (count == 0) return map;

  // Partial Fisher-Yates over the flat site index space: the first `count`
  // entries after the partial shuffle are a uniform sample without
  // replacement, and depend only on (seed, density, geometry).
  std::vector<uint32_t> sites(total);
  std::iota(sites.begin(), sites.end(), 0u);
  Pcg32 rng(seed, /*stream=*/0x6661756c74ULL);  // "fault"
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t j =
        static_cast<uint32_t>(i) +
        rng.next_below(static_cast<uint32_t>(total - i));
    std::swap(sites[i], sites[j]);
  }
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t idx = sites[i];
    const uint32_t phys = idx / 8;
    map.add_fault(phys % banks, phys / banks,
                  static_cast<uint8_t>(idx % 8));
  }
  return map;
}

std::string FaultMap::to_json() const {
  std::string arr = "[";
  for (size_t i = 0; i < faults_.size(); ++i) {
    if (i) arr += ',';
    arr += "[" + std::to_string(faults_[i].bank) + "," +
           std::to_string(faults_[i].row) + "," +
           std::to_string(unsigned(faults_[i].slice)) + "]";
  }
  arr += ']';

  api::JsonWriter w;
  w.begin_object();
  w.field("version", 1);
  w.field("banks", banks_);
  w.field("rows", rows_);
  w.field("seed", seed_);
  w.field("density", density());
  w.raw("faults", arr);
  w.end_object();
  return w.str();
}

StatusOr<FaultMap> FaultMap::from_json(const std::string& text) {
  auto parsed = api::parse_json(text);
  if (!parsed.ok()) return parsed.status();
  const api::JsonValue& v = *parsed;
  if (!v.is_object())
    return Status::InvalidArgument("fault map: document must be an object");
  const api::JsonValue* ver = v.get("version");
  if (!ver || ver->as_int(0) != 1)
    return Status::InvalidArgument("fault map: unsupported version");
  const uint32_t banks = static_cast<uint32_t>(
      v.get("banks") ? v.get("banks")->as_int(kDefaultBanks) : kDefaultBanks);
  const uint32_t rows = static_cast<uint32_t>(
      v.get("rows") ? v.get("rows")->as_int(kDefaultRowsPerBank)
                    : kDefaultRowsPerBank);
  if (banks == 0 || rows == 0)
    return Status::InvalidArgument("fault map: empty geometry");
  FaultMap map(banks, rows);
  if (const api::JsonValue* s = v.get("seed"))
    map.seed_ = static_cast<uint64_t>(s->as_int(0));
  const api::JsonValue* faults = v.get("faults");
  if (!faults || !faults->is_array())
    return Status::InvalidArgument("fault map: missing 'faults' array");
  for (const api::JsonValue& site : faults->items) {
    if (!site.is_array() || site.items.size() != 3)
      return Status::InvalidArgument(
          "fault map: each fault must be [bank,row,slice]");
    const int64_t bank = site.items[0].as_int(-1);
    const int64_t row = site.items[1].as_int(-1);
    const int64_t slice = site.items[2].as_int(-1);
    if (bank < 0 || uint64_t(bank) >= banks || row < 0 ||
        uint64_t(row) >= rows || slice < 0 || slice >= 8)
      return Status::InvalidArgument(
          "fault map: site (" + std::to_string(bank) + "," +
          std::to_string(row) + "," + std::to_string(slice) +
          ") outside geometry");
    map.add_fault(static_cast<uint32_t>(bank), static_cast<uint32_t>(row),
                  static_cast<uint8_t>(slice));
  }
  return map;
}

}  // namespace gpurf::rf
