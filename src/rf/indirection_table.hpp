#pragma once
// Indirection table (paper §3.2.2, Fig. 2).
//
// 256 architectural-register entries of 32 bits each, organised in 16 SRAM
// banks so the table matches the register file's throughput (16 accesses
// per cycle).  Separate but identical source (read-path) and destination
// (write-path) tables avoid contention; writeback-side bank conflicts are
// absorbed by a small buffer (§3.2.1).
//
// Entry encoding (32 bits): | r0:8 | m0:8 | r1:8 | m1:8 |
// The signed/float annotations travel with the instruction (they are
// properties of the *operand*, produced by the static framework) and are
// latched into the extended collector-unit fields (§3.2.4).

#include <array>
#include <cstdint>
#include <vector>

#include "alloc/slice_alloc.hpp"

namespace gpurf::rf {

constexpr int kIndirectionEntries = 256;
constexpr int kIndirectionBanks = 16;

/// Packed 32-bit entry.
struct PackedEntry {
  uint32_t raw = 0;

  static PackedEntry pack(const gpurf::alloc::IndirectionEntry& e);
  uint8_t r0() const { return static_cast<uint8_t>(raw >> 24); }
  uint8_t m0() const { return static_cast<uint8_t>(raw >> 16); }
  uint8_t r1() const { return static_cast<uint8_t>(raw >> 8); }
  uint8_t m1() const { return static_cast<uint8_t>(raw); }
};

class IndirectionTable {
 public:
  IndirectionTable();

  /// Upload a kernel's allocation before launch (§3.2: "the configuration
  /// of the indirection table is different for each kernel").
  void load(const std::vector<gpurf::alloc::IndirectionEntry>& table);

  /// Architectural register -> bank (entries interleave across banks).
  static int bank_of(uint32_t arch_reg) {
    return static_cast<int>(arch_reg % kIndirectionBanks);
  }

  const PackedEntry& lookup(uint32_t arch_reg) const;

  /// Conflict model: number of cycles to serve a set of simultaneous
  /// lookups, given one access port per bank (max over per-bank counts).
  static int cycles_for(const std::vector<uint32_t>& arch_regs);

 private:
  std::array<PackedEntry, kIndirectionEntries> entries_{};
};

}  // namespace gpurf::rf
