#pragma once
// Structured error propagation for the public Engine API (ISSUE 3).
//
// The analysis/simulation core keeps its two-tier discipline (GPURF_CHECK
// throws gpurf::Error for recoverable input problems, GPURF_ASSERT aborts on
// internal corruption).  The Engine boundary converts the recoverable tier
// into values: every public entry point returns Status or StatusOr<T>, so a
// server embedding many Engines can reject one bad request — unknown
// workload, malformed kernel text, stale cache entry — without unwinding or
// terminating the process.

#include <new>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace gpurf {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< malformed input (bad kernel text, bad options)
  kNotFound,            ///< unknown workload / missing cache entry
  kFailedPrecondition,  ///< IR verification failed
  kDataLoss,            ///< corrupt or stale on-disk cache entry
  kResourceExhausted,   ///< bounded queue rejected the submission
  kInternal,            ///< unexpected failure inside the core
  kCancelled,           ///< job cancelled by the caller
  kDeadlineExceeded,    ///< per-request deadline elapsed (queued or running)
  kUnavailable,         ///< transient transport failure (daemon not up,
                        ///< connection lost, socket timeout) — retryable
  kUnauthenticated,     ///< missing or invalid auth token (ISSUE 8 TCP
                        ///< transport) — not retryable without a new token
};

inline const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kUnauthenticated: return "UNAUTHENTICATED";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Unauthenticated(std::string m) {
    return Status(StatusCode::kUnauthenticated, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    return ok() ? "OK"
                : std::string(status_code_name(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status.  value() asserts ok() via GPURF_CHECK (throws
/// gpurf::Error, never aborts), so legacy shims can surface engine errors
/// as the exceptions callers already handle.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, like absl
      : status_(std::move(status)) {
    GPURF_CHECK(!status_.ok(), "StatusOr constructed from OK without value");
  }
  StatusOr(T value)  // NOLINT
      : has_value_(true) {
    new (&storage_) T(std::move(value));
  }

  StatusOr(const StatusOr& o) : status_(o.status_), has_value_(o.has_value_) {
    if (has_value_) new (&storage_) T(*o.ptr());
  }
  StatusOr(StatusOr&& o) noexcept
      : status_(std::move(o.status_)), has_value_(o.has_value_) {
    if (has_value_) new (&storage_) T(std::move(*o.ptr()));
  }
  StatusOr& operator=(const StatusOr& o) {
    if (this != &o) {
      destroy();
      status_ = o.status_;
      has_value_ = o.has_value_;
      if (has_value_) new (&storage_) T(*o.ptr());
    }
    return *this;
  }
  StatusOr& operator=(StatusOr&& o) noexcept {
    if (this != &o) {
      destroy();
      status_ = std::move(o.status_);
      has_value_ = o.has_value_;
      if (has_value_) new (&storage_) T(std::move(*o.ptr()));
    }
    return *this;
  }
  ~StatusOr() { destroy(); }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    GPURF_CHECK(has_value_, "StatusOr::value on error: " << status_.to_string());
    return *ptr();
  }
  T& value() & {
    GPURF_CHECK(has_value_, "StatusOr::value on error: " << status_.to_string());
    return *ptr();
  }
  T&& value() && {
    GPURF_CHECK(has_value_, "StatusOr::value on error: " << status_.to_string());
    return std::move(*ptr());
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  T* ptr() { return std::launder(reinterpret_cast<T*>(&storage_)); }
  const T* ptr() const {
    return std::launder(reinterpret_cast<const T*>(&storage_));
  }
  void destroy() {
    if (has_value_) {
      ptr()->~T();
      has_value_ = false;
    }
  }

  Status status_;
  bool has_value_ = false;
  alignas(T) unsigned char storage_[sizeof(T)];
};

}  // namespace gpurf
