#include "api/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gpurf::api {

namespace {

namespace wl = gpurf::workloads;

/// Response envelope builders: every reply — success or error — embeds the
/// fleet's metrics snapshot (ISSUE 4 satellite; fleet-aggregated and
/// histogram-bearing since ISSUE 8).
std::string envelope_error(const std::string& metrics, const Status& st,
                           int64_t retry_after_ms = -1) {
  JsonWriter w;
  w.begin_object();
  w.field("ok", false);
  w.begin_object("error");
  w.field("code", status_code_name(st.code()));
  w.field("message", st.message());
  if (retry_after_ms >= 0) w.field("retry_after_ms", retry_after_ms);
  w.end_object();
  w.raw("metrics", metrics);
  w.end_object();
  return w.str();
}

/// Start a success envelope; the caller adds payload fields, then calls
/// envelope_finish.
JsonWriter envelope_begin() {
  JsonWriter w;
  w.begin_object();
  w.field("ok", true);
  return w;
}

std::string envelope_finish(const std::string& metrics, JsonWriter& w) {
  w.raw("metrics", metrics);
  w.end_object();
  return w.str();
}

Status parse_sim_request(const JsonValue& req, SimRequest& out) {
  // A missing "mode" keeps the caller's pre-set default (original for
  // simulate, perfect for fault campaigns).
  if (req.get("mode")) {
    const std::string mode = req.get("mode")->as_string("original");
    if (mode == "original") out.mode = wl::SimMode::kOriginal;
    else if (mode == "perfect") out.mode = wl::SimMode::kCompressedPerfect;
    else if (mode == "high") out.mode = wl::SimMode::kCompressedHigh;
    else
      return Status::InvalidArgument("unknown mode '" + mode +
                                     "' (original|perfect|high)");
  }

  const std::string scale =
      req.get("scale") ? req.get("scale")->as_string("full") : "full";
  if (scale == "full") out.scale = wl::Scale::kFull;
  else if (scale == "sample") out.scale = wl::Scale::kSample;
  else
    return Status::InvalidArgument("unknown scale '" + scale +
                                   "' (sample|full)");

  if (const JsonValue* v = req.get("variant"))
    out.variant = static_cast<uint32_t>(v->as_int(0));
  if (const JsonValue* d = req.get("writeback_delay"))
    out.compression = sim::CompressionConfig::with_writeback_delay(
        static_cast<uint32_t>(d->as_int(0)));
  if (const JsonValue* s = req.get("sim_shards"))
    out.sim_shards = static_cast<int>(s->as_int(0));
  // Permanent-fault injection (PR 6): density > 0 turns it on; the Engine
  // rejects it for mode=original (faults live in the compressed file).
  if (const JsonValue* fs = req.get("fault_seed"))
    out.fault.seed = static_cast<uint64_t>(fs->as_int(0));
  if (const JsonValue* fd = req.get("fault_density"))
    out.fault.density = fd->as_double(0.0);
  if (const JsonValue* fq = req.get("fault_quality"))
    out.fault.score_quality = fq->as_bool(false);
  // Transient soft errors (PR 7): a positive rate attaches the flip
  // process; exposure tracking works at any rate (including zero).
  if (const JsonValue* sr = req.get("soft_flips_per_mcycle"))
    out.soft.flips_per_mcycle = sr->as_double(0.0);
  if (const JsonValue* ss = req.get("soft_seed"))
    out.soft.seed = static_cast<uint64_t>(ss->as_int(1));
  if (const JsonValue* se = req.get("soft_track_exposure"))
    out.soft.track_exposure = se->as_bool(false);
  if (const JsonValue* sq = req.get("soft_quality"))
    out.soft_score_quality = sq->as_bool(false);
  if (const JsonValue* rt = req.get("retune_on_faults"))
    out.retune_on_faults = rt->as_bool(false);
  return Status::Ok();
}

/// Parse an array-of-numbers request field into `out`; leaves `out`
/// untouched when the key is absent.
Status parse_number_array(const JsonValue& req, const char* key,
                          std::vector<double>& out) {
  const JsonValue* arr = req.get(key);
  if (!arr) return Status::Ok();
  if (!arr->is_array())
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be an array of numbers");
  out.clear();
  for (const JsonValue& v : arr->items) {
    if (!v.is_number())
      return Status::InvalidArgument(std::string("'") + key +
                                     "' must be an array of numbers");
    out.push_back(v.num_v);
  }
  return Status::Ok();
}

void write_job_fields(JsonWriter& w, const Job& job) {
  const JobProgress p = job.progress();
  w.field("job", job.id());
  w.field("workload", job.workload());
  w.field("kind", job_kind_name(job.kind()));
  w.field("priority", job.priority());
  w.field("state", job_state_name(p.state));
  w.begin_object("progress");
  w.field("stage", common::job_stage_name(p.stage));
  w.field("tuner_pass", p.tuner_pass);
  w.field("tuner_evaluations", p.tuner_evaluations);
  w.field("sim_cycles", p.sim_cycles);
  w.field("run_seq", p.run_seq);
  w.field("wall_ms", p.wall_ms);
  w.field("exec_ms", p.exec_ms);
  if (job_kind_campaign(job.kind())) {
    w.field("campaign_maps_done", p.campaign_maps_done);
    w.field("campaign_maps_total", p.campaign_maps_total);
  }
  w.end_object();
  // Terminal jobs also report their status (and the error, if any) so a
  // client can distinguish done / failed / cancelled / deadline-exceeded
  // without a second round trip.
  if (job_state_terminal(p.state)) {
    const Status st = job.status();
    w.field("status_code", status_code_name(st.code()));
    if (!st.ok()) {
      w.begin_object("job_error");
      w.field("code", status_code_name(st.code()));
      w.field("message", st.message());
      w.end_object();
    }
  }
}

/// Progress fingerprint for watch: everything a client-visible progress
/// change touches, *excluding* the wall clocks (which change every poll
/// and would turn watch into a firehose).
std::string progress_key(const Job& job) {
  const JobProgress p = job.progress();
  std::string k = job_state_name(p.state);
  k += '|';
  k += common::job_stage_name(p.stage);
  k += '|';
  k += std::to_string(p.tuner_pass) + '|' +
       std::to_string(p.tuner_evaluations) + '|' +
       std::to_string(p.sim_cycles) + '|' + std::to_string(p.run_seq) + '|' +
       std::to_string(p.campaign_maps_done);
  return k;
}

/// The successful result JSON for a kDone job of any kind, or empty.
std::string result_json_for(const Job& job) {
  if (job.kind() == JobKind::kPipeline) {
    auto pr = job.pipeline_result();
    if (pr.ok()) return to_json(*pr);
  } else if (job.kind() == JobKind::kFaultCampaign) {
    auto cr = job.campaign_result();
    if (cr.ok()) return to_json(*cr);
  } else if (job.kind() == JobKind::kTransientCampaign) {
    auto tr = job.transient_result();
    if (tr.ok()) return to_json(*tr);
  } else {
    auto sr = job.sim_result();
    if (sr.ok()) return to_json(*sr);
  }
  return std::string();
}

bool send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a client that hung up mid-response must produce
    // EPIPE here, not a SIGPIPE that kills the whole daemon.
    const ssize_t wr =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (wr <= 0) return false;
    off += static_cast<size_t>(wr);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------- quotas

/// Per-token serving quota state (ISSUE 8).  One entry per distinct
/// "token" string (the empty string is the anonymous client of an
/// auth-less daemon).
struct Server::TokenState {
  std::mutex mu;
  double bucket = 0.0;  ///< submit token-bucket level
  bool bucket_init = false;
  std::chrono::steady_clock::time_point last_refill;
  size_t inflight = 0;  ///< submitted-but-unfinished jobs
};

struct Server::QuotaTable {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<TokenState>> tokens;

  std::shared_ptr<TokenState> get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu);
    auto& slot = tokens[key];
    if (!slot) slot = std::make_shared<TokenState>();
    return slot;
  }
};

// ---------------------------------------------------------------- Server

Server::Server(Engine& engine, ServerOptions opts)
    : own_fleet_(std::make_unique<serve::EngineFleet>(engine)),
      opts_(std::move(opts)),
      quotas_(std::make_shared<QuotaTable>()) {
  fleet_ = own_fleet_.get();
}

Server::Server(serve::EngineFleet& fleet, ServerOptions opts)
    : fleet_(&fleet),
      opts_(std::move(opts)),
      quotas_(std::make_shared<QuotaTable>()) {}

Server::~Server() { stop(); }

Status Server::start() {
  const bool want_unix = !opts_.socket_path.empty();
  const bool want_tcp = opts_.listen_port >= 0;
  if (!want_unix && !want_tcp)
    return Status::InvalidArgument(
        "gpurfd: no listener configured (need socket_path and/or "
        "listen_port)");

  auto fail = [this](Status st) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (tcp_listen_fd_ >= 0) {
      ::close(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
      tcp_port_ = -1;
    }
    return st;
  };

  if (want_unix) {
    sockaddr_un addr{};
    // Validate against sun_path instead of silently truncating (ISSUE 8
    // satellite — a truncated path binds somewhere the client never
    // looks).
    if (opts_.socket_path.size() >= sizeof(addr.sun_path))
      return Status::InvalidArgument("gpurfd: socket path too long (" +
                                     std::to_string(opts_.socket_path.size()) +
                                     " >= " +
                                     std::to_string(sizeof(addr.sun_path)) +
                                     "): " + opts_.socket_path);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      return Status::Internal(std::string("socket: ") + std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(opts_.socket_path.c_str());  // stale socket from a dead daemon
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      return fail(Status::Internal("bind " + opts_.socket_path + ": " +
                                   std::strerror(errno)));
    if (::listen(listen_fd_, 64) < 0)
      return fail(
          Status::Internal(std::string("listen: ") + std::strerror(errno)));
  }

  if (want_tcp) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(opts_.listen_port));
    const std::string& host =
        opts_.listen_host == "localhost" ? std::string("127.0.0.1")
                                         : opts_.listen_host;
    if (host.empty() || host == "0.0.0.0") {
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return fail(Status::InvalidArgument("gpurfd: bad listen host '" +
                                          opts_.listen_host +
                                          "' (numeric IPv4 expected)"));
    }
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0)
      return fail(
          Status::Internal(std::string("socket: ") + std::strerror(errno)));
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      return fail(Status::Internal("bind " + opts_.listen_host + ":" +
                                   std::to_string(opts_.listen_port) + ": " +
                                   std::strerror(errno)));
    if (::listen(tcp_listen_fd_, 128) < 0)
      return fail(
          Status::Internal(std::string("listen: ") + std::strerror(errno)));
    // Ephemeral binds (port 0) read the real port back for the caller.
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &blen) == 0)
      tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    else
      tcp_port_ = opts_.listen_port;
  }

  running_.store(true, std::memory_order_release);
  // Capture the fds by value: stop() writes -1 into the members without
  // holding a lock the accept threads share, so the lambdas must not read
  // them after launch.
  if (listen_fd_ >= 0)
    accept_thread_ =
        std::thread([this, fd = listen_fd_] { accept_loop(fd, false); });
  if (tcp_listen_fd_ >= 0)
    tcp_accept_thread_ =
        std::thread([this, fd = tcp_listen_fd_] { accept_loop(fd, true); });
  return Status::Ok();
}

void Server::reap_finished() {
  // Collect the joinable handles under the lock, join them outside it:
  // a handler's exit path takes mu_ to deregister itself, so joining
  // while holding mu_ could deadlock against a thread that is *almost*
  // finished.  Joining after its finished_ entry appeared is cheap — the
  // handler has nothing left to run but its epilogue.
  std::vector<std::thread> done;
  {
    common::MutexLock lock(mu_);
    for (uint64_t id : finished_) {
      auto it = threads_.find(id);
      if (it == threads_.end()) continue;
      done.push_back(std::move(it->second));
      threads_.erase(it);
    }
    finished_.clear();
  }
  for (auto& t : done) t.join();
}

void Server::stop() {
  stopping_.store(true, std::memory_order_release);
  const bool was_running = running_.exchange(false);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (tcp_listen_fd_ >= 0) {
    ::shutdown(tcp_listen_fd_, SHUT_RDWR);
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (tcp_accept_thread_.joinable()) tcp_accept_thread_.join();
  // Kick every live connection (unblocks reads; a handler parked inside a
  // long "wait" op notices stopping_ within one wait slice), then join
  // every handler thread.  After the joins no connection code can run, so
  // destroying the Server immediately afterwards is safe — this is the
  // ISSUE 5 fix for the detached-thread shutdown race.
  std::map<uint64_t, std::thread> remaining;
  {
    common::MutexLock lock(mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RDWR);
    remaining.swap(threads_);
    finished_.clear();
  }
  for (auto& [id, t] : remaining) t.join();
  if (was_running && !opts_.socket_path.empty())
    ::unlink(opts_.socket_path.c_str());
}

void Server::accept_loop(int listen_fd, bool tcp) {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listener closed underneath us
    }
    if (tcp) {
      // Request/response lines are small; Nagle would add 40ms to every
      // sub-MSS exchange on loopback.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    // Joining finished predecessors here bounds the registry at the
    // number of *live* connections plus the already-finished ones since
    // the last accept — a long-lived daemon never accumulates handles.
    reap_finished();
    {
      // Register the socket and the handle atomically: stop() joins this
      // accept thread before it swaps the registry out, so every spawned
      // handler is guaranteed to be visible to the final join pass.
      common::MutexLock lock(mu_);
      const uint64_t id = next_conn_id_++;
      conns_.insert(fd);
      threads_.emplace(
          id, std::thread([this, fd, id] { serve_connection(fd, id); }));
    }
  }
}

void Server::serve_connection(int fd, uint64_t conn_id) {
  std::string buf;
  char chunk[4096];
  bool drop = false;
  while (!drop) {
    if (opts_.idle_timeout_ms > 0) {
      // Idle timeout (ISSUE 8): a connection that sends nothing within
      // the window is dropped, so slow/hostile peers cannot pin handler
      // threads forever.  stop()'s shutdown() wakes the poll too.
      pollfd pfd{fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, opts_.idle_timeout_ms);
      if (pr == 0) break;  // idle too long
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF, shutdown, or error
    buf.append(chunk, static_cast<size_t>(n));
    // Oversized-request rejection (ISSUE 8): cap the unframed buffer as
    // well as each complete line, then drop the connection — there is no
    // way to resynchronise a stream mid-oversized-line.
    if (buf.size() > opts_.max_request_bytes &&
        buf.find('\n') == std::string::npos) {
      send_all(fd, envelope_error(
                       metrics_json_now(),
                       Status::InvalidArgument(
                           "request exceeds max_request_bytes (" +
                           std::to_string(opts_.max_request_bytes) + ")")) +
                       "\n");
      break;
    }
    size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.empty()) continue;
      if (line.size() > opts_.max_request_bytes) {
        send_all(fd, envelope_error(
                         metrics_json_now(),
                         Status::InvalidArgument(
                             "request exceeds max_request_bytes (" +
                             std::to_string(opts_.max_request_bytes) + ")")) +
                         "\n");
        drop = true;
        break;
      }
      SendLineFn push = [fd](const std::string& l) {
        return send_all(fd, l + "\n");
      };
      std::string resp = handle_request(line, &push);
      resp += '\n';
      if (!send_all(fd, resp)) {
        drop = true;
        break;
      }
    }
  }
  // Join predecessors that already finished — without this, a
  // burst-then-idle daemon would retain exited-but-unjoined handles (and
  // their stacks) until the next accept.  Safe here: this thread's own id
  // is not on finished_ yet, so it never joins itself.
  reap_finished();
  // Deregister and close under one lock so stop() can never shutdown() an
  // fd number this thread already closed (and the kernel reassigned).
  // Parking the id on finished_ hands the joinable handle to the next
  // reaper (a later handler exit or accept) or to stop(), whichever
  // comes first.
  common::MutexLock lock(mu_);
  conns_.erase(fd);
  ::close(fd);
  finished_.push_back(conn_id);
}

std::string Server::metrics_json_now() const {
  MetricsSnapshot m = fleet_->metrics_snapshot();
  m.serialize = serialize_hist_.snapshot();
  return to_json(m);
}

std::string Server::handle_request_line(const std::string& line) {
  return handle_request(line, nullptr);
}

std::string Server::handle_request(const std::string& line, SendLineFn* push) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string resp;
  StatusOr<JsonValue> parsed = parse_json(line);
  if (!parsed.ok()) {
    resp = envelope_error(metrics_json_now(), parsed.status());
  } else if (!parsed->is_object()) {
    resp = envelope_error(metrics_json_now(),
                          Status::InvalidArgument("request must be an object"));
  } else {
    const JsonValue& req = *parsed;
    const std::string op = req.get("op") ? req.get("op")->as_string() : "";
    const std::string token =
        req.get("token") ? req.get("token")->as_string() : "";

    try {
      // Auth gate (ISSUE 8): a daemon started with tokens accepts nothing
      // — not even ping — without one of them.
      if (!opts_.auth_tokens.empty() &&
          std::find(opts_.auth_tokens.begin(), opts_.auth_tokens.end(),
                    token) == opts_.auth_tokens.end()) {
        resp = envelope_error(
            metrics_json_now(),
            Status::Unauthenticated(token.empty()
                                        ? "missing 'token'"
                                        : "unrecognised auth token"));
      } else if (op == "ping") {
        JsonWriter w = envelope_begin();
        w.field("pong", true);
        resp = envelope_finish(metrics_json_now(), w);
      } else if (op == "list") {
        JsonWriter w = envelope_begin();
        w.begin_array("workloads");
        for (const auto& n : fleet_->shard(0).workload_names()) w.element(n);
        w.end_array();
        w.field("engines", static_cast<int64_t>(fleet_->num_shards()));
        resp = envelope_finish(metrics_json_now(), w);
      } else if (op == "metrics") {
        JsonWriter w = envelope_begin();
        w.field("engines", static_cast<int64_t>(fleet_->num_shards()));
        resp = envelope_finish(metrics_json_now(), w);
      } else if (op == "histograms") {
        // Full bucket arrays per latency stage (summaries ride in every
        // envelope's metrics object; this op is for plotting).
        MetricsSnapshot m = fleet_->metrics_snapshot();
        m.serialize = serialize_hist_.snapshot();
        JsonWriter w = envelope_begin();
        w.begin_object("histograms");
        w.raw("queue_wait", to_json(m.queue_wait, true));
        w.raw("tune", to_json(m.tune, true));
        w.raw("sim", to_json(m.sim, true));
        w.raw("serialize", to_json(m.serialize, true));
        w.end_object();
        resp = envelope_finish(to_json(m), w);
      } else if (op == "submit") {
        resp = handle_submit(req, token);
      } else if (op == "status" || op == "wait" || op == "cancel" ||
                 op == "watch") {
        resp = handle_job_op(req, op, push);
      } else if (op == "analyze") {
        // Static kernel lint (PR 9): {"workload":name} routes to the shard
        // that owns the kernel (so the analysis memo warmed here is the
        // one simulate jobs reuse); {"kernel":asm} parses and analyzes an
        // ad-hoc kernel on shard 0.
        const JsonValue* wlname = req.get("workload");
        const JsonValue* ktext = req.get("kernel");
        StatusOr<analysis::KernelReport> rep = Status::InvalidArgument(
            "analyze requires a 'workload' name or inline 'kernel' asm");
        if (wlname && wlname->is_string()) {
          const std::string name = wlname->as_string();
          rep = fleet_->shard(fleet_->shard_for_workload(name)).analyze(name);
        } else if (ktext && ktext->is_string()) {
          Engine& eng = fleet_->shard(0);
          StatusOr<ir::Kernel> k = eng.parse_kernel(ktext->as_string());
          rep = k.ok() ? eng.analyze(*k)
                       : StatusOr<analysis::KernelReport>(k.status());
        }
        if (rep.ok()) {
          JsonWriter w = envelope_begin();
          w.raw("report", to_json(*rep));
          resp = envelope_finish(metrics_json_now(), w);
        } else {
          resp = envelope_error(metrics_json_now(), rep.status());
        }
      } else if (op == "shutdown") {
        shutdown_.store(true, std::memory_order_release);
        JsonWriter w = envelope_begin();
        w.field("shutting_down", true);
        resp = envelope_finish(metrics_json_now(), w);
      } else {
        resp = envelope_error(
            metrics_json_now(),
            Status::InvalidArgument(
                "unknown op '" + op +
                "' (ping|list|metrics|histograms|submit|status|wait|cancel|"
                "watch|analyze|shutdown)"));
      }
    } catch (const Error& e) {
      resp = envelope_error(metrics_json_now(),
                            Status::FailedPrecondition(e.what()));
    } catch (const std::exception& e) {
      resp = envelope_error(metrics_json_now(), Status::Internal(e.what()));
    }
  }
  serialize_hist_.record_us(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return resp;
}

std::string Server::handle_submit(const JsonValue& req,
                                  const std::string& token) {
  const std::string kind =
      req.get("kind") ? req.get("kind")->as_string("pipeline") : "pipeline";
  const JsonValue* wlname = req.get("workload");
  if (!wlname || !wlname->is_string())
    return envelope_error(metrics_json_now(),
                          Status::InvalidArgument("submit requires 'workload'"));
  JobRequest jr;
  if (kind == "pipeline") {
    jr = JobRequest::pipeline(wlname->as_string());
  } else if (kind == "simulate") {
    SimRequest sr;
    const Status st = parse_sim_request(req, sr);
    if (!st.ok()) return envelope_error(metrics_json_now(), st);
    jr = JobRequest::simulate(wlname->as_string(), sr);
  } else if (kind == "fault_campaign") {
    FaultCampaignRequest cr;
    // A campaign is compressed by construction; default the template
    // mode to perfect quality when the request names none.
    if (!req.get("mode")) cr.sim.mode = wl::SimMode::kCompressedPerfect;
    Status st = parse_sim_request(req, cr.sim);
    if (st.ok()) st = parse_number_array(req, "densities", cr.densities);
    if (!st.ok()) return envelope_error(metrics_json_now(), st);
    if (const JsonValue* m = req.get("maps_per_density"))
      cr.maps_per_density = static_cast<int>(m->as_int(3));
    if (const JsonValue* b = req.get("base_seed"))
      cr.base_seed = static_cast<uint64_t>(b->as_int(1));
    if (const JsonValue* q = req.get("quality_floor"))
      cr.quality_floor = q->as_double(0.0);
    jr = JobRequest::fault_campaign(wlname->as_string(), std::move(cr));
  } else if (kind == "transient_campaign") {
    TransientCampaignRequest tr;
    Status st = parse_sim_request(req, tr.sim);
    if (st.ok()) st = parse_number_array(req, "flip_rates", tr.flip_rates);
    if (!st.ok()) return envelope_error(metrics_json_now(), st);
    if (const JsonValue* s = req.get("seeds_per_rate"))
      tr.seeds_per_rate = static_cast<int>(s->as_int(3));
    if (const JsonValue* b = req.get("base_seed"))
      tr.base_seed = static_cast<uint64_t>(b->as_int(1));
    jr = JobRequest::transient_campaign(wlname->as_string(), std::move(tr));
  } else {
    return envelope_error(
        metrics_json_now(),
        Status::InvalidArgument(
            "unknown kind '" + kind +
            "' (pipeline|simulate|fault_campaign|transient_campaign)"));
  }
  if (const JsonValue* p = req.get("priority"))
    jr.priority = static_cast<int>(p->as_int(0));
  if (const JsonValue* d = req.get("deadline_ms"))
    jr.deadline_ms = d->as_int(0);

  // Fingerprint-affine routing (ISSUE 8): the same workload always lands
  // on the same engine shard, keeping its tune/analysis caches hot there.
  const int shard = fleet_->shard_for_workload(wlname->as_string());
  Engine& engine = fleet_->shard(shard);

  // Fail fast on unknown workloads: the submit itself reports NOT_FOUND
  // instead of parking a doomed job in the queue.
  auto wlp = engine.workload(wlname->as_string());
  if (!wlp.ok()) return envelope_error(metrics_json_now(), wlp.status());

  // Per-token quotas (ISSUE 8): a token-bucket on submit rate and a cap
  // on unfinished jobs, both rejecting with RESOURCE_EXHAUSTED and a
  // structured retry_after_ms instead of queueing the excess.
  std::shared_ptr<TokenState> ts;
  if (opts_.token_rate > 0.0 || opts_.token_max_inflight > 0) {
    ts = quotas_->get(token);
    std::lock_guard<std::mutex> lock(ts->mu);
    if (opts_.token_rate > 0.0) {
      const double burst = opts_.token_burst > 0.0
                               ? opts_.token_burst
                               : std::max(1.0, opts_.token_rate);
      const auto now = std::chrono::steady_clock::now();
      if (!ts->bucket_init) {
        ts->bucket = burst;
        ts->bucket_init = true;
      } else {
        const double dt =
            std::chrono::duration<double>(now - ts->last_refill).count();
        ts->bucket = std::min(burst, ts->bucket + dt * opts_.token_rate);
      }
      ts->last_refill = now;
      if (ts->bucket < 1.0) {
        const int64_t retry_ms = static_cast<int64_t>(
            std::ceil((1.0 - ts->bucket) / opts_.token_rate * 1000.0));
        return envelope_error(
            metrics_json_now(),
            Status::ResourceExhausted("submit rate quota exceeded for token"),
            std::max<int64_t>(1, retry_ms));
      }
      ts->bucket -= 1.0;
    }
    if (opts_.token_max_inflight > 0 &&
        ts->inflight >= opts_.token_max_inflight) {
      // Back-off hint: the mean job wall time is when a slot plausibly
      // frees up; clamped so a cold daemon still gives a sane hint.
      const MetricsSnapshot m = fleet_->metrics_snapshot();
      const uint64_t term = m.jobs_done + m.jobs_failed + m.jobs_cancelled +
                            m.jobs_deadline_exceeded;
      const int64_t mean_ms =
          term ? static_cast<int64_t>(m.job_wall_us_total / term / 1000)
               : 100;
      return envelope_error(
          metrics_json_now(),
          Status::ResourceExhausted(
              std::string("token in-flight quota (") +
              std::to_string(opts_.token_max_inflight) + ") exceeded"),
          std::clamp<int64_t>(mean_ms, 50, 5000));
    }
    ts->inflight += 1;
  }

  Job job;
  try {
    job = engine.submit(std::move(jr));
  } catch (...) {
    if (ts) {
      std::lock_guard<std::mutex> lock(ts->mu);
      ts->inflight -= 1;
    }
    throw;
  }
  if (ts) {
    // The listener owns the state through shared_ptrs — it may fire after
    // this Server is long gone (the Engines outlive it).
    auto table = quotas_;
    auto state = ts;
    job.on_terminal([table, state] {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->inflight > 0) state->inflight -= 1;
    });
  }

  JsonWriter w = envelope_begin();
  write_job_fields(w, job);
  w.field("shard", static_cast<int64_t>(shard));
  return envelope_finish(metrics_json_now(), w);
}

std::string Server::handle_job_op(const JsonValue& req, const std::string& op,
                                  SendLineFn* push) {
  const JsonValue* idv = req.get("job");
  if (!idv || !idv->is_number())
    return envelope_error(
        metrics_json_now(),
        Status::InvalidArgument("'" + op + "' requires 'job'"));
  const uint64_t id = static_cast<uint64_t>(idv->as_int());
  if (id == 0)
    return envelope_error(metrics_json_now(),
                          Status::NotFound("no job with id 0"));
  // Residue-class routing: job ids are disjoint per shard, so the id
  // names its owner without any shared lookup table.
  const int shard = fleet_->shard_for_job(id);
  auto job = fleet_->shard(shard).find_job(id);
  if (!job.ok()) return envelope_error(metrics_json_now(), job.status());

  bool watched_event = false;  // watch op: emitted at least the terminal tag
  if (op == "cancel") {
    job->cancel();
  } else if (op == "wait") {
    int64_t timeout_ms = req.get("timeout_ms")
                             ? req.get("timeout_ms")->as_int(600000)
                             : 600000;
    if (timeout_ms < 0) timeout_ms = 0;
    // Sliced wait: a stopping server must not stay pinned behind a
    // client's multi-minute wait — each slice rechecks stopping_, so
    // stop() drains this handler within ~200ms (the response then
    // reports whatever state the job reached).
    while (timeout_ms > 0 && !stopping_.load(std::memory_order_acquire)) {
      const int64_t slice = timeout_ms < 200 ? timeout_ms : 200;
      if (job->wait_for(std::chrono::milliseconds(slice))) break;
      timeout_ms -= slice;
    }
  } else if (op == "watch") {
    // Push subscription (ISSUE 8): progress events stream as their own
    // envelope lines whenever the job's progress fingerprint changes;
    // the method's return value is the closing wait-style envelope.
    // Without a transport (the in-process seam) watch degrades to wait.
    watched_event = true;
    int64_t timeout_ms = req.get("timeout_ms")
                             ? req.get("timeout_ms")->as_int(600000)
                             : 600000;
    if (timeout_ms < 0) timeout_ms = 0;
    int64_t progress_ms = req.get("progress_ms")
                              ? req.get("progress_ms")->as_int(100)
                              : 100;
    progress_ms = std::clamp<int64_t>(progress_ms, 10, 1000);
    std::string last_key = progress_key(*job);
    while (timeout_ms > 0 && !stopping_.load(std::memory_order_acquire)) {
      const int64_t slice = std::min<int64_t>(timeout_ms, progress_ms);
      if (job->wait_for(std::chrono::milliseconds(slice))) break;
      timeout_ms -= slice;
      if (!push) continue;
      std::string key = progress_key(*job);
      if (key == last_key) continue;
      last_key = std::move(key);
      JsonWriter ev;
      ev.begin_object();
      ev.field("ok", true);
      ev.field("event", "progress");
      write_job_fields(ev, *job);
      ev.end_object();
      if (!(*push)(ev.str())) break;  // peer gone — stop early
    }
  }

  JsonWriter w = envelope_begin();
  if (watched_event) w.field("event", "terminal");
  write_job_fields(w, *job);

  // Result attachment (wait and watch): inline by default; with
  // "stream":true a result larger than chunk_bytes is sliced into
  // follow-up {"chunk":..} lines so one huge campaign snapshot cannot
  // monopolise the line buffer of every proxy between us and the client.
  std::string extra_lines;
  if ((op == "wait" || op == "watch") && job->state() == JobState::kDone) {
    const std::string result = result_json_for(*job);
    if (!result.empty()) {
      const bool stream =
          req.get("stream") ? req.get("stream")->as_bool(false) : false;
      size_t chunk_bytes =
          req.get("chunk_bytes")
              ? static_cast<size_t>(
                    std::max<int64_t>(256, req.get("chunk_bytes")->as_int(4096)))
              : 4096;
      if (stream && result.size() > chunk_bytes) {
        const size_t n_chunks = (result.size() + chunk_bytes - 1) / chunk_bytes;
        w.field("result_bytes", static_cast<uint64_t>(result.size()));
        w.field("result_chunks", static_cast<uint64_t>(n_chunks));
        for (size_t i = 0; i < n_chunks; ++i) {
          JsonWriter cw;
          cw.begin_object();
          cw.field("chunk", static_cast<uint64_t>(i));
          cw.field("of", static_cast<uint64_t>(n_chunks));
          cw.field("data",
                   result.substr(i * chunk_bytes,
                                 std::min(chunk_bytes,
                                          result.size() - i * chunk_bytes)));
          cw.end_object();
          extra_lines += '\n';
          extra_lines += cw.str();
        }
      } else {
        w.raw("result", result);
      }
    }
  }
  return envelope_finish(metrics_json_now(), w) + extra_lines;
}

int64_t envelope_retry_after_ms(const JsonValue& envelope) {
  const JsonValue* err = envelope.get("error");
  if (!err) return -1;
  const JsonValue* ra = err->get("retry_after_ms");
  if (!ra || !ra->is_number()) return -1;
  return ra->as_int(-1);
}

// ---------------------------------------------------------------- Client

namespace {

/// Transient connect failures worth a retry: the daemon is starting up
/// (socket not bound yet / nothing listening) or momentarily saturated.
bool connect_errno_transient(int err) {
  return err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
         err == EWOULDBLOCK || err == EINTR || err == ECONNRESET ||
         err == ETIMEDOUT;
}

/// One connect attempt with a deadline: non-blocking connect + poll so a
/// daemon wedged inside accept() cannot hang the caller.  Returns the
/// connected (blocking-mode) fd, or -1 with errno describing the failure
/// (ETIMEDOUT for a poll timeout).
int connect_once(const sockaddr* addr, socklen_t addr_len, int family,
                 int timeout_ms) {
  const int fd = ::socket(family, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  if (::connect(fd, addr, addr_len) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const int err = errno;
      ::close(fd);
      errno = err;
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms < 0 ? -1 : timeout_ms);
    if (pr <= 0) {
      ::close(fd);
      errno = pr == 0 ? ETIMEDOUT : errno;
      return -1;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
        soerr != 0) {
      ::close(fd);
      errno = soerr != 0 ? soerr : errno;
      return -1;
    }
  }
  // Back to blocking mode: call() relies on SO_RCVTIMEO/SO_SNDTIMEO.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  return fd;
}

void set_socket_timeout(int fd, int opt, int timeout_ms) {
  if (timeout_ms <= 0) return;  // 0 = no timeout (kernel default)
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

/// Bounded retry with exponential backoff + jitter (PR 6 satellite): a
/// client racing a daemon's startup sees ECONNREFUSED/ENOENT for a few
/// milliseconds; retrying with jittered backoff absorbs that without a
/// thundering herd.  Non-transient errors (EACCES, ...) fail immediately.
/// Returns the fd (>= 0) or -1 with `out_status` set.
int connect_with_retry(const sockaddr* addr, socklen_t addr_len, int family,
                       const ClientOptions& opts, const std::string& what,
                       const void* jitter_salt, Status& out_status) {
  uint64_t jitter_state =
      static_cast<uint64_t>(::getpid()) * 0x9e3779b97f4a7c15ULL ^
      reinterpret_cast<uintptr_t>(jitter_salt);
  int backoff_ms = opts.backoff_initial_ms;
  for (int attempt = 0; attempt <= opts.retries; ++attempt) {
    const int fd = connect_once(addr, addr_len, family, opts.connect_timeout_ms);
    if (fd >= 0) {
      out_status = Status::Ok();
      return fd;
    }
    const int err = errno;
    if (!connect_errno_transient(err) || attempt == opts.retries) {
      const std::string msg =
          what + ": " + std::strerror(err) +
          (attempt ? " (after " + std::to_string(attempt + 1) + " attempts)"
                   : "");
      out_status = connect_errno_transient(err) ? Status::Unavailable(msg)
                                                : Status::Internal(msg);
      return -1;
    }
    // Full jitter: sleep a uniform slice of the current backoff window.
    const int sleep_ms =
        1 + static_cast<int>(gpurf::splitmix64(jitter_state) %
                             static_cast<uint64_t>(backoff_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min(backoff_ms * 2, opts.backoff_max_ms);
  }
  out_status = Status::Internal(what + ": retry loop exhausted");
  return -1;
}

}  // namespace

void Client::finish_connect(const std::string& what) {
  (void)what;
  if (fd_ >= 0) {
    set_socket_timeout(fd_, SO_RCVTIMEO, opts_.read_timeout_ms);
    set_socket_timeout(fd_, SO_SNDTIMEO, opts_.read_timeout_ms);
  }
}

Client::Client(const std::string& socket_path, ClientOptions opts)
    : opts_(std::move(opts)) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    status_ = Status::InvalidArgument("socket path too long: " + socket_path);
    return;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = connect_with_retry(reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr), AF_UNIX, opts_,
                           "connect " + socket_path, this, status_);
  finish_connect(socket_path);
}

Client::Client(const std::string& host, int port, ClientOptions opts)
    : opts_(std::move(opts)) {
  if (port <= 0 || port > 65535) {
    status_ = Status::InvalidArgument("bad port " + std::to_string(port));
    return;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const int gai =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (gai != 0 || !res) {
    status_ = Status::InvalidArgument("resolve " + host + ": " +
                                      ::gai_strerror(gai));
    if (res) ::freeaddrinfo(res);
    return;
  }
  const std::string what = "connect " + host + ":" + std::to_string(port);
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd_ = connect_with_retry(ai->ai_addr, ai->ai_addrlen, ai->ai_family,
                             opts_, what, this, status_);
    if (fd_ >= 0) break;
  }
  ::freeaddrinfo(res);
  if (fd_ >= 0) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  finish_connect(what);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::string> Client::read_line() {
  char chunk[4096];
  for (;;) {
    const size_t nl = rxbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rxbuf_.substr(0, nl);
      rxbuf_.erase(0, nl + 1);
      return line;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      // A read timeout leaves the stream position unknown, so the caller
      // must not resend on this connection — reconnect instead.
      return Status::Unavailable(
          "read timed out after " + std::to_string(opts_.read_timeout_ms) +
          "ms");
    if (n <= 0)
      return Status::Unavailable(
          "connection closed before a response arrived");
    rxbuf_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<std::string> Client::call(const std::string& request_line) {
  if (!status_.ok()) return status_;
  std::string out = request_line;
  out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    // MSG_NOSIGNAL: a dead daemon surfaces as an error status, not a
    // SIGPIPE that kills the client process.
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Status::Unavailable(
            "write timed out after " + std::to_string(opts_.read_timeout_ms) +
            "ms");
      return Status::Unavailable(std::string("write: ") +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return read_line();
}

StatusOr<JsonValue> Client::absorb_chunks(JsonValue envelope) {
  const JsonValue* rc = envelope.get("result_chunks");
  if (!rc || !rc->is_number() || rc->as_int() <= 0) return envelope;
  const int64_t n_chunks = rc->as_int();
  std::string data;
  const JsonValue* rb = envelope.get("result_bytes");
  if (rb && rb->is_number()) data.reserve(static_cast<size_t>(rb->as_int()));
  for (int64_t i = 0; i < n_chunks; ++i) {
    auto line = read_line();
    if (!line.ok()) return line.status();
    auto chunk = parse_json(*line);
    if (!chunk.ok()) return chunk.status();
    const JsonValue* d = chunk->get("data");
    if (!d || !d->is_string())
      return Status::DataLoss("chunk " + std::to_string(i) +
                              " carries no 'data'");
    data += d->str_v;
  }
  auto result = parse_json(data);
  if (!result.ok())
    return Status::DataLoss("reassembled result is not valid JSON: " +
                            result.status().message());
  envelope.members.emplace_back("result", std::move(*result));
  return envelope;
}

StatusOr<JsonValue> Client::call_json(const std::string& request_line) {
  auto resp = call(request_line);
  if (!resp.ok()) return resp.status();
  auto parsed = parse_json(*resp);
  if (!parsed.ok()) return parsed.status();
  return absorb_chunks(std::move(*parsed));
}

StatusOr<JsonValue> Client::watch(
    uint64_t job, int64_t timeout_ms,
    const std::function<void(const JsonValue&)>& on_progress) {
  JsonWriter w;
  w.begin_object();
  w.field("op", "watch");
  w.field("job", job);
  w.field("timeout_ms", static_cast<int64_t>(timeout_ms));
  if (!opts_.token.empty()) w.field("token", opts_.token);
  w.end_object();
  auto first = call(w.str());
  if (!first.ok()) return first.status();
  std::string line = std::move(*first);
  for (;;) {
    auto parsed = parse_json(line);
    if (!parsed.ok()) return parsed.status();
    const JsonValue* ev = parsed->get("event");
    if (ev && ev->as_string() == "progress") {
      if (on_progress) on_progress(*parsed);
      auto next = read_line();
      if (!next.ok()) return next.status();
      line = std::move(*next);
      continue;
    }
    // Terminal (or error) envelope — possibly followed by result chunks.
    return absorb_chunks(std::move(*parsed));
  }
}

}  // namespace gpurf::api
