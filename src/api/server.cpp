#include "api/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/rng.hpp"

namespace gpurf::api {

namespace {

namespace wl = gpurf::workloads;

/// Response envelope builders: every reply — success or error — embeds the
/// Engine's metrics snapshot (ISSUE 4 satellite).
std::string envelope_error(Engine& e, const Status& st) {
  JsonWriter w;
  w.begin_object();
  w.field("ok", false);
  w.begin_object("error");
  w.field("code", status_code_name(st.code()));
  w.field("message", st.message());
  w.end_object();
  w.raw("metrics", e.metrics_json());
  w.end_object();
  return w.str();
}

/// Start a success envelope; the caller adds payload fields, then calls
/// envelope_finish.
JsonWriter envelope_begin() {
  JsonWriter w;
  w.begin_object();
  w.field("ok", true);
  return w;
}

std::string envelope_finish(Engine& e, JsonWriter& w) {
  w.raw("metrics", e.metrics_json());
  w.end_object();
  return w.str();
}

Status parse_sim_request(const JsonValue& req, SimRequest& out) {
  // A missing "mode" keeps the caller's pre-set default (original for
  // simulate, perfect for fault campaigns).
  if (req.get("mode")) {
    const std::string mode = req.get("mode")->as_string("original");
    if (mode == "original") out.mode = wl::SimMode::kOriginal;
    else if (mode == "perfect") out.mode = wl::SimMode::kCompressedPerfect;
    else if (mode == "high") out.mode = wl::SimMode::kCompressedHigh;
    else
      return Status::InvalidArgument("unknown mode '" + mode +
                                     "' (original|perfect|high)");
  }

  const std::string scale =
      req.get("scale") ? req.get("scale")->as_string("full") : "full";
  if (scale == "full") out.scale = wl::Scale::kFull;
  else if (scale == "sample") out.scale = wl::Scale::kSample;
  else
    return Status::InvalidArgument("unknown scale '" + scale +
                                   "' (sample|full)");

  if (const JsonValue* v = req.get("variant"))
    out.variant = static_cast<uint32_t>(v->as_int(0));
  if (const JsonValue* d = req.get("writeback_delay"))
    out.compression = sim::CompressionConfig::with_writeback_delay(
        static_cast<uint32_t>(d->as_int(0)));
  if (const JsonValue* s = req.get("sim_shards"))
    out.sim_shards = static_cast<int>(s->as_int(0));
  // Permanent-fault injection (PR 6): density > 0 turns it on; the Engine
  // rejects it for mode=original (faults live in the compressed file).
  if (const JsonValue* fs = req.get("fault_seed"))
    out.fault.seed = static_cast<uint64_t>(fs->as_int(0));
  if (const JsonValue* fd = req.get("fault_density"))
    out.fault.density = fd->as_double(0.0);
  if (const JsonValue* fq = req.get("fault_quality"))
    out.fault.score_quality = fq->as_bool(false);
  // Transient soft errors (PR 7): a positive rate attaches the flip
  // process; exposure tracking works at any rate (including zero).
  if (const JsonValue* sr = req.get("soft_flips_per_mcycle"))
    out.soft.flips_per_mcycle = sr->as_double(0.0);
  if (const JsonValue* ss = req.get("soft_seed"))
    out.soft.seed = static_cast<uint64_t>(ss->as_int(1));
  if (const JsonValue* se = req.get("soft_track_exposure"))
    out.soft.track_exposure = se->as_bool(false);
  if (const JsonValue* sq = req.get("soft_quality"))
    out.soft_score_quality = sq->as_bool(false);
  if (const JsonValue* rt = req.get("retune_on_faults"))
    out.retune_on_faults = rt->as_bool(false);
  return Status::Ok();
}

/// Parse an array-of-numbers request field into `out`; leaves `out`
/// untouched when the key is absent.
Status parse_number_array(const JsonValue& req, const char* key,
                          std::vector<double>& out) {
  const JsonValue* arr = req.get(key);
  if (!arr) return Status::Ok();
  if (!arr->is_array())
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be an array of numbers");
  out.clear();
  for (const JsonValue& v : arr->items) {
    if (!v.is_number())
      return Status::InvalidArgument(std::string("'") + key +
                                     "' must be an array of numbers");
    out.push_back(v.num_v);
  }
  return Status::Ok();
}

void write_job_fields(JsonWriter& w, const Job& job) {
  const JobProgress p = job.progress();
  w.field("job", job.id());
  w.field("workload", job.workload());
  w.field("kind", job_kind_name(job.kind()));
  w.field("priority", job.priority());
  w.field("state", job_state_name(p.state));
  w.begin_object("progress");
  w.field("stage", common::job_stage_name(p.stage));
  w.field("tuner_pass", p.tuner_pass);
  w.field("tuner_evaluations", p.tuner_evaluations);
  w.field("sim_cycles", p.sim_cycles);
  w.field("run_seq", p.run_seq);
  w.field("wall_ms", p.wall_ms);
  w.field("exec_ms", p.exec_ms);
  if (job_kind_campaign(job.kind())) {
    w.field("campaign_maps_done", p.campaign_maps_done);
    w.field("campaign_maps_total", p.campaign_maps_total);
  }
  w.end_object();
  // Terminal jobs also report their status (and the error, if any) so a
  // client can distinguish done / failed / cancelled / deadline-exceeded
  // without a second round trip.
  if (job_state_terminal(p.state)) {
    const Status st = job.status();
    w.field("status_code", status_code_name(st.code()));
    if (!st.ok()) {
      w.begin_object("job_error");
      w.field("code", status_code_name(st.code()));
      w.field("message", st.message());
      w.end_object();
    }
  }
}

}  // namespace

Server::Server(Engine& engine, ServerOptions opts)
    : engine_(engine), opts_(std::move(opts)) {}

Server::~Server() { stop(); }

Status Server::start() {
  if (opts_.socket_path.empty())
    return Status::InvalidArgument("gpurfd: socket_path is empty");
  sockaddr_un addr{};
  if (opts_.socket_path.size() >= sizeof(addr.sun_path))
    return Status::InvalidArgument("gpurfd: socket path too long: " +
                                   opts_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(opts_.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::Internal("bind " + opts_.socket_path + ": " +
                                       std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 16) < 0) {
    const Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::Ok();
}

void Server::reap_finished() {
  // Collect the joinable handles under the lock, join them outside it:
  // a handler's exit path takes mu_ to deregister itself, so joining
  // while holding mu_ could deadlock against a thread that is *almost*
  // finished.  Joining after its finished_ entry appeared is cheap — the
  // handler has nothing left to run but its epilogue.
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t id : finished_) {
      auto it = threads_.find(id);
      if (it == threads_.end()) continue;
      done.push_back(std::move(it->second));
      threads_.erase(it);
    }
    finished_.clear();
  }
  for (auto& t : done) t.join();
}

void Server::stop() {
  stopping_.store(true, std::memory_order_release);
  const bool was_running = running_.exchange(false);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Kick every live connection (unblocks reads; a handler parked inside a
  // long "wait" op notices stopping_ within one wait slice), then join
  // every handler thread.  After the joins no connection code can run, so
  // destroying the Server immediately afterwards is safe — this is the
  // ISSUE 5 fix for the detached-thread shutdown race.
  std::map<uint64_t, std::thread> remaining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RDWR);
    remaining.swap(threads_);
    finished_.clear();
  }
  for (auto& [id, t] : remaining) t.join();
  if (was_running) ::unlink(opts_.socket_path.c_str());
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listener closed underneath us
    }
    // Joining finished predecessors here bounds the registry at the
    // number of *live* connections plus the already-finished ones since
    // the last accept — a long-lived daemon never accumulates handles.
    reap_finished();
    {
      // Register the socket and the handle atomically: stop() joins this
      // accept thread before it swaps the registry out, so every spawned
      // handler is guaranteed to be visible to the final join pass.
      std::lock_guard<std::mutex> lock(mu_);
      const uint64_t id = next_conn_id_++;
      conns_.insert(fd);
      threads_.emplace(id,
                       std::thread([this, fd, id] { serve_connection(fd, id); }));
    }
  }
}

void Server::serve_connection(int fd, uint64_t conn_id) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF, shutdown, or error
    buf.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.empty()) continue;
      std::string resp = handle_request_line(line);
      resp += '\n';
      size_t off = 0;
      while (off < resp.size()) {
        // MSG_NOSIGNAL: a client that hung up mid-response must produce
        // EPIPE here, not a SIGPIPE that kills the whole daemon.
        const ssize_t wr = ::send(fd, resp.data() + off, resp.size() - off,
                                  MSG_NOSIGNAL);
        if (wr <= 0) { off = resp.size(); break; }
        off += static_cast<size_t>(wr);
      }
    }
  }
  // Join predecessors that already finished — without this, a
  // burst-then-idle daemon would retain exited-but-unjoined handles (and
  // their stacks) until the next accept.  Safe here: this thread's own id
  // is not on finished_ yet, so it never joins itself.
  reap_finished();
  // Deregister and close under one lock so stop() can never shutdown() an
  // fd number this thread already closed (and the kernel reassigned).
  // Parking the id on finished_ hands the joinable handle to the next
  // reaper (a later handler exit or accept) or to stop(), whichever
  // comes first.
  std::lock_guard<std::mutex> lock(mu_);
  conns_.erase(fd);
  ::close(fd);
  finished_.push_back(conn_id);
}

std::string Server::handle_request_line(const std::string& line) {
  StatusOr<JsonValue> parsed = parse_json(line);
  if (!parsed.ok()) return envelope_error(engine_, parsed.status());
  const JsonValue& req = *parsed;
  if (!req.is_object())
    return envelope_error(engine_,
                          Status::InvalidArgument("request must be an object"));
  const std::string op = req.get("op") ? req.get("op")->as_string() : "";

  try {
    if (op == "ping") {
      JsonWriter w = envelope_begin();
      w.field("pong", true);
      return envelope_finish(engine_, w);
    }

    if (op == "list") {
      JsonWriter w = envelope_begin();
      w.begin_array("workloads");
      for (const auto& n : engine_.workload_names()) w.element(n);
      w.end_array();
      return envelope_finish(engine_, w);
    }

    if (op == "metrics") {
      JsonWriter w = envelope_begin();
      return envelope_finish(engine_, w);
    }

    if (op == "submit") {
      const std::string kind =
          req.get("kind") ? req.get("kind")->as_string("pipeline")
                          : "pipeline";
      const JsonValue* wlname = req.get("workload");
      if (!wlname || !wlname->is_string())
        return envelope_error(
            engine_, Status::InvalidArgument("submit requires 'workload'"));
      JobRequest jr;
      if (kind == "pipeline") {
        jr = JobRequest::pipeline(wlname->as_string());
      } else if (kind == "simulate") {
        SimRequest sr;
        const Status st = parse_sim_request(req, sr);
        if (!st.ok()) return envelope_error(engine_, st);
        jr = JobRequest::simulate(wlname->as_string(), sr);
      } else if (kind == "fault_campaign") {
        FaultCampaignRequest cr;
        // A campaign is compressed by construction; default the template
        // mode to perfect quality when the request names none.
        if (!req.get("mode")) cr.sim.mode = wl::SimMode::kCompressedPerfect;
        Status st = parse_sim_request(req, cr.sim);
        if (st.ok()) st = parse_number_array(req, "densities", cr.densities);
        if (!st.ok()) return envelope_error(engine_, st);
        if (const JsonValue* m = req.get("maps_per_density"))
          cr.maps_per_density = static_cast<int>(m->as_int(3));
        if (const JsonValue* b = req.get("base_seed"))
          cr.base_seed = static_cast<uint64_t>(b->as_int(1));
        if (const JsonValue* q = req.get("quality_floor"))
          cr.quality_floor = q->as_double(0.0);
        jr = JobRequest::fault_campaign(wlname->as_string(), std::move(cr));
      } else if (kind == "transient_campaign") {
        TransientCampaignRequest tr;
        Status st = parse_sim_request(req, tr.sim);
        if (st.ok()) st = parse_number_array(req, "flip_rates", tr.flip_rates);
        if (!st.ok()) return envelope_error(engine_, st);
        if (const JsonValue* s = req.get("seeds_per_rate"))
          tr.seeds_per_rate = static_cast<int>(s->as_int(3));
        if (const JsonValue* b = req.get("base_seed"))
          tr.base_seed = static_cast<uint64_t>(b->as_int(1));
        jr = JobRequest::transient_campaign(wlname->as_string(),
                                            std::move(tr));
      } else {
        return envelope_error(
            engine_,
            Status::InvalidArgument(
                "unknown kind '" + kind +
                "' (pipeline|simulate|fault_campaign|transient_campaign)"));
      }
      if (const JsonValue* p = req.get("priority"))
        jr.priority = static_cast<int>(p->as_int(0));
      if (const JsonValue* d = req.get("deadline_ms"))
        jr.deadline_ms = d->as_int(0);
      // Fail fast on unknown workloads: the submit itself reports
      // NOT_FOUND instead of parking a doomed job in the queue.
      auto wlp = engine_.workload(wlname->as_string());
      if (!wlp.ok()) return envelope_error(engine_, wlp.status());
      Job job = engine_.submit(std::move(jr));
      JsonWriter w = envelope_begin();
      write_job_fields(w, job);
      return envelope_finish(engine_, w);
    }

    // Remaining ops address an existing job by id.
    const JsonValue* idv = req.get("job");
    if (op == "status" || op == "wait" || op == "cancel") {
      if (!idv || !idv->is_number())
        return envelope_error(
            engine_, Status::InvalidArgument("'" + op + "' requires 'job'"));
      auto job = engine_.find_job(static_cast<uint64_t>(idv->as_int()));
      if (!job.ok()) return envelope_error(engine_, job.status());

      if (op == "cancel") {
        job->cancel();
      } else if (op == "wait") {
        int64_t timeout_ms =
            req.get("timeout_ms") ? req.get("timeout_ms")->as_int(600000)
                                  : 600000;
        if (timeout_ms < 0) timeout_ms = 0;
        // Sliced wait: a stopping server must not stay pinned behind a
        // client's multi-minute wait — each slice rechecks stopping_, so
        // stop() drains this handler within ~200ms (the response then
        // reports whatever state the job reached).
        while (timeout_ms > 0 && !stopping_.load(std::memory_order_acquire)) {
          const int64_t slice = timeout_ms < 200 ? timeout_ms : 200;
          if (job->wait_for(std::chrono::milliseconds(slice))) break;
          timeout_ms -= slice;
        }
      }
      JsonWriter w = envelope_begin();
      write_job_fields(w, *job);
      if (op == "wait" && job->state() == JobState::kDone) {
        if (job->kind() == JobKind::kPipeline) {
          auto pr = job->pipeline_result();
          if (pr.ok()) w.raw("result", to_json(*pr));
        } else if (job->kind() == JobKind::kFaultCampaign) {
          auto cr = job->campaign_result();
          if (cr.ok()) w.raw("result", to_json(*cr));
        } else if (job->kind() == JobKind::kTransientCampaign) {
          auto tr = job->transient_result();
          if (tr.ok()) w.raw("result", to_json(*tr));
        } else {
          auto sr = job->sim_result();
          if (sr.ok()) w.raw("result", to_json(*sr));
        }
      }
      return envelope_finish(engine_, w);
    }

    if (op == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      JsonWriter w = envelope_begin();
      w.field("shutting_down", true);
      return envelope_finish(engine_, w);
    }

    return envelope_error(
        engine_, Status::InvalidArgument(
                     "unknown op '" + op +
                     "' (ping|list|metrics|submit|status|wait|cancel|"
                     "shutdown)"));
  } catch (const Error& e) {
    return envelope_error(engine_, Status::FailedPrecondition(e.what()));
  } catch (const std::exception& e) {
    return envelope_error(engine_, Status::Internal(e.what()));
  }
}

// ---------------------------------------------------------------- Client

namespace {

/// Transient connect failures worth a retry: the daemon is starting up
/// (socket not bound yet / nothing listening) or momentarily saturated.
bool connect_errno_transient(int err) {
  return err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
         err == EWOULDBLOCK || err == EINTR || err == ECONNRESET ||
         err == ETIMEDOUT;
}

/// One connect attempt with a deadline: non-blocking connect + poll so a
/// daemon wedged inside accept() cannot hang the caller.  Returns the
/// connected (blocking-mode) fd, or -1 with errno describing the failure
/// (ETIMEDOUT for a poll timeout).
int connect_once(const sockaddr_un& addr, int timeout_ms) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const int err = errno;
      ::close(fd);
      errno = err;
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms < 0 ? -1 : timeout_ms);
    if (pr <= 0) {
      ::close(fd);
      errno = pr == 0 ? ETIMEDOUT : errno;
      return -1;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
        soerr != 0) {
      ::close(fd);
      errno = soerr != 0 ? soerr : errno;
      return -1;
    }
  }
  // Back to blocking mode: call() relies on SO_RCVTIMEO/SO_SNDTIMEO.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  return fd;
}

void set_socket_timeout(int fd, int opt, int timeout_ms) {
  if (timeout_ms <= 0) return;  // 0 = no timeout (kernel default)
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

}  // namespace

Client::Client(const std::string& socket_path, ClientOptions opts)
    : opts_(opts) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    status_ = Status::InvalidArgument("socket path too long: " + socket_path);
    return;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  // Bounded retry with exponential backoff + jitter (PR 6 satellite): a
  // client racing a daemon's startup sees ECONNREFUSED/ENOENT for a few
  // milliseconds; retrying with jittered backoff absorbs that without a
  // thundering herd.  Non-transient errors (EACCES, ...) fail immediately.
  uint64_t jitter_state = static_cast<uint64_t>(::getpid()) * 0x9e3779b97f4a7c15ULL ^
                          reinterpret_cast<uintptr_t>(this);
  int backoff_ms = opts_.backoff_initial_ms;
  for (int attempt = 0; attempt <= opts_.retries; ++attempt) {
    fd_ = connect_once(addr, opts_.connect_timeout_ms);
    if (fd_ >= 0) {
      set_socket_timeout(fd_, SO_RCVTIMEO, opts_.read_timeout_ms);
      set_socket_timeout(fd_, SO_SNDTIMEO, opts_.read_timeout_ms);
      status_ = Status::Ok();
      return;
    }
    const int err = errno;
    if (!connect_errno_transient(err) || attempt == opts_.retries) {
      const std::string what =
          "connect " + socket_path + ": " + std::strerror(err) +
          (attempt ? " (after " + std::to_string(attempt + 1) + " attempts)"
                   : "");
      status_ = connect_errno_transient(err) ? Status::Unavailable(what)
                                             : Status::Internal(what);
      return;
    }
    // Full jitter: sleep a uniform slice of the current backoff window.
    const int sleep_ms =
        1 + static_cast<int>(gpurf::splitmix64(jitter_state) %
                             static_cast<uint64_t>(backoff_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min(backoff_ms * 2, opts_.backoff_max_ms);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::string> Client::call(const std::string& request_line) {
  if (!status_.ok()) return status_;
  std::string out = request_line;
  out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    // MSG_NOSIGNAL: a dead daemon surfaces as an error status, not a
    // SIGPIPE that kills the client process.
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Status::Unavailable(
            "write timed out after " + std::to_string(opts_.read_timeout_ms) +
            "ms");
      return Status::Unavailable(std::string("write: ") +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  char chunk[4096];
  for (;;) {
    const size_t nl = rxbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rxbuf_.substr(0, nl);
      rxbuf_.erase(0, nl + 1);
      return line;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      // A read timeout leaves the stream position unknown, so the caller
      // must not resend on this connection — reconnect instead.
      return Status::Unavailable(
          "read timed out after " + std::to_string(opts_.read_timeout_ms) +
          "ms");
    if (n <= 0)
      return Status::Unavailable(
          "connection closed before a response arrived");
    rxbuf_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<JsonValue> Client::call_json(const std::string& request_line) {
  auto resp = call(request_line);
  if (!resp.ok()) return resp.status();
  return parse_json(*resp);
}

}  // namespace gpurf::api
