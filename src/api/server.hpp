#pragma once
// gpurfd — the Engine's socket transport (ISSUE 4 tentpole).
//
// A Server wraps one Engine and speaks newline-delimited JSON over a local
// (AF_UNIX stream) socket: one request object per line in, one response
// object per line out, connections are long-lived and requests on a
// connection are handled in order.  Requests map 1:1 onto the Job API —
// submit / status / wait / cancel — plus introspection (ping, list,
// metrics) and a cooperative shutdown.
//
// Wire protocol (all fields beyond "op" optional unless noted):
//
//   {"op":"ping"}
//   {"op":"list"}                                   -> {"workloads":[...]}
//   {"op":"submit","kind":"pipeline"|"simulate"|"fault_campaign",
//    "workload":NAME,
//    "mode":"original"|"perfect"|"high","scale":"sample"|"full",
//    "variant":N,"writeback_delay":N,"sim_shards":N,"priority":N,
//    "deadline_ms":N,
//    // simulate only (PR 6 fault injection; needs a compressed mode):
//    "fault_seed":N,"fault_density":F,"fault_quality":B,
//    // fault_campaign only (mode defaults to "perfect" here):
//    "densities":[F,...],"maps_per_density":N,"base_seed":N}
//                                                   -> {"job":ID,"state":..}
//   {"op":"status","job":ID}                        -> state + progress
//   {"op":"wait","job":ID,"timeout_ms":N}           -> state [+ "result"]
//   {"op":"cancel","job":ID}                        -> state
//   {"op":"metrics"}
//   {"op":"shutdown"}
//
// Fault-campaign jobs report per-map sweep progress
// (campaign_maps_done/total) in the "progress" object, and their "wait"
// result is the degradation curve: one point per (density, seed) with the
// child's state, FaultInjectionReport, cycles and IPC.
//
// Every response is an envelope:
//
//   {"ok":true, ...payload..., "metrics":{...}}
//   {"ok":false,"error":{"code":"NOT_FOUND","message":...},"metrics":{...}}
//
// where "metrics" is Engine::metrics_json() at response time (the ISSUE 4
// metrics satellite: every reply carries the serving counters) and error
// codes are the StatusCode names from api/status.hpp.
//
// Threading: one accept thread plus one thread per connection — gpurfd
// serves a handful of local clients, not the open internet; the Engine
// underneath does the real scheduling.  Connection threads are joinable
// and tracked in a registry keyed by connection id: a finished handler
// parks its id on a reap list that the accept loop joins before spawning
// the next connection (so a long-lived daemon never accumulates zombie
// handles), and stop() joins every remaining thread after shutting the
// sockets down — destruction can therefore never free Server state a
// still-running handler touches (ISSUE 5 shutdown-race fix; previously
// the threads were detached and tracked only by a counter, leaving a
// window between the counter hitting zero and the handler's last
// instructions).  The Client is intentionally tiny and blocking: connect,
// send a line, read a line.

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/json.hpp"

namespace gpurf::api {

struct ServerOptions {
  std::string socket_path;  ///< AF_UNIX path; unlinked before bind
};

class Server {
 public:
  Server(Engine& engine, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept thread.  InvalidArgument / Internal
  /// on socket errors.
  Status start();

  /// Close the listener and every live connection; join all threads.
  /// Idempotent; also called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return opts_.socket_path; }

  /// True once a client requested {"op":"shutdown"}.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Handle one request line and produce the response envelope (no socket
  /// involved) — the seam tests drive directly.
  std::string handle_request_line(const std::string& line);

 private:
  void accept_loop();
  void serve_connection(int fd, uint64_t conn_id);
  /// Join and erase every registry entry whose handler already returned.
  /// Called with mu_ held *released* — takes it internally.
  void reap_finished();

  Engine& engine_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};  ///< stop() entered; drains waits
  std::atomic<bool> shutdown_{false};
  std::thread accept_thread_;
  // Joinable connection-thread registry (see the threading note above).
  // mu_ guards the registry shape and the live-socket set; joins happen
  // outside the lock so a handler's final deregistration never deadlocks
  // against the reaper.
  std::mutex mu_;
  std::set<int> conns_;                       ///< live sockets (for stop())
  std::map<uint64_t, std::thread> threads_;   ///< conn id -> handler thread
  std::vector<uint64_t> finished_;            ///< ids ready to join
  uint64_t next_conn_id_ = 0;
};

/// Client transport knobs (PR 6 satellite).  Connect failures on
/// *transient* errno values (ECONNREFUSED, ENOENT, EAGAIN, ...) retry up
/// to `retries` extra attempts with exponential backoff + full jitter;
/// everything that exhausts the budget — and every socket timeout —
/// surfaces as StatusCode::kUnavailable, the retry-me code.
struct ClientOptions {
  int connect_timeout_ms = 2000;  ///< per-attempt connect deadline
  int read_timeout_ms = 600000;   ///< SO_RCVTIMEO/SO_SNDTIMEO; <= 0 = none
  int retries = 3;                ///< extra connect attempts after the first
  int backoff_initial_ms = 25;    ///< first backoff window
  int backoff_max_ms = 1000;      ///< backoff window cap
};

/// Minimal blocking client for the gpurfd protocol: connects in the
/// constructor (check status()), call() sends one request line and returns
/// the raw response line, call_json() additionally parses it.  A timed-out
/// call() leaves the stream position unknown — reconnect rather than
/// resending on the same Client.
class Client {
 public:
  explicit Client(const std::string& socket_path, ClientOptions opts = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// OK once connected; the connect error otherwise (kUnavailable when
  /// every attempt failed transiently).
  const Status& status() const { return status_; }

  /// Send one request line, block for the one-line response (stripped of
  /// the trailing newline).  kUnavailable on timeout or a dropped
  /// connection.
  StatusOr<std::string> call(const std::string& request_line);

  /// call() + parse_json in one step.
  StatusOr<JsonValue> call_json(const std::string& request_line);

 private:
  int fd_ = -1;
  Status status_;
  ClientOptions opts_;
  std::string rxbuf_;  ///< bytes read past the previous response line
};

}  // namespace gpurf::api
