#pragma once
// gpurfd — the Engine's socket transport (ISSUE 4 tentpole; fleet-scale
// serving since ISSUE 8).
//
// A Server fronts an EngineFleet (one or more Engines sharded by kernel
// fingerprint — see serve/fleet.hpp) and speaks newline-delimited JSON
// over a local AF_UNIX stream socket and/or a TCP listener: one request
// object per line in, one response object per line out (watch and chunked
// results push additional lines, below), connections are long-lived and
// requests on a connection are handled in order.
//
// Wire protocol (all fields beyond "op" optional unless noted; every
// request may carry "token":STR — required when the daemon was started
// with auth tokens, rejected with UNAUTHENTICATED otherwise):
//
//   {"op":"ping"}
//   {"op":"list"}                                   -> {"workloads":[...]}
//   {"op":"submit","kind":"pipeline"|"simulate"|"fault_campaign"|
//    "transient_campaign","workload":NAME,
//    "mode":"original"|"perfect"|"high","scale":"sample"|"full",
//    "variant":N,"writeback_delay":N,"sim_shards":N,"priority":N,
//    "deadline_ms":N,
//    // simulate only (PR 6 fault injection; needs a compressed mode):
//    "fault_seed":N,"fault_density":F,"fault_quality":B,
//    // fault_campaign only (mode defaults to "perfect" here):
//    "densities":[F,...],"maps_per_density":N,"base_seed":N}
//                                         -> {"job":ID,"shard":N,"state":..}
//   {"op":"status","job":ID}                        -> state + progress
//   {"op":"wait","job":ID,"timeout_ms":N
//    [,"stream":true,"chunk_bytes":N]}              -> state [+ "result"]
//   {"op":"watch","job":ID,"timeout_ms":N,"progress_ms":N}
//                     -> zero or more {"ok":true,"event":"progress",...}
//                        lines, then one wait-style {"event":"terminal"}
//   {"op":"cancel","job":ID}                        -> state
//   {"op":"metrics"}             (fleet-aggregated across engine shards)
//   {"op":"histograms"}          -> full log2 buckets per latency stage
//   {"op":"analyze","workload":NAME | "kernel":ASM}  -> {"report":{...}}
//                     (static lint: undefined reads, dead writes, pressure)
//   {"op":"shutdown"}
//
// Sharding (ISSUE 8): submit routes by consistent hash of the workload's
// kernel fingerprint, so each Engine shard's tune/analysis caches stay
// hot for a stable subset of kernels; the response names the shard.  Job
// ids are disjoint residue classes per shard (id-1 mod N), so
// status/wait/cancel/watch route statelessly by id.  Rebalance on a
// shard-count change is best-effort: the ring moves ~1/N of the kernels,
// which merely warm up on their new shard (restart the daemon to resize).
//
// Chunked result streaming: a wait/watch with "stream":true splits a
// result JSON larger than "chunk_bytes" out of the envelope — the
// envelope then carries "result_bytes" and "result_chunks":K instead of
// "result", followed by K lines {"chunk":i,"of":K,"data":STR} whose data
// fields concatenate to the result document.  api::Client reassembles
// transparently.
//
// Every response is an envelope:
//
//   {"ok":true, ...payload..., "metrics":{...}}
//   {"ok":false,"error":{"code":"NOT_FOUND","message":...
//                        [,"retry_after_ms":N]},"metrics":{...}}
//
// where "metrics" is the fleet-aggregated MetricsSnapshot (counters plus
// per-stage latency summaries: queue_wait / tune / sim from the Engines,
// serialize recorded here per request) and error codes are the StatusCode
// names from api/status.hpp.  Quota and queue-capacity rejections
// (RESOURCE_EXHAUSTED) carry "retry_after_ms" — a structured back-off
// hint clients read via envelope_retry_after_ms().
//
// Auth + quotas (ISSUE 8): with ServerOptions::auth_tokens set, every
// request needs a matching "token".  Per-token quotas then bound abuse:
// token_max_inflight caps a token's unfinished submitted jobs,
// token_rate/token_burst is a token-bucket on submits per second.  Both
// reject with RESOURCE_EXHAUSTED + retry_after_ms rather than queueing.
// Oversized request lines (> max_request_bytes) are rejected and the
// connection closed; connections idle longer than idle_timeout_ms are
// dropped — both keep a public TCP listener from being held hostage by
// slow or hostile peers.
//
// Threading: one accept thread per listener plus one thread per
// connection; the Engines underneath do the real scheduling.  Connection
// threads are joinable and tracked in a registry keyed by connection id:
// a finished handler parks its id on a reap list that the accept loop
// joins before spawning the next connection (so a long-lived daemon never
// accumulates zombie handles), and stop() joins every remaining thread
// after shutting the sockets down — destruction can therefore never free
// Server state a still-running handler touches (ISSUE 5 shutdown-race
// fix).  The Client is intentionally tiny and blocking: connect, send a
// line, read line(s).

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/json.hpp"
#include "common/thread_annotations.hpp"
#include "serve/fleet.hpp"

namespace gpurf::api {

struct ServerOptions {
  std::string socket_path;  ///< AF_UNIX path; unlinked before bind.  Empty
                            ///< disables the unix listener (TCP only).
  // TCP transport (ISSUE 8).  listen_port < 0 disables TCP; 0 binds an
  // ephemeral port (read it back via Server::tcp_port()).
  std::string listen_host = "127.0.0.1";
  int listen_port = -1;
  /// Accepted auth tokens.  Empty = no auth (trusted local socket).
  std::vector<std::string> auth_tokens;
  /// Per-token cap on submitted-but-unfinished jobs; 0 = unlimited.
  size_t token_max_inflight = 0;
  /// Per-token submit token-bucket: sustained submits/sec (0 = unlimited)
  /// and burst size (0 resolves to max(1, token_rate)).
  double token_rate = 0.0;
  double token_burst = 0.0;
  /// Reject request lines larger than this (error + connection close).
  size_t max_request_bytes = 1 << 20;
  /// Drop connections idle longer than this; <= 0 = never.
  int idle_timeout_ms = 0;
};

class Server {
 public:
  /// Single-Engine server (the historical constructor): wraps `engine` in
  /// a non-owning one-shard fleet internally.
  Server(Engine& engine, ServerOptions opts);
  /// Fleet server (ISSUE 8): `fleet` must outlive the Server.
  Server(serve::EngineFleet& fleet, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept thread(s).  InvalidArgument /
  /// Internal on socket errors (both listeners disabled is
  /// InvalidArgument).
  Status start();

  /// Close the listeners and every live connection; join all threads.
  /// Idempotent; also called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return opts_.socket_path; }

  /// Bound TCP port once start() succeeded with listen_port >= 0 (the
  /// actual port for ephemeral binds); -1 when TCP is disabled.
  int tcp_port() const { return tcp_port_; }

  /// True once a client requested {"op":"shutdown"}.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Handle one request line and produce the response text (no socket
  /// involved) — the seam tests drive directly.  Usually a single
  /// envelope; a streamed result appends its chunk lines separated by
  /// '\n'.  Watch degrades to wait here (no transport to push events on).
  std::string handle_request_line(const std::string& line);

 private:
  /// Per-connection push channel for watch events; returns false once the
  /// peer is gone (the watch loop then stops early).
  using SendLineFn = std::function<bool(const std::string&)>;

  struct TokenState;
  struct QuotaTable;

  void accept_loop(int listen_fd, bool tcp);
  void serve_connection(int fd, uint64_t conn_id);
  /// Join and erase every registry entry whose handler already returned.
  /// Called with mu_ held *released* — takes it internally.
  void reap_finished();

  std::string handle_request(const std::string& line, SendLineFn* push);
  std::string handle_submit(const JsonValue& req, const std::string& token);
  std::string handle_job_op(const JsonValue& req, const std::string& op,
                            SendLineFn* push);
  /// Fleet metrics + this server's serialize histogram, as the envelope's
  /// "metrics" JSON.
  std::string metrics_json_now() const;

  serve::EngineFleet* fleet_;
  std::unique_ptr<serve::EngineFleet> own_fleet_;  ///< Engine& ctor path
  ServerOptions opts_;
  int listen_fd_ = -1;       ///< AF_UNIX listener
  int tcp_listen_fd_ = -1;   ///< TCP listener
  int tcp_port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};  ///< stop() entered; drains waits
  std::atomic<bool> shutdown_{false};
  std::thread accept_thread_;      ///< unix listener
  std::thread tcp_accept_thread_;  ///< tcp listener
  /// Serialize-stage latency (request line in -> response text built).
  LatencyHistogram serialize_hist_;
  /// Per-token quota state.  shared_ptr: job terminal listeners decrement
  /// a token's in-flight count and may fire after this Server died (the
  /// Engines outlive it), so they keep the table alive instead of
  /// touching Server members.
  std::shared_ptr<QuotaTable> quotas_;
  // Joinable connection-thread registry (see the threading note above).
  // mu_ guards the registry shape and the live-socket set; joins happen
  // outside the lock so a handler's final deregistration never deadlocks
  // against the reaper.  Capability-annotated (ISSUE 10 satellite): the
  // CI clang job's -Werror=thread-safety catches unlocked access.
  common::Mutex mu_;
  std::set<int> conns_
      GPURF_GUARDED_BY(mu_);  ///< live sockets (for stop())
  std::map<uint64_t, std::thread> threads_
      GPURF_GUARDED_BY(mu_);  ///< conn id -> handler thread
  std::vector<uint64_t> finished_
      GPURF_GUARDED_BY(mu_);  ///< ids ready to join
  uint64_t next_conn_id_ GPURF_GUARDED_BY(mu_) = 0;
};

/// Structured back-off hint from an error envelope (ISSUE 8 satellite):
/// the "retry_after_ms" the daemon attached to a quota / queue-capacity
/// rejection, or -1 when the envelope carries none.
int64_t envelope_retry_after_ms(const JsonValue& envelope);

/// Client transport knobs (PR 6 satellite).  Connect failures on
/// *transient* errno values (ECONNREFUSED, ENOENT, EAGAIN, ...) retry up
/// to `retries` extra attempts with exponential backoff + full jitter;
/// everything that exhausts the budget — and every socket timeout —
/// surfaces as StatusCode::kUnavailable, the retry-me code.
struct ClientOptions {
  int connect_timeout_ms = 2000;  ///< per-attempt connect deadline
  int read_timeout_ms = 600000;   ///< SO_RCVTIMEO/SO_SNDTIMEO; <= 0 = none
  int retries = 3;                ///< extra connect attempts after the first
  int backoff_initial_ms = 25;    ///< first backoff window
  int backoff_max_ms = 1000;      ///< backoff window cap
  std::string token;              ///< auth token injected into requests that
                                  ///< carry none (watch(); raw call() lines
                                  ///< are sent verbatim)
};

/// Minimal blocking client for the gpurfd protocol: connects in the
/// constructor (check status()), call() sends one request line and returns
/// the raw response line, call_json() additionally parses it and
/// reassembles chunked results.  A timed-out call() leaves the stream
/// position unknown — reconnect rather than resending on the same Client.
class Client {
 public:
  /// AF_UNIX transport.
  explicit Client(const std::string& socket_path, ClientOptions opts = {});
  /// TCP transport (ISSUE 8): numeric IPv4 / IPv6 address or host name.
  Client(const std::string& host, int port, ClientOptions opts = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// OK once connected; the connect error otherwise (kUnavailable when
  /// every attempt failed transiently).
  const Status& status() const { return status_; }

  /// Send one request line, block for the one-line response (stripped of
  /// the trailing newline).  kUnavailable on timeout or a dropped
  /// connection.  NOTE: a streamed ("stream":true) or watch request
  /// pushes additional lines — use call_json() / watch() for those.
  StatusOr<std::string> call(const std::string& request_line);

  /// call() + parse_json in one step; chunked results ("result_chunks")
  /// are read off the stream, reassembled and spliced back in as
  /// "result".
  StatusOr<JsonValue> call_json(const std::string& request_line);

  /// Push subscription on a job (ISSUE 8): sends {"op":"watch"} and
  /// blocks until the terminal envelope arrives (or the server's watch
  /// timeout elapses — the returned envelope then shows a non-terminal
  /// state).  Every intermediate progress event is handed to
  /// `on_progress` (may be null).  The ClientOptions token rides along
  /// automatically.
  StatusOr<JsonValue> watch(
      uint64_t job, int64_t timeout_ms,
      const std::function<void(const JsonValue&)>& on_progress = nullptr);

 private:
  void finish_connect(const std::string& what);
  StatusOr<std::string> read_line();
  StatusOr<JsonValue> absorb_chunks(JsonValue envelope);

  int fd_ = -1;
  Status status_;
  ClientOptions opts_;
  std::string rxbuf_;  ///< bytes read past the previous response line
};

}  // namespace gpurf::api
