#pragma once
// Engine-level serving metrics (ISSUE 4 satellite; latency histograms and
// fleet aggregation since ISSUE 8).
//
// Plain atomic counters, bumped on the hot paths with relaxed ordering and
// read without synchronisation: a snapshot is a set of independently-read
// monotone counters, not a consistent cut — exactly what scrape-style
// monitoring needs.  The cache-layer counters live with their caches
// (workloads::PipelineStats on the pipeline memo / disk cache,
// exec::AnalysisCache's internal hit counters); this struct holds the
// job-lifecycle side, and Engine::metrics_json() merges all three into the
// snapshot every gpurfd response envelope embeds.
//
// Only the Engine writes these (submit, the executor's run/discard paths),
// so the struct lives by value inside the Engine; Job handles never touch
// it and can safely outlive their Engine.
//
// ISSUE 8 adds per-stage latency histograms: fixed-bucket log2 histograms
// over microseconds, recorded lock-free and merged shard-by-shard for the
// multi-Engine daemon.  The Engine records queue wait (submit -> start),
// tune (pipeline memo get, hit or miss) and sim (the cycle-level
// simulation proper); the Server records serialize (request line ->
// response line built).  Every response envelope carries the summary
// percentiles; {"op":"histograms"} exports the full buckets.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

#include "api/job.hpp"

namespace gpurf {

/// Value snapshot of a LatencyHistogram: mergeable (bucket-wise sum), with
/// percentile estimation off the bucket upper bounds.  Bucket b holds
/// samples whose microsecond value has bit_width b, i.e. us in
/// [2^(b-1), 2^b); bucket 0 holds exact zeros and the last bucket is
/// open-ended.  Percentiles therefore over-estimate by at most 2x — the
/// right bias for tail-latency tripwires.
struct HistogramSnapshot {
  static constexpr int kBuckets = 32;

  std::array<uint64_t, kBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum_us = 0;

  /// Upper bound (inclusive, in us) of bucket b.
  static uint64_t bucket_le_us(int b) {
    return b <= 0 ? 0
           : b >= kBuckets - 1
               ? ~uint64_t{0}
               : (uint64_t{1} << b) - 1;
  }

  HistogramSnapshot& merge(const HistogramSnapshot& o) {
    for (int b = 0; b < kBuckets; ++b) buckets[b] += o.buckets[b];
    count += o.count;
    sum_us += o.sum_us;
    return *this;
  }

  /// p in [0,1]; returns the upper bound of the bucket containing the
  /// p-quantile sample (0 when empty).
  uint64_t percentile_us(double p) const {
    if (count == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
    if (rank >= count) rank = count - 1;  // p = 1.0 is the max sample
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += buckets[b];
      if (cum > rank) return bucket_le_us(b);
    }
    return bucket_le_us(kBuckets - 1);
  }

  double mean_us() const {
    return count ? static_cast<double>(sum_us) / static_cast<double>(count)
                 : 0.0;
  }
};

/// Lock-free fixed-bucket log2 latency histogram (ISSUE 8 tentpole).
/// record_us is wait-free (two relaxed fetch_adds); snapshots are
/// independently-read monotone counters like every other metric here.
class LatencyHistogram {
 public:
  void record_us(uint64_t us) {
    const int b =
        us == 0 ? 0
                : std::min<int>(HistogramSnapshot::kBuckets - 1,
                                std::bit_width(us));
    buckets_[static_cast<size_t>(b)].fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      s.buckets[static_cast<size_t>(b)] =
          buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
      s.count += s.buckets[static_cast<size_t>(b)];
    }
    s.sum_us = sum_us_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<uint64_t>, HistogramSnapshot::kBuckets> buckets_{};
  std::atomic<uint64_t> sum_us_{0};
};

/// Point-in-time value snapshot of one Engine's (or, summed, one fleet's)
/// serving metrics.  operator+= is the shard-aggregation used by
/// {"op":"metrics"} on a sharded daemon; api::to_json(MetricsSnapshot)
/// keeps the field names every envelope has carried since ISSUE 4.
struct MetricsSnapshot {
  // Cache layer.
  uint64_t pipeline_memo_hits = 0;
  uint64_t pipeline_memo_misses = 0;
  uint64_t disk_cache_hits = 0;
  uint64_t disk_cache_stale_rejections = 0;
  uint64_t disk_cache_write_failures = 0;
  uint64_t disk_cache_disabled = 0;  ///< shards with the latch tripped
  uint64_t analysis_cache_hits = 0;
  uint64_t analysis_cache_misses = 0;
  // Queue / lifecycle.
  uint64_t queue_depth = 0;
  uint64_t jobs_running = 0;
  uint64_t inflight = 0;
  uint64_t jobs_submitted = 0;
  uint64_t jobs_done = 0;
  uint64_t jobs_failed = 0;
  uint64_t jobs_cancelled = 0;
  uint64_t jobs_deadline_exceeded = 0;
  uint64_t job_wall_us_total = 0;
  // Per-stage latency (ISSUE 8).  serialize is recorded by the Server and
  // merged in at export time; it stays empty on bare-Engine snapshots.
  HistogramSnapshot queue_wait;
  HistogramSnapshot tune;
  HistogramSnapshot sim;
  HistogramSnapshot serialize;

  MetricsSnapshot& operator+=(const MetricsSnapshot& o) {
    pipeline_memo_hits += o.pipeline_memo_hits;
    pipeline_memo_misses += o.pipeline_memo_misses;
    disk_cache_hits += o.disk_cache_hits;
    disk_cache_stale_rejections += o.disk_cache_stale_rejections;
    disk_cache_write_failures += o.disk_cache_write_failures;
    disk_cache_disabled += o.disk_cache_disabled;
    analysis_cache_hits += o.analysis_cache_hits;
    analysis_cache_misses += o.analysis_cache_misses;
    queue_depth += o.queue_depth;
    jobs_running += o.jobs_running;
    inflight += o.inflight;
    jobs_submitted += o.jobs_submitted;
    jobs_done += o.jobs_done;
    jobs_failed += o.jobs_failed;
    jobs_cancelled += o.jobs_cancelled;
    jobs_deadline_exceeded += o.jobs_deadline_exceeded;
    job_wall_us_total += o.job_wall_us_total;
    queue_wait.merge(o.queue_wait);
    tune.merge(o.tune);
    sim.merge(o.sim);
    serialize.merge(o.serialize);
    return *this;
  }
};

struct EngineMetrics {
  // Job lifecycle (terminal counters are exact: finalize runs once).
  std::atomic<uint64_t> jobs_submitted{0};
  std::atomic<uint64_t> jobs_done{0};       ///< finished with an OK status
  std::atomic<uint64_t> jobs_failed{0};     ///< finished with a non-OK status
  std::atomic<uint64_t> jobs_cancelled{0};
  std::atomic<uint64_t> jobs_deadline_exceeded{0};

  /// Sum of submit -> terminal wall time over all terminal jobs, in
  /// microseconds (divide by the terminal-job count for the mean).
  std::atomic<uint64_t> job_wall_us_total{0};

  // Per-stage latency histograms (ISSUE 8): queue wait covers submit ->
  // start for every job that ran; tune covers each pipeline memo get
  // (hits land in the microsecond buckets, which is how fingerprint-
  // affine routing becomes visible); sim covers the cycle-level
  // simulation proper.
  LatencyHistogram queue_wait_hist;
  LatencyHistogram tune_hist;
  LatencyHistogram sim_hist;

  void record_terminal(JobState state, bool status_ok, uint64_t wall_us) {
    switch (state) {
      case JobState::kDone:
        (status_ok ? jobs_done : jobs_failed)
            .fetch_add(1, std::memory_order_relaxed);
        break;
      case JobState::kCancelled:
        jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      case JobState::kDeadlineExceeded:
        jobs_deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        break;  // non-terminal states never reach here
    }
    job_wall_us_total.fetch_add(wall_us, std::memory_order_relaxed);
  }
};

}  // namespace gpurf
