#pragma once
// Engine-level serving metrics (ISSUE 4 satellite, ROADMAP item).
//
// Plain atomic counters, bumped on the hot paths with relaxed ordering and
// read without synchronisation: a snapshot is a set of independently-read
// monotone counters, not a consistent cut — exactly what scrape-style
// monitoring needs.  The cache-layer counters live with their caches
// (workloads::PipelineStats on the pipeline memo / disk cache,
// exec::AnalysisCache's internal hit counters); this struct holds the
// job-lifecycle side, and Engine::metrics_json() merges all three into the
// snapshot every gpurfd response envelope embeds.
//
// Only the Engine writes these (submit, the executor's run/discard paths),
// so the struct lives by value inside the Engine; Job handles never touch
// it and can safely outlive their Engine.

#include <atomic>
#include <cstdint>

#include "api/job.hpp"

namespace gpurf {

struct EngineMetrics {
  // Job lifecycle (terminal counters are exact: finalize runs once).
  std::atomic<uint64_t> jobs_submitted{0};
  std::atomic<uint64_t> jobs_done{0};       ///< finished with an OK status
  std::atomic<uint64_t> jobs_failed{0};     ///< finished with a non-OK status
  std::atomic<uint64_t> jobs_cancelled{0};
  std::atomic<uint64_t> jobs_deadline_exceeded{0};

  /// Sum of submit -> terminal wall time over all terminal jobs, in
  /// microseconds (divide by the terminal-job count for the mean).
  std::atomic<uint64_t> job_wall_us_total{0};

  void record_terminal(JobState state, bool status_ok, uint64_t wall_us) {
    switch (state) {
      case JobState::kDone:
        (status_ok ? jobs_done : jobs_failed)
            .fetch_add(1, std::memory_order_relaxed);
        break;
      case JobState::kCancelled:
        jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      case JobState::kDeadlineExceeded:
        jobs_deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        break;  // non-terminal states never reach here
    }
    job_wall_us_total.fetch_add(wall_us, std::memory_order_relaxed);
  }
};

}  // namespace gpurf
