#pragma once
// gpurf::Engine — the session-scoped public API of the framework (ISSUE 3,
// job-oriented serving surface since ISSUE 4).
//
// Everything the paper's Fig.-7 flow needs (range analysis -> precision
// tuning -> slice allocation -> timing simulation) is reachable from one
// context object.  An Engine *owns* the resources the free functions used
// to share process-wide:
//
//   * a ThreadPool sized by EngineOptions::threads,
//   * a KernelAnalysis cache (CFG / ipdom / decoded streams),
//   * a pipeline memo + the on-disk precision-map cache directory,
//   * its own instances of the eleven Table-4 workloads,
//   * a GpuConfig and interpreter RunOptions for every simulation it runs.
//
// Two Engines in one process are fully isolated: different thread counts,
// cache directories, GPU models and tuner settings never interact, which
// is what multi-tenant serving and A/B experiments over simulator
// configurations need (see ROADMAP north star).
//
// Environment-variable rule: $GPURF_THREADS and $GPURF_CACHE_DIR are
// *defaults only*, consulted exactly once when an EngineOptions field was
// left unset at Engine construction.  No public entry point reads the
// environment after the Engine exists; reconfiguration means constructing
// another Engine.
//
// Error model: public entry points return Status / StatusOr instead of
// aborting — unknown workload names, malformed kernel text, failed IR
// verification and corrupt cache entries come back as structured errors a
// serving layer can reject per-request.  Internal invariant violations
// still abort (GPURF_ASSERT), as corrupted simulator state must never be
// silently ignored.
//
// Serving surface (ISSUE 4): submit(JobRequest) returns a gpurf::Job — a
// handle with a stable id, a queued/running/done/cancelled/deadline-
// exceeded state machine, cooperative cancel(), a per-request deadline
// that covers queue wait AND execution, a priority (higher first, FIFO
// within a level), and a progress snapshot (pipeline stage, tuner
// pass/evaluations, simulated cycles).  The executor's in-flight set is
// bounded by EngineOptions::max_inflight: a deadline-less submit blocks
// for a slot (backpressure), a submit with a deadline gives up when the
// deadline passes and returns the job already in kDeadlineExceeded.  The
// PR 3 futures API (submit_pipeline / submit_simulate) survives as a thin
// shim over submit().  Engine-level metrics (cache hit counters, queue
// depth, jobs by terminal state, wall times) export via metrics_json();
// api/server.hpp speaks the whole surface over a local socket (gpurfd).
//
// The legacy free functions (workloads::run_pipeline, ...) remain as thin
// shims over Engine::shared(), so existing callers migrate incrementally.

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/job.hpp"
#include "api/metrics.hpp"
#include "api/status.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "exec/kernel_analysis.hpp"
#include "sim/gpu.hpp"
#include "tuning/tuner.hpp"
#include "workloads/pipeline.hpp"
#include "workloads/workload.hpp"

namespace gpurf {

/// Construction-time configuration.  Every field left at its default is
/// resolved once in the Engine constructor (environment variables, then
/// hardware defaults); the resolved values are visible via
/// Engine::options() and never change for the Engine's lifetime.
struct EngineOptions {
  /// Thread-pool width; <= 0 resolves to $GPURF_THREADS, else hardware
  /// concurrency.
  int threads = 0;
  /// On-disk precision-map cache directory; empty resolves to
  /// $GPURF_CACHE_DIR, else ".gpurf_cache".
  std::string cache_dir;
  /// Persist tuned precision maps across processes (versioned entries;
  /// stale/corrupt ones are rejected and re-tuned).
  bool use_disk_cache = true;
  /// Tuner search knobs.  `level` is ignored (the pipeline always tunes
  /// both paper thresholds); speculate_batch <= 0 resolves to `threads`;
  /// `cancel` is ignored (tokens are per-job).
  tuning::TunerOptions tuner;
  /// Interpreter strategy for every functional replay (SoA warp execution,
  /// block-parallel grids).  `thread_insts` and `cancel` are ignored.
  workloads::RunOptions run;
  /// GPU model for occupancy and timing simulation.
  sim::GpuConfig gpu = sim::GpuConfig::fermi_gtx480();
  /// Multi-SM shard count for every timing simulation this Engine runs
  /// (ISSUE 5): SMs tick in parallel on the Engine's pool with a
  /// deterministic per-cycle barrier; SimStats are bit-identical at every
  /// value.  <= 0 resolves to `threads`; 1 forces the serial schedule.
  /// Overridable per request via SimRequest::sim_shards.
  int sim_shards = 0;
  /// Async executor width; <= 0 resolves to `threads`.  Executor threads
  /// run submitted jobs concurrently; each job fans its inner work out on
  /// the Engine's pool.
  int async_workers = 0;
  /// Bound on queued + running async jobs; 0 resolves to
  /// 2 * async_workers.  A full queue blocks deadline-less submitters;
  /// submitters with a deadline fail over to kDeadlineExceeded once it
  /// passes.
  size_t max_inflight = 0;
  /// Job-id space partitioning (ISSUE 8): ids are assigned start,
  /// start+stride, start+2*stride, ...  A sharded daemon gives shard i of
  /// N the pair (i+1, N), so every job id names its shard as
  /// (id-1) % N and job-addressed ops route statelessly.  Defaults keep
  /// the dense 1,2,3,... sequence single-Engine callers have always seen.
  uint64_t job_id_start = 1;
  uint64_t job_id_stride = 1;

  // Builder-style setters, chainable:
  //   Engine e(EngineOptions().with_threads(4).with_disk_cache(false));
  EngineOptions& with_threads(int n) { threads = n; return *this; }
  EngineOptions& with_cache_dir(std::string d) {
    cache_dir = std::move(d);
    return *this;
  }
  EngineOptions& with_disk_cache(bool on) { use_disk_cache = on; return *this; }
  EngineOptions& with_tuner(const tuning::TunerOptions& t) {
    tuner = t;
    return *this;
  }
  EngineOptions& with_run_options(const workloads::RunOptions& r) {
    run = r;
    return *this;
  }
  EngineOptions& with_gpu(const sim::GpuConfig& g) { gpu = g; return *this; }
  EngineOptions& with_sim_shards(int n) { sim_shards = n; return *this; }
  EngineOptions& with_async_workers(int n) { async_workers = n; return *this; }
  EngineOptions& with_max_inflight(size_t n) { max_inflight = n; return *this; }
  EngineOptions& with_job_ids(uint64_t start, uint64_t stride) {
    job_id_start = start;
    job_id_stride = stride;
    return *this;
  }
};

class Engine {
 public:
  explicit Engine(EngineOptions opts = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Process-default Engine backing the legacy free-function shims.
  /// Constructed on first use with default (environment-resolved) options.
  static Engine& shared();

  /// Options after construction-time resolution (threads/cache_dir/...
  /// filled in).
  const EngineOptions& options() const { return opts_; }

  // ------------------------------------------------------------ workloads

  /// Names of the bundled Table-4 workloads, in the paper's order.
  std::vector<std::string> workload_names() const;

  /// Look up a bundled workload by name (NotFound for unknown names).
  StatusOr<const workloads::Workload*> workload(std::string_view name) const;

  // ------------------------------------------------------------- pipeline

  /// Run (or fetch this Engine's memoized) static compression pipeline.
  /// The pointer stays valid for the Engine's lifetime.
  StatusOr<const workloads::PipelineResult*> pipeline(
      const workloads::Workload& w);
  StatusOr<const workloads::PipelineResult*> pipeline(std::string_view name);

  /// Compute a pipeline fresh, bypassing both the memo and the disk cache
  /// (benches / determinism comparisons).
  StatusOr<workloads::PipelineResult> compute_pipeline(
      const workloads::Workload& w);

  /// JSON snapshot of the (memoized) pipeline result.
  StatusOr<std::string> pipeline_json(std::string_view name);

  // ------------------------------------------------------------- timing sim

  /// Cycle-level simulation of one workload launch under this Engine's
  /// GpuConfig.  Runs the pipeline first if not yet memoized.
  StatusOr<sim::SimResult> simulate(const workloads::Workload& w,
                                    const SimRequest& req = {});
  StatusOr<sim::SimResult> simulate(std::string_view name,
                                    const SimRequest& req = {});
  StatusOr<sim::SimResult> simulate(const workloads::Workload& w,
                                    workloads::SimMode mode) {
    SimRequest r;
    r.mode = mode;
    return simulate(w, r);
  }
  StatusOr<sim::SimResult> simulate(std::string_view name,
                                    workloads::SimMode mode) {
    SimRequest r;
    r.mode = mode;
    return simulate(name, r);
  }

  // -------------------------------------------------------- custom kernels

  /// Assemble kernel text (InvalidArgument on parse errors).
  StatusOr<ir::Kernel> parse_kernel(std::string_view asm_text) const;

  /// IR verification (FailedPrecondition with the verifier message).
  /// Also enforces dataflow soundness (PR 9): a register read on some
  /// path before any definition — Liveness::undefined_uses, previously
  /// computed but never surfaced — fails with kFailedPrecondition naming
  /// the registers.  `allow_undefined_reads` opts out for deliberately
  /// ill-formed inputs (fuzzers, lint-only flows).
  Status verify_kernel(const ir::Kernel& k,
                       bool allow_undefined_reads = false) const;

  /// Instruction-granular lint report (PR 9): undefined reads, dead
  /// writes, never-read registers, static vs. allocator pressure, linear
  /// live intervals.  Never fails on ill-formed dataflow — that is what
  /// the report is *for* — only on malformed IR.
  ///
  /// Since ISSUE 10 the report also carries the static memory-access
  /// section: in-bounds proof coverage, definite/possible OOB findings
  /// and the per-block disjointness verdicts.  The workload overloads
  /// analyse a sample instance, so global OOB classification sees the
  /// real launch geometry, parameter words and memory image; the bare
  /// kernel overload runs at the default launch with no global-memory
  /// context (shared-memory findings only).
  StatusOr<analysis::KernelReport> analyze(const ir::Kernel& k);
  StatusOr<analysis::KernelReport> analyze(const workloads::Workload& w);
  StatusOr<analysis::KernelReport> analyze(std::string_view workload_name);

  /// Precision-tune a custom kernel against a caller-supplied probe, using
  /// this Engine's tuner options and thread pool.
  StatusOr<tuning::TuneResult> tune(const ir::Kernel& k,
                                    tuning::QualityProbe& probe,
                                    quality::QualityLevel level);

  // --------------------------------------------------------------- Job API

  /// Enqueue a pipeline / simulation job.  The returned handle is live
  /// immediately: id(), state(), cancel(), wait_for(), progress().
  /// Scheduling: highest priority first, FIFO within a level.  With a
  /// deadline, the submit itself gives up once the deadline passes while
  /// waiting for an in-flight slot (the job comes back already
  /// kDeadlineExceeded); without one it blocks for a slot (backpressure).
  /// Execution errors (unknown workload, failed verification, ...) land in
  /// Job::status(), not here.
  Job submit(JobRequest req);

  /// Look up a previously submitted job by id (NotFound once it has been
  /// evicted — the registry retains all live jobs and the most recent
  /// terminal ones).
  StatusOr<Job> find_job(uint64_t id) const;

  /// Jobs currently queued or running on the async executor.
  size_t inflight() const;

  /// Graceful shutdown helper (PR 6): cancel every still-queued job
  /// immediately, let running jobs finish within `budget_ms`, then
  /// cooperatively cancel the stragglers and wait for them to stop at
  /// their next checkpoint.  Returns OK when everything finished inside
  /// the budget, DeadlineExceeded when stragglers had to be cancelled.
  /// The Engine stays usable afterwards; gpurfd calls this between
  /// stopping its accept loop and destroying the Engine (--drain-ms).
  Status drain(int64_t budget_ms);

  /// Point-in-time metrics snapshot as a JSON object: cache counters
  /// (pipeline memo, kernel-analysis cache, disk cache), queue depth,
  /// jobs by terminal state, cumulative job wall time, and per-stage
  /// latency summaries.  Embedded in every gpurfd response envelope.
  std::string metrics_json() const;

  /// The same snapshot as a value, for shard aggregation (ISSUE 8): a
  /// sharded daemon sums the per-Engine snapshots with
  /// MetricsSnapshot::operator+= before serialising.  The `serialize`
  /// histogram is the Server's to fill; it comes back empty here.
  MetricsSnapshot metrics_snapshot() const;

  // ------------------------------------------------- legacy futures (PR 3)

  /// Thin shims over submit(): same signatures and result values as the
  /// PR 3 API.  Results are value snapshots (safe to consume after other
  /// submissions).  Blocks while max_inflight jobs are queued or running.
  std::future<StatusOr<workloads::PipelineResult>> submit_pipeline(
      std::string name);
  std::future<StatusOr<sim::SimResult>> submit_simulate(std::string name,
                                                        SimRequest req = {});

 private:
  /// Bind this Engine's pool + analysis cache to the calling thread for
  /// the duration of one public call (or one async job).
  class Scope {
   public:
    explicit Scope(Engine& e)
        : pool_(&e.pool_), cache_(&e.analysis_cache_) {}

   private:
    common::ScopedPool pool_;
    exec::ScopedAnalysisCache cache_;
  };

  /// Jobs to retain in the id registry; terminal jobs are evicted oldest-
  /// first beyond this (live jobs are never evicted).
  static constexpr size_t kMaxRetainedJobs = 1024;

  StatusOr<sim::SimResult> simulate_impl(const workloads::Workload& w,
                                         const SimRequest& req,
                                         common::CancelToken* cancel);
  StatusOr<const workloads::PipelineResult*> pipeline_impl(
      const workloads::Workload& w, common::CancelToken* cancel);

  void ensure_executor();
  void executor_loop();
  void run_job(detail::JobImpl& job);
  void run_campaign(std::shared_ptr<detail::JobImpl> job);
  void run_transient_campaign(std::shared_ptr<detail::JobImpl> job);
  /// Shared orchestrator prologue: start the job as running; on failure
  /// (cancelled / deadline before the coordinator span up) finalize it and
  /// return false.
  bool start_campaign(detail::JobImpl& job);
  void release_slot();
  void evict_terminal_jobs_locked() GPURF_REQUIRES(qmu_);

  EngineOptions opts_;
  common::ThreadPool pool_;
  exec::AnalysisCache analysis_cache_;
  workloads::PipelineStats pipeline_stats_;
  workloads::PipelineCache pipelines_;
  std::vector<std::unique_ptr<workloads::Workload>> registry_;
  EngineMetrics metrics_;

  // Async executor (threads spawned lazily on first submit).  The queue
  // state is capability-annotated (ISSUE 10 satellite): the CI clang job
  // builds with -Werror=thread-safety, so an access outside qmu_ is a
  // compile error, not a review comment.
  mutable common::Mutex qmu_;
  std::condition_variable qcv_;    ///< wakes executor threads
  std::condition_variable slot_cv_;  ///< wakes blocked submitters
  std::vector<std::shared_ptr<detail::JobImpl>> queue_
      GPURF_GUARDED_BY(qmu_);  ///< pending jobs
  std::unordered_map<uint64_t, std::shared_ptr<detail::JobImpl>> jobs_
      GPURF_GUARDED_BY(qmu_);
  uint64_t next_job_id_ GPURF_GUARDED_BY(qmu_) = 1;
  uint64_t next_run_seq_ GPURF_GUARDED_BY(qmu_) = 1;
  size_t inflight_ GPURF_GUARDED_BY(qmu_) = 0;  ///< queued + running
  bool stopping_ GPURF_GUARDED_BY(qmu_) = false;
  bool executor_started_ GPURF_GUARDED_BY(qmu_) = false;
  std::vector<std::thread> executors_;
  /// Fault-campaign orchestrator threads (one per campaign job).  They
  /// bypass the executor queue — a campaign is a coordinator that mostly
  /// waits on its child simulate jobs, so parking it on an executor
  /// worker could deadlock a small pool.  Joined in the destructor
  /// *before* the executors: a stopping campaign cancels its children,
  /// which the draining executors then finalize.
  std::vector<std::thread> campaign_threads_;
};

}  // namespace gpurf
