#pragma once
// First-class jobs on the Engine's async executor (ISSUE 4 tentpole).
//
// PR 3's submit_pipeline/submit_simulate returned bare std::futures: no
// identity, no way to abort a multi-second tuning run, no visibility into
// where a request is stuck, and strict FIFO ordering.  A Job replaces that
// with a serving-grade handle:
//
//   * stable id — addressable across the gpurfd wire protocol;
//   * state machine — queued -> running -> {done, cancelled,
//     deadline-exceeded}; a failed run is `done` with a non-OK status;
//   * cancel() — cooperative; the worker observes it at its next
//     checkpoint (between tuner probe batches, between pipeline stages,
//     every few thousand simulated cycles), so a cancelled job never
//     leaves a partially-written memo or disk-cache entry;
//   * per-request deadline — applies to queue wait AND execution: a full
//     in-flight queue no longer blocks submitters past their deadline, and
//     a running job stops at its next checkpoint once the deadline passes;
//   * priority — higher runs first; FIFO within a priority level;
//   * progress() — pipeline stage, tuner pass/evaluations, simulated
//     cycles, wall time, and the global run sequence number.
//
// The handle is a shared_ptr view onto state owned jointly with the
// Engine: it stays valid after the job finishes and (for terminal jobs)
// after the Engine is destroyed.
//
// The old futures API survives as a thin shim over submit() in
// api/engine.hpp — same signatures, same result values.

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "common/cancel.hpp"
#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"

namespace gpurf {

/// Permanent-fault injection for one simulation (PR 6).  The Engine
/// generates rf::FaultMap::generate(seed, density), runs the slice
/// allocator fault-aware (redirection + graceful spill) and reports
/// coverage/degradation in SimResult::fault.  density <= 0 disables
/// injection entirely (bit-identical to a fault-free run).
struct FaultSpec {
  uint64_t seed = 0;
  double density = 0.0;  ///< fraction of slice sites faulty, clamped [0,1]
  /// Also score output quality of the faulty allocation against the
  /// fault-free tuned run (adds two sample-scale functional runs).
  bool score_quality = false;
};

/// One timing-simulation request (§6 experiment configurations).
struct SimRequest {
  workloads::SimMode mode = workloads::SimMode::kOriginal;
  workloads::Scale scale = workloads::Scale::kFull;
  uint32_t variant = 0;
  /// Override the compression pipeline parameters (e.g. the §6.3
  /// writeback-delay sweep); unset derives the config from `mode`.
  std::optional<sim::CompressionConfig> compression;
  /// Multi-SM shard count for this simulation only: > 0 overrides the
  /// Engine's resolved EngineOptions::sim_shards (1 = serial reference
  /// schedule).  Timing results are bit-identical at every value.
  int sim_shards = 0;
  /// Permanent-fault injection; density <= 0 (default) = fault-free.
  /// Requires a compressed mode — faults live in the compressed file.
  FaultSpec fault;
  /// Transient soft-error injection (PR 7): Poisson bit flips over the
  /// physical slice geometry.  Works in every mode (the baseline RF is the
  /// comparison point); rate <= 0 with track_exposure unset runs
  /// bit-identical to a flip-free simulation.
  sim::SoftErrorSpec soft;
  /// Also score the flipped run's architectural output against the exact
  /// reference and a flip-free tuned replay (fills
  /// SoftErrorReport::quality_*; adds two functional runs at this
  /// request's scale).  Ignored unless the flip process is active.
  bool soft_score_quality = false;
  /// Fault-aware re-tuning (PR 7): when the permanent-fault map is dense
  /// enough that allocation spills registers — or inflates physical
  /// register pressure until the kernel no longer fits on the SM —
  /// re-run the precision tuner under a slice budget
  /// (TunerOptions::max_slices_hint of 4, then 2, then 1) and adopt the
  /// best configuration, comparing lexicographically on (fits on the SM,
  /// spill count) — trading precision down to keep values in compressed
  /// storage.  A fault-free map never re-tunes, so the tuned pipeline
  /// output is guaranteed unchanged.
  bool retune_on_faults = false;
};

/// A fault-injection campaign (ROADMAP 4a): sweep `maps_per_density`
/// seeded fault maps at each density in `densities`, every map one
/// child simulate Job on the Engine's executor.  Per-map seeds are
/// derived deterministically from `base_seed`, so a campaign is exactly
/// reproducible; per-map progress is published through
/// JobProgress::campaign_maps_{done,total} and cancel stops the sweep at
/// the next map boundary.
struct FaultCampaignRequest {
  SimRequest sim;                 ///< template for every child simulation
  std::vector<double> densities = {0.005, 0.01, 0.02, 0.05};
  int maps_per_density = 3;       ///< seeded maps per density point
  uint64_t base_seed = 1;         ///< per-map seeds derived from this
  /// Early stopping (PR 7): > 0 forces quality scoring on every child and,
  /// once the mean quality delta (positive = worse) across a completed
  /// density crosses above this floor, cooperatively cancels the remaining
  /// higher-density children and marks the result truncated.  <= 0
  /// (default) disables early stopping.
  double quality_floor = 0.0;
};

enum class JobState {
  kQueued,            ///< accepted, waiting for an executor worker
  kRunning,           ///< executing on a worker
  kDone,              ///< finished (status() is OK on success)
  kCancelled,         ///< stopped by Job::cancel()
  kDeadlineExceeded,  ///< deadline elapsed while queued or running
};

inline const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

inline bool job_state_terminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

/// Outcome of one fault map inside a campaign.
struct FaultCampaignPoint {
  double density = 0.0;   ///< requested density of this point
  uint64_t seed = 0;      ///< derived per-map seed
  JobState state = JobState::kDone;  ///< child terminal state
  std::string error;      ///< non-empty when the child failed
  sim::FaultInjectionReport fault;   ///< empty when the child failed
  uint64_t cycles = 0;
  double ipc = 0.0;
};

struct FaultCampaignResult {
  std::string workload;
  std::vector<FaultCampaignPoint> points;  ///< density-major, seed order
  /// Early stopping fired: children past `truncated_at_density` were
  /// cancelled after the mean quality delta crossed the request's floor.
  bool truncated = false;
  double truncated_at_density = 0.0;
};

/// A transient soft-error campaign (PR 7 tentpole): sweep `seeds_per_rate`
/// seeded flip processes at each rate in `flips_per_mcycle`, every point
/// one child simulate job on the Engine's executor.  Per-point seeds are a
/// deterministic splitmix64 stream off `base_seed`; progress and
/// cancellation behave exactly like a permanent-fault campaign.
struct TransientCampaignRequest {
  /// Template for every child: mode, scale, compression, re-tuning — the
  /// per-child soft-error rate and seed are overwritten by the sweep.
  SimRequest sim;
  std::vector<double> flip_rates = {10.0, 100.0, 1000.0};  ///< per Mcycle
  int seeds_per_rate = 3;
  uint64_t base_seed = 1;
};

/// Outcome of one flip process inside a transient campaign.
struct TransientCampaignPoint {
  double flips_per_mcycle = 0.0;
  uint64_t seed = 0;
  JobState state = JobState::kDone;  ///< child terminal state
  std::string error;       ///< non-empty when the child failed (a corrupted
                           ///< address aborting the run is a DUE, reported
                           ///< here as the child's FailedPrecondition)
  sim::SoftErrorReport soft;  ///< empty when the child failed
  uint64_t cycles = 0;
  double ipc = 0.0;
};

struct TransientCampaignResult {
  std::string workload;
  std::vector<TransientCampaignPoint> points;  ///< rate-major, seed order
};

enum class JobKind { kPipeline, kSimulate, kFaultCampaign,
                     kTransientCampaign };

inline const char* job_kind_name(JobKind k) {
  switch (k) {
    case JobKind::kPipeline: return "pipeline";
    case JobKind::kSimulate: return "simulate";
    case JobKind::kFaultCampaign: return "fault_campaign";
    case JobKind::kTransientCampaign: return "transient_campaign";
  }
  return "unknown";
}

/// True for job kinds that run as campaign orchestrators (a coordinator
/// thread fanning out child simulate jobs) instead of executor queue
/// entries.
inline bool job_kind_campaign(JobKind k) {
  return k == JobKind::kFaultCampaign || k == JobKind::kTransientCampaign;
}

/// What to run and how to schedule it.
struct JobRequest {
  JobKind kind = JobKind::kPipeline;
  std::string workload;        ///< bundled Table-4 workload name
  SimRequest sim;              ///< kSimulate only
  FaultCampaignRequest campaign;  ///< kFaultCampaign only
  TransientCampaignRequest transient;  ///< kTransientCampaign only
  int priority = 0;            ///< higher runs first; FIFO within a level
  int64_t deadline_ms = 0;     ///< relative to submit(), covers queue wait
                               ///< and execution; <= 0 means no deadline

  static JobRequest pipeline(std::string name) {
    JobRequest r;
    r.kind = JobKind::kPipeline;
    r.workload = std::move(name);
    return r;
  }
  static JobRequest simulate(std::string name, SimRequest req = {}) {
    JobRequest r;
    r.kind = JobKind::kSimulate;
    r.workload = std::move(name);
    r.sim = req;
    return r;
  }
  static JobRequest fault_campaign(std::string name,
                                   FaultCampaignRequest req = {}) {
    JobRequest r;
    r.kind = JobKind::kFaultCampaign;
    r.workload = std::move(name);
    r.campaign = std::move(req);
    return r;
  }
  static JobRequest transient_campaign(std::string name,
                                       TransientCampaignRequest req = {}) {
    JobRequest r;
    r.kind = JobKind::kTransientCampaign;
    r.workload = std::move(name);
    r.transient = std::move(req);
    return r;
  }
  JobRequest& with_priority(int p) { priority = p; return *this; }
  JobRequest& with_deadline_ms(int64_t ms) { deadline_ms = ms; return *this; }
};

/// Point-in-time view of a job's execution (coarse, lock-free counters).
struct JobProgress {
  JobState state = JobState::kQueued;
  common::JobStage stage = common::JobStage::kQueued;
  int tuner_pass = 0;         ///< current tuner fixpoint pass (1-based)
  int tuner_evaluations = 0;  ///< quality probes performed so far
  uint64_t sim_cycles = 0;    ///< simulated cycles so far
  uint64_t run_seq = 0;       ///< global start order (0 = not started yet)
  double wall_ms = 0.0;       ///< submit -> now (or -> terminal)
  /// start -> now (or -> terminal); 0 while still queued.  Unlike
  /// wall_ms this excludes queue wait, so per-job throughput metrics
  /// (e.g. simulated cycles per second) are meaningful even when many
  /// jobs were submitted up front.
  double exec_ms = 0.0;
  // Fault-campaign jobs only: per-map sweep progress.
  int campaign_maps_done = 0;
  int campaign_maps_total = 0;
};

class Engine;

namespace detail {

/// Shared job state.  The Engine and every Job handle hold it through a
/// shared_ptr; the mutex guards the state machine and results, while the
/// CancelToken carries the lock-free control/progress channel into the
/// lower layers.
struct JobImpl {
  using Clock = std::chrono::steady_clock;

  uint64_t id = 0;
  JobRequest req;
  common::CancelToken token;

  mutable std::mutex mu;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  bool finalizing = false;  ///< finalize claimed; terminal not yet published
  Status status;  ///< terminal status (OK for a successful kDone)
  std::optional<workloads::PipelineResult> pipeline_result;
  std::optional<sim::SimResult> sim_result;
  std::optional<FaultCampaignResult> campaign_result;
  std::optional<TransientCampaignResult> transient_result;
  std::vector<std::function<void()>> on_terminal;

  Clock::time_point submitted_at{};
  Clock::time_point started_at{};
  Clock::time_point finished_at{};
  uint64_t run_seq = 0;

  /// queued -> running; false if the job is already terminal or a stop was
  /// requested while it sat in the queue (the caller finalizes it instead).
  bool start_running(uint64_t seq) {
    std::lock_guard<std::mutex> lock(mu);
    if (state != JobState::kQueued || finalizing) return false;
    if (token.stop_reason() != common::StopReason::kNone) return false;
    state = JobState::kRunning;
    started_at = Clock::now();
    run_seq = seq;
    return true;
  }

  /// Transition to a terminal state exactly once.  The registered
  /// listeners run first, outside the lock, and only then does the
  /// terminal state become observable (waiters wake, status() succeeds):
  /// anything a client can learn from "the job is done" already reflects
  /// listener side effects, e.g. the serving layer's per-token quota slot
  /// is free by the time a wait() returns.  Returns false if the job was
  /// already terminal or another finalize is in flight (no-op then).
  bool finalize(JobState terminal, Status st) {
    std::vector<std::function<void()>> listeners;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (finalizing || job_state_terminal(state)) return false;
      finalizing = true;
      // Outcome fields are set now so listeners can read them; the state
      // machine itself still reads kQueued/kRunning until the publish
      // below, so status()/result accessors keep failing with
      // FailedPrecondition ("not finished") during the listener window.
      status = std::move(st);
      finished_at = Clock::now();
      listeners.swap(on_terminal);
    }
    for (auto& fn : listeners) fn();
    {
      std::lock_guard<std::mutex> lock(mu);
      state = terminal;
      token.set_stage(common::JobStage::kFinished);
      cv.notify_all();
    }
    return true;
  }

  /// Run `fn` once the job is terminal — immediately if it already is or
  /// a finalize is in flight (the list has been swapped out by then).
  void add_listener(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!finalizing && !job_state_terminal(state)) {
        on_terminal.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }
};

}  // namespace detail

/// Caller-facing job handle (cheap to copy; all methods thread-safe).
/// A default-constructed Job is empty — valid() is false and every other
/// method must not be called.
class Job {
 public:
  Job() = default;

  bool valid() const { return impl_ != nullptr; }
  uint64_t id() const { return impl_->id; }
  JobKind kind() const { return impl_->req.kind; }
  const std::string& workload() const { return impl_->req.workload; }
  int priority() const { return impl_->req.priority; }

  JobState state() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->state;
  }

  bool done() const { return job_state_terminal(state()); }

  /// Request cooperative cancellation.  A queued job transitions to
  /// kCancelled immediately; a running job stops at its next checkpoint
  /// (at most one tuner probe batch / pipeline stage / simulation slice
  /// later).  No-op on terminal jobs.
  void cancel() {
    impl_->token.cancel();
    std::unique_lock<std::mutex> lock(impl_->mu);
    if (impl_->state == JobState::kQueued) {
      lock.unlock();
      // The executor discards the queue entry when it reaches it; the
      // in-flight slot is released there, so accounting stays single-owner.
      impl_->finalize(JobState::kCancelled,
                      Status::Cancelled("cancelled while queued"));
    }
  }

  /// Block until the job is terminal.
  void wait() const {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->cv.wait(lock, [&] { return job_state_terminal(impl_->state); });
  }

  /// Block up to `timeout`; true once the job is terminal.
  bool wait_for(std::chrono::milliseconds timeout) const {
    std::unique_lock<std::mutex> lock(impl_->mu);
    return impl_->cv.wait_for(
        lock, timeout, [&] { return job_state_terminal(impl_->state); });
  }

  /// Terminal status: OK for a successful kDone, kCancelled /
  /// kDeadlineExceeded / the failure status otherwise.  FailedPrecondition
  /// while the job is still queued or running.
  Status status() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!job_state_terminal(impl_->state))
      return Status::FailedPrecondition("job " + std::to_string(impl_->id) +
                                        " is not finished");
    return impl_->status;
  }

  JobProgress progress() const {
    JobProgress p;
    std::lock_guard<std::mutex> lock(impl_->mu);
    p.state = impl_->state;
    p.stage = impl_->token.stage();
    p.tuner_pass = impl_->token.tuner_pass.load(std::memory_order_relaxed);
    p.tuner_evaluations =
        impl_->token.tuner_evaluations.load(std::memory_order_relaxed);
    p.sim_cycles = impl_->token.sim_cycles.load(std::memory_order_relaxed);
    p.campaign_maps_done =
        impl_->token.campaign_maps_done.load(std::memory_order_relaxed);
    p.campaign_maps_total =
        impl_->token.campaign_maps_total.load(std::memory_order_relaxed);
    p.run_seq = impl_->run_seq;
    const auto end = job_state_terminal(impl_->state)
                         ? impl_->finished_at
                         : detail::JobImpl::Clock::now();
    p.wall_ms = std::chrono::duration<double, std::milli>(
                    end - impl_->submitted_at)
                    .count();
    if (impl_->run_seq > 0)
      p.exec_ms = std::chrono::duration<double, std::milli>(
                      end - impl_->started_at)
                      .count();
    return p;
  }

  /// Run `fn` once the job reaches a terminal state — immediately if it
  /// already has.  `fn` runs on the finalizing thread (or this one), so it
  /// must be quick and must not wait on the job.  Serving layers use this
  /// for per-token in-flight accounting (ISSUE 8).
  void on_terminal(std::function<void()> fn) const {
    impl_->add_listener(std::move(fn));
  }

  /// Result accessors: the value snapshot for a successful job of the
  /// matching kind, the terminal status as an error otherwise.
  StatusOr<workloads::PipelineResult> pipeline_result() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!job_state_terminal(impl_->state))
      return Status::FailedPrecondition("job is not finished");
    if (impl_->pipeline_result) return *impl_->pipeline_result;
    if (!impl_->status.ok()) return impl_->status;
    return Status::FailedPrecondition("not a pipeline job");
  }

  StatusOr<sim::SimResult> sim_result() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!job_state_terminal(impl_->state))
      return Status::FailedPrecondition("job is not finished");
    if (impl_->sim_result) return *impl_->sim_result;
    if (!impl_->status.ok()) return impl_->status;
    return Status::FailedPrecondition("not a simulate job");
  }

  StatusOr<FaultCampaignResult> campaign_result() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!job_state_terminal(impl_->state))
      return Status::FailedPrecondition("job is not finished");
    if (impl_->campaign_result) return *impl_->campaign_result;
    if (!impl_->status.ok()) return impl_->status;
    return Status::FailedPrecondition("not a fault-campaign job");
  }

  StatusOr<TransientCampaignResult> transient_result() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!job_state_terminal(impl_->state))
      return Status::FailedPrecondition("job is not finished");
    if (impl_->transient_result) return *impl_->transient_result;
    if (!impl_->status.ok()) return impl_->status;
    return Status::FailedPrecondition("not a transient-campaign job");
  }

 private:
  friend class Engine;
  explicit Job(std::shared_ptr<detail::JobImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<detail::JobImpl> impl_;
};

}  // namespace gpurf
