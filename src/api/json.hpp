#pragma once
// JSON snapshots of the framework's result objects (ISSUE 3): serving
// callers and report emitters need pipeline and simulation results in a
// machine-readable form without linking a JSON library.  The emitters here
// are hand-rolled (objects/arrays/scalars only, RFC 8259-escaped strings)
// and intentionally flat: every field mirrors the corresponding struct so
// snapshots stay diffable against header definitions.

#include <string>

#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"

namespace gpurf::api {

/// Minimal JSON object/array builder.  Values are appended in insertion
/// order; no escaping pitfalls because all keys are ASCII literals and
/// string values pass through escape().
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array(const std::string& key);
  void begin_object(const std::string& key);
  void end_array();

  void field(const std::string& key, const std::string& v);
  void field(const std::string& key, const char* v);
  void field(const std::string& key, double v);
  void field(const std::string& key, uint64_t v);
  void field(const std::string& key, int64_t v);
  void field(const std::string& key, uint32_t v) { field(key, uint64_t(v)); }
  void field(const std::string& key, int v) { field(key, int64_t(v)); }
  void field(const std::string& key, bool v);
  /// Bare array element (numeric).
  void element(double v);
  void element(uint64_t v);

  const std::string& str() const { return out_; }

  static std::string escape(const std::string& s);

 private:
  void comma();
  void key(const std::string& k);

  std::string out_;
  bool need_comma_ = false;
};

/// Pipeline snapshot: pressure bars, tuner statistics and per-register
/// tuned widths, allocation summaries.
std::string to_json(const workloads::PipelineResult& pr);

/// Timing statistics: cycles, IPC, cache miss rates, stall breakdown,
/// compression traffic.
std::string to_json(const sim::SimStats& s);

/// Full simulation snapshot: stats + occupancy.
std::string to_json(const sim::SimResult& r);

}  // namespace gpurf::api
