#pragma once
// JSON snapshots of the framework's result objects (ISSUE 3): serving
// callers and report emitters need pipeline and simulation results in a
// machine-readable form without linking a JSON library.  The emitters here
// are hand-rolled (objects/arrays/scalars only, RFC 8259-escaped strings)
// and intentionally flat: every field mirrors the corresponding struct so
// snapshots stay diffable against header definitions.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/dataflow.hpp"
#include "api/job.hpp"
#include "api/metrics.hpp"
#include "api/status.hpp"
#include "sim/gpu.hpp"
#include "workloads/pipeline.hpp"

namespace gpurf::api {

/// Minimal JSON object/array builder.  Values are appended in insertion
/// order; no escaping pitfalls because all keys are ASCII literals and
/// string values pass through escape().
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array(const std::string& key);
  void begin_object(const std::string& key);
  void end_array();

  void field(const std::string& key, const std::string& v);
  void field(const std::string& key, const char* v);
  void field(const std::string& key, double v);
  void field(const std::string& key, uint64_t v);
  void field(const std::string& key, int64_t v);
  void field(const std::string& key, uint32_t v) { field(key, uint64_t(v)); }
  void field(const std::string& key, int v) { field(key, int64_t(v)); }
  void field(const std::string& key, bool v);
  /// Pre-serialized JSON value, spliced in verbatim (e.g. embedding a
  /// metrics snapshot inside a response envelope).  The caller guarantees
  /// `json` is well-formed.
  void raw(const std::string& key, const std::string& json);
  /// Bare array element (numeric / string).
  void element(double v);
  void element(uint64_t v);
  void element(const std::string& v);

  const std::string& str() const { return out_; }

  static std::string escape(const std::string& s);

 private:
  void comma();
  void key(const std::string& k);

  std::string out_;
  bool need_comma_ = false;
};

/// Pipeline snapshot: pressure bars, tuner statistics and per-register
/// tuned widths, allocation summaries.
std::string to_json(const workloads::PipelineResult& pr);

/// Timing statistics: cycles, IPC, cache miss rates, stall breakdown,
/// compression traffic.
std::string to_json(const sim::SimStats& s);

/// Full simulation snapshot: stats + occupancy + fault-injection report.
std::string to_json(const sim::SimResult& r);

/// Fault-campaign snapshot (PR 6): one entry per (density, seed) point
/// with the child's state, degradation report, cycles and IPC.
std::string to_json(const FaultCampaignResult& r);

/// Transient-campaign snapshot (PR 7): one entry per (flip rate, seed)
/// point with the child's state, AVF-style soft-error report, cycles and
/// IPC.
std::string to_json(const TransientCampaignResult& r);

/// Latency-histogram snapshot (ISSUE 8).  Summary form (full=false) is
/// what every envelope embeds: count, mean and p50/p99/p999 in
/// microseconds.  Full form adds the log2 bucket array as
/// [{"le_us":...,"count":...}, ...] (zero buckets skipped) for
/// {"op":"histograms"}.
std::string to_json(const HistogramSnapshot& h, bool full);

/// Engine/fleet metrics snapshot (ISSUE 8): the flat counter object every
/// envelope has carried since ISSUE 4, plus per-stage histogram
/// summaries.  Shard-aggregated via MetricsSnapshot::operator+= before
/// serialisation on multi-Engine daemons.
std::string to_json(const MetricsSnapshot& m);

/// Kernel lint report (PR 9): counts, pressures, undefined reads, dead
/// writes, never-read registers and linear live intervals — the payload
/// of gpurf-lint --json and the {"op":"analyze"} daemon verb.
std::string to_json(const analysis::KernelReport& r);

// ------------------------------------------------------------ JSON parsing
//
// The gpurfd wire protocol (ISSUE 4) speaks newline-delimited JSON both
// ways, so the daemon needs to *read* JSON too — still without linking a
// JSON library.  JsonValue + parse_json implement the RFC 8259 value
// grammar (objects, arrays, strings with escapes, numbers, booleans,
// null), enough for the flat request envelopes and for tests to verify
// every emitted snapshot is well-formed.

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject
  std::vector<JsonValue> items;                            ///< kArray

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup (first match); null for non-objects / misses.
  const JsonValue* get(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }

  // Loose accessors with defaults — wire fields are optional by design.
  std::string as_string(std::string dflt = "") const {
    return kind == Kind::kString ? str_v : dflt;
  }
  double as_double(double dflt = 0.0) const {
    return kind == Kind::kNumber ? num_v : dflt;
  }
  int64_t as_int(int64_t dflt = 0) const {
    return kind == Kind::kNumber ? static_cast<int64_t>(num_v) : dflt;
  }
  bool as_bool(bool dflt = false) const {
    return kind == Kind::kBool ? bool_v : dflt;
  }
};

/// Parse one JSON document (the whole input must be consumed apart from
/// trailing whitespace).  InvalidArgument with a position on malformed
/// input; never throws.
StatusOr<JsonValue> parse_json(std::string_view text);

/// Structural equality over parsed JSON values: object member *order* is
/// ignored (duplicate keys compare by first occurrence, matching
/// JsonValue::get), array order matters, numbers compare exactly as the
/// doubles the parser produced.  Used by bench_serve to assert TCP and
/// AF_UNIX serve bit-identical results even when envelope framing
/// (chunked vs inline) differs.
bool deep_equal(const JsonValue& a, const JsonValue& b);

}  // namespace gpurf::api
