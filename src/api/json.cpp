#include "api/json.hpp"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gpurf::api {

namespace {

std::string fmt_double(double v) {
  // Shortest round-trippable-enough form; NaN/inf are not valid JSON, so
  // they serialise as null.  std::to_chars formats like printf %g *in the
  // C locale* regardless of the process locale — snprintf would emit a
  // comma decimal separator under e.g. de_DE, which is not valid JSON
  // (ISSUE 5 locale fix, the emitting twin of the parse_json change).
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto r =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 9);
  return std::string(buf, r.ptr);
}

}  // namespace

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_ = false;
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array(const std::string& k) {
  key(k);
  out_ += '[';
  need_comma_ = false;
}

void JsonWriter::begin_object(const std::string& k) {
  key(k);
  out_ += '{';
  need_comma_ = false;
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, const std::string& v) {
  key(k);
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, const char* v) {
  field(k, std::string(v));
}

void JsonWriter::field(const std::string& k, double v) {
  key(k);
  out_ += fmt_double(v);
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, uint64_t v) {
  key(k);
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, int64_t v) {
  key(k);
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, bool v) {
  key(k);
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::raw(const std::string& k, const std::string& json) {
  key(k);
  out_ += json;
  need_comma_ = true;
}

void JsonWriter::element(double v) {
  comma();
  out_ += fmt_double(v);
  need_comma_ = true;
}

void JsonWriter::element(uint64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::element(const std::string& v) {
  comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  need_comma_ = true;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_tune(JsonWriter& w, const std::string& k,
                const tuning::TuneResult& t) {
  w.begin_object(k);
  w.field("evaluations", t.evaluations);
  w.field("f32_regs", t.f32_regs);
  w.field("slices_before", t.slices_before);
  w.field("slices_after", t.slices_after);
  w.field("final_score", t.final_score);
  w.begin_array("per_reg_bits");
  for (const auto& f : t.pmap.per_reg) w.element(uint64_t(f.total_bits));
  w.end_array();
  w.end_object();
}

void write_alloc(JsonWriter& w, const std::string& k,
                 const alloc::AllocationResult& a) {
  w.begin_object(k);
  w.field("num_physical_regs", a.num_physical_regs);
  w.field("total_slices", a.total_slices);
  w.field("split_operands", a.split_operands);
  w.field("packing_density", a.packing_density());
  w.field("registers_redirected", a.registers_redirected);
  w.field("registers_spilled", a.registers_spilled);
  w.field("spill_regs", a.spill_regs);
  w.field("fault_coverage_pct", a.fault_coverage_pct());
  w.end_object();
}

void write_cache(JsonWriter& w, const std::string& k, const sim::CacheStats& c) {
  w.begin_object(k);
  w.field("accesses", c.accesses);
  w.field("misses", c.misses);
  w.field("miss_rate", c.miss_rate());
  w.end_object();
}

const char* limiter_name(sim::Occupancy::Limiter l) {
  switch (l) {
    case sim::Occupancy::Limiter::kRegisters: return "registers";
    case sim::Occupancy::Limiter::kSharedMem: return "shared_mem";
    case sim::Occupancy::Limiter::kWarps: return "warps";
    case sim::Occupancy::Limiter::kBlocks: return "blocks";
    case sim::Occupancy::Limiter::kNone: return "none";
  }
  return "none";
}

void write_stats_fields(JsonWriter& w, const sim::SimStats& s) {
  w.field("cycles", s.cycles);
  w.field("thread_insts", s.thread_insts);
  w.field("warp_insts", s.warp_insts);
  w.field("blocks_run", s.blocks_run);
  w.field("ipc", s.ipc());
  write_cache(w, "l1", s.l1);
  write_cache(w, "tex", s.tex);
  write_cache(w, "l2", s.l2);
  w.begin_object("stalls");
  w.field("scoreboard", s.stall_scoreboard);
  w.field("no_cu", s.stall_no_cu);
  w.field("barrier", s.stall_barrier);
  w.field("empty", s.stall_empty);
  w.end_object();
  w.field("operand_fetches", s.operand_fetches);
  w.field("double_fetches", s.double_fetches);
  w.field("conversions", s.conversions);
  w.field("fault_redirected_fetches", s.fault_redirected_fetches);
  w.field("fault_spill_fetches", s.fault_spill_fetches);
  w.field("spill_port_conflicts", s.spill_port_conflicts);
  w.field("soft_flips_injected", s.soft_flips_injected);
  w.field("soft_flips_on_live", s.soft_flips_on_live);
  w.field("soft_flips_masked_dead", s.soft_flips_masked_dead);
  w.field("soft_flips_visible", s.soft_flips_visible);
  w.field("soft_live_bit_cycles", s.soft_live_bit_cycles);
  w.field("soft_flips_static_dead", s.soft_flips_static_dead);
  w.field("soft_static_live_bit_cycles", s.soft_static_live_bit_cycles);
}

void write_fault_report(JsonWriter& w, const std::string& k,
                        const sim::FaultInjectionReport& f) {
  w.begin_object(k);
  w.field("active", f.active);
  w.field("seed", f.seed);
  w.field("density", f.density);
  w.field("faults_total", f.faults_total);
  w.field("faults_in_footprint", f.faults_in_footprint);
  w.field("registers_redirected", f.registers_redirected);
  w.field("registers_spilled", f.registers_spilled);
  w.field("spill_regs", f.spill_regs);
  w.field("coverage_pct", f.coverage_pct);
  w.field("retuned", f.retuned);
  w.field("retune_slice_budget", f.retune_slice_budget);
  w.field("spills_before_retune", f.spills_before_retune);
  w.field("quality_scored", f.quality_scored);
  if (f.quality_scored) {
    w.field("quality_fault_free", f.quality_fault_free);
    w.field("quality_faulty", f.quality_faulty);
    w.field("quality_delta", f.quality_delta);
  }
  w.end_object();
}

void write_soft_report(JsonWriter& w, const std::string& k,
                       const sim::SoftErrorReport& s) {
  w.begin_object(k);
  w.field("active", s.active);
  w.field("flips_per_mcycle", s.flips_per_mcycle);
  w.field("seed", s.seed);
  w.field("flips_injected", s.flips_injected);
  w.field("flips_on_live", s.flips_on_live);
  w.field("flips_masked_dead", s.flips_masked_dead);
  w.field("flips_visible", s.flips_visible);
  w.field("live_bit_cycles", s.live_bit_cycles);
  w.field("flips_static_dead", s.flips_static_dead);
  w.field("static_live_bit_cycles", s.static_live_bit_cycles);
  w.field("avf", s.avf());
  w.field("quality_scored", s.quality_scored);
  if (s.quality_scored) {
    w.field("quality_fault_free", s.quality_fault_free);
    w.field("quality_faulty", s.quality_faulty);
    w.field("quality_delta", s.quality_delta);
  }
  w.end_object();
}

}  // namespace

std::string to_json(const workloads::PipelineResult& pr) {
  JsonWriter w;
  w.begin_object();
  w.begin_object("pressure");
  w.field("original", pr.pressure.original);
  w.field("narrow_int", pr.pressure.narrow_int);
  w.field("narrow_float_perfect", pr.pressure.narrow_float_perfect);
  w.field("narrow_float_high", pr.pressure.narrow_float_high);
  w.field("both_perfect", pr.pressure.both_perfect);
  w.field("both_high", pr.pressure.both_high);
  w.end_object();
  write_tune(w, "tune_perfect", pr.tune_perfect);
  write_tune(w, "tune_high", pr.tune_high);
  write_alloc(w, "alloc_both_perfect", pr.alloc_both_perfect);
  write_alloc(w, "alloc_both_high", pr.alloc_both_high);
  w.end_object();
  return w.str();
}

std::string to_json(const sim::SimStats& s) {
  JsonWriter w;
  w.begin_object();
  write_stats_fields(w, s);
  w.end_object();
  return w.str();
}

std::string to_json(const sim::SimResult& r) {
  JsonWriter w;
  w.begin_object();
  w.begin_object("occupancy");
  w.field("blocks_per_sm", r.occupancy.blocks_per_sm);
  w.field("warps_per_sm", r.occupancy.warps_per_sm);
  w.field("percent", r.occupancy.percent);
  w.field("limiter", limiter_name(r.occupancy.limiter));
  w.end_object();
  w.begin_object("stats");
  write_stats_fields(w, r.stats);
  w.end_object();
  write_fault_report(w, "fault", r.fault);
  write_soft_report(w, "soft", r.soft);
  w.end_object();
  return w.str();
}

std::string to_json(const FaultCampaignResult& r) {
  JsonWriter w;
  w.begin_object();
  w.field("workload", r.workload);
  w.field("truncated", r.truncated);
  if (r.truncated) w.field("truncated_at_density", r.truncated_at_density);
  w.begin_array("points");
  for (const auto& pt : r.points) {
    w.begin_object();
    w.field("density", pt.density);
    w.field("seed", pt.seed);
    w.field("state", job_state_name(pt.state));
    if (!pt.error.empty()) w.field("error", pt.error);
    w.field("cycles", pt.cycles);
    w.field("ipc", pt.ipc);
    write_fault_report(w, "fault", pt.fault);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string to_json(const TransientCampaignResult& r) {
  JsonWriter w;
  w.begin_object();
  w.field("workload", r.workload);
  w.begin_array("points");
  for (const auto& pt : r.points) {
    w.begin_object();
    w.field("flips_per_mcycle", pt.flips_per_mcycle);
    w.field("seed", pt.seed);
    w.field("state", job_state_name(pt.state));
    if (!pt.error.empty()) w.field("error", pt.error);
    w.field("cycles", pt.cycles);
    w.field("ipc", pt.ipc);
    write_soft_report(w, "soft", pt.soft);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {

void write_hist_fields(JsonWriter& w, const HistogramSnapshot& h, bool full) {
  w.field("count", h.count);
  w.field("sum_us", h.sum_us);
  w.field("mean_us", h.mean_us());
  w.field("p50_us", h.percentile_us(0.50));
  w.field("p99_us", h.percentile_us(0.99));
  w.field("p999_us", h.percentile_us(0.999));
  if (full) {
    w.begin_array("buckets");
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (h.buckets[static_cast<size_t>(b)] == 0) continue;
      w.begin_object();
      // The open-ended last bucket's inclusive bound is UINT64_MAX; emit
      // -1 instead so readers see a sentinel rather than a 20-digit bound.
      if (b >= HistogramSnapshot::kBuckets - 1)
        w.field("le_us", int64_t{-1});
      else
        w.field("le_us", HistogramSnapshot::bucket_le_us(b));
      w.field("count", h.buckets[static_cast<size_t>(b)]);
      w.end_object();
    }
    w.end_array();
  }
}

}  // namespace

std::string to_json(const HistogramSnapshot& h, bool full) {
  JsonWriter w;
  w.begin_object();
  write_hist_fields(w, h, full);
  w.end_object();
  return w.str();
}

std::string to_json(const MetricsSnapshot& m) {
  JsonWriter w;
  w.begin_object();
  w.field("pipeline_memo_hits", m.pipeline_memo_hits);
  w.field("pipeline_memo_misses", m.pipeline_memo_misses);
  w.field("disk_cache_hits", m.disk_cache_hits);
  w.field("disk_cache_stale_rejections", m.disk_cache_stale_rejections);
  w.field("disk_cache_write_failures", m.disk_cache_write_failures);
  w.field("disk_cache_disabled", m.disk_cache_disabled != 0);
  w.field("analysis_cache_hits", m.analysis_cache_hits);
  w.field("analysis_cache_misses", m.analysis_cache_misses);
  w.field("queue_depth", m.queue_depth);
  w.field("jobs_running", m.jobs_running);
  w.field("inflight", m.inflight);
  w.field("jobs_submitted", m.jobs_submitted);
  w.field("jobs_done", m.jobs_done);
  w.field("jobs_failed", m.jobs_failed);
  w.field("jobs_cancelled", m.jobs_cancelled);
  w.field("jobs_deadline_exceeded", m.jobs_deadline_exceeded);
  w.field("job_wall_ms_total", static_cast<double>(m.job_wall_us_total) / 1000.0);
  w.begin_object("latency");
  w.begin_object("queue_wait");
  write_hist_fields(w, m.queue_wait, false);
  w.end_object();
  w.begin_object("tune");
  write_hist_fields(w, m.tune, false);
  w.end_object();
  w.begin_object("sim");
  write_hist_fields(w, m.sim, false);
  w.end_object();
  w.begin_object("serialize");
  write_hist_fields(w, m.serialize, false);
  w.end_object();
  w.end_object();
  w.end_object();
  return w.str();
}

std::string to_json(const analysis::KernelReport& r) {
  JsonWriter w;
  w.begin_object();
  w.field("kernel", r.kernel);
  w.field("num_regs", r.num_regs);
  w.field("num_blocks", r.num_blocks);
  w.field("num_insts", r.num_insts);
  w.field("static_pressure", r.static_pressure);
  w.field("alloc_pressure", r.alloc_pressure);
  w.field("live_interval_pressure", r.live_interval_pressure);
  w.field("clean", r.clean());
  w.begin_array("reg_names");
  for (const auto& n : r.reg_names) w.element(n);
  w.end_array();
  w.begin_array("undefined_reads");
  for (uint32_t reg : r.undefined_reads) w.element(uint64_t(reg));
  w.end_array();
  w.begin_array("dead_writes");
  for (const auto& d : r.dead_writes) {
    w.begin_object();
    w.field("blk", d.blk);
    w.field("inst", d.inst);
    w.field("reg", d.reg);
    w.end_object();
  }
  w.end_array();
  w.begin_array("never_read");
  for (uint32_t reg : r.never_read) w.element(uint64_t(reg));
  w.end_array();
  w.begin_array("intervals");
  for (const auto& iv : r.intervals) {
    w.begin_object();
    w.field("reg", iv.reg);
    w.field("begin", iv.begin);
    w.field("end", iv.end);
    w.end_object();
  }
  w.end_array();
  w.field("mem_analyzed", r.mem_analyzed);
  if (r.mem_analyzed) {
    w.field("gmem_words", r.gmem_words);
    w.field("mem_insts", r.mem_insts);
    w.field("mem_proven", r.mem_proven);
    const auto write_oob = [&](const char* key,
                               const std::vector<analysis::OobFinding>& fs) {
      w.begin_array(key);
      for (const auto& f : fs) {
        w.begin_object();
        w.field("blk", f.blk);
        w.field("inst", f.inst);
        w.field("store", f.is_store);
        w.field("shared", f.shared);
        w.field("definite", f.definite);
        w.field("addr_known", f.addr_known);
        if (f.addr_known) {
          w.field("lo", f.lo);
          w.field("hi", f.hi);
        }
        w.end_object();
      }
      w.end_array();
    };
    write_oob("oob_errors", r.oob_errors);
    write_oob("oob_warnings", r.oob_warnings);
    w.field("footprints_computed", r.footprints_computed);
    w.field("stores_disjoint", r.stores_disjoint);
    w.field("loads_local", r.loads_local);
    w.field("disjoint_waived", r.disjoint_waived);
    w.field("store_affine", r.store_affine);
    w.field("load_affine", r.load_affine);
  }
  w.end_object();
  return w.str();
}

// ------------------------------------------------------------ JSON parsing

namespace {

/// Recursive-descent parser over the RFC 8259 value grammar.  Errors
/// record the byte offset; depth is bounded so hostile input cannot blow
/// the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> parse() {
    JsonValue v;
    if (!value(v, 0)) return error();
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing characters";
      return error();
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status error() const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + err_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      err_ = "nesting too deep";
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      err_ = "unexpected end of input";
      return false;
    }
    switch (text_[pos_]) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.str_v);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.bool_v = true;
        if (literal("true")) return true;
        err_ = "bad literal";
        return false;
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.bool_v = false;
        if (literal("false")) return true;
        err_ = "bad literal";
        return false;
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        if (literal("null")) return true;
        err_ = "bad literal";
        return false;
      default: return number(out);
    }
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        err_ = "expected object key";
        return false;
      }
      std::string key;
      if (!string(key)) return false;
      if (!consume(':')) {
        err_ = "expected ':'";
        return false;
      }
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      err_ = "expected ',' or '}'";
      return false;
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (consume(']')) return true;
    for (;;) {
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.items.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      err_ = "expected ',' or ']'";
      return false;
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              err_ = "truncated \\u escape";
              return false;
            }
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= unsigned(h - 'A' + 10);
              else {
                err_ = "bad \\u escape";
                return false;
              }
            }
            // BMP codepoint -> UTF-8 (surrogate pairs are passed through
            // as two 3-byte sequences — tolerable for a local protocol
            // whose emitters only escape control characters).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            err_ = "bad escape";
            return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        err_ = "unescaped control character";
        return false;
      }
      out += c;
      ++pos_;
    }
    err_ = "unterminated string";
    return false;
  }

  bool number(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) {
      err_ = "unexpected character";
      return false;
    }
    // std::from_chars is locale-independent: strtod consults LC_NUMERIC
    // and rejects "1.5" under comma-decimal locales (ISSUE 5 fix), which
    // would make the daemon's wire protocol depend on the host's locale.
    const char* tok_begin = text_.data() + start;
    const char* tok_end = text_.data() + pos_;
    const auto r = std::from_chars(tok_begin, tok_end, out.num_v);
    if (r.ec != std::errc() || r.ptr != tok_end) {
      err_ = "malformed number";
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string err_ = "invalid JSON";
};

}  // namespace

StatusOr<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

bool deep_equal(const JsonValue& a, const JsonValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.bool_v == b.bool_v;
    case JsonValue::Kind::kNumber: return a.num_v == b.num_v;
    case JsonValue::Kind::kString: return a.str_v == b.str_v;
    case JsonValue::Kind::kArray: {
      if (a.items.size() != b.items.size()) return false;
      for (size_t i = 0; i < a.items.size(); ++i)
        if (!deep_equal(a.items[i], b.items[i])) return false;
      return true;
    }
    case JsonValue::Kind::kObject: {
      if (a.members.size() != b.members.size()) return false;
      // Order-insensitive; lookups go through get() so duplicate keys
      // compare by first occurrence on both sides, same as readers see.
      for (const auto& [k, va] : a.members) {
        const JsonValue* vb = b.get(k);
        if (!vb || !deep_equal(*a.get(k), *vb)) return false;
      }
      for (const auto& [k, vb] : b.members) {
        (void)vb;
        if (!a.get(k)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace gpurf::api
