#include "api/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace gpurf::api {

namespace {

std::string fmt_double(double v) {
  // Shortest round-trippable-enough form; NaN/inf are not valid JSON, so
  // they serialise as null.
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_ = false;
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array(const std::string& k) {
  key(k);
  out_ += '[';
  need_comma_ = false;
}

void JsonWriter::begin_object(const std::string& k) {
  key(k);
  out_ += '{';
  need_comma_ = false;
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, const std::string& v) {
  key(k);
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, const char* v) {
  field(k, std::string(v));
}

void JsonWriter::field(const std::string& k, double v) {
  key(k);
  out_ += fmt_double(v);
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, uint64_t v) {
  key(k);
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, int64_t v) {
  key(k);
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, bool v) {
  key(k);
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::element(double v) {
  comma();
  out_ += fmt_double(v);
  need_comma_ = true;
}

void JsonWriter::element(uint64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_tune(JsonWriter& w, const std::string& k,
                const tuning::TuneResult& t) {
  w.begin_object(k);
  w.field("evaluations", t.evaluations);
  w.field("f32_regs", t.f32_regs);
  w.field("slices_before", t.slices_before);
  w.field("slices_after", t.slices_after);
  w.field("final_score", t.final_score);
  w.begin_array("per_reg_bits");
  for (const auto& f : t.pmap.per_reg) w.element(uint64_t(f.total_bits));
  w.end_array();
  w.end_object();
}

void write_alloc(JsonWriter& w, const std::string& k,
                 const alloc::AllocationResult& a) {
  w.begin_object(k);
  w.field("num_physical_regs", a.num_physical_regs);
  w.field("total_slices", a.total_slices);
  w.field("split_operands", a.split_operands);
  w.field("packing_density", a.packing_density());
  w.end_object();
}

void write_cache(JsonWriter& w, const std::string& k, const sim::CacheStats& c) {
  w.begin_object(k);
  w.field("accesses", c.accesses);
  w.field("misses", c.misses);
  w.field("miss_rate", c.miss_rate());
  w.end_object();
}

const char* limiter_name(sim::Occupancy::Limiter l) {
  switch (l) {
    case sim::Occupancy::Limiter::kRegisters: return "registers";
    case sim::Occupancy::Limiter::kSharedMem: return "shared_mem";
    case sim::Occupancy::Limiter::kWarps: return "warps";
    case sim::Occupancy::Limiter::kBlocks: return "blocks";
    case sim::Occupancy::Limiter::kNone: return "none";
  }
  return "none";
}

void write_stats_fields(JsonWriter& w, const sim::SimStats& s) {
  w.field("cycles", s.cycles);
  w.field("thread_insts", s.thread_insts);
  w.field("warp_insts", s.warp_insts);
  w.field("blocks_run", s.blocks_run);
  w.field("ipc", s.ipc());
  write_cache(w, "l1", s.l1);
  write_cache(w, "tex", s.tex);
  write_cache(w, "l2", s.l2);
  w.begin_object("stalls");
  w.field("scoreboard", s.stall_scoreboard);
  w.field("no_cu", s.stall_no_cu);
  w.field("barrier", s.stall_barrier);
  w.field("empty", s.stall_empty);
  w.end_object();
  w.field("operand_fetches", s.operand_fetches);
  w.field("double_fetches", s.double_fetches);
  w.field("conversions", s.conversions);
}

}  // namespace

std::string to_json(const workloads::PipelineResult& pr) {
  JsonWriter w;
  w.begin_object();
  w.begin_object("pressure");
  w.field("original", pr.pressure.original);
  w.field("narrow_int", pr.pressure.narrow_int);
  w.field("narrow_float_perfect", pr.pressure.narrow_float_perfect);
  w.field("narrow_float_high", pr.pressure.narrow_float_high);
  w.field("both_perfect", pr.pressure.both_perfect);
  w.field("both_high", pr.pressure.both_high);
  w.end_object();
  write_tune(w, "tune_perfect", pr.tune_perfect);
  write_tune(w, "tune_high", pr.tune_high);
  write_alloc(w, "alloc_both_perfect", pr.alloc_both_perfect);
  write_alloc(w, "alloc_both_high", pr.alloc_both_high);
  w.end_object();
  return w.str();
}

std::string to_json(const sim::SimStats& s) {
  JsonWriter w;
  w.begin_object();
  write_stats_fields(w, s);
  w.end_object();
  return w.str();
}

std::string to_json(const sim::SimResult& r) {
  JsonWriter w;
  w.begin_object();
  w.begin_object("occupancy");
  w.field("blocks_per_sm", r.occupancy.blocks_per_sm);
  w.field("warps_per_sm", r.occupancy.warps_per_sm);
  w.field("percent", r.occupancy.percent);
  w.field("limiter", limiter_name(r.occupancy.limiter));
  w.end_object();
  w.begin_object("stats");
  write_stats_fields(w, r.stats);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace gpurf::api
